// Command tracegen generates a synthetic Azure-like serverless invocation
// trace (see internal/trace) and writes it as CSV, printing a per-function
// summary to stderr.
//
// Usage:
//
//	tracegen -seed 42 -days 14 -out trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "generator seed")
	days := flag.Int("days", 14, "trace length in days")
	out := flag.String("out", "-", "output CSV path ('-' for stdout)")
	specPath := flag.String("spec", "", "JSON workload spec (see internal/trace.Spec); overrides -seed/-days")
	azure := flag.Bool("azure", false, "write in the Azure Functions day-file format (out becomes a filename prefix)")
	flag.Parse()

	cfg := trace.GeneratorConfig{Seed: *seed, Horizon: *days * trace.MinutesPerDay}
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		spec, err := trace.ParseSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		if cfg, err = spec.Build(); err != nil {
			return err
		}
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	t := report.NewTable(fmt.Sprintf("trace: %d functions, %d days, %d invocations",
		len(tr.Functions), tr.Horizon/trace.MinutesPerDay, tr.TotalInvocations()),
		"fn", "archetype", "invocations", "mean IA (min)", "CV", "≤10 min (%)")
	for _, s := range trace.SummarizeAll(tr) {
		if err := t.AddRow(s.Name, s.Archetype, fmt.Sprintf("%d", s.Invocations),
			report.F(s.MeanInterArriv), report.F(s.CVInterArriv), report.F(s.WithinWindowPct)); err != nil {
			return err
		}
	}
	if err := t.Render(os.Stderr); err != nil {
		return err
	}

	if *azure {
		if *out == "-" {
			return fmt.Errorf("-azure needs -out as a filename prefix")
		}
		nDays := tr.Horizon / trace.MinutesPerDay
		writers := make([]io.Writer, nDays)
		files := make([]*os.File, nDays)
		for d := 0; d < nDays; d++ {
			f, err := os.Create(fmt.Sprintf("%s.day%02d.csv", *out, d+1))
			if err != nil {
				return err
			}
			files[d] = f
			writers[d] = f
		}
		err := trace.WriteAzureCSV(tr, writers...)
		for _, f := range files {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return trace.WriteCSV(w, tr)
}
