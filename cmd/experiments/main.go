// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments -exp all -days 14 -runs 1000        # paper scale
//	experiments -exp fig6a -days 3 -runs 30         # quick check
//
// Experiments: tableI tableII tableIII fig1 fig2 fig4 fig5 fig6a fig6b
// fig7 fig8 fig9 fig10 fig11 fig12 attribution holtwinters capacity
// windows tails churn alerts tournament ablations all.
//
// The tournament experiment races the packaged shadow entrants (MPC,
// Hawkes, Q-learning) plus the built-in baselines against the live PULSE
// controller on every trace archetype and under function churn, ranking
// them by keep-alive cost per workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/pulse-serverless/pulse/internal/experiments"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment to run")
	seed := flag.Int64("seed", 1, "trace and assignment seed")
	days := flag.Int("days", 3, "trace length in days (paper: 14)")
	runs := flag.Int("runs", 30, "simulation runs for multi-run experiments (paper: 1000)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	reportPath := flag.String("report", "", "run the full suite and write a paper-vs-measured markdown report to this path")
	flag.Parse()

	opts := experiments.Options{
		Seed:           *seed,
		HorizonMinutes: *days * trace.MinutesPerDay,
		Runs:           *runs,
		Workers:        *workers,
		Out:            os.Stdout,
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		if err := experiments.WriteMarkdownReport(opts, f, time.Now); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	table := map[string]func(experiments.Options) error{
		"tableI":      wrap(experiments.TableI),
		"tableII":     wrap(experiments.TableII),
		"tableIII":    wrap(experiments.TableIII),
		"fig1":        wrap(experiments.Figure1),
		"fig2":        wrap(experiments.Figure2),
		"fig4":        wrap(experiments.Figure4),
		"fig5":        wrap(experiments.Figure5),
		"fig6a":       wrap(experiments.Figure6a),
		"fig6b":       wrap(experiments.Figure6b),
		"fig7":        wrap(experiments.Figure7),
		"fig8":        wrap(experiments.Figure8),
		"fig9":        wrap(experiments.Figure9),
		"fig10":       wrap(experiments.Figure10),
		"fig11":       wrap(experiments.Figure11),
		"fig12":       wrap(experiments.Figure12),
		"attribution": wrap(experiments.AttributionTable),
		"holtwinters": wrap(experiments.ExtensionHoltWinters),
		"capacity":    wrap(experiments.CapacityAnalysis),
		"windows":     wrap(experiments.ExtensionWindowSweep),
		"tails":       wrap(experiments.ExtensionTailLatency),
		"churn":       wrap(experiments.ExtensionChurn),
		"alerts":      wrap(experiments.ExtensionAlerts),
		"tournament":  wrap(experiments.ExtensionTournament),
		"ablations": func(o experiments.Options) error {
			for _, f := range []func(experiments.Options) ([]experiments.SweepPoint, error){
				experiments.AblationHistoryBlend,
				experiments.AblationPriorityTerm,
				experiments.AblationPriorKaM,
				experiments.AblationDowngradeStep,
				experiments.AblationDowngradeSelection,
			} {
				if _, err := f(o); err != nil {
					return err
				}
			}
			return nil
		},
		"all": experiments.RunAll,
	}
	f, ok := table[*exp]
	if !ok {
		names := make([]string, 0, len(table))
		for k := range table {
			names = append(names, k)
		}
		return fmt.Errorf("unknown experiment %q (want one of %v)", *exp, names)
	}
	return f(opts)
}

// wrap adapts the typed experiment functions to a uniform signature.
func wrap[T any](f func(experiments.Options) (T, error)) func(experiments.Options) error {
	return func(o experiments.Options) error {
		_, err := f(o)
		return err
	}
}
