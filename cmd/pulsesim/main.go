// Command pulsesim runs a single keep-alive simulation over a synthetic
// (or CSV-loaded) trace and prints the three paper metrics — service time,
// keep-alive cost, accuracy — plus the keep-alive memory timeline.
//
// Usage:
//
//	pulsesim -policy pulse -days 3 -seed 7
//	pulsesim -policy all -trace trace.csv
//
// Policies: pulse, pulse-t2, pulse-noglobal, openwhisk, all-low, wild,
// wild+pulse, icebreaker, icebreaker+pulse, milp, or all.
package main

import (
	"flag"
	"fmt"
	"os"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pulsesim:", err)
		os.Exit(1)
	}
}

var policyNames = []string{
	"pulse", "pulse-t2", "pulse-noglobal", "openwhisk", "all-low",
	"wild", "wild+pulse", "icebreaker", "icebreaker+pulse",
	"holtwinters", "holtwinters+pulse", "milp",
}

func newPolicy(name string, cat *pulse.ModelCatalog, asg pulse.Assignment) (pulse.Policy, error) {
	switch name {
	case "pulse":
		return pulse.New(pulse.Config{Catalog: cat, Assignment: asg})
	case "pulse-t2":
		return pulse.New(pulse.Config{Catalog: cat, Assignment: asg, Technique: core.TechniqueT2{}})
	case "pulse-noglobal":
		return pulse.New(pulse.Config{Catalog: cat, Assignment: asg, DisableGlobalOpt: true})
	case "openwhisk":
		return pulse.NewBaseline(pulse.BaselineOpenWhisk, cat, asg)
	case "all-low":
		return pulse.NewBaseline(pulse.BaselineAllLow, cat, asg)
	case "wild":
		return pulse.NewBaseline(pulse.BaselineWild, cat, asg)
	case "wild+pulse":
		return pulse.NewIntegrated(pulse.BaselineWild, cat, asg)
	case "icebreaker":
		return pulse.NewBaseline(pulse.BaselineIceBreaker, cat, asg)
	case "icebreaker+pulse":
		return pulse.NewIntegrated(pulse.BaselineIceBreaker, cat, asg)
	case "holtwinters":
		return pulse.NewBaseline(pulse.BaselineHoltWinters, cat, asg)
	case "holtwinters+pulse":
		return pulse.NewIntegrated(pulse.BaselineHoltWinters, cat, asg)
	case "milp":
		return pulse.NewBaseline(pulse.BaselineMILP, cat, asg)
	default:
		return nil, fmt.Errorf("unknown policy %q (want one of %v or all)", name, policyNames)
	}
}

func run() error {
	policyFlag := flag.String("policy", "pulse", "policy to simulate, or 'all'")
	seed := flag.Int64("seed", 1, "trace seed")
	days := flag.Int("days", 3, "synthetic trace length in days")
	tracePath := flag.String("trace", "", "load trace from CSV instead of generating")
	catalogPath := flag.String("catalog", "", "load a model catalog JSON instead of the paper catalog")
	flag.Parse()

	var tr *pulse.Trace
	var err error
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if tr, err = trace.ReadCSV(f); err != nil {
			return err
		}
	} else if tr, err = pulse.GenerateTrace(pulse.TraceConfig{Seed: *seed, Horizon: *days * trace.MinutesPerDay}); err != nil {
		return err
	}

	cat := pulse.Catalog()
	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			return err
		}
		cat, err = models.ReadCatalog(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	asg := pulse.UniformAssignment(cat, len(tr.Functions))

	names := []string{*policyFlag}
	if *policyFlag == "all" {
		names = policyNames
	}
	t := report.NewTable(
		fmt.Sprintf("simulation: %d functions, %d minutes, %d invocations",
			len(tr.Functions), tr.Horizon, tr.TotalInvocations()),
		"policy", "service (s)", "keep-alive ($)", "accuracy (%)", "warm rate", "cold starts")
	for _, name := range names {
		p, err := newPolicy(name, cat, asg)
		if err != nil {
			return err
		}
		res, err := pulse.Simulate(pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}, p)
		if err != nil {
			return err
		}
		if err := t.AddRow(res.Policy, report.F(res.TotalServiceSec), report.F4(res.KeepAliveCostUSD),
			report.F(res.MeanAccuracyPct()), report.F(res.WarmStartRate()),
			fmt.Sprintf("%d", res.ColdStarts)); err != nil {
			return err
		}
		fmt.Printf("%-20s KaM %s\n", res.Policy, report.Sparkline(res.PerMinuteKaMMB, 72))
	}
	fmt.Println()
	return t.Render(os.Stdout)
}
