// Command pulseload is the live-runtime load benchmark: it builds an
// in-process PULSE-managed runtime per locking mode (striped and the
// single-lock serial baseline), hammers each with concurrent closed-loop
// callers and a background minute stepper, and reports throughput and
// Invoke latency percentiles.
//
//	pulseload -functions 12 -workers 8 -duration 3s -mix zipf -out BENCH_runtime.json
//
// The JSON output (see README "Load benchmark" for the field reference)
// carries one LoadResult per mode plus the striped-vs-serial throughput
// ratio — the number CI tracks as the serving-path perf trajectory. The
// striped speedup needs real parallelism: expect ~1× at GOMAXPROCS 1 and
// ≥2× from GOMAXPROCS 4 up.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/runtime"
)

// benchFile is the BENCH_runtime.json schema.
type benchFile struct {
	Bench                  string               `json:"bench"`
	Policy                 string               `json:"policy"`
	GOMAXPROCS             int                  `json:"gomaxprocs"`
	Results                []runtime.LoadResult `json:"results"`
	SpeedupStripedVsSerial float64              `json:"speedup_striped_vs_serial,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pulseload:", err)
		os.Exit(1)
	}
}

func run() error {
	functions := flag.Int("functions", 12, "registered functions")
	workers := flag.Int("workers", 0, "concurrent closed-loop callers (0 = 2×GOMAXPROCS)")
	duration := flag.Duration("duration", 3*time.Second, "wall-clock run length per mode")
	mix := flag.String("mix", runtime.MixZipf, "arrival mix: uniform, zipf, or hotspot")
	policyName := flag.String("policy", "pulse", "keep-alive policy: pulse or fixed")
	shards := flag.Int("shards", 0, "PULSE controller shards (0 = one per CPU)")
	seed := flag.Int64("seed", 1, "worker RNG seed")
	stepEvery := flag.Duration("step-every", 100*time.Millisecond, "minute-barrier cadence (0 disables stepping)")
	modes := flag.String("modes", "striped,serial", "comma-separated runtime modes to benchmark")
	out := flag.String("out", "BENCH_runtime.json", "output file ('-' for stdout only)")
	flag.Parse()

	if *functions <= 0 {
		return fmt.Errorf("-functions must be positive (got %d)", *functions)
	}
	if *workers <= 0 {
		*workers = 2 * goruntime.GOMAXPROCS(0)
	}

	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, *functions)

	file := benchFile{
		Bench:      "runtime-serving",
		Policy:     *policyName,
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
	}
	byMode := map[string]runtime.LoadResult{}
	for _, mode := range strings.Split(*modes, ",") {
		mode = strings.TrimSpace(mode)
		var serial bool
		switch mode {
		case "striped":
			serial = false
		case "serial":
			serial = true
		case "":
			continue
		default:
			return fmt.Errorf("unknown mode %q (want striped or serial)", mode)
		}

		// Each mode gets a fresh policy: runs must not share state.
		var p pulse.Policy
		var err error
		switch *policyName {
		case "pulse":
			p, err = core.New(core.Config{Catalog: cat, Assignment: asg, Shards: *shards})
		case "fixed":
			p, err = policy.NewFixed(cat, asg, 0, policy.QualityHighest)
		default:
			return fmt.Errorf("unknown policy %q (want pulse or fixed)", *policyName)
		}
		if err != nil {
			return err
		}
		rt, err := runtime.New(runtime.Config{
			Catalog:    cat,
			Assignment: asg,
			Policy:     p,
			Serial:     serial,
		})
		if err != nil {
			return err
		}
		res, err := runtime.RunLoad(rt, runtime.LoadConfig{
			Workers:   *workers,
			Duration:  *duration,
			Mix:       *mix,
			Seed:      *seed,
			StepEvery: *stepEvery,
		})
		closeErr := rt.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		if res.Errors > 0 {
			return fmt.Errorf("mode %s: %d failed invocations", mode, res.Errors)
		}
		file.Results = append(file.Results, res)
		byMode[mode] = res
		fmt.Printf("%-8s %9.0f inv/s  (%d invocations, %d workers, %d fns, %d minutes, p50 %.1fµs p99 %.1fµs max %.1fµs)\n",
			mode, res.Throughput, res.Invocations, res.Workers, res.Functions,
			res.MinutesStepped, res.LatencyP50us, res.LatencyP99us, res.LatencyMaxus)
	}
	if len(file.Results) == 0 {
		return fmt.Errorf("no modes selected")
	}

	if s, ok := byMode["striped"]; ok {
		if b, ok := byMode["serial"]; ok && b.Throughput > 0 {
			file.SpeedupStripedVsSerial = s.Throughput / b.Throughput
			fmt.Printf("striped/serial speedup: %.2f× at GOMAXPROCS %d\n",
				file.SpeedupStripedVsSerial, file.GOMAXPROCS)
		}
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
