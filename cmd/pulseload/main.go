// Command pulseload is the live-runtime load benchmark matrix: it sweeps
// GOMAXPROCS × functions × mixes × workers × serving modes (serial, striped,
// epoch), builds a fresh in-process PULSE-managed runtime per cell, hammers
// it with concurrent closed-loop callers and a background minute stepper,
// and reports throughput and Invoke latency percentiles for every cell.
//
//	pulseload -gomaxprocs 1,4 -functions 12,96 -mixes hotspot,zipf -duration 2s -out BENCH_runtime.json
//
// The JSON output (see README "Load benchmark" for the field reference)
// carries every cell's LoadResult plus a per-shape summary with the
// striped/serial, epoch/serial, and epoch/striped throughput ratios — the
// scaling curve CI tracks as the serving-path perf trajectory. The epoch
// mode's advantage needs parallelism and contention: expect parity at
// GOMAXPROCS 1 and a growing lead on the hotspot mix from GOMAXPROCS 4 up.
//
// With -scale, a population-scale sweep follows (or replaces, with
// -scale-only, for the CI bench-scale job) the matrix: per population it
// reports resting heap bytes per function and idle/active minute-step
// latency into the output's scale section, optionally gated by the
// -scale-max-bytes-per-fn and -scale-max-idle-step-ms budgets:
//
//	pulseload -scale-only -scale 10000,100000,1000000 -scale-active-pct 1
//
// After the matrix, a tracer-delta pair benchmarks epoch mode with the
// sampled invocation tracer off vs on at -trace-stride (default 1024,
// 0 skips the measurement) and publishes the throughput overhead into the
// output's tracer_delta field. The guard is <2% overhead at stride 1024;
// a breach is reported as a warning, not a failure, because single cells
// at short durations are noisy.
//
// With -tournament-entrants (a roster list like mpc,hawkes,qlearn), a
// tournament-delta pair benchmarks epoch mode with the baseline
// attribution accountant vs the full entrant roster riding the Observer
// chain, and publishes the per-entrant throughput overhead into the
// output's tournament_delta field (guard: <3% per entrant, advisory).
// -tournament-only skips the matrix and runs just that pair — the
// Makefile bench-tournament target.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"
	"time"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/runtime"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
)

// benchFile is the BENCH_runtime.json schema: raw per-cell results plus the
// grouped per-shape mode comparison.
type benchFile struct {
	Bench    string `json:"bench"`
	Policy   string `json:"policy"`
	HostCPUs int    `json:"host_cpus"`
	// HostNote annotates how the host shapes the numbers (set on 1-CPU
	// hosts, where the mode speedup ratios reflect serialized parallelism).
	HostNote string                `json:"host_note,omitempty"`
	Results  []runtime.LoadResult  `json:"results,omitempty"`
	Summary  []runtime.MatrixPoint `json:"summary,omitempty"`
	// TracerDelta is the tracer-on vs tracer-off epoch throughput
	// comparison; absent when -trace-stride is 0.
	TracerDelta *runtime.TracerDelta `json:"tracer_delta,omitempty"`
	// TournamentDelta is the entrant-roster vs baseline-accountant
	// throughput comparison; absent when -tournament-entrants is empty.
	TournamentDelta *runtime.TournamentDelta `json:"tournament_delta,omitempty"`
	// Scale is the population-scale sweep (bytes per function and
	// idle/active minute-step latency); absent when -scale is empty.
	Scale []runtime.ScaleResult `json:"scale,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pulseload:", err)
		os.Exit(1)
	}
}

// intList parses a comma-separated list of integers.
func intList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad entry %q", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", flagName)
	}
	return out, nil
}

func strList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run() error {
	gomaxprocs := flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS sweep (default: current value)")
	functions := flag.String("functions", "12", "comma-separated registered-function counts")
	workers := flag.String("workers", "0", "comma-separated worker counts (0 = 2×GOMAXPROCS per cell)")
	duration := flag.Duration("duration", 2*time.Second, "wall-clock run length per cell")
	mixes := flag.String("mixes", runtime.MixHotspot, "comma-separated arrival mixes: uniform, zipf, hotspot")
	policyName := flag.String("policy", "pulse", "keep-alive policy: pulse or fixed")
	shards := flag.Int("shards", 0, "PULSE controller shards (0 = one per CPU)")
	seed := flag.Int64("seed", 1, "worker RNG seed")
	stepEvery := flag.Duration("step-every", 100*time.Millisecond, "minute-barrier cadence (0 disables stepping)")
	traceStride := flag.Int64("trace-stride", runtime.DefaultTracerDeltaStride,
		"sampling period for the tracer-overhead pair after the matrix (0 skips it)")
	tournamentEntrants := flag.String("tournament-entrants", "",
		"comma-separated tournament entrants for the overhead pair after the matrix (e.g. mpc,hawkes,qlearn; empty skips it)")
	tournamentOnly := flag.Bool("tournament-only", false,
		"run only the tournament-overhead pair, skipping the serving matrix")
	modes := flag.String("modes", strings.Join([]string{runtime.ModeSerial, runtime.ModeStriped, runtime.ModeEpoch}, ","),
		"comma-separated runtime modes to benchmark")
	scale := flag.String("scale", "", "comma-separated populations for the scale sweep (empty skips it)")
	scaleActivePct := flag.Float64("scale-active-pct", runtime.DefaultScaleActivePct,
		"percentage of the population invoked per active scale minute")
	scaleMinutes := flag.Int("scale-minutes", runtime.DefaultScaleMinutes, "timed minute steps per scale phase")
	scaleMode := flag.String("scale-mode", runtime.ModeEpoch, "serving mode for the scale sweep")
	scaleOnly := flag.Bool("scale-only", false, "run only the scale sweep, skipping the serving matrix")
	scaleMaxBytes := flag.Float64("scale-max-bytes-per-fn", 0,
		"fail if any scale cell exceeds this many resting heap bytes per function (0 disables)")
	scaleMaxIdleMs := flag.Float64("scale-max-idle-step-ms", 0,
		"fail if any scale cell's mean idle minute step exceeds this many milliseconds (0 disables)")
	out := flag.String("out", "BENCH_runtime.json", "output file ('-' for stdout only)")
	flag.Parse()

	fnCounts, err := intList("functions", *functions)
	if err != nil {
		return err
	}
	for _, n := range fnCounts {
		if n <= 0 {
			return fmt.Errorf("-functions entries must be positive (got %d)", n)
		}
	}
	workerCounts, err := intList("workers", *workers)
	if err != nil {
		return err
	}
	for _, w := range workerCounts {
		if w < 0 {
			return fmt.Errorf("-workers entries must be non-negative (got %d; 0 means 2×GOMAXPROCS)", w)
		}
	}
	var gmps []int
	if *gomaxprocs != "" {
		if gmps, err = intList("gomaxprocs", *gomaxprocs); err != nil {
			return err
		}
		for _, g := range gmps {
			if g <= 0 {
				return fmt.Errorf("-gomaxprocs entries must be positive (got %d)", g)
			}
		}
	}
	var scalePops []int
	if *scale != "" {
		if scalePops, err = intList("scale", *scale); err != nil {
			return err
		}
		for _, n := range scalePops {
			if n <= 0 {
				return fmt.Errorf("-scale entries must be positive (got %d)", n)
			}
		}
	}
	if *scaleOnly && len(scalePops) == 0 {
		return fmt.Errorf("-scale-only requires a -scale population list")
	}
	if *tournamentOnly && *tournamentEntrants == "" {
		return fmt.Errorf("-tournament-only requires a -tournament-entrants list")
	}

	cat := pulse.Catalog()
	newTracedRuntime := func(fns int, mode string, tracer *provenance.Tracer) (*runtime.Runtime, error) {
		asg := pulse.UniformAssignment(cat, fns)
		// Each cell gets a fresh policy: runs must not share state.
		var p pulse.Policy
		var err error
		switch *policyName {
		case "pulse":
			p, err = core.New(core.Config{Catalog: cat, Assignment: asg, Shards: *shards})
		case "fixed":
			p, err = policy.NewFixed(cat, asg, 0, policy.QualityHighest)
		default:
			err = fmt.Errorf("unknown policy %q (want pulse or fixed)", *policyName)
		}
		if err != nil {
			return nil, err
		}
		return runtime.New(runtime.Config{
			Catalog:    cat,
			Assignment: asg,
			Policy:     p,
			Mode:       mode,
			Tracer:     tracer,
		})
	}
	newRuntime := func(fns int, mode string) (*runtime.Runtime, error) {
		return newTracedRuntime(fns, mode, nil)
	}

	file := benchFile{
		Bench:    "runtime-serving-matrix",
		Policy:   *policyName,
		HostCPUs: goruntime.NumCPU(),
	}

	// runTournament benchmarks the entrant roster's Observer-chain cost:
	// baseline accountant vs the same accountant racing the named
	// entrants, attached (like pulsed does) to both the controller and the
	// runtime.
	runTournament := func() error {
		names := roster.ParseList(*tournamentEntrants)
		cost := cluster.DefaultCostModel()
		newObserver := func(fns int, extras bool) (telemetry.Observer, error) {
			asg := pulse.UniformAssignment(cat, fns)
			acfg := pulse.AttributionConfig{Catalog: cat, Assignment: asg, Cost: cost}
			if extras {
				ents, err := roster.Build(names, cat, cost)
				if err != nil {
					return nil, err
				}
				acfg.Entrants = ents
			}
			return pulse.NewAccountant(acfg)
		}
		newObservedRuntime := func(fns int, mode string, obs telemetry.Observer) (*runtime.Runtime, error) {
			asg := pulse.UniformAssignment(cat, fns)
			var p pulse.Policy
			var err error
			switch *policyName {
			case "pulse":
				p, err = core.New(core.Config{Catalog: cat, Assignment: asg, Shards: *shards, Observer: obs})
			case "fixed":
				p, err = policy.NewFixed(cat, asg, 0, policy.QualityHighest)
			default:
				err = fmt.Errorf("unknown policy %q (want pulse or fixed)", *policyName)
			}
			if err != nil {
				return nil, err
			}
			return runtime.New(runtime.Config{
				Catalog:    cat,
				Assignment: asg,
				Policy:     p,
				Mode:       mode,
				Observer:   obs,
			})
		}
		delta, err := runtime.RunTournamentDelta(runtime.TournamentDeltaConfig{
			Functions:   fnCounts[0],
			Duration:    *duration,
			Seed:        *seed,
			StepEvery:   *stepEvery,
			Entrants:    names,
			NewRuntime:  newObservedRuntime,
			NewObserver: newObserver,
		})
		if err != nil {
			return err
		}
		file.TournamentDelta = &delta
		verdict := fmt.Sprintf("within <%.0f%%/entrant guard", delta.GuardPctPerEntrant)
		if !delta.WithinGuard {
			verdict = fmt.Sprintf("WARNING: exceeds %.0f%%/entrant guard", delta.GuardPctPerEntrant)
		}
		fmt.Printf("tournament %s on %s: baseline %9.0f inv/s  loaded %9.0f inv/s  overhead %+.2f%% (%+.2f%%/entrant) %s\n",
			strings.Join(delta.Entrants, ","), delta.Mode, delta.BaselineThroughput, delta.LoadedThroughput,
			delta.OverheadPct, delta.OverheadPctPerEntrant, verdict)
		return nil
	}
	if file.HostCPUs == 1 {
		file.HostNote = "measured on a 1-CPU host: mode speedup ratios reflect serialized parallelism, and scale latencies have no background-GC overlap"
	}
	if *tournamentOnly {
		file.Bench = "runtime-tournament"
		if err := runTournament(); err != nil {
			return err
		}
		return writeBenchFile(file, *out)
	}
	if *scaleOnly {
		file.Bench = "runtime-scale"
		if err := runScaleSweep(&file, scalePops, *scaleActivePct, *scaleMinutes, *scaleMode,
			*scaleMaxBytes, *scaleMaxIdleMs, newRuntime); err != nil {
			return err
		}
		return writeBenchFile(file, *out)
	}

	var failed int64
	results, err := runtime.RunMatrix(runtime.MatrixConfig{
		GOMAXPROCS: gmps,
		Functions:  fnCounts,
		Mixes:      strList(*mixes),
		Workers:    workerCounts,
		Modes:      strList(*modes),
		Duration:   *duration,
		Seed:       *seed,
		StepEvery:  *stepEvery,
		NewRuntime: newRuntime,
		Progress: func(res runtime.LoadResult) {
			failed += res.Errors
			fmt.Printf("gmp %-2d fns %-4d %-8s %-8s %9.0f inv/s  (%d invocations, %d workers, %d minutes, p50 %.1fµs p99 %.1fµs)\n",
				res.GOMAXPROCS, res.Functions, res.Mix, res.Mode, res.Throughput,
				res.Invocations, res.Workers, res.MinutesStepped, res.LatencyP50us, res.LatencyP99us)
		},
	})
	if err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d failed invocations across the matrix", failed)
	}
	file.Results = results
	file.Summary = runtime.SummarizeMatrix(results)

	if *traceStride > 0 {
		delta, err := runtime.RunTracerDelta(runtime.TracerDeltaConfig{
			Functions:  fnCounts[0],
			Duration:   *duration,
			Seed:       *seed,
			StepEvery:  *stepEvery,
			Stride:     *traceStride,
			NewRuntime: newTracedRuntime,
		})
		if err != nil {
			return err
		}
		file.TracerDelta = &delta
		verdict := fmt.Sprintf("within <%.0f%% guard", delta.GuardPct)
		if !delta.WithinGuard {
			verdict = fmt.Sprintf("WARNING: exceeds %.0f%% guard", delta.GuardPct)
		}
		fmt.Printf("tracer 1/%d on %s: off %9.0f inv/s  on %9.0f inv/s  overhead %+.2f%%  (%d sampled of %d) %s\n",
			delta.Stride, delta.Mode, delta.OffThroughput, delta.OnThroughput,
			delta.OverheadPct, delta.Sampled, delta.Attempts, verdict)
	}
	if *tournamentEntrants != "" {
		if err := runTournament(); err != nil {
			return err
		}
	}
	for _, p := range file.Summary {
		if p.SpeedupEpochVsStriped > 0 {
			fmt.Printf("gmp %-2d fns %-4d %-8s epoch/striped %.2f×  epoch/serial %.2f×  striped/serial %.2f×\n",
				p.GOMAXPROCS, p.Functions, p.Mix,
				p.SpeedupEpochVsStriped, p.SpeedupEpochVsSerial, p.SpeedupStripedVsSerial)
		}
	}

	if len(scalePops) > 0 {
		if err := runScaleSweep(&file, scalePops, *scaleActivePct, *scaleMinutes, *scaleMode,
			*scaleMaxBytes, *scaleMaxIdleMs, newRuntime); err != nil {
			return err
		}
	}
	return writeBenchFile(file, *out)
}

// runScaleSweep runs the population-scale sweep into file.Scale and applies
// the optional per-cell budgets: resting bytes per function and mean idle
// minute-step latency. A budget breach is a hard error — this is what the CI
// bench-scale job gates on.
func runScaleSweep(file *benchFile, pops []int, activePct float64, minutes int, mode string,
	maxBytesPerFn, maxIdleStepMs float64, newRuntime func(int, string) (*runtime.Runtime, error)) error {
	scaleResults, err := runtime.RunScale(runtime.ScaleConfig{
		Populations: pops,
		ActivePct:   activePct,
		Minutes:     minutes,
		Mode:        mode,
		NewRuntime:  newRuntime,
		Progress: func(res runtime.ScaleResult) {
			fmt.Printf("scale %-8d %-8s build %6.2fs  %7.0f B/fn  idle step %9.1fµs  active step %9.1fµs (%d slots)\n",
				res.Functions, res.Mode, res.BuildSeconds, res.BytesPerFunction,
				res.IdleStepMicros, res.ActiveStepMicros, res.ActiveFunctions)
		},
	})
	if err != nil {
		return err
	}
	file.Scale = scaleResults
	for _, res := range scaleResults {
		if maxBytesPerFn > 0 && res.BytesPerFunction > maxBytesPerFn {
			return fmt.Errorf("scale budget breach at %d functions: %.0f bytes/function exceeds budget %.0f",
				res.Functions, res.BytesPerFunction, maxBytesPerFn)
		}
		if maxIdleStepMs > 0 && res.IdleStepMicros > maxIdleStepMs*1000 {
			return fmt.Errorf("scale budget breach at %d functions: idle step %.1fµs exceeds budget %.1fms",
				res.Functions, res.IdleStepMicros, maxIdleStepMs)
		}
	}
	return nil
}

func writeBenchFile(file benchFile, out string) error {
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
