package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/alert"
)

// TestE2EAlertLifecycle is the live ops smoke test: it builds the real
// pulsed binary, runs it with a compressed clock and a webhook sink
// pointed at a local test server, drives an alert through its full
// lifecycle (deregister a function, invoke it until the rule fires, stop
// until it resolves), and checks the dashboard and SSE stream actually
// serve. This is the one test where the daemon, rule engine, webhook
// retry loop, and HTTP surface all meet as separate processes.
func TestE2EAlertLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the pulsed binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "pulsed")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Webhook sink: every POST body is a Notification.
	hooks := make(chan alert.Notification, 64)
	hookSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var n alert.Notification
		if err := json.NewDecoder(r.Body).Decode(&n); err != nil {
			t.Errorf("webhook body: %v", err)
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("webhook Content-Type %q", ct)
		}
		select {
		case hooks <- n:
		default:
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer hookSrv.Close()

	rules := filepath.Join(dir, "rules.conf")
	if err := os.WriteFile(rules, []byte("dereg-gone dereg_invokes > 0 for=1 cooldown=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Grab a free port; the window between Close and the daemon's Listen
	// is the usual acceptable race for spawned-server tests.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	// One simulated minute per 50ms of wall clock.
	daemon := exec.Command(bin,
		"-addr", addr,
		"-compress", "1200",
		"-alert-rules", rules,
		"-webhook", hookSrv.URL,
		"-trace-sample", "4",
	)
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		select {
		case <-exited:
		case <-time.After(10 * time.Second):
			daemon.Process.Kill()
			t.Error("daemon did not exit on SIGTERM")
		}
	}()

	client := &http.Client{Timeout: 5 * time.Second}
	waitUp := time.Now()
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var h struct {
				Status     string `json:"status"`
				Mode       string `json:"mode"`
				Provenance bool   `json:"provenance"`
				Tracer     struct {
					Enabled bool  `json:"enabled"`
					Stride  int64 `json:"stride"`
				} `json:"tracer"`
				Alerts struct {
					Enabled bool `json:"enabled"`
					Rules   int  `json:"rules"`
				} `json:"alerts"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if derr != nil {
				t.Fatalf("healthz decode: %v", derr)
			}
			if h.Status != "ok" || !h.Alerts.Enabled || h.Alerts.Rules != 1 {
				t.Fatalf("healthz %+v: want ok with 1 alert rule", h)
			}
			if h.Mode != "epoch" {
				t.Fatalf("healthz mode %q, want epoch (the default runtime)", h.Mode)
			}
			if !h.Provenance {
				t.Fatal("healthz provenance false: -provenance-window should default on")
			}
			if !h.Tracer.Enabled || h.Tracer.Stride != 4 {
				t.Fatalf("healthz tracer %+v, want enabled with stride 4", h.Tracer)
			}
			break
		}
		if time.Since(waitUp) > 15*time.Second {
			t.Fatalf("daemon never came up at %s: %v", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Dashboard serves.
	resp, err := client.Get(base + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /dashboard = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// The SSE stream hands out its handshake and, with minutes ticking
	// every 50ms and a subscriber attached, a minute event promptly.
	streamCtx, cancelStream := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelStream()
	streamReq, err := http.NewRequestWithContext(streamCtx, http.MethodGet, base+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	streamResp, err := (&http.Client{}).Do(streamReq)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	sc := bufio.NewScanner(streamResp.Body)
	sawRetry, sawEvent := false, false
	for sc.Scan() && !sawEvent {
		line := sc.Text()
		if strings.HasPrefix(line, "retry:") {
			sawRetry = true
		}
		if strings.HasPrefix(line, "event:") {
			sawEvent = true
		}
	}
	if !sawRetry || !sawEvent {
		t.Fatalf("SSE stream: retry line %v, event line %v (scan err %v)", sawRetry, sawEvent, sc.Err())
	}
	cancelStream()

	// Deregister fn-0, then hammer its slot: every 410 feeds the
	// dereg_invokes metric, and the rule fires at the next minute barrier.
	del, err := http.NewRequest(http.MethodDelete, base+"/functions/fn-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /functions/fn-0 = %d", resp.StatusCode)
	}

	waitNotification := func(state string) alert.Notification {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case n := <-hooks:
				if n.Rule == "dereg-gone" && n.State == state {
					return n
				}
				t.Logf("webhook: skipping %+v while waiting for %s", n, state)
			case <-deadline:
				t.Fatalf("no %s webhook notification within 30s", state)
			case <-time.After(25 * time.Millisecond):
				if state == alert.StateFiring {
					// Keep the metric breached until the barrier fires it.
					r, err := client.Post(base+"/invoke?fn=0", "", nil)
					if err != nil {
						t.Fatal(err)
					}
					r.Body.Close()
					if r.StatusCode != http.StatusGone {
						t.Fatalf("invoke deregistered fn = %d, want 410", r.StatusCode)
					}
				}
			}
		}
	}

	firing := waitNotification(alert.StateFiring)
	if firing.Metric != "dereg_invokes" || firing.Value <= 0 {
		t.Errorf("firing notification %+v", firing)
	}
	// Stop invoking: the next clean minute resolves the alert.
	resolved := waitNotification(alert.StateResolved)
	if resolved.Minute <= firing.Minute {
		t.Errorf("resolved at minute %d, fired at %d", resolved.Minute, firing.Minute)
	}

	// Provenance: /why explains a live function by name, with the minute
	// barrier having closed plenty of decisions by now.
	resp, err = client.Get(base + "/why?fn=fn-1")
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		Function string `json:"function"`
		Active   bool   `json:"active"`
	}
	werr := json.NewDecoder(resp.Body).Decode(&ex)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || werr != nil {
		t.Fatalf("GET /why?fn=fn-1 = %d (decode %v), want 200", resp.StatusCode, werr)
	}
	if ex.Function != "fn-1" || !ex.Active {
		t.Errorf("/why explanation %+v, want active fn-1", ex)
	}

	// Tracing: drive a handful of live invocations so the stride-4 sampler
	// is guaranteed to fire, then read the spans back.
	for i := 0; i < 8; i++ {
		r, err := client.Post(base+"/invoke?fn=1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("invoke fn=1 = %d, want 200", r.StatusCode)
		}
	}
	resp, err = client.Get(base + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Enabled bool `json:"enabled"`
		Sampled int  `json:"sampled"`
	}
	terr := json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || terr != nil {
		t.Fatalf("GET /traces = %d (decode %v), want 200", resp.StatusCode, terr)
	}
	if !traces.Enabled || traces.Sampled == 0 {
		t.Errorf("/traces %+v, want enabled with sampled spans", traces)
	}
}

// The alerting flags must stay registered.
func TestAlertFlagsRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, flagName := range []string{`"alerts"`, `"alert-rules"`, `"webhook"`} {
		if !strings.Contains(string(src), flagName) {
			t.Errorf("main.go does not register the %s flag", flagName)
		}
	}
	// -alert-rules and -webhook must imply -alerts, or a rule file would
	// be silently ignored.
	if !strings.Contains(string(src), `*alerts = *alerts || *alertRules != "" || *webhook != ""`) {
		t.Error("main.go does not make -alert-rules/-webhook imply -alerts")
	}
}
