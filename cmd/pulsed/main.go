// Command pulsed is a live PULSE-managed serverless daemon: it registers
// the paper's model catalog behind 12 functions, runs the PULSE keep-alive
// controller on a (time-compressed) minute tick, and serves invocations
// over HTTP.
//
//	pulsed -addr :8080 -compress 60     # one simulated minute per second
//
// The full HTTP surface (runtime.Endpoints is authoritative; a test holds
// this list in sync):
//
//	POST /invoke?fn=N      run one invocation, returns the Invocation JSON
//	GET  /stats            runtime counters
//	GET  /functions        registered functions, their models and warm state
//	POST /functions        register a function online (JSON {"name","family"}), returns its slot
//	DELETE /functions/{name}  deregister the named function; its slot is tombstoned, later invokes return 410
//	GET  /metrics          Prometheus text exposition (labeled series when instrumented)
//	GET  /events           decision event log (requires telemetry)
//	GET  /decisions        Algorithm 1/2 audit: downgrades with Uv = Ai+Pr+Ip, peak episodes
//	GET  /attribution      per-function counterfactual savings vs shadow baselines (requires attribution)
//	GET  /timeseries       attribution series for one metric, incl. savings_vs_<entrant>_usd (?metric=&window=&res=; requires attribution)
//	GET  /top              function ranking by savings, downgrades, cold-start risk, or ?by=policy tournament standings; text or ?format=json (requires attribution)
//	GET  /why              decision provenance for one function: Algorithm 1/2 inputs and outputs behind its recent keep-alive choices (?fn=&minute=&n=; requires provenance)
//	GET  /traces           sampled invocation spans: minute, variant, cold/warm, seqlock retries, latency (requires -trace-sample)
//	GET  /stream           live Server-Sent Events: decision log, minute rollups, alert transitions, sampled traces
//	GET  /dashboard        embedded single-page live ops dashboard
//	GET  /healthz          daemon health JSON: uptime, go version, runtime mode, population, minute, tracer and alert-engine status
//
// With -debug, the Go pprof and expvar surfaces are mounted under
// /debug/pprof/ and /debug/vars. With -eventlog FILE, every controller
// decision event is appended to FILE as JSON lines.
//
// With -attribution, an online counterfactual accountant shadows the live
// policy against the paper's fixed keep-alive baseline (window set by
// -attribution-window), a never-keep-alive policy, and a hindsight oracle,
// serving per-function savings through /attribution, /timeseries, and
// /top.
//
// With -tournament LIST (comma-separated roster entrants, e.g.
// mpc,hawkes,qlearn; implies -attribution), the accountant additionally
// races the named shadow keep-alive policies on the same sample stream.
// Standings are served at /top?by=policy, per-entrant ledgers in the
// /attribution tournament section, and per-minute deltas as
// savings_vs_<entrant>_usd on /timeseries. An empty, duplicate, or
// unknown entrant name is a usage error naming the registered entrants.
//
// With -provenance-window N (the default is 64; 0 disables), a decision
// provenance recorder rides the observer chain and retains each function's
// last N keep-alive decisions — the invocation probabilities, peak window,
// priority rank, and memory budget Algorithms 1 and 2 saw, and the variant
// they chose versus the unconstrained plan — served as GET /why. It also
// carries the runtime's self-observability series (step_latency_us,
// seqlock_retries) on /timeseries. With -trace-sample K, one in K
// invocations is traced through the serving fast path (cold/warm, variant,
// seqlock retries, wall latency) into GET /traces and the SSE stream; 0
// keeps tracing off and the Invoke path allocation-free.
//
// With -alerts, a threshold rule engine watches the per-minute stream and
// emits firing/resolved notifications to the log, the SSE stream, and —
// with -webhook URL — an HTTP endpoint (JSON POST, retried with backoff).
// The default rules cover cold-start spikes, keep-alive memory peaks,
// invocations of deregistered functions, and (with -attribution) savings
// regressions versus the fixed baseline; -alert-rules FILE replaces them
// with a rule file (one "<name> <metric> <op> <threshold> [for=N]
// [cooldown=N]" per line). -alert-rules and -webhook imply -alerts.
//
// With -demo, a background workload generator issues invocations drawn from
// the synthetic trace archetypes so the keep-alive behaviour is visible
// without external traffic.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/alert"
	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/metastore"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/runtime"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "pulsed:", err)
		os.Exit(1)
	}
}

// tickInterval converts the -compress factor into the wall-clock interval
// between simulated minutes. Non-positive and non-finite factors are
// rejected up front: compress 0 used to overflow into a never-firing
// ticker, so the daemon served traffic but silently stopped advancing
// minutes. Factors in (0, 1) are valid slow motion (intervals longer than
// a minute); absurdly large factors that round the interval down to zero
// are rejected too.
func tickInterval(compress float64) (time.Duration, error) {
	if compress <= 0 || math.IsNaN(compress) || math.IsInf(compress, 0) {
		return 0, fmt.Errorf("-compress must be a positive, finite factor (got %v): 1 = real time, 60 = one simulated minute per wall second, 0.5 = slow motion", compress)
	}
	iv := time.Duration(float64(time.Minute) / compress)
	if iv <= 0 {
		return 0, fmt.Errorf("-compress %v is too large: the minute tick interval rounds to zero", compress)
	}
	return iv, nil
}

// loadOrColdController restores the PULSE controller from the metadata
// store, or builds a fresh one when no usable snapshot exists. Only a
// missing snapshot is silent; a corrupted, truncated, or
// schema-incompatible snapshot must not keep the daemon down, so it is
// logged and the controller relearns from scratch. The bad file stays on
// disk for inspection until the next successful save replaces it.
func loadOrColdController(store *metastore.Store, name, dir string, cfg core.Config) (*core.Pulse, error) {
	controller, err := store.LoadController(name, cfg)
	switch {
	case err == nil:
		log.Printf("pulsed: restored PULSE state from %s (resume minute %d)", dir, controller.ResumeMinute())
		return controller, nil
	case os.IsNotExist(err):
		return core.New(cfg)
	default:
		log.Printf("pulsed: cannot restore state from %s (%v); starting cold", dir, err)
		return core.New(cfg)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	compress := flag.Float64("compress", 60, "time compression (60 = one simulated minute per wall second)")
	policyName := flag.String("policy", "pulse", "keep-alive policy: pulse or openwhisk")
	shards := flag.Int("shards", 0, "PULSE controller shards (0 = one per CPU, 1 = serial); decisions are identical at every count")
	demo := flag.Bool("demo", false, "generate background demo traffic")
	seed := flag.Int64("seed", 1, "demo traffic seed")
	stateDir := flag.String("statedir", "", "metadata store directory: PULSE state is restored on start and saved on shutdown")
	debug := flag.Bool("debug", false, "expose /debug/pprof/* and /debug/vars")
	eventCap := flag.Int("event-capacity", telemetry.DefaultEventCapacity, "decision event ring capacity")
	eventLog := flag.String("eventlog", "", "append decision events as JSON lines to this file")
	attrib := flag.Bool("attribution", false, "run counterfactual cost attribution (shadow baselines, /attribution /timeseries /top)")
	attribWindow := flag.Int("attribution-window", cluster.DefaultKeepAliveWindow, "fixed-baseline keep-alive window in minutes for attribution")
	tournamentList := flag.String("tournament", "", "comma-separated shadow entrants to race in the policy tournament (registered: "+strings.Join(roster.Names(), ", ")+"); implies -attribution")
	mode := flag.String("mode", "", "runtime serving mode: epoch (lock-free, default), striped, or serial")
	serial := flag.Bool("serial", false, "shorthand for -mode serial (single-lock benchmark baseline)")
	provWindow := flag.Int("provenance-window", provenance.DefaultWindow, "per-function decision provenance ring window in minutes for /why (0 disables provenance)")
	traceSample := flag.Int64("trace-sample", 0, "trace 1 in K invocations into /traces and the SSE stream (0 disables tracing)")
	alerts := flag.Bool("alerts", false, "evaluate threshold alert rules at the minute barrier (default rules unless -alert-rules)")
	alertRules := flag.String("alert-rules", "", "alert rule file (one '<name> <metric> <op> <threshold> [for=N] [cooldown=N]' per line); implies -alerts")
	webhook := flag.String("webhook", "", "POST alert notifications as JSON to this URL (retried with backoff); implies -alerts")
	flag.Parse()
	*alerts = *alerts || *alertRules != "" || *webhook != ""
	*attrib = *attrib || *tournamentList != ""

	tickEvery, err := tickInterval(*compress)
	if err != nil {
		return err
	}

	cat := pulse.Catalog()
	const nFunctions = 12
	asg := pulse.UniformAssignment(cat, nFunctions)

	var sink *os.File
	if *eventLog != "" {
		var err error
		if sink, err = os.OpenFile(*eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			return err
		}
		defer sink.Close()
	}
	telCfg := telemetry.Config{EventCapacity: *eventCap}
	if sink != nil {
		telCfg.EventSink = sink
	}
	tel, err := telemetry.New(telCfg)
	if err != nil {
		return err
	}

	// The live-event broadcaster is always on: with no /stream subscribers
	// a publish is one atomic load, and the tap republishes every decision
	// event to whoever is watching.
	stream := alert.NewBroadcaster()
	tel.Events().Tap(stream.EventTap())

	// The controller and runtime share one observer chain; with
	// -attribution the accountant rides alongside the metrics pipeline on
	// the same stream, the provenance recorder follows it, and with
	// -alerts the rule engine is attached LAST, so by the time it closes a
	// minute the accountant has already priced it (the savings rule reads
	// the accountant's ring).
	chain := []telemetry.Observer{tel}
	var acct *attribution.Accountant
	var entrantNames []string
	if *attrib {
		acfg := attribution.Config{Catalog: cat, Assignment: asg, Window: *attribWindow}
		if *tournamentList != "" {
			// roster.Build rejects empty elements, duplicates, and unknown
			// names with an error naming the registered entrants — surface
			// that as the flag's usage error.
			entrantNames = roster.ParseList(*tournamentList)
			if acfg.Entrants, err = roster.Build(entrantNames, cat, cluster.DefaultCostModel()); err != nil {
				return fmt.Errorf("-tournament: %w", err)
			}
		}
		if acct, err = attribution.New(acfg); err != nil {
			return err
		}
		chain = append(chain, acct)
	}
	var prov *provenance.Recorder
	if *provWindow > 0 {
		if prov, err = provenance.NewRecorder(provenance.RecorderConfig{
			Catalog:    cat,
			Assignment: asg,
			Names:      identity.DefaultNames(nFunctions),
			Window:     *provWindow,
		}); err != nil {
			return err
		}
		chain = append(chain, prov)
	}
	var engine *alert.Engine
	if *alerts {
		rules := alert.DefaultRules(*attrib)
		if *alertRules != "" {
			f, err := os.Open(*alertRules)
			if err != nil {
				return err
			}
			rules, err = alert.ParseRules(f)
			f.Close()
			if err != nil {
				return err
			}
		}
		sinks := []alert.Sink{&alert.LogSink{}}
		if *webhook != "" {
			sinks = append(sinks, alert.NewWebhookSink(*webhook))
		}
		if engine, err = alert.NewEngine(alert.Config{
			Rules: rules, Sinks: sinks, Attribution: acct, Stream: stream,
		}); err != nil {
			return err
		}
		defer engine.Close() // after rt.Close: producers stop before the queue drains
		chain = append(chain, engine)
		log.Printf("pulsed: alerting enabled (%d rules, webhook %v)", len(rules), *webhook != "")
	}
	var obs telemetry.Observer = tel
	if len(chain) > 1 {
		obs = telemetry.Multi(chain...)
	}

	var p pulse.Policy
	var store *metastore.Store
	var controller *core.Pulse
	const snapshotName = "pulsed"
	switch *policyName {
	case "pulse":
		cfg := core.Config{Catalog: cat, Assignment: asg, Observer: obs, Shards: *shards}
		if *stateDir != "" {
			if store, err = metastore.Open(*stateDir); err != nil {
				return err
			}
			controller, err = loadOrColdController(store, snapshotName, *stateDir, cfg)
		} else {
			controller, err = core.New(cfg)
		}
		p = controller
	case "openwhisk":
		p, err = pulse.NewBaseline(pulse.BaselineOpenWhisk, cat, asg)
	default:
		return fmt.Errorf("unknown policy %q", *policyName)
	}
	if err != nil {
		return err
	}

	// The tracer taps every sampled span into the SSE stream; with no
	// /stream subscribers a publish is one atomic load.
	var tracer *provenance.Tracer
	if *traceSample > 0 {
		tracer = provenance.NewTracer(provenance.TracerConfig{Stride: *traceSample})
		tracer.Tap(func(tr provenance.Trace) { stream.Publish(alert.StreamTrace, tr) })
		log.Printf("pulsed: invocation tracing enabled (1 in %d)", *traceSample)
	}

	rt, err := runtime.New(runtime.Config{
		Catalog:    cat,
		Assignment: asg,
		Policy:     p,
		Clock:      runtime.WallClock{Compression: *compress},
		Observer:   obs,
		Mode:       *mode,
		Serial:     *serial,
		Tracer:     tracer,
	})
	if err != nil {
		return err
	}
	defer rt.Close() // stops the sharded controller's worker pool
	if controller != nil {
		log.Printf("pulsed: PULSE controller running with %d shard(s)", controller.Shards())
	}
	api, err := runtime.NewInstrumentedAPI(rt, tel)
	if err != nil {
		return err
	}
	if acct != nil {
		api.AttachAttribution(acct)
		log.Printf("pulsed: attribution enabled (fixed baseline window %d min)", acct.Window())
		if len(entrantNames) > 0 {
			log.Printf("pulsed: policy tournament racing %s (/top?by=policy)", strings.Join(entrantNames, ", "))
		}
	}
	if prov != nil {
		api.AttachProvenance(prov)
		log.Printf("pulsed: decision provenance enabled (/why, ring window %d min)", *provWindow)
	}
	api.AttachStream(stream)
	api.AttachAlerts(engine)

	var handler http.Handler = api
	if *debug {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/", api)
		handler = mux
		log.Printf("pulsed: debug surface enabled at /debug/pprof and /debug/vars")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Minute ticker, compressed. The ticker exits cleanly when the
	// runtime is closed underneath it.
	go func() {
		err := runtime.Ticker(ctx, rt, tickEvery)
		if err != nil && err != context.Canceled && !errors.Is(err, runtime.ErrClosed) {
			log.Println("ticker:", err)
		}
	}()

	if *demo {
		go demoTraffic(ctx, rt, *seed, tickEvery)
	}

	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("pulsed: %d functions, policy %s, %s runtime, %s per simulated minute, listening on %s",
		nFunctions, p.Name(), rt.Mode(), tickEvery, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	// Shutdown ordering: ListenAndServe returns as soon as Shutdown is
	// initiated, while in-flight /invoke requests may still be draining.
	// Wait for the drain to finish before the deferred rt.Close() tears
	// down the policy (any straggler past the timeout gets ErrClosed from
	// the runtime's closed guard instead of hitting a closed policy).
	<-drained
	st := rt.Stats()
	log.Printf("pulsed: served %d invocations (%d warm, %d cold), keep-alive $%.4f, accuracy %.2f%%",
		st.Invocations, st.WarmStarts, st.ColdStarts, st.KeepAliveCostUSD, st.MeanAccuracyPct())
	if acct != nil {
		rep := acct.Report()
		log.Printf("pulsed: attribution — $%.4f and %.1f GB-min saved vs fixed-%d-min baseline, %+d cold starts avoided",
			rep.Total.VsFixed.KeepAliveCostUSD, rep.Total.VsFixed.KeepAliveGBMinutes,
			acct.Window(), rep.Total.VsFixed.ColdStartsAvoided)
	}
	if store != nil && controller != nil {
		if err := store.SaveController(snapshotName, controller); err != nil {
			return fmt.Errorf("saving state: %w", err)
		}
		log.Printf("pulsed: saved PULSE state to %s", *stateDir)
	}
	return nil
}

// demoTraffic issues invocations per simulated minute, drawn from the
// default synthetic archetype mix.
func demoTraffic(ctx context.Context, rt *runtime.Runtime, seed int64, tickEvery time.Duration) {
	archetypes := trace.AzureLikeArchetypes()
	rngs := make([]*rand.Rand, len(archetypes))
	series := make([][]int, len(archetypes))
	const chunk = 24 * 60 // pre-generate a day at a time
	for i := range archetypes {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
		series[i] = archetypes[i].Generate(rngs[i], chunk)
	}
	minute := 0
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			idx := minute % chunk
			if idx == 0 && minute > 0 {
				for i := range archetypes {
					series[i] = archetypes[i].Generate(rngs[i], chunk)
				}
			}
			for fn := range series {
				if fn >= rt.NumFunctions() {
					break
				}
				for n := 0; n < series[fn][idx]; n++ {
					if _, err := rt.Invoke(fn); err != nil {
						if errors.Is(err, runtime.ErrClosed) {
							return
						}
						log.Println("demo invoke:", err)
					}
				}
			}
			minute++
		}
	}
}
