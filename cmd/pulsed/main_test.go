package main

import (
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/runtime"
)

// The package doc comment is the operator-facing summary of the HTTP
// surface; it must list every endpoint the API actually serves
// (runtime.Endpoints is the single source of truth). This asserts the doc
// never drifts again the way /events was dropped from it once.
func TestDocCommentListsEveryEndpoint(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// Only the package doc comment counts as documentation: the text
	// before the package clause.
	doc, _, found := strings.Cut(string(src), "package main")
	if !found {
		t.Fatal("main.go has no package clause")
	}
	for _, ep := range runtime.Endpoints() {
		want := ep.Method + " " + ep.Path
		// The doc comment tabulates "METHOD /path" with padding between.
		if !strings.Contains(strings.Join(strings.Fields(doc), " "), want) {
			t.Errorf("doc comment does not document %q", want)
		}
	}
}

// The attribution flags must exist with the documented defaults.
func TestAttributionFlagsRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, flagName := range []string{`"attribution"`, `"attribution-window"`} {
		if !strings.Contains(string(src), flagName) {
			t.Errorf("main.go does not register the %s flag", flagName)
		}
	}
}

// tickInterval guards the -compress flag: compress 0 used to overflow into
// a never-firing ticker, so the daemon served traffic but never advanced
// simulated minutes — a silent hang of the whole control loop.
func TestTickIntervalValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, -60, math.NaN(), math.Inf(1), math.Inf(-1), 1e30} {
		if _, err := tickInterval(bad); err == nil {
			t.Errorf("compress %v accepted", bad)
		}
	}
	for compress, want := range map[float64]time.Duration{
		1:    time.Minute,
		60:   time.Second,
		0.5:  2 * time.Minute, // slow motion is valid
		1200: 50 * time.Millisecond,
	} {
		got, err := tickInterval(compress)
		if err != nil {
			t.Errorf("compress %v rejected: %v", compress, err)
			continue
		}
		if got != want {
			t.Errorf("compress %v: interval %v, want %v", compress, got, want)
		}
	}
}

// The serial-runtime escape hatch and the compress validation must stay
// wired into the flag surface.
func TestRuntimeFlagsRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serial"`, "tickInterval(*compress)"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("main.go does not contain %s", want)
		}
	}
}
