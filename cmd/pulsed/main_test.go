package main

import (
	"os"
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/runtime"
)

// The package doc comment is the operator-facing summary of the HTTP
// surface; it must list every endpoint the API actually serves
// (runtime.Endpoints is the single source of truth). This asserts the doc
// never drifts again the way /events was dropped from it once.
func TestDocCommentListsEveryEndpoint(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// Only the package doc comment counts as documentation: the text
	// before the package clause.
	doc, _, found := strings.Cut(string(src), "package main")
	if !found {
		t.Fatal("main.go has no package clause")
	}
	for _, ep := range runtime.Endpoints() {
		want := ep.Method + " " + ep.Path
		// The doc comment tabulates "METHOD /path" with padding between.
		if !strings.Contains(strings.Join(strings.Fields(doc), " "), want) {
			t.Errorf("doc comment does not document %q", want)
		}
	}
}

// The attribution flags must exist with the documented defaults.
func TestAttributionFlagsRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, flagName := range []string{`"attribution"`, `"attribution-window"`} {
		if !strings.Contains(string(src), flagName) {
			t.Errorf("main.go does not register the %s flag", flagName)
		}
	}
}
