package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/metastore"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/runtime"
)

// The package doc comment is the operator-facing summary of the HTTP
// surface; it must list every endpoint the API actually serves
// (runtime.Endpoints is the single source of truth). This asserts the doc
// never drifts again the way /events was dropped from it once.
func TestDocCommentListsEveryEndpoint(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// Only the package doc comment counts as documentation: the text
	// before the package clause.
	doc, _, found := strings.Cut(string(src), "package main")
	if !found {
		t.Fatal("main.go has no package clause")
	}
	for _, ep := range runtime.Endpoints() {
		want := ep.Method + " " + ep.Path
		// The doc comment tabulates "METHOD /path" with padding between.
		if !strings.Contains(strings.Join(strings.Fields(doc), " "), want) {
			t.Errorf("doc comment does not document %q", want)
		}
	}
}

// The attribution flags must exist with the documented defaults.
func TestAttributionFlagsRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, flagName := range []string{`"attribution"`, `"attribution-window"`} {
		if !strings.Contains(string(src), flagName) {
			t.Errorf("main.go does not register the %s flag", flagName)
		}
	}
}

// The tournament flag must exist, its help text must name the registered
// entrants, and the doc comment must describe the surface it unlocks.
func TestTournamentFlagRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), `"tournament"`) {
		t.Error("main.go does not register the tournament flag")
	}
	doc, _, _ := strings.Cut(string(src), "package main")
	for _, want := range []string{"-tournament", "by=policy", "savings_vs_<entrant>_usd"} {
		if !strings.Contains(doc, want) {
			t.Errorf("doc comment does not mention %q", want)
		}
	}
}

// The provenance and tracing flags must stay wired into the flag surface:
// -provenance-window gates /why (and is on by default), -trace-sample
// gates /traces.
func TestProvenanceFlagsRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, flagName := range []string{`"provenance-window"`, `"trace-sample"`} {
		if !strings.Contains(string(src), flagName) {
			t.Errorf("main.go does not register the %s flag", flagName)
		}
	}
}

// tickInterval guards the -compress flag: compress 0 used to overflow into
// a never-firing ticker, so the daemon served traffic but never advanced
// simulated minutes — a silent hang of the whole control loop.
func TestTickIntervalValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, -60, math.NaN(), math.Inf(1), math.Inf(-1), 1e30} {
		if _, err := tickInterval(bad); err == nil {
			t.Errorf("compress %v accepted", bad)
		}
	}
	for compress, want := range map[float64]time.Duration{
		1:    time.Minute,
		60:   time.Second,
		0.5:  2 * time.Minute, // slow motion is valid
		1200: 50 * time.Millisecond,
	} {
		got, err := tickInterval(compress)
		if err != nil {
			t.Errorf("compress %v rejected: %v", compress, err)
			continue
		}
		if got != want {
			t.Errorf("compress %v: interval %v, want %v", compress, got, want)
		}
	}
}

// The serial-runtime escape hatch and the compress validation must stay
// wired into the flag surface.
func TestRuntimeFlagsRegistered(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serial"`, "tickInterval(*compress)"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("main.go does not contain %s", want)
		}
	}
}

// The daemon must survive any unusable snapshot — corrupted, truncated, or
// from another schema generation — by logging and starting cold, never by
// refusing to start. Only genuine I/O setup failures propagate.
func TestLoadOrColdController(t *testing.T) {
	dir := t.TempDir()
	store, err := metastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Catalog: models.PaperCatalog(), Assignment: models.Assignment{0, 1}}

	// No snapshot at all: silent cold start.
	c, err := loadOrColdController(store, "pulsed", dir, cfg)
	if err != nil || c.ResumeMinute() != 0 {
		t.Fatalf("missing snapshot: controller %v, err %v", c, err)
	}

	// A real snapshot restores.
	warm, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 0}
	for m := 0; m < 10; m++ {
		warm.KeepAlive(m)
		warm.RecordInvocations(m, counts)
	}
	if err := store.SaveController("pulsed", warm); err != nil {
		t.Fatal(err)
	}
	c, err = loadOrColdController(store, "pulsed", dir, cfg)
	if err != nil || c.ResumeMinute() != 10 {
		t.Fatalf("valid snapshot: resume minute %d, err %v; want 10", c.ResumeMinute(), err)
	}

	// Truncate the snapshot mid-file: the daemon logs and starts cold.
	path := filepath.Join(dir, "pulsed.snapshot.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = loadOrColdController(store, "pulsed", dir, cfg)
	if err != nil {
		t.Fatalf("truncated snapshot killed startup: %v", err)
	}
	if c.ResumeMinute() != 0 {
		t.Errorf("truncated snapshot resumed at minute %d, want cold start", c.ResumeMinute())
	}

	// Envelope from another schema generation: same cold-start path.
	doctored := strings.Replace(string(blob), `{"version":2,`, `{"version":99,`, 1)
	if doctored == string(blob) {
		t.Fatal("could not doctor envelope version")
	}
	if err := os.WriteFile(path, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = loadOrColdController(store, "pulsed", dir, cfg)
	if err != nil {
		t.Fatalf("version-mismatched snapshot killed startup: %v", err)
	}
	if c.ResumeMinute() != 0 {
		t.Errorf("version-mismatched snapshot resumed at minute %d, want cold start", c.ResumeMinute())
	}
}
