package pulse_test

import (
	"fmt"
	"log"

	pulse "github.com/pulse-serverless/pulse"
)

// Example runs PULSE and the OpenWhisk fixed policy on the same workload
// and reports the keep-alive cost relationship — the library's two-minute
// tour.
func Example() {
	tr, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 7, Horizon: 6 * 60})
	if err != nil {
		log.Fatal(err)
	}
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, len(tr.Functions))

	ow, err := pulse.NewBaseline(pulse.BaselineOpenWhisk, cat, asg)
	if err != nil {
		log.Fatal(err)
	}
	p, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		log.Fatal(err)
	}
	cfg := pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}
	rOW, err := pulse.Simulate(cfg, ow)
	if err != nil {
		log.Fatal(err)
	}
	rPulse, err := pulse.Simulate(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PULSE cheaper than fixed keep-alive:", rPulse.KeepAliveCostUSD < rOW.KeepAliveCostUSD)
	fmt.Println("same warm starts:", rPulse.WarmStarts == rOW.WarmStarts)
	// Output:
	// PULSE cheaper than fixed keep-alive: true
	// same warm starts: true
}

// ExampleCatalog shows the model families the paper evaluates with.
func ExampleCatalog() {
	cat := pulse.Catalog()
	for _, fam := range cat.Families {
		fmt.Printf("%s: %d variants (%.2f%%..%.2f%%)\n",
			fam.Name, fam.NumVariants(), fam.Lowest().AccuracyPct, fam.Highest().AccuracyPct)
	}
	// Output:
	// GPT: 3 variants (87.65%..93.45%)
	// BERT: 2 variants (79.60%..82.10%)
	// YOLO: 3 variants (56.80%..68.90%)
	// ResNet: 3 variants (76.13%..78.31%)
	// DenseNet: 3 variants (74.98%..77.42%)
}

// ExampleGenerateTrace demonstrates deterministic trace generation.
func ExampleGenerateTrace() {
	a, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 1, Horizon: 60})
	if err != nil {
		log.Fatal(err)
	}
	b, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 1, Horizon: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("functions:", len(a.Functions))
	fmt.Println("same seed, same trace:", a.TotalInvocations() == b.TotalInvocations())
	// Output:
	// functions: 12
	// same seed, same trace: true
}
