package pulse_test

import (
	"testing"

	pulse "github.com/pulse-serverless/pulse"
)

func setup(t *testing.T) (*pulse.Trace, *pulse.ModelCatalog, pulse.Assignment) {
	t.Helper()
	tr, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 3, Horizon: 12 * 60})
	if err != nil {
		t.Fatal(err)
	}
	cat := pulse.Catalog()
	return tr, cat, pulse.UniformAssignment(cat, len(tr.Functions))
}

func TestQuickstartFlow(t *testing.T) {
	tr, cat, asg := setup(t)
	p, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pulse.Simulate(pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invocations == 0 || res.KeepAliveCostUSD <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.MeanAccuracyPct() <= 0 || res.MeanAccuracyPct() > 100 {
		t.Errorf("accuracy = %v", res.MeanAccuracyPct())
	}
}

func TestUniformAssignment(t *testing.T) {
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, 12)
	if len(asg) != 12 {
		t.Fatalf("len = %d", len(asg))
	}
	if err := asg.Validate(cat, 12); err != nil {
		t.Errorf("uniform assignment invalid: %v", err)
	}
	if asg[0] != 0 || asg[5] != 0 || asg[6] != 1 {
		t.Errorf("round-robin broken: %v", asg)
	}
}

func TestAllBaselinesConstructAndRun(t *testing.T) {
	tr, cat, asg := setup(t)
	short, err := tr.Slice(0, 240)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []pulse.Baseline{
		pulse.BaselineOpenWhisk,
		pulse.BaselineAllLow,
		pulse.BaselineWild,
		pulse.BaselineIceBreaker,
		pulse.BaselineMILP,
		pulse.BaselineHoltWinters,
	} {
		p, err := pulse.NewBaseline(b, cat, asg)
		if err != nil {
			t.Fatalf("baseline %d: %v", b, err)
		}
		res, err := pulse.Simulate(pulse.SimulationConfig{Trace: short, Catalog: cat, Assignment: asg}, p)
		if err != nil {
			t.Fatalf("baseline %d run: %v", b, err)
		}
		if res.Invocations == 0 {
			t.Errorf("baseline %d served nothing", b)
		}
	}
	if _, err := pulse.NewBaseline(pulse.Baseline(99), cat, asg); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestIntegratedConstructors(t *testing.T) {
	_, cat, asg := setup(t)
	for _, b := range []pulse.Baseline{pulse.BaselineWild, pulse.BaselineIceBreaker, pulse.BaselineHoltWinters} {
		if _, err := pulse.NewIntegrated(b, cat, asg); err != nil {
			t.Errorf("integrated %d: %v", b, err)
		}
	}
	if _, err := pulse.NewIntegrated(pulse.BaselineMILP, cat, asg); err == nil {
		t.Error("MILP integration should be rejected")
	}
}

func TestSimulateDefaultsCostModel(t *testing.T) {
	tr, cat, asg := setup(t)
	short, err := tr.Slice(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pulse.NewBaseline(pulse.BaselineOpenWhisk, cat, asg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pulse.Simulate(pulse.SimulationConfig{Trace: short, Catalog: cat, Assignment: asg}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeepAliveCostUSD <= 0 {
		t.Error("default cost model not applied")
	}
}

func TestExperimentThroughFacade(t *testing.T) {
	tr, cat, asg := setup(t)
	_ = asg
	short, err := tr.Slice(0, 360)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := pulse.RunExperiment(pulse.ExperimentConfig{
		Trace:   short,
		Catalog: cat,
		Cost:    pulse.DefaultCostModel(),
		Runs:    2,
		Seed:    7,
	}, []pulse.NamedFactory{
		{Name: "openwhisk", New: func(_ int, a pulse.Assignment) (pulse.Policy, error) {
			return pulse.NewBaseline(pulse.BaselineOpenWhisk, cat, a)
		}},
		{Name: "pulse", New: func(_ int, a pulse.Assignment) (pulse.Policy, error) {
			return pulse.New(pulse.Config{Catalog: cat, Assignment: a})
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := pulse.ImprovementOver(aggs[0], aggs[1])
	if err != nil {
		t.Fatal(err)
	}
	if imp.CostPct <= 0 {
		t.Errorf("facade experiment: cost improvement %v, want positive", imp.CostPct)
	}
}
