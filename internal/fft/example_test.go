package fft_test

import (
	"fmt"
	"math"

	"github.com/pulse-serverless/pulse/internal/fft"
)

// ExampleSpectrum extracts the dominant periodicity of a series — the
// mechanism behind the IceBreaker invocation forecaster.
func ExampleSpectrum() {
	// Two days of hourly samples with a strong 24-hour cycle.
	series := make([]float64, 48)
	for i := range series {
		series[i] = 10 + 4*math.Cos(2*math.Pi*float64(i)/24)
	}
	mean, harmonics := fft.Spectrum(series)
	top := harmonics[0]
	fmt.Printf("mean %.1f, dominant period %.0f samples, amplitude %.1f\n",
		mean, top.Period, top.Amplitude)
	// Output:
	// mean 10.0, dominant period 24 samples, amplitude 4.0
}

// ExampleExtrapolate forecasts the next samples of a periodic series from
// its dominant harmonics.
func ExampleExtrapolate() {
	series := make([]float64, 60)
	for i := range series {
		series[i] = 5 + 2*math.Cos(2*math.Pi*float64(i)/12)
	}
	mean, harmonics := fft.Spectrum(series)
	forecast, err := fft.Extrapolate(mean, harmonics, len(series), 3, 2)
	if err != nil {
		panic(err)
	}
	for i, v := range forecast {
		fmt.Printf("t+%d: %.2f\n", i+1, v)
	}
	// Output:
	// t+1: 7.00
	// t+2: 6.73
	// t+3: 6.00
}
