// Package fft implements the fast Fourier transform substrate used by the
// IceBreaker-style invocation forecaster. The Go standard library has no
// FFT, so this package provides one from scratch:
//
//   - an iterative radix-2 Cooley–Tukey transform for power-of-two lengths,
//   - Bluestein's chirp-z algorithm for arbitrary lengths,
//   - real-input helpers and harmonic analysis (dominant frequencies,
//     band-limited reconstruction) on top.
//
// All transforms use the unnormalized forward convention
// X[k] = Σ x[n]·exp(-2πi·kn/N); the inverse divides by N, so
// Inverse(Forward(x)) == x up to floating-point error.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two ≥ n. It panics for
// non-positive n or when the result would overflow int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("fft: NextPowerOfTwo(%d): need positive n", n))
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic(fmt.Sprintf("fft: NextPowerOfTwo(%d): overflow", n))
	}
	return p
}

// Forward computes the discrete Fourier transform of x and returns a new
// slice. Arbitrary lengths are supported (radix-2 fast path, Bluestein
// otherwise). A nil or empty input returns an empty slice.
func Forward(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	ForwardInPlace(out)
	return out
}

// ForwardInPlace computes the DFT of x in place. Non-power-of-two lengths
// fall back to Bluestein (which internally allocates).
func ForwardInPlace(x []complex128) {
	n := len(x)
	switch {
	case n <= 1:
		return
	case IsPowerOfTwo(n):
		radix2(x, false)
	default:
		bluestein(x, false)
	}
}

// Inverse computes the inverse DFT of X (with 1/N normalization) and
// returns a new slice.
func Inverse(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	InverseInPlace(out)
	return out
}

// InverseInPlace computes the inverse DFT of x in place, applying the 1/N
// normalization.
func InverseInPlace(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPowerOfTwo(n) {
		radix2(x, true)
	} else {
		bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] *= inv
	}
}

// ForwardReal transforms a real-valued series, returning the full complex
// spectrum of the same length.
func ForwardReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	ForwardInPlace(cx)
	return cx
}

// InverseReal inverts a spectrum and returns the real parts of the result.
// For spectra of real-valued series the imaginary residue is floating-point
// noise and is discarded.
func InverseReal(spectrum []complex128) []float64 {
	cx := Inverse(spectrum)
	out := make([]float64, len(cx))
	for i, v := range cx {
		out[i] = real(v)
	}
	return out
}

// radix2 runs an iterative in-place Cooley–Tukey transform. inverse selects
// the conjugate twiddle direction (normalization is handled by the caller).
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wn := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wn
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution evaluated
// through power-of-two FFTs (the chirp-z transform).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign·iπ·k²/n). Using k² mod 2n keeps the
	// angle argument small and the chirp numerically exact for large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		w[k] = cmplx.Exp(complex(0, ang))
	}
	m := NextPowerOfTwo(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		bk := cmplx.Conj(w[k])
		b[k] = bk
		if k > 0 {
			b[m-k] = bk
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// Convolve returns the circular convolution of a and b, which must have the
// same length. It returns an error on length mismatch or empty input.
func Convolve(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, fmt.Errorf("fft: Convolve needs equal non-empty lengths, got %d and %d", len(a), len(b))
	}
	fa := ForwardReal(a)
	fb := ForwardReal(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	return InverseReal(fa), nil
}
