package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation used to validate the fast
// transforms.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randomComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, c := range []struct {
		n    int
		want bool
	}{{-4, false}, {0, false}, {1, true}, {2, true}, {3, false}, {1024, true}, {1023, false}} {
		if got := IsPowerOfTwo(c.n); got != c.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {1000, 1024}} {
		if got := NextPowerOfTwo(c.n); got != c.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NextPowerOfTwo(0) should panic")
		}
	}()
	NextPowerOfTwo(0)
}

func TestForwardMatchesNaive(t *testing.T) {
	// Cover radix-2 sizes, Bluestein sizes, primes, and tiny inputs.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 17, 31, 32, 60, 64, 97, 100} {
		x := randomComplex(n, int64(n))
		want := naiveDFT(x)
		got := Forward(x)
		if d := maxDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: max diff vs naive DFT = %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 15, 64, 100, 129} {
		x := randomComplex(n, int64(100+n))
		back := Inverse(Forward(x))
		if d := maxDiff(back, x); d > 1e-9*float64(n+1) {
			t.Errorf("n=%d: inverse(forward) max diff = %g", n, d)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if got := Forward(nil); len(got) != 0 {
		t.Errorf("Forward(nil) len = %d", len(got))
	}
	x := []complex128{complex(3, -2)}
	got := Forward(x)
	if got[0] != x[0] {
		t.Errorf("singleton forward = %v, want %v", got[0], x[0])
	}
	got = Inverse(x)
	if got[0] != x[0] {
		t.Errorf("singleton inverse = %v, want %v", got[0], x[0])
	}
}

func TestForwardRealDCComponent(t *testing.T) {
	x := []float64{5, 5, 5, 5}
	spec := ForwardReal(x)
	if math.Abs(real(spec[0])-20) > 1e-12 {
		t.Errorf("DC bin = %v, want 20", spec[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(spec[k]) > 1e-10 {
			t.Errorf("constant series has nonzero bin %d: %v", k, spec[k])
		}
	}
}

func TestInverseRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 37) // non power of two
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	back := InverseReal(ForwardReal(x))
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatalf("real round trip diverges at %d: %v vs %v", i, back[i], x[i])
		}
	}
}

// Property: linearity — FFT(a·x + y) == a·FFT(x) + FFT(y).
func TestForwardLinearity(t *testing.T) {
	f := func(seed int64) bool {
		n := 24 // Bluestein path
		x := randomComplex(n, seed)
		y := randomComplex(n, seed+1)
		a := complex(1.5, -0.5)
		lhsIn := make([]complex128, n)
		for i := range lhsIn {
			lhsIn[i] = a*x[i] + y[i]
		}
		lhs := Forward(lhsIn)
		fx := Forward(x)
		fy := Forward(y)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(a*fx[i]+fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval — Σ|x|² == (1/N)·Σ|X|².
func TestParseval(t *testing.T) {
	f := func(seed int64) bool {
		n := 50
		x := randomComplex(n, seed)
		spec := Forward(x)
		var timeE, freqE float64
		for i := range x {
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			freqE += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-6*(timeE+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConvolve(t *testing.T) {
	// Circular convolution with a unit impulse is the identity.
	a := []float64{1, 2, 3, 4, 5}
	impulse := []float64{1, 0, 0, 0, 0}
	got, err := Convolve(a, impulse)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-9 {
			t.Errorf("conv[%d] = %v, want %v", i, got[i], a[i])
		}
	}
	// Shifted impulse rotates.
	shift := []float64{0, 1, 0, 0, 0}
	got, err = Convolve(a, shift)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, 2, 3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("shifted conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Convolve(a, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Convolve(nil, nil); err == nil {
		t.Error("empty convolve should fail")
	}
}

func BenchmarkForward1024(b *testing.B) {
	x := randomComplex(1024, 1)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		ForwardInPlace(buf)
	}
}

func BenchmarkForwardBluestein1000(b *testing.B) {
	x := randomComplex(1000, 1)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		ForwardInPlace(buf)
	}
}
