package fft

import (
	"math"
	"testing"
)

// sineSeries builds mean + amp·cos(2π·t/period + phase) over n samples.
func sineSeries(n int, mean, amp, period, phase float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = mean + amp*math.Cos(2*math.Pi*float64(i)/period+phase)
	}
	return x
}

func TestSpectrumRecoversSinusoid(t *testing.T) {
	const n = 120
	x := sineSeries(n, 10, 3, 12, 0.7) // harmonic index n/12 = 10
	mean, hs := Spectrum(x)
	if math.Abs(mean-10) > 1e-9 {
		t.Errorf("mean = %v, want 10", mean)
	}
	if len(hs) == 0 {
		t.Fatal("no harmonics")
	}
	top := hs[0]
	if top.Index != 10 {
		t.Errorf("dominant index = %d, want 10", top.Index)
	}
	if math.Abs(top.Amplitude-3) > 1e-9 {
		t.Errorf("dominant amplitude = %v, want 3", top.Amplitude)
	}
	if math.Abs(top.Period-12) > 1e-9 {
		t.Errorf("dominant period = %v, want 12", top.Period)
	}
	if math.Abs(top.Phase-0.7) > 1e-9 {
		t.Errorf("dominant phase = %v, want 0.7", top.Phase)
	}
}

func TestSpectrumEmpty(t *testing.T) {
	mean, hs := Spectrum(nil)
	if mean != 0 || hs != nil {
		t.Errorf("Spectrum(nil) = %v, %v", mean, hs)
	}
}

func TestSpectrumSortedByAmplitude(t *testing.T) {
	const n = 96
	x := make([]float64, n)
	for i := range x {
		ti := float64(i)
		x[i] = 5*math.Cos(2*math.Pi*ti/24) + 2*math.Cos(2*math.Pi*ti/8) + 1*math.Cos(2*math.Pi*ti/4)
	}
	_, hs := Spectrum(x)
	for i := 1; i < len(hs); i++ {
		if hs[i].Amplitude > hs[i-1].Amplitude+1e-12 {
			t.Fatalf("harmonics not sorted at %d: %v > %v", i, hs[i].Amplitude, hs[i-1].Amplitude)
		}
	}
	if hs[0].Index != n/24 {
		t.Errorf("strongest harmonic index = %d, want %d", hs[0].Index, n/24)
	}
}

func TestExtrapolateContinuesPeriodicSeries(t *testing.T) {
	const n, horizon = 240, 24
	x := sineSeries(n, 4, 2, 24, 1.1)
	mean, hs := Spectrum(x)
	fc, err := Extrapolate(mean, hs, n, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := sineSeries(n+horizon, 4, 2, 24, 1.1)[n:]
	for i := range fc {
		if math.Abs(fc[i]-truth[i]) > 1e-6 {
			t.Fatalf("forecast[%d] = %v, want %v", i, fc[i], truth[i])
		}
	}
}

func TestExtrapolateErrors(t *testing.T) {
	if _, err := Extrapolate(0, nil, 0, 5, 1); err == nil {
		t.Error("seriesLen 0 should fail")
	}
	if _, err := Extrapolate(0, nil, 10, -1, 1); err == nil {
		t.Error("negative horizon should fail")
	}
	fc, err := Extrapolate(2, nil, 10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if v != 2 {
			t.Errorf("no-harmonic forecast = %v, want mean 2", v)
		}
	}
}

func TestReconstructFitsInSample(t *testing.T) {
	const n = 64
	x := sineSeries(n, 1, 0.5, 16, 0)
	mean, hs := Spectrum(x)
	rec, err := Reconstruct(mean, hs, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(rec[i]-x[i]) > 1e-8 {
			t.Fatalf("reconstruct[%d] = %v, want %v", i, rec[i], x[i])
		}
	}
	if _, err := Reconstruct(0, nil, 0, 1); err == nil {
		t.Error("seriesLen 0 should fail")
	}
}

func TestDominantPeriod(t *testing.T) {
	x := sineSeries(100, 0, 1, 20, 0)
	if got := DominantPeriod(x); math.Abs(got-20) > 1e-9 {
		t.Errorf("DominantPeriod = %v, want 20", got)
	}
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 3
	}
	if got := DominantPeriod(flat); got != 0 {
		t.Errorf("DominantPeriod of constant = %v, want 0", got)
	}
	if got := DominantPeriod(nil); got != 0 {
		t.Errorf("DominantPeriod(nil) = %v, want 0", got)
	}
}

func BenchmarkSpectrum1440(b *testing.B) {
	// One simulated day at minute resolution.
	x := sineSeries(1440, 10, 4, 240, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Spectrum(x)
	}
}
