package fft

import (
	"math"
	"testing"
)

// FuzzRoundTrip: Inverse(Forward(x)) == x for arbitrary real series of
// arbitrary (including non-power-of-two) lengths.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 128, 7, 9, 200, 13})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 512 {
			return
		}
		x := make([]float64, len(raw))
		for i, b := range raw {
			x[i] = float64(b) - 128
		}
		back := InverseReal(ForwardReal(x))
		if len(back) != len(x) {
			t.Fatalf("length changed: %d vs %d", len(back), len(x))
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-6 {
				t.Fatalf("round trip diverged at %d: %v vs %v (n=%d)", i, back[i], x[i], len(x))
			}
		}
		// Spectrum/Extrapolate must not panic or return non-finite values.
		mean, hs := Spectrum(x)
		if math.IsNaN(mean) {
			t.Fatal("NaN mean")
		}
		fc, err := Extrapolate(mean, hs, len(x), 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range fc {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite forecast %v", v)
			}
		}
	})
}
