package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Harmonic describes one frequency component of a real series of length N.
// Index k corresponds to frequency k/N cycles per sample, i.e. a period of
// N/k samples.
type Harmonic struct {
	Index     int     // spectrum bin (1 ≤ Index ≤ N/2 for real series)
	Amplitude float64 // 2·|X[k]|/N — the peak amplitude of the sinusoid
	Phase     float64 // phase in radians
	Period    float64 // N / Index, in samples
}

// Spectrum analyzes a real series and returns its positive-frequency
// harmonics sorted by descending amplitude, together with the series mean
// (the DC component). The IceBreaker forecaster uses the top harmonics to
// extrapolate invocation counts.
func Spectrum(x []float64) (mean float64, harmonics []Harmonic) {
	n := len(x)
	if n == 0 {
		return 0, nil
	}
	spec := ForwardReal(x)
	mean = real(spec[0]) / float64(n)
	half := n / 2
	harmonics = make([]Harmonic, 0, half)
	for k := 1; k <= half; k++ {
		amp := 2 * cmplx.Abs(spec[k]) / float64(n)
		if k == half && n%2 == 0 {
			// The Nyquist bin is not doubled for even-length series.
			amp = cmplx.Abs(spec[k]) / float64(n)
		}
		harmonics = append(harmonics, Harmonic{
			Index:     k,
			Amplitude: amp,
			Phase:     cmplx.Phase(spec[k]),
			Period:    float64(n) / float64(k),
		})
	}
	sort.SliceStable(harmonics, func(i, j int) bool {
		return harmonics[i].Amplitude > harmonics[j].Amplitude
	})
	return mean, harmonics
}

// Extrapolate evaluates the model "mean + Σ harmonics" at sample positions
// n, n+1, ..., n+horizon-1 where n = len of the analyzed series. This is
// the band-limited periodic extension IceBreaker uses to forecast future
// invocation counts: the dominant harmonics of the observed window are
// assumed to continue.
//
// seriesLen must match the length of the series passed to Spectrum;
// topK limits how many of the strongest harmonics are used (topK ≤ 0 uses
// all). The forecast is not clamped; callers clamp to their domain.
func Extrapolate(mean float64, harmonics []Harmonic, seriesLen, horizon, topK int) ([]float64, error) {
	if seriesLen <= 0 {
		return nil, fmt.Errorf("fft: Extrapolate: seriesLen must be positive, got %d", seriesLen)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("fft: Extrapolate: negative horizon %d", horizon)
	}
	use := harmonics
	if topK > 0 && topK < len(harmonics) {
		use = harmonics[:topK]
	}
	out := make([]float64, horizon)
	for i := 0; i < horizon; i++ {
		t := float64(seriesLen + i)
		v := mean
		for _, h := range use {
			omega := 2 * math.Pi * float64(h.Index) / float64(seriesLen)
			v += h.Amplitude * math.Cos(omega*t+h.Phase)
		}
		out[i] = v
	}
	return out, nil
}

// Reconstruct evaluates the truncated harmonic model over the original
// sample positions 0..seriesLen-1, useful for measuring in-sample fit.
func Reconstruct(mean float64, harmonics []Harmonic, seriesLen, topK int) ([]float64, error) {
	if seriesLen <= 0 {
		return nil, fmt.Errorf("fft: Reconstruct: seriesLen must be positive, got %d", seriesLen)
	}
	use := harmonics
	if topK > 0 && topK < len(harmonics) {
		use = harmonics[:topK]
	}
	out := make([]float64, seriesLen)
	for i := 0; i < seriesLen; i++ {
		v := mean
		for _, h := range use {
			omega := 2 * math.Pi * float64(h.Index) / float64(seriesLen)
			v += h.Amplitude * math.Cos(omega*float64(i)+h.Phase)
		}
		out[i] = v
	}
	return out, nil
}

// DominantPeriod returns the period (in samples) of the strongest harmonic,
// or 0 when the series has no oscillatory component (empty spectrum or all
// amplitudes ~0). A tolerance relative to the mean filters numerical noise.
func DominantPeriod(x []float64) float64 {
	mean, hs := Spectrum(x)
	if len(hs) == 0 {
		return 0
	}
	top := hs[0]
	noise := 1e-9 * (math.Abs(mean) + 1)
	if top.Amplitude <= noise {
		return 0
	}
	return top.Period
}
