package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveTextbook(t *testing.T) {
	// max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → optimum 36 at (2,6).
	sol, err := Solve(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 36) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !almost(sol.X[0], 2) || !almost(sol.X[1], 6) {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
	if sol.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func TestSolveBindingBudget(t *testing.T) {
	// Knapsack relaxation: max 5x + 4y s.t. 2x + y ≤ 3, x ≤ 1, y ≤ 1.
	// Optimum: x = 1, y = 1 (weight 3), objective 9.
	sol, err := Solve(
		[]float64{5, 4},
		[][]float64{{2, 1}, {1, 0}, {0, 1}},
		[]float64{3, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 9) {
		t.Errorf("objective = %v, want 9", sol.Objective)
	}
}

func TestSolveFractionalOptimum(t *testing.T) {
	// max x + y s.t. x + y ≤ 1.5, x ≤ 1, y ≤ 1 → 1.5 (fractional corner).
	sol, err := Solve(
		[]float64{1, 1},
		[][]float64{{1, 1}, {1, 0}, {0, 1}},
		[]float64{1.5, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 1.5) {
		t.Errorf("objective = %v, want 1.5", sol.Objective)
	}
}

func TestSolveZeroAndDegenerate(t *testing.T) {
	// Empty problem.
	sol, err := Solve(nil, nil, nil)
	if err != nil || sol.Objective != 0 {
		t.Errorf("empty LP: %v, %v", sol, err)
	}
	// All-negative objective: optimum at origin.
	sol, err = Solve([]float64{-1, -2}, [][]float64{{1, 1}}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 0) || !almost(sol.X[0], 0) || !almost(sol.X[1], 0) {
		t.Errorf("negative objective LP: %+v", sol)
	}
	// Zero bound forces the variable out.
	sol, err = Solve([]float64{1}, [][]float64{{1}}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 0) {
		t.Errorf("zero-bound LP objective = %v", sol.Objective)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// max x with no binding constraint on x.
	_, err := Solve([]float64{1, 0}, [][]float64{{0, 1}}, []float64{1})
	if err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/bound mismatch accepted")
	}
	if _, err := Solve([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := Solve([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := Solve([]float64{math.NaN()}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("NaN objective accepted")
	}
	if _, err := Solve([]float64{1}, [][]float64{{math.Inf(1)}}, []float64{1}); err == nil {
		t.Error("Inf coefficient accepted")
	}
}

// Property: the returned solution is primal-feasible and matches its
// reported objective, on random bounded LPs.
func TestSolveFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		m := rng.Intn(5) + 1
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 1
		}
		a := make([][]float64, m+n)
		b := make([]float64, m+n)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64()
			}
			b[i] = rng.Float64() * 5
		}
		// Explicit upper bounds keep the problem bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a[m+j] = row
			b[m+j] = rng.Float64()*3 + 0.5
		}
		sol, err := Solve(c, a, b)
		if err != nil {
			return false
		}
		var obj float64
		for j, x := range sol.X {
			if x < -1e-7 {
				return false
			}
			obj += c[j] * x
		}
		if math.Abs(obj-sol.Objective) > 1e-6*(1+math.Abs(obj)) {
			return false
		}
		for i := range a {
			var lhs float64
			for j := range sol.X {
				lhs += a[i][j] * sol.X[j]
			}
			if lhs > b[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: LP optimum bounds from above the best random feasible integer
// point (it is a relaxation).
func TestSolveIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(4) + 2
		c := make([]float64, n)
		w := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64() * 10
			w[j] = rng.Float64()*3 + 0.1
		}
		budget := rng.Float64() * 5
		a := make([][]float64, 1+n)
		b := make([]float64, 1+n)
		a[0] = w
		b[0] = budget
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a[1+j] = row
			b[1+j] = 1
		}
		sol, err := Solve(c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force the best 0/1 point.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			var val, wt float64
			for j := 0; j < n; j++ {
				if mask>>j&1 == 1 {
					val += c[j]
					wt += w[j]
				}
			}
			if wt <= budget && val > best {
				best = val
			}
		}
		if sol.Objective < best-1e-6 {
			t.Fatalf("LP %v below integer optimum %v", sol.Objective, best)
		}
	}
}

func BenchmarkSolve36Vars(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 36, 49
	c := make([]float64, n)
	for j := range c {
		c[j] = rng.Float64()
	}
	a := make([][]float64, m)
	bb := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Float64()
		}
		bb[i] = float64(n) / 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(c, a, bb); err != nil {
			b.Fatal(err)
		}
	}
}
