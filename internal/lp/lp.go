// Package lp implements a dense primal simplex solver for linear programs
// in the inequality form
//
//	maximize    c·x
//	subject to  A·x ≤ b,  x ≥ 0,  b ≥ 0
//
// It exists as the relaxation engine for the generic MILP solver in
// internal/milp (the Figure 9 comparator): the paper evaluates PULSE
// against "Mixed Integer Linear Programming", whose cost is dominated by
// exactly this machinery. The b ≥ 0 restriction keeps the all-slack basis
// feasible, so no phase-1 is needed; the MILP layer arranges its
// formulations to satisfy it.
//
// Bland's rule guards against cycling; an iteration cap guards against
// pathological inputs.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnbounded is returned when the objective can grow without limit.
var ErrUnbounded = errors.New("lp: unbounded objective")

// ErrIterationLimit is returned when the simplex fails to converge within
// the iteration cap.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const (
	// eps is the numerical tolerance for pivoting and optimality tests.
	eps = 1e-9
	// maxIterationsFactor bounds iterations at factor × (rows + cols).
	maxIterationsFactor = 50
)

// Solution is an optimal LP solution.
type Solution struct {
	X          []float64
	Objective  float64
	Iterations int
}

// Solve maximizes c·x subject to A·x ≤ b, x ≥ 0. Every b[i] must be
// non-negative. A must be rectangular with len(A) == len(b) rows and
// len(c) columns.
func Solve(c []float64, a [][]float64, b []float64) (Solution, error) {
	n := len(c)
	m := len(a)
	if m != len(b) {
		return Solution{}, fmt.Errorf("lp: %d constraint rows but %d bounds", m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return Solution{}, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
		if b[i] < 0 {
			return Solution{}, fmt.Errorf("lp: negative bound b[%d] = %v (phase-1 not supported)", i, b[i])
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Solution{}, fmt.Errorf("lp: non-finite coefficient A[%d][%d]", i, j)
			}
		}
	}
	for j, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Solution{}, fmt.Errorf("lp: non-finite objective coefficient c[%d]", j)
		}
	}
	if n == 0 {
		return Solution{X: nil, Objective: 0}, nil
	}

	// Tableau: m rows × (n + m + 1) columns — structural vars, slacks, rhs.
	// Row m is the objective row (negated reduced costs convention).
	width := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, width)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][width-1] = b[i]
	}
	obj := make([]float64, width)
	for j := 0; j < n; j++ {
		obj[j] = -c[j]
	}
	tab[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i // slack basis
	}

	maxIter := maxIterationsFactor * (m + n)
	iter := 0
	for ; iter < maxIter; iter++ {
		// Entering variable: Bland's rule — lowest index with negative
		// reduced cost.
		pivotCol := -1
		for j := 0; j < n+m; j++ {
			if tab[m][j] < -eps {
				pivotCol = j
				break
			}
		}
		if pivotCol == -1 {
			break // optimal
		}
		// Leaving variable: minimum ratio, ties by lowest basis index
		// (Bland).
		pivotRow := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][pivotCol] > eps {
				ratio := tab[i][width-1] / tab[i][pivotCol]
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && (pivotRow == -1 || basis[i] < basis[pivotRow])) {
					bestRatio = ratio
					pivotRow = i
				}
			}
		}
		if pivotRow == -1 {
			return Solution{}, ErrUnbounded
		}
		pivot(tab, basis, pivotRow, pivotCol)
	}
	if iter == maxIter {
		return Solution{}, ErrIterationLimit
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = tab[i][width-1]
		}
	}
	return Solution{X: x, Objective: tab[m][width-1], Iterations: iter}, nil
}

// pivot performs a full tableau pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col int) {
	width := len(tab[row])
	p := tab[row][col]
	for j := 0; j < width; j++ {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	if row < len(basis) {
		basis[row] = col
	}
}
