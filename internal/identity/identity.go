// Package identity is the function identity layer: stable, validated
// function names mapped to dense integer slots. Every per-function slice in
// the stack (controller histories and plan rings, policy keep-alive windows,
// runtime stripes, attribution ledgers) is indexed by a slot issued here, so
// functions can be registered and deregistered while the system runs without
// renumbering the survivors.
//
// Slots are append-only: registering issues the next slot, deregistering
// tombstones the slot forever. A name that is deregistered and registered
// again gets a brand-new slot — and therefore brand-new (empty) per-function
// state everywhere, which is exactly the paper's cold-history rule for fresh
// functions: no inter-arrival history means no keep-alive plan until the
// first invocations arrive.
package identity

import (
	"fmt"
	"unicode/utf8"
)

// MaxNameLen bounds function names. Snapshot files are named after the
// controller, not its functions, but names still travel through JSON APIs
// and metrics labels, so an explicit cap keeps them printable and bounded.
const MaxNameLen = 200

// ValidateName reports whether name is a legal function (or snapshot)
// identifier: non-empty, at most MaxNameLen bytes, and built only from
// ASCII letters, digits, '-', '_' and '.'. These are exactly the rune rules
// the metastore applies to snapshot file names (they exclude path
// separators, so a name can never traverse out of the store directory);
// sharing one validator keeps the registry and the metastore in agreement,
// which FuzzFunctionName asserts.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("identity: empty name")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("identity: name of %d bytes exceeds %d", len(name), MaxNameLen)
	}
	for _, r := range name {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("identity: invalid name %q (rune %q)", name, r)
		}
	}
	if !utf8.ValidString(name) {
		return fmt.Errorf("identity: invalid name %q (not UTF-8)", name)
	}
	return nil
}

// DefaultNames returns the conventional names fn-0 … fn-{n-1} used when a
// caller supplies an assignment without explicit names.
func DefaultNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("fn-%d", i)
	}
	return names
}

// Registry maps function names to slots. It is not concurrency-safe:
// every owner in the stack already serializes registration behind its own
// minute barrier (the runtime's exclusive RWMutex side, the controller's
// between-minutes contract), and the registry inherits that discipline.
type Registry struct {
	names  []string       // slot → name (kept for tombstoned slots)
	active []bool         // slot → live?
	slots  map[string]int // active name → slot
}

// NewRegistry builds a registry with every supplied name pre-registered, in
// order, as slots 0..len(names)-1. Names must be valid and unique.
func NewRegistry(names []string) (*Registry, error) {
	r := &Registry{slots: make(map[string]int, len(names))}
	for _, name := range names {
		if _, err := r.Register(name); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Register issues the next slot for name. It fails if the name is invalid
// or already registered and active; a previously deregistered name is
// accepted and gets a fresh slot.
func (r *Registry) Register(name string) (int, error) {
	if err := ValidateName(name); err != nil {
		return 0, err
	}
	if slot, ok := r.slots[name]; ok {
		return 0, fmt.Errorf("identity: %q already registered as function %d", name, slot)
	}
	slot := len(r.names)
	r.names = append(r.names, name)
	r.active = append(r.active, true)
	r.slots[name] = slot
	return slot, nil
}

// Deregister tombstones the named function's slot and returns it. The slot
// is never reused.
func (r *Registry) Deregister(name string) (int, error) {
	slot, ok := r.slots[name]
	if !ok {
		return 0, fmt.Errorf("identity: %q is not registered", name)
	}
	delete(r.slots, name)
	r.active[slot] = false
	return slot, nil
}

// Slot returns the slot of an active name.
func (r *Registry) Slot(name string) (int, bool) {
	slot, ok := r.slots[name]
	return slot, ok
}

// Name returns the name that owns (or owned) slot; "" when out of range.
func (r *Registry) Name(slot int) string {
	if slot < 0 || slot >= len(r.names) {
		return ""
	}
	return r.names[slot]
}

// Active reports whether slot is in range and currently registered.
func (r *Registry) Active(slot int) bool {
	return slot >= 0 && slot < len(r.active) && r.active[slot]
}

// Len returns the total number of slots ever issued (active + tombstoned).
func (r *Registry) Len() int { return len(r.names) }

// NumActive returns the number of currently registered functions.
func (r *Registry) NumActive() int { return len(r.slots) }

// ActiveSlice returns the active flags indexed by slot. The slice aliases
// the registry's own state and is invalidated by the next Register; it
// exists so hot loops can gate on activity without a method call per
// function.
func (r *Registry) ActiveSlice() []bool { return r.active }
