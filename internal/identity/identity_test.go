package identity

import (
	"strings"
	"testing"
)

func TestValidateName(t *testing.T) {
	good := []string{"fn-0", "a", "A.b_c-9", strings.Repeat("x", MaxNameLen), "..", "pulsed"}
	for _, name := range good {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	bad := []string{"", "a/b", "a b", "fn\x00", "héllo", "..\\up", strings.Repeat("x", MaxNameLen+1), "名前"}
	for _, name := range bad {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) accepted", name)
		}
	}
}

func TestDefaultNames(t *testing.T) {
	names := DefaultNames(3)
	want := []string{"fn-0", "fn-1", "fn-2"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("DefaultNames(3)[%d] = %q, want %q", i, names[i], n)
		}
		if err := ValidateName(names[i]); err != nil {
			t.Errorf("default name %q invalid: %v", names[i], err)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r, err := NewRegistry([]string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.NumActive() != 2 {
		t.Fatalf("Len/NumActive = %d/%d, want 2/2", r.Len(), r.NumActive())
	}
	if slot, ok := r.Slot("beta"); !ok || slot != 1 {
		t.Fatalf("Slot(beta) = %d,%v", slot, ok)
	}

	// Duplicate and invalid registrations fail without issuing slots.
	if _, err := r.Register("alpha"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := r.Register("no/slash"); err == nil {
		t.Fatal("invalid name accepted")
	}
	if r.Len() != 2 {
		t.Fatalf("failed registrations issued slots: Len = %d", r.Len())
	}

	// Deregistering tombstones the slot; the slot keeps its name but is
	// inactive, and the name is free again.
	slot, err := r.Deregister("alpha")
	if err != nil || slot != 0 {
		t.Fatalf("Deregister(alpha) = %d, %v", slot, err)
	}
	if r.Active(0) || !r.Active(1) {
		t.Fatalf("active flags wrong after deregister: %v", r.ActiveSlice())
	}
	if r.Name(0) != "alpha" {
		t.Fatalf("tombstoned slot lost its name: %q", r.Name(0))
	}
	if _, err := r.Deregister("alpha"); err == nil {
		t.Fatal("double deregister accepted")
	}

	// Re-registering a dead name issues a fresh slot — never slot reuse.
	slot, err = r.Register("alpha")
	if err != nil || slot != 2 {
		t.Fatalf("re-register alpha = %d, %v (want fresh slot 2)", slot, err)
	}
	if !r.Active(2) || r.Active(0) {
		t.Fatal("re-registration revived the tombstoned slot")
	}
	if r.NumActive() != 2 || r.Len() != 3 {
		t.Fatalf("NumActive/Len = %d/%d, want 2/3", r.NumActive(), r.Len())
	}
}

func TestRegistryBounds(t *testing.T) {
	r, err := NewRegistry(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Active(-1) || r.Active(0) {
		t.Fatal("out-of-range slots reported active")
	}
	if r.Name(-1) != "" || r.Name(0) != "" {
		t.Fatal("out-of-range slots have names")
	}
	if _, err := NewRegistry([]string{"dup", "dup"}); err == nil {
		t.Fatal("duplicate seed names accepted")
	}
}
