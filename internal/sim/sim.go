// Package sim is the experiment harness: it reproduces the paper's
// simulation methodology of many runs over the same trace, "each presenting
// a unique combination of model-to-function assignments", evaluating every
// policy on the same per-run assignment (paired comparison) and aggregating
// the three metrics — service time, keep-alive cost, accuracy — plus the
// per-decision overhead distribution Figure 9 reports.
//
// Runs fan out over a worker pool; each run derives its own RNG from the
// master seed, so results are bit-identical regardless of worker count.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// NamedFactory constructs a fresh policy instance for one run. Policies are
// stateful, so every run needs its own instance.
type NamedFactory struct {
	Name string
	New  func(run int, asg models.Assignment) (cluster.Policy, error)
}

// ExperimentConfig assembles a multi-run experiment.
type ExperimentConfig struct {
	Trace   *trace.Trace
	Catalog *models.Catalog
	Cost    cluster.CostModel
	// Runs is the number of simulation runs (the paper uses 1000).
	Runs int
	// Seed derives each run's model-to-function assignment.
	Seed int64
	// Workers bounds the worker pool; ≤ 0 uses GOMAXPROCS.
	Workers int
	// MeasureOverhead times policy calls (Figure 9).
	MeasureOverhead bool
	// Observer, when non-nil, receives instrumentation samples from every
	// run. Implementations must be concurrency-safe: runs execute on a
	// worker pool and share the one observer.
	Observer telemetry.Observer
	// Attribution attaches a fresh counterfactual accountant — the same
	// attribution.Accountant pulsed serves live — to every run, and
	// aggregates each policy's savings versus the shadow baselines.
	Attribution bool
	// AttributionWindow is the fixed-baseline window in minutes
	// (default cluster.DefaultKeepAliveWindow).
	AttributionWindow int
}

func (c *ExperimentConfig) validate() error {
	if c.Trace == nil {
		return fmt.Errorf("sim: nil trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.Catalog == nil {
		return fmt.Errorf("sim: nil catalog")
	}
	if err := c.Catalog.Validate(); err != nil {
		return err
	}
	if c.Runs <= 0 {
		return fmt.Errorf("sim: non-positive run count %d", c.Runs)
	}
	if c.Cost.USDPerGBSecond <= 0 {
		return fmt.Errorf("sim: non-positive cost rate")
	}
	return nil
}

// runSummary is the scalar digest of one policy's run (per-minute series
// are dropped to keep thousand-run experiments in memory).
type runSummary struct {
	serviceSec    float64
	costUSD       float64
	accuracyPct   float64
	warmRate      float64
	coldStarts    int
	overheadSec   float64
	overheadRatio float64
	peakKaMMB     float64

	// Attribution digests (zero unless ExperimentConfig.Attribution).
	savingsVsFixedUSD  float64
	savingsVsNeverUSD  float64
	oracleGapUSD       float64 // actual − oracle cost (the price of not knowing the future)
	coldAvoidedVsFixed int
}

func summarize(r *cluster.Result) runSummary {
	peak := 0.0
	for _, v := range r.PerMinuteKaMMB {
		if v > peak {
			peak = v
		}
	}
	return runSummary{
		serviceSec:    r.TotalServiceSec,
		costUSD:       r.KeepAliveCostUSD,
		accuracyPct:   r.MeanAccuracyPct(),
		warmRate:      r.WarmStartRate(),
		coldStarts:    r.ColdStarts,
		overheadSec:   r.PolicyOverheadSec,
		overheadRatio: r.OverheadPerServiceTime(),
		peakKaMMB:     peak,
	}
}

// Aggregate is the across-runs summary of one policy.
type Aggregate struct {
	Policy string
	Runs   int

	MeanServiceSec  float64
	StdServiceSec   float64
	MeanCostUSD     float64
	StdCostUSD      float64
	MeanAccuracyPct float64
	StdAccuracyPct  float64
	MeanWarmRate    float64
	MeanColdStarts  float64
	MeanPeakKaMMB   float64
	MeanOverheadSec float64

	// Attribution means (populated when ExperimentConfig.Attribution): net
	// keep-alive savings versus the shadow baselines and the cold starts
	// the live policy avoided relative to the fixed baseline.
	MeanSavingsVsFixedUSD  float64
	MeanSavingsVsNeverUSD  float64
	MeanOracleGapUSD       float64
	MeanColdAvoidedVsFixed float64

	// OverheadRatios holds each run's decision-overhead/service-time ratio
	// — the x-axis samples of Figure 9(a).
	OverheadRatios []float64
}

func aggregate(name string, rows []runSummary) *Aggregate {
	a := &Aggregate{Policy: name, Runs: len(rows)}
	if len(rows) == 0 {
		return a
	}
	var sSvc, sCost, sAcc, sWarm, sCold, sPeak, sOvh float64
	var sFix, sNever, sOracle, sColdAv float64
	for _, r := range rows {
		sSvc += r.serviceSec
		sCost += r.costUSD
		sAcc += r.accuracyPct
		sWarm += r.warmRate
		sCold += float64(r.coldStarts)
		sPeak += r.peakKaMMB
		sOvh += r.overheadSec
		sFix += r.savingsVsFixedUSD
		sNever += r.savingsVsNeverUSD
		sOracle += r.oracleGapUSD
		sColdAv += float64(r.coldAvoidedVsFixed)
		a.OverheadRatios = append(a.OverheadRatios, r.overheadRatio)
	}
	n := float64(len(rows))
	a.MeanServiceSec = sSvc / n
	a.MeanCostUSD = sCost / n
	a.MeanAccuracyPct = sAcc / n
	a.MeanWarmRate = sWarm / n
	a.MeanColdStarts = sCold / n
	a.MeanPeakKaMMB = sPeak / n
	a.MeanOverheadSec = sOvh / n
	a.MeanSavingsVsFixedUSD = sFix / n
	a.MeanSavingsVsNeverUSD = sNever / n
	a.MeanOracleGapUSD = sOracle / n
	a.MeanColdAvoidedVsFixed = sColdAv / n
	var vSvc, vCost, vAcc float64
	for _, r := range rows {
		vSvc += (r.serviceSec - a.MeanServiceSec) * (r.serviceSec - a.MeanServiceSec)
		vCost += (r.costUSD - a.MeanCostUSD) * (r.costUSD - a.MeanCostUSD)
		vAcc += (r.accuracyPct - a.MeanAccuracyPct) * (r.accuracyPct - a.MeanAccuracyPct)
	}
	a.StdServiceSec = math.Sqrt(vSvc / n)
	a.StdCostUSD = math.Sqrt(vCost / n)
	a.StdAccuracyPct = math.Sqrt(vAcc / n)
	return a
}

// RunExperiment executes cfg.Runs paired simulations: each run draws one
// model-to-function assignment and evaluates every factory's policy on it.
// Aggregates are returned in factory order.
func RunExperiment(cfg ExperimentConfig, factories []NamedFactory) ([]*Aggregate, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(factories) == 0 {
		return nil, fmt.Errorf("sim: no policies")
	}
	names := map[string]bool{}
	for _, f := range factories {
		if f.Name == "" || f.New == nil {
			return nil, fmt.Errorf("sim: factory with empty name or nil constructor")
		}
		if names[f.Name] {
			return nil, fmt.Errorf("sim: duplicate policy name %q", f.Name)
		}
		names[f.Name] = true
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	nFn := len(cfg.Trace.Functions)
	rows := make([][]runSummary, len(factories))
	for i := range rows {
		rows[i] = make([]runSummary, cfg.Runs)
	}
	jobs := make(chan int)
	errCh := make(chan error, workers) // each worker reports at most one error
	abort := make(chan struct{})       // closed on the first error so dispatch stops
	var abortOnce sync.Once
	fail := func(err error) {
		errCh <- err
		abortOnce.Do(func() { close(abort) })
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range jobs {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(run)*7_919))
				asg := models.RandomAssignment(rng, cfg.Catalog, nFn)
				for fi, f := range factories {
					p, err := f.New(run, asg)
					if err != nil {
						fail(fmt.Errorf("sim: run %d policy %q: %w", run, f.Name, err))
						return
					}
					// With Attribution, a fresh run-scoped accountant rides
					// the same observer seam pulsed uses live, so offline
					// and online savings agree by construction.
					obs := cfg.Observer
					var acct *attribution.Accountant
					if cfg.Attribution {
						acct, err = attribution.New(attribution.Config{
							Catalog:    cfg.Catalog,
							Assignment: asg,
							Cost:       cfg.Cost,
							Window:     cfg.AttributionWindow,
						})
						if err != nil {
							fail(fmt.Errorf("sim: run %d policy %q: %w", run, f.Name, err))
							return
						}
						obs = telemetry.Multi(cfg.Observer, acct)
					}
					res, err := cluster.Run(cluster.Config{
						Trace:           cfg.Trace,
						Catalog:         cfg.Catalog,
						Assignment:      asg,
						Cost:            cfg.Cost,
						MeasureOverhead: cfg.MeasureOverhead,
						Observer:        obs,
					}, p)
					// Run-scoped policies are done after their run; a
					// sharded PULSE controller releases its worker pool
					// here rather than waiting for its finalizer.
					if c, ok := p.(io.Closer); ok {
						_ = c.Close()
					}
					if err != nil {
						fail(fmt.Errorf("sim: run %d policy %q: %w", run, f.Name, err))
						return
					}
					row := summarize(res)
					if acct != nil {
						rep := acct.Report()
						row.savingsVsFixedUSD = rep.Total.VsFixed.KeepAliveCostUSD
						row.savingsVsNeverUSD = rep.Total.VsNever.KeepAliveCostUSD
						row.oracleGapUSD = -rep.Total.VsOracle.KeepAliveCostUSD
						row.coldAvoidedVsFixed = rep.Total.VsFixed.ColdStartsAvoided
					}
					rows[fi][run] = row
				}
			}
		}()
	}
dispatch:
	for run := 0; run < cfg.Runs; run++ {
		select {
		case jobs <- run:
		case <-abort:
			break dispatch // a worker died; stop feeding work
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	out := make([]*Aggregate, len(factories))
	for fi, f := range factories {
		out[fi] = aggregate(f.Name, rows[fi])
		sort.Float64s(out[fi].OverheadRatios)
	}
	return out, nil
}

// Improvement summarizes one policy's relative change versus a baseline in
// the paper's reporting convention: positive is better for all three
// metrics (cost and service time are reductions, accuracy is a gain).
type Improvement struct {
	Policy         string
	Baseline       string
	CostPct        float64 // % keep-alive cost reduction vs baseline
	ServiceTimePct float64 // % service time reduction vs baseline
	AccuracyPct    float64 // % relative accuracy change vs baseline
}

// ImprovementOver computes the Figure 6(a)/8/10/11/12 y-axis values.
func ImprovementOver(baseline, x *Aggregate) (Improvement, error) {
	if baseline == nil || x == nil {
		return Improvement{}, fmt.Errorf("sim: nil aggregate")
	}
	if baseline.MeanCostUSD == 0 || baseline.MeanServiceSec == 0 || baseline.MeanAccuracyPct == 0 {
		return Improvement{}, fmt.Errorf("sim: degenerate baseline %q", baseline.Policy)
	}
	return Improvement{
		Policy:         x.Policy,
		Baseline:       baseline.Policy,
		CostPct:        (baseline.MeanCostUSD - x.MeanCostUSD) / baseline.MeanCostUSD * 100,
		ServiceTimePct: (baseline.MeanServiceSec - x.MeanServiceSec) / baseline.MeanServiceSec * 100,
		AccuracyPct:    (x.MeanAccuracyPct - baseline.MeanAccuracyPct) / baseline.MeanAccuracyPct * 100,
	}, nil
}
