package sim

import (
	"math"
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func experimentConfig(t *testing.T, runs int) ExperimentConfig {
	t.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 9, Horizon: trace.MinutesPerDay / 2})
	if err != nil {
		t.Fatal(err)
	}
	return ExperimentConfig{
		Trace:   tr,
		Catalog: models.PaperCatalog(),
		Cost:    cluster.DefaultCostModel(),
		Runs:    runs,
		Seed:    1234,
	}
}

func standardFactories(cfg ExperimentConfig) []NamedFactory {
	return []NamedFactory{
		{
			Name: "openwhisk",
			New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
				return policy.NewFixed(cfg.Catalog, asg, 10, policy.QualityHighest)
			},
		},
		{
			Name: "pulse",
			New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
				return core.New(core.Config{Catalog: cfg.Catalog, Assignment: asg})
			},
		},
	}
}

func TestRunExperimentValidation(t *testing.T) {
	cfg := experimentConfig(t, 2)
	fs := standardFactories(cfg)
	bad := cfg
	bad.Trace = nil
	if _, err := RunExperiment(bad, fs); err == nil {
		t.Error("nil trace accepted")
	}
	bad = cfg
	bad.Runs = 0
	if _, err := RunExperiment(bad, fs); err == nil {
		t.Error("zero runs accepted")
	}
	bad = cfg
	bad.Cost = cluster.CostModel{}
	if _, err := RunExperiment(bad, fs); err == nil {
		t.Error("zero cost rate accepted")
	}
	if _, err := RunExperiment(cfg, nil); err == nil {
		t.Error("no factories accepted")
	}
	if _, err := RunExperiment(cfg, []NamedFactory{{Name: "", New: fs[0].New}}); err == nil {
		t.Error("empty factory name accepted")
	}
	if _, err := RunExperiment(cfg, []NamedFactory{fs[0], fs[0]}); err == nil {
		t.Error("duplicate factory names accepted")
	}
}

func TestRunExperimentAggregates(t *testing.T) {
	cfg := experimentConfig(t, 4)
	aggs, err := RunExperiment(cfg, standardFactories(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d", len(aggs))
	}
	ow, pulse := aggs[0], aggs[1]
	if ow.Policy != "openwhisk" || pulse.Policy != "pulse" {
		t.Errorf("order lost: %q, %q", ow.Policy, pulse.Policy)
	}
	if ow.Runs != 4 || pulse.Runs != 4 {
		t.Errorf("runs: %d, %d", ow.Runs, pulse.Runs)
	}
	if ow.MeanCostUSD <= 0 || ow.MeanServiceSec <= 0 || ow.MeanAccuracyPct <= 0 {
		t.Errorf("degenerate baseline aggregate: %+v", ow)
	}
	// Headline shape across assignments: PULSE cheaper, slightly less
	// accurate, comparable service time.
	if pulse.MeanCostUSD >= ow.MeanCostUSD {
		t.Errorf("PULSE mean cost %v not below OpenWhisk %v", pulse.MeanCostUSD, ow.MeanCostUSD)
	}
	if pulse.MeanAccuracyPct > ow.MeanAccuracyPct {
		t.Errorf("PULSE accuracy above all-high baseline")
	}
	if len(ow.OverheadRatios) != 4 {
		t.Errorf("overhead ratios = %d", len(ow.OverheadRatios))
	}
	imp, err := ImprovementOver(ow, pulse)
	if err != nil {
		t.Fatal(err)
	}
	if imp.CostPct <= 0 {
		t.Errorf("cost improvement = %v, want positive", imp.CostPct)
	}
	if imp.AccuracyPct > 0 {
		t.Errorf("accuracy 'improvement' = %v, want ≤ 0", imp.AccuracyPct)
	}
	if imp.Policy != "pulse" || imp.Baseline != "openwhisk" {
		t.Errorf("labels: %+v", imp)
	}
}

// Determinism across worker counts: serial and parallel execution must
// produce identical aggregates.
func TestRunExperimentDeterministicAcrossWorkers(t *testing.T) {
	cfg := experimentConfig(t, 4)
	fs := standardFactories(cfg)

	cfg.Workers = 1
	serial, err := RunExperiment(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunExperiment(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.MeanCostUSD != b.MeanCostUSD ||
			a.MeanServiceSec != b.MeanServiceSec ||
			a.MeanAccuracyPct != b.MeanAccuracyPct {
			t.Errorf("policy %q: serial and parallel aggregates differ", a.Policy)
		}
	}
}

func TestRunExperimentPropagatesFactoryErrors(t *testing.T) {
	cfg := experimentConfig(t, 2)
	fs := []NamedFactory{{
		Name: "broken",
		New: func(int, models.Assignment) (cluster.Policy, error) {
			return nil, errTest
		},
	}}
	if _, err := RunExperiment(cfg, fs); err == nil {
		t.Error("factory error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestImprovementOverErrors(t *testing.T) {
	if _, err := ImprovementOver(nil, &Aggregate{}); err == nil {
		t.Error("nil baseline accepted")
	}
	if _, err := ImprovementOver(&Aggregate{}, &Aggregate{}); err == nil {
		t.Error("degenerate baseline accepted")
	}
}

func TestAggregateStatistics(t *testing.T) {
	rows := []runSummary{
		{serviceSec: 10, costUSD: 2, accuracyPct: 80, warmRate: 0.9, coldStarts: 5, peakKaMMB: 100},
		{serviceSec: 20, costUSD: 4, accuracyPct: 90, warmRate: 0.7, coldStarts: 15, peakKaMMB: 300},
	}
	a := aggregate("x", rows)
	if a.MeanServiceSec != 15 || a.MeanCostUSD != 3 || a.MeanAccuracyPct != 85 {
		t.Errorf("means: %+v", a)
	}
	if math.Abs(a.StdServiceSec-5) > 1e-12 {
		t.Errorf("std service = %v, want 5", a.StdServiceSec)
	}
	if a.MeanWarmRate != 0.8 || a.MeanColdStarts != 10 || a.MeanPeakKaMMB != 200 {
		t.Errorf("aux means: %+v", a)
	}
	empty := aggregate("e", nil)
	if empty.Runs != 0 || empty.MeanCostUSD != 0 {
		t.Errorf("empty aggregate: %+v", empty)
	}
}
