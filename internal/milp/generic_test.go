package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveGenericKnownOptimum(t *testing.T) {
	groups := []Group{
		{Items: []Item{{Value: 4, Weight: 3}, {Value: 6, Weight: 6}, {Value: 8, Weight: 9}}},
		{Items: []Item{{Value: 3, Weight: 4}, {Value: 5, Weight: 8}}},
	}
	sol, err := SolveGeneric(groups, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value-9) > 1e-6 {
		t.Errorf("value = %v, want 9 (choice %v)", sol.Value, sol.Choice)
	}
	if sol.Choice[0] != 1 || sol.Choice[1] != 0 {
		t.Errorf("choice = %v, want [1 0]", sol.Choice)
	}
	if sol.Nodes == 0 {
		t.Error("no nodes explored")
	}
	if sol.LPIterations == 0 {
		t.Error("no simplex iterations — LP relaxation not engaged")
	}
}

func TestSolveGenericValidation(t *testing.T) {
	if _, err := SolveGeneric(nil, -1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := SolveGeneric([]Group{{Items: []Item{{Value: 1, Weight: -1}}}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := SolveGeneric([]Group{{Items: []Item{{Value: math.NaN(), Weight: 1}}}}, 5); err == nil {
		t.Error("NaN accepted")
	}
	sol, err := SolveGeneric(nil, 5)
	if err != nil || sol.Value != 0 {
		t.Errorf("empty problem: %+v, %v", sol, err)
	}
}

func TestSolveGenericInfeasibleItems(t *testing.T) {
	groups := []Group{{Items: []Item{{Value: 10, Weight: 100}}}}
	sol, err := SolveGeneric(groups, 50)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choice[0] != -1 || sol.Value != 0 {
		t.Errorf("infeasible item chosen: %+v", sol)
	}
}

// Property: the generic simplex-based solver and the specialized
// combinatorial solver agree on the optimum for random instances, and the
// generic solution is feasible.
func TestSolveGenericMatchesCombinatorial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nGroups := rng.Intn(4) + 1
		groups := make([]Group, nGroups)
		for g := range groups {
			nItems := rng.Intn(3) + 1
			items := make([]Item, nItems)
			for i := range items {
				items[i] = Item{
					Value:  math.Round(rng.Float64()*100) / 10,
					Weight: math.Round(rng.Float64()*100) / 10,
				}
			}
			groups[g] = Group{Items: items}
		}
		budget := rng.Float64() * 15
		fast, err := Solve(groups, budget)
		if err != nil {
			return false
		}
		generic, err := SolveGeneric(groups, budget)
		if err != nil {
			return false
		}
		if math.Abs(fast.Value-generic.Value) > 1e-5 {
			return false
		}
		var v, w float64
		for g, ch := range generic.Choice {
			if ch < 0 {
				continue
			}
			v += groups[g].Items[ch].Value
			w += groups[g].Items[ch].Weight
		}
		return math.Abs(v-generic.Value) < 1e-5 && w <= budget+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The generic solver must cost meaningfully more than the combinatorial
// one — this is the Figure 9 overhead mechanism.
func TestSolveGenericIsSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	groups := make([]Group, 12)
	for g := range groups {
		items := make([]Item, 3)
		for i := range items {
			items[i] = Item{Value: rng.Float64() * 2, Weight: 300 + rng.Float64()*3000}
		}
		groups[g] = Group{Items: items}
	}
	sol, err := SolveGeneric(groups, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if sol.LPIterations < 10 {
		t.Errorf("generic solver used only %d simplex iterations on a 36-variable instance", sol.LPIterations)
	}
	fast, err := Solve(groups, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Value-sol.Value) > 1e-5 {
		t.Errorf("solvers disagree: %v vs %v", fast.Value, sol.Value)
	}
}

func BenchmarkSolveGeneric12Functions(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	groups := make([]Group, 12)
	for g := range groups {
		items := make([]Item, 3)
		for i := range items {
			items[i] = Item{Value: rng.Float64() * 2, Weight: 300 + rng.Float64()*3000}
		}
		groups[g] = Group{Items: items}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGeneric(groups, 10000); err != nil {
			b.Fatal(err)
		}
	}
}
