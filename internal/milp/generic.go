package milp

import (
	"fmt"
	"math"

	"github.com/pulse-serverless/pulse/internal/lp"
)

// SolveGeneric solves the same multiple-choice knapsack as Solve, but the
// way a generic MILP toolchain does: a 0/1 integer program whose relaxation
// is solved by the dense simplex in internal/lp at every branch-and-bound
// node. It returns the same optimal values as Solve (cross-checked in
// tests) at the cost profile of real MILP machinery — which is precisely
// the overhead asymmetry the paper's Figure 9 measures PULSE against.
//
// Formulation, per node's free variables x_{g,i} ∈ [0,1]:
//
//	maximize   Σ value(g,i) · x_{g,i}
//	subject to Σ_i x_{g,i} ≤ 1                    (one variant per model)
//	           Σ weight(g,i) · x_{g,i} ≤ budget'   (keep-alive memory)
//
// with budget' reduced by branches fixed to 1. Branching follows the most
// fractional variable; bounding uses the LP optimum.
func SolveGeneric(groups []Group, budget float64) (Solution, error) {
	if budget < 0 {
		return Solution{}, fmt.Errorf("milp: negative budget %v", budget)
	}
	type varRef struct{ g, i int }
	var vars []varRef
	for g := range groups {
		for i, it := range groups[g].Items {
			if it.Weight < 0 {
				return Solution{}, fmt.Errorf("milp: group %d item %d has negative weight %v", g, i, it.Weight)
			}
			if math.IsNaN(it.Value) || math.IsNaN(it.Weight) {
				return Solution{}, fmt.Errorf("milp: group %d item %d has NaN", g, i)
			}
			vars = append(vars, varRef{g, i})
		}
	}

	best := Solution{Choice: make([]int, len(groups))}
	for g := range best.Choice {
		best.Choice[g] = -1
	}

	// fixed[v]: -1 free, 0 fixed out, 1 fixed in.
	fixed := make([]int8, len(vars))
	for v := range fixed {
		fixed[v] = -1
	}
	choice := make([]int, len(groups))

	const tol = 1e-6
	var explore func() error
	explore = func() error {
		best.Nodes++

		// Assemble the node's state: fixed-1 selections and feasibility.
		for g := range choice {
			choice[g] = -1
		}
		fixedValue, fixedWeight := 0.0, 0.0
		for v, f := range fixed {
			if f != 1 {
				continue
			}
			ref := vars[v]
			if choice[ref.g] != -1 {
				return nil // two variants of one model fixed in: infeasible
			}
			choice[ref.g] = ref.i
			it := groups[ref.g].Items[ref.i]
			fixedValue += it.Value
			fixedWeight += it.Weight
		}
		if fixedWeight > budget+tol {
			return nil // over budget: prune
		}

		// Free variables of groups without a fixed selection.
		var free []int
		for v, f := range fixed {
			if f == -1 && choice[vars[v].g] == -1 {
				free = append(free, v)
			}
		}

		evaluateLeaf := func(extraValue, extraWeight float64) {
			total := fixedValue + extraValue
			if total > best.Value+tol {
				best.Value = total
				best.Weight = fixedWeight + extraWeight
				copy(best.Choice, choice)
			}
		}
		if len(free) == 0 {
			evaluateLeaf(0, 0)
			return nil
		}

		// LP relaxation over the free variables.
		n := len(free)
		groupRow := map[int][]float64{}
		c := make([]float64, n)
		budgetRow := make([]float64, n)
		for j, v := range free {
			ref := vars[v]
			it := groups[ref.g].Items[ref.i]
			c[j] = it.Value
			budgetRow[j] = it.Weight
			row, ok := groupRow[ref.g]
			if !ok {
				row = make([]float64, n)
				groupRow[ref.g] = row
			}
			row[j] = 1
		}
		a := [][]float64{budgetRow}
		b := []float64{budget - fixedWeight}
		for g := range groups {
			if row, ok := groupRow[g]; ok {
				a = append(a, row)
				b = append(b, 1)
			}
		}
		sol, err := lp.Solve(c, a, b)
		if err != nil {
			return fmt.Errorf("milp: relaxation: %w", err)
		}
		best.LPIterations += sol.Iterations
		if fixedValue+sol.Objective <= best.Value+tol {
			return nil // bound: cannot beat the incumbent
		}

		// Integral solution: take it as a leaf.
		branchVar := -1
		worstFrac := 0.0
		for j, x := range sol.X {
			frac := math.Abs(x - math.Round(x))
			if frac > tol && frac > worstFrac {
				worstFrac = frac
				branchVar = j
			}
		}
		if branchVar == -1 {
			extraValue, extraWeight := 0.0, 0.0
			for j, x := range sol.X {
				if x > 0.5 {
					ref := vars[free[j]]
					choice[ref.g] = ref.i
					it := groups[ref.g].Items[ref.i]
					extraValue += it.Value
					extraWeight += it.Weight
				}
			}
			evaluateLeaf(extraValue, extraWeight)
			// Restore choice entries set from the LP.
			for j, x := range sol.X {
				if x > 0.5 {
					choice[vars[free[j]].g] = -1
				}
			}
			return nil
		}

		// Branch: fix in first (tends to find good incumbents early),
		// then fix out.
		v := free[branchVar]
		for _, branch := range []int8{1, 0} {
			fixed[v] = branch
			if err := explore(); err != nil {
				fixed[v] = -1
				return err
			}
		}
		fixed[v] = -1
		return nil
	}
	if err := explore(); err != nil {
		return Solution{}, err
	}
	return best, nil
}
