package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, -1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := Solve([]Group{{Items: []Item{{Value: 1, Weight: -2}}}}, 10); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Solve([]Group{{Items: []Item{{Value: math.NaN(), Weight: 1}}}}, 10); err == nil {
		t.Error("NaN accepted")
	}
}

func TestSolveEmptyAndTrivial(t *testing.T) {
	sol, err := Solve(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 || sol.Weight != 0 || len(sol.Choice) != 0 {
		t.Errorf("empty solve = %+v", sol)
	}
	// One group, budget excludes everything.
	sol, err = Solve([]Group{{Items: []Item{{Value: 5, Weight: 100}}}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choice[0] != -1 || sol.Value != 0 {
		t.Errorf("infeasible item chosen: %+v", sol)
	}
}

func TestSolveKnownOptimum(t *testing.T) {
	// Two groups, budget 10: best is item1 of g0 (v=6,w=6) + item0 of g1
	// (v=3,w=4) = 9, not the greedy v=8,w=9 from g0 alone.
	groups := []Group{
		{Items: []Item{{Value: 4, Weight: 3}, {Value: 6, Weight: 6}, {Value: 8, Weight: 9}}},
		{Items: []Item{{Value: 3, Weight: 4}, {Value: 5, Weight: 8}}},
	}
	sol, err := Solve(groups, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 9 {
		t.Errorf("value = %v, want 9 (choice %v)", sol.Value, sol.Choice)
	}
	if sol.Choice[0] != 1 || sol.Choice[1] != 0 {
		t.Errorf("choice = %v, want [1 0]", sol.Choice)
	}
	if sol.Weight != 10 {
		t.Errorf("weight = %v, want 10", sol.Weight)
	}
	if sol.Nodes <= 0 {
		t.Error("node counter not advancing")
	}
}

func TestSolveNegativeValuesNeverChosen(t *testing.T) {
	groups := []Group{{Items: []Item{{Value: -5, Weight: 1}}}}
	sol, err := Solve(groups, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choice[0] != -1 {
		t.Error("negative-value item chosen over none")
	}
}

// Property: Solve matches exhaustive enumeration on random small instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nGroups := rng.Intn(5) + 1
		groups := make([]Group, nGroups)
		for g := range groups {
			nItems := rng.Intn(4) + 1
			items := make([]Item, nItems)
			for i := range items {
				items[i] = Item{
					Value:  math.Round(rng.Float64()*100) / 10,
					Weight: math.Round(rng.Float64()*100) / 10,
				}
			}
			groups[g] = Group{Items: items}
		}
		budget := rng.Float64() * 20
		fast, err := Solve(groups, budget)
		if err != nil {
			return false
		}
		slow, err := BruteForce(groups, budget)
		if err != nil {
			return false
		}
		if math.Abs(fast.Value-slow.Value) > 1e-9 {
			return false
		}
		// The fast solution must itself be feasible and worth its value.
		var v, w float64
		for gi, ch := range fast.Choice {
			if ch < 0 {
				continue
			}
			v += groups[gi].Items[ch].Value
			w += groups[gi].Items[ch].Weight
		}
		return math.Abs(v-fast.Value) < 1e-9 && w <= budget+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNewPolicyValidation(t *testing.T) {
	cat := models.PaperCatalog()
	if _, err := NewPolicy(PolicyConfig{}); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewPolicy(PolicyConfig{Catalog: cat}); err == nil {
		t.Error("empty assignment accepted")
	}
	p, err := NewPolicy(PolicyConfig{Catalog: cat, Assignment: models.Assignment{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "milp" {
		t.Errorf("name = %q", p.Name())
	}
	// Default budget: 60% of all-highest footprint.
	want := 0.6 * (cat.Families[0].Highest().MemoryMB + cat.Families[1].Highest().MemoryMB)
	if math.Abs(p.MemoryBudgetMB()-want) > 1e-9 {
		t.Errorf("budget = %v, want %v", p.MemoryBudgetMB(), want)
	}
}

func TestPolicyRespectsBudget(t *testing.T) {
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 5, Horizon: trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	budget := 4000.0
	p, err := NewPolicy(PolicyConfig{Catalog: cat, Assignment: asg, MemoryBudgetMB: budget})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}
	res, err := cluster.Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for tt, kam := range res.PerMinuteKaMMB {
		if kam > budget+1e-9 {
			t.Fatalf("minute %d: keep-alive memory %v exceeds strict budget %v", tt, kam, budget)
		}
	}
	if res.Invocations == 0 {
		t.Fatal("no invocations simulated")
	}
}

// Figure 9's shape: MILP is optimal for its objective but slower per
// decision and lower-accuracy than PULSE (its utility objective favors
// low-quality variants).
func TestPolicyVsPulseShape(t *testing.T) {
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 6, Horizon: trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel(), MeasureOverhead: true}

	mp, err := NewPolicy(PolicyConfig{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	rMILP, err := cluster.Run(cfg, mp)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	rPulse, err := cluster.Run(cfg, pp)
	if err != nil {
		t.Fatal(err)
	}
	if rMILP.MeanAccuracyPct() >= rPulse.MeanAccuracyPct() {
		t.Errorf("MILP accuracy %v not below PULSE %v (Figure 9b shape)",
			rMILP.MeanAccuracyPct(), rPulse.MeanAccuracyPct())
	}
	// Figure 9a shape: generic MILP machinery costs more per decision.
	if rMILP.PolicyOverheadSec <= rPulse.PolicyOverheadSec {
		t.Errorf("MILP overhead %v not above PULSE %v",
			rMILP.PolicyOverheadSec, rPulse.PolicyOverheadSec)
	}
}

func BenchmarkSolve12Functions(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	groups := make([]Group, 12)
	for g := range groups {
		items := make([]Item, 3)
		for i := range items {
			items[i] = Item{Value: rng.Float64() * 2, Weight: 300 + rng.Float64()*3000}
		}
		groups[g] = Group{Items: items}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(groups, 10000); err != nil {
			b.Fatal(err)
		}
	}
}
