// Package milp implements the Mixed Integer Linear Programming comparator
// of the paper's overhead study (Figure 9): "the objective is to maximize
// overall utility value subject to a strict memory budget constraint",
// evaluating "all selected models and their variants" simultaneously.
//
// The PULSE instance of that program is exactly a multiple-choice knapsack
// (each model picks at most one variant; memory is the single resource), so
// this package provides an exact branch-and-bound MCKP solver with an
// admissible value bound, plus a cluster policy that re-solves the program
// every minute. Exactness means the solver reproduces both sides of the
// paper's comparison: the optimizer's answers and its overhead.
package milp

import (
	"fmt"
	"math"
)

// Item is one selectable option within a group: choosing it yields Value
// and consumes Weight of the budget.
type Item struct {
	Value  float64
	Weight float64
}

// Group is a set of mutually exclusive items (a model's variants). A group
// may also select nothing.
type Group struct {
	Items []Item
}

// Solution is the optimal assignment found by Solve.
type Solution struct {
	// Choice holds the selected item index per group, -1 for none.
	Choice []int
	Value  float64
	Weight float64
	// Nodes counts branch-and-bound nodes explored (overhead proxy).
	Nodes int
	// LPIterations counts simplex iterations spent in relaxations
	// (SolveGeneric only; zero for the combinatorial Solve).
	LPIterations int
}

// Solve maximizes total value subject to total weight ≤ budget, selecting
// at most one item per group. Weights and the budget must be non-negative;
// values may be anything (negative-value items are simply never chosen, as
// "none" dominates them).
func Solve(groups []Group, budget float64) (Solution, error) {
	if budget < 0 {
		return Solution{}, fmt.Errorf("milp: negative budget %v", budget)
	}
	for gi, g := range groups {
		for ii, it := range g.Items {
			if it.Weight < 0 {
				return Solution{}, fmt.Errorf("milp: group %d item %d has negative weight %v", gi, ii, it.Weight)
			}
			if math.IsNaN(it.Value) || math.IsNaN(it.Weight) {
				return Solution{}, fmt.Errorf("milp: group %d item %d has NaN", gi, ii)
			}
		}
	}
	s := &solver{groups: groups, budget: budget}
	s.prepare()
	s.best.Choice = make([]int, len(groups))
	for i := range s.best.Choice {
		s.best.Choice[i] = -1
	}
	s.current = make([]int, len(groups))
	for i := range s.current {
		s.current[i] = -1
	}
	// The all-none assignment (value 0, weight 0) is always feasible and is
	// the initial incumbent; branches that cannot strictly beat it prune.
	s.branch(0, 0, 0)
	return s.best, nil
}

type solver struct {
	groups  []Group
	budget  float64
	suffix  []float64 // suffix[i] = Σ_{g ≥ i} max(0, max value in g): admissible bound
	order   [][]int   // per group: item indices sorted by descending value
	current []int
	best    Solution
}

func (s *solver) prepare() {
	n := len(s.groups)
	s.suffix = make([]float64, n+1)
	s.order = make([][]int, n)
	for i := n - 1; i >= 0; i-- {
		best := 0.0 // "none" contributes 0
		items := s.groups[i].Items
		order := make([]int, len(items))
		for j := range order {
			order[j] = j
		}
		// Descending by value (stable on index for determinism): trying
		// high-value items first finds strong incumbents early, which the
		// suffix bound then prunes against.
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && items[order[b]].Value > items[order[b-1]].Value; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		s.order[i] = order
		for _, it := range items {
			if it.Value > best {
				best = it.Value
			}
		}
		s.suffix[i] = s.suffix[i+1] + best
	}
}

// branch explores group gi with accumulated value/weight.
func (s *solver) branch(gi int, value, weight float64) {
	s.best.Nodes++
	if value+s.suffix[gi] <= s.best.Value {
		return // even the optimistic completion cannot beat the incumbent
	}
	if gi == len(s.groups) {
		// Strictly better than the incumbent (guaranteed by the bound
		// check above, since suffix[n] == 0).
		s.best.Value = value
		s.best.Weight = weight
		copy(s.best.Choice, s.current)
		return
	}
	// Try each item, best value first for tighter early incumbents.
	for _, ii := range s.order[gi] {
		it := s.groups[gi].Items[ii]
		if it.Value <= 0 {
			continue // dominated by "none"
		}
		if weight+it.Weight > s.budget {
			continue
		}
		s.current[gi] = ii
		s.branch(gi+1, value+it.Value, weight+it.Weight)
	}
	// And the "none" branch.
	s.current[gi] = -1
	s.branch(gi+1, value, weight)
}

// BruteForce exhaustively enumerates all assignments; exponential, only for
// validating Solve on small instances.
func BruteForce(groups []Group, budget float64) (Solution, error) {
	if budget < 0 {
		return Solution{}, fmt.Errorf("milp: negative budget %v", budget)
	}
	n := len(groups)
	best := Solution{Choice: make([]int, n)}
	for i := range best.Choice {
		best.Choice[i] = -1
	}
	current := make([]int, n)
	var rec func(gi int, value, weight float64)
	rec = func(gi int, value, weight float64) {
		if gi == n {
			if value > best.Value {
				best.Value = value
				best.Weight = weight
				copy(best.Choice, current)
			}
			return
		}
		current[gi] = -1
		rec(gi+1, value, weight)
		for ii, it := range groups[gi].Items {
			if weight+it.Weight <= budget {
				current[gi] = ii
				rec(gi+1, value+it.Value, weight+it.Weight)
			}
		}
		current[gi] = -1
	}
	rec(0, 0, 0)
	return best, nil
}
