package milp

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
)

// PolicyConfig parameterizes the MILP keep-alive policy.
type PolicyConfig struct {
	Catalog    *models.Catalog
	Assignment models.Assignment
	// Window is the keep-alive period (default 10 minutes): functions stay
	// candidates for keep-alive within this window after an invocation.
	Window int
	// LocalWindow feeds the inter-arrival histories (default 60).
	LocalWindow int
	// MemoryBudgetMB is the strict memory budget the program is solved
	// under. ≤ 0 defaults to 60% of the all-highest-variant footprint.
	MemoryBudgetMB float64
	// Blend selects the probability history mix (default: both, as PULSE).
	Blend core.HistoryBlend
	// UseFastSolver swaps the generic simplex-based branch-and-bound for
	// the specialized combinatorial solver. The default (false) is the
	// faithful Figure 9 comparator: generic MILP machinery and its
	// overhead. Both solvers return identical optima (cross-checked in
	// tests).
	UseFastSolver bool
}

// Policy is the MILP alternative to PULSE: every minute it solves, exactly,
// "maximize overall utility value subject to a strict memory budget
// constraint" over all candidate models and their variants. Per the paper
// it lacks PULSE's iterative adaptability (no priority structure evolving
// through downgrades), and because the lowest variant's utility term
// carries its full accuracy (Algorithm 2's Ai definition), the optimizer
// systematically favors low-quality variants — the accuracy gap Figure 9(b)
// reports.
type Policy struct {
	cfg       PolicyConfig
	histories []*core.History
	out       []int
	groups    []Group
	groupFns  []int // group index → function index
}

// NewPolicy builds the MILP policy.
func NewPolicy(cfg PolicyConfig) (*Policy, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("milp: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("milp: empty assignment")
	}
	if cfg.Window <= 0 {
		cfg.Window = cluster.DefaultKeepAliveWindow
	}
	if cfg.LocalWindow <= 0 {
		cfg.LocalWindow = 60
	}
	if cfg.MemoryBudgetMB <= 0 {
		var total float64
		for _, fam := range cfg.Assignment {
			total += cfg.Catalog.Families[fam].Highest().MemoryMB
		}
		cfg.MemoryBudgetMB = 0.6 * total
	}
	p := &Policy{
		cfg:       cfg,
		histories: make([]*core.History, len(cfg.Assignment)),
		out:       make([]int, len(cfg.Assignment)),
	}
	var err error
	for i := range p.histories {
		if p.histories[i], err = core.NewHistory(cfg.LocalWindow); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Name implements cluster.Policy.
func (p *Policy) Name() string { return "milp" }

// MemoryBudgetMB returns the effective budget.
func (p *Policy) MemoryBudgetMB() float64 { return p.cfg.MemoryBudgetMB }

// KeepAlive implements cluster.Policy by solving the per-minute MCKP.
func (p *Policy) KeepAlive(t int) []int {
	p.groups = p.groups[:0]
	p.groupFns = p.groupFns[:0]
	for fn := range p.out {
		p.out[fn] = cluster.NoVariant
		h := p.histories[fn]
		last := h.LastInvocation()
		if last < 0 || t <= last || t-last > p.cfg.Window {
			continue // not a keep-alive candidate this minute
		}
		ip := h.Probability(t-last, p.cfg.Blend)
		fam := p.cfg.Catalog.Families[p.cfg.Assignment[fn]]
		items := make([]Item, fam.NumVariants())
		for vi := range items {
			ai, err := fam.AccuracyImprovement(vi)
			if err != nil {
				panic("milp: accuracy improvement: " + err.Error())
			}
			items[vi] = Item{Value: ai + ip, Weight: fam.Variants[vi].MemoryMB}
		}
		p.groups = append(p.groups, Group{Items: items})
		p.groupFns = append(p.groupFns, fn)
	}
	if len(p.groups) == 0 {
		return p.out
	}
	var sol Solution
	var err error
	if p.cfg.UseFastSolver {
		sol, err = Solve(p.groups, p.cfg.MemoryBudgetMB)
	} else {
		sol, err = SolveGeneric(p.groups, p.cfg.MemoryBudgetMB)
	}
	if err != nil {
		panic("milp: solve: " + err.Error())
	}
	for gi, choice := range sol.Choice {
		p.out[p.groupFns[gi]] = choice // -1 maps to NoVariant
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *Policy) ColdVariant(_, fn int) int {
	return p.cfg.Catalog.Families[p.cfg.Assignment[fn]].NumVariants() - 1
}

// RecordInvocations implements cluster.Policy.
func (p *Policy) RecordInvocations(t int, counts []int) {
	for fn, c := range counts {
		if c > 0 {
			if err := p.histories[fn].Record(t); err != nil {
				panic("milp: history: " + err.Error())
			}
		}
	}
}
