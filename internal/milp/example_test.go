package milp_test

import (
	"fmt"
	"log"

	"github.com/pulse-serverless/pulse/internal/milp"
)

// ExampleSolve picks one variant per model under a memory budget — the
// optimization problem the paper's MILP comparator solves each minute.
func ExampleSolve() {
	groups := []milp.Group{
		// GPT: (value, memory MB) per variant, low → high quality.
		{Items: []milp.Item{{Value: 0.88, Weight: 982}, {Value: 0.05, Weight: 1894}, {Value: 0.01, Weight: 3500}}},
		// BERT.
		{Items: []milp.Item{{Value: 0.80, Weight: 369}, {Value: 0.03, Weight: 514}}},
	}
	sol, err := milp.Solve(groups, 1400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("choice %v, value %.2f, weight %.0f MB\n", sol.Choice, sol.Value, sol.Weight)
	// Output:
	// choice [0 0], value 1.68, weight 1351 MB
}

// ExampleSolveGeneric solves the same program through the generic
// simplex-based branch and bound, which returns identical optima at the
// cost profile of real MILP machinery.
func ExampleSolveGeneric() {
	groups := []milp.Group{
		{Items: []milp.Item{{Value: 4, Weight: 3}, {Value: 6, Weight: 6}, {Value: 8, Weight: 9}}},
		{Items: []milp.Item{{Value: 3, Weight: 4}, {Value: 5, Weight: 8}}},
	}
	sol, err := milp.SolveGeneric(groups, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("value %.0f with choice %v\n", sol.Value, sol.Choice)
	fmt.Println("used LP relaxations:", sol.LPIterations > 0)
	// Output:
	// value 9 with choice [1 0]
	// used LP relaxations: true
}
