// Package report renders experiment outputs as ASCII tables and series —
// the textual equivalents of the paper's tables and figures, printed by the
// cmd/experiments harness and the benchmark suite.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-column table renderer.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded, long rows are an error.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.Headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return nil
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F4 formats with four decimals (costs in USD).
func F4(v float64) string { return fmt.Sprintf("%.4f", v) }

// Pct formats a percentage with sign.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// Series writes a named numeric series as "name: v0 v1 v2 …" with an
// optional downsampling stride, used for the figure reproductions (memory
// timelines, error series).
func Series(w io.Writer, name string, xs []float64, stride int) error {
	if stride <= 0 {
		stride = 1
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(":")
	for i := 0; i < len(xs); i += stride {
		fmt.Fprintf(&b, " %.1f", xs[i])
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Sparkline renders a series as a compact unicode bar chart, one character
// per bucket (max over the bucket), for eyeballing memory timelines in
// terminal output.
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	if width > len(xs) {
		width = len(xs)
	}
	bucket := (len(xs) + width - 1) / width
	var lo, hi float64
	lo, hi = xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for i := 0; i < len(xs); i += bucket {
		m := xs[i]
		for j := i; j < i+bucket && j < len(xs); j++ {
			if xs[j] > m {
				m = xs[j]
			}
		}
		idx := 0
		if span > 0 {
			idx = int((m - lo) / span * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// Comparison is one paper-vs-measured record for EXPERIMENTS.md.
type Comparison struct {
	Experiment string // e.g. "Figure 6a"
	Metric     string
	Paper      string
	Measured   string
	ShapeHolds bool
}

// RenderComparisons writes a paper-vs-measured table.
func RenderComparisons(w io.Writer, title string, cs []Comparison) error {
	t := NewTable(title, "experiment", "metric", "paper", "measured", "shape holds")
	for _, c := range cs {
		holds := "yes"
		if !c.ShapeHolds {
			holds = "NO"
		}
		if err := t.AddRow(c.Experiment, c.Metric, c.Paper, c.Measured, holds); err != nil {
			return err
		}
	}
	return t.Render(w)
}
