package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	if err := tab.AddRow("alpha", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("b"); err != nil { // short row padded
		t.Fatal(err)
	}
	if err := tab.AddRow("x", "y", "z"); err == nil {
		t.Error("overlong row accepted")
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(3.14159); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := F4(0.00012); got != "0.0001" {
		t.Errorf("F4 = %q", got)
	}
	if got := Pct(39.5); got != "+39.5%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.6); got != "-0.6%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSeries(t *testing.T) {
	var sb strings.Builder
	if err := Series(&sb, "kam", []float64{1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "kam: 1.0 3.0\n" {
		t.Errorf("series = %q", got)
	}
	sb.Reset()
	if err := Series(&sb, "x", []float64{5}, 0); err != nil { // stride clamps to 1
		t.Fatal(err)
	}
	if got := sb.String(); got != "x: 5.0\n" {
		t.Errorf("series = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	if got := Sparkline([]float64{1, 2}, 0); got != "" {
		t.Errorf("zero-width sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if runes := []rune(s); len(runes) != 8 {
		t.Errorf("sparkline width = %d, want 8", len(runes))
	}
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Errorf("sparkline shape wrong: %q", s)
	}
	// Constant series renders without dividing by zero.
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if [](rune)(flat)[0] != '▁' {
		t.Errorf("flat sparkline = %q", flat)
	}
	// Downsampling takes the bucket max.
	wide := Sparkline([]float64{0, 9, 0, 0}, 2)
	if []rune(wide)[0] != '█' {
		t.Errorf("bucketed sparkline lost the max: %q", wide)
	}
}

func TestRenderComparisons(t *testing.T) {
	var sb strings.Builder
	err := RenderComparisons(&sb, "Paper vs measured", []Comparison{
		{Experiment: "Fig 6a", Metric: "cost", Paper: "-39.5%", Measured: "-41.2%", ShapeHolds: true},
		{Experiment: "Fig 9b", Metric: "accuracy", Paper: "MILP < PULSE", Measured: "equal", ShapeHolds: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "yes") || !strings.Contains(out, "NO") {
		t.Errorf("comparison flags missing:\n%s", out)
	}
}
