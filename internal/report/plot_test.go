package report

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	p := NewPlot("Demo", 40, 10)
	if err := p.AddLine("rising", []float64{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSeries("flat", []float64{0, 4}, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "* rising", "o flat", "|", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rising series: its glyph appears on multiple rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") && strings.Contains(line, "|") {
			rows++
		}
	}
	if rows < 3 {
		t.Errorf("rising series spans %d rows, want ≥3:\n%s", rows, out)
	}
}

func TestPlotValidation(t *testing.T) {
	p := NewPlot("x", 0, 0) // clamped to minimums
	if p.Width < 20 || p.Height < 5 {
		t.Errorf("minimums not enforced: %dx%d", p.Width, p.Height)
	}
	if err := p.AddSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := p.AddSeries("bad", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if err := p.AddSeries("bad", []float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN accepted")
	}
	if err := p.AddSeries("bad", []float64{1}, []float64{math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
	var sb strings.Builder
	if err := p.Render(&sb); err == nil {
		t.Error("empty plot rendered")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("const", 30, 6)
	if err := p.AddLine("c", []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatalf("constant series should render: %v", err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("constant series lost its points")
	}
}

func TestPlotLabels(t *testing.T) {
	p := NewPlot("labeled", 30, 6)
	p.XLabel = "minutes"
	p.YLabel = "MB"
	_ = p.AddLine("s", []float64{1, 2})
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(minutes)") || !strings.Contains(sb.String(), "y: MB") {
		t.Errorf("labels missing:\n%s", sb.String())
	}
}

func TestHistogramPlot(t *testing.T) {
	var sb strings.Builder
	err := HistogramPlot(&sb, "Overheads", []string{"1e-4", "1e-3", "1e-2"}, []int{5, 10, 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Overheads") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The peak bin gets the longest bar; nonzero bins get at least one cell.
	if strings.Count(lines[2], "█") != 20 {
		t.Errorf("peak bar = %d cells, want 20", strings.Count(lines[2], "█"))
	}
	if strings.Count(lines[3], "█") < 1 {
		t.Error("small nonzero bin lost its bar")
	}
}

func TestHistogramPlotErrors(t *testing.T) {
	if err := HistogramPlot(&strings.Builder{}, "", []string{"a"}, []int{1, 2}, 10); err == nil {
		t.Error("label/count mismatch accepted")
	}
	if err := HistogramPlot(&strings.Builder{}, "", []string{"a"}, []int{-1}, 10); err == nil {
		t.Error("negative count accepted")
	}
	// All-zero histogram renders without dividing by zero.
	if err := HistogramPlot(&strings.Builder{}, "", []string{"a"}, []int{0}, 10); err != nil {
		t.Errorf("zero histogram failed: %v", err)
	}
}
