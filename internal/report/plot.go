package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders numeric series as a character-cell line/scatter chart — the
// terminal stand-in for the paper's matplotlib figures. Multiple series
// share axes; each gets its own glyph.
type Plot struct {
	Title         string
	Width, Height int // character cells for the plot area
	XLabel        string
	YLabel        string

	series []plotSeries
}

type plotSeries struct {
	name  string
	glyph rune
	xs    []float64
	ys    []float64
}

// seriesGlyphs are assigned to series in order.
var seriesGlyphs = []rune{'*', 'o', '+', 'x', '#', '@'}

// NewPlot creates a plot with the given cell dimensions (minimums are
// enforced so axes always fit).
func NewPlot(title string, width, height int) *Plot {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &Plot{Title: title, Width: width, Height: height}
}

// AddSeries adds a named series of (x, y) points. Lengths must match and be
// non-empty; non-finite values are rejected.
func (p *Plot) AddSeries(name string, xs, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("report: series %q has %d xs and %d ys", name, len(xs), len(ys))
	}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return fmt.Errorf("report: series %q has non-finite point at %d", name, i)
		}
	}
	glyph := seriesGlyphs[len(p.series)%len(seriesGlyphs)]
	p.series = append(p.series, plotSeries{name: name, glyph: glyph, xs: xs, ys: ys})
	return nil
}

// AddLine adds a series whose x-values are the indices 0..len-1.
func (p *Plot) AddLine(name string, ys []float64) error {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return p.AddSeries(name, xs, ys)
}

// Render draws the plot. It fails on an empty plot.
func (p *Plot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("report: plot %q has no series", p.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.xs {
			xmin = math.Min(xmin, s.xs[i])
			xmax = math.Max(xmax, s.xs[i])
			ymin = math.Min(ymin, s.ys[i])
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, p.Height)
	for r := range grid {
		grid[r] = make([]rune, p.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, s := range p.series {
		for i := range s.xs {
			col := int((s.xs[i] - xmin) / (xmax - xmin) * float64(p.Width-1))
			row := p.Height - 1 - int((s.ys[i]-ymin)/(ymax-ymin)*float64(p.Height-1))
			grid[row][col] = s.glyph
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	legend := make([]string, 0, len(p.series))
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.glyph, s.name))
	}
	fmt.Fprintf(&b, "[%s]\n", strings.Join(legend, "   "))

	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r := 0; r < p.Height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case p.Height - 1:
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", p.Width))
	xTop := fmt.Sprintf("%.4g", xmin)
	xEnd := fmt.Sprintf("%.4g", xmax)
	pad := p.Width - len(xTop) - len(xEnd)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", labelW), xTop, strings.Repeat(" ", pad), xEnd)
	if p.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", p.XLabel)
	}
	b.WriteByte('\n')
	if p.YLabel != "" {
		fmt.Fprintf(&b, "%s  y: %s\n", strings.Repeat(" ", labelW), p.YLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistogramPlot renders bin counts as horizontal bars — the terminal
// rendition of Figure 9(a)'s overhead distribution.
func HistogramPlot(w io.Writer, title string, binLabels []string, counts []int, maxBar int) error {
	if len(binLabels) != len(counts) {
		return fmt.Errorf("report: %d labels for %d bins", len(binLabels), len(counts))
	}
	if maxBar < 10 {
		maxBar = 40
	}
	peak := 0
	labelW := 0
	for i, c := range counts {
		if c < 0 {
			return fmt.Errorf("report: negative count %d in bin %d", c, i)
		}
		if c > peak {
			peak = c
		}
		if len(binLabels[i]) > labelW {
			labelW = len(binLabels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, c := range counts {
		bar := 0
		if peak > 0 {
			bar = c * maxBar / peak
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%*s | %s %d\n", labelW, binLabels[i], strings.Repeat("█", bar), c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
