package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary input must never panic, and anything that parses
// must validate and round-trip.
func FuzzReadCSV(f *testing.F) {
	tr, err := Generate(GeneratorConfig{Seed: 1, Horizon: 120})
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := WriteCSV(&seed, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("id,name,archetype,horizon\n0,f,a,10,1,1\n")
	f.Add("")
	f.Add("id,name,archetype,horizon\n0,f,a,10,1\n")
	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := parsed.Validate(); verr != nil {
			t.Fatalf("ReadCSV accepted invalid trace: %v", verr)
		}
		var out bytes.Buffer
		if werr := WriteCSV(&out, parsed); werr != nil {
			t.Fatalf("parsed trace failed to serialize: %v", werr)
		}
		back, rerr := ReadCSV(&out)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if back.TotalInvocations() != parsed.TotalInvocations() {
			t.Fatalf("round trip changed invocations: %d vs %d",
				back.TotalInvocations(), parsed.TotalInvocations())
		}
	})
}

// FuzzReadAzureCSV: arbitrary Azure-format input must never panic, and
// anything accepted must validate.
func FuzzReadAzureCSV(f *testing.F) {
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1,2\no,a,fn,http,3,0\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no,a,fn,http,-1\n")
	f.Add("")
	f.Add("x\n")
	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := ReadAzureCSV(AzureReadOptions{}, strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := parsed.Validate(); verr != nil {
			t.Fatalf("ReadAzureCSV accepted invalid trace: %v", verr)
		}
	})
}
