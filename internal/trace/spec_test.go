package trace

import (
	"strings"
	"testing"
)

const sampleSpec = `{
  "seed": 42,
  "days": 2,
  "functions": [
    {"archetype": "periodic", "params": {"period": 5, "jitter": 1}},
    {"archetype": "poisson", "params": {"rate": 0.2}},
    {"archetype": "diurnal", "params": {"base": 0.01, "amplitude": 0.4, "peakMinute": 600}},
    {"archetype": "bursty", "params": {"burstsPerDay": 3, "burstLen": 6, "burstRate": 4, "quietRate": 0.01}},
    {"archetype": "heavytail", "params": {"alpha": 1.4, "scale": 2}},
    {"archetype": "sporadic", "params": {"meanGap": 90}},
    {"archetype": "drifting", "phases": [
      {"archetype": "periodic", "params": {"period": 4}},
      {"archetype": "sporadic", "params": {"meanGap": 45}}
    ]}
  ]
}`

func TestSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 || spec.Days != 2 || len(spec.Functions) != 7 {
		t.Fatalf("parsed spec: %+v", spec)
	}
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Horizon != 2*MinutesPerDay || len(cfg.Archetypes) != 7 {
		t.Fatalf("built config: horizon %d, %d archetypes", cfg.Horizon, len(cfg.Archetypes))
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalInvocations() == 0 {
		t.Error("spec-built trace is silent")
	}
	// Archetype names propagate.
	if !strings.HasPrefix(tr.Functions[0].Archetype, "periodic") {
		t.Errorf("archetype label = %q", tr.Functions[0].Archetype)
	}
	if !strings.HasPrefix(tr.Functions[6].Archetype, "drifting") {
		t.Errorf("drifting label = %q", tr.Functions[6].Archetype)
	}
}

func TestSpecDefaults(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{"days": 1, "functions": [{"archetype": "periodic"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Archetypes[0].(Periodic).Period != 10 {
		t.Errorf("default period = %d, want 10", cfg.Archetypes[0].(Periodic).Period)
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"unknown field", `{"days": 1, "nope": 2, "functions": [{"archetype": "poisson"}]}`},
		{"no days", `{"functions": [{"archetype": "poisson"}]}`},
		{"no functions", `{"days": 1, "functions": []}`},
		{"unknown archetype", `{"days": 1, "functions": [{"archetype": "warp"}]}`},
		{"unknown param", `{"days": 1, "functions": [{"archetype": "poisson", "params": {"rale": 0.1}}]}`},
		{"phases on non-drifting", `{"days": 1, "functions": [{"archetype": "poisson", "phases": [{"archetype": "poisson"}]}]}`},
		{"params on drifting", `{"days": 1, "functions": [{"archetype": "drifting", "params": {"x": 1}, "phases": [{"archetype": "poisson"}]}]}`},
		{"empty drifting", `{"days": 1, "functions": [{"archetype": "drifting"}]}`},
		{"bad phase", `{"days": 1, "functions": [{"archetype": "drifting", "phases": [{"archetype": "zzz"}]}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := ParseSpec(strings.NewReader(c.in))
			if err != nil {
				return // parse-stage rejection is fine
			}
			if _, err := spec.Build(); err == nil {
				t.Errorf("spec %q accepted", c.name)
			}
		})
	}
}
