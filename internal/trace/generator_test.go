package trace

import (
	"math/rand"
	"testing"
)

func TestGenerateDefaults(t *testing.T) {
	tr, err := Generate(GeneratorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 14*MinutesPerDay {
		t.Errorf("default horizon = %d, want 14 days", tr.Horizon)
	}
	if len(tr.Functions) != 12 {
		t.Errorf("default functions = %d, want 12", len(tr.Functions))
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
	if tr.TotalInvocations() == 0 {
		t.Error("generated trace has no invocations")
	}
	for i := range tr.Functions {
		if tr.Functions[i].TotalInvocations() == 0 {
			t.Errorf("function %d (%s) generated zero invocations over 14 days",
				i, tr.Functions[i].Archetype)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GeneratorConfig{Seed: 42, Horizon: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GeneratorConfig{Seed: 42, Horizon: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Functions {
		for tt := range a.Functions[i].Counts {
			if a.Functions[i].Counts[tt] != b.Functions[i].Counts[tt] {
				t.Fatalf("same seed diverged at fn %d minute %d", i, tt)
			}
		}
	}
	c, err := Generate(GeneratorConfig{Seed: 43, Horizon: 2000})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Functions {
		for tt := range a.Functions[i].Counts {
			if a.Functions[i].Counts[tt] != c.Functions[i].Counts[tt] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestPeriodicArchetype(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := Periodic{Period: 10, Jitter: 0}.Generate(rng, 100)
	f := mkFunc(0, counts)
	for _, g := range f.InterArrivals() {
		if g != 10 {
			t.Errorf("jitter-free periodic gap = %d, want 10", g)
		}
	}
	// Degenerate period clamps to 1 rather than looping forever.
	counts = Periodic{Period: 0, Jitter: 0}.Generate(rng, 10)
	if len(counts) != 10 {
		t.Error("degenerate period produced wrong horizon")
	}
}

func TestPeriodicJitterStaysNear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := Periodic{Period: 20, Jitter: 3}.Generate(rng, 10000)
	f := mkFunc(0, counts)
	for _, g := range f.InterArrivals() {
		if g < 20-6 || g > 20+6 {
			t.Errorf("jittered gap %d outside [14, 26]", g)
		}
	}
}

func TestPoissonArchetypeRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const horizon = 50000
	counts := Poisson{Rate: 0.2}.Generate(rng, horizon)
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / horizon
	if mean < 0.17 || mean > 0.23 {
		t.Errorf("empirical rate = %v, want ≈0.2", mean)
	}
	// Zero rate yields silence.
	counts = Poisson{Rate: 0}.Generate(rng, 100)
	for _, c := range counts {
		if c != 0 {
			t.Error("zero-rate Poisson produced invocations")
		}
	}
}

func TestDiurnalConcentratesAtPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	peak := 12 * 60
	counts := Diurnal{Base: 0, Amplitude: 1, PeakMinute: peak}.Generate(rng, 7*MinutesPerDay)
	nearPeak, offPeak := 0, 0
	for tt, c := range counts {
		tod := tt % MinutesPerDay
		dist := abs(tod - peak)
		if dist > MinutesPerDay/2 {
			dist = MinutesPerDay - dist
		}
		if dist <= 120 {
			nearPeak += c
		}
		if dist >= 480 {
			offPeak += c
		}
	}
	if nearPeak <= offPeak*2 {
		t.Errorf("diurnal not concentrated: near=%d off=%d", nearPeak, offPeak)
	}
}

func TestBurstyProducesBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := Bursty{BurstsPerDay: 4, BurstLen: 5, BurstRate: 5, QuietRate: 0}.Generate(rng, 7*MinutesPerDay)
	busy := 0
	for _, c := range counts {
		if c > 0 {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("bursty archetype produced nothing")
	}
	// With zero quiet rate, activity is confined to bursts: ~4·5=20
	// active-ish minutes/day out of 1440, so well under 10% of minutes.
	if frac := float64(busy) / float64(len(counts)); frac > 0.10 {
		t.Errorf("bursty active fraction = %v, want < 0.10", frac)
	}
}

func TestHeavyTailedHasHighCV(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	counts := HeavyTailed{Alpha: 1.2, Scale: 1}.Generate(rng, 30*MinutesPerDay)
	f := mkFunc(0, counts)
	sum := Summarize(&f)
	if sum.Invocations == 0 {
		t.Fatal("heavy-tailed produced nothing")
	}
	if sum.CVInterArriv < 1.0 {
		t.Errorf("heavy-tailed CV = %v, want ≥ 1 (heavier than exponential)", sum.CVInterArriv)
	}
	// Degenerate parameters fall back to safe defaults.
	counts = HeavyTailed{Alpha: -1, Scale: -1}.Generate(rng, 1000)
	if len(counts) != 1000 {
		t.Error("degenerate heavy-tail wrong horizon")
	}
}

func TestSporadicMeanGap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := Sporadic{MeanGap: 100}.Generate(rng, 200000)
	f := mkFunc(0, counts)
	gaps := f.InterArrivals()
	if len(gaps) < 100 {
		t.Fatalf("too few sporadic invocations: %d", len(gaps))
	}
	var sum float64
	for _, g := range gaps {
		sum += float64(g)
	}
	mean := sum / float64(len(gaps))
	if mean < 80 || mean > 120 {
		t.Errorf("sporadic mean gap = %v, want ≈100", mean)
	}
}

func TestDriftingChangesPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := Drifting{Phases: []Archetype{
		Periodic{Period: 2, Jitter: 0},
		Sporadic{MeanGap: 200},
	}}
	counts := d.Generate(rng, 4*MinutesPerDay)
	f := mkFunc(0, counts)
	firstHalf := f.InterArrivalsInRange(0, 2*MinutesPerDay)
	secondHalf := f.InterArrivalsInRange(2*MinutesPerDay, 4*MinutesPerDay)
	if len(firstHalf) == 0 || len(secondHalf) == 0 {
		t.Fatal("drifting phase empty")
	}
	m1 := meanInts(firstHalf)
	m2 := meanInts(secondHalf)
	if m2 < m1*10 {
		t.Errorf("drift not visible: first mean %v, second mean %v", m1, m2)
	}
	// Empty phase list yields silence, not a panic.
	counts = Drifting{}.Generate(rng, 100)
	for _, c := range counts {
		if c != 0 {
			t.Error("empty drifting produced invocations")
		}
	}
}

func meanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

func TestSamplePoissonLargeLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := samplePoisson(rng, 100)
		if v < 0 {
			t.Fatal("negative Poisson sample")
		}
		sum += float64(v)
	}
	mean := sum / n
	if mean < 95 || mean > 105 {
		t.Errorf("normal-approx Poisson mean = %v, want ≈100", mean)
	}
}

func TestGenerateCustomArchetypes(t *testing.T) {
	tr, err := Generate(GeneratorConfig{
		Seed:       1,
		Horizon:    500,
		Archetypes: []Archetype{Periodic{Period: 5}, Poisson{Rate: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Functions) != 2 || tr.Horizon != 500 {
		t.Errorf("custom generate: %d functions horizon %d", len(tr.Functions), tr.Horizon)
	}
	if tr.Functions[0].Archetype != (Periodic{Period: 5}).Name() {
		t.Errorf("archetype label = %q", tr.Functions[0].Archetype)
	}
}

func BenchmarkGenerateTwoWeeks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(GeneratorConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
