package trace

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/stats"
)

// InterArrivalDistribution buckets a function's inter-arrival times that
// fall within the keep-alive window and reports, per offset minute
// 1..window, the percentage of those invocations arriving at that gap —
// the y-axis of the paper's Figures 1 and 2.
//
// Gaps larger than the window are excluded (they correspond to invocations
// the fixed keep-alive would miss anyway); the returned coverage is the
// fraction of all inter-arrivals that fell inside the window.
func InterArrivalDistribution(gaps []int, window int) (percent []float64, coverage float64, err error) {
	if window <= 0 {
		return nil, 0, fmt.Errorf("trace: non-positive window %d", window)
	}
	percent = make([]float64, window+1) // index = gap in minutes; [0] unused
	if len(gaps) == 0 {
		return percent, 0, nil
	}
	inWindow := 0
	for _, g := range gaps {
		if g < 0 {
			return nil, 0, fmt.Errorf("trace: negative inter-arrival %d", g)
		}
		if g >= 1 && g <= window {
			percent[g]++
			inWindow++
		}
	}
	if inWindow > 0 {
		for i := range percent {
			percent[i] = percent[i] / float64(inWindow) * 100
		}
	}
	return percent, float64(inWindow) / float64(len(gaps)), nil
}

// FunctionSummary captures the headline statistics of a function's series,
// used in trace reports and to sanity-check generated workloads.
type FunctionSummary struct {
	ID              int
	Name            string
	Archetype       string
	Invocations     int
	ActiveMinutes   int
	MeanInterArriv  float64
	CVInterArriv    float64
	P99InterArriv   int
	WithinWindowPct float64 // % of inter-arrivals ≤ 10 min
}

// Summarize computes a FunctionSummary for f.
func Summarize(f *Function) FunctionSummary {
	s := FunctionSummary{ID: f.ID, Name: f.Name, Archetype: f.Archetype}
	s.Invocations = f.TotalInvocations()
	s.ActiveMinutes = len(f.InvocationMinutes())
	gaps := f.InterArrivals()
	if len(gaps) == 0 {
		return s
	}
	h := stats.NewIntHistogram()
	within := 0
	for _, g := range gaps {
		_ = h.Add(g) // gaps are non-negative by construction
		if g <= 10 {
			within++
		}
	}
	s.MeanInterArriv = h.Mean()
	s.CVInterArriv = h.CV()
	if p, err := h.Percentile(99); err == nil {
		s.P99InterArriv = p
	}
	s.WithinWindowPct = float64(within) / float64(len(gaps)) * 100
	return s
}

// SummarizeAll summarizes every function in the trace.
func SummarizeAll(tr *Trace) []FunctionSummary {
	out := make([]FunctionSummary, len(tr.Functions))
	for i := range tr.Functions {
		out[i] = Summarize(&tr.Functions[i])
	}
	return out
}

// DayRange returns the minute range [from, to) covering days [firstDay,
// firstDay+nDays) of the trace, clamped to the horizon. Days are 0-based.
func (tr *Trace) DayRange(firstDay, nDays int) (from, to int) {
	from = firstDay * MinutesPerDay
	to = (firstDay + nDays) * MinutesPerDay
	if from < 0 {
		from = 0
	}
	if to > tr.Horizon {
		to = tr.Horizon
	}
	if from > to {
		from = to
	}
	return from, to
}
