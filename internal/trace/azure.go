package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The Microsoft Azure Functions trace [Shahrad et al., ATC'20] ships as
// per-day CSV files with one row per function:
//
//	HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
//
// where columns 1..1440 are invocation counts per minute of the day. This
// file implements a reader for that format (so users holding the real
// trace can replay it through this repository) and a writer (so synthetic
// traces interoperate with tooling built for the Azure format).

// azureHeaderPrefix is the fixed leading columns of the Azure format.
var azureHeaderPrefix = []string{"HashOwner", "HashApp", "HashFunction", "Trigger"}

// AzureReadOptions controls ReadAzureCSV.
type AzureReadOptions struct {
	// TopN keeps only the N most-invoked functions (the paper selects 12).
	// ≤ 0 keeps all.
	TopN int
	// MinInvocations drops functions with fewer total invocations.
	MinInvocations int
}

// ReadAzureCSV parses one or more consecutive day files of the Azure
// Functions trace format into a Trace. Functions are matched across days by
// their (owner, app, function) hash triple; a function absent from a day
// contributes zeros for that day.
func ReadAzureCSV(opts AzureReadOptions, days ...io.Reader) (*Trace, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("trace: no day files")
	}
	type fnKey struct{ owner, app, fn string }
	counts := make(map[fnKey][]int)
	triggers := make(map[fnKey]string)
	horizon := len(days) * MinutesPerDay

	for day, r := range days {
		cr := csv.NewReader(r)
		cr.FieldsPerRecord = -1
		header, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("trace: azure day %d header: %w", day, err)
		}
		if len(header) < len(azureHeaderPrefix)+1 {
			return nil, fmt.Errorf("trace: azure day %d: header has %d columns", day, len(header))
		}
		for i, want := range azureHeaderPrefix {
			if header[i] != want {
				return nil, fmt.Errorf("trace: azure day %d: header column %d is %q, want %q", day, i, header[i], want)
			}
		}
		nMinutes := len(header) - len(azureHeaderPrefix)
		if nMinutes > MinutesPerDay {
			return nil, fmt.Errorf("trace: azure day %d: %d minute columns exceed a day", day, nMinutes)
		}
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("trace: azure day %d: %w", day, err)
			}
			if len(rec) != len(header) {
				return nil, fmt.Errorf("trace: azure day %d: row has %d fields, header %d", day, len(rec), len(header))
			}
			key := fnKey{owner: rec[0], app: rec[1], fn: rec[2]}
			if _, ok := counts[key]; !ok {
				counts[key] = make([]int, horizon)
				triggers[key] = rec[3]
			}
			base := day * MinutesPerDay
			for m := 0; m < nMinutes; m++ {
				c, err := strconv.Atoi(rec[len(azureHeaderPrefix)+m])
				if err != nil {
					return nil, fmt.Errorf("trace: azure day %d fn %s minute %d: bad count %q",
						day, rec[2], m+1, rec[len(azureHeaderPrefix)+m])
				}
				if c < 0 {
					return nil, fmt.Errorf("trace: azure day %d fn %s minute %d: negative count", day, rec[2], m+1)
				}
				counts[key][base+m] = c
			}
		}
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("trace: azure files contain no functions")
	}

	// Order by total invocations descending (deterministic tie-break on
	// the hash triple) and apply the selection options.
	type ranked struct {
		key   fnKey
		total int
	}
	all := make([]ranked, 0, len(counts))
	for k, c := range counts {
		total := 0
		for _, v := range c {
			total += v
		}
		all = append(all, ranked{key: k, total: total})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].total != all[j].total {
			return all[i].total > all[j].total
		}
		a, b := all[i].key, all[j].key
		if a.owner != b.owner {
			return a.owner < b.owner
		}
		if a.app != b.app {
			return a.app < b.app
		}
		return a.fn < b.fn
	})

	tr := &Trace{Horizon: horizon}
	for _, r := range all {
		if opts.MinInvocations > 0 && r.total < opts.MinInvocations {
			continue
		}
		if opts.TopN > 0 && len(tr.Functions) >= opts.TopN {
			break
		}
		id := len(tr.Functions)
		name := r.key.fn
		if len(name) > 12 {
			name = name[:12]
		}
		tr.Functions = append(tr.Functions, Function{
			ID:        id,
			Name:      fmt.Sprintf("azure-%s", name),
			Archetype: "azure:" + triggers[r.key],
			Counts:    counts[r.key],
		})
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteAzureCSV exports the trace in the Azure Functions day-file format,
// one writer per day. The trace horizon must be a whole number of days and
// match len(days).
func WriteAzureCSV(tr *Trace, days ...io.Writer) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	if tr.Horizon%MinutesPerDay != 0 {
		return fmt.Errorf("trace: horizon %d is not a whole number of days", tr.Horizon)
	}
	if got, want := len(days), tr.Horizon/MinutesPerDay; got != want {
		return fmt.Errorf("trace: %d day writers for a %d-day trace", got, want)
	}
	header := append([]string{}, azureHeaderPrefix...)
	for m := 1; m <= MinutesPerDay; m++ {
		header = append(header, strconv.Itoa(m))
	}
	for day, w := range days {
		cw := csv.NewWriter(w)
		if err := cw.Write(header); err != nil {
			return fmt.Errorf("trace: azure day %d header: %w", day, err)
		}
		base := day * MinutesPerDay
		for i := range tr.Functions {
			f := &tr.Functions[i]
			rec := make([]string, 0, len(header))
			// Synthetic stable hashes derived from the function identity.
			rec = append(rec,
				fmt.Sprintf("owner-%04d", f.ID),
				fmt.Sprintf("app-%04d", f.ID),
				f.Name,
				f.Archetype,
			)
			for m := 0; m < MinutesPerDay; m++ {
				rec = append(rec, strconv.Itoa(f.Counts[base+m]))
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: azure day %d fn %s: %w", day, f.Name, err)
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return fmt.Errorf("trace: azure day %d flush: %w", day, err)
		}
	}
	return nil
}
