package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Spec is a JSON-serializable description of a synthetic workload, letting
// users define custom archetype mixes without writing Go:
//
//	{
//	  "seed": 42,
//	  "days": 14,
//	  "functions": [
//	    {"archetype": "periodic", "params": {"period": 5, "jitter": 1}},
//	    {"archetype": "bursty", "params": {"burstsPerDay": 3, "burstLen": 6,
//	                                       "burstRate": 4, "quietRate": 0.01}},
//	    {"archetype": "drifting", "phases": [
//	      {"archetype": "periodic", "params": {"period": 4}},
//	      {"archetype": "sporadic", "params": {"meanGap": 45}}
//	    ]}
//	  ]
//	}
type Spec struct {
	Seed      int64          `json:"seed"`
	Days      int            `json:"days"`
	Functions []FunctionSpec `json:"functions"`
}

// FunctionSpec describes one function's archetype. Params carries the
// archetype's numeric parameters; Phases is only used by "drifting".
type FunctionSpec struct {
	Archetype string             `json:"archetype"`
	Params    map[string]float64 `json:"params,omitempty"`
	Phases    []FunctionSpec     `json:"phases,omitempty"`
}

// ParseSpec decodes a Spec from JSON, rejecting unknown fields.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: parse spec: %w", err)
	}
	return &s, nil
}

// Build converts the spec into a GeneratorConfig, validating every
// archetype and parameter name.
func (s *Spec) Build() (GeneratorConfig, error) {
	if s.Days <= 0 {
		return GeneratorConfig{}, fmt.Errorf("trace: spec needs positive days, got %d", s.Days)
	}
	if len(s.Functions) == 0 {
		return GeneratorConfig{}, fmt.Errorf("trace: spec has no functions")
	}
	archetypes := make([]Archetype, len(s.Functions))
	for i, fs := range s.Functions {
		a, err := fs.build()
		if err != nil {
			return GeneratorConfig{}, fmt.Errorf("trace: function %d: %w", i, err)
		}
		archetypes[i] = a
	}
	return GeneratorConfig{
		Seed:       s.Seed,
		Horizon:    s.Days * MinutesPerDay,
		Archetypes: archetypes,
	}, nil
}

// paramReader validates parameter names and presence.
type paramReader struct {
	params map[string]float64
	used   map[string]bool
	errs   []error
}

func newParamReader(params map[string]float64) *paramReader {
	return &paramReader{params: params, used: make(map[string]bool)}
}

func (p *paramReader) get(name string, def float64) float64 {
	p.used[name] = true
	if v, ok := p.params[name]; ok {
		return v
	}
	return def
}

func (p *paramReader) finish() error {
	if len(p.errs) > 0 {
		return p.errs[0]
	}
	for name := range p.params {
		if !p.used[name] {
			return fmt.Errorf("unknown parameter %q", name)
		}
	}
	return nil
}

func (fs FunctionSpec) build() (Archetype, error) {
	p := newParamReader(fs.Params)
	var a Archetype
	switch fs.Archetype {
	case "periodic":
		a = Periodic{
			Period: int(p.get("period", 10)),
			Jitter: int(p.get("jitter", 0)),
		}
	case "poisson":
		a = Poisson{Rate: p.get("rate", 0.1)}
	case "diurnal":
		a = Diurnal{
			Base:       p.get("base", 0.02),
			Amplitude:  p.get("amplitude", 0.5),
			PeakMinute: int(p.get("peakMinute", 13*60)),
		}
	case "bursty":
		a = Bursty{
			BurstsPerDay: p.get("burstsPerDay", 3),
			BurstLen:     int(p.get("burstLen", 6)),
			BurstRate:    p.get("burstRate", 4),
			QuietRate:    p.get("quietRate", 0.01),
		}
	case "heavytail":
		a = HeavyTailed{
			Alpha: p.get("alpha", 1.3),
			Scale: p.get("scale", 2),
		}
	case "sporadic":
		a = Sporadic{MeanGap: int(p.get("meanGap", 180))}
	case "drifting":
		if len(fs.Params) > 0 {
			return nil, fmt.Errorf("drifting takes phases, not params")
		}
		if len(fs.Phases) == 0 {
			return nil, fmt.Errorf("drifting needs at least one phase")
		}
		phases := make([]Archetype, len(fs.Phases))
		for i, ps := range fs.Phases {
			sub, err := ps.build()
			if err != nil {
				return nil, fmt.Errorf("phase %d: %w", i, err)
			}
			phases[i] = sub
		}
		return Drifting{Phases: phases}, nil
	default:
		return nil, fmt.Errorf("unknown archetype %q", fs.Archetype)
	}
	if fs.Phases != nil {
		return nil, fmt.Errorf("archetype %q does not take phases", fs.Archetype)
	}
	if err := p.finish(); err != nil {
		return nil, fmt.Errorf("archetype %q: %w", fs.Archetype, err)
	}
	return a, nil
}
