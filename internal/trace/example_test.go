package trace_test

import (
	"fmt"
	"log"
	"strings"

	"github.com/pulse-serverless/pulse/internal/trace"
)

// ExampleGenerate builds a reproducible synthetic workload from explicit
// archetypes.
func ExampleGenerate() {
	tr, err := trace.Generate(trace.GeneratorConfig{
		Seed:    7,
		Horizon: 120,
		Archetypes: []trace.Archetype{
			trace.Periodic{Period: 10},
			trace.Sporadic{MeanGap: 60},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("functions:", len(tr.Functions))
	fmt.Println("fn-00 gaps all 10:", allEqual(tr.Functions[0].InterArrivals(), 10))
	// Output:
	// functions: 2
	// fn-00 gaps all 10: true
}

func allEqual(xs []int, v int) bool {
	for _, x := range xs {
		if x != v {
			return false
		}
	}
	return len(xs) > 0
}

// ExampleInterArrivalDistribution computes the Figure 1 view: the share of
// invocations arriving at each gap within the 10-minute keep-alive window.
func ExampleInterArrivalDistribution() {
	gaps := []int{2, 2, 2, 5, 30}
	pct, coverage, err := trace.InterArrivalDistribution(gaps, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gap 2: %.0f%%, gap 5: %.0f%%, within window: %.0f%%\n",
		pct[2], pct[5], coverage*100)
	// Output:
	// gap 2: 75%, gap 5: 25%, within window: 80%
}

// ExampleParseSpec turns a JSON workload description into a trace.
func ExampleParseSpec() {
	spec, err := trace.ParseSpec(strings.NewReader(`{
	  "seed": 1, "days": 1,
	  "functions": [{"archetype": "periodic", "params": {"period": 15}}]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("horizon minutes:", tr.Horizon)
	fmt.Println("invocations:", tr.TotalInvocations())
	// Output:
	// horizon minutes: 1440
	// invocations: 95
}
