package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig, err := Generate(GeneratorConfig{Seed: 11, Horizon: 2 * MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Horizon != orig.Horizon || len(back.Functions) != len(orig.Functions) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			back.Horizon, len(back.Functions), orig.Horizon, len(orig.Functions))
	}
	for i := range orig.Functions {
		of, bf := &orig.Functions[i], &back.Functions[i]
		if of.ID != bf.ID || of.Name != bf.Name || of.Archetype != bf.Archetype {
			t.Errorf("fn %d metadata mismatch: %+v vs %+v", i, of, bf)
		}
		for tt := range of.Counts {
			if of.Counts[tt] != bf.Counts[tt] {
				t.Fatalf("fn %d counts diverge at %d: %d vs %d", i, tt, of.Counts[tt], bf.Counts[tt])
			}
		}
	}
}

func TestWriteCSVInvalidTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &Trace{Horizon: 0}); err == nil {
		t.Error("writing invalid trace should fail")
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x,y,z,w\n"},
		{"bad id", "id,name,archetype,horizon\nzz,f,a,10,1,1\n"},
		{"bad horizon", "id,name,archetype,horizon\n0,f,a,nope,1,1\n"},
		{"odd pairs", "id,name,archetype,horizon\n0,f,a,10,1\n"},
		{"bad minute", "id,name,archetype,horizon\n0,f,a,10,xx,1\n"},
		{"bad count", "id,name,archetype,horizon\n0,f,a,10,1,xx\n"},
		{"minute out of range", "id,name,archetype,horizon\n0,f,a,10,15,1\n"},
		{"inconsistent horizons", "id,name,archetype,horizon\n0,f,a,10,1,1\n1,g,a,20,1,1\n"},
		{"duplicate ids", "id,name,archetype,horizon\n0,f,a,10,1,1\n0,g,a,10,2,1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadCSV(%q) should fail", c.in)
			}
		})
	}
}

func TestReadCSVValid(t *testing.T) {
	in := "id,name,archetype,horizon\n0,f,periodic,10,2,1,5,3\n1,g,,10\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 10 || len(tr.Functions) != 2 {
		t.Fatalf("parsed shape: horizon=%d fns=%d", tr.Horizon, len(tr.Functions))
	}
	f := tr.FunctionByID(0)
	if f.Counts[2] != 1 || f.Counts[5] != 3 {
		t.Errorf("sparse counts wrong: %v", f.Counts)
	}
	g := tr.FunctionByID(1)
	if g.TotalInvocations() != 0 {
		t.Errorf("empty function has invocations: %v", g.Counts)
	}
}
