package trace

import (
	"testing"
	"testing/quick"
)

func mkFunc(id int, counts []int) Function {
	return Function{ID: id, Name: "f", Counts: counts}
}

func TestFunctionBasics(t *testing.T) {
	f := mkFunc(0, []int{0, 2, 0, 0, 1, 0, 3})
	if got := f.TotalInvocations(); got != 6 {
		t.Errorf("TotalInvocations = %d, want 6", got)
	}
	mins := f.InvocationMinutes()
	want := []int{1, 4, 6}
	if len(mins) != len(want) {
		t.Fatalf("InvocationMinutes = %v", mins)
	}
	for i := range want {
		if mins[i] != want[i] {
			t.Errorf("InvocationMinutes[%d] = %d, want %d", i, mins[i], want[i])
		}
	}
	gaps := f.InterArrivals()
	wantGaps := []int{3, 2}
	for i := range wantGaps {
		if gaps[i] != wantGaps[i] {
			t.Errorf("InterArrivals = %v, want %v", gaps, wantGaps)
			break
		}
	}
}

func TestInterArrivalsDegenerate(t *testing.T) {
	if got := mkFunc(0, []int{0, 0, 0}).InterArrivals(); got != nil {
		t.Errorf("no invocations: gaps = %v, want nil", got)
	}
	if got := mkFunc(0, []int{0, 1, 0}).InterArrivals(); got != nil {
		t.Errorf("single invocation: gaps = %v, want nil", got)
	}
}

func TestInterArrivalsInRange(t *testing.T) {
	f := mkFunc(0, []int{1, 0, 1, 0, 1, 0, 0, 1})
	gaps := f.InterArrivalsInRange(2, 8)
	want := []int{2, 3}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gaps = %v, want %v", gaps, want)
		}
	}
	if got := f.InterArrivalsInRange(5, 7); got != nil {
		t.Errorf("empty range gaps = %v, want nil", got)
	}
	// Out-of-bounds ranges are clamped, not panics.
	_ = f.InterArrivalsInRange(-5, 100)
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{Horizon: 3, Functions: []Function{mkFunc(0, []int{0, 1, 0})}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Horizon: 0, Functions: []Function{mkFunc(0, nil)}},
		{Horizon: 3},
		{Horizon: 3, Functions: []Function{mkFunc(0, []int{0, 1})}},
		{Horizon: 2, Functions: []Function{mkFunc(0, []int{0, -1})}},
		{Horizon: 1, Functions: []Function{mkFunc(0, []int{1}), mkFunc(0, []int{1})}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestAggregateAndTotal(t *testing.T) {
	tr := &Trace{Horizon: 3, Functions: []Function{
		mkFunc(0, []int{1, 0, 2}),
		{ID: 1, Name: "g", Counts: []int{0, 3, 1}},
	}}
	agg := tr.AggregateCounts()
	want := []int{1, 3, 3}
	for i := range want {
		if agg[i] != want[i] {
			t.Errorf("AggregateCounts = %v, want %v", agg, want)
			break
		}
	}
	if got := tr.TotalInvocations(); got != 7 {
		t.Errorf("TotalInvocations = %d, want 7", got)
	}
}

func TestFunctionByID(t *testing.T) {
	tr := &Trace{Horizon: 1, Functions: []Function{
		{ID: 3, Name: "x", Counts: []int{0}},
	}}
	if f := tr.FunctionByID(3); f == nil || f.Name != "x" {
		t.Errorf("FunctionByID(3) = %v", f)
	}
	if f := tr.FunctionByID(99); f != nil {
		t.Errorf("FunctionByID(99) = %v, want nil", f)
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Horizon: 5, Functions: []Function{mkFunc(0, []int{1, 2, 3, 4, 5})}}
	sub, err := tr.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Horizon != 3 {
		t.Errorf("sub horizon = %d, want 3", sub.Horizon)
	}
	want := []int{2, 3, 4}
	for i := range want {
		if sub.Functions[0].Counts[i] != want[i] {
			t.Errorf("sub counts = %v, want %v", sub.Functions[0].Counts, want)
			break
		}
	}
	// Mutating the slice must not affect the original.
	sub.Functions[0].Counts[0] = 99
	if tr.Functions[0].Counts[1] == 99 {
		t.Error("Slice aliases original counts")
	}
	for _, c := range [][2]int{{-1, 3}, {0, 6}, {3, 3}, {4, 2}} {
		if _, err := tr.Slice(c[0], c[1]); err == nil {
			t.Errorf("Slice(%d,%d) should fail", c[0], c[1])
		}
	}
}

func TestTopPeaks(t *testing.T) {
	tr := &Trace{Horizon: 10, Functions: []Function{
		mkFunc(0, []int{0, 5, 0, 0, 9, 8, 0, 0, 7, 0}),
	}}
	peaks := tr.TopPeaks(2, 3)
	if len(peaks) != 2 {
		t.Fatalf("peaks = %v", peaks)
	}
	if peaks[0].Minute != 4 || peaks[0].Count != 9 {
		t.Errorf("peak0 = %+v, want minute 4 count 9", peaks[0])
	}
	// Minute 5 (count 8) is within the 3-minute gap of minute 4; the next
	// eligible peak is minute 8 (count 7).
	if peaks[1].Minute != 8 || peaks[1].Count != 7 {
		t.Errorf("peak1 = %+v, want minute 8 count 7", peaks[1])
	}
	if got := tr.TopPeaks(0, 3); got != nil {
		t.Errorf("TopPeaks(0) = %v, want nil", got)
	}
	empty := &Trace{Horizon: 3, Functions: []Function{mkFunc(0, []int{0, 0, 0})}}
	if got := empty.TopPeaks(2, 1); len(got) != 0 {
		t.Errorf("peaks of silent trace = %v", got)
	}
}

func TestTopPeaksNegativeGap(t *testing.T) {
	tr := &Trace{Horizon: 4, Functions: []Function{mkFunc(0, []int{1, 2, 3, 4})}}
	peaks := tr.TopPeaks(2, -5)
	if len(peaks) != 2 || peaks[0].Minute != 3 || peaks[1].Minute != 2 {
		t.Errorf("peaks with negative gap = %v", peaks)
	}
}

func TestDayRange(t *testing.T) {
	tr := &Trace{Horizon: 14 * MinutesPerDay, Functions: []Function{mkFunc(0, make([]int, 14*MinutesPerDay))}}
	from, to := tr.DayRange(0, 4)
	if from != 0 || to != 4*MinutesPerDay {
		t.Errorf("DayRange(0,4) = %d,%d", from, to)
	}
	from, to = tr.DayRange(12, 4)
	if from != 12*MinutesPerDay || to != tr.Horizon {
		t.Errorf("DayRange(12,4) = %d,%d (should clamp to horizon)", from, to)
	}
	from, to = tr.DayRange(99, 1)
	if from != to {
		t.Errorf("out-of-range DayRange = %d,%d, want empty", from, to)
	}
}

// Property: inter-arrivals of any counts series are all ≥ 1 and sum to the
// span between first and last invocation minute.
func TestInterArrivalInvariant(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v % 3)
		}
		fn := mkFunc(0, counts)
		gaps := fn.InterArrivals()
		mins := fn.InvocationMinutes()
		sum := 0
		for _, g := range gaps {
			if g < 1 {
				return false
			}
			sum += g
		}
		if len(mins) >= 2 {
			return sum == mins[len(mins)-1]-mins[0]
		}
		return len(gaps) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
