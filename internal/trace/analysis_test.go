package trace

import (
	"math"
	"testing"
)

func TestInterArrivalDistribution(t *testing.T) {
	gaps := []int{1, 1, 2, 5, 12, 30} // 4 within a 10-minute window
	pct, coverage, err := InterArrivalDistribution(gaps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pct) != 11 {
		t.Fatalf("pct len = %d, want 11", len(pct))
	}
	if math.Abs(pct[1]-50) > 1e-9 {
		t.Errorf("pct[1] = %v, want 50", pct[1])
	}
	if math.Abs(pct[2]-25) > 1e-9 || math.Abs(pct[5]-25) > 1e-9 {
		t.Errorf("pct[2]=%v pct[5]=%v, want 25 each", pct[2], pct[5])
	}
	if math.Abs(coverage-4.0/6.0) > 1e-9 {
		t.Errorf("coverage = %v, want 2/3", coverage)
	}
	var sum float64
	for _, p := range pct {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("percentages sum to %v, want 100", sum)
	}
}

func TestInterArrivalDistributionEdge(t *testing.T) {
	pct, coverage, err := InterArrivalDistribution(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if coverage != 0 {
		t.Errorf("empty coverage = %v", coverage)
	}
	for _, p := range pct {
		if p != 0 {
			t.Error("empty distribution should be all zeros")
		}
	}
	if _, _, err := InterArrivalDistribution(nil, 0); err == nil {
		t.Error("window 0 should fail")
	}
	if _, _, err := InterArrivalDistribution([]int{-1}, 10); err == nil {
		t.Error("negative gap should fail")
	}
	// All gaps outside the window: zero percentages, zero coverage.
	pct, coverage, err = InterArrivalDistribution([]int{50, 60}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if coverage != 0 {
		t.Errorf("out-of-window coverage = %v, want 0", coverage)
	}
	for _, p := range pct {
		if p != 0 {
			t.Error("out-of-window distribution should be zeros")
		}
	}
}

func TestSummarize(t *testing.T) {
	f := Function{ID: 7, Name: "s", Archetype: "test", Counts: []int{1, 0, 1, 0, 0, 1}}
	s := Summarize(&f)
	if s.ID != 7 || s.Name != "s" || s.Archetype != "test" {
		t.Errorf("identity fields lost: %+v", s)
	}
	if s.Invocations != 3 || s.ActiveMinutes != 3 {
		t.Errorf("counts: %+v", s)
	}
	// Gaps are 2 and 3: mean 2.5, all within 10 minutes.
	if math.Abs(s.MeanInterArriv-2.5) > 1e-9 {
		t.Errorf("mean IA = %v, want 2.5", s.MeanInterArriv)
	}
	if s.WithinWindowPct != 100 {
		t.Errorf("within-window = %v, want 100", s.WithinWindowPct)
	}
	if s.P99InterArriv != 3 {
		t.Errorf("p99 = %d, want 3", s.P99InterArriv)
	}
}

func TestSummarizeNoGaps(t *testing.T) {
	f := Function{Counts: []int{0, 1, 0}}
	s := Summarize(&f)
	if s.Invocations != 1 || s.MeanInterArriv != 0 || s.WithinWindowPct != 0 {
		t.Errorf("degenerate summary: %+v", s)
	}
}

func TestSummarizeAll(t *testing.T) {
	tr, err := Generate(GeneratorConfig{Seed: 5, Horizon: 3 * MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	sums := SummarizeAll(tr)
	if len(sums) != len(tr.Functions) {
		t.Fatalf("summaries = %d, want %d", len(sums), len(tr.Functions))
	}
	for i, s := range sums {
		if s.ID != tr.Functions[i].ID {
			t.Errorf("summary %d has ID %d", i, s.ID)
		}
	}
}
