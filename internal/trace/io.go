package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the trace in a sparse long format:
//
//	header:  id,name,archetype,horizon
//	rows:    one per function, then "minute,count" pairs only for non-zero
//	         minutes, flattened as alternating columns.
//
// The sparse encoding keeps two-week traces compact (most minutes are zero
// for most functions).
func WriteCSV(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "name", "archetype", "horizon"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range tr.Functions {
		f := &tr.Functions[i]
		rec := []string{
			strconv.Itoa(f.ID),
			f.Name,
			f.Archetype,
			strconv.Itoa(tr.Horizon),
		}
		for t, c := range f.Counts {
			if c > 0 {
				rec = append(rec, strconv.Itoa(t), strconv.Itoa(c))
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write function %q: %w", f.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // rows have variable length
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) < 4 || header[0] != "id" {
		return nil, fmt.Errorf("trace: unrecognized header %v", header)
	}
	tr := &Trace{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read row: %w", err)
		}
		if len(rec) < 4 || (len(rec)-4)%2 != 0 {
			return nil, fmt.Errorf("trace: malformed row of %d fields", len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: bad id %q: %w", rec[0], err)
		}
		horizon, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: bad horizon %q: %w", rec[3], err)
		}
		if tr.Horizon == 0 {
			tr.Horizon = horizon
		} else if tr.Horizon != horizon {
			return nil, fmt.Errorf("trace: inconsistent horizons %d and %d", tr.Horizon, horizon)
		}
		f := Function{ID: id, Name: rec[1], Archetype: rec[2], Counts: make([]int, horizon)}
		for i := 4; i < len(rec); i += 2 {
			t, err := strconv.Atoi(rec[i])
			if err != nil {
				return nil, fmt.Errorf("trace: bad minute %q: %w", rec[i], err)
			}
			c, err := strconv.Atoi(rec[i+1])
			if err != nil {
				return nil, fmt.Errorf("trace: bad count %q: %w", rec[i+1], err)
			}
			if t < 0 || t >= horizon {
				return nil, fmt.Errorf("trace: minute %d outside horizon %d", t, horizon)
			}
			f.Counts[t] = c
		}
		tr.Functions = append(tr.Functions, f)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
