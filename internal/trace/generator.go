package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Archetype generates one function's invocation series. Implementations
// must be deterministic given the supplied RNG.
type Archetype interface {
	// Name identifies the archetype in reports and CSV output.
	Name() string
	// Generate fills a fresh count series of the given horizon.
	Generate(rng *rand.Rand, horizon int) []int
}

// Periodic invokes roughly every Period minutes with ±Jitter minutes of
// uniform noise — the "consistent pattern of invocations" case the paper's
// Algorithm 1 contrasts with inactive periods.
type Periodic struct {
	Period int // minutes between invocations (≥ 1)
	Jitter int // max absolute jitter in minutes (≥ 0)
}

// Name implements Archetype.
func (p Periodic) Name() string { return fmt.Sprintf("periodic(p=%d,j=%d)", p.Period, p.Jitter) }

// Generate implements Archetype.
func (p Periodic) Generate(rng *rand.Rand, horizon int) []int {
	counts := make([]int, horizon)
	period := p.Period
	if period < 1 {
		period = 1
	}
	for t := period; t < horizon; t += period {
		j := 0
		if p.Jitter > 0 {
			j = rng.Intn(2*p.Jitter+1) - p.Jitter
		}
		at := t + j
		if at >= 0 && at < horizon {
			counts[at]++
		}
	}
	return counts
}

// Poisson invokes with a constant rate (expected invocations per minute).
type Poisson struct {
	Rate float64 // expected invocations per minute (≥ 0)
}

// Name implements Archetype.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(rate=%.3f)", p.Rate) }

// Generate implements Archetype.
func (p Poisson) Generate(rng *rand.Rand, horizon int) []int {
	counts := make([]int, horizon)
	for t := range counts {
		counts[t] = samplePoisson(rng, p.Rate)
	}
	return counts
}

// Diurnal is a non-homogeneous Poisson process whose rate follows a daily
// sinusoid: rate(t) = Base + Amplitude·max(0, cos(2π(t−PeakMinute)/1440)).
// With PeakMinute near midday this is a "diurnal" function; shifting the
// peak 12 h produces the paper's "nocturnal" functions.
type Diurnal struct {
	Base       float64 // floor rate, invocations per minute
	Amplitude  float64 // additional rate at the daily peak
	PeakMinute int     // minute-of-day of the peak (0..1439)
}

// Name implements Archetype.
func (d Diurnal) Name() string {
	return fmt.Sprintf("diurnal(base=%.3f,amp=%.3f,peak=%d)", d.Base, d.Amplitude, d.PeakMinute)
}

// Generate implements Archetype.
func (d Diurnal) Generate(rng *rand.Rand, horizon int) []int {
	counts := make([]int, horizon)
	for t := range counts {
		phase := 2 * math.Pi * float64((t-d.PeakMinute)%MinutesPerDay) / MinutesPerDay
		rate := d.Base + d.Amplitude*math.Max(0, math.Cos(phase))
		counts[t] = samplePoisson(rng, rate)
	}
	return counts
}

// Bursty produces quiet stretches punctuated by short intense bursts; burst
// starts arrive as a Poisson process. This archetype is what creates the
// sudden cumulative invocation peaks of Tables II/III.
type Bursty struct {
	BurstsPerDay float64 // expected bursts per day
	BurstLen     int     // burst duration in minutes (≥ 1)
	BurstRate    float64 // invocations per minute inside a burst
	QuietRate    float64 // invocations per minute outside bursts
}

// Name implements Archetype.
func (b Bursty) Name() string {
	return fmt.Sprintf("bursty(n/day=%.1f,len=%d,rate=%.2f)", b.BurstsPerDay, b.BurstLen, b.BurstRate)
}

// Generate implements Archetype.
func (b Bursty) Generate(rng *rand.Rand, horizon int) []int {
	counts := make([]int, horizon)
	burstLen := b.BurstLen
	if burstLen < 1 {
		burstLen = 1
	}
	startProb := b.BurstsPerDay / MinutesPerDay
	inBurst := 0
	for t := range counts {
		if inBurst > 0 {
			counts[t] = samplePoisson(rng, b.BurstRate)
			inBurst--
			continue
		}
		if rng.Float64() < startProb {
			inBurst = burstLen - 1
			counts[t] = samplePoisson(rng, b.BurstRate)
			continue
		}
		counts[t] = samplePoisson(rng, b.QuietRate)
	}
	return counts
}

// HeavyTailed draws inter-arrival gaps from a Pareto distribution (heavy
// tail), the distribution class for which Serverless-in-the-Wild falls back
// to its ARIMA path.
type HeavyTailed struct {
	Alpha float64 // Pareto shape (> 0; smaller = heavier tail)
	Scale float64 // minimum gap in minutes (> 0)
}

// Name implements Archetype.
func (h HeavyTailed) Name() string {
	return fmt.Sprintf("heavytail(alpha=%.2f,scale=%.1f)", h.Alpha, h.Scale)
}

// Generate implements Archetype.
func (h HeavyTailed) Generate(rng *rand.Rand, horizon int) []int {
	counts := make([]int, horizon)
	alpha := h.Alpha
	if alpha <= 0 {
		alpha = 1.1
	}
	scale := h.Scale
	if scale <= 0 {
		scale = 1
	}
	t := 0.0
	for {
		gap := scale / math.Pow(1-rng.Float64(), 1/alpha) // Pareto(alpha, scale)
		t += gap
		at := int(t)
		if at >= horizon {
			break
		}
		counts[at]++
	}
	return counts
}

// Sporadic is a very low, irregular rate: long inactivity followed by a
// lone invocation — the case Algorithm 1's "last non-zero keep-alive
// memory" fallback exists for.
type Sporadic struct {
	MeanGap int // mean minutes between invocations (≥ 1)
}

// Name implements Archetype.
func (s Sporadic) Name() string { return fmt.Sprintf("sporadic(gap=%d)", s.MeanGap) }

// Generate implements Archetype.
func (s Sporadic) Generate(rng *rand.Rand, horizon int) []int {
	counts := make([]int, horizon)
	mean := float64(s.MeanGap)
	if mean < 1 {
		mean = 1
	}
	t := 0.0
	for {
		t += rng.ExpFloat64() * mean
		at := int(t)
		if at >= horizon {
			break
		}
		counts[at]++
	}
	return counts
}

// Drifting switches between phases across the horizon — Figure 2's
// "different inter-arrival time patterns across different periods for the
// same function". Each phase occupies an equal share of the horizon.
type Drifting struct {
	Phases []Archetype
}

// Name implements Archetype.
func (d Drifting) Name() string {
	return fmt.Sprintf("drifting(%d phases)", len(d.Phases))
}

// Generate implements Archetype.
func (d Drifting) Generate(rng *rand.Rand, horizon int) []int {
	counts := make([]int, horizon)
	if len(d.Phases) == 0 {
		return counts
	}
	per := horizon / len(d.Phases)
	if per == 0 {
		per = horizon
	}
	for i, phase := range d.Phases {
		start := i * per
		end := start + per
		if i == len(d.Phases)-1 || end > horizon {
			end = horizon
		}
		if start >= horizon {
			break
		}
		sub := phase.Generate(rng, end-start)
		copy(counts[start:end], sub)
	}
	return counts
}

// samplePoisson draws from Poisson(lambda) using Knuth's method for small
// rates and a normal approximation above 30 (adequate for workload
// synthesis; exactness there is immaterial).
func samplePoisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GeneratorConfig configures Generate.
type GeneratorConfig struct {
	Seed       int64
	Horizon    int         // minutes; defaults to 14 days if ≤ 0
	Archetypes []Archetype // one function generated per entry; defaults to AzureLikeArchetypes

	// Churn, when in (0, 1], is the probability that a function (other than
	// the first, which always spans the whole trace) gets a partial
	// lifetime: a late registration, an early deregistration, or both.
	// Lifetimes are drawn from the per-function RNG after the invocation
	// series, so Churn == 0 reproduces the pre-churn trace bit for bit and
	// the invocation patterns inside a lifetime are unchanged by churn.
	Churn float64
}

// AzureLikeArchetypes returns the default mix of 12 function behaviours
// standing in for the paper's 12 Azure-trace functions: periodic at several
// scales, diurnal and nocturnal, bursty, heavy-tailed, sporadic, steady,
// and drifting.
func AzureLikeArchetypes() []Archetype {
	return []Archetype{
		Periodic{Period: 3, Jitter: 1},
		Periodic{Period: 8, Jitter: 2},
		Periodic{Period: 15, Jitter: 3},
		Poisson{Rate: 0.30},
		Poisson{Rate: 0.08},
		Diurnal{Base: 0.02, Amplitude: 0.6, PeakMinute: 13 * 60},
		Diurnal{Base: 0.02, Amplitude: 0.5, PeakMinute: 1 * 60}, // nocturnal
		Bursty{BurstsPerDay: 3, BurstLen: 6, BurstRate: 4, QuietRate: 0.01},
		Bursty{BurstsPerDay: 1.5, BurstLen: 10, BurstRate: 6, QuietRate: 0.005},
		HeavyTailed{Alpha: 1.3, Scale: 2},
		Sporadic{MeanGap: 180},
		Drifting{Phases: []Archetype{
			Periodic{Period: 4, Jitter: 1},
			Sporadic{MeanGap: 45},
			Bursty{BurstsPerDay: 4, BurstLen: 5, BurstRate: 3, QuietRate: 0.01},
		}},
	}
}

// Generate builds a synthetic trace. Each function gets an independent RNG
// derived from the master seed, so adding or reordering archetypes does not
// perturb the others.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 14 * MinutesPerDay
	}
	arch := cfg.Archetypes
	if len(arch) == 0 {
		arch = AzureLikeArchetypes()
	}
	if cfg.Churn < 0 || cfg.Churn > 1 {
		return nil, fmt.Errorf("trace: churn probability %v outside [0, 1]", cfg.Churn)
	}
	tr := &Trace{Horizon: horizon, Functions: make([]Function, len(arch))}
	for i, a := range arch {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1_000_003))
		counts := a.Generate(rng, horizon)
		if len(counts) != horizon {
			return nil, fmt.Errorf("trace: archetype %q generated %d minutes, want %d", a.Name(), len(counts), horizon)
		}
		tr.Functions[i] = Function{
			ID:        i,
			Name:      fmt.Sprintf("fn-%02d", i),
			Archetype: a.Name(),
			Counts:    counts,
		}
		quarter := horizon / 4
		if cfg.Churn > 0 && i > 0 && quarter > 0 && rng.Float64() < cfg.Churn {
			start, end := 0, 0
			switch rng.Intn(3) {
			case 0: // late registration
				start = quarter + rng.Intn(quarter)
			case 1: // early deregistration
				end = horizon - quarter - rng.Intn(quarter)
			default: // mid-trace lifetime window
				start = 1 + rng.Intn(quarter)
				end = horizon - 1 - rng.Intn(quarter)
			}
			tr.Functions[i].SetLifecycle(start, end)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
