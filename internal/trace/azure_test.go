package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// miniAzureDay builds a tiny Azure-format day file with the given function
// rows; each row maps minute→count pairs onto a 1440-column line.
func miniAzureDay(t *testing.T, rows map[string]map[int]int) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("HashOwner,HashApp,HashFunction,Trigger")
	for m := 1; m <= MinutesPerDay; m++ {
		sb.WriteString(",")
		sb.WriteString(itoa(m))
	}
	sb.WriteString("\n")
	for fn, counts := range rows {
		sb.WriteString("o1,a1," + fn + ",http")
		for m := 1; m <= MinutesPerDay; m++ {
			sb.WriteString(",")
			sb.WriteString(itoa(counts[m]))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestReadAzureCSVBasic(t *testing.T) {
	day := miniAzureDay(t, map[string]map[int]int{
		"busy":  {1: 3, 2: 1, 100: 2},
		"quiet": {500: 1},
	})
	tr, err := ReadAzureCSV(AzureReadOptions{}, strings.NewReader(day))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != MinutesPerDay {
		t.Errorf("horizon = %d", tr.Horizon)
	}
	if len(tr.Functions) != 2 {
		t.Fatalf("functions = %d", len(tr.Functions))
	}
	// Ordered by invocation volume descending.
	if tr.Functions[0].TotalInvocations() != 6 || tr.Functions[1].TotalInvocations() != 1 {
		t.Errorf("ordering/totals wrong: %d, %d",
			tr.Functions[0].TotalInvocations(), tr.Functions[1].TotalInvocations())
	}
	// Column "1" is minute index 0.
	if tr.Functions[0].Counts[0] != 3 || tr.Functions[0].Counts[99] != 2 {
		t.Errorf("minute alignment wrong: %v %v", tr.Functions[0].Counts[0], tr.Functions[0].Counts[99])
	}
	if tr.Functions[0].Archetype != "azure:http" {
		t.Errorf("trigger lost: %q", tr.Functions[0].Archetype)
	}
}

func TestReadAzureCSVMultiDay(t *testing.T) {
	day1 := miniAzureDay(t, map[string]map[int]int{"f": {1: 1}})
	day2 := miniAzureDay(t, map[string]map[int]int{"f": {10: 2}, "g": {5: 7}})
	tr, err := ReadAzureCSV(AzureReadOptions{}, strings.NewReader(day1), strings.NewReader(day2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 2*MinutesPerDay {
		t.Errorf("horizon = %d", tr.Horizon)
	}
	f := tr.Functions[1] // "f" has 3 total, "g" has 7 → g first
	g := tr.Functions[0]
	if g.TotalInvocations() != 7 || f.TotalInvocations() != 3 {
		t.Fatalf("totals: g=%d f=%d", g.TotalInvocations(), f.TotalInvocations())
	}
	if f.Counts[0] != 1 || f.Counts[MinutesPerDay+9] != 2 {
		t.Errorf("multi-day alignment wrong")
	}
	// g absent on day 1: zeros.
	for m := 0; m < MinutesPerDay; m++ {
		if g.Counts[m] != 0 {
			t.Fatalf("g has day-1 counts at %d", m)
		}
	}
}

func TestReadAzureCSVSelection(t *testing.T) {
	day := miniAzureDay(t, map[string]map[int]int{
		"a": {1: 10}, "b": {1: 5}, "c": {1: 1},
	})
	tr, err := ReadAzureCSV(AzureReadOptions{TopN: 2}, strings.NewReader(day))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Functions) != 2 {
		t.Errorf("TopN: functions = %d", len(tr.Functions))
	}
	tr, err = ReadAzureCSV(AzureReadOptions{MinInvocations: 5}, strings.NewReader(day))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Functions) != 2 {
		t.Errorf("MinInvocations: functions = %d", len(tr.Functions))
	}
}

func TestReadAzureCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong header", "x,y,z\n"},
		{"short header", "HashOwner,HashApp\n"},
		{"bad count", "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,xx\n"},
		{"negative count", "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,-1\n"},
		{"ragged row", "HashOwner,HashApp,HashFunction,Trigger,1,2\no,a,f,http,1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadAzureCSV(AzureReadOptions{}, strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadAzureCSV(%q) should fail", c.name)
			}
		})
	}
	if _, err := ReadAzureCSV(AzureReadOptions{}); err == nil {
		t.Error("no day files accepted")
	}
	// A file with only a header has no functions.
	onlyHeader := "HashOwner,HashApp,HashFunction,Trigger,1\n"
	if _, err := ReadAzureCSV(AzureReadOptions{}, strings.NewReader(onlyHeader)); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestAzureRoundTrip(t *testing.T) {
	orig, err := Generate(GeneratorConfig{Seed: 2, Horizon: 2 * MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	var day1, day2 bytes.Buffer
	if err := WriteAzureCSV(orig, &day1, &day2); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAzureCSV(AzureReadOptions{}, &day1, &day2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Horizon != orig.Horizon || len(back.Functions) != len(orig.Functions) {
		t.Fatalf("shape: %d/%d vs %d/%d", back.Horizon, len(back.Functions), orig.Horizon, len(orig.Functions))
	}
	// Functions come back volume-ordered; match by totals instead of IDs.
	origTotals := map[int]bool{}
	backTotal := 0
	origTotal := 0
	for i := range orig.Functions {
		origTotals[orig.Functions[i].TotalInvocations()] = true
		origTotal += orig.Functions[i].TotalInvocations()
	}
	for i := range back.Functions {
		if !origTotals[back.Functions[i].TotalInvocations()] {
			t.Errorf("function with unexpected total %d", back.Functions[i].TotalInvocations())
		}
		backTotal += back.Functions[i].TotalInvocations()
	}
	if backTotal != origTotal {
		t.Errorf("total invocations: %d vs %d", backTotal, origTotal)
	}
}

func TestWriteAzureCSVErrors(t *testing.T) {
	tr, err := Generate(GeneratorConfig{Seed: 2, Horizon: MinutesPerDay + 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAzureCSV(tr, io.Discard); err == nil {
		t.Error("non-whole-day horizon accepted")
	}
	tr2, err := Generate(GeneratorConfig{Seed: 2, Horizon: 2 * MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAzureCSV(tr2, io.Discard); err == nil {
		t.Error("wrong day-writer count accepted")
	}
	if err := WriteAzureCSV(&Trace{Horizon: 0}, io.Discard); err == nil {
		t.Error("invalid trace accepted")
	}
}
