// Package trace models serverless invocation workloads at minute
// resolution, the time base PULSE works in ("the time resolution used for
// inter-arrival time is in minutes").
//
// The paper drives its evaluation with the Microsoft Azure Functions
// production trace [Shahrad et al., ATC'20], selecting the inter-arrival
// behaviour of 12 functions. That trace cannot be redistributed, so this
// package also provides a seeded synthetic generator (see generator.go)
// that reproduces the workload properties PULSE's evaluation depends on:
// per-function inter-arrival diversity (Fig. 1), temporal drift within a
// function (Fig. 2), and cumulative invocation peaks (Tables II/III).
package trace

import (
	"errors"
	"fmt"
	"sort"
)

// MinutesPerDay is the number of simulation minutes in a day.
const MinutesPerDay = 24 * 60

// Function is one serverless function's invocation series: Counts[t] is the
// number of invocations arriving during minute t.
//
// Start and End bound the function's lifetime for churn workloads: the
// function registers at the start of minute Start and deregisters at the
// start of minute End (exclusive; 0 means "lives to the horizon"). The zero
// value — Start == 0, End == 0 — is a function that exists for the whole
// trace, so every pre-churn trace is unchanged. Counts outside [Start, End)
// must be zero.
type Function struct {
	ID        int
	Name      string
	Archetype string // generator archetype that produced it ("" for loaded traces)
	Counts    []int
	Start     int // first minute the function exists (inclusive)
	End       int // first minute the function no longer exists (0 = horizon)
}

// EndMinute resolves the exclusive end of the function's lifetime against
// the trace horizon: an unset (zero) End means the function lives to the
// end.
func (f Function) EndMinute(horizon int) int {
	if f.End == 0 {
		return horizon
	}
	return f.End
}

// LiveAt reports whether the function exists during minute t.
func (f Function) LiveAt(t, horizon int) bool {
	return t >= f.Start && t < f.EndMinute(horizon)
}

// SetLifecycle bounds the function's lifetime to [start, end) and zeroes
// every invocation count outside it, keeping the trace self-consistent.
func (f *Function) SetLifecycle(start, end int) {
	f.Start, f.End = start, end
	for t := range f.Counts {
		if t < start || (end != 0 && t >= end) {
			f.Counts[t] = 0
		}
	}
}

// TotalInvocations returns the total invocation count of the function.
func (f Function) TotalInvocations() int {
	total := 0
	for _, c := range f.Counts {
		total += c
	}
	return total
}

// InvocationMinutes returns the sorted minutes with at least one invocation.
func (f Function) InvocationMinutes() []int {
	var out []int
	for t, c := range f.Counts {
		if c > 0 {
			out = append(out, t)
		}
	}
	return out
}

// InterArrivals returns the gaps, in minutes, between successive invocation
// minutes. A function with fewer than two active minutes has no
// inter-arrivals.
func (f Function) InterArrivals() []int {
	mins := f.InvocationMinutes()
	if len(mins) < 2 {
		return nil
	}
	out := make([]int, 0, len(mins)-1)
	for i := 1; i < len(mins); i++ {
		out = append(out, mins[i]-mins[i-1])
	}
	return out
}

// InterArrivalsInRange returns inter-arrivals computed only from invocation
// minutes t with from ≤ t < to. Figure 2 uses this to compare the first,
// middle, and last four days of the same function.
func (f Function) InterArrivalsInRange(from, to int) []int {
	var mins []int
	for t := from; t < to && t < len(f.Counts); t++ {
		if t >= 0 && f.Counts[t] > 0 {
			mins = append(mins, t)
		}
	}
	if len(mins) < 2 {
		return nil
	}
	out := make([]int, 0, len(mins)-1)
	for i := 1; i < len(mins); i++ {
		out = append(out, mins[i]-mins[i-1])
	}
	return out
}

// Trace is a fixed-horizon workload over a set of functions. All functions
// share the same horizon.
type Trace struct {
	Horizon   int // minutes
	Functions []Function
}

// Validate checks structural invariants: positive horizon, count slices of
// the right length, non-negative counts, unique IDs.
func (tr *Trace) Validate() error {
	if tr.Horizon <= 0 {
		return fmt.Errorf("trace: non-positive horizon %d", tr.Horizon)
	}
	if len(tr.Functions) == 0 {
		return errors.New("trace: no functions")
	}
	seen := make(map[int]bool, len(tr.Functions))
	for i := range tr.Functions {
		f := &tr.Functions[i]
		if seen[f.ID] {
			return fmt.Errorf("trace: duplicate function ID %d", f.ID)
		}
		seen[f.ID] = true
		if len(f.Counts) != tr.Horizon {
			return fmt.Errorf("trace: function %q has %d minutes, horizon is %d", f.Name, len(f.Counts), tr.Horizon)
		}
		for t, c := range f.Counts {
			if c < 0 {
				return fmt.Errorf("trace: function %q has negative count %d at minute %d", f.Name, c, t)
			}
		}
		if f.Start < 0 || f.Start >= tr.Horizon {
			return fmt.Errorf("trace: function %q starts at minute %d, horizon is %d", f.Name, f.Start, tr.Horizon)
		}
		end := f.EndMinute(tr.Horizon)
		if end <= f.Start || end > tr.Horizon {
			return fmt.Errorf("trace: function %q has lifetime [%d, %d), horizon is %d", f.Name, f.Start, end, tr.Horizon)
		}
		for t, c := range f.Counts {
			if c > 0 && (t < f.Start || t >= end) {
				return fmt.Errorf("trace: function %q invoked at minute %d outside its lifetime [%d, %d)", f.Name, t, f.Start, end)
			}
		}
	}
	return nil
}

// HasChurn reports whether any function registers after minute 0 or
// deregisters before the horizon — i.e. whether replaying the trace requires
// online lifecycle support.
func (tr *Trace) HasChurn() bool {
	for i := range tr.Functions {
		f := &tr.Functions[i]
		if f.Start != 0 || f.EndMinute(tr.Horizon) != tr.Horizon {
			return true
		}
	}
	return false
}

// FunctionByID returns the function with the given ID, or nil.
func (tr *Trace) FunctionByID(id int) *Function {
	for i := range tr.Functions {
		if tr.Functions[i].ID == id {
			return &tr.Functions[i]
		}
	}
	return nil
}

// AggregateCounts returns, per minute, the total invocations across all
// functions — the series in which the paper identifies "numerous peaks in
// invocations (cumulative for all concurrent functions)".
func (tr *Trace) AggregateCounts() []int {
	agg := make([]int, tr.Horizon)
	for i := range tr.Functions {
		for t, c := range tr.Functions[i].Counts {
			agg[t] += c
		}
	}
	return agg
}

// TotalInvocations returns the total invocation count across functions.
func (tr *Trace) TotalInvocations() int {
	total := 0
	for i := range tr.Functions {
		total += tr.Functions[i].TotalInvocations()
	}
	return total
}

// Slice returns a sub-trace covering minutes [from, to). Function IDs,
// names, and archetypes are preserved; counts are copied. Churn traces
// cannot be sliced: a lifetime boundary has no meaningful projection onto an
// arbitrary sub-window.
func (tr *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to > tr.Horizon || from >= to {
		return nil, fmt.Errorf("trace: invalid slice [%d, %d) of horizon %d", from, to, tr.Horizon)
	}
	if tr.HasChurn() {
		return nil, errors.New("trace: cannot slice a trace with function churn")
	}
	out := &Trace{Horizon: to - from, Functions: make([]Function, len(tr.Functions))}
	for i := range tr.Functions {
		f := &tr.Functions[i]
		counts := make([]int, to-from)
		copy(counts, f.Counts[from:to])
		out.Functions[i] = Function{ID: f.ID, Name: f.Name, Archetype: f.Archetype, Counts: counts}
	}
	return out, nil
}

// Peak is a local maximum of the aggregate invocation series.
type Peak struct {
	Minute int
	Count  int
}

// TopPeaks returns the n highest-volume peaks of the aggregate series,
// separated by at least minGap minutes so that one broad burst does not
// claim every slot. Peaks are returned by descending count. The paper
// "designate[s] two prominent peaks, characterized by the highest volume of
// invocations" — TopPeaks(2, gap) reproduces that selection.
func (tr *Trace) TopPeaks(n, minGap int) []Peak {
	if n <= 0 {
		return nil
	}
	if minGap < 0 {
		minGap = 0
	}
	agg := tr.AggregateCounts()
	order := make([]int, len(agg))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return agg[order[a]] > agg[order[b]] })
	var peaks []Peak
	for _, t := range order {
		if agg[t] == 0 {
			break
		}
		tooClose := false
		for _, p := range peaks {
			if abs(p.Minute-t) < minGap {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		peaks = append(peaks, Peak{Minute: t, Count: agg[t]})
		if len(peaks) == n {
			break
		}
	}
	return peaks
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
