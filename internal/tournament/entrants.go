package tournament

// The three packaged entrants re-express the attribution accountant's
// original baked-in shadows. Their accounting is proven bit-identical to
// the pre-refactor accountant by the attribution package's golden pin and
// the runtime differential suite.

// FixedWindow is the OpenWhisk/AWS-style baseline: after every invoked
// minute the family's highest-quality variant stays warm for the next
// window minutes (an invocation at minute m keeps the container alive
// through minute m+window).
type FixedWindow struct {
	name    string
	window  int
	lastInv []int // minute of last invocation per slot, -1 before any
	highest []int // highest variant index per slot
}

// NewFixedWindow builds the fixed keep-alive entrant.
func NewFixedWindow(name string, window int) *FixedWindow {
	return &FixedWindow{name: name, window: window}
}

// Name implements ShadowEntrant.
func (f *FixedWindow) Name() string { return f.name }

// Register implements ShadowEntrant.
func (f *FixedWindow) Register(fn, fam, numVariants int) {
	f.lastInv = append(f.lastInv, -1)
	f.highest = append(f.highest, numVariants-1)
}

// Retire implements ShadowEntrant: resetting lastInv to the never-invoked
// state closes the window immediately, like the policy package's
// tombstoned slots.
func (f *FixedWindow) Retire(fn int) { f.lastInv[fn] = -1 }

// KeepAlive implements ShadowEntrant.
func (f *FixedWindow) KeepAlive(m, fn int) int {
	if last := f.lastInv[fn]; last >= 0 && m <= last+f.window {
		return f.highest[fn]
	}
	return NoVariant
}

// Record implements ShadowEntrant.
func (f *FixedWindow) Record(m, fn, count int) {
	if count > 0 {
		f.lastInv[fn] = m
	}
}

// Never keeps nothing warm, ever: every invoked minute opens with a cold
// start on the highest variant. It is the floor of the cost axis and the
// ceiling of the cold-start axis.
type Never struct{ name string }

// NewNever builds the never-keep-alive entrant.
func NewNever(name string) *Never { return &Never{name: name} }

// Name implements ShadowEntrant.
func (n *Never) Name() string { return n.name }

// Register implements ShadowEntrant.
func (n *Never) Register(fn, fam, numVariants int) {}

// Retire implements ShadowEntrant.
func (n *Never) Retire(fn int) {}

// KeepAlive implements ShadowEntrant.
func (n *Never) KeepAlive(m, fn int) int { return NoVariant }

// Record implements ShadowEntrant.
func (n *Never) Record(m, fn, count int) {}

// Oracle is the paper's hindsight ideal (Figure 6b): the highest variant
// is alive exactly during invoked minutes — charged retroactively when the
// minute's first invocation arrives — so no idle minute is ever paid for
// and no invocation is ever cold.
type Oracle struct {
	name    string
	highest []int
}

// NewOracle builds the hindsight-ideal entrant.
func NewOracle(name string) *Oracle { return &Oracle{name: name} }

// Name implements ShadowEntrant.
func (o *Oracle) Name() string { return o.name }

// Register implements ShadowEntrant.
func (o *Oracle) Register(fn, fam, numVariants int) {
	o.highest = append(o.highest, numVariants-1)
}

// Retire implements ShadowEntrant.
func (o *Oracle) Retire(fn int) {}

// KeepAlive implements ShadowEntrant: the oracle never holds proactively.
func (o *Oracle) KeepAlive(m, fn int) int { return NoVariant }

// Record implements ShadowEntrant.
func (o *Oracle) Record(m, fn, count int) {}

// HindsightKeepAlive implements HindsightEntrant.
func (o *Oracle) HindsightKeepAlive(m, fn int) int { return o.highest[fn] }

var (
	_ ShadowEntrant    = (*FixedWindow)(nil)
	_ ShadowEntrant    = (*Never)(nil)
	_ HindsightEntrant = (*Oracle)(nil)
)
