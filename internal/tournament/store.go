package tournament

// DefaultSeriesWindow is the minute-resolution retention of the arena's
// time-series store: one day. The hourly rollup ring holds the same number
// of buckets, extending the queryable horizon 60×.
const DefaultSeriesWindow = 1440

// Channel identifies one per-minute aggregate tracked for the live policy
// (shared) or for one entrant.
type Channel int

// The tracked channels. ChanKaMMB is a point-in-time gauge (MB kept alive
// during the minute) and rolls up hourly by mean; the rest are per-minute
// amounts and roll up by sum. ChanInvocations exists only on the shared
// account (every entrant sees the identical invocation feed);
// ChanSavingsUSD exists only on entrants (entrant cost − live cost for the
// minute, priced when the minute closes).
const (
	ChanKaMMB Channel = iota
	ChanCostUSD
	ChanCold
	ChanInvocations
	ChanSavingsUSD
)

// Selector addresses one time-series: a channel of the shared live account
// (Entrant < 0) or of entrant index Entrant.
type Selector struct {
	Entrant int
	Channel Channel
}

// Shared returns the selector for a live-account channel.
func Shared(c Channel) Selector { return Selector{Entrant: -1, Channel: c} }

// Point is one time-series sample.
type Point struct {
	Minute int     `json:"minute"`
	Value  float64 `json:"value"`
}

// Per-row layout: 4 shared channels, then 4 channels per entrant.
const (
	sharedChans  = 4 // kam, cost, cold, invocations
	entrantChans = 4 // kam, cost, cold, savings
)

// rowWidth is the store row size for nEntrants entrants.
func rowWidth(nEntrants int) int { return sharedChans + entrantChans*nEntrants }

// index maps a selector to its row offset, reporting false for channels
// the account does not carry.
func (s Selector) index(nEntrants int) (int, bool) {
	if s.Entrant < 0 {
		switch s.Channel {
		case ChanKaMMB:
			return 0, true
		case ChanCostUSD:
			return 1, true
		case ChanCold:
			return 2, true
		case ChanInvocations:
			return 3, true
		}
		return 0, false
	}
	if s.Entrant >= nEntrants {
		return 0, false
	}
	base := sharedChans + entrantChans*s.Entrant
	switch s.Channel {
	case ChanKaMMB:
		return base, true
	case ChanCostUSD:
		return base + 1, true
	case ChanCold:
		return base + 2, true
	case ChanSavingsUSD:
		return base + 3, true
	}
	return 0, false
}

// store is a fixed-capacity windowed time-series: a ring of per-minute
// rows (idx = minute % window, with a stamp array to detect stale slots)
// plus an hourly rollup ring of the same bucket count. Pushes allocate
// nothing; all storage is laid out at construction. Callers synchronize
// externally (the Arena's mutex).
type store struct {
	window int
	width  int
	gauge  []bool // per-offset: hourly rollup averages instead of sums
	stamps []int  // minute stored in each slot, -1 when empty
	vals   [][]float64

	hourStamps []int // hour (minute/60) stored in each rollup slot
	hourVals   [][]float64
	hourCnt    []int // minutes folded into the open rollup
}

func newStore(window, nEntrants int) *store {
	width := rowWidth(nEntrants)
	s := &store{
		window:     window,
		width:      width,
		gauge:      make([]bool, width),
		stamps:     make([]int, window),
		vals:       make([][]float64, window),
		hourStamps: make([]int, window),
		hourVals:   make([][]float64, window),
		hourCnt:    make([]int, window),
	}
	s.gauge[0] = true // shared KaM
	for e := 0; e < nEntrants; e++ {
		s.gauge[sharedChans+entrantChans*e] = true // entrant KaM
	}
	for i := range s.stamps {
		s.stamps[i] = -1
		s.hourStamps[i] = -1
		s.vals[i] = make([]float64, width)
		s.hourVals[i] = make([]float64, width)
	}
	return s
}

// push records minute m's row, overwriting whatever the slot held a window
// ago, and folds the minute into its hourly rollup bucket.
func (s *store) push(m int, row []float64) {
	if m < 0 {
		return
	}
	i := m % s.window
	s.stamps[i] = m
	copy(s.vals[i], row)

	h := m / 60
	hi := h % s.window
	if s.hourStamps[hi] != h {
		s.hourStamps[hi] = h
		for k := range s.hourVals[hi] {
			s.hourVals[hi][k] = 0
		}
		s.hourCnt[hi] = 0
	}
	for k, v := range row {
		s.hourVals[hi][k] += v
	}
	s.hourCnt[hi]++
}

// at returns the value at row offset idx for one closed minute, reporting
// false when the slot is empty or has been overwritten by a newer minute.
func (s *store) at(idx, m int) (float64, bool) {
	if m < 0 {
		return 0, false
	}
	i := m % s.window
	if s.stamps[i] != m {
		return 0, false
	}
	return s.vals[i][idx], true
}

// series appends the most recent points for row offset idx within the
// trailing window [now-window+1, now] to dst, oldest first. hourly
// switches to the rollup ring (window then counts hours); gauge offsets
// report the hourly mean, amounts the hourly sum.
func (s *store) series(idx, now, window int, hourly bool, dst []Point) []Point {
	if now < 0 || window <= 0 {
		return dst
	}
	if window > s.window {
		window = s.window
	}
	if hourly {
		nowH := now / 60
		for h := nowH - window + 1; h <= nowH; h++ {
			if h < 0 {
				continue
			}
			hi := h % s.window
			if s.hourStamps[hi] != h || s.hourCnt[hi] == 0 {
				continue
			}
			v := s.hourVals[hi][idx]
			if s.gauge[idx] {
				v /= float64(s.hourCnt[hi])
			}
			dst = append(dst, Point{Minute: h * 60, Value: v})
		}
		return dst
	}
	for m := now - window + 1; m <= now; m++ {
		if m < 0 {
			continue
		}
		i := m % s.window
		if s.stamps[i] != m {
			continue
		}
		dst = append(dst, Point{Minute: m, Value: s.vals[i][idx]})
	}
	return dst
}
