package tournament

import (
	"reflect"
	"testing"
)

// The store scenarios below were ported from the attribution package when
// its fixed-width store generalized into this one; the shared-invocations
// offset stands in for any amount channel and the shared-KaM offset for
// any gauge.

func storeIdx(t *testing.T, s *store, sel Selector, nEntrants int) int {
	t.Helper()
	idx, ok := sel.index(nEntrants)
	if !ok {
		t.Fatalf("selector %+v unresolvable", sel)
	}
	return idx
}

func pushMinute(s *store, m int, val float64) {
	row := make([]float64, s.width)
	for k := range row {
		row[k] = val
	}
	s.push(m, row)
}

func TestStoreMinuteWindowAndEviction(t *testing.T) {
	s := newStore(4, 2)
	inv := storeIdx(t, s, Shared(ChanInvocations), 2)
	for m := 0; m < 10; m++ {
		pushMinute(s, m, float64(m))
	}
	// Only minutes 6..9 survive a window of 4.
	got := s.series(inv, 9, 10, false, nil)
	want := []Point{{6, 6}, {7, 7}, {8, 8}, {9, 9}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("series after eviction = %v, want %v", got, want)
	}
	// A narrower window trims from the old end.
	got = s.series(inv, 9, 2, false, nil)
	if want = []Point{{8, 8}, {9, 9}}; !reflect.DeepEqual(got, want) {
		t.Errorf("narrow window = %v, want %v", got, want)
	}
	// Asking as-of an older now excludes newer minutes still in the ring.
	got = s.series(inv, 8, 2, false, nil)
	if want = []Point{{7, 7}, {8, 8}}; !reflect.DeepEqual(got, want) {
		t.Errorf("older now = %v, want %v", got, want)
	}
}

func TestStoreSkippedMinutesLeaveGaps(t *testing.T) {
	s := newStore(8, 1)
	cold := storeIdx(t, s, Shared(ChanCold), 1)
	pushMinute(s, 0, 1)
	pushMinute(s, 3, 4)
	got := s.series(cold, 3, 8, false, nil)
	want := []Point{{0, 1}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("gapped series = %v, want %v", got, want)
	}
}

func TestStoreHourlyRollup(t *testing.T) {
	s := newStore(256, 3)
	kam := storeIdx(t, s, Shared(ChanKaMMB), 3)
	entKam := storeIdx(t, s, Selector{Entrant: 2, Channel: ChanKaMMB}, 3)
	inv := storeIdx(t, s, Shared(ChanInvocations), 3)
	// Two full hours: hour 0 pushes value 2 every minute, hour 1 value 5.
	for m := 0; m < 120; m++ {
		val := 2.0
		if m >= 60 {
			val = 5.0
		}
		pushMinute(s, m, val)
	}
	// Gauge channels (shared and per-entrant KaM): hourly mean.
	want := []Point{{0, 2}, {60, 5}}
	if got := s.series(kam, 119, 2, true, nil); !reflect.DeepEqual(got, want) {
		t.Errorf("gauge rollup = %v, want %v", got, want)
	}
	if got := s.series(entKam, 119, 2, true, nil); !reflect.DeepEqual(got, want) {
		t.Errorf("entrant gauge rollup = %v, want %v", got, want)
	}
	// Amount channel (invocations): hourly sum.
	got := s.series(inv, 119, 2, true, nil)
	want = []Point{{0, 120}, {60, 300}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("amount rollup = %v, want %v", got, want)
	}
	// A partial hour averages over the minutes actually folded in.
	pushMinute(s, 120, 9)
	pushMinute(s, 121, 11)
	got = s.series(kam, 121, 1, true, nil)
	if want = []Point{{120, 10}}; !reflect.DeepEqual(got, want) {
		t.Errorf("partial hour = %v, want %v", got, want)
	}
}

func TestStorePushDoesNotAllocate(t *testing.T) {
	s := newStore(64, 6)
	row := make([]float64, s.width)
	for k := range row {
		row[k] = 1
	}
	m := 0
	if avg := testing.AllocsPerRun(500, func() {
		s.push(m, row)
		m++
	}); avg != 0 {
		t.Errorf("push allocates %v times, want 0", avg)
	}
}

func TestSelectorIndexRejectsForeignChannels(t *testing.T) {
	const n = 2
	bad := []Selector{
		Shared(ChanSavingsUSD),                 // savings is entrant-only
		{Entrant: 0, Channel: ChanInvocations}, // invocations is shared-only
		{Entrant: n, Channel: ChanKaMMB},       // entrant out of range
		{Entrant: 0, Channel: Channel(99)},     // unknown channel
		Shared(Channel(99)),                    // unknown shared channel
	}
	for _, sel := range bad {
		if _, ok := sel.index(n); ok {
			t.Errorf("selector %+v resolved, want rejection", sel)
		}
	}
	good := []Selector{
		Shared(ChanKaMMB), Shared(ChanCostUSD), Shared(ChanCold), Shared(ChanInvocations),
		{Entrant: 0, Channel: ChanKaMMB}, {Entrant: 1, Channel: ChanSavingsUSD},
	}
	seen := map[int]bool{}
	for _, sel := range good {
		idx, ok := sel.index(n)
		if !ok {
			t.Errorf("selector %+v rejected, want index", sel)
			continue
		}
		if seen[idx] {
			t.Errorf("selector %+v collides at offset %d", sel, idx)
		}
		seen[idx] = true
	}
}
