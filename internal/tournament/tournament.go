// Package tournament generalizes the attribution layer's three baked-in
// shadow policies into a pluggable entrant framework: any keep-alive
// policy expressible as a ShadowEntrant can be raced in-stream against the
// live policy, with the same accounting discipline the Accountant always
// had — integer counters on the hot path, float pricing at snapshot time,
// and a fixed deterministic accounting order (entrants in registration
// order, functions in slot order within each entrant) so results are
// invariant to shard count and runtime serving mode.
//
// The Arena is the referee: a telemetry.Observer fed the barrier-ordered
// sample stream, it keeps one shared ledger (the live policy's account)
// plus one per-entrant per-function ledger, opens each minute by asking
// every entrant which variant it holds warm, and closes each minute by
// feeding every entrant the minute's per-function invocation counts.
// Entrants therefore only ever see the stream at minute granularity,
// which makes every entrant — including learning ones — a pure function
// of the trace: decisions for minute m may use history through m−1 only,
// and state updates happen at the minute barrier, never mid-minute.
//
// The packaged fixed-window, never, and oracle entrants re-express the
// accountant's original shadows; the attribution package pins their output
// bit-identical to the pre-refactor accountant.
package tournament

import "github.com/pulse-serverless/pulse/internal/cluster"

// NoVariant is the KeepAlive return value for "hold nothing warm".
const NoVariant = cluster.NoVariant

// ShadowEntrant is one raced keep-alive policy. The Arena drives it with a
// strict minute protocol, always in ascending function-slot order:
//
//	Register(fn, fam, nv)      — slot fn (dense, append-only) joins, family fam, nv variants
//	KeepAlive(m, fn)           — at the open of minute m: which variant is held warm (NoVariant: none)
//	Record(m, fn, count)       — at the close of minute m: the minute's total invocations (0 when idle)
//	Retire(fn)                 — slot fn deregistered; it will never be invoked or scanned again
//
// Implementations must be deterministic (no wall clock, no global RNG) and
// must not allocate in KeepAlive or Record once registered: the Arena's
// steady-state minute is allocation-free and entrants ride inside it.
// Entrants never price anything — the Arena charges the held variant's
// memory and cost from the shared catalog geometry.
type ShadowEntrant interface {
	// Name identifies the entrant in reports, /top?by=policy, and the
	// savings_vs_<name>_usd time-series. Must be unique within an Arena.
	Name() string
	// Register opens ledger slot fn (the next dense slot) for a function
	// of family fam with numVariants quality variants.
	Register(fn, fam, numVariants int)
	// Retire closes slot fn; the entrant should release or reset any
	// per-function state (the slot is never scanned again).
	Retire(fn int)
	// KeepAlive reports the variant index the entrant holds warm for
	// function fn during minute m, or NoVariant. Called once per minute
	// per live function, ascending fn, before any of minute m's samples.
	KeepAlive(m, fn int) int
	// Record delivers minute m's total invocation count for fn (possibly
	// zero) at the minute barrier, after every sample of m was observed.
	Record(m, fn, count int)
}

// HindsightEntrant is a ShadowEntrant with retroactive clairvoyance: when
// a function-minute turns out to be invoked, HindsightKeepAlive may charge
// a variant as kept alive for that minute after the fact, serving the
// minute warm. The oracle baseline (paper Figure 6b's "ideal") is the
// canonical implementation: it holds the highest variant exactly during
// invoked minutes and never pays a cold start.
type HindsightEntrant interface {
	ShadowEntrant
	// HindsightKeepAlive is consulted on the first invocation batch of a
	// function-minute. A variant ≥ 0 is charged as kept alive for minute
	// m and the minute is served warm; NoVariant takes the cold start.
	HindsightKeepAlive(m, fn int) int
}
