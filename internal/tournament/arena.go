package tournament

import (
	"fmt"
	"sync"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// Config parameterizes an Arena.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment
	// Cost prices keep-alive memory for the live policy and every entrant;
	// the zero value selects the AWS-calibrated default.
	Cost cluster.CostModel
	// SeriesWindow is how many minutes the time-series store retains at
	// minute resolution (default DefaultSeriesWindow). The hourly rollup
	// ring holds the same number of buckets, extending the horizon 60×.
	SeriesWindow int
	// Entrants are the raced policies, in ranking/report order. Names must
	// be unique and non-empty.
	Entrants []ShadowEntrant
}

// famInfo caches the per-variant characteristics of one model family in
// the form the hot path needs: no catalog traversal per sample.
type famInfo struct {
	name       string
	byName     map[string]int
	memMB      []float64
	accPct     []float64
	costPerMin []float64
	highest    int
}

// fnShared is one function's shared (live-policy) state: the integer
// counters the report's Actual tally derives from, plus the open-minute
// invocation accumulator the barrier feed delivers to entrants. Keeping
// counts rather than running float sums makes reports independent of how
// the feed fragments a minute's invocations into samples.
type fnShared struct {
	lastInv    int  // minute of the last invocation, -1 before any
	seenMinute int  // minute of the last invocation sample, -1 before any
	retired    bool // slot deregistered; ledger closed, counters frozen

	invocations int
	actualCold  int
	downgrades  int
	openCnt     int // invocations folded into the open minute (barrier feed)

	aliveMin     []int // actual kept-alive minutes, by variant index (nil once retired)
	invByVariant []int // actual invocations, by variant index (nil once retired)

	// Folded per-variant sums, computed once at retirement — in the same
	// variant order the report uses, so reports stay bit-identical — after
	// which aliveMin and invByVariant are released. This is what bounds a
	// churning arena's steady-state heap: a departed slot keeps only
	// fixed-size state, not its per-variant ledgers.
	foldedKaMBMin float64
	foldedKaCost  float64
	foldedAccMin  float64
	foldedAccSum  float64
}

// entLedger is one entrant's account of one function.
type entLedger struct {
	aliveMin []int // kept-alive minutes, by variant index (nil once retired)
	served   []int // invocations served, by variant index (nil once retired)
	cold     int   // cold function-minutes

	// Folded at retirement, mirroring fnShared's discipline.
	foldedKaMBMin float64
	foldedKaCost  float64
	foldedAccMin  float64
	foldedAccSum  float64
}

// entrant is one raced policy plus its arena-side bookkeeping.
type entrant struct {
	impl ShadowEntrant
	hind HindsightEntrant // non-nil when impl has hindsight

	open []int       // variant held in the open minute per fn, NoVariant when none
	led  []entLedger // per-function account

	// Open-minute cluster-wide accumulators, written into the store when
	// the minute closes.
	minKaM  float64
	minCost float64
	minCold int
}

// Arena races N ShadowEntrants in-stream against the live policy. It
// implements telemetry.Observer and telemetry.LifecycleObserver; the
// attribution.Accountant is a thin adapter over one Arena carrying the
// three classic baselines as entrants 0..2.
//
// Accounting order is fixed and deterministic: at every minute boundary
// entrants are visited in registration order and functions in ascending
// slot order within each entrant, regardless of shard count or runtime
// serving mode. Per-entrant minute accumulators are independent, so this
// order also pins the float summation order per entrant.
type Arena struct {
	mu   sync.Mutex
	cost cluster.CostModel

	fams  []famInfo
	famOf []int
	fns   []fnShared
	ents  []entrant
	names []string

	cur   int // open minute, -1 before the first sample
	store *store

	// Open-minute shared accumulators (the live policy's account).
	minActualKaM, minActualCost float64
	minActualCold, minInv       int

	scratch []float64 // store-row staging, preallocated (zero-alloc pushes)
}

// New builds an Arena. The catalog and assignment must match the ones
// driving the policy under observation.
func New(cfg Config) (*Arena, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("tournament: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("tournament: empty assignment")
	}
	if cfg.Cost.USDPerGBSecond == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	if cfg.Cost.USDPerGBSecond < 0 {
		return nil, fmt.Errorf("tournament: negative cost rate %v", cfg.Cost.USDPerGBSecond)
	}
	if cfg.SeriesWindow <= 0 {
		cfg.SeriesWindow = DefaultSeriesWindow
	}
	names := make([]string, len(cfg.Entrants))
	seen := make(map[string]bool, len(cfg.Entrants))
	for i, e := range cfg.Entrants {
		if e == nil {
			return nil, fmt.Errorf("tournament: nil entrant at index %d", i)
		}
		n := e.Name()
		if n == "" {
			return nil, fmt.Errorf("tournament: entrant %d has an empty name", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("tournament: duplicate entrant %q", n)
		}
		seen[n] = true
		names[i] = n
	}
	a := &Arena{
		cost:    cfg.Cost,
		fams:    make([]famInfo, len(cfg.Catalog.Families)),
		famOf:   make([]int, len(cfg.Assignment)),
		fns:     make([]fnShared, len(cfg.Assignment)),
		ents:    make([]entrant, len(cfg.Entrants)),
		names:   names,
		cur:     -1,
		store:   newStore(cfg.SeriesWindow, len(cfg.Entrants)),
		scratch: make([]float64, rowWidth(len(cfg.Entrants))),
	}
	for i := range cfg.Catalog.Families {
		fam := &cfg.Catalog.Families[i]
		fi := famInfo{
			name:       fam.Name,
			byName:     make(map[string]int, fam.NumVariants()),
			memMB:      make([]float64, fam.NumVariants()),
			accPct:     make([]float64, fam.NumVariants()),
			costPerMin: make([]float64, fam.NumVariants()),
			highest:    fam.NumVariants() - 1,
		}
		for vi, v := range fam.Variants {
			fi.byName[v.Name] = vi
			fi.memMB[vi] = v.MemoryMB
			fi.accPct[vi] = v.AccuracyPct
			fi.costPerMin[vi] = cfg.Cost.KeepAliveUSDPerMinute(v.MemoryMB)
		}
		a.fams[i] = fi
	}
	for ei := range cfg.Entrants {
		e := &a.ents[ei]
		e.impl = cfg.Entrants[ei]
		e.hind, _ = cfg.Entrants[ei].(HindsightEntrant)
		e.open = make([]int, len(cfg.Assignment))
		e.led = make([]entLedger, len(cfg.Assignment))
	}
	for fn := range cfg.Assignment {
		fam := cfg.Assignment[fn]
		a.famOf[fn] = fam
		nv := cfg.Catalog.Families[fam].NumVariants()
		a.fns[fn] = fnShared{
			lastInv:      -1,
			seenMinute:   -1,
			aliveMin:     make([]int, nv),
			invByVariant: make([]int, nv),
		}
		for ei := range a.ents {
			e := &a.ents[ei]
			e.open[fn] = NoVariant
			e.led[fn] = entLedger{
				aliveMin: make([]int, nv),
				served:   make([]int, nv),
			}
			e.impl.Register(fn, fam, nv)
		}
	}
	return a, nil
}

// EntrantNames lists the entrant names in registration (report) order.
func (a *Arena) EntrantNames() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// EntrantIndex resolves an entrant name to its index.
func (a *Arena) EntrantIndex(name string) (int, bool) {
	for i, n := range a.names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Minute returns the open (still accumulating) minute, -1 before any
// sample.
func (a *Arena) Minute() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// LedgersReleased reports whether slot fn's per-variant ledgers — shared
// and per-entrant — have been folded and released (true only after
// retirement). It exists for memory-retention tests.
func (a *Arena) LedgersReleased(fn int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if fn < 0 || fn >= len(a.fns) {
		return false
	}
	f := &a.fns[fn]
	if !f.retired || f.aliveMin != nil || f.invByVariant != nil {
		return false
	}
	for ei := range a.ents {
		led := &a.ents[ei].led[fn]
		if led.aliveMin != nil || led.served != nil {
			return false
		}
	}
	return true
}

// roll advances the open minute to m, closing every minute in between.
// Minutes only move forward; a sample carrying an older minute (possible
// under live concurrent traffic, where an invocation's sample can be
// emitted after the tick advanced) is folded into the open minute.
func (a *Arena) roll(m int) {
	if a.cur < 0 {
		if m < 0 {
			m = 0
		}
		a.open(m)
		return
	}
	for a.cur < m {
		a.close()
		a.open(a.cur + 1)
	}
}

// open starts minute m: every entrant, in registration order, is asked
// which variant it holds warm for every live function in ascending slot
// order, and is charged keep-alive for each held variant.
func (a *Arena) open(m int) {
	a.cur = m
	for ei := range a.ents {
		e := &a.ents[ei]
		for fn := range a.fns {
			if a.fns[fn].retired {
				continue
			}
			fi := &a.fams[a.famOf[fn]]
			v := e.impl.KeepAlive(m, fn)
			if v > fi.highest {
				v = fi.highest
			}
			if v < 0 {
				v = NoVariant
			}
			e.open[fn] = v
			if v >= 0 {
				e.led[fn].aliveMin[v]++
				e.minKaM += fi.memMB[v]
				e.minCost += fi.costPerMin[v]
			}
		}
	}
}

// fillRow snapshots the open minute's cluster-wide accumulators into the
// preallocated scratch row in store layout — the values close() will push
// when the minute ends. Called with a.mu held.
func (a *Arena) fillRow() []float64 {
	row := a.scratch
	row[0] = a.minActualKaM
	row[1] = a.minActualCost
	row[2] = float64(a.minActualCold)
	row[3] = float64(a.minInv)
	for ei := range a.ents {
		e := &a.ents[ei]
		base := sharedChans + entrantChans*ei
		row[base] = e.minKaM
		row[base+1] = e.minCost
		row[base+2] = float64(e.minCold)
		row[base+3] = e.minCost - a.minActualCost
	}
	return row
}

// close finalizes the open minute: push the row into the time-series
// store, deliver the barrier feed — every entrant in registration order
// receives every live function's invocation count for the minute, in
// ascending slot order — and reset the per-minute accumulators.
func (a *Arena) close() {
	a.store.push(a.cur, a.fillRow())
	for ei := range a.ents {
		e := &a.ents[ei]
		for fn := range a.fns {
			if a.fns[fn].retired {
				continue
			}
			e.impl.Record(a.cur, fn, a.fns[fn].openCnt)
		}
		e.minKaM, e.minCost, e.minCold = 0, 0, 0
	}
	for fn := range a.fns {
		a.fns[fn].openCnt = 0
	}
	a.minActualKaM, a.minActualCost = 0, 0
	a.minActualCold, a.minInv = 0, 0
}

// ValueAt returns one cluster-wide channel's value at a single minute:
// the stored value for a closed minute still inside the series window, or
// the live accumulators when the minute is the currently open one — what
// close() would push if the minute ended now. Reports false for minutes
// never seen or already evicted from the ring, and for selectors the
// arena does not carry.
func (a *Arena) ValueAt(sel Selector, minute int) (float64, bool) {
	idx, ok := sel.index(len(a.ents))
	if !ok || minute < 0 {
		return 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if minute == a.cur {
		return a.fillRow()[idx], true
	}
	return a.store.at(idx, minute)
}

// Series returns the trailing time-series for one selector, oldest point
// first: the last window minutes at minute resolution, or — with hourly
// set — the last window hours from the rollup ring (gauges averaged,
// amounts summed; Point.Minute is the hour's first minute). The open
// minute is not included; it is still accumulating.
func (a *Arena) Series(sel Selector, window int, hourly bool) []Point {
	idx, ok := sel.index(len(a.ents))
	if !ok {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cur <= 0 {
		return nil
	}
	return a.store.series(idx, a.cur-1, window, hourly, nil)
}

// ObserveKeepAlive implements telemetry.Observer: the live policy's
// keep-alive decision for one function-minute.
func (a *Arena) ObserveKeepAlive(s telemetry.KeepAliveSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(s.Minute)
	if s.Function < 0 || s.Function >= len(a.fns) || a.fns[s.Function].retired {
		// Retired slots are pinned to NoVariant by every well-formed feed;
		// a contrary sample is foreign and is dropped (the ledger is gone).
		return
	}
	fi := &a.fams[a.famOf[s.Function]]
	if s.Variant < 0 || s.Variant >= len(fi.memMB) {
		return
	}
	a.fns[s.Function].aliveMin[s.Variant]++
	a.minActualKaM += fi.memMB[s.Variant]
	a.minActualCost += fi.costPerMin[s.Variant]
}

// ObserveInvocation implements telemetry.Observer: one batch of served
// invocations. Warm/cold attribution for every entrant happens here; the
// first sample of a function-minute marks the minute invoked (the cold
// slot for entrants holding nothing, the hindsight entrants' retroactive
// keep-alive charge). The batch also accumulates into the open minute's
// barrier count, delivered to entrants at close.
func (a *Arena) ObserveInvocation(s telemetry.InvocationSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(s.Minute)
	if s.Function < 0 || s.Function >= len(a.fns) || a.fns[s.Function].retired {
		// A retired function cannot be invoked; a contrary sample is a
		// foreign feed and is dropped (the per-variant ledger is gone).
		return
	}
	n := s.Count
	if n <= 0 {
		n = 1
	}
	f := &a.fns[s.Function]
	fi := &a.fams[a.famOf[s.Function]]
	first := f.seenMinute != s.Minute
	if first && s.Minute > f.seenMinute {
		f.seenMinute = s.Minute
	}
	f.invocations += n
	f.openCnt += n
	a.minInv += n
	vi, ok := fi.byName[s.Variant]
	if !ok {
		// A variant name outside the catalog (foreign feed); attribute to
		// the highest variant rather than dropping the invocations.
		vi = fi.highest
	}
	f.invByVariant[vi] += n
	if s.Cold {
		f.actualCold += n
		a.minActualCold += n
	}
	for ei := range a.ents {
		e := &a.ents[ei]
		if first {
			if e.hind != nil {
				// Hindsight: charged on the minute's first batch, never
				// cached — a stale-minute "first" charges again, exactly
				// like the pre-refactor oracle.
				hv := e.hind.HindsightKeepAlive(s.Minute, s.Function)
				if hv > fi.highest {
					hv = fi.highest
				}
				if hv >= 0 {
					e.led[s.Function].aliveMin[hv]++
					e.minKaM += fi.memMB[hv]
					e.minCost += fi.costPerMin[hv]
				} else {
					e.led[s.Function].cold++
					e.minCold++
				}
			} else if e.open[s.Function] < 0 {
				e.led[s.Function].cold++
				e.minCold++
			}
		}
		sv := e.open[s.Function]
		if sv < 0 {
			sv = fi.highest
		}
		e.led[s.Function].served[sv] += n
	}
	if s.Minute > f.lastInv {
		f.lastInv = s.Minute
	}
}

// ObserveMinute implements telemetry.Observer. The rollup's payload is
// recomputed internally (so simulated and live feeds, which price the
// minute in different float orders, cannot diverge); the sample only
// advances the clock.
func (a *Arena) ObserveMinute(s telemetry.MinuteSample) {
	a.mu.Lock()
	a.roll(s.Minute)
	a.mu.Unlock()
}

// ObserveSchedule implements telemetry.Observer (ignored: plans are
// intent, not cost).
func (a *Arena) ObserveSchedule(telemetry.ScheduleSample) {}

// ObservePeak implements telemetry.Observer (ignored: peak episodes are
// visible through the downgrade counts they cause).
func (a *Arena) ObservePeak(telemetry.PeakSample) {}

// ObserveDowngrade implements telemetry.Observer: counts Algorithm 2
// downgrades per function, the /top "downgrades" ranking.
func (a *Arena) ObserveDowngrade(s telemetry.DowngradeSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(s.Minute)
	if s.Function >= 0 && s.Function < len(a.fns) {
		a.fns[s.Function].downgrades++
	}
}

// ObserveRegister implements telemetry.LifecycleObserver: a new function
// slot opens a fresh shared ledger plus one ledger per entrant. The
// sample must carry the next dense slot index (lifecycle events are
// emitted in slot order by both the cluster engine and the live runtime);
// anything else is a foreign feed and is dropped rather than corrupting
// the ledgers.
//
// Deliberately, registration does NOT advance the clock: the engine
// stamps arrivals with the arrival minute t while the live runtime stamps
// them with the still-open previous minute, so rolling here would give
// the two feeds different first barriers for the new slot (the engine's
// would skip the close of t-1 and the minute-t KeepAlive consult). By
// appending at whatever minute is open and letting the next non-lifecycle
// sample roll, the slot's first Record and first KeepAlive land on the
// same minutes in both feeds — stateful entrants (the Q-learner's shared
// table) diverge permanently on any such off-by-one.
func (a *Arena) ObserveRegister(s telemetry.RegisterSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s.Family < 0 || s.Family >= len(a.fams) || s.Function != len(a.fns) {
		return
	}
	nv := len(a.fams[s.Family].memMB)
	a.famOf = append(a.famOf, s.Family)
	a.fns = append(a.fns, fnShared{
		lastInv:      -1,
		seenMinute:   -1,
		aliveMin:     make([]int, nv),
		invByVariant: make([]int, nv),
	})
	fn := len(a.fns) - 1
	for ei := range a.ents {
		e := &a.ents[ei]
		e.open = append(e.open, NoVariant)
		e.led = append(e.led, entLedger{
			aliveMin: make([]int, nv),
			served:   make([]int, nv),
		})
		e.impl.Register(fn, s.Family, nv)
	}
}

// ObserveDeregister implements telemetry.LifecycleObserver: the slot's
// ledgers — shared and per-entrant — are closed. Their counters stay in
// the report, but every entrant stops being scanned for the slot from the
// sample's minute on (a deleted function would not have been kept alive
// by any baseline either). Retirement is applied before the clock
// advances so the minute the sample names is the first one entrants skip.
// The per-variant ledgers are folded into the fixed-size retired sums (in
// variant order, matching the report's loop, so the floats are identical
// either way) and released: a retired slot cannot accumulate further
// kept-alive minutes or invocations, so the fold is final.
func (a *Arena) ObserveDeregister(s telemetry.DeregisterSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s.Function < 0 || s.Function >= len(a.fns) {
		return
	}
	f := &a.fns[s.Function]
	if !f.retired {
		f.retired = true
		fi := &a.fams[a.famOf[s.Function]]
		for v := 0; v < len(fi.memMB); v++ {
			m := float64(f.aliveMin[v])
			f.foldedKaMBMin += m * fi.memMB[v]
			f.foldedKaCost += m * fi.costPerMin[v]
			f.foldedAccMin += m * fi.accPct[v]
			f.foldedAccSum += float64(f.invByVariant[v]) * fi.accPct[v]
		}
		f.aliveMin, f.invByVariant = nil, nil
		for ei := range a.ents {
			e := &a.ents[ei]
			led := &e.led[s.Function]
			for v := 0; v < len(fi.memMB); v++ {
				m := float64(led.aliveMin[v])
				led.foldedKaMBMin += m * fi.memMB[v]
				led.foldedKaCost += m * fi.costPerMin[v]
				led.foldedAccMin += m * fi.accPct[v]
				led.foldedAccSum += float64(led.served[v]) * fi.accPct[v]
			}
			led.aliveMin, led.served = nil, nil
			e.open[s.Function] = NoVariant
			e.impl.Retire(s.Function)
		}
	}
	a.roll(s.Minute)
}

var (
	_ telemetry.Observer          = (*Arena)(nil)
	_ telemetry.LifecycleObserver = (*Arena)(nil)
)
