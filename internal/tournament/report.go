package tournament

// Snapshot() prices the arena. Every float in a Snapshot is computed here,
// at snapshot time, from the integer counters the stream accumulated — in
// a fixed order (variants within a function, functions within the total)
// — so two arenas that saw equivalent streams produce bit-identical
// snapshots no matter how the feeds fragmented or batched their samples.

// Tally is one policy's account of one function (or, in the totals row,
// the whole cluster). The attribution package aliases this type, so the
// field set and JSON tags are the /attribution wire format.
type Tally struct {
	Invocations int `json:"invocations"`
	WarmStarts  int `json:"warm_starts"`
	ColdStarts  int `json:"cold_starts"`
	// KeepAliveMBMinutes is the keep-alive footprint: MB kept alive summed
	// over minutes (divide by 1024 for the paper's GB-minutes).
	KeepAliveMBMinutes float64 `json:"keep_alive_mb_minutes"`
	KeepAliveCostUSD   float64 `json:"keep_alive_cost_usd"`
	// MeanAccuracyPct is the invocation-weighted mean accuracy delivered.
	MeanAccuracyPct float64 `json:"mean_accuracy_pct"`
	// AccuracyMinutesPct is the keep-alive quality delivered: kept-alive
	// variant-minutes weighted by each variant's accuracy (percent ×
	// minutes). Higher means more high-quality capacity was held warm.
	AccuracyMinutesPct float64 `json:"accuracy_minutes_pct"`
}

// Savings is the live policy's net position versus one entrant. Positive
// numbers favor the live policy.
type Savings struct {
	// KeepAliveCostUSD = entrant cost − actual cost.
	KeepAliveCostUSD float64 `json:"keep_alive_cost_usd"`
	// KeepAliveGBMinutes = (entrant − actual) footprint, in GB-minutes.
	KeepAliveGBMinutes float64 `json:"keep_alive_gb_minutes"`
	// ColdStartsAvoided = entrant cold starts − actual cold starts
	// (negative when the live policy incurred more).
	ColdStartsAvoided int `json:"cold_starts_avoided"`
	// AccuracyDeltaPct = actual mean accuracy − entrant mean accuracy.
	AccuracyDeltaPct float64 `json:"accuracy_delta_pct"`
}

// FunctionLedger is one function's full account: the live tally, one
// shadow tally per entrant (in entrant registration order), and the
// pairwise savings.
type FunctionLedger struct {
	Function     int     `json:"function"`
	Family       string  `json:"family"`
	Downgrades   int     `json:"downgrades"`
	ColdStartPct float64 `json:"cold_start_pct"` // live cold starts / invocations × 100

	Actual  Tally     `json:"actual"`
	Shadows []Tally   `json:"shadows"`
	Savings []Savings `json:"savings"`
}

// Snapshot is a full arena snapshot.
type Snapshot struct {
	// Minute is the open (still accumulating) minute, -1 before any sample.
	Minute int `json:"minute"`
	// Entrants names each Shadows/Savings column, in order.
	Entrants  []string         `json:"entrants"`
	Functions []FunctionLedger `json:"functions"`
	// Total aggregates every function (Function = -1, Family = "").
	Total FunctionLedger `json:"total"`
}

// Snapshot computes the priced snapshot. It allocates (the caller gets an
// independent copy); the hot observation path never calls it.
func (a *Arena) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := Snapshot{
		Minute:    a.cur,
		Entrants:  a.EntrantNames(),
		Functions: make([]FunctionLedger, len(a.fns)),
	}
	r.Total.Function = -1
	r.Total.Shadows = make([]Tally, len(a.ents))
	r.Total.Savings = make([]Savings, len(a.ents))
	for fn := range a.fns {
		fr := a.functionLedger(fn)
		r.Functions[fn] = fr
		addTally(&r.Total.Actual, fr.Actual)
		for ei := range a.ents {
			addTally(&r.Total.Shadows[ei], fr.Shadows[ei])
		}
		r.Total.Downgrades += fr.Downgrades
	}
	finishTally(&r.Total.Actual)
	for ei := range a.ents {
		finishTally(&r.Total.Shadows[ei])
	}
	finishFunctionLedger(&r.Total)
	return r
}

// functionLedger derives one function's account from its counters. Called
// with a.mu held.
func (a *Arena) functionLedger(fn int) FunctionLedger {
	f := &a.fns[fn]
	fi := &a.fams[a.famOf[fn]]
	fr := FunctionLedger{
		Function:   fn,
		Family:     fi.name,
		Downgrades: f.downgrades,
		Shadows:    make([]Tally, len(a.ents)),
		Savings:    make([]Savings, len(a.ents)),
	}

	// Live policy: kept-alive minutes per variant × that variant's memory,
	// cost, and accuracy; invocation accuracy weighted per variant. A
	// retired slot's ledgers were folded (in this same variant order) into
	// the fixed-size sums at deregistration, so the values — and the float
	// rounding — are identical either way.
	if f.retired && f.aliveMin == nil {
		fr.Actual.KeepAliveMBMinutes = f.foldedKaMBMin
		fr.Actual.KeepAliveCostUSD = f.foldedKaCost
		fr.Actual.AccuracyMinutesPct = f.foldedAccMin
		fr.Actual.MeanAccuracyPct = f.foldedAccSum
	} else {
		for v := 0; v < len(fi.memMB); v++ {
			m := float64(f.aliveMin[v])
			fr.Actual.KeepAliveMBMinutes += m * fi.memMB[v]
			fr.Actual.KeepAliveCostUSD += m * fi.costPerMin[v]
			fr.Actual.AccuracyMinutesPct += m * fi.accPct[v]
			fr.Actual.MeanAccuracyPct += float64(f.invByVariant[v]) * fi.accPct[v]
		}
	}
	fr.Actual.Invocations = f.invocations
	fr.Actual.ColdStarts = f.actualCold
	fr.Actual.WarmStarts = f.invocations - f.actualCold

	// Entrants: the same per-variant pricing over each entrant's ledger.
	// The packaged baselines only ever hold the highest variant, so their
	// sums have a single nonzero term and reproduce the pre-refactor
	// single-product shadow tallies bit-for-bit (adding +0.0 terms is
	// exact in IEEE 754).
	for ei := range a.ents {
		led := &a.ents[ei].led[fn]
		t := &fr.Shadows[ei]
		if f.retired && led.aliveMin == nil {
			t.KeepAliveMBMinutes = led.foldedKaMBMin
			t.KeepAliveCostUSD = led.foldedKaCost
			t.AccuracyMinutesPct = led.foldedAccMin
			t.MeanAccuracyPct = led.foldedAccSum
		} else {
			for v := 0; v < len(fi.memMB); v++ {
				m := float64(led.aliveMin[v])
				t.KeepAliveMBMinutes += m * fi.memMB[v]
				t.KeepAliveCostUSD += m * fi.costPerMin[v]
				t.AccuracyMinutesPct += m * fi.accPct[v]
				t.MeanAccuracyPct += float64(led.served[v]) * fi.accPct[v]
			}
		}
		t.Invocations = f.invocations
		t.ColdStarts = led.cold
		t.WarmStarts = f.invocations - led.cold
	}

	finishTally(&fr.Actual)
	for ei := range a.ents {
		finishTally(&fr.Shadows[ei])
	}
	finishFunctionLedger(&fr)
	return fr
}

// addTally folds src's additive fields into dst. src.MeanAccuracyPct is
// already a finished mean, so it is re-weighted by invocations back into
// sum form; finishTally on dst divides it out again.
func addTally(dst *Tally, src Tally) {
	dst.Invocations += src.Invocations
	dst.WarmStarts += src.WarmStarts
	dst.ColdStarts += src.ColdStarts
	dst.KeepAliveMBMinutes += src.KeepAliveMBMinutes
	dst.KeepAliveCostUSD += src.KeepAliveCostUSD
	dst.AccuracyMinutesPct += src.AccuracyMinutesPct
	dst.MeanAccuracyPct += src.MeanAccuracyPct * float64(src.Invocations)
}

// finishTally converts MeanAccuracyPct from its accumulated form into the
// invocation-weighted mean.
func finishTally(t *Tally) {
	if t.Invocations > 0 {
		t.MeanAccuracyPct /= float64(t.Invocations)
	}
}

// finishFunctionLedger derives the savings and rate fields from the
// finished tallies.
func finishFunctionLedger(fr *FunctionLedger) {
	if fr.Actual.Invocations > 0 {
		fr.ColdStartPct = 100 * float64(fr.Actual.ColdStarts) / float64(fr.Actual.Invocations)
	}
	for ei := range fr.Shadows {
		fr.Savings[ei] = ComputeSavings(fr.Actual, fr.Shadows[ei])
	}
}

// ComputeSavings derives the live policy's net position versus one
// entrant tally.
func ComputeSavings(actual, entrant Tally) Savings {
	return Savings{
		KeepAliveCostUSD:   entrant.KeepAliveCostUSD - actual.KeepAliveCostUSD,
		KeepAliveGBMinutes: (entrant.KeepAliveMBMinutes - actual.KeepAliveMBMinutes) / 1024,
		ColdStartsAvoided:  entrant.ColdStarts - actual.ColdStarts,
		AccuracyDeltaPct:   actual.MeanAccuracyPct - entrant.MeanAccuracyPct,
	}
}
