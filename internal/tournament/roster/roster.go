// Package roster names the packaged tournament entrants and builds them
// from flag-style name lists. It lives below the tournament package so
// that tournament itself stays free of policy/predict imports (predict
// reaches back into core, which would cycle through attribution in test
// binaries); everything that *selects* entrants — pulsed, experiments,
// benchmarks — goes through here.
package roster

import (
	"fmt"
	"strings"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/predict"
	"github.com/pulse-serverless/pulse/internal/tournament"
)

// Names lists the packaged tournament entrants selectable by name (the
// pulsed -tournament flag, cmd/experiments -exp tournament), in canonical
// order. The attribution baselines (fixed-high, never, oracle) are not on
// the roster: every accountant always carries them.
func Names() []string {
	return []string{"mpc", "hawkes", "qlearn"}
}

// Build resolves a list of roster names into entrant instances. It
// rejects an empty list, empty elements, duplicates, and unknown names,
// so flag parsing can surface a usage error naming the registered
// entrants. The catalog and cost model price the learners' actions.
func Build(names []string, cat *models.Catalog, cost cluster.CostModel) ([]tournament.ShadowEntrant, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("tournament: empty entrant list (registered entrants: %s)", strings.Join(Names(), ", "))
	}
	seen := make(map[string]bool, len(names))
	out := make([]tournament.ShadowEntrant, 0, len(names))
	for _, name := range names {
		if name == "" {
			return nil, fmt.Errorf("tournament: empty entrant name in list (registered entrants: %s)", strings.Join(Names(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("tournament: duplicate entrant %q", name)
		}
		seen[name] = true
		switch name {
		case "mpc":
			e, err := predict.NewMPCEntrant(name, predict.DefaultMPCConfig())
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		case "hawkes":
			out = append(out, policy.NewHawkesEntrant(name, policy.DefaultHawkesConfig()))
		case "qlearn":
			out = append(out, policy.NewQLearnEntrant(name, cat, cost, policy.DefaultQLearnConfig()))
		default:
			return nil, fmt.Errorf("tournament: unknown entrant %q (registered entrants: %s)", name, strings.Join(Names(), ", "))
		}
	}
	return out, nil
}

// ParseList splits a comma-separated -tournament flag value, trimming
// whitespace but preserving empty elements so Build can reject them.
func ParseList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
