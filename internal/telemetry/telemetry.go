package telemetry

import (
	"io"
	"strconv"
	"sync"
)

// Config parameterizes a Telemetry instance.
type Config struct {
	// EventCapacity bounds the decision-log ring (0 selects
	// DefaultEventCapacity).
	EventCapacity int
	// EventSink, when non-nil, receives every decision event as one JSON
	// line (an audit trail that outlives the ring).
	EventSink io.Writer
	// ServiceTimeBuckets overrides the service-time histogram buckets
	// (nil selects DefServiceTimeBuckets).
	ServiceTimeBuckets []float64
}

// Telemetry is the full observability pipeline: an Observer that feeds a
// labeled metric registry (per-function, per-variant series plus a
// service-time histogram) and the structured decision log. One instance is
// shared by the controller, the runtime, and the HTTP API.
type Telemetry struct {
	reg *Registry
	log *EventLog

	invocations *CounterVec   // {function,variant,start}
	service     *HistogramVec // {function}
	keepalive   *GaugeVec     // {function,variant}
	downgrades  *CounterVec   // {function}
	schedules   *CounterVec   // {function}
	peaks       *Counter
	peakActive  *Gauge
	registers   *Counter
	deregisters *Counter
	stepDur     *Histogram
	scanDur     *HistogramVec // {shard}
	flushDur    *Histogram

	mu        sync.Mutex
	invCache  map[invKey]*Counter
	svcCache  map[int]*Histogram
	kaCache   map[kaKey]*Gauge
	kaLast    map[int]kaKey // variant each function last kept alive
	dgCache   map[int]*Counter
	schCache  map[int]*Counter
	scanCache map[int]*Histogram
	fnLabel   map[int]string // strconv.Itoa cache
}

type invKey struct {
	fn      int
	variant string
	cold    bool
}

type kaKey struct {
	fn      int
	variant string
}

// New builds a Telemetry instance with its default metric families.
func New(cfg Config) (*Telemetry, error) {
	log, err := NewEventLog(cfg.EventCapacity, cfg.EventSink)
	if err != nil {
		return nil, err
	}
	t := &Telemetry{
		reg:       NewRegistry(),
		log:       log,
		invCache:  make(map[invKey]*Counter),
		svcCache:  make(map[int]*Histogram),
		kaCache:   make(map[kaKey]*Gauge),
		kaLast:    make(map[int]kaKey),
		dgCache:   make(map[int]*Counter),
		schCache:  make(map[int]*Counter),
		scanCache: make(map[int]*Histogram),
		fnLabel:   make(map[int]string),
	}
	if t.invocations, err = t.reg.NewCounterVec("pulse_function_invocations_total",
		"Invocations served, by function, model variant, and start kind.",
		"function", "variant", "start"); err != nil {
		return nil, err
	}
	if t.service, err = t.reg.NewHistogramVec("pulse_function_service_seconds",
		"Per-invocation service time (cold start included on cold starts).",
		cfg.ServiceTimeBuckets, "function"); err != nil {
		return nil, err
	}
	if t.keepalive, err = t.reg.NewGaugeVec("pulse_function_keepalive_mb",
		"Memory kept alive this minute, by function and variant (0 when not kept).",
		"function", "variant"); err != nil {
		return nil, err
	}
	if t.downgrades, err = t.reg.NewCounterVec("pulse_downgrades_total",
		"Algorithm 2 downgrades applied during peaks, by function.",
		"function"); err != nil {
		return nil, err
	}
	if t.schedules, err = t.reg.NewCounterVec("pulse_schedules_total",
		"Function-centric keep-alive plans committed, by function.",
		"function"); err != nil {
		return nil, err
	}
	peaksVec, err := t.reg.NewCounterVec("pulse_peaks_total",
		"Algorithm 1 peak episodes entered.")
	if err != nil {
		return nil, err
	}
	t.peaks = peaksVec.With()
	activeVec, err := t.reg.NewGaugeVec("pulse_peak_active",
		"1 while a keep-alive memory peak episode is being flattened.")
	if err != nil {
		return nil, err
	}
	t.peakActive = activeVec.With()
	regVec, err := t.reg.NewCounterVec("pulse_function_registrations_total",
		"Functions registered online since start.")
	if err != nil {
		return nil, err
	}
	t.registers = regVec.With()
	deregVec, err := t.reg.NewCounterVec("pulse_function_deregistrations_total",
		"Functions deregistered online since start.")
	if err != nil {
		return nil, err
	}
	t.deregisters = deregVec.With()
	stepVec, err := t.reg.NewHistogramVec("pulse_step_duration_seconds",
		"Wall time the runtime minute barrier is held per Step.",
		DefEngineDurationBuckets())
	if err != nil {
		return nil, err
	}
	t.stepDur = stepVec.With()
	if t.scanDur, err = t.reg.NewHistogramVec("pulse_shard_scan_duration_seconds",
		"Per-minute controller scan duration, by shard (-1 = serial scan).",
		DefEngineDurationBuckets(), "shard"); err != nil {
		return nil, err
	}
	flushVec, err := t.reg.NewHistogramVec("pulse_observer_flush_duration_seconds",
		"Duration of the post-scan observer flush replaying sharded samples in serial order.",
		DefEngineDurationBuckets())
	if err != nil {
		return nil, err
	}
	t.flushDur = flushVec.With()
	return t, nil
}

// Registry exposes the metric registry (for the HTTP /metrics endpoint and
// for callers registering additional series).
func (t *Telemetry) Registry() *Registry { return t.reg }

// Events exposes the decision log (for the HTTP /events endpoint).
func (t *Telemetry) Events() *EventLog { return t.log }

func (t *Telemetry) fn(n int) string {
	if s, ok := t.fnLabel[n]; ok {
		return s
	}
	s := strconv.Itoa(n)
	t.fnLabel[n] = s
	return s
}

// ObserveInvocation implements Observer: it bumps the labeled invocation
// counter and feeds the function's service-time histogram.
func (t *Telemetry) ObserveInvocation(s InvocationSample) {
	n := s.Count
	if n <= 0 {
		n = 1
	}
	k := invKey{fn: s.Function, variant: s.Variant, cold: s.Cold}
	t.mu.Lock()
	c := t.invCache[k]
	if c == nil {
		start := "warm"
		if s.Cold {
			start = "cold"
		}
		c = t.invocations.With(t.fn(s.Function), s.Variant, start)
		t.invCache[k] = c
	}
	h := t.svcCache[s.Function]
	if h == nil {
		h = t.service.With(t.fn(s.Function))
		t.svcCache[s.Function] = h
	}
	t.mu.Unlock()
	c.Add(float64(n))
	h.ObserveN(s.ServiceSec, uint64(n))
}

// ObserveKeepAlive implements Observer: it maintains the per-function,
// per-variant keep-alive gauge, zeroing the series of a variant the
// function no longer keeps so the exposition never shows stale memory.
func (t *Telemetry) ObserveKeepAlive(s KeepAliveSample) {
	t.mu.Lock()
	prev, had := t.kaLast[s.Function]
	cur := kaKey{fn: s.Function, variant: s.VariantName}
	var prevGauge, curGauge *Gauge
	if had && prev != cur {
		prevGauge = t.kaCache[prev]
	}
	if s.Variant >= 0 {
		curGauge = t.kaCache[cur]
		if curGauge == nil {
			curGauge = t.keepalive.With(t.fn(s.Function), s.VariantName)
			t.kaCache[cur] = curGauge
		}
		t.kaLast[s.Function] = cur
	} else {
		delete(t.kaLast, s.Function)
	}
	t.mu.Unlock()
	if prevGauge != nil {
		prevGauge.Set(0)
	}
	if curGauge != nil {
		curGauge.Set(s.MemMB)
	}
}

// ObserveMinute implements Observer: the rollup goes to the decision log.
func (t *Telemetry) ObserveMinute(s MinuteSample) {
	t.log.Append(Event{
		Minute:   s.Minute,
		Kind:     KindMinute,
		Function: -1,
		KaMMB:    s.KeepAliveMB,
		CostUSD:  s.CostUSD,
	})
}

// ObserveSchedule implements Observer: it counts the plan and logs it with
// the probabilities that chose each variant.
func (t *Telemetry) ObserveSchedule(s ScheduleSample) {
	t.mu.Lock()
	c := t.schCache[s.Function]
	if c == nil {
		c = t.schedules.With(t.fn(s.Function))
		t.schCache[s.Function] = c
	}
	t.mu.Unlock()
	c.Inc()
	t.log.Append(Event{
		Minute:   s.Minute,
		Kind:     KindSchedule,
		Function: s.Function,
		Plan:     append([]int(nil), s.Plan...),
		Probs:    append([]float64(nil), s.Probs...),
	})
}

// ObservePeak implements Observer: episode transitions toggle the active
// gauge, count episodes, and enter the decision log.
func (t *Telemetry) ObservePeak(s PeakSample) {
	kind := KindPeakExit
	if s.Enter {
		kind = KindPeakEnter
		t.peaks.Inc()
		t.peakActive.Set(1)
	} else {
		t.peakActive.Set(0)
	}
	t.log.Append(Event{
		Minute:      s.Minute,
		Kind:        kind,
		Function:    -1,
		KaMMB:       s.KeepAliveMB,
		PriorKaMMB:  s.PriorMB,
		TargetKaMMB: s.TargetMB,
		Downgrades:  s.Downgrades,
	})
}

// ObserveDowngrade implements Observer: every Algorithm 2 downgrade is
// counted per function and logged with its full utility breakdown.
func (t *Telemetry) ObserveDowngrade(s DowngradeSample) {
	t.mu.Lock()
	c := t.dgCache[s.Function]
	if c == nil {
		c = t.downgrades.With(t.fn(s.Function))
		t.dgCache[s.Function] = c
	}
	t.mu.Unlock()
	c.Inc()
	t.log.Append(Event{
		Minute:      s.Minute,
		Kind:        KindDowngrade,
		Function:    s.Function,
		FromVariant: s.FromVariant,
		ToVariant:   s.ToVariant,
		Ai:          s.Ai,
		Pr:          s.Pr,
		Ip:          s.Ip,
		Uv:          s.Uv(),
	})
}

var _ Observer = (*Telemetry)(nil)
