package telemetry

import "strconv"

// Self-observability: the system watching its own hot paths. Step, scan,
// and flush samples describe what the *engine* cost — minute-barrier
// latency, per-shard scan duration, observer-flush duration — rather than
// what the policy decided. Like lifecycle events they are an optional
// observer extension: producers emit them behind their minute barriers
// (never per invocation), type-asserting at the emission site, so existing
// observers keep compiling and the invocation fast path is untouched.
//
// Wall-clock durations differ run to run and mode to mode, so the
// differential Recorder deliberately does NOT implement SelfObserver —
// its retained streams stay deterministic and DeepEqual-comparable.

// StepSample reports one runtime minute-barrier advance. Seconds is the
// wall time the barrier was held; SeqlockRetries and StripeContention are
// the *deltas* accumulated on the invocation path since the previous step
// (zero in serial mode, where neither mechanism exists).
type StepSample struct {
	Minute           int
	Seconds          float64
	SeqlockRetries   uint64
	StripeContention uint64
}

// ScanSample reports one shard's slice of a per-minute controller scan
// (gather or record). Shard is -1 for a serial (unsharded) scan; Functions
// is the number of slots the shard touched.
type ScanSample struct {
	Minute    int
	Shard     int
	Functions int
	Seconds   float64
}

// FlushSample reports the duration of one observer flush — the post-scan
// drain that replays sharded workers' buffered samples in serial order.
type FlushSample struct {
	Minute  int
	Seconds float64
}

// SelfObserver is the optional extension an Observer can implement to
// receive engine self-observability samples.
type SelfObserver interface {
	ObserveStep(StepSample)
	ObserveScan(ScanSample)
	ObserveFlush(FlushSample)
}

// WantsSelf reports whether obs (or, for a fan-out, any of its children)
// actually consumes self samples. Producers use it to skip the clock reads
// that feed duration samples when nobody is listening.
func WantsSelf(obs Observer) bool {
	switch o := obs.(type) {
	case nil:
		return false
	case Nop:
		return false
	case multi:
		for _, c := range o {
			if WantsSelf(c) {
				return true
			}
		}
		return false
	}
	_, ok := obs.(SelfObserver)
	return ok
}

// ObserveStep forwards a step sample to obs if (and only if) it implements
// SelfObserver — the nil-safe emission helper producers use.
func ObserveStep(obs Observer, s StepSample) {
	if so, ok := obs.(SelfObserver); ok {
		so.ObserveStep(s)
	}
}

// ObserveScan forwards a scan sample like ObserveStep.
func ObserveScan(obs Observer, s ScanSample) {
	if so, ok := obs.(SelfObserver); ok {
		so.ObserveScan(s)
	}
}

// ObserveFlush forwards a flush sample like ObserveStep.
func ObserveFlush(obs Observer, s FlushSample) {
	if so, ok := obs.(SelfObserver); ok {
		so.ObserveFlush(s)
	}
}

// ObserveStep implements SelfObserver.
func (Nop) ObserveStep(StepSample) {}

// ObserveScan implements SelfObserver.
func (Nop) ObserveScan(ScanSample) {}

// ObserveFlush implements SelfObserver.
func (Nop) ObserveFlush(FlushSample) {}

// ObserveStep implements SelfObserver: the fan-out forwards to the
// children that understand self samples and skips the rest.
func (m multi) ObserveStep(s StepSample) {
	for _, o := range m {
		if so, ok := o.(SelfObserver); ok {
			so.ObserveStep(s)
		}
	}
}

// ObserveScan implements SelfObserver.
func (m multi) ObserveScan(s ScanSample) {
	for _, o := range m {
		if so, ok := o.(SelfObserver); ok {
			so.ObserveScan(s)
		}
	}
}

// ObserveFlush implements SelfObserver.
func (m multi) ObserveFlush(s FlushSample) {
	for _, o := range m {
		if so, ok := o.(SelfObserver); ok {
			so.ObserveFlush(s)
		}
	}
}

// ObserveStep implements SelfObserver: the barrier-hold duration feeds the
// step-duration histogram.
func (t *Telemetry) ObserveStep(s StepSample) {
	t.stepDur.Observe(s.Seconds)
}

// ObserveScan implements SelfObserver: scan duration feeds the per-shard
// scan histogram (shard "-1" is the serial scan).
func (t *Telemetry) ObserveScan(s ScanSample) {
	t.mu.Lock()
	h := t.scanCache[s.Shard]
	if h == nil {
		h = t.scanDur.With(strconv.Itoa(s.Shard))
		t.scanCache[s.Shard] = h
	}
	t.mu.Unlock()
	h.Observe(s.Seconds)
}

// ObserveFlush implements SelfObserver.
func (t *Telemetry) ObserveFlush(s FlushSample) {
	t.flushDur.Observe(s.Seconds)
}

// DefEngineDurationBuckets spans engine hot-path durations: sub-microsecond
// idle scans up to second-long million-slot sweeps.
func DefEngineDurationBuckets() []float64 {
	return []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1}
}

var (
	_ SelfObserver = Nop{}
	_ SelfObserver = (*Telemetry)(nil)
	_ SelfObserver = multi(nil)
)
