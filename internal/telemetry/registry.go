// Package telemetry is the observability layer of the PULSE reproduction:
// a zero-dependency labeled metric registry rendered in the Prometheus text
// exposition format, a structured controller-decision event log (ring
// buffer plus optional JSONL sink), and the nil-safe Observer interface
// through which the core optimizers, the cluster engine, and the live
// runtime report what they decided and why.
//
// Everything is concurrency-safe. Metric write paths are lock-free
// (atomic CAS on float bits) so instrumentation can sit on invocation hot
// paths; the Nop observer adds zero allocations, so uninstrumented
// deployments pay nothing.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType enumerates the exposition TYPE of a metric family.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Families render in registration
// order; series within a family render in sorted label order, so output is
// deterministic and diffable.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and many series.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64      // histogram upper bounds, strictly increasing, +Inf implicit
	fn      func() float64 // non-nil for scrape-time func metrics (unlabeled)

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label combination's state. Counter and gauge values live in
// valBits as IEEE 754 bits so updates are a single atomic CAS; histograms
// additionally carry per-bucket counts.
type series struct {
	labelValues []string
	valBits     uint64   // counter/gauge value; histogram sum
	count       uint64   // histogram observation count
	bucketN     []uint64 // histogram per-bucket (non-cumulative) counts
}

func (s *series) add(v float64) {
	for {
		old := atomic.LoadUint64(&s.valBits)
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&s.valBits, old, upd) {
			return
		}
	}
}

func (s *series) set(v float64) { atomic.StoreUint64(&s.valBits, math.Float64bits(v)) }

func (s *series) value() float64 { return math.Float64frombits(atomic.LoadUint64(&s.valBits)) }

// validName matches the Prometheus metric-name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabel matches the Prometheus label-name grammar (no colons).
func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64, fn func() float64) (*family, error) {
	if !validName(name) {
		return nil, fmt.Errorf("telemetry: invalid metric name %q", name)
	}
	for _, l := range labels {
		if !validLabel(l) {
			return nil, fmt.Errorf("telemetry: metric %s: invalid label name %q", name, l)
		}
		if typ == histogramType && l == "le" {
			return nil, fmt.Errorf("telemetry: metric %s: label %q is reserved for histogram buckets", name, l)
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			return nil, fmt.Errorf("telemetry: metric %s: buckets not strictly increasing at %v", name, buckets[i])
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("telemetry: metric %q already registered", name)
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		fn:      fn,
		series:  make(map[string]*series),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f, nil
}

// labelSep joins label values into a map key. 0xff cannot appear in UTF-8
// text at a value boundary ambiguity: values containing it still produce
// distinct keys because the count of separators is fixed by the schema.
const labelSep = "\xff"

// with resolves (creating on first use) the series for the given label
// values. It panics on arity mismatch — a programmer error, like indexing
// out of range.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s called with %d label values, schema has %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.typ == histogramType {
		s.bucketN = make([]uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing series handle.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.add(1) }

// Add adds v, which must not be negative (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: counter decreased by %v", v))
	}
	c.s.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.s.value() }

// Gauge is a series handle for a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.s.set(v) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { g.s.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.s.value() }

// Histogram is a fixed-bucket distribution series handle.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one observation of v.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v in one step — the batch form the
// cluster engine uses when a minute delivers many identical invocations.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	for i, ub := range h.buckets {
		if v <= ub {
			atomic.AddUint64(&h.s.bucketN[i], n)
			break
		}
	}
	atomic.AddUint64(&h.s.count, n)
	h.s.add(v * float64(n))
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.s.value() }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.s.count) }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). It panics when the number of values does not match the schema.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.with(labelValues)}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.with(labelValues)}
}

// HistogramVec is a labeled histogram family with shared buckets.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{s: v.f.with(labelValues), buckets: v.f.buckets}
}

// NewCounterVec registers a counter family with the given label schema.
// Zero label names make an unlabeled family addressed via With().
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) (*CounterVec, error) {
	f, err := r.register(name, help, counterType, labelNames, nil, nil)
	if err != nil {
		return nil, err
	}
	return &CounterVec{f: f}, nil
}

// NewGaugeVec registers a gauge family with the given label schema.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) (*GaugeVec, error) {
	f, err := r.register(name, help, gaugeType, labelNames, nil, nil)
	if err != nil {
		return nil, err
	}
	return &GaugeVec{f: f}, nil
}

// DefServiceTimeBuckets spans the catalog's service times: milliseconds of
// warm small-model execution up to tens of seconds of multi-GB cold starts.
func DefServiceTimeBuckets() []float64 {
	return []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// NewHistogramVec registers a histogram family. Buckets are upper bounds in
// strictly increasing order; the +Inf bucket is implicit. nil buckets
// select DefServiceTimeBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) (*HistogramVec, error) {
	if buckets == nil {
		buckets = DefServiceTimeBuckets()
	}
	f, err := r.register(name, help, histogramType, labelNames, buckets, nil)
	if err != nil {
		return nil, err
	}
	return &HistogramVec{f: f}, nil
}

// NewCounterFunc registers an unlabeled counter whose value is read from fn
// at scrape time — the bridge for counters owned elsewhere (runtime stats).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("telemetry: metric %s: nil value func", name)
	}
	_, err := r.register(name, help, counterType, nil, nil, fn)
	return err
}

// NewGaugeFunc registers an unlabeled gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("telemetry: metric %s: nil value func", name)
	}
	_, err := r.register(name, help, gaugeType, nil, nil, fn)
	return err
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value. Prometheus accepts Go's shortest
// round-trip float syntax; infinities spell +Inf/-Inf.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"}; an empty schema renders nothing.
func writeLabels(b *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		if f.fn != nil {
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(formatValue(f.fn()))
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if f.typ == histogramType {
				var cum uint64
				for i, ub := range f.buckets {
					cum += atomic.LoadUint64(&s.bucketN[i])
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, f.labels, s.labelValues, "le", formatValue(ub))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, f.labels, s.labelValues, "le", "+Inf")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(atomic.LoadUint64(&s.count), 10))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, f.labels, s.labelValues, "", "")
				b.WriteByte(' ')
				b.WriteString(formatValue(s.value()))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, f.labels, s.labelValues, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(atomic.LoadUint64(&s.count), 10))
				b.WriteByte('\n')
				continue
			}
			b.WriteString(f.name)
			writeLabels(&b, f.labels, s.labelValues, "", "")
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value()))
			b.WriteByte('\n')
		}
		f.mu.RUnlock()
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
