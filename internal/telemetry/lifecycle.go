package telemetry

// Function lifecycle instrumentation. Registration and deregistration are
// control-plane events, not hot-path samples: they happen behind the
// producers' minute barriers (the runtime's exclusive lock, the engine's
// per-minute lifecycle step), orders of magnitude less often than
// invocations. They are therefore an *optional* observer extension rather
// than part of Observer itself — existing observers keep compiling, and
// producers type-assert at the emission site.

// RegisterSample reports that a function slot came into existence. Function
// is the dense slot index the rest of the sample stream will use; Family is
// the model-family index the function was assigned.
type RegisterSample struct {
	Minute   int
	Function int
	Name     string
	Family   int
}

// DeregisterSample reports that a function slot was retired. Minute is the
// last minute the function lived (the first minute with the slot absent is
// Minute+1) — both the cluster engine and the live runtime emit it that
// way, so minute-ledger observers account departures identically. The slot
// is never reused; later samples never reference it again.
type DeregisterSample struct {
	Minute   int
	Function int
	Name     string
}

// LifecycleObserver is the optional extension an Observer can implement to
// follow online function registration. Producers deliver lifecycle samples
// under the same barrier that serializes keep-alive and minute samples, so
// their order relative to those streams is deterministic.
type LifecycleObserver interface {
	ObserveRegister(RegisterSample)
	ObserveDeregister(DeregisterSample)
}

// ObserveLifecycle forwards a registration to obs if (and only if) it
// implements LifecycleObserver — the nil-safe emission helper producers use.
func ObserveLifecycle(obs Observer, s RegisterSample) {
	if lo, ok := obs.(LifecycleObserver); ok {
		lo.ObserveRegister(s)
	}
}

// ObserveLifecycleEnd forwards a deregistration like ObserveLifecycle.
func ObserveLifecycleEnd(obs Observer, s DeregisterSample) {
	if lo, ok := obs.(LifecycleObserver); ok {
		lo.ObserveDeregister(s)
	}
}

// ObserveRegister implements LifecycleObserver.
func (Nop) ObserveRegister(RegisterSample) {}

// ObserveDeregister implements LifecycleObserver.
func (Nop) ObserveDeregister(DeregisterSample) {}

// ObserveRegister implements LifecycleObserver.
func (r *Recorder) ObserveRegister(s RegisterSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Registers = append(r.Registers, s)
}

// ObserveDeregister implements LifecycleObserver.
func (r *Recorder) ObserveDeregister(s DeregisterSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Deregisters = append(r.Deregisters, s)
}

// ObserveRegister implements LifecycleObserver: the fan-out forwards to the
// children that understand lifecycle events and skips the rest.
func (m multi) ObserveRegister(s RegisterSample) {
	for _, o := range m {
		if lo, ok := o.(LifecycleObserver); ok {
			lo.ObserveRegister(s)
		}
	}
}

// ObserveDeregister implements LifecycleObserver.
func (m multi) ObserveDeregister(s DeregisterSample) {
	for _, o := range m {
		if lo, ok := o.(LifecycleObserver); ok {
			lo.ObserveDeregister(s)
		}
	}
}

// ObserveRegister implements LifecycleObserver: registrations are counted
// and logged with the function's name.
func (t *Telemetry) ObserveRegister(s RegisterSample) {
	t.registers.Inc()
	t.log.Append(Event{
		Minute:   s.Minute,
		Kind:     KindRegister,
		Function: s.Function,
		Name:     s.Name,
	})
}

// ObserveDeregister implements LifecycleObserver: the retired slot's
// keep-alive gauge is zeroed so the exposition never shows memory for a
// function that no longer exists.
func (t *Telemetry) ObserveDeregister(s DeregisterSample) {
	t.deregisters.Inc()
	t.mu.Lock()
	var prevGauge *Gauge
	if prev, had := t.kaLast[s.Function]; had {
		prevGauge = t.kaCache[prev]
		delete(t.kaLast, s.Function)
	}
	t.mu.Unlock()
	if prevGauge != nil {
		prevGauge.Set(0)
	}
	t.log.Append(Event{
		Minute:   s.Minute,
		Kind:     KindDeregister,
		Function: s.Function,
		Name:     s.Name,
	})
}

var (
	_ LifecycleObserver = Nop{}
	_ LifecycleObserver = (*Recorder)(nil)
	_ LifecycleObserver = (*Telemetry)(nil)
	_ LifecycleObserver = multi(nil)
)
