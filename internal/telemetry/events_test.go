package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestEventLogValidation(t *testing.T) {
	if _, err := NewEventLog(-1, nil); err == nil {
		t.Error("negative capacity accepted")
	}
	l, err := NewEventLog(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.buf); got != DefaultEventCapacity {
		t.Errorf("default capacity = %d, want %d", got, DefaultEventCapacity)
	}
}

func TestEventLogRingAndSeq(t *testing.T) {
	l, err := NewEventLog(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 5; m++ {
		seq := l.Append(Event{Minute: m, Kind: KindMinute, Function: -1})
		if seq != uint64(m) {
			t.Errorf("seq = %d, want %d", seq, m)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5", l.Total())
	}
	got := l.Select(Filter{})
	if len(got) != 3 {
		t.Fatalf("buffered = %d, want 3 (ring evicts oldest)", len(got))
	}
	for i, e := range got {
		if e.Minute != i+2 || e.Seq != uint64(i+2) {
			t.Errorf("event %d = minute %d seq %d, want oldest evicted", i, e.Minute, e.Seq)
		}
	}
}

func TestEventLogSelectFilters(t *testing.T) {
	l, err := NewEventLog(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Event{Minute: 1, Kind: KindSchedule, Function: 0})
	l.Append(Event{Minute: 1, Kind: KindSchedule, Function: 1})
	l.Append(Event{Minute: 2, Kind: KindPeakEnter, Function: -1})
	l.Append(Event{Minute: 2, Kind: KindDowngrade, Function: 0, Ai: 1, Pr: 0.5, Ip: 0.25, Uv: 1.75})
	l.Append(Event{Minute: 3, Kind: KindPeakExit, Function: -1})

	if got := l.Select(Filter{Kind: KindDowngrade}); len(got) != 1 || got[0].Uv != 1.75 {
		t.Errorf("kind filter = %+v", got)
	}
	if got := l.Select(Filter{HasFunction: true, Function: 0}); len(got) != 2 {
		t.Errorf("function filter = %d events, want 2", len(got))
	}
	if got := l.Select(Filter{SinceSeq: 3}); len(got) != 2 {
		t.Errorf("since filter = %d events, want 2", len(got))
	}
	if got := l.Select(Filter{Limit: 2}); len(got) != 2 || got[1].Kind != KindPeakExit {
		t.Errorf("limit filter should keep the most recent: %+v", got)
	}
	if got := l.Select(Filter{Kind: "nope"}); len(got) != 0 {
		t.Errorf("unmatched kind returned %d events", len(got))
	}
}

func TestEventLogJSONLSink(t *testing.T) {
	var sink strings.Builder
	l, err := NewEventLog(2, &sink)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		l.Append(Event{Minute: m, Kind: KindMinute, Function: -1, KaMMB: float64(m) * 100})
	}
	// The sink keeps every event even though the ring holds only 2.
	sc := bufio.NewScanner(strings.NewReader(sink.String()))
	var n int
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", n, err)
		}
		if e.Minute != n || e.KaMMB != float64(n)*100 {
			t.Errorf("line %d = %+v", n, e)
		}
		n++
	}
	if n != 4 {
		t.Errorf("sink lines = %d, want 4", n)
	}
	if l.SinkErr() != nil {
		t.Errorf("sink error = %v", l.SinkErr())
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestEventLogSinkErrorStopsSinkOnly(t *testing.T) {
	boom := errors.New("disk full")
	l, err := NewEventLog(4, failWriter{err: boom})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Event{Kind: KindMinute, Function: -1})
	l.Append(Event{Kind: KindMinute, Function: -1})
	if !errors.Is(l.SinkErr(), boom) {
		t.Errorf("sink err = %v, want %v", l.SinkErr(), boom)
	}
	// The ring keeps working after the sink dies.
	if got := l.Select(Filter{}); len(got) != 2 {
		t.Errorf("ring has %d events, want 2", len(got))
	}
}

func TestZeroCapacityLogIsSinkOnly(t *testing.T) {
	// Capacity 0 means "default", so build a 1-capacity ring and shrink
	// semantics are covered by the ring test; here check Filter zero value
	// matches everything including function -1 events.
	l, err := NewEventLog(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Event{Kind: KindPeakEnter, Function: -1})
	if got := l.Select(Filter{}); len(got) != 1 {
		t.Errorf("zero filter = %d events, want 1", len(got))
	}
}

// Taps see every appended event, stamped, in order, after buffering — and
// a nil tap is ignored rather than registered.
func TestEventLogTap(t *testing.T) {
	l, err := NewEventLog(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tapped []Event
	l.Tap(func(e Event) { tapped = append(tapped, e) })
	l.Tap(nil) // must not panic on a later Append
	var second int
	l.Tap(func(Event) { second++ })

	for m := 0; m < 4; m++ {
		l.Append(Event{Minute: m, Kind: KindMinute, Function: -1})
	}
	if len(tapped) != 4 || second != 4 {
		t.Fatalf("taps saw %d and %d events, want 4 each", len(tapped), second)
	}
	for i, e := range tapped {
		if e.Minute != i || e.Seq != uint64(i) {
			t.Errorf("tap event %d = minute %d seq %d", i, e.Minute, e.Seq)
		}
	}
	// The tap fires even for events the 2-slot ring has already evicted;
	// the ring holds only the newest two, the tap saw all four.
	if evs := l.Select(Filter{}); len(evs) != 2 {
		t.Errorf("ring holds %d events, want 2", len(evs))
	}
}
