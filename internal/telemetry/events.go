package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event kinds recorded by the decision log. Every controller decision the
// PULSE policy takes is one of these, so an operator (or a test) can replay
// exactly why the system looked the way it did at any minute.
const (
	// KindSchedule is one function-centric plan: after an invocation, the
	// individual optimizer commits a variant per minute of the keep-alive
	// window.
	KindSchedule = "schedule"
	// KindPeakEnter marks the first minute of an Algorithm 1 peak episode.
	KindPeakEnter = "peak_enter"
	// KindPeakExit marks the first non-peak minute after an episode.
	KindPeakExit = "peak_exit"
	// KindDowngrade is one Algorithm 2 downgrade, with the full utility
	// breakdown Uv = Ai + Pr + Ip that selected the victim.
	KindDowngrade = "downgrade"
	// KindMinute is the platform's per-minute keep-alive rollup.
	KindMinute = "minute"
	// KindRegister records a function coming into existence online.
	KindRegister = "register"
	// KindDeregister records a function slot being retired online.
	KindDeregister = "deregister"
)

// Event is one decision-log record. The struct is flat so the ring buffer
// stores values without per-event allocation; which fields are meaningful
// depends on Kind. Function is -1 for events not scoped to a function.
type Event struct {
	Seq    uint64 `json:"seq"`
	Minute int    `json:"minute"`
	Kind   string `json:"kind"`

	Function int `json:"function"`

	// Name is the function's registered name (lifecycle events only).
	Name string `json:"name,omitempty"`

	// Schedule fields: the planned variant per offset minute 1..window and
	// the invocation probability that chose it.
	Plan  []int     `json:"plan,omitempty"`
	Probs []float64 `json:"probs,omitempty"`

	// Downgrade fields (Algorithm 2).
	FromVariant int     `json:"fromVariant"`
	ToVariant   int     `json:"toVariant"`
	Ai          float64 `json:"ai"`
	Pr          float64 `json:"pr"`
	Ip          float64 `json:"ip"`
	Uv          float64 `json:"uv"`

	// Peak and minute fields (Algorithm 1 / platform accounting).
	KaMMB       float64 `json:"kaMMB"`
	PriorKaMMB  float64 `json:"priorKaMMB"`
	TargetKaMMB float64 `json:"targetKaMMB"`
	CostUSD     float64 `json:"costUSD"`
	Downgrades  int     `json:"downgrades"`
}

// EventLog is a bounded in-memory ring of decision events with an optional
// JSONL sink: every appended event is also encoded as one JSON line to the
// sink, so a long-running daemon can keep a full audit trail on disk while
// the ring serves recent history over HTTP.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	start   int    // index of the oldest buffered event
	n       int    // buffered events (≤ cap(buf))
	seq     uint64 // total events ever appended
	sink    io.Writer
	sinkErr error
	taps    []func(Event)
}

// DefaultEventCapacity bounds the ring when no capacity is configured.
const DefaultEventCapacity = 4096

// NewEventLog creates a ring holding up to capacity events (0 selects
// DefaultEventCapacity). sink may be nil; when set, events are appended to
// it as JSON lines. The first sink write error stops further sink writes
// and is reported by SinkErr — the in-memory log keeps working.
func NewEventLog(capacity int, sink io.Writer) (*EventLog, error) {
	if capacity == 0 {
		capacity = DefaultEventCapacity
	}
	if capacity < 0 {
		return nil, fmt.Errorf("telemetry: negative event capacity %d", capacity)
	}
	return &EventLog{buf: make([]Event, capacity), sink: sink}, nil
}

// Append stamps the event with the next sequence number and records it. It
// returns the assigned sequence number.
func (l *EventLog) Append(e Event) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.seq
	l.seq++
	if c := len(l.buf); c > 0 {
		i := (l.start + l.n) % c
		l.buf[i] = e
		if l.n < c {
			l.n++
		} else {
			l.start = (l.start + 1) % c
		}
	}
	if l.sink != nil && l.sinkErr == nil {
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			_, err = l.sink.Write(line)
		}
		if err != nil {
			l.sinkErr = err
		}
	}
	for _, tap := range l.taps {
		tap(e)
	}
	return e.Seq
}

// Tap registers fn to be called with every subsequently appended event,
// after it is stamped and buffered. Taps run under the log's lock on the
// appender's goroutine — they MUST NOT block or call back into the log
// (a live-stream broadcaster with non-blocking fan-out is the intended
// consumer). Register taps before the feed starts; Tap is not safe
// concurrently with Append.
func (l *EventLog) Tap(fn func(Event)) {
	if fn == nil {
		return
	}
	l.taps = append(l.taps, fn)
}

// Total returns the number of events ever appended (buffered or evicted).
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SinkErr returns the first error the JSONL sink hit, if any.
func (l *EventLog) SinkErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// Filter selects events out of the ring. The zero value matches everything.
type Filter struct {
	// Kind, when non-empty, matches only events of that kind.
	Kind string
	// HasFunction restricts to events scoped to Function.
	HasFunction bool
	Function    int
	// SinceSeq keeps only events with Seq ≥ SinceSeq (for incremental
	// polling: pass the last seen seq + 1).
	SinceSeq uint64
	// Limit caps the result to the most recent Limit matches (0 = all
	// buffered).
	Limit int
}

func (f Filter) matches(e Event) bool {
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	if f.HasFunction && e.Function != f.Function {
		return false
	}
	return e.Seq >= f.SinceSeq
}

// Select returns the buffered events matching the filter in append order.
func (l *EventLog) Select(f Filter) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.start+i)%len(l.buf)]
		if f.matches(e) {
			out = append(out, e)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}
