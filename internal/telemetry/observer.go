package telemetry

import "sync"

// InvocationSample reports served invocations. The runtime emits one sample
// per invocation (Count 1); the cluster engine batches a minute's identical
// invocations into one sample with Count > 1.
type InvocationSample struct {
	Minute      int
	Function    int
	Variant     string
	Cold        bool
	Count       int
	ServiceSec  float64 // per-invocation service time (cold start included when Cold)
	AccuracyPct float64
}

// KeepAliveSample reports, once per function per minute, which variant the
// policy keeps alive. Variant is -1 (and VariantName empty) when the
// function is left cold.
type KeepAliveSample struct {
	Minute      int
	Function    int
	Variant     int
	VariantName string
	MemMB       float64
}

// MinuteSample is the platform's per-minute rollup: total keep-alive
// memory and the keep-alive cost charged for the minute.
type MinuteSample struct {
	Minute      int
	KeepAliveMB float64
	CostUSD     float64
}

// ScheduleSample is one function-centric optimizer decision: after an
// invocation at Minute, the plan commits Plan[i] (a variant index) for
// offset minute i+1, chosen from invocation probability Probs[i].
// Observers must not retain or mutate the slices beyond the call.
type ScheduleSample struct {
	Minute   int
	Function int
	Plan     []int
	Probs    []float64
}

// PeakSample reports an Algorithm 1 peak-episode transition. Enter samples
// carry the keep-alive memory that tripped the detector, the prior it was
// compared against, the flatten target, and how many downgrades the episode
// opened with.
type PeakSample struct {
	Minute      int
	Enter       bool
	KeepAliveMB float64
	PriorMB     float64
	TargetMB    float64
	Downgrades  int
}

// DowngradeSample is one Algorithm 2 downgrade with the full utility
// breakdown that selected the victim. ToVariant is -1 for an eviction.
type DowngradeSample struct {
	Minute      int
	Function    int
	FromVariant int
	ToVariant   int
	Ai          float64
	Pr          float64
	Ip          float64
}

// Uv returns the victim's utility value Ai + Pr + Ip (Equation 2).
func (d DowngradeSample) Uv() float64 { return d.Ai + d.Pr + d.Ip }

// Observer receives instrumentation events from the core optimizers, the
// cluster engine, and the live runtime. Implementations must be
// concurrency-safe and cheap: samples arrive on invocation hot paths, and
// the lock-striped live runtime delivers them from many goroutines at
// once. Delivery ordering from that runtime: keep-alive and minute
// samples are emitted under its minute barrier, so their order is
// deterministic and identical across locking modes; invocation samples
// are emitted outside all runtime locks and may interleave across
// functions (each function's own samples remain in invocation order, and
// a stable sort by (Minute, Function) reconstructs the serial stream).
//
// Producers treat observers as nil-safe configuration — a nil Observer
// field disables instrumentation entirely, and the Nop implementation
// exists for call sites that want an always-valid value.
type Observer interface {
	ObserveInvocation(InvocationSample)
	ObserveKeepAlive(KeepAliveSample)
	ObserveMinute(MinuteSample)
	ObserveSchedule(ScheduleSample)
	ObservePeak(PeakSample)
	ObserveDowngrade(DowngradeSample)
}

// Nop is an Observer that does nothing and allocates nothing — the
// uninstrumented baseline the benchmark suite compares against.
type Nop struct{}

// ObserveInvocation implements Observer.
func (Nop) ObserveInvocation(InvocationSample) {}

// ObserveKeepAlive implements Observer.
func (Nop) ObserveKeepAlive(KeepAliveSample) {}

// ObserveMinute implements Observer.
func (Nop) ObserveMinute(MinuteSample) {}

// ObserveSchedule implements Observer.
func (Nop) ObserveSchedule(ScheduleSample) {}

// ObservePeak implements Observer.
func (Nop) ObservePeak(PeakSample) {}

// ObserveDowngrade implements Observer.
func (Nop) ObserveDowngrade(DowngradeSample) {}

var _ Observer = Nop{}

// Recorder is an Observer that retains every sample in memory — a testing
// and tooling aid for asserting exactly what a controller or runtime
// reported.
type Recorder struct {
	mu          sync.Mutex
	Invocations []InvocationSample
	KeepAlives  []KeepAliveSample
	Minutes     []MinuteSample
	Schedules   []ScheduleSample
	Peaks       []PeakSample
	Downgrades  []DowngradeSample
	Registers   []RegisterSample
	Deregisters []DeregisterSample
}

// ObserveInvocation implements Observer.
func (r *Recorder) ObserveInvocation(s InvocationSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Invocations = append(r.Invocations, s)
}

// ObserveKeepAlive implements Observer.
func (r *Recorder) ObserveKeepAlive(s KeepAliveSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.KeepAlives = append(r.KeepAlives, s)
}

// ObserveMinute implements Observer.
func (r *Recorder) ObserveMinute(s MinuteSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Minutes = append(r.Minutes, s)
}

// ObserveSchedule implements Observer.
func (r *Recorder) ObserveSchedule(s ScheduleSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Plan = append([]int(nil), s.Plan...)
	s.Probs = append([]float64(nil), s.Probs...)
	r.Schedules = append(r.Schedules, s)
}

// ObservePeak implements Observer.
func (r *Recorder) ObservePeak(s PeakSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Peaks = append(r.Peaks, s)
}

// ObserveDowngrade implements Observer.
func (r *Recorder) ObserveDowngrade(s DowngradeSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Downgrades = append(r.Downgrades, s)
}

var _ Observer = (*Recorder)(nil)
