package telemetry

// Multi fans every sample out to each non-nil observer, in argument order.
// It collapses trivially: no observers (or all nil) yields Nop, a single
// observer is returned directly (no wrapping cost). The fan-out itself
// allocates nothing per sample.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return Nop{}
	case 1:
		return kept[0]
	}
	return multi(kept)
}

type multi []Observer

func (m multi) ObserveInvocation(s InvocationSample) {
	for _, o := range m {
		o.ObserveInvocation(s)
	}
}

func (m multi) ObserveKeepAlive(s KeepAliveSample) {
	for _, o := range m {
		o.ObserveKeepAlive(s)
	}
}

func (m multi) ObserveMinute(s MinuteSample) {
	for _, o := range m {
		o.ObserveMinute(s)
	}
}

func (m multi) ObserveSchedule(s ScheduleSample) {
	for _, o := range m {
		o.ObserveSchedule(s)
	}
}

func (m multi) ObservePeak(s PeakSample) {
	for _, o := range m {
		o.ObservePeak(s)
	}
}

func (m multi) ObserveDowngrade(s DowngradeSample) {
	for _, o := range m {
		o.ObserveDowngrade(s)
	}
}
