package telemetry

import (
	"reflect"
	"testing"
)

func feedAll(o Observer) {
	o.ObserveKeepAlive(KeepAliveSample{Minute: 1})
	o.ObserveMinute(MinuteSample{Minute: 2})
	o.ObserveInvocation(InvocationSample{Minute: 3})
	o.ObserveDowngrade(DowngradeSample{Minute: 4})
	o.ObservePeak(PeakSample{Minute: 5})
	o.ObserveSchedule(ScheduleSample{Minute: 6})
}

func TestMultiFansOutToAllObservers(t *testing.T) {
	var a, b orderObserver
	feedAll(Multi(&a, nil, &b))
	if len(a.log) != 6 {
		t.Fatalf("first observer saw %d samples, want 6", len(a.log))
	}
	if !reflect.DeepEqual(a.log, b.log) {
		t.Errorf("observers diverged:\na %v\nb %v", a.log, b.log)
	}
}

func TestMultiCollapsesTrivially(t *testing.T) {
	if _, ok := Multi().(Nop); !ok {
		t.Errorf("Multi() = %T, want Nop", Multi())
	}
	if _, ok := Multi(nil, nil).(Nop); !ok {
		t.Errorf("Multi(nil, nil) = %T, want Nop", Multi(nil, nil))
	}
	var r Recorder
	if got := Multi(nil, &r, nil); got != Observer(&r) {
		t.Errorf("Multi with one live observer = %T, want the observer itself", got)
	}
}

func TestMultiFanOutDoesNotAllocate(t *testing.T) {
	// The per-sample fan-out must be allocation-free so Multi can sit on
	// the engine's hot path. Buffers are warmed first so their slices have
	// steady-state capacity.
	var b1, b2 Buffer
	m := Multi(&b1, &b2)
	for i := 0; i < 64; i++ {
		feedAll(m)
	}
	b1.Reset()
	b2.Reset()
	if avg := testing.AllocsPerRun(100, func() {
		feedAll(m)
		b1.Reset()
		b2.Reset()
	}); avg != 0 {
		t.Errorf("fan-out allocates %v times per round, want 0", avg)
	}
}
