package telemetry

import (
	"strings"
	"testing"
)

func newTestTelemetry(t *testing.T) *Telemetry {
	t.Helper()
	tel, err := New(Config{EventCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	return tel
}

func render(t *testing.T, tel *Telemetry) string {
	t.Helper()
	var b strings.Builder
	if err := tel.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTelemetryInvocationSeries(t *testing.T) {
	tel := newTestTelemetry(t)
	tel.ObserveInvocation(InvocationSample{Minute: 0, Function: 3, Variant: "gpt-small", Cold: true, Count: 1, ServiceSec: 4.2})
	tel.ObserveInvocation(InvocationSample{Minute: 0, Function: 3, Variant: "gpt-small", Count: 5, ServiceSec: 0.3})
	tel.ObserveInvocation(InvocationSample{Minute: 0, Function: 1, Variant: "yolo-x", ServiceSec: 0.1}) // Count 0 → 1

	out := render(t, tel)
	for _, want := range []string{
		`pulse_function_invocations_total{function="3",variant="gpt-small",start="cold"} 1`,
		`pulse_function_invocations_total{function="3",variant="gpt-small",start="warm"} 5`,
		`pulse_function_invocations_total{function="1",variant="yolo-x",start="warm"} 1`,
		`pulse_function_service_seconds_count{function="3"} 6`,
		`pulse_function_service_seconds_bucket{function="3",le="+Inf"} 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTelemetryKeepAliveGaugeZeroesStaleVariant(t *testing.T) {
	tel := newTestTelemetry(t)
	tel.ObserveKeepAlive(KeepAliveSample{Minute: 0, Function: 2, Variant: 2, VariantName: "gpt-large", MemMB: 2048})
	out := render(t, tel)
	if !strings.Contains(out, `pulse_function_keepalive_mb{function="2",variant="gpt-large"} 2048`) {
		t.Fatalf("gauge not set:\n%s", out)
	}
	// Downgrade to a smaller variant: the old series must drop to zero.
	tel.ObserveKeepAlive(KeepAliveSample{Minute: 1, Function: 2, Variant: 0, VariantName: "gpt-small", MemMB: 512})
	out = render(t, tel)
	if !strings.Contains(out, `pulse_function_keepalive_mb{function="2",variant="gpt-large"} 0`) {
		t.Errorf("stale variant series not zeroed:\n%s", out)
	}
	if !strings.Contains(out, `pulse_function_keepalive_mb{function="2",variant="gpt-small"} 512`) {
		t.Errorf("new variant series missing:\n%s", out)
	}
	// Eviction: everything for the function reads zero.
	tel.ObserveKeepAlive(KeepAliveSample{Minute: 2, Function: 2, Variant: -1})
	out = render(t, tel)
	if !strings.Contains(out, `pulse_function_keepalive_mb{function="2",variant="gpt-small"} 0`) {
		t.Errorf("evicted variant series not zeroed:\n%s", out)
	}
}

func TestTelemetryPeakAndDowngradeFlow(t *testing.T) {
	tel := newTestTelemetry(t)
	tel.ObservePeak(PeakSample{Minute: 10, Enter: true, KeepAliveMB: 4608, PriorMB: 2048, TargetMB: 2252.8, Downgrades: 2})
	tel.ObserveDowngrade(DowngradeSample{Minute: 10, Function: 0, FromVariant: 2, ToVariant: 1, Ai: 1.2, Pr: 0.5, Ip: 0.9})
	tel.ObserveDowngrade(DowngradeSample{Minute: 10, Function: 0, FromVariant: 1, ToVariant: 0, Ai: 0.8, Pr: 1, Ip: 0.9})
	tel.ObservePeak(PeakSample{Minute: 11, Enter: false, KeepAliveMB: 3072, PriorMB: 3072, TargetMB: 3379.2})

	out := render(t, tel)
	for _, want := range []string{
		`pulse_peaks_total 1`,
		`pulse_peak_active 0`,
		`pulse_downgrades_total{function="0"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	events := tel.Events().Select(Filter{Kind: KindDowngrade})
	if len(events) != 2 {
		t.Fatalf("downgrade events = %d, want 2", len(events))
	}
	first := events[0]
	if first.Ai != 1.2 || first.Pr != 0.5 || first.Ip != 0.9 || first.Uv != 2.6 {
		t.Errorf("downgrade terms = %+v, want Uv = Ai+Pr+Ip = 2.6", first)
	}
	if first.FromVariant != 2 || first.ToVariant != 1 {
		t.Errorf("downgrade variants = %+v", first)
	}
	if got := tel.Events().Select(Filter{Kind: KindPeakEnter}); len(got) != 1 || got[0].KaMMB != 4608 || got[0].Downgrades != 2 {
		t.Errorf("peak enter event = %+v", got)
	}
	if got := tel.Events().Select(Filter{Kind: KindPeakExit}); len(got) != 1 {
		t.Errorf("peak exit events = %d, want 1", len(got))
	}
}

func TestTelemetryScheduleEvent(t *testing.T) {
	tel := newTestTelemetry(t)
	plan := []int{0, 0, 1, 2}
	probs := []float64{0.1, 0.2, 0.6, 0.9}
	tel.ObserveSchedule(ScheduleSample{Minute: 5, Function: 4, Plan: plan, Probs: probs})
	plan[0] = 99 // the log must hold a copy, not the caller's slice

	events := tel.Events().Select(Filter{Kind: KindSchedule})
	if len(events) != 1 {
		t.Fatalf("schedule events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Function != 4 || e.Minute != 5 {
		t.Errorf("event = %+v", e)
	}
	if e.Plan[0] != 0 {
		t.Error("schedule event aliased the caller's plan slice")
	}
	if len(e.Plan) != 4 || len(e.Probs) != 4 || e.Probs[3] != 0.9 {
		t.Errorf("plan/probs = %v / %v", e.Plan, e.Probs)
	}
	out := render(t, tel)
	if !strings.Contains(out, `pulse_schedules_total{function="4"} 1`) {
		t.Errorf("schedule counter missing:\n%s", out)
	}
}

func TestTelemetryMinuteEvent(t *testing.T) {
	tel := newTestTelemetry(t)
	tel.ObserveMinute(MinuteSample{Minute: 7, KeepAliveMB: 1024, CostUSD: 0.001})
	events := tel.Events().Select(Filter{Kind: KindMinute})
	if len(events) != 1 || events[0].KaMMB != 1024 || events[0].CostUSD != 0.001 || events[0].Function != -1 {
		t.Errorf("minute events = %+v", events)
	}
}

// The Observer contract: Telemetry, Nop, and Recorder are interchangeable.
func TestObserverImplementations(t *testing.T) {
	drive := func(o Observer) {
		o.ObserveInvocation(InvocationSample{Function: 1, Variant: "v", Count: 1})
		o.ObserveKeepAlive(KeepAliveSample{Function: 1, Variant: 0, VariantName: "v", MemMB: 1})
		o.ObserveMinute(MinuteSample{Minute: 1})
		o.ObserveSchedule(ScheduleSample{Function: 1, Plan: []int{0}, Probs: []float64{0.5}})
		o.ObservePeak(PeakSample{Minute: 1, Enter: true})
		o.ObserveDowngrade(DowngradeSample{Function: 1, FromVariant: 1, ToVariant: 0})
	}
	drive(Nop{})
	rec := &Recorder{}
	drive(rec)
	if len(rec.Invocations) != 1 || len(rec.KeepAlives) != 1 || len(rec.Minutes) != 1 ||
		len(rec.Schedules) != 1 || len(rec.Peaks) != 1 || len(rec.Downgrades) != 1 {
		t.Errorf("recorder missed samples: %+v", rec)
	}
	drive(newTestTelemetry(t))
}
