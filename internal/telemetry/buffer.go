package telemetry

// Buffer is an Observer that stages samples in arrival order for later
// replay. It is the shard-local staging area behind the sharded PULSE
// controller's deterministic audit log: each shard worker records into its
// own Buffer without locking, and the coordinator replays the buffers in
// shard order at the minute barrier, so downstream observers see exactly
// the event sequence a serial controller would have produced.
//
// Unlike Recorder, Buffer is deliberately not concurrency-safe: it is
// single-producer by design, and it does not copy sample payloads — the
// producer retains ownership of ScheduleSample.Plan/Probs and must keep
// them valid until the replay. Replay preserves arrival order across all
// sample kinds. Reset keeps capacity, so steady-state buffering does not
// allocate.
type Buffer struct {
	order       []sampleKind
	invocations []InvocationSample
	keepAlives  []KeepAliveSample
	minutes     []MinuteSample
	schedules   []ScheduleSample
	peaks       []PeakSample
	downgrades  []DowngradeSample
}

type sampleKind uint8

const (
	kindInvocation sampleKind = iota
	kindKeepAlive
	kindMinute
	kindSchedule
	kindPeak
	kindDowngrade
)

// Len returns the number of buffered samples.
func (b *Buffer) Len() int { return len(b.order) }

// Reset discards the buffered samples but keeps capacity.
func (b *Buffer) Reset() {
	b.order = b.order[:0]
	b.invocations = b.invocations[:0]
	b.keepAlives = b.keepAlives[:0]
	b.minutes = b.minutes[:0]
	b.schedules = b.schedules[:0]
	b.peaks = b.peaks[:0]
	b.downgrades = b.downgrades[:0]
}

// ReplayTo re-emits every buffered sample to o in arrival order. A nil o
// is a no-op; the buffer is left intact either way.
func (b *Buffer) ReplayTo(o Observer) {
	if o == nil {
		return
	}
	var inv, ka, min, sch, pk, dn int
	for _, k := range b.order {
		switch k {
		case kindInvocation:
			o.ObserveInvocation(b.invocations[inv])
			inv++
		case kindKeepAlive:
			o.ObserveKeepAlive(b.keepAlives[ka])
			ka++
		case kindMinute:
			o.ObserveMinute(b.minutes[min])
			min++
		case kindSchedule:
			o.ObserveSchedule(b.schedules[sch])
			sch++
		case kindPeak:
			o.ObservePeak(b.peaks[pk])
			pk++
		case kindDowngrade:
			o.ObserveDowngrade(b.downgrades[dn])
			dn++
		}
	}
}

// FlushTo replays the buffer to o and resets it.
func (b *Buffer) FlushTo(o Observer) {
	b.ReplayTo(o)
	b.Reset()
}

// ObserveInvocation implements Observer.
func (b *Buffer) ObserveInvocation(s InvocationSample) {
	b.invocations = append(b.invocations, s)
	b.order = append(b.order, kindInvocation)
}

// ObserveKeepAlive implements Observer.
func (b *Buffer) ObserveKeepAlive(s KeepAliveSample) {
	b.keepAlives = append(b.keepAlives, s)
	b.order = append(b.order, kindKeepAlive)
}

// ObserveMinute implements Observer.
func (b *Buffer) ObserveMinute(s MinuteSample) {
	b.minutes = append(b.minutes, s)
	b.order = append(b.order, kindMinute)
}

// ObserveSchedule implements Observer.
func (b *Buffer) ObserveSchedule(s ScheduleSample) {
	b.schedules = append(b.schedules, s)
	b.order = append(b.order, kindSchedule)
}

// ObservePeak implements Observer.
func (b *Buffer) ObservePeak(s PeakSample) {
	b.peaks = append(b.peaks, s)
	b.order = append(b.order, kindPeak)
}

// ObserveDowngrade implements Observer.
func (b *Buffer) ObserveDowngrade(s DowngradeSample) {
	b.downgrades = append(b.downgrades, s)
	b.order = append(b.order, kindDowngrade)
}

var _ Observer = (*Buffer)(nil)
