package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewCounterVec("", "empty"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.NewCounterVec("9starts_with_digit", "bad"); err == nil {
		t.Error("leading digit accepted")
	}
	if _, err := r.NewCounterVec("has space", "bad"); err == nil {
		t.Error("space in name accepted")
	}
	if _, err := r.NewCounterVec("ok_total", "ok", "bad-label"); err == nil {
		t.Error("bad label name accepted")
	}
	if _, err := r.NewCounterVec("ok_total", "ok"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewGaugeVec("ok_total", "dup"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := r.NewHistogramVec("h", "le reserved", nil, "le"); err == nil {
		t.Error("histogram le label accepted")
	}
	if _, err := r.NewHistogramVec("h", "bad buckets", []float64{1, 1}); err == nil {
		t.Error("non-increasing buckets accepted")
	}
	if err := r.NewGaugeFunc("f", "nil fn", nil); err == nil {
		t.Error("nil func accepted")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("c_total", "c", "l")
	if err != nil {
		t.Fatal(err)
	}
	c := cv.With("a")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	if cv.With("a").Value() != 3.5 {
		t.Error("With should resolve the same series")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative counter add did not panic")
			}
		}()
		c.Add(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label arity mismatch did not panic")
			}
		}()
		cv.With("a", "b")
	}()

	gv, err := r.NewGaugeVec("g", "g")
	if err != nil {
		t.Fatal(err)
	}
	g := gv.With()
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}

	hv, err := r.NewHistogramVec("h_seconds", "h", []float64{1, 2, 4}, "l")
	if err != nil {
		t.Fatal(err)
	}
	h := hv.With("x")
	h.Observe(0.5)
	h.Observe(3)
	h.ObserveN(100, 2) // beyond the last bucket → +Inf only
	h.ObserveN(1, 0)   // no-op
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 203.5 {
		t.Errorf("sum = %v, want 203.5", h.Sum())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("c_total", "c", "worker")
	if err != nil {
		t.Fatal(err)
	}
	hv, err := r.NewHistogramVec("h_seconds", "h", []float64{1}, "worker")
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := strconv.Itoa(w % 2) // contend on two series
			for i := 0; i < per; i++ {
				cv.With(lbl).Inc()
				hv.With(lbl).Observe(0.5)
			}
		}(w)
	}
	wg.Wait()
	total := cv.With("0").Value() + cv.With("1").Value()
	if total != workers*per {
		t.Errorf("counter total = %v, want %d", total, workers*per)
	}
	if n := hv.With("0").Count() + hv.With("1").Count(); n != workers*per {
		t.Errorf("histogram count = %d, want %d", n, workers*per)
	}
}

// parseExposition is a strict line-by-line parser of the text exposition
// format, returning family → sample lines and asserting HELP/TYPE
// structure along the way.
func parseExposition(t *testing.T, out string) map[string][]string {
	t.Helper()
	samples := make(map[string][]string)
	var curFamily string
	sawHelp := map[string]bool{}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", i+1, line)
			}
			if sawHelp[name] {
				t.Fatalf("line %d: duplicate HELP for %s", i+1, name)
			}
			sawHelp[name] = true
			curFamily = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if fields[0] != curFamily {
				t.Fatalf("line %d: TYPE for %s not preceded by its HELP", i+1, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", i+1, fields[1])
			}
		case line == "":
			t.Fatalf("line %d: empty line in exposition", i+1)
		default:
			name := line
			if j := strings.IndexAny(line, "{ "); j >= 0 {
				name = line[:j]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if base != curFamily && name != curFamily {
				t.Fatalf("line %d: sample %q outside its family block (current %q)", i+1, name, curFamily)
			}
			// The value is everything after the last space.
			k := strings.LastIndex(line, " ")
			if k < 0 {
				t.Fatalf("line %d: no value: %q", i+1, line)
			}
			val := line[k+1:]
			if val != "+Inf" && val != "-Inf" {
				if _, err := strconv.ParseFloat(val, 64); err != nil {
					t.Fatalf("line %d: bad value %q: %v", i+1, val, err)
				}
			}
			// Label blocks must be balanced and quoted.
			if j := strings.Index(line, "{"); j >= 0 {
				labels := line[j:k]
				if !strings.HasSuffix(labels, "}") {
					t.Fatalf("line %d: unterminated label block: %q", i+1, line)
				}
				validateLabelBlock(t, i+1, labels)
			}
			samples[curFamily] = append(samples[curFamily], line)
		}
	}
	return samples
}

// validateLabelBlock checks {a="x",b="y"} syntax with exposition escaping:
// inside quotes only \\, \", and \n escapes are legal.
func validateLabelBlock(t *testing.T, lineNo int, block string) {
	t.Helper()
	s := block[1 : len(block)-1] // strip { }
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 || !validLabel(s[:eq]) {
			t.Fatalf("line %d: bad label name in %q", lineNo, block)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			t.Fatalf("line %d: unquoted label value in %q", lineNo, block)
		}
		s = s[1:]
		closed := false
		for i := 0; i < len(s); i++ {
			if s[i] == '\\' {
				if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != '"' && s[i+1] != 'n') {
					t.Fatalf("line %d: illegal escape in %q", lineNo, block)
				}
				i++
				continue
			}
			if s[i] == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			if s[i] == '\n' {
				t.Fatalf("line %d: raw newline in label value of %q", lineNo, block)
			}
		}
		if !closed {
			t.Fatalf("line %d: unterminated label value in %q", lineNo, block)
		}
		if len(s) > 0 {
			if s[0] != ',' {
				t.Fatalf("line %d: expected ',' between labels in %q", lineNo, block)
			}
			s = s[1:]
		}
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("pulse_test_total", "Counter with tricky\nhelp and back\\slash.", "function", "variant")
	if err != nil {
		t.Fatal(err)
	}
	cv.With("0", `quoted"value`).Add(3)
	cv.With("1", "back\\slash\nnewline").Inc()

	gv, err := r.NewGaugeVec("pulse_test_mb", "A gauge.")
	if err != nil {
		t.Fatal(err)
	}
	gv.With().Set(1536.5)

	hv, err := r.NewHistogramVec("pulse_test_seconds", "A histogram.", []float64{0.5, 1, 2}, "function")
	if err != nil {
		t.Fatal(err)
	}
	h := hv.With("7")
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)

	if err := r.NewGaugeFunc("pulse_test_func", "Scrape-time gauge.", func() float64 { return 42 }); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := parseExposition(t, out)

	// HELP escaping: raw newline and backslash must be escaped.
	if !strings.Contains(out, `# HELP pulse_test_total Counter with tricky\nhelp and back\\slash.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}

	// Label escaping round-trips.
	wantLines := []string{
		`pulse_test_total{function="0",variant="quoted\"value"} 3`,
		`pulse_test_total{function="1",variant="back\\slash\nnewline"} 1`,
		`pulse_test_mb 1536.5`,
		`pulse_test_func 42`,
		`pulse_test_seconds_bucket{function="7",le="0.5"} 1`,
		`pulse_test_seconds_bucket{function="7",le="1"} 2`,
		`pulse_test_seconds_bucket{function="7",le="2"} 2`,
		`pulse_test_seconds_bucket{function="7",le="+Inf"} 3`,
		`pulse_test_seconds_sum{function="7"} 5.9`,
		`pulse_test_seconds_count{function="7"} 3`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and consistent with count.
	var prev uint64
	for _, line := range samples["pulse_test_seconds"] {
		if !strings.Contains(line, "_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
	if prev != 3 {
		t.Errorf("+Inf bucket = %d, want total count 3", prev)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		0:            "0",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSeriesOrderingDeterministic(t *testing.T) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("c_total", "c", "l")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"b", "a", "c"} {
		cv.With(l).Inc()
	}
	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("two renders differ")
	}
	ia := strings.Index(b1.String(), `l="a"`)
	ib := strings.Index(b1.String(), `l="b"`)
	ic := strings.Index(b1.String(), `l="c"`)
	if !(ia < ib && ib < ic) {
		t.Errorf("series not sorted: positions a=%d b=%d c=%d", ia, ib, ic)
	}
}

func ExampleRegistry() {
	r := NewRegistry()
	cv, _ := r.NewCounterVec("requests_total", "Requests served.", "code")
	cv.With("200").Add(3)
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP requests_total Requests served.
	// # TYPE requests_total counter
	// requests_total{code="200"} 3
}
