package telemetry

import (
	"io"
	"testing"
)

// The Nop observer is the uninstrumented baseline: calling it must not
// allocate, so producers can emit samples unconditionally on hot paths.
func TestNopObserverZeroAllocs(t *testing.T) {
	var obs Observer = Nop{}
	sample := InvocationSample{Minute: 3, Function: 7, Variant: "gpt-small", Count: 1, ServiceSec: 0.25, AccuracyPct: 88}
	allocs := testing.AllocsPerRun(1000, func() {
		obs.ObserveInvocation(sample)
		obs.ObserveKeepAlive(KeepAliveSample{Minute: 3, Function: 7, Variant: 1, VariantName: "gpt-small", MemMB: 512})
		obs.ObserveMinute(MinuteSample{Minute: 3, KeepAliveMB: 512})
	})
	if allocs != 0 {
		t.Errorf("Nop observer allocates %v per run, want 0", allocs)
	}
}

// Steady-state metric updates must not allocate either: series handles are
// resolved once and then updated with atomics.
func TestSeriesUpdateZeroAllocs(t *testing.T) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("c_total", "c", "l")
	if err != nil {
		t.Fatal(err)
	}
	hv, err := r.NewHistogramVec("h_seconds", "h", nil, "l")
	if err != nil {
		t.Fatal(err)
	}
	c := cv.With("x")
	h := hv.With("x")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.3)
	})
	if allocs != 0 {
		t.Errorf("resolved series update allocates %v per run, want 0", allocs)
	}
}

func BenchmarkNopObserver(b *testing.B) {
	var obs Observer = Nop{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.ObserveInvocation(InvocationSample{Minute: i, Function: 7, Variant: "gpt-small", Count: 1, ServiceSec: 0.25})
	}
}

func BenchmarkTelemetryObserveInvocation(b *testing.B) {
	tel, err := New(Config{EventCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	var obs Observer = tel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.ObserveInvocation(InvocationSample{Minute: i, Function: 7, Variant: "gpt-small", Count: 1, ServiceSec: 0.25})
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("c_total", "c", "l")
	if err != nil {
		b.Fatal(err)
	}
	c := cv.With("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	hv, err := r.NewHistogramVec("h_seconds", "h", nil, "l")
	if err != nil {
		b.Fatal(err)
	}
	h := hv.With("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 10)
	}
}

func BenchmarkEventLogAppend(b *testing.B) {
	l, err := NewEventLog(4096, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Event{Minute: i, Kind: KindMinute, Function: -1, KaMMB: 1024})
	}
}

func BenchmarkEventLogAppendJSONLSink(b *testing.B) {
	l, err := NewEventLog(4096, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Event{Minute: i, Kind: KindMinute, Function: -1, KaMMB: 1024})
	}
}
