package telemetry

import (
	"io"
	"testing"
)

// The Nop observer is the uninstrumented baseline: calling it must not
// allocate, so producers can emit samples unconditionally on hot paths.
func TestNopObserverZeroAllocs(t *testing.T) {
	var obs Observer = Nop{}
	sample := InvocationSample{Minute: 3, Function: 7, Variant: "gpt-small", Count: 1, ServiceSec: 0.25, AccuracyPct: 88}
	plan := []int{0, 1, 2}
	probs := []float64{0.1, 0.5, 0.9}
	allocs := testing.AllocsPerRun(1000, func() {
		obs.ObserveInvocation(sample)
		obs.ObserveKeepAlive(KeepAliveSample{Minute: 3, Function: 7, Variant: 1, VariantName: "gpt-small", MemMB: 512})
		obs.ObserveMinute(MinuteSample{Minute: 3, KeepAliveMB: 512})
		obs.ObserveSchedule(ScheduleSample{Minute: 3, Function: 7, Plan: plan, Probs: probs})
		obs.ObservePeak(PeakSample{Minute: 3, Enter: true, KeepAliveMB: 512, PriorMB: 256, TargetMB: 282})
		obs.ObserveDowngrade(DowngradeSample{Minute: 3, Function: 7, FromVariant: 2, ToVariant: 1, Ai: 1, Pr: 0.5, Ip: 0.2})
	})
	if allocs != 0 {
		t.Errorf("Nop observer allocates %v per run, want 0", allocs)
	}
}

// The shard buffer stages samples and replays them without allocating
// once its slices have grown to the per-minute working set: the sharded
// controller flushes one buffer per shard every minute, so a steady-state
// allocation here would show up on every minute tick.
func TestBufferSteadyStateZeroAllocs(t *testing.T) {
	var buf Buffer
	plan := []int{0, 1, 2}
	probs := []float64{0.1, 0.5, 0.9}
	fill := func() {
		for i := 0; i < 16; i++ {
			buf.ObserveSchedule(ScheduleSample{Minute: i, Function: i, Plan: plan, Probs: probs})
			buf.ObservePeak(PeakSample{Minute: i, Enter: true})
			buf.ObserveDowngrade(DowngradeSample{Minute: i, Function: i})
		}
	}
	fill()
	buf.FlushTo(Nop{})
	allocs := testing.AllocsPerRun(100, func() {
		fill()
		buf.FlushTo(Nop{})
	})
	if allocs != 0 {
		t.Errorf("buffer fill+flush allocates %v per run at steady state, want 0", allocs)
	}
}

// Steady-state metric updates must not allocate either: series handles are
// resolved once and then updated with atomics.
func TestSeriesUpdateZeroAllocs(t *testing.T) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("c_total", "c", "l")
	if err != nil {
		t.Fatal(err)
	}
	hv, err := r.NewHistogramVec("h_seconds", "h", nil, "l")
	if err != nil {
		t.Fatal(err)
	}
	c := cv.With("x")
	h := hv.With("x")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.3)
	})
	if allocs != 0 {
		t.Errorf("resolved series update allocates %v per run, want 0", allocs)
	}
}

func BenchmarkNopObserver(b *testing.B) {
	var obs Observer = Nop{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.ObserveInvocation(InvocationSample{Minute: i, Function: 7, Variant: "gpt-small", Count: 1, ServiceSec: 0.25})
	}
}

func BenchmarkTelemetryObserveInvocation(b *testing.B) {
	tel, err := New(Config{EventCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	var obs Observer = tel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.ObserveInvocation(InvocationSample{Minute: i, Function: 7, Variant: "gpt-small", Count: 1, ServiceSec: 0.25})
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	cv, err := r.NewCounterVec("c_total", "c", "l")
	if err != nil {
		b.Fatal(err)
	}
	c := cv.With("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	hv, err := r.NewHistogramVec("h_seconds", "h", nil, "l")
	if err != nil {
		b.Fatal(err)
	}
	h := hv.With("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 10)
	}
}

func BenchmarkEventLogAppend(b *testing.B) {
	l, err := NewEventLog(4096, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Event{Minute: i, Kind: KindMinute, Function: -1, KaMMB: 1024})
	}
}

func BenchmarkEventLogAppendJSONLSink(b *testing.B) {
	l, err := NewEventLog(4096, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Event{Minute: i, Kind: KindMinute, Function: -1, KaMMB: 1024})
	}
}
