package telemetry

import (
	"reflect"
	"testing"
)

// orderObserver logs every sample it sees as a compact (kind, minute)
// trace, so arrival-order assertions cover interleaving across kinds —
// which Recorder's per-kind slices cannot express.
type orderObserver struct {
	log [][2]int
}

func (o *orderObserver) ObserveInvocation(s InvocationSample) {
	o.log = append(o.log, [2]int{int(kindInvocation), s.Minute})
}
func (o *orderObserver) ObserveKeepAlive(s KeepAliveSample) {
	o.log = append(o.log, [2]int{int(kindKeepAlive), s.Minute})
}
func (o *orderObserver) ObserveMinute(s MinuteSample) {
	o.log = append(o.log, [2]int{int(kindMinute), s.Minute})
}
func (o *orderObserver) ObserveSchedule(s ScheduleSample) {
	o.log = append(o.log, [2]int{int(kindSchedule), s.Minute})
}
func (o *orderObserver) ObservePeak(s PeakSample) {
	o.log = append(o.log, [2]int{int(kindPeak), s.Minute})
}
func (o *orderObserver) ObserveDowngrade(s DowngradeSample) {
	o.log = append(o.log, [2]int{int(kindDowngrade), s.Minute})
}

// fillBuffer stages one sample of every kind, interleaved, twice.
func fillBuffer(b *Buffer) [][2]int {
	var want [][2]int
	for round := 0; round < 2; round++ {
		m := round * 10
		b.ObserveKeepAlive(KeepAliveSample{Minute: m})
		want = append(want, [2]int{int(kindKeepAlive), m})
		b.ObserveMinute(MinuteSample{Minute: m + 1})
		want = append(want, [2]int{int(kindMinute), m + 1})
		b.ObserveInvocation(InvocationSample{Minute: m + 2})
		want = append(want, [2]int{int(kindInvocation), m + 2})
		b.ObserveDowngrade(DowngradeSample{Minute: m + 3})
		want = append(want, [2]int{int(kindDowngrade), m + 3})
		b.ObservePeak(PeakSample{Minute: m + 4})
		want = append(want, [2]int{int(kindPeak), m + 4})
		b.ObserveSchedule(ScheduleSample{Minute: m + 5})
		want = append(want, [2]int{int(kindSchedule), m + 5})
	}
	return want
}

func TestBufferReplayToPreservesOrder(t *testing.T) {
	var b Buffer
	want := fillBuffer(&b)
	var got orderObserver
	b.ReplayTo(&got)
	if !reflect.DeepEqual(got.log, want) {
		t.Errorf("replay order:\n got %v\nwant %v", got.log, want)
	}
}

func TestBufferReplayToDoesNotDrain(t *testing.T) {
	var b Buffer
	fillBuffer(&b)
	n := b.Len()
	var first orderObserver
	b.ReplayTo(&first)
	if b.Len() != n {
		t.Errorf("Len after ReplayTo = %d, want %d (must not drain)", b.Len(), n)
	}
	// Safe to call twice: the second replay emits the identical sequence.
	var second orderObserver
	b.ReplayTo(&second)
	if !reflect.DeepEqual(first.log, second.log) {
		t.Errorf("second replay diverged:\nfirst  %v\nsecond %v", first.log, second.log)
	}
	// A nil observer is a no-op that still leaves the buffer intact.
	b.ReplayTo(nil)
	if b.Len() != n {
		t.Errorf("Len after ReplayTo(nil) = %d, want %d", b.Len(), n)
	}
}

func TestBufferFlushToDrainsAfterReplay(t *testing.T) {
	var b Buffer
	want := fillBuffer(&b)
	var got orderObserver
	b.FlushTo(&got)
	if !reflect.DeepEqual(got.log, want) {
		t.Errorf("flush order:\n got %v\nwant %v", got.log, want)
	}
	if b.Len() != 0 {
		t.Errorf("Len after FlushTo = %d, want 0", b.Len())
	}
	// Flushing an empty buffer emits nothing.
	var again orderObserver
	b.FlushTo(&again)
	if len(again.log) != 0 {
		t.Errorf("flush of empty buffer emitted %v", again.log)
	}
}
