package core

import (
	"fmt"
	"math"

	"github.com/pulse-serverless/pulse/internal/stats"
)

// PriorMode selects how the prior keep-alive memory of Algorithm 1 is
// derived. PriorAlgorithm1 is the paper's rule; PriorNaive is the strawman
// the paper argues against (always the previous minute, even right after
// inactivity), kept for the ablation benchmark.
type PriorMode int

// Prior keep-alive memory modes.
const (
	PriorAlgorithm1 PriorMode = iota
	PriorNaive
)

// PeakDetector implements Algorithm 1: it decides, minute by minute,
// whether the current keep-alive memory constitutes a peak relative to a
// carefully chosen prior.
//
// The prior is the previous minute's keep-alive memory during continuous
// activity. At the first minute after a period of inactivity (previous
// keep-alive memory zero) the rule is the paper's: when the system has been
// operational for at least 2× the local window and the local-window average
// is positive, the prior is that average; otherwise it falls back to the
// last non-zero keep-alive memory ever observed, and to +Inf when there has
// never been one (nothing to peak against).
type PeakDetector struct {
	threshold   float64 // KM_T: fractional growth that constitutes a peak
	localWindow int
	window      *stats.RollingWindow
	prevKaM     float64
	lastNonZero float64
	elapsed     int // minutes recorded so far (the paper's T)
	mode        PriorMode
}

// NewPeakDetector creates a detector with keep-alive memory threshold
// KM_T (e.g. 0.10 for the paper's default 10%) and the sliding local
// window length in minutes.
func NewPeakDetector(threshold float64, localWindow int, mode PriorMode) (*PeakDetector, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("core: non-positive keep-alive memory threshold %v", threshold)
	}
	if localWindow <= 0 {
		return nil, fmt.Errorf("core: non-positive local window %d", localWindow)
	}
	return &PeakDetector{
		threshold:   threshold,
		localWindow: localWindow,
		window:      stats.NewRollingWindow(localWindow),
		prevKaM:     math.NaN(), // no prior minute yet
		lastNonZero: math.Inf(1),
		mode:        mode,
	}, nil
}

// Threshold returns KM_T.
func (p *PeakDetector) Threshold() float64 { return p.threshold }

// PriorKaM returns the prior keep-alive memory to compare the current
// minute against, per Algorithm 1.
func (p *PeakDetector) PriorKaM() float64 {
	if p.elapsed == 0 {
		// System just started: nothing can be a peak yet.
		return math.Inf(1)
	}
	if p.mode == PriorNaive {
		return p.prevKaM
	}
	if p.prevKaM > 0 {
		// Continuous activity: previous minute's keep-alive memory.
		return p.prevKaM
	}
	// First minute after inactivity (previous keep-alive memory was zero).
	avg := p.window.Mean()
	if p.elapsed >= 2*p.localWindow && avg > 0 {
		return avg
	}
	// Fall back to the last non-zero keep-alive memory; +Inf if none ever.
	return p.lastNonZero
}

// IsPeak reports whether currentKaM would constitute a peak this minute:
// C_KaM > P_KaM + KM_T × P_KaM (Algorithm 1's ISPEAK).
func (p *PeakDetector) IsPeak(currentKaM float64) bool {
	prior := p.PriorKaM()
	if math.IsInf(prior, 1) {
		return false
	}
	return currentKaM > prior*(1+p.threshold)
}

// FlattenTarget returns the highest keep-alive memory that would not be a
// peak this minute (+Inf when nothing can be a peak). Algorithm 2's loop
// runs "while peak is not flattened", i.e. until the kept-alive memory is
// at or below this value.
func (p *PeakDetector) FlattenTarget() float64 {
	prior := p.PriorKaM()
	if math.IsInf(prior, 1) {
		return math.Inf(1)
	}
	return prior * (1 + p.threshold)
}

// Record commits the minute's final keep-alive memory (after any
// downgrades) and advances the detector's clock.
func (p *PeakDetector) Record(kamMB float64) error {
	if kamMB < 0 {
		return fmt.Errorf("core: negative keep-alive memory %v", kamMB)
	}
	p.window.Push(kamMB)
	p.prevKaM = kamMB
	if kamMB > 0 {
		p.lastNonZero = kamMB
	}
	p.elapsed++
	return nil
}

// Elapsed returns the number of recorded minutes.
func (p *PeakDetector) Elapsed() int { return p.elapsed }
