package core

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the flat inter-arrival history arena: every
// function's History lives in slot-indexed struct-of-arrays slabs instead
// of a per-function heap object with two map-backed histograms. The paper's
// probability estimate only ever divides one gap's count by the total, so
// the histograms reduce to exact integer counters — small gaps (the common
// case: a function invoked every few minutes) use byte-width counters in a
// contiguous slab, while large gaps and saturated counters escape to a
// sorted per-slot spill list. Counts are identical to the map-backed
// implementation for every input, so probabilities — and therefore every
// schedule — stay bit-identical.
//
// The arena is not concurrency-safe by itself; it inherits the controller's
// discipline: shard workers touch only their own slot ranges, and all
// growth and release happens on the coordinator between minutes.

// histBuckets is the number of byte-width slab counters per slot and
// history: gaps 0..histBuckets-1 count in the slab, larger gaps spill.
const histBuckets = 16

// spillGap is one spill entry: count observations of gap minutes.
type spillGap struct {
	gap   int
	count int
}

// histArena holds n slots of per-function inter-arrival state.
type histArena struct {
	localWindow int
	n           int

	lastInv []int // slot → minute of most recent invocation, -1 before any

	// Full-history (global) counters: uint32 slab + spill.
	gBuck  []uint32 // n × histBuckets
	gTotal []int
	gSpill [][]spillGap // sorted by gap

	// Local sliding-window counters: uint16 slab + spill. The slab is
	// byte-width because the local window bounds how many distinct minutes
	// contribute — but Record accepts repeated invocations at one minute,
	// so saturation is still possible and escapes to the spill.
	lBuck  []uint16 // n × histBuckets
	lTotal []int
	lSpill [][]spillGap

	// queue holds each slot's local-window observations in arrival order,
	// for aging out; nil for slots with no recent observations.
	queue [][]timedGap
}

func newHistArena(localWindow, n int) (*histArena, error) {
	if localWindow <= 0 {
		return nil, fmt.Errorf("core: non-positive local window %d", localWindow)
	}
	a := &histArena{
		localWindow: localWindow,
		n:           n,
		lastInv:     make([]int, n),
		gBuck:       make([]uint32, n*histBuckets),
		gTotal:      make([]int, n),
		gSpill:      make([][]spillGap, n),
		lBuck:       make([]uint16, n*histBuckets),
		lTotal:      make([]int, n),
		lSpill:      make([][]spillGap, n),
		queue:       make([][]timedGap, n),
	}
	for i := range a.lastInv {
		a.lastInv[i] = -1
	}
	return a, nil
}

// grow appends one fresh slot.
func (a *histArena) grow() {
	a.n++
	a.lastInv = append(a.lastInv, -1)
	a.gBuck = append(a.gBuck, make([]uint32, histBuckets)...)
	a.gTotal = append(a.gTotal, 0)
	a.gSpill = append(a.gSpill, nil)
	a.lBuck = append(a.lBuck, make([]uint16, histBuckets)...)
	a.lTotal = append(a.lTotal, 0)
	a.lSpill = append(a.lSpill, nil)
	a.queue = append(a.queue, nil)
}

// release drops everything slot fn has learned and frees its heap-backed
// state (spill lists, local queue), leaving only the zeroed slab row — the
// deregister release rule: a departed slot retains no backing arrays of its
// own.
func (a *histArena) release(fn int) {
	a.lastInv[fn] = -1
	clear(a.gBuck[fn*histBuckets : (fn+1)*histBuckets])
	a.gTotal[fn] = 0
	a.gSpill[fn] = nil
	clear(a.lBuck[fn*histBuckets : (fn+1)*histBuckets])
	a.lTotal[fn] = 0
	a.lSpill[fn] = nil
	a.queue[fn] = nil
}

// spillAdd records one observation of gap in a sorted spill list.
func spillAdd(s []spillGap, gap int) []spillGap {
	i := sort.Search(len(s), func(i int) bool { return s[i].gap >= gap })
	if i < len(s) && s[i].gap == gap {
		s[i].count++
		return s
	}
	s = append(s, spillGap{})
	copy(s[i+1:], s[i:])
	s[i] = spillGap{gap: gap, count: 1}
	return s
}

// spillCount returns the spill's count for gap.
func spillCount(s []spillGap, gap int) int {
	i := sort.Search(len(s), func(i int) bool { return s[i].gap >= gap })
	if i < len(s) && s[i].gap == gap {
		return s[i].count
	}
	return 0
}

// spillRemove removes one observation of gap; ok reports whether one was
// present.
func spillRemove(s []spillGap, gap int) ([]spillGap, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].gap >= gap })
	if i >= len(s) || s[i].gap != gap {
		return s, false
	}
	if s[i].count--; s[i].count == 0 {
		s = append(s[:i], s[i+1:]...)
	}
	return s, true
}

// addGlobal records one observation of gap in slot fn's full history.
func (a *histArena) addGlobal(fn, gap int) error {
	if gap < 0 {
		return fmt.Errorf("stats: negative histogram value %d", gap)
	}
	if gap < histBuckets && a.gBuck[fn*histBuckets+gap] < math.MaxUint32 {
		a.gBuck[fn*histBuckets+gap]++
	} else {
		a.gSpill[fn] = spillAdd(a.gSpill[fn], gap)
	}
	a.gTotal[fn]++
	return nil
}

// addLocal records one observation of gap in slot fn's local window.
func (a *histArena) addLocal(fn, gap int) error {
	if gap < 0 {
		return fmt.Errorf("stats: negative histogram value %d", gap)
	}
	if gap < histBuckets && a.lBuck[fn*histBuckets+gap] < math.MaxUint16 {
		a.lBuck[fn*histBuckets+gap]++
	} else {
		a.lSpill[fn] = spillAdd(a.lSpill[fn], gap)
	}
	a.lTotal[fn]++
	return nil
}

// removeLocal ages one observation of gap out of slot fn's local window.
func (a *histArena) removeLocal(fn, gap int) error {
	if gap >= 0 && gap < histBuckets && a.lBuck[fn*histBuckets+gap] > 0 {
		a.lBuck[fn*histBuckets+gap]--
	} else {
		s, ok := spillRemove(a.lSpill[fn], gap)
		if !ok {
			return fmt.Errorf("stats: removing absent histogram value %d", gap)
		}
		a.lSpill[fn] = s
	}
	a.lTotal[fn]--
	return nil
}

// globalCount returns slot fn's full-history count for gap.
func (a *histArena) globalCount(fn, gap int) int {
	c := 0
	if gap >= 0 && gap < histBuckets {
		c = int(a.gBuck[fn*histBuckets+gap])
	}
	return c + spillCount(a.gSpill[fn], gap)
}

// localCount returns slot fn's local-window count for gap.
func (a *histArena) localCount(fn, gap int) int {
	c := 0
	if gap >= 0 && gap < histBuckets {
		c = int(a.lBuck[fn*histBuckets+gap])
	}
	return c + spillCount(a.lSpill[fn], gap)
}

// globalValues returns slot fn's observed gaps in ascending order.
func (a *histArena) globalValues(fn int) []int {
	var out []int
	for g := 0; g < histBuckets; g++ {
		// Spilled gaps below histBuckets only exist alongside a saturated
		// (nonzero) slab counter, so the slab test alone finds them.
		if a.gBuck[fn*histBuckets+g] > 0 {
			out = append(out, g)
		}
	}
	for _, s := range a.gSpill[fn] {
		if s.gap >= histBuckets {
			out = append(out, s.gap)
		}
	}
	return out
}

// record is History.Record for slot fn: the inter-arrival gap since the
// previous invocation enters both histories; local observations older than
// the window age out.
func (a *histArena) record(fn, t int) error {
	if t < 0 {
		return fmt.Errorf("core: negative minute %d", t)
	}
	last := a.lastInv[fn]
	if last >= 0 {
		if t < last {
			return fmt.Errorf("core: time went backwards: %d after %d", t, last)
		}
		gap := t - last
		if err := a.addGlobal(fn, gap); err != nil {
			return err
		}
		if err := a.addLocal(fn, gap); err != nil {
			return err
		}
		a.queue[fn] = append(a.queue[fn], timedGap{minute: t, gap: gap})
	}
	a.lastInv[fn] = t
	a.evictLocal(fn, t)
	return nil
}

// evictLocal drops slot fn's local observations recorded before
// t−localWindow.
func (a *histArena) evictLocal(fn, t int) {
	cut := t - a.localWindow
	q := a.queue[fn]
	i := 0
	for ; i < len(q) && q[i].minute < cut; i++ {
		// Remove cannot fail: every queued gap was added to the histogram.
		if err := a.removeLocal(fn, q[i].gap); err != nil {
			panic("core: local histogram out of sync: " + err.Error())
		}
	}
	if i > 0 {
		a.queue[fn] = q[i:]
	}
}

// probability is History.Probability for slot fn. Empty histories
// contribute zero, exactly like the map-backed histograms' Probability.
func (a *histArena) probability(fn, gap int, blend HistoryBlend) float64 {
	var local, global float64
	if a.lTotal[fn] > 0 {
		local = float64(a.localCount(fn, gap)) / float64(a.lTotal[fn])
	}
	if a.gTotal[fn] > 0 {
		global = float64(a.globalCount(fn, gap)) / float64(a.gTotal[fn])
	}
	switch blend {
	case BlendLocalOnly:
		return local
	case BlendGlobalOnly:
		return global
	default:
		return (local + global) / 2
	}
}
