package core_test

import (
	"fmt"
	"log"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
)

// ExampleTechniqueT1 shows the paper's greedy probability-threshold rule:
// N variants divide the probability space into N equal areas.
func ExampleTechniqueT1() {
	t1 := core.TechniqueT1{}
	for _, p := range []float64{0.0, 0.2, 0.4, 0.7, 1.0} {
		fmt.Printf("P=%.1f → variant %d\n", p, t1.Select(p, 3))
	}
	// Output:
	// P=0.0 → variant 0
	// P=0.2 → variant 0
	// P=0.4 → variant 1
	// P=0.7 → variant 2
	// P=1.0 → variant 2
}

// ExampleHistory demonstrates the dual-history inter-arrival probability
// estimate behind the function-centric optimizer.
func ExampleHistory() {
	h, err := core.NewHistory(60)
	if err != nil {
		log.Fatal(err)
	}
	// A function invoked every 2 minutes.
	for _, minute := range []int{0, 2, 4, 6, 8} {
		if err := h.Record(minute); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("P(next gap = 2) = %.2f\n", h.Probability(2, core.BlendBoth))
	fmt.Printf("P(next gap = 5) = %.2f\n", h.Probability(5, core.BlendBoth))
	// Output:
	// P(next gap = 2) = 1.00
	// P(next gap = 5) = 0.00
}

// ExampleGlobalOptimizer walks Algorithm 2: during a peak the model with
// the lowest utility value Uv = Ai + Pr + Ip is downgraded first.
func ExampleGlobalOptimizer() {
	cat := &models.Catalog{Families: []models.Family{
		{Name: "GPT", Variants: []models.Variant{
			{Name: "small", AccuracyPct: 87, ExecSec: 12, MemoryMB: 1000},
			{Name: "large", AccuracyPct: 93, ExecSec: 24, MemoryMB: 3500},
		}},
		{Name: "YOLO", Variants: []models.Variant{
			{Name: "s", AccuracyPct: 57, ExecSec: 1, MemoryMB: 340},
			{Name: "x", AccuracyPct: 69, ExecSec: 3, MemoryMB: 1400},
		}},
	}}
	g, err := core.NewGlobalOptimizer(cat, models.Assignment{0, 1}, core.StepByOne, false)
	if err != nil {
		log.Fatal(err)
	}
	decisions := []int{1, 1}  // both at highest quality: 4900 MB
	ip := []float64{0.9, 0.2} // GPT far likelier to be invoked
	target := 3000.0          // the peak detector's flatten target
	downs, err := g.Flatten(decisions, ip, target)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range downs {
		fmt.Printf("downgraded function %d: variant %d → %d\n", d.Function, d.FromVariant, d.ToVariant)
	}
	fmt.Println("final decisions:", decisions)
	// Output:
	// downgraded function 1: variant 1 → 0
	// downgraded function 0: variant 1 → 0
	// final decisions: [0 0]
}
