package core

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

// This file implements state checkpointing for PULSE — the persistence
// behind Figure 3's "Metadata Store". A snapshot captures everything the
// controller has learned (inter-arrival histories, downgrade priorities,
// peak-detector state) plus the in-flight keep-alive plans, so a restored
// controller continues with decisions bit-identical to an uninterrupted
// one.

// SnapshotVersion identifies the snapshot schema. Version 2 keys
// per-function state by function name (identity) instead of by slot index,
// so a snapshot survives online registration and deregistration: restore
// matches entries to the configured population by name, functions present
// only in the configuration start cold, and entries naming functions absent
// from the configuration are an error.
const SnapshotVersion = 2

// GapCount is one histogram bucket: Count observations of Gap minutes.
type GapCount struct {
	Gap   int `json:"gap"`
	Count int `json:"count"`
}

// TimedGapSnapshot is one local-window observation.
type TimedGapSnapshot struct {
	Minute int `json:"minute"`
	Gap    int `json:"gap"`
}

// HistorySnapshot captures one function's History.
type HistorySnapshot struct {
	LastInvocation int                `json:"lastInvocation"`
	Global         []GapCount         `json:"global"`
	LocalQueue     []TimedGapSnapshot `json:"localQueue"`
}

// Snapshot captures the history's state.
func (h *History) Snapshot() HistorySnapshot {
	s := HistorySnapshot{LastInvocation: h.ar.lastInv[h.fn]}
	for _, gap := range h.ar.globalValues(h.fn) {
		s.Global = append(s.Global, GapCount{Gap: gap, Count: h.ar.globalCount(h.fn, gap)})
	}
	for _, tg := range h.ar.queue[h.fn] {
		s.LocalQueue = append(s.LocalQueue, TimedGapSnapshot{Minute: tg.minute, Gap: tg.gap})
	}
	return s
}

// restoreHistory rebuilds a standalone (single-slot-arena) History from a
// snapshot.
func restoreHistory(localWindow int, s HistorySnapshot) (*History, error) {
	h, err := NewHistory(localWindow)
	if err != nil {
		return nil, err
	}
	if err := restoreHistoryInto(h.ar, h.fn, s); err != nil {
		return nil, err
	}
	return h, nil
}

// restoreHistoryInto rebuilds one arena slot's history from a snapshot. The
// slot must be empty (fresh or released).
func restoreHistoryInto(ar *histArena, fn int, s HistorySnapshot) error {
	ar.lastInv[fn] = s.LastInvocation
	for _, gc := range s.Global {
		if gc.Count <= 0 {
			return fmt.Errorf("core: snapshot has non-positive count %d for gap %d", gc.Count, gc.Gap)
		}
		for i := 0; i < gc.Count; i++ {
			if err := ar.addGlobal(fn, gc.Gap); err != nil {
				return fmt.Errorf("core: snapshot gap %d: %w", gc.Gap, err)
			}
		}
	}
	for _, tg := range s.LocalQueue {
		if err := ar.addLocal(fn, tg.Gap); err != nil {
			return fmt.Errorf("core: snapshot local gap %d: %w", tg.Gap, err)
		}
		ar.queue[fn] = append(ar.queue[fn], timedGap{minute: tg.Minute, gap: tg.Gap})
	}
	return nil
}

// DetectorSnapshot captures a PeakDetector.
type DetectorSnapshot struct {
	Elapsed     int       `json:"elapsed"`
	PrevKaM     float64   `json:"prevKaM"`
	LastNonZero float64   `json:"lastNonZero"` // +Inf encoded as -1
	Window      []float64 `json:"window"`
}

// Snapshot captures the detector's state.
func (p *PeakDetector) Snapshot() DetectorSnapshot {
	s := DetectorSnapshot{
		Elapsed: p.elapsed,
		PrevKaM: p.prevKaM,
		Window:  p.window.Values(),
	}
	if p.elapsed == 0 {
		s.PrevKaM = 0
	}
	s.LastNonZero = p.lastNonZero
	if s.LastNonZero > 1e300 { // +Inf is not JSON-encodable
		s.LastNonZero = -1
	}
	return s
}

// restoreDetector rebuilds a PeakDetector from a snapshot.
func restoreDetector(threshold float64, localWindow int, mode PriorMode, s DetectorSnapshot) (*PeakDetector, error) {
	d, err := NewPeakDetector(threshold, localWindow, mode)
	if err != nil {
		return nil, err
	}
	if s.Elapsed < 0 {
		return nil, fmt.Errorf("core: snapshot has negative elapsed %d", s.Elapsed)
	}
	if len(s.Window) > localWindow {
		return nil, fmt.Errorf("core: snapshot window of %d exceeds local window %d", len(s.Window), localWindow)
	}
	for _, v := range s.Window {
		if v < 0 {
			return nil, fmt.Errorf("core: snapshot window has negative keep-alive memory %v", v)
		}
		d.window.Push(v)
	}
	d.elapsed = s.Elapsed
	if s.Elapsed > 0 {
		d.prevKaM = s.PrevKaM
	}
	if s.LastNonZero >= 0 {
		d.lastNonZero = s.LastNonZero
	}
	return d, nil
}

// PlanEntry is one in-flight keep-alive commitment: variant to keep alive
// at an absolute minute, with the invocation probability that chose it.
type PlanEntry struct {
	Minute  int     `json:"minute"`
	Variant int     `json:"variant"`
	Prob    float64 `json:"prob"`
}

// FunctionSnapshot captures one registered function's learned state, keyed
// by its stable name.
type FunctionSnapshot struct {
	Name          string          `json:"name"`
	Family        int             `json:"family"`
	History       HistorySnapshot `json:"history"`
	Plans         []PlanEntry     `json:"plans,omitempty"`
	PriorityCount float64         `json:"priorityCount"`
}

// PulseSnapshot captures a full PULSE controller.
type PulseSnapshot struct {
	Version int `json:"version"`

	// Configuration fingerprint: restoring requires a matching config.
	Window       int     `json:"window"`
	LocalWindow  int     `json:"localWindow"`
	KaMThreshold float64 `json:"kamThreshold"`
	Technique    string  `json:"technique"`

	// Functions holds one identity-keyed entry per *active* function.
	// Tombstoned slots carry no learned state and are not persisted; a
	// restored controller renumbers the survivors densely from its
	// configured population.
	Functions []FunctionSnapshot `json:"functions"`

	Detector        DetectorSnapshot `json:"detector"`
	TotalDowngrades int              `json:"totalDowngrades"`
	PeakMinutes     int              `json:"peakMinutes"`
}

// Snapshot captures the controller's learned state.
func (p *Pulse) Snapshot() PulseSnapshot {
	s := PulseSnapshot{
		Version:         SnapshotVersion,
		Window:          p.cfg.Window,
		LocalWindow:     p.cfg.LocalWindow,
		KaMThreshold:    p.cfg.KaMThreshold,
		Technique:       p.cfg.Technique.Name(),
		Detector:        p.detector.Snapshot(),
		TotalDowngrades: p.totalDowngrades,
		PeakMinutes:     p.peakMinutes,
	}
	for fn := range p.cfg.Assignment {
		if !p.reg.Active(fn) {
			continue
		}
		h := History{ar: p.hist, fn: fn}
		fs := FunctionSnapshot{
			Name:          p.reg.Name(fn),
			Family:        p.cfg.Assignment[fn],
			History:       h.Snapshot(),
			PriorityCount: p.global.Priority().Count(fn),
		}
		if p.plans.hasRow(fn) {
			base := int(p.plans.row[fn]) * p.plans.stride
			for i := 0; i < p.plans.stride; i++ {
				if minute := p.plans.minutes[base+i]; minute >= 0 {
					fs.Plans = append(fs.Plans, PlanEntry{
						Minute:  minute,
						Variant: int(p.plans.variants[base+i]),
						Prob:    p.plans.probs[base+i],
					})
				}
			}
		}
		s.Functions = append(s.Functions, fs)
	}
	return s
}

// Restore builds a PULSE controller from a configuration and a snapshot
// previously taken with a compatible configuration. Snapshot state is
// matched to the configured population by function name: a configured
// function without a snapshot entry starts cold (the rule for functions
// registered after the snapshot was taken), while a snapshot entry naming a
// function outside the configuration is an error.
func Restore(cfg Config, s PulseSnapshot) (*Pulse, error) {
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot schema version %d, this build reads version %d", s.Version, SnapshotVersion)
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	eff := p.Config()
	if s.Window != eff.Window || s.LocalWindow != eff.LocalWindow ||
		s.KaMThreshold != eff.KaMThreshold || s.Technique != eff.Technique.Name() {
		return nil, fmt.Errorf("core: snapshot taken under different configuration (window %d/%d, local %d/%d, KM_T %v/%v, technique %s/%s)",
			s.Window, eff.Window, s.LocalWindow, eff.LocalWindow,
			s.KaMThreshold, eff.KaMThreshold, s.Technique, eff.Technique.Name())
	}
	byName := make(map[string]*FunctionSnapshot, len(s.Functions))
	for i := range s.Functions {
		fs := &s.Functions[i]
		if _, dup := byName[fs.Name]; dup {
			return nil, fmt.Errorf("core: snapshot has two entries for function %q", fs.Name)
		}
		byName[fs.Name] = fs
	}
	restored := 0
	for fn, name := range eff.Names {
		fs, ok := byName[name]
		if !ok {
			continue // configured but not snapshotted: starts cold
		}
		restored++
		if fs.Family != eff.Assignment[fn] {
			return nil, fmt.Errorf("core: snapshot assigns function %q family %d, config assigns %d",
				name, fs.Family, eff.Assignment[fn])
		}
		if err := restoreHistoryInto(p.hist, fn, fs.History); err != nil {
			return nil, fmt.Errorf("core: function %q: %w", name, err)
		}
		fam := eff.Catalog.Families[eff.Assignment[fn]]
		for _, e := range fs.Plans {
			if e.Minute < 0 {
				return nil, fmt.Errorf("core: function %q plan at negative minute %d", name, e.Minute)
			}
			if e.Variant < 0 || e.Variant >= fam.NumVariants() {
				return nil, fmt.Errorf("core: function %q plan keeps invalid variant %d", name, e.Variant)
			}
			p.plans.ensureRow(fn)
			p.plans.set(fn, e.Minute, e.Variant, e.Prob)
			if e.Minute > p.plans.expiry[fn] {
				p.plans.expiry[fn] = e.Minute
			}
			p.active.add(fn)
		}
		if fs.PriorityCount < 0 {
			return nil, fmt.Errorf("core: snapshot priority count %v for function %q", fs.PriorityCount, name)
		}
		for i := 0; i < int(fs.PriorityCount); i++ {
			if err := p.global.Priority().Bump(fn); err != nil {
				return nil, err
			}
		}
	}
	p.active.sort()
	if restored != len(byName) {
		for name := range byName {
			if _, ok := p.reg.Slot(name); !ok {
				return nil, fmt.Errorf("core: snapshot has state for %q, which the configuration does not register", name)
			}
		}
	}
	d, err := restoreDetector(eff.KaMThreshold, eff.LocalWindow, eff.PriorMode, s.Detector)
	if err != nil {
		return nil, err
	}
	p.detector = d
	p.totalDowngrades = s.TotalDowngrades
	p.peakMinutes = s.PeakMinutes
	return p, nil
}

// resumeMinute returns the next minute the restored controller expects;
// exposed for the metastore's convenience API.
func (p *Pulse) resumeMinute() int { return p.detector.Elapsed() }

// ResumeMinute returns the minute index a restored controller should next
// be driven at (the number of minutes it has already recorded). Driving it
// at a later minute is safe — histories treat the gap as inactivity — but
// an earlier minute would run time backwards.
func (p *Pulse) ResumeMinute() int { return p.resumeMinute() }

var _ cluster.Policy = (*Pulse)(nil)
