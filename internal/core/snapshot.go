package core

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

// This file implements state checkpointing for PULSE — the persistence
// behind Figure 3's "Metadata Store". A snapshot captures everything the
// controller has learned (inter-arrival histories, downgrade priorities,
// peak-detector state) plus the in-flight keep-alive plans, so a restored
// controller continues with decisions bit-identical to an uninterrupted
// one.

// SnapshotVersion identifies the snapshot schema.
const SnapshotVersion = 1

// GapCount is one histogram bucket: Count observations of Gap minutes.
type GapCount struct {
	Gap   int `json:"gap"`
	Count int `json:"count"`
}

// TimedGapSnapshot is one local-window observation.
type TimedGapSnapshot struct {
	Minute int `json:"minute"`
	Gap    int `json:"gap"`
}

// HistorySnapshot captures one function's History.
type HistorySnapshot struct {
	LastInvocation int                `json:"lastInvocation"`
	Global         []GapCount         `json:"global"`
	LocalQueue     []TimedGapSnapshot `json:"localQueue"`
}

// Snapshot captures the history's state.
func (h *History) Snapshot() HistorySnapshot {
	s := HistorySnapshot{LastInvocation: h.lastInv}
	for _, gap := range h.global.Values() {
		s.Global = append(s.Global, GapCount{Gap: gap, Count: h.global.Count(gap)})
	}
	for _, tg := range h.localQueue {
		s.LocalQueue = append(s.LocalQueue, TimedGapSnapshot{Minute: tg.minute, Gap: tg.gap})
	}
	return s
}

// restoreHistory rebuilds a History from a snapshot.
func restoreHistory(localWindow int, s HistorySnapshot) (*History, error) {
	h, err := NewHistory(localWindow)
	if err != nil {
		return nil, err
	}
	h.lastInv = s.LastInvocation
	for _, gc := range s.Global {
		if gc.Count <= 0 {
			return nil, fmt.Errorf("core: snapshot has non-positive count %d for gap %d", gc.Count, gc.Gap)
		}
		for i := 0; i < gc.Count; i++ {
			if err := h.global.Add(gc.Gap); err != nil {
				return nil, fmt.Errorf("core: snapshot gap %d: %w", gc.Gap, err)
			}
		}
	}
	for _, tg := range s.LocalQueue {
		if err := h.local.Add(tg.Gap); err != nil {
			return nil, fmt.Errorf("core: snapshot local gap %d: %w", tg.Gap, err)
		}
		h.localQueue = append(h.localQueue, timedGap{minute: tg.Minute, gap: tg.Gap})
	}
	return h, nil
}

// DetectorSnapshot captures a PeakDetector.
type DetectorSnapshot struct {
	Elapsed     int       `json:"elapsed"`
	PrevKaM     float64   `json:"prevKaM"`
	LastNonZero float64   `json:"lastNonZero"` // +Inf encoded as -1
	Window      []float64 `json:"window"`
}

// Snapshot captures the detector's state.
func (p *PeakDetector) Snapshot() DetectorSnapshot {
	s := DetectorSnapshot{
		Elapsed: p.elapsed,
		PrevKaM: p.prevKaM,
		Window:  p.window.Values(),
	}
	if p.elapsed == 0 {
		s.PrevKaM = 0
	}
	s.LastNonZero = p.lastNonZero
	if s.LastNonZero > 1e300 { // +Inf is not JSON-encodable
		s.LastNonZero = -1
	}
	return s
}

// restoreDetector rebuilds a PeakDetector from a snapshot.
func restoreDetector(threshold float64, localWindow int, mode PriorMode, s DetectorSnapshot) (*PeakDetector, error) {
	d, err := NewPeakDetector(threshold, localWindow, mode)
	if err != nil {
		return nil, err
	}
	if s.Elapsed < 0 {
		return nil, fmt.Errorf("core: snapshot has negative elapsed %d", s.Elapsed)
	}
	if len(s.Window) > localWindow {
		return nil, fmt.Errorf("core: snapshot window of %d exceeds local window %d", len(s.Window), localWindow)
	}
	for _, v := range s.Window {
		if v < 0 {
			return nil, fmt.Errorf("core: snapshot window has negative keep-alive memory %v", v)
		}
		d.window.Push(v)
	}
	d.elapsed = s.Elapsed
	if s.Elapsed > 0 {
		d.prevKaM = s.PrevKaM
	}
	if s.LastNonZero >= 0 {
		d.lastNonZero = s.LastNonZero
	}
	return d, nil
}

// PlanEntry is one in-flight keep-alive commitment: variant to keep alive
// at an absolute minute, with the invocation probability that chose it.
type PlanEntry struct {
	Minute  int     `json:"minute"`
	Variant int     `json:"variant"`
	Prob    float64 `json:"prob"`
}

// PulseSnapshot captures a full PULSE controller.
type PulseSnapshot struct {
	Version int `json:"version"`

	// Configuration fingerprint: restoring requires a matching config.
	Window       int     `json:"window"`
	LocalWindow  int     `json:"localWindow"`
	KaMThreshold float64 `json:"kamThreshold"`
	Technique    string  `json:"technique"`
	Functions    int     `json:"functions"`

	Histories       []HistorySnapshot `json:"histories"`
	Plans           [][]PlanEntry     `json:"plans"`
	PriorityCounts  []float64         `json:"priorityCounts"`
	Detector        DetectorSnapshot  `json:"detector"`
	TotalDowngrades int               `json:"totalDowngrades"`
	PeakMinutes     int               `json:"peakMinutes"`
}

// Snapshot captures the controller's learned state.
func (p *Pulse) Snapshot() PulseSnapshot {
	s := PulseSnapshot{
		Version:         SnapshotVersion,
		Window:          p.cfg.Window,
		LocalWindow:     p.cfg.LocalWindow,
		KaMThreshold:    p.cfg.KaMThreshold,
		Technique:       p.cfg.Technique.Name(),
		Functions:       len(p.cfg.Assignment),
		Detector:        p.detector.Snapshot(),
		TotalDowngrades: p.totalDowngrades,
		PeakMinutes:     p.peakMinutes,
	}
	for _, h := range p.histories {
		s.Histories = append(s.Histories, h.Snapshot())
	}
	for fn := range p.cfg.Assignment {
		ring := &p.plans[fn]
		var entries []PlanEntry
		for i, minute := range ring.minutes {
			if minute >= 0 {
				entries = append(entries, PlanEntry{
					Minute:  minute,
					Variant: ring.variants[i],
					Prob:    ring.probs[i],
				})
			}
		}
		s.Plans = append(s.Plans, entries)
		s.PriorityCounts = append(s.PriorityCounts, p.global.Priority().Count(fn))
	}
	return s
}

// Restore builds a PULSE controller from a configuration and a snapshot
// previously taken with a compatible configuration.
func Restore(cfg Config, s PulseSnapshot) (*Pulse, error) {
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	eff := p.Config()
	if s.Window != eff.Window || s.LocalWindow != eff.LocalWindow ||
		s.KaMThreshold != eff.KaMThreshold || s.Technique != eff.Technique.Name() {
		return nil, fmt.Errorf("core: snapshot taken under different configuration (window %d/%d, local %d/%d, KM_T %v/%v, technique %s/%s)",
			s.Window, eff.Window, s.LocalWindow, eff.LocalWindow,
			s.KaMThreshold, eff.KaMThreshold, s.Technique, eff.Technique.Name())
	}
	if s.Functions != len(eff.Assignment) || len(s.Histories) != s.Functions || len(s.PriorityCounts) != s.Functions {
		return nil, fmt.Errorf("core: snapshot covers %d functions (%d histories, %d priorities), config has %d",
			s.Functions, len(s.Histories), len(s.PriorityCounts), len(eff.Assignment))
	}
	if len(s.Plans) != 0 && len(s.Plans) != s.Functions {
		return nil, fmt.Errorf("core: snapshot has %d plan sets for %d functions", len(s.Plans), s.Functions)
	}
	for fn, hs := range s.Histories {
		h, err := restoreHistory(eff.LocalWindow, hs)
		if err != nil {
			return nil, fmt.Errorf("core: function %d: %w", fn, err)
		}
		p.histories[fn] = h
	}
	for fn, entries := range s.Plans {
		fam := eff.Catalog.Families[eff.Assignment[fn]]
		for _, e := range entries {
			if e.Minute < 0 {
				return nil, fmt.Errorf("core: function %d plan at negative minute %d", fn, e.Minute)
			}
			if e.Variant < 0 || e.Variant >= fam.NumVariants() {
				return nil, fmt.Errorf("core: function %d plan keeps invalid variant %d", fn, e.Variant)
			}
			p.plans[fn].set(e.Minute, e.Variant, e.Prob)
		}
	}
	for fn, c := range s.PriorityCounts {
		if c < 0 {
			return nil, fmt.Errorf("core: snapshot priority count %v for function %d", c, fn)
		}
		for i := 0; i < int(c); i++ {
			if err := p.global.Priority().Bump(fn); err != nil {
				return nil, err
			}
		}
	}
	d, err := restoreDetector(eff.KaMThreshold, eff.LocalWindow, eff.PriorMode, s.Detector)
	if err != nil {
		return nil, err
	}
	p.detector = d
	p.totalDowngrades = s.TotalDowngrades
	p.peakMinutes = s.PeakMinutes
	return p, nil
}

// resumeMinute returns the next minute the restored controller expects;
// exposed for the metastore's convenience API.
func (p *Pulse) resumeMinute() int { return p.detector.Elapsed() }

// ResumeMinute returns the minute index a restored controller should next
// be driven at (the number of minutes it has already recorded). Driving it
// at a later minute is safe — histories treat the gap as inactivity — but
// an earlier minute would run time backwards.
func (p *Pulse) ResumeMinute() int { return p.resumeMinute() }

var _ cluster.Policy = (*Pulse)(nil)
