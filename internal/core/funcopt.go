// Package core implements PULSE, the paper's primary contribution: a
// dynamic keep-alive controller for serverless ML inference that blends
// model quality variants inside the 10-minute keep-alive window.
//
// It has two cooperating parts, mirroring Figure 3:
//
//   - the function-centric optimizer (funcopt.go): per-function
//     inter-arrival probability estimation over two histories and a greedy
//     probability-threshold rule selecting which variant to keep alive at
//     each minute of the window;
//   - the global optimizer (peak.go, globalopt.go): keep-alive-memory peak
//     detection (Algorithm 1) and the utility-value downgrade loop
//     (Algorithm 2) that flattens peaks without bias.
//
// pulse.go assembles both into a cluster.Policy.
package core

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/stats"
)

// HistoryBlend selects which inter-arrival histories feed the probability
// estimate. The paper uses both ("we employ two time periods"); the
// single-history modes exist for the ablation benchmarks.
type HistoryBlend int

// History blending modes.
const (
	BlendBoth HistoryBlend = iota // average of local-window and full-history probabilities (paper)
	BlendLocalOnly
	BlendGlobalOnly
)

// timedGap is an inter-arrival observation tagged with the minute it was
// observed, so local-window observations can age out.
type timedGap struct {
	minute int
	gap    int
}

// History is one function's view into an inter-arrival history arena: the
// two observation periods the paper uses — the full operating history and a
// sliding local window of the immediate past — stored in the arena's flat
// slot-indexed slabs (see arena.go). The controller holds one arena for all
// of its functions; a standalone History built with NewHistory owns a
// single-slot arena of its own.
type History struct {
	ar *histArena
	fn int
}

// NewHistory creates a history with the given local window length in
// minutes. Non-positive lengths are rejected.
func NewHistory(localWindow int) (*History, error) {
	ar, err := newHistArena(localWindow, 1)
	if err != nil {
		return nil, err
	}
	return &History{ar: ar}, nil
}

// LastInvocation returns the minute of the most recent recorded
// invocation, or -1 before any.
func (h *History) LastInvocation() int { return h.ar.lastInv[h.fn] }

// Observations returns the number of inter-arrival observations in the
// full history.
func (h *History) Observations() int { return h.ar.gTotal[h.fn] }

// Record registers an invocation at minute t (t must not decrease across
// calls). The inter-arrival gap since the previous invocation, measured in
// minutes, enters both histories; observations older than the local window
// age out of the local history.
func (h *History) Record(t int) error { return h.ar.record(h.fn, t) }

// Probability estimates the probability that the function's next
// inter-arrival equals gap minutes: the average of the empirical
// probabilities from the local window and the full history ("we calculate
// the average of the probabilities obtained for both periods"). An empty
// history contributes zero to the average, so a function with no local
// observations falls back to half its global estimate — conservative
// toward cheaper variants.
func (h *History) Probability(gap int, blend HistoryBlend) float64 {
	return h.ar.probability(h.fn, gap, blend)
}

// Probabilities evaluates Probability for every offset 1..window and
// returns them indexed by offset (index 0 unused).
func (h *History) Probabilities(window int, blend HistoryBlend) []float64 {
	out := make([]float64, window+1)
	for d := 1; d <= window; d++ {
		out[d] = h.Probability(d, blend)
	}
	return out
}

// ThresholdTechnique maps an invocation probability to the variant index to
// keep alive, for a family with n variants. Implementations must respect
// the paper's general principle: higher probability never selects a
// lower-quality variant.
type ThresholdTechnique interface {
	// Name identifies the technique in reports ("T1", "T2").
	Name() string
	// Select returns the variant index in [0, n) for probability p ∈ [0,1].
	Select(p float64, n int) int
}

// TechniqueT1 is the paper's primary greedy rule: the probability space
// [0,1] is divided into n equal areas by the n−1 thresholds 1/n, 2/n, …,
// (n−1)/n, and "the lowest accuracy variant is assigned to the area with
// the lowest probabilities and so on".
type TechniqueT1 struct{}

// Name implements ThresholdTechnique.
func (TechniqueT1) Name() string { return "T1" }

// Select implements ThresholdTechnique.
func (TechniqueT1) Select(p float64, n int) int {
	if n <= 1 {
		return 0
	}
	p = stats.Clamp01(p)
	idx := int(p * float64(n))
	if idx >= n {
		idx = n - 1 // p == 1 belongs to the top area
	}
	return idx
}

// TechniqueT2 is the evaluation's alternative rule (Figure 10): the lowest
// variant is reserved for probability exactly zero, and the remaining
// (0, 1] range is divided into n−1 areas over the n−1 higher variants
// using n−2 thresholds.
type TechniqueT2 struct{}

// Name implements ThresholdTechnique.
func (TechniqueT2) Name() string { return "T2" }

// Select implements ThresholdTechnique.
func (TechniqueT2) Select(p float64, n int) int {
	if n <= 1 {
		return 0
	}
	p = stats.Clamp01(p)
	if p == 0 {
		return 0
	}
	if n == 2 {
		return 1
	}
	idx := 1 + int(p*float64(n-1))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Schedule computes the keep-alive plan for one keep-alive window following
// an invocation: for each offset minute 1..window, the variant index to
// keep alive, selected by the technique from the offset's invocation
// probability. Every offset keeps at least the lowest variant alive —
// "PULSE ensures that at least the container with low-quality model is
// kept alive every 10 minutes after an invocation".
//
// The returned slice is indexed by offset (index 0 unused, set to -1).
func Schedule(probs []float64, tech ThresholdTechnique, numVariants int) ([]int, error) {
	if numVariants <= 0 {
		return nil, fmt.Errorf("core: schedule needs ≥1 variant, got %d", numVariants)
	}
	if tech == nil {
		return nil, fmt.Errorf("core: nil threshold technique")
	}
	if len(probs) < 2 {
		return nil, fmt.Errorf("core: probabilities cover no offsets")
	}
	out := make([]int, len(probs))
	out[0] = -1
	for d := 1; d < len(probs); d++ {
		v := tech.Select(probs[d], numVariants)
		if v < 0 || v >= numVariants {
			return nil, fmt.Errorf("core: technique %s selected invalid variant %d of %d", tech.Name(), v, numVariants)
		}
		out[d] = v
	}
	return out, nil
}
