package core

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func pulseTestSetup(t *testing.T, seed int64, horizon int) (*trace.Trace, *models.Catalog, models.Assignment) {
	t.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: seed, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	return tr, cat, asg
}

func TestNewValidation(t *testing.T) {
	cat := models.PaperCatalog()
	if _, err := New(Config{Catalog: nil, Assignment: models.Assignment{0}}); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := New(Config{Catalog: cat, Assignment: models.Assignment{}}); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := New(Config{Catalog: cat, Assignment: models.Assignment{99}}); err == nil {
		t.Error("bad assignment accepted")
	}
	p, err := New(Config{Catalog: cat, Assignment: models.Assignment{0}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.Window != 10 || cfg.LocalWindow != 60 || cfg.KaMThreshold != 0.10 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Technique.Name() != "T1" {
		t.Errorf("default technique = %s", cfg.Technique.Name())
	}
	if p.Name() != "pulse-T1" {
		t.Errorf("name = %q", p.Name())
	}
	p2, err := New(Config{Catalog: cat, Assignment: models.Assignment{0}, DisableGlobalOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name() != "pulse-T1-noglobal" {
		t.Errorf("noglobal name = %q", p2.Name())
	}
}

func TestPulseKeepsLowVariantAliveAfterInvocation(t *testing.T) {
	cat := models.PaperCatalog()
	asg := models.Assignment{0} // GPT, 3 variants
	p, err := New(Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	// Before anything: nothing alive.
	if got := p.KeepAlive(0); got[0] != cluster.NoVariant {
		t.Errorf("pre-invocation alive = %d", got[0])
	}
	p.RecordInvocations(0, []int{1})
	// First invocation ever: all probabilities zero, but the low-quality
	// guarantee keeps variant 0 alive for the whole window.
	for tt := 1; tt <= 10; tt++ {
		if got := p.KeepAlive(tt); got[0] != 0 {
			t.Errorf("minute %d: alive = %d, want lowest variant", tt, got[0])
		}
		p.RecordInvocations(tt, []int{0})
	}
	// Window expired at minute 11.
	if got := p.KeepAlive(11); got[0] != cluster.NoVariant {
		t.Errorf("minute 11: alive = %d, want none", got[0])
	}
}

func TestPulseUpgradesOnStrongPattern(t *testing.T) {
	cat := models.PaperCatalog()
	asg := models.Assignment{0} // GPT: 3 variants, thresholds 1/3 and 2/3
	p, err := New(Config{Catalog: cat, Assignment: asg, DisableGlobalOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly periodic every 2 minutes: P(gap=2) → 1 (blended of two
	// identical histories), so offset 2 should select the highest variant.
	tt := 0
	for i := 0; i < 30; i++ {
		p.KeepAlive(tt)
		p.RecordInvocations(tt, []int{1})
		tt += 2
		p.KeepAlive(tt - 1)
		p.RecordInvocations(tt-1, []int{0})
	}
	alive := p.KeepAlive(tt) // offset 2 after the last invocation at tt-2
	if alive[0] != 2 {
		t.Errorf("offset-2 variant = %d, want highest (2)", alive[0])
	}
	// Offset 1 has probability 0 → lowest variant, not none.
	p.RecordInvocations(tt, []int{1})
	alive = p.KeepAlive(tt + 1)
	if alive[0] != 0 {
		t.Errorf("offset-1 variant = %d, want lowest (0)", alive[0])
	}
}

func TestPulseEndToEndAgainstOpenWhisk(t *testing.T) {
	tr, cat, asg := pulseTestSetup(t, 17, 3*trace.MinutesPerDay)
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}

	pulse, err := New(Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	rPulse, err := cluster.Run(cfg, pulse)
	if err != nil {
		t.Fatal(err)
	}
	ow, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	rOW, err := cluster.Run(cfg, ow)
	if err != nil {
		t.Fatal(err)
	}

	// Headline shape: PULSE cuts keep-alive cost substantially (paper:
	// 39.5%) with only a small accuracy drop (paper: 0.6%).
	if rPulse.KeepAliveCostUSD >= rOW.KeepAliveCostUSD {
		t.Errorf("PULSE cost %v not below OpenWhisk %v", rPulse.KeepAliveCostUSD, rOW.KeepAliveCostUSD)
	}
	saving := 1 - rPulse.KeepAliveCostUSD/rOW.KeepAliveCostUSD
	if saving < 0.15 {
		t.Errorf("cost saving only %.1f%%, expected a substantial cut", saving*100)
	}
	accDrop := rOW.MeanAccuracyPct() - rPulse.MeanAccuracyPct()
	if accDrop < 0 {
		t.Errorf("PULSE accuracy above all-high baseline? drop = %v", accDrop)
	}
	if accDrop > 5 {
		t.Errorf("accuracy drop %.2f%% too large (paper: ≈0.6%%)", accDrop)
	}
	// Warm-start parity: PULSE's low-quality floor keeps a container alive
	// whenever OpenWhisk would; only peak-time evictions can cost warm
	// starts, so it must be close.
	if rPulse.WarmStarts < rOW.WarmStarts*95/100 {
		t.Errorf("PULSE warm starts %d far below OpenWhisk %d", rPulse.WarmStarts, rOW.WarmStarts)
	}
	if rPulse.Invocations != rOW.Invocations {
		t.Errorf("invocation counts differ: %d vs %d", rPulse.Invocations, rOW.Invocations)
	}
}

func TestPulseGlobalOptSmoothsPeaks(t *testing.T) {
	tr, cat, asg := pulseTestSetup(t, 23, 3*trace.MinutesPerDay)
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}

	run := func(disableGlobal bool) (*cluster.Result, *Pulse) {
		t.Helper()
		p, err := New(Config{Catalog: cat, Assignment: asg, DisableGlobalOpt: disableGlobal})
		if err != nil {
			t.Fatal(err)
		}
		r, err := cluster.Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		return r, p
	}
	rFull, pFull := run(false)
	rNoGlobal, pNoGlobal := run(true)

	if pNoGlobal.TotalDowngrades() != 0 || pNoGlobal.PeakMinutes() != 0 {
		t.Error("disabled global optimizer still downgraded")
	}
	if pFull.TotalDowngrades() == 0 {
		t.Error("full PULSE never downgraded on a bursty trace")
	}
	if pFull.PeakMinutes() == 0 {
		t.Error("full PULSE never detected a peak")
	}
	// The global optimizer can only remove keep-alive memory, so its
	// keep-alive cost is at most the individual-only configuration's.
	if rFull.KeepAliveCostUSD > rNoGlobal.KeepAliveCostUSD+1e-9 {
		t.Errorf("global opt increased cost: %v > %v", rFull.KeepAliveCostUSD, rNoGlobal.KeepAliveCostUSD)
	}
	// Per-minute memory is pointwise bounded by the no-global run except
	// where identical.
	for tt := range rFull.PerMinuteKaMMB {
		if rFull.PerMinuteKaMMB[tt] > rNoGlobal.PerMinuteKaMMB[tt]+1e-9 {
			t.Fatalf("minute %d: global opt kept MORE memory (%v > %v)",
				tt, rFull.PerMinuteKaMMB[tt], rNoGlobal.PerMinuteKaMMB[tt])
		}
	}
}

func TestPulseT2AlsoWorks(t *testing.T) {
	tr, cat, asg := pulseTestSetup(t, 31, 2*trace.MinutesPerDay)
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}
	p, err := New(Config{Catalog: cat, Assignment: asg, Technique: TechniqueT2{}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "pulse-T2" {
		t.Errorf("name = %q", p.Name())
	}
	r, err := cluster.Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Invocations == 0 || r.WarmStarts == 0 {
		t.Error("T2 run produced no activity")
	}
}

func TestPulseDeterministic(t *testing.T) {
	tr, cat, asg := pulseTestSetup(t, 41, trace.MinutesPerDay)
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}
	var prev *cluster.Result
	for i := 0; i < 2; i++ {
		p, err := New(Config{Catalog: cat, Assignment: asg})
		if err != nil {
			t.Fatal(err)
		}
		r, err := cluster.Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if r.KeepAliveCostUSD != prev.KeepAliveCostUSD ||
				r.TotalServiceSec != prev.TotalServiceSec ||
				r.AccuracySumPct != prev.AccuracySumPct {
				t.Error("PULSE runs are not deterministic")
			}
		}
		prev = r
	}
}

func TestPulseAccessors(t *testing.T) {
	cat := models.PaperCatalog()
	p, err := New(Config{Catalog: cat, Assignment: models.Assignment{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.History(0) == nil || p.History(1) == nil {
		t.Error("histories missing")
	}
	if p.History(-1) != nil || p.History(2) != nil {
		t.Error("out-of-range history should be nil")
	}
	if p.Detector() == nil {
		t.Error("detector missing")
	}
	if got := p.ColdVariant(0, 0); got != cat.Families[0].NumVariants()-1 {
		t.Errorf("cold variant = %d, want highest", got)
	}
}

func BenchmarkPulseDecisionMinute(b *testing.B) {
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 1, Horizon: trace.MinutesPerDay})
	if err != nil {
		b.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	p, err := New(Config{Catalog: cat, Assignment: asg})
	if err != nil {
		b.Fatal(err)
	}
	counts := make([]int, len(asg))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Time must be monotone for the histories; the trace wraps.
		p.KeepAlive(i)
		for fn := range counts {
			counts[fn] = tr.Functions[fn].Counts[i%tr.Horizon]
		}
		p.RecordInvocations(i, counts)
	}
}
