package core

// The differential equivalence harness is the proof obligation behind the
// sharded controller: for a matrix of workloads (seeded synthetic mixes at
// several scales plus an Azure-CSV-derived trace) and configurations, a
// controller with shards=1 and a controller with shards=N must produce
// identical per-minute decisions, keep-alive memory series, cost,
// downgrade counts, peak minutes, and — when instrumented — an identical
// audit event stream. CI runs this suite under -race (see the sharded job
// and `make test-parallel`).

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// differentialWorkload is one trace of the equivalence matrix.
type differentialWorkload struct {
	name string
	tr   *trace.Trace
}

// differentialWorkloads builds the trace matrix: the default Azure-like
// mix, a bursty/sporadic mix scaled to several functions per shard, and a
// trace round-tripped through the Azure Functions CSV format.
func differentialWorkloads(t testing.TB) []differentialWorkload {
	t.Helper()
	azureLike, err := trace.Generate(trace.GeneratorConfig{Seed: 7, Horizon: 2 * trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}

	var scaled []trace.Archetype
	for i := 0; i < 4; i++ {
		scaled = append(scaled,
			trace.Bursty{BurstsPerDay: 12, BurstLen: 7, BurstRate: 4, QuietRate: 0.05},
			trace.Sporadic{MeanGap: 37},
			trace.Periodic{Period: 11, Jitter: 2},
			trace.Poisson{Rate: 0.4},
			trace.HeavyTailed{Alpha: 1.6, Scale: 13},
			trace.Diurnal{Base: 0.02, Amplitude: 1.2, PeakMinute: 600},
		)
	}
	burstySporadic, err := trace.Generate(trace.GeneratorConfig{Seed: 11, Horizon: trace.MinutesPerDay, Archetypes: scaled})
	if err != nil {
		t.Fatal(err)
	}

	// Azure-derived: write the synthetic mix in the Azure Functions CSV
	// day-file format and read it back, so the replay path users of the
	// real dataset exercise feeds the matrix too.
	seed, err := trace.Generate(trace.GeneratorConfig{Seed: 23, Horizon: trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	var day bytes.Buffer
	if err := trace.WriteAzureCSV(seed, &day); err != nil {
		t.Fatal(err)
	}
	azureCSV, err := trace.ReadAzureCSV(trace.AzureReadOptions{}, bytes.NewReader(day.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	return []differentialWorkload{
		{name: "azure-like-2d", tr: azureLike},
		{name: "bursty-sporadic-24fn", tr: burstySporadic},
		{name: "azure-csv-derived", tr: azureCSV},
	}
}

// differentialConfigs returns the controller configurations of the matrix.
func differentialConfigs() map[string]Config {
	return map[string]Config{
		"default-T1":    {},
		"T2-evict":      {Technique: TechniqueT2{}, Step: StepByOneEvict},
		"tight-KM-T":    {KaMThreshold: 0.05, LocalWindow: 30},
		"random-victim": {RandomDowngradeSeed: 99},
	}
}

func differentialShardCounts() []int {
	counts := []int{2, 7}
	if n := runtime.NumCPU(); n > 1 && n != 7 {
		counts = append(counts, n)
	}
	return counts
}

func uniformAssignment(cat *models.Catalog, nFn int) models.Assignment {
	asg := make(models.Assignment, nFn)
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	return asg
}

// TestDifferentialShardedDecisions drives a serial and a sharded
// controller minute by minute over the same workload and requires
// identical decision vectors and invocation-probability candidates every
// minute, plus identical downgrade and peak counters at the end.
func TestDifferentialShardedDecisions(t *testing.T) {
	cat := models.PaperCatalog()
	for _, wl := range differentialWorkloads(t) {
		for cfgName, cfg := range differentialConfigs() {
			for _, shards := range differentialShardCounts() {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", wl.name, cfgName, shards), func(t *testing.T) {
					asg := uniformAssignment(cat, len(wl.tr.Functions))
					mk := func(shards int) *Pulse {
						c := cfg
						c.Catalog = cat
						c.Assignment = asg
						c.Shards = shards
						p, err := New(c)
						if err != nil {
							t.Fatal(err)
						}
						return p
					}
					serial := mk(1)
					sharded := mk(shards)
					defer sharded.Close()
					if got := sharded.Shards(); got != shards && shards <= len(asg) {
						t.Fatalf("effective shards = %d, want %d", got, shards)
					}

					counts := make([]int, len(asg))
					for tm := 0; tm < wl.tr.Horizon; tm++ {
						a := serial.KeepAlive(tm)
						b := sharded.KeepAlive(tm)
						for fn := range a {
							if a[fn] != b[fn] {
								t.Fatalf("minute %d function %d: serial keeps %d, sharded keeps %d", tm, fn, a[fn], b[fn])
							}
							if serial.ip[fn] != sharded.ip[fn] {
								t.Fatalf("minute %d function %d: candidate probability %v vs %v", tm, fn, serial.ip[fn], sharded.ip[fn])
							}
						}
						for fn := range counts {
							counts[fn] = wl.tr.Functions[fn].Counts[tm]
						}
						serial.RecordInvocations(tm, counts)
						sharded.RecordInvocations(tm, counts)
					}
					if serial.TotalDowngrades() != sharded.TotalDowngrades() {
						t.Errorf("downgrades: serial %d, sharded %d", serial.TotalDowngrades(), sharded.TotalDowngrades())
					}
					if serial.PeakMinutes() != sharded.PeakMinutes() {
						t.Errorf("peak minutes: serial %d, sharded %d", serial.PeakMinutes(), sharded.PeakMinutes())
					}
				})
			}
		}
	}
}

// TestDifferentialShardedSimulation runs the full engine over each
// workload with both controller shard counts and the engine's own scan
// sharding, requiring the entire Result — cost, per-minute keep-alive
// memory series, service times, accuracy — to match exactly, not within a
// tolerance: nothing in the sharded paths may re-associate a float sum.
func TestDifferentialShardedSimulation(t *testing.T) {
	cat := models.PaperCatalog()
	for _, wl := range differentialWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			asg := uniformAssignment(cat, len(wl.tr.Functions))
			run := func(controllerShards, engineShards int) (*cluster.Result, *Pulse) {
				p, err := New(Config{Catalog: cat, Assignment: asg, Shards: controllerShards})
				if err != nil {
					t.Fatal(err)
				}
				res, err := cluster.Run(cluster.Config{
					Trace:              wl.tr,
					Catalog:            cat,
					Assignment:         asg,
					Cost:               cluster.DefaultCostModel(),
					RecordServiceTimes: true,
					Shards:             engineShards,
				}, p)
				if err != nil {
					t.Fatal(err)
				}
				return res, p
			}
			base, basePulse := run(1, 1)
			defer basePulse.Close()
			for _, shards := range differentialShardCounts() {
				got, gotPulse := run(shards, shards)
				if got.KeepAliveCostUSD != base.KeepAliveCostUSD {
					t.Errorf("shards=%d: cost %v, want %v", shards, got.KeepAliveCostUSD, base.KeepAliveCostUSD)
				}
				if got.WarmStarts != base.WarmStarts || got.ColdStarts != base.ColdStarts || got.Invocations != base.Invocations {
					t.Errorf("shards=%d: starts %d/%d/%d, want %d/%d/%d", shards,
						got.WarmStarts, got.ColdStarts, got.Invocations,
						base.WarmStarts, base.ColdStarts, base.Invocations)
				}
				if got.TotalServiceSec != base.TotalServiceSec {
					t.Errorf("shards=%d: service %v, want %v", shards, got.TotalServiceSec, base.TotalServiceSec)
				}
				if got.AccuracySumPct != base.AccuracySumPct {
					t.Errorf("shards=%d: accuracy sum %v, want %v", shards, got.AccuracySumPct, base.AccuracySumPct)
				}
				if !reflect.DeepEqual(got.PerMinuteKaMMB, base.PerMinuteKaMMB) {
					t.Errorf("shards=%d: per-minute KaM series diverges", shards)
				}
				if !reflect.DeepEqual(got.PerMinuteCostUSD, base.PerMinuteCostUSD) {
					t.Errorf("shards=%d: per-minute cost series diverges", shards)
				}
				if !reflect.DeepEqual(got.ServiceTimesSec, base.ServiceTimesSec) {
					t.Errorf("shards=%d: service-time series diverges", shards)
				}
				if gotPulse.TotalDowngrades() != basePulse.TotalDowngrades() {
					t.Errorf("shards=%d: downgrades %d, want %d", shards, gotPulse.TotalDowngrades(), basePulse.TotalDowngrades())
				}
				if gotPulse.PeakMinutes() != basePulse.PeakMinutes() {
					t.Errorf("shards=%d: peak minutes %d, want %d", shards, gotPulse.PeakMinutes(), basePulse.PeakMinutes())
				}
				gotPulse.Close()
			}
		})
	}
}

// TestDifferentialShardedAuditStream attaches a Recorder to serial and
// sharded controllers and requires the full instrumentation stream —
// schedules (the shard-buffered kind), peaks, and downgrades — to arrive
// in the identical order with identical payloads: the per-shard
// buffering must not reorder the audit log.
func TestDifferentialShardedAuditStream(t *testing.T) {
	cat := models.PaperCatalog()
	wl := differentialWorkloads(t)[0]
	asg := uniformAssignment(cat, len(wl.tr.Functions))
	for _, shards := range differentialShardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(shards int) *telemetry.Recorder {
				rec := &telemetry.Recorder{}
				p, err := New(Config{Catalog: cat, Assignment: asg, Shards: shards, Observer: rec})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				counts := make([]int, len(asg))
				for tm := 0; tm < wl.tr.Horizon; tm++ {
					p.KeepAlive(tm)
					for fn := range counts {
						counts[fn] = wl.tr.Functions[fn].Counts[tm]
					}
					p.RecordInvocations(tm, counts)
				}
				return rec
			}
			serial := run(1)
			sharded := run(shards)
			if !reflect.DeepEqual(serial.Schedules, sharded.Schedules) {
				t.Errorf("schedule streams diverge: serial %d samples, sharded %d", len(serial.Schedules), len(sharded.Schedules))
			}
			if !reflect.DeepEqual(serial.Peaks, sharded.Peaks) {
				t.Errorf("peak streams diverge: serial %d samples, sharded %d", len(serial.Peaks), len(sharded.Peaks))
			}
			if !reflect.DeepEqual(serial.Downgrades, sharded.Downgrades) {
				t.Errorf("downgrade streams diverge: serial %d samples, sharded %d", len(serial.Downgrades), len(sharded.Downgrades))
			}
		})
	}
}

// TestDifferentialShardedSnapshot checks that controller state is
// portable across shard counts: a snapshot taken mid-run on a sharded
// controller restores into any other shard count and resumes with
// identical decisions.
func TestDifferentialShardedSnapshot(t *testing.T) {
	cat := models.PaperCatalog()
	wl := differentialWorkloads(t)[1]
	asg := uniformAssignment(cat, len(wl.tr.Functions))
	cfg := Config{Catalog: cat, Assignment: asg}

	cfgA := cfg
	cfgA.Shards = 4
	a, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	counts := make([]int, len(asg))
	cut := wl.tr.Horizon / 2
	for tm := 0; tm < cut; tm++ {
		a.KeepAlive(tm)
		for fn := range counts {
			counts[fn] = wl.tr.Functions[fn].Counts[tm]
		}
		a.RecordInvocations(tm, counts)
	}

	cfgB := cfg
	cfgB.Shards = 1
	b, err := Restore(cfgB, a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for tm := cut; tm < wl.tr.Horizon; tm++ {
		da := append([]int(nil), a.KeepAlive(tm)...)
		db := b.KeepAlive(tm)
		for fn := range da {
			if da[fn] != db[fn] {
				t.Fatalf("minute %d function %d: sharded resumes with %d, serial restore with %d", tm, fn, da[fn], db[fn])
			}
		}
		for fn := range counts {
			counts[fn] = wl.tr.Functions[fn].Counts[tm]
		}
		a.RecordInvocations(tm, counts)
		b.RecordInvocations(tm, counts)
	}
}

// TestDifferentialShardedKaMSeries cross-checks the committed keep-alive
// memory the peak detector records: both controllers must agree on every
// minute's final (post-flatten) keep-alive memory, the quantity Algorithm
// 1 compares priors against.
func TestDifferentialShardedKaMSeries(t *testing.T) {
	cat := models.PaperCatalog()
	wl := differentialWorkloads(t)[2]
	asg := uniformAssignment(cat, len(wl.tr.Functions))
	series := func(shards int) []float64 {
		c := Config{Catalog: cat, Assignment: asg, Shards: shards}
		p, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		counts := make([]int, len(asg))
		var out []float64
		for tm := 0; tm < wl.tr.Horizon; tm++ {
			decisions := p.KeepAlive(tm)
			var kam float64
			for fn, vi := range decisions {
				if vi >= 0 {
					kam += cat.Families[asg[fn]].Variants[vi].MemoryMB
				}
			}
			out = append(out, kam)
			for fn := range counts {
				counts[fn] = wl.tr.Functions[fn].Counts[tm]
			}
			p.RecordInvocations(tm, counts)
		}
		return out
	}
	base := series(1)
	for _, shards := range differentialShardCounts() {
		got := series(shards)
		for tm := range base {
			if math.Abs(got[tm]-base[tm]) != 0 {
				t.Fatalf("shards=%d minute %d: KaM %v, want %v", shards, tm, got[tm], base[tm])
			}
		}
	}
}

// TestDifferentialShardedAttribution attaches a counterfactual accountant
// to serial and sharded runs of the full engine and requires the
// attribution output — the complete per-function report and every time
// series — to be deeply equal, not approximately: attribution happens on
// the coordinator from the shard-ordered event stream, so shard count
// must be invisible to the savings numbers.
func TestDifferentialShardedAttribution(t *testing.T) {
	cat := models.PaperCatalog()
	for _, wl := range differentialWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			asg := uniformAssignment(cat, len(wl.tr.Functions))
			run := func(shards int) *attribution.Accountant {
				acct, err := attribution.New(attribution.Config{
					Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel(),
				})
				if err != nil {
					t.Fatal(err)
				}
				p, err := New(Config{Catalog: cat, Assignment: asg, Shards: shards, Observer: acct})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				if _, err := cluster.Run(cluster.Config{
					Trace: wl.tr, Catalog: cat, Assignment: asg,
					Cost: cluster.DefaultCostModel(), Shards: shards, Observer: acct,
				}, p); err != nil {
					t.Fatal(err)
				}
				return acct
			}
			base := run(1)
			baseRep := base.Report()
			for _, shards := range differentialShardCounts() {
				got := run(shards)
				if rep := got.Report(); !reflect.DeepEqual(rep, baseRep) {
					t.Errorf("shards=%d: attribution report diverges\nserial total:  %+v\nsharded total: %+v",
						shards, baseRep.Total, rep.Total)
				}
				for _, name := range attribution.MetricNames() {
					m, err := attribution.ParseMetric(name)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Series(m, wl.tr.Horizon, false), base.Series(m, wl.tr.Horizon, false)) {
						t.Errorf("shards=%d: series %s diverges from serial", shards, name)
					}
				}
			}
		})
	}
}
