package core

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func TestHistorySnapshotRoundTrip(t *testing.T) {
	h, err := NewHistory(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{0, 3, 5, 9, 30, 33} {
		if err := h.Record(m); err != nil {
			t.Fatal(err)
		}
	}
	snap := h.Snapshot()
	back, err := restoreHistory(20, snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.LastInvocation() != h.LastInvocation() {
		t.Errorf("lastInv: %d vs %d", back.LastInvocation(), h.LastInvocation())
	}
	if back.Observations() != h.Observations() {
		t.Errorf("observations: %d vs %d", back.Observations(), h.Observations())
	}
	for gap := 1; gap <= 30; gap++ {
		for _, blend := range []HistoryBlend{BlendBoth, BlendLocalOnly, BlendGlobalOnly} {
			if a, b := h.Probability(gap, blend), back.Probability(gap, blend); a != b {
				t.Fatalf("gap %d blend %d: %v vs %v", gap, blend, a, b)
			}
		}
	}
}

func TestRestoreHistoryRejectsBadCounts(t *testing.T) {
	if _, err := restoreHistory(10, HistorySnapshot{Global: []GapCount{{Gap: 1, Count: 0}}}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := restoreHistory(10, HistorySnapshot{Global: []GapCount{{Gap: -1, Count: 1}}}); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestDetectorSnapshotRoundTrip(t *testing.T) {
	d, err := NewPeakDetector(0.1, 5, PriorAlgorithm1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kam := range []float64{100, 200, 0, 300, 0} {
		if err := d.Record(kam); err != nil {
			t.Fatal(err)
		}
	}
	snap := d.Snapshot()
	back, err := restoreDetector(0.1, 5, PriorAlgorithm1, snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Elapsed() != d.Elapsed() {
		t.Errorf("elapsed: %d vs %d", back.Elapsed(), d.Elapsed())
	}
	if back.PriorKaM() != d.PriorKaM() {
		t.Errorf("prior: %v vs %v", back.PriorKaM(), d.PriorKaM())
	}
	if back.IsPeak(500) != d.IsPeak(500) {
		t.Error("peak verdicts differ after restore")
	}
}

func TestDetectorSnapshotInfinityEncodes(t *testing.T) {
	// A never-active detector carries +Inf lastNonZero, which must survive
	// a JSON round trip (encoded as -1).
	d, err := NewPeakDetector(0.1, 3, PriorAlgorithm1)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Record(0)
	snap := d.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	var back DetectorSnapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	restored, err := restoreDetector(0.1, 3, PriorAlgorithm1, back)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(restored.PriorKaM(), 1) {
		t.Errorf("restored prior = %v, want +Inf", restored.PriorKaM())
	}
}

func TestRestoreDetectorValidation(t *testing.T) {
	if _, err := restoreDetector(0.1, 3, PriorAlgorithm1, DetectorSnapshot{Elapsed: -1}); err == nil {
		t.Error("negative elapsed accepted")
	}
	if _, err := restoreDetector(0.1, 3, PriorAlgorithm1, DetectorSnapshot{Window: []float64{1, 2, 3, 4}}); err == nil {
		t.Error("oversized window accepted")
	}
	if _, err := restoreDetector(0.1, 3, PriorAlgorithm1, DetectorSnapshot{Window: []float64{-5}}); err == nil {
		t.Error("negative window value accepted")
	}
}

// The controller-level invariant: running a trace straight through equals
// running half, snapshotting, restoring, and running the rest.
func TestPulseSnapshotResumesIdentically(t *testing.T) {
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 19, Horizon: 8 * 60})
	if err != nil {
		t.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	cfg := Config{Catalog: cat, Assignment: asg}

	drive := func(p *Pulse, from, to int) [][]int {
		var decisions [][]int
		counts := make([]int, len(asg))
		for tt := from; tt < to; tt++ {
			d := p.KeepAlive(tt)
			cp := make([]int, len(d))
			copy(cp, d)
			decisions = append(decisions, cp)
			for fn := range counts {
				counts[fn] = tr.Functions[fn].Counts[tt]
			}
			p.RecordInvocations(tt, counts)
		}
		return decisions
	}

	// Continuous run.
	pFull, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := tr.Horizon / 2
	_ = drive(pFull, 0, half)
	wantTail := drive(pFull, half, tr.Horizon)

	// Snapshot/restore run.
	pFirst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = drive(pFirst, 0, half)
	snap := pFirst.Snapshot()

	// Round-trip the snapshot through JSON as the metastore would.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded PulseSnapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}
	pResumed, err := Restore(cfg, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if pResumed.ResumeMinute() != half {
		t.Errorf("resume minute = %d, want %d", pResumed.ResumeMinute(), half)
	}
	if pResumed.TotalDowngrades() != pFirst.TotalDowngrades() || pResumed.PeakMinutes() != pFirst.PeakMinutes() {
		t.Error("counters lost in snapshot")
	}
	gotTail := drive(pResumed, half, tr.Horizon)

	// In-flight plans are part of the snapshot, so the restored
	// controller's decisions are bit-identical from the first minute.
	for i := range wantTail {
		for fn := range wantTail[i] {
			if gotTail[i][fn] != wantTail[i][fn] {
				t.Fatalf("decisions diverge at minute %d fn %d: %d vs %d",
					half+i, fn, gotTail[i][fn], wantTail[i][fn])
			}
		}
	}
}

func TestRestoreRejectsBadPlans(t *testing.T) {
	cat := models.PaperCatalog()
	cfg := Config{Catalog: cat, Assignment: models.Assignment{0}}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	clone := func() PulseSnapshot {
		c := snap
		c.Functions = append([]FunctionSnapshot(nil), snap.Functions...)
		return c
	}
	bad := clone()
	bad.Functions[0].Plans = []PlanEntry{{Minute: -1, Variant: 0}}
	if _, err := Restore(cfg, bad); err == nil {
		t.Error("negative plan minute accepted")
	}
	bad = clone()
	bad.Functions[0].Plans = []PlanEntry{{Minute: 3, Variant: 99}}
	if _, err := Restore(cfg, bad); err == nil {
		t.Error("invalid plan variant accepted")
	}
	bad = clone()
	bad.Functions = append(bad.Functions, FunctionSnapshot{Name: "ghost", Family: 0})
	if _, err := Restore(cfg, bad); err == nil {
		t.Error("snapshot entry for an unregistered function accepted")
	}
	bad = clone()
	bad.Functions = append(bad.Functions, bad.Functions[0])
	if _, err := Restore(cfg, bad); err == nil {
		t.Error("duplicate snapshot entry accepted")
	}
	bad = clone()
	bad.Functions[0].Family = 1
	if _, err := Restore(cfg, bad); err == nil {
		t.Error("family mismatch accepted")
	}
}

func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	cat := models.PaperCatalog()
	cfg := Config{Catalog: cat, Assignment: models.Assignment{0, 1}}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()

	bad := cfg
	bad.LocalWindow = 120
	if _, err := Restore(bad, snap); err == nil {
		t.Error("local-window mismatch accepted")
	}
	bad = cfg
	bad.Technique = TechniqueT2{}
	if _, err := Restore(bad, snap); err == nil {
		t.Error("technique mismatch accepted")
	}
	bad = cfg
	bad.Assignment = models.Assignment{0}
	if _, err := Restore(bad, snap); err == nil {
		t.Error("function-count mismatch accepted")
	}
	wrongVersion := snap
	wrongVersion.Version = 99
	if _, err := Restore(cfg, wrongVersion); err == nil {
		t.Error("version mismatch accepted")
	}
	negative := snap
	negative.Functions = append([]FunctionSnapshot(nil), snap.Functions...)
	negative.Functions[0].PriorityCount = -1
	if _, err := Restore(cfg, negative); err == nil {
		t.Error("negative priority count accepted")
	}
}
