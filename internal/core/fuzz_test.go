package core

// Native Go fuzz targets for the two stateful pieces of the
// function-centric/global optimizers. CI runs them in short -fuzztime
// smoke mode (see the sharded job); locally:
//
//	go test ./internal/core -run '^$' -fuzz '^FuzzPeakDetector$' -fuzztime 30s
//	go test ./internal/core -run '^$' -fuzz '^FuzzHistoryProbabilities$' -fuzztime 30s

import (
	"math"
	"testing"
)

// FuzzPeakDetector drives Algorithm 1 with an arbitrary keep-alive memory
// sequence and checks it against a straightforward reference
// re-implementation of the documented prior rules, plus structural
// invariants: it never panics, and whenever IsPeak fires the flatten
// target is finite and strictly below the current keep-alive memory.
func FuzzPeakDetector(f *testing.F) {
	f.Add([]byte{10, 0, 0, 0, 200, 0, 0, 90, 95, 250}, 0.10, uint8(10))
	f.Add([]byte{1, 2, 3}, 0.25, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 7}, 0.05, uint8(3))
	f.Fuzz(func(t *testing.T, series []byte, threshold float64, window uint8) {
		if math.IsNaN(threshold) || math.IsInf(threshold, 0) || threshold <= 0 || threshold > 10 {
			t.Skip()
		}
		localWindow := int(window%60) + 1
		pd, err := NewPeakDetector(threshold, localWindow, PriorAlgorithm1)
		if err != nil {
			t.Fatal(err)
		}

		// Reference mirror of the documented state.
		var (
			ring        = make([]float64, 0, localWindow)
			prevKaM     = math.NaN()
			lastNonZero = math.Inf(1)
			elapsed     int
		)
		refPrior := func() float64 {
			if elapsed == 0 {
				return math.Inf(1)
			}
			if prevKaM > 0 {
				return prevKaM
			}
			var sum float64
			for _, v := range ring {
				sum += v
			}
			avg := 0.0
			if len(ring) > 0 {
				avg = sum / float64(len(ring))
			}
			if elapsed >= 2*localWindow && avg > 0 {
				return avg
			}
			return lastNonZero
		}

		for _, b := range series {
			kam := float64(b) * 8 // MB, spanning idle (0) to ~2 GB
			prior := pd.PriorKaM()
			if want := refPrior(); prior != want {
				t.Fatalf("elapsed %d: PriorKaM = %v, reference %v", elapsed, prior, want)
			}
			peak := pd.IsPeak(kam)
			target := pd.FlattenTarget()
			if peak {
				if math.IsInf(target, 1) {
					t.Fatalf("IsPeak with infinite flatten target (kam=%v)", kam)
				}
				if target >= kam {
					t.Fatalf("IsPeak but flatten target %v ≥ current %v", target, kam)
				}
			}
			if !math.IsInf(target, 1) && kam > target && !peak {
				t.Fatalf("kam %v above flatten target %v but not a peak", kam, target)
			}
			if err := pd.Record(kam); err != nil {
				t.Fatal(err)
			}
			// Advance the reference.
			if len(ring) == localWindow {
				ring = ring[1:]
			}
			ring = append(ring, kam)
			prevKaM = kam
			if kam > 0 {
				lastNonZero = kam
			}
			elapsed++
			if pd.Elapsed() != elapsed {
				t.Fatalf("Elapsed = %d, want %d", pd.Elapsed(), elapsed)
			}
		}
	})
}

// FuzzHistoryProbabilities drives History.Record with an arbitrary
// invocation pattern and checks Probabilities against a reference
// (minute, gap) queue that mirrors the documented local-window eviction,
// plus the structural invariants: every probability is in [0,1], the
// slice covers exactly the requested window, and index 0 is unused.
func FuzzHistoryProbabilities(f *testing.F) {
	f.Add([]byte{1, 0, 3, 3, 0, 0, 9, 1, 1}, uint8(10), uint8(10))
	f.Add([]byte{255, 255, 0, 255}, uint8(3), uint8(5))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, steps []byte, window uint8, localWin uint8) {
		localWindow := int(localWin%120) + 1
		probeWindow := int(window%30) + 1
		h, err := NewHistory(localWindow)
		if err != nil {
			t.Fatal(err)
		}

		type obs struct{ minute, gap int }
		var queue []obs // local-window observations, mirroring evictLocal
		last := -1
		now := 0
		for _, b := range steps {
			now += int(b % 16) // 0 = same minute again, else advance
			if last >= 0 {
				queue = append(queue, obs{minute: now, gap: now - last})
			}
			last = now
			if err := h.Record(now); err != nil {
				t.Fatal(err)
			}
			cut := now - localWindow
			for len(queue) > 0 && queue[0].minute < cut {
				queue = queue[1:]
			}

			probs := h.Probabilities(probeWindow, BlendLocalOnly)
			if len(probs) != probeWindow+1 {
				t.Fatalf("Probabilities returned %d entries for window %d", len(probs), probeWindow)
			}
			if probs[0] != 0 {
				t.Fatalf("offset 0 should be unused, got %v", probs[0])
			}
			for d := 1; d <= probeWindow; d++ {
				if probs[d] < 0 || probs[d] > 1 || math.IsNaN(probs[d]) {
					t.Fatalf("offset %d: probability %v outside [0,1]", d, probs[d])
				}
				count := 0
				for _, o := range queue {
					if o.gap == d {
						count++
					}
				}
				want := 0.0
				if len(queue) > 0 {
					want = float64(count) / float64(len(queue))
				}
				if probs[d] != want {
					t.Fatalf("minute %d offset %d: probability %v, reference %v (%d/%d)",
						now, d, probs[d], want, count, len(queue))
				}
			}
			// The blended estimate must also stay a probability.
			for d := 1; d <= probeWindow; d++ {
				if p := h.Probability(d, BlendBoth); p < 0 || p > 1 {
					t.Fatalf("blended probability %v outside [0,1]", p)
				}
			}
			if h.LastInvocation() != last {
				t.Fatalf("LastInvocation = %d, want %d", h.LastInvocation(), last)
			}
		}
	})
}

// FuzzSchedule feeds Schedule arbitrary probability bytes and asserts the
// plan invariants hold for every variant count and both techniques.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{0, 128, 255, 64}, uint8(4))
	f.Add([]byte{255}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, nv uint8) {
		if len(raw) == 0 {
			t.Skip()
		}
		n := int(nv%8) + 1
		probs := make([]float64, len(raw)+1)
		for i, b := range raw {
			probs[i+1] = float64(b) / 255
		}
		for _, tech := range []ThresholdTechnique{TechniqueT1{}, TechniqueT2{}} {
			plan, err := Schedule(probs, tech, n)
			if err != nil {
				t.Fatal(err)
			}
			if plan[0] != -1 {
				t.Fatalf("%s: offset 0 = %d, want -1", tech.Name(), plan[0])
			}
			for d := 1; d < len(plan); d++ {
				if plan[d] < 0 || plan[d] >= n {
					t.Fatalf("%s: offset %d selected variant %d of %d", tech.Name(), d, plan[d], n)
				}
			}
		}
	})
}
