package core

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

// Online function lifecycle for the controller. Slots follow the identity
// registry's append-only model: registering a function grows every
// per-function structure (history arena, plan store, decision and
// probability buffers, priority count) by one fresh slot; deregistering
// tombstones the slot in place AND releases its heavy backing state — the
// plan row returns to the free list, the history's spill and local-queue
// heap storage is dropped, and the slot leaves the active set. What remains
// is the cheap identity tombstone: a few fixed-width arena cells per slot.
// Tombstoned slots behave exactly like never-invoked functions — rowless,
// so the KeepAlive gather yields NoVariant, and the global optimizer never
// sees them as downgrade candidates. That construction is what keeps the
// static (churn-free) decision path bit-identical to the pre-lifecycle
// controller while bounding steady-state heap under churn.
//
// Both methods must be called between minutes, under the same external
// serialization as KeepAlive and RecordInvocations (the cluster engine's
// lifecycle step, the live runtime's exclusive barrier).

// RegisterFunction implements cluster.DynamicPolicy: the named function
// gets the next slot with an empty inter-arrival history and no plan, so it
// stays cold until its first recorded invocations — the paper's behaviour
// for a function the controller has never seen. Growing the per-function
// slices reallocates the state the shard workers alias, so the worker pool
// is rebuilt (repartitioned) before the call returns.
func (p *Pulse) RegisterFunction(name string, family int) (int, error) {
	if family < 0 || family >= len(p.cfg.Catalog.Families) {
		return 0, fmt.Errorf("core: family %d out of range for %q", family, name)
	}
	slot, err := p.reg.Register(name)
	if err != nil {
		return 0, err
	}
	p.cfg.Assignment = append(p.cfg.Assignment, family)
	p.cfg.Names = append(p.cfg.Names, name)
	p.hist.grow()
	p.plans.grow()
	p.active.grow()
	p.out = append(p.out, cluster.NoVariant)
	p.ip = append(p.ip, 0)
	p.global.grow(family)
	p.repartition()
	return slot, nil
}

// DeregisterFunction implements cluster.DynamicPolicy: the named function's
// slot is tombstoned and its heavy backing state released — the plan row
// returns to the free list, the slot leaves the active set, its decision is
// pinned to NoVariant, its history's heap storage (spill lists, local gap
// queue) is freed, and its downgrade priority count zeroed. The slot count
// does not change, so the shard partition stays as is; the workers observe
// the tombstone through the active flags they alias.
func (p *Pulse) DeregisterFunction(name string) error {
	slot, err := p.reg.Deregister(name)
	if err != nil {
		return err
	}
	p.active.remove(slot)
	p.plans.releaseRow(slot)
	p.out[slot] = cluster.NoVariant
	p.ip[slot] = 0
	p.hist.release(slot)
	p.global.retire(slot)
	return nil
}

// NumFunctions returns the total number of slots ever issued (active and
// tombstoned) — the length of the decision vector KeepAlive returns.
func (p *Pulse) NumFunctions() int { return len(p.out) }

// NumActive returns the number of currently registered functions.
func (p *Pulse) NumActive() int { return p.reg.NumActive() }

// FunctionName returns the name that owns (or owned) the slot; "" when out
// of range.
func (p *Pulse) FunctionName(fn int) string { return p.reg.Name(fn) }

// FunctionActive reports whether the slot is currently registered.
func (p *Pulse) FunctionActive(fn int) bool { return p.reg.Active(fn) }

var _ cluster.DynamicPolicy = (*Pulse)(nil)
