package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistoryValidation(t *testing.T) {
	if _, err := NewHistory(0); err == nil {
		t.Error("zero local window accepted")
	}
	h, err := NewHistory(60)
	if err != nil {
		t.Fatal(err)
	}
	if h.LastInvocation() != -1 || h.Observations() != 0 {
		t.Error("fresh history not empty")
	}
}

func TestHistoryRecordAndProbability(t *testing.T) {
	h, err := NewHistory(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Invocations at 0, 2, 4, 6, 9: gaps 2,2,2,3.
	for _, m := range []int{0, 2, 4, 6, 9} {
		if err := h.Record(m); err != nil {
			t.Fatal(err)
		}
	}
	if h.Observations() != 4 {
		t.Errorf("observations = %d, want 4", h.Observations())
	}
	if h.LastInvocation() != 9 {
		t.Errorf("last invocation = %d", h.LastInvocation())
	}
	// With the local window covering everything, local == global, so the
	// average equals the plain empirical probability.
	if got := h.Probability(2, BlendBoth); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(2) = %v, want 0.75", got)
	}
	if got := h.Probability(3, BlendBoth); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(3) = %v, want 0.25", got)
	}
	if got := h.Probability(7, BlendBoth); got != 0 {
		t.Errorf("P(unseen) = %v, want 0", got)
	}
}

func TestHistoryRecordErrors(t *testing.T) {
	h, _ := NewHistory(10)
	if err := h.Record(-1); err == nil {
		t.Error("negative minute accepted")
	}
	if err := h.Record(5); err != nil {
		t.Fatal(err)
	}
	if err := h.Record(3); err == nil {
		t.Error("time going backwards accepted")
	}
}

func TestHistoryLocalEviction(t *testing.T) {
	h, err := NewHistory(10)
	if err != nil {
		t.Fatal(err)
	}
	// Early phase: gaps of 1 (minutes 0..5).
	for m := 0; m <= 5; m++ {
		if err := h.Record(m); err != nil {
			t.Fatal(err)
		}
	}
	// Late phase: one invocation at 100, then gaps of 5.
	for _, m := range []int{100, 105, 110, 115} {
		if err := h.Record(m); err != nil {
			t.Fatal(err)
		}
	}
	// The local window (10 min) now holds only the gap-5 observations, so
	// the local probability of gap 1 is zero while the global still
	// remembers it: the blended estimate is half the global.
	global := h.Probability(1, BlendGlobalOnly)
	if global == 0 {
		t.Fatal("global history lost early gaps")
	}
	if got := h.Probability(1, BlendLocalOnly); got != 0 {
		t.Errorf("local P(1) = %v, want 0 after eviction", got)
	}
	if got := h.Probability(1, BlendBoth); math.Abs(got-global/2) > 1e-12 {
		t.Errorf("blended P(1) = %v, want %v", got, global/2)
	}
	// And gap 5 dominates locally.
	if got := h.Probability(5, BlendLocalOnly); got != 1 {
		t.Errorf("local P(5) = %v, want 1", got)
	}
}

func TestHistoryProbabilities(t *testing.T) {
	h, _ := NewHistory(100)
	for _, m := range []int{0, 2, 4} {
		_ = h.Record(m)
	}
	ps := h.Probabilities(10, BlendBoth)
	if len(ps) != 11 {
		t.Fatalf("len = %d", len(ps))
	}
	if ps[2] != 1 {
		t.Errorf("P(2) = %v, want 1", ps[2])
	}
	for _, d := range []int{1, 3, 10} {
		if ps[d] != 0 {
			t.Errorf("P(%d) = %v, want 0", d, ps[d])
		}
	}
}

func TestTechniqueT1Bands(t *testing.T) {
	t1 := TechniqueT1{}
	if t1.Name() != "T1" {
		t.Errorf("name = %q", t1.Name())
	}
	// n=3: thresholds at 1/3 and 2/3 divide [0,1] into 3 areas.
	cases := []struct {
		p    float64
		want int
	}{
		{0, 0}, {0.2, 0}, {1.0 / 3, 1}, {0.5, 1}, {2.0 / 3, 2}, {0.9, 2}, {1, 2},
	}
	for _, c := range cases {
		if got := t1.Select(c.p, 3); got != c.want {
			t.Errorf("T1.Select(%v, 3) = %d, want %d", c.p, got, c.want)
		}
	}
	// Single variant: always 0.
	if got := t1.Select(0.9, 1); got != 0 {
		t.Errorf("T1 single variant = %d", got)
	}
	// Out-of-range probabilities clamp.
	if got := t1.Select(-0.5, 3); got != 0 {
		t.Errorf("T1 clamp low = %d", got)
	}
	if got := t1.Select(1.5, 3); got != 2 {
		t.Errorf("T1 clamp high = %d", got)
	}
}

func TestTechniqueT2Bands(t *testing.T) {
	t2 := TechniqueT2{}
	if t2.Name() != "T2" {
		t.Errorf("name = %q", t2.Name())
	}
	// n=3: p=0 → lowest; (0,1] split into 2 areas with threshold at 1/2.
	cases := []struct {
		p    float64
		want int
	}{
		{0, 0}, {0.1, 1}, {0.49, 1}, {0.5, 2}, {0.8, 2}, {1, 2},
	}
	for _, c := range cases {
		if got := t2.Select(c.p, 3); got != c.want {
			t.Errorf("T2.Select(%v, 3) = %d, want %d", c.p, got, c.want)
		}
	}
	// n=2: p=0 → 0, anything positive → 1.
	if got := t2.Select(0, 2); got != 0 {
		t.Errorf("T2(0, 2) = %d", got)
	}
	if got := t2.Select(0.01, 2); got != 1 {
		t.Errorf("T2(0.01, 2) = %d", got)
	}
	if got := t2.Select(0.7, 1); got != 0 {
		t.Errorf("T2 single variant = %d", got)
	}
}

// Property: both techniques are monotone in p and always in range — the
// paper's "general principle of keeping alive the variant with the highest
// accuracy at higher invocation probabilities".
func TestTechniquesMonotone(t *testing.T) {
	for _, tech := range []ThresholdTechnique{TechniqueT1{}, TechniqueT2{}} {
		f := func(a, b float64, nRaw uint8) bool {
			n := int(nRaw)%6 + 1
			pa := math.Abs(math.Mod(a, 1))
			pb := math.Abs(math.Mod(b, 1))
			if pa > pb {
				pa, pb = pb, pa
			}
			va := tech.Select(pa, n)
			vb := tech.Select(pb, n)
			if va < 0 || va >= n || vb < 0 || vb >= n {
				return false
			}
			return va <= vb
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", tech.Name(), err)
		}
	}
}

func TestSchedule(t *testing.T) {
	probs := []float64{0, 0.9, 0.5, 0, 0, 0, 0, 0, 0, 0, 0.01}
	sched, err := Schedule(probs, TechniqueT1{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sched[0] != -1 {
		t.Errorf("offset 0 = %d, want -1 sentinel", sched[0])
	}
	if sched[1] != 2 { // p=0.9 → highest
		t.Errorf("offset 1 = %d, want 2", sched[1])
	}
	if sched[2] != 1 { // p=0.5 → middle
		t.Errorf("offset 2 = %d, want 1", sched[2])
	}
	// The low-probability guarantee: every offset keeps at least the
	// lowest variant alive (no -1 beyond index 0).
	for d := 1; d < len(sched); d++ {
		if sched[d] < 0 {
			t.Errorf("offset %d has no variant", d)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	probs := []float64{0, 0.5}
	if _, err := Schedule(probs, TechniqueT1{}, 0); err == nil {
		t.Error("zero variants accepted")
	}
	if _, err := Schedule(probs, nil, 2); err == nil {
		t.Error("nil technique accepted")
	}
	if _, err := Schedule([]float64{0}, TechniqueT1{}, 2); err == nil {
		t.Error("empty probability vector accepted")
	}
}

// badTechnique returns out-of-range variants to exercise Schedule's guard.
type badTechnique struct{}

func (badTechnique) Name() string            { return "bad" }
func (badTechnique) Select(float64, int) int { return 99 }

func TestScheduleRejectsBadTechnique(t *testing.T) {
	if _, err := Schedule([]float64{0, 0.5}, badTechnique{}, 2); err == nil {
		t.Error("out-of-range technique output accepted")
	}
}
