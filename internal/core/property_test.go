package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
)

// driveRandom pushes a random invocation sequence through a PULSE instance
// and checks the per-minute invariants. Returns false on any violation.
func driveRandom(seed int64, cfg Config, minutes int) bool {
	p, err := New(cfg)
	if err != nil {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(cfg.Assignment)
	counts := make([]int, n)
	lastInv := make([]int, n)
	for i := range lastInv {
		lastInv[i] = -1
	}
	window := p.Config().Window
	for t := 0; t < minutes; t++ {
		decisions := p.KeepAlive(t)
		if len(decisions) != n {
			return false
		}
		var kam float64
		for fn, vi := range decisions {
			fam := cfg.Catalog.Families[cfg.Assignment[fn]]
			// Invariant: decisions are NoVariant or valid indices.
			if vi != cluster.NoVariant && (vi < 0 || vi >= fam.NumVariants()) {
				return false
			}
			if vi != cluster.NoVariant {
				kam += fam.Variants[vi].MemoryMB
			}
			// Invariant: without the global optimizer, the low-quality
			// floor holds — some variant is alive at every minute within
			// the window after an invocation.
			if cfg.DisableGlobalOpt && lastInv[fn] >= 0 &&
				t > lastInv[fn] && t-lastInv[fn] <= window && vi == cluster.NoVariant {
				return false
			}
			// Invariant: nothing is alive outside any window.
			if (lastInv[fn] < 0 || t-lastInv[fn] > window) && vi != cluster.NoVariant {
				return false
			}
		}
		if kam < 0 {
			return false
		}
		for fn := range counts {
			counts[fn] = 0
			if rng.Float64() < 0.3 {
				counts[fn] = rng.Intn(3) + 1
				lastInv[fn] = t
			}
		}
		p.RecordInvocations(t, counts)
	}
	return true
}

func propertyCatalog() *models.Catalog {
	return models.PaperCatalog()
}

// Property: PULSE never emits invalid decisions, never violates the
// low-quality floor (global opt off), and never keeps dead functions alive,
// across random workloads.
func TestPulseInvariantsUnderRandomWorkloads(t *testing.T) {
	cat := propertyCatalog()
	f := func(seed int64, disableGlobal bool, techSel bool) bool {
		asg := models.Assignment{0, 1, 2, 3, 4}
		var tech ThresholdTechnique = TechniqueT1{}
		if techSel {
			tech = TechniqueT2{}
		}
		return driveRandom(seed, Config{
			Catalog:          cat,
			Assignment:       asg,
			Technique:        tech,
			DisableGlobalOpt: disableGlobal,
		}, 200)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the global optimizer only ever removes memory relative to the
// individual-only plan, minute by minute, for identical workloads.
func TestGlobalOptOnlyRemovesMemory(t *testing.T) {
	cat := propertyCatalog()
	asg := models.Assignment{0, 1, 2, 3, 4, 0, 1}
	f := func(seed int64) bool {
		pFull, err := New(Config{Catalog: cat, Assignment: asg})
		if err != nil {
			return false
		}
		pIndiv, err := New(Config{Catalog: cat, Assignment: asg, DisableGlobalOpt: true})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		counts := make([]int, len(asg))
		for t := 0; t < 150; t++ {
			dFull := pFull.KeepAlive(t)
			dIndiv := pIndiv.KeepAlive(t)
			var kamFull, kamIndiv float64
			for fn := range asg {
				fam := cat.Families[asg[fn]]
				if dFull[fn] >= 0 {
					kamFull += fam.Variants[dFull[fn]].MemoryMB
				}
				if dIndiv[fn] >= 0 {
					kamIndiv += fam.Variants[dIndiv[fn]].MemoryMB
				}
				// Per-function: the full policy's variant is never higher
				// quality than the individual plan's.
				if dFull[fn] > dIndiv[fn] {
					return false
				}
			}
			if kamFull > kamIndiv+1e-9 {
				return false
			}
			for fn := range counts {
				counts[fn] = 0
				if rng.Float64() < 0.4 {
					counts[fn] = 1
				}
			}
			pFull.RecordInvocations(t, counts)
			pIndiv.RecordInvocations(t, counts)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: snapshots taken at arbitrary points always restore and resume
// with identical decisions (plans included).
func TestSnapshotAnywhereResumes(t *testing.T) {
	cat := propertyCatalog()
	asg := models.Assignment{0, 2, 4}
	f := func(seed int64, cutRaw uint8) bool {
		cut := int(cutRaw)%80 + 10
		total := cut + 40
		rng := rand.New(rand.NewSource(seed))
		invocations := make([][]int, total)
		for t := range invocations {
			invocations[t] = make([]int, len(asg))
			for fn := range asg {
				if rng.Float64() < 0.35 {
					invocations[t][fn] = 1
				}
			}
		}
		cfg := Config{Catalog: cat, Assignment: asg}
		pA, err := New(cfg)
		if err != nil {
			return false
		}
		for t := 0; t < cut; t++ {
			pA.KeepAlive(t)
			pA.RecordInvocations(t, invocations[t])
		}
		pB, err := Restore(cfg, pA.Snapshot())
		if err != nil {
			return false
		}
		for t := cut; t < total; t++ {
			a := append([]int(nil), pA.KeepAlive(t)...)
			b := pB.KeepAlive(t)
			for fn := range a {
				if a[fn] != b[fn] {
					return false
				}
			}
			pA.RecordInvocations(t, invocations[t])
			pB.RecordInvocations(t, invocations[t])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
