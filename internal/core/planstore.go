package core

import (
	"slices"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

// planStore replaces the per-function planRing heap objects with flat
// slot-indexed slabs plus a free list of plan rows. A row is the window+1
// minute ring a planRing used to own; rows are acquired only when a
// function is invoked (and so gets a plan) and released when the plan
// drains past its last covered minute or the function deregisters. A slot
// without a row costs 12 bytes; the heavy ring storage is shared by the
// functions that are actually active — which is what makes the controller's
// footprint proportional to active functions, not registered ones.
//
// Concurrency discipline: rows are acquired and released ONLY by the
// coordinator between shard barriers (prepareRows, compact, lifecycle), so
// the free list needs no locking. During a barrier, shard workers write
// ring values through set for rows the coordinator pre-acquired; each
// worker touches only its own slots' rows, so no ring cell is ever shared.
type planStore struct {
	stride int     // ring cells per row: window+1 minutes
	row    []int32 // slot → row handle, -1 when the slot holds no plan
	expiry []int   // slot → last minute the plan covers (valid when row ≥ 0)
	free   []int32 // released row handles, reused before the slabs grow

	minutes  []int // rows × stride; -1 marks an empty cell
	variants []int16
	probs    []float64
}

func newPlanStore(window, n int) *planStore {
	ps := &planStore{
		stride: window + 1,
		row:    make([]int32, n),
		expiry: make([]int, n),
	}
	for i := range ps.row {
		ps.row[i] = -1
	}
	return ps
}

// grow appends one fresh (rowless) slot.
func (ps *planStore) grow() {
	ps.row = append(ps.row, -1)
	ps.expiry = append(ps.expiry, 0)
}

// hasRow reports whether slot fn currently holds a plan row.
func (ps *planStore) hasRow(fn int) bool { return ps.row[fn] >= 0 }

// ensureRow gives slot fn a cleared plan row, reusing a released one when
// available. Coordinator-only.
func (ps *planStore) ensureRow(fn int) {
	if ps.row[fn] >= 0 {
		return
	}
	var r int32
	if n := len(ps.free); n > 0 {
		r = ps.free[n-1]
		ps.free = ps.free[:n-1]
	} else {
		r = int32(len(ps.minutes) / ps.stride)
		ps.minutes = append(ps.minutes, make([]int, ps.stride)...)
		ps.variants = append(ps.variants, make([]int16, ps.stride)...)
		ps.probs = append(ps.probs, make([]float64, ps.stride)...)
		for i := int(r) * ps.stride; i < len(ps.minutes); i++ {
			ps.minutes[i] = -1
		}
	}
	ps.row[fn] = r
}

// releaseRow clears slot fn's plan row and returns it to the free list.
// Coordinator-only; a no-op for rowless slots.
func (ps *planStore) releaseRow(fn int) {
	r := ps.row[fn]
	if r < 0 {
		return
	}
	base := int(r) * ps.stride
	for i := base; i < base+ps.stride; i++ {
		ps.minutes[i] = -1
	}
	ps.row[fn] = -1
	ps.expiry[fn] = 0
	ps.free = append(ps.free, r)
}

// set stores the plan cell for an absolute minute. The slot must hold a
// row (the coordinator pre-acquires rows before fan-out).
func (ps *planStore) set(fn, minute, variant int, prob float64) {
	i := int(ps.row[fn])*ps.stride + minute%ps.stride
	ps.minutes[i] = minute
	ps.variants[i] = int16(variant)
	ps.probs[i] = prob
}

// get returns the plan cell for an absolute minute; ok is false when the
// slot has no row or the ring cell belongs to a different minute — exactly
// planRing.get's semantics.
func (ps *planStore) get(fn, minute int) (variant int, prob float64, ok bool) {
	r := ps.row[fn]
	if r < 0 {
		return cluster.NoVariant, 0, false
	}
	i := int(r)*ps.stride + minute%ps.stride
	if ps.minutes[i] != minute {
		return cluster.NoVariant, 0, false
	}
	return int(ps.variants[i]), ps.probs[i], true
}

// activeSet is the incremental index of slots that currently hold a plan
// row — the only slots whose decision can ever be anything but NoVariant.
// The list is kept sorted ascending so every float accumulation that
// iterates it (keep-alive memory sums, Algorithm 2's candidate gather)
// visits functions in exactly the order the dense full-scan loops do,
// keeping the sums bit-identical.
type activeSet struct {
	list   []int32
	member []bool
}

func newActiveSet(n int) *activeSet {
	return &activeSet{member: make([]bool, n)}
}

func (as *activeSet) grow() { as.member = append(as.member, false) }

// add marks fn active. The caller re-sorts after a batch of adds.
func (as *activeSet) add(fn int) bool {
	if as.member[fn] {
		return false
	}
	as.member[fn] = true
	as.list = append(as.list, int32(fn))
	return true
}

// sort restores ascending order after a batch of adds.
func (as *activeSet) sort() { slices.Sort(as.list) }

// remove drops fn from the set (O(len), lifecycle-only).
func (as *activeSet) remove(fn int) {
	if !as.member[fn] {
		return
	}
	as.member[fn] = false
	for i, v := range as.list {
		if int(v) == fn {
			as.list = append(as.list[:i], as.list[i+1:]...)
			return
		}
	}
}
