package core

import (
	"fmt"
	"math/rand"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/stats"
)

// DowngradeStep selects what a downgrade does.
//
// StepByOne is the default: "the model with the lowest utility value is
// downgraded by one variant", flooring at the lowest variant. The floor is
// what preserves PULSE's warm-start parity with OpenWhisk ("maintaining an
// equivalent number of warm starts") — a sustained demand ramp downgrades
// qualities but never evicts the low-quality guarantee.
//
// StepByOneEvict is the literal Algorithm 2 reading ("warm starts with
// models having lower accuracy, or even cold starts"): a model already at
// its lowest variant is evicted entirely.
//
// StepEvict jumps straight to eviction and exists for the ablation
// benchmark.
type DowngradeStep int

// Downgrade step modes.
const (
	StepByOne DowngradeStep = iota
	StepByOneEvict
	StepEvict
)

// Priority is Algorithm 2's priority structure: a per-model count of past
// downgrades, "implemented as an array" to minimize memory overhead. When a
// peak occurs the counts are min–max normalized (Equation 1) so the most
// frequently downgraded model gets priority 1, protecting it from being
// downgraded again — the unbiasedness mechanism.
type Priority struct {
	counts []float64
	norm   []float64

	// Incremental min/max bookkeeping so a single model's normalized
	// priority can be read without the O(N) scan Normalize performs. The
	// values are exact small integers, so the tracked extrema are
	// bit-identical to stats.Min/stats.Max over the counts; the counts of
	// witnesses (minCnt/maxCnt) tell us when a retire invalidates an
	// extremum and a rare O(N) rescan is needed.
	minVal, maxVal float64
	minCnt, maxCnt int
}

// NewPriority creates the structure "initialized … with zeros for all
// models … immediately after the system has started".
func NewPriority(nModels int) (*Priority, error) {
	if nModels <= 0 {
		return nil, fmt.Errorf("core: priority structure needs ≥1 model, got %d", nModels)
	}
	return &Priority{
		counts: make([]float64, nModels),
		norm:   make([]float64, nModels),
		minCnt: nModels,
		maxCnt: nModels,
	}, nil
}

// Bump adds one downgrade to model m's count.
func (p *Priority) Bump(m int) error {
	if m < 0 || m >= len(p.counts) {
		return fmt.Errorf("core: priority bump of invalid model %d", m)
	}
	old := p.counts[m]
	p.counts[m]++
	if old == p.minVal {
		if p.minCnt--; p.minCnt == 0 {
			p.rescanMin()
		}
	}
	switch v := old + 1; {
	case v > p.maxVal:
		p.maxVal, p.maxCnt = v, 1
	case v == p.maxVal:
		p.maxCnt++
	}
	return nil
}

func (p *Priority) rescanMin() {
	p.minVal, p.minCnt = p.counts[0], 1
	for _, v := range p.counts[1:] {
		switch {
		case v < p.minVal:
			p.minVal, p.minCnt = v, 1
		case v == p.minVal:
			p.minCnt++
		}
	}
}

func (p *Priority) rescanMax() {
	p.maxVal, p.maxCnt = p.counts[0], 1
	for _, v := range p.counts[1:] {
		switch {
		case v > p.maxVal:
			p.maxVal, p.maxCnt = v, 1
		case v == p.maxVal:
			p.maxCnt++
		}
	}
}

// normAt returns model m's min–max normalized priority — the value
// Normalize()[m] would compute, without touching the other models.
func (p *Priority) normAt(m int) float64 {
	if p.maxVal == p.minVal {
		return 0
	}
	return (p.counts[m] - p.minVal) / (p.maxVal - p.minVal)
}

// Count returns model m's raw downgrade count.
func (p *Priority) Count(m int) float64 {
	if m < 0 || m >= len(p.counts) {
		return 0
	}
	return p.counts[m]
}

// Normalize recomputes and returns the normalized priorities (Equation 1)
// over all models. The returned slice is reused across calls.
func (p *Priority) Normalize() []float64 {
	copy(p.norm, p.counts)
	stats.MinMaxNormalizeInPlace(p.norm)
	return p.norm
}

// grow appends one zero-count slot (a freshly registered model).
func (p *Priority) grow() {
	p.counts = append(p.counts, 0)
	p.norm = append(p.norm, 0)
	if p.minVal > 0 {
		p.minVal, p.minCnt = 0, 1
	} else {
		p.minCnt++
	}
	if p.maxVal == 0 {
		p.maxCnt++
	}
}

// retire resets a tombstoned slot's count to zero.
func (p *Priority) retire(m int) {
	if m < 0 || m >= len(p.counts) {
		return
	}
	old := p.counts[m]
	if old == 0 {
		return
	}
	p.counts[m] = 0
	if old == p.maxVal {
		p.maxCnt--
	}
	if p.minVal > 0 {
		p.minVal, p.minCnt = 0, 1
	} else {
		p.minCnt++
	}
	if p.maxCnt == 0 {
		p.rescanMax()
	}
}

// UtilityTerms breaks a utility value into its Algorithm 2 components for
// observability.
type UtilityTerms struct {
	Function int
	Variant  int
	Ai       float64 // accuracy improvement of current variant over next lower
	Pr       float64 // normalized downgrade priority
	Ip       float64 // invocation probability
}

// Uv returns the utility value Ai + Pr + Ip (Equation 2).
func (u UtilityTerms) Uv() float64 { return u.Ai + u.Pr + u.Ip }

// Downgrade records one applied downgrade with the utility breakdown that
// selected the victim, so audit logs can answer "why this model?".
type Downgrade struct {
	Function    int
	FromVariant int
	ToVariant   int // -1 when evicted entirely (cold start risk)
	Ai          float64
	Pr          float64
	Ip          float64
	Uv          float64
}

// GlobalOptimizer runs Algorithm 2's downgrade loop during peaks.
type GlobalOptimizer struct {
	catalog         *models.Catalog
	assignment      models.Assignment
	priority        *Priority
	step            DowngradeStep
	disablePriority bool       // ablation: Uv = Ai + Ip
	randomPick      *rand.Rand // non-nil: pick downgrade victims at random (strawman)
	terms           []UtilityTerms
}

// UseRandomSelection switches the optimizer to the strawman the paper
// argues against ("random functions/models are downgraded, which may
// result in models with higher-chance of invocation being downgraded"):
// during a peak the victim is drawn uniformly from the downgradable models
// instead of by lowest utility value. Seeded for reproducibility.
func (g *GlobalOptimizer) UseRandomSelection(seed int64) {
	g.randomPick = rand.New(rand.NewSource(seed))
}

// NewGlobalOptimizer builds the optimizer for a fixed catalog/assignment.
func NewGlobalOptimizer(cat *models.Catalog, asg models.Assignment, step DowngradeStep, disablePriority bool) (*GlobalOptimizer, error) {
	if cat == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if err := asg.Validate(cat, len(asg)); err != nil {
		return nil, err
	}
	if len(asg) == 0 {
		return nil, fmt.Errorf("core: empty assignment")
	}
	pr, err := NewPriority(len(asg))
	if err != nil {
		return nil, err
	}
	return &GlobalOptimizer{
		catalog:         cat,
		assignment:      asg,
		priority:        pr,
		step:            step,
		disablePriority: disablePriority,
	}, nil
}

// Priority exposes the priority structure (read-mostly; tests and reports).
func (g *GlobalOptimizer) Priority() *Priority { return g.priority }

// grow extends the optimizer with one freshly registered function slot.
func (g *GlobalOptimizer) grow(family int) {
	g.assignment = append(g.assignment, family)
	g.priority.grow()
}

// retire zeroes a tombstoned slot's downgrade count. The slot still
// participates in the min–max normalization, with the same weight as a
// never-downgraded live model; it can never be a downgrade candidate again
// because its decision is pinned to NoVariant.
func (g *GlobalOptimizer) retire(fn int) {
	g.priority.retire(fn)
}

// KeptAliveMemoryMB sums the memory of a decision vector (variant per
// function, -1 = none).
func (g *GlobalOptimizer) KeptAliveMemoryMB(decisions []int) (float64, error) {
	if len(decisions) != len(g.assignment) {
		return 0, fmt.Errorf("core: %d decisions for %d functions", len(decisions), len(g.assignment))
	}
	var total float64
	for fn, vi := range decisions {
		if vi < 0 {
			continue
		}
		fam := g.catalog.Families[g.assignment[fn]]
		if vi >= fam.NumVariants() {
			return 0, fmt.Errorf("core: function %d keeps invalid variant %d", fn, vi)
		}
		total += fam.Variants[vi].MemoryMB
	}
	return total, nil
}

// Flatten applies Algorithm 2 to the decision vector in place: while the
// kept-alive memory exceeds targetKaM, the kept-alive model with the
// lowest utility value Uv = Ai + Pr + Ip is downgraded by one variant (or
// evicted from its lowest variant) and its priority count incremented. The
// invocation probabilities ip (one per function, valid for the functions
// currently kept alive) supply the Ip term.
//
// It returns the applied downgrades in order. The loop terminates when the
// peak is flattened or nothing remains to downgrade.
func (g *GlobalOptimizer) Flatten(decisions []int, ip []float64, targetKaM float64) ([]Downgrade, error) {
	if len(decisions) != len(g.assignment) {
		return nil, fmt.Errorf("core: %d decisions for %d functions", len(decisions), len(g.assignment))
	}
	if len(ip) != len(g.assignment) {
		return nil, fmt.Errorf("core: %d probabilities for %d functions", len(ip), len(g.assignment))
	}
	kam, err := g.KeptAliveMemoryMB(decisions)
	if err != nil {
		return nil, err
	}
	var applied []Downgrade
	for kam > targetKaM {
		// Normalize the priority structure (Algorithm 2 line 4).
		norm := g.priority.Normalize()

		// Compute Uv for every model currently kept alive that can still
		// be downgraded (lines 5–8). Under StepByOne a model at its lowest
		// variant is no longer a candidate — the low-quality floor stays.
		g.terms = g.terms[:0]
		for fn, vi := range decisions {
			if vi < 0 {
				continue
			}
			if vi == 0 && g.step == StepByOne {
				continue
			}
			fam := g.catalog.Families[g.assignment[fn]]
			ai, err := fam.AccuracyImprovement(vi)
			if err != nil {
				return nil, err
			}
			pr := norm[fn]
			if g.disablePriority {
				pr = 0
			}
			g.terms = append(g.terms, UtilityTerms{
				Function: fn,
				Variant:  vi,
				Ai:       ai,
				Pr:       pr,
				Ip:       stats.Clamp01(ip[fn]),
			})
		}
		if len(g.terms) == 0 {
			break // nothing left to downgrade; peak cannot be flattened further
		}

		// Downgrade the model with the lowest Uv (line 9), breaking ties
		// toward the lowest function index for determinism — or, in the
		// strawman mode, a uniformly random victim.
		best := 0
		if g.randomPick != nil {
			best = g.randomPick.Intn(len(g.terms))
		} else {
			for i := 1; i < len(g.terms); i++ {
				if g.terms[i].Uv() < g.terms[best].Uv() {
					best = i
				}
			}
		}
		chosen := g.terms[best]
		fn := chosen.Function
		fam := g.catalog.Families[g.assignment[fn]]
		from := decisions[fn]
		to := from - 1
		if g.step == StepEvict || from == 0 {
			to = -1
		}
		decisions[fn] = to

		freed := fam.Variants[from].MemoryMB
		if to >= 0 {
			freed -= fam.Variants[to].MemoryMB
		}
		kam -= freed

		// Update the priority structure (line 10).
		if err := g.priority.Bump(fn); err != nil {
			return nil, err
		}
		applied = append(applied, Downgrade{
			Function:    fn,
			FromVariant: from,
			ToVariant:   to,
			Ai:          chosen.Ai,
			Pr:          chosen.Pr,
			Ip:          chosen.Ip,
			Uv:          chosen.Uv(),
		})
	}
	return applied, nil
}

// keptAliveMBSparse is KeptAliveMemoryMB restricted to the active set: the
// unlisted slots are guaranteed NoVariant, which the dense loop skips
// anyway, and the list is sorted ascending, so the float sum associates in
// exactly the dense order.
func (g *GlobalOptimizer) keptAliveMBSparse(decisions []int, active []int32) float64 {
	var total float64
	for _, fn32 := range active {
		fn := int(fn32)
		vi := decisions[fn]
		if vi < 0 {
			continue
		}
		fam := g.catalog.Families[g.assignment[fn]]
		if vi >= fam.NumVariants() {
			panic(fmt.Sprintf("core: function %d keeps invalid variant %d", fn, vi))
		}
		total += fam.Variants[vi].MemoryMB
	}
	return total
}

// flattenSparse is Flatten restricted to the active set. The candidate
// gather iterates the sorted active list — the same candidates, in the
// same order, as the dense loop, because every unlisted slot's decision is
// NoVariant — and the Pr term comes from the priority structure's
// incremental normAt instead of a full Normalize pass. Decisions, applied
// downgrades, and priority updates are bit-identical to Flatten's.
func (g *GlobalOptimizer) flattenSparse(decisions []int, ip []float64, targetKaM float64, active []int32) ([]Downgrade, error) {
	kam := g.keptAliveMBSparse(decisions, active)
	var applied []Downgrade
	for kam > targetKaM {
		g.terms = g.terms[:0]
		for _, fn32 := range active {
			fn := int(fn32)
			vi := decisions[fn]
			if vi < 0 {
				continue
			}
			if vi == 0 && g.step == StepByOne {
				continue
			}
			fam := g.catalog.Families[g.assignment[fn]]
			ai, err := fam.AccuracyImprovement(vi)
			if err != nil {
				return nil, err
			}
			pr := g.priority.normAt(fn)
			if g.disablePriority {
				pr = 0
			}
			g.terms = append(g.terms, UtilityTerms{
				Function: fn,
				Variant:  vi,
				Ai:       ai,
				Pr:       pr,
				Ip:       stats.Clamp01(ip[fn]),
			})
		}
		if len(g.terms) == 0 {
			break
		}
		best := 0
		if g.randomPick != nil {
			best = g.randomPick.Intn(len(g.terms))
		} else {
			for i := 1; i < len(g.terms); i++ {
				if g.terms[i].Uv() < g.terms[best].Uv() {
					best = i
				}
			}
		}
		chosen := g.terms[best]
		fn := chosen.Function
		fam := g.catalog.Families[g.assignment[fn]]
		from := decisions[fn]
		to := from - 1
		if g.step == StepEvict || from == 0 {
			to = -1
		}
		decisions[fn] = to

		freed := fam.Variants[from].MemoryMB
		if to >= 0 {
			freed -= fam.Variants[to].MemoryMB
		}
		kam -= freed

		if err := g.priority.Bump(fn); err != nil {
			return nil, err
		}
		applied = append(applied, Downgrade{
			Function:    fn,
			FromVariant: from,
			ToVariant:   to,
			Ai:          chosen.Ai,
			Pr:          chosen.Pr,
			Ip:          chosen.Ip,
			Uv:          chosen.Uv(),
		})
	}
	return applied, nil
}
