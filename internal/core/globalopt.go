package core

import (
	"fmt"
	"math/rand"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/stats"
)

// DowngradeStep selects what a downgrade does.
//
// StepByOne is the default: "the model with the lowest utility value is
// downgraded by one variant", flooring at the lowest variant. The floor is
// what preserves PULSE's warm-start parity with OpenWhisk ("maintaining an
// equivalent number of warm starts") — a sustained demand ramp downgrades
// qualities but never evicts the low-quality guarantee.
//
// StepByOneEvict is the literal Algorithm 2 reading ("warm starts with
// models having lower accuracy, or even cold starts"): a model already at
// its lowest variant is evicted entirely.
//
// StepEvict jumps straight to eviction and exists for the ablation
// benchmark.
type DowngradeStep int

// Downgrade step modes.
const (
	StepByOne DowngradeStep = iota
	StepByOneEvict
	StepEvict
)

// Priority is Algorithm 2's priority structure: a per-model count of past
// downgrades, "implemented as an array" to minimize memory overhead. When a
// peak occurs the counts are min–max normalized (Equation 1) so the most
// frequently downgraded model gets priority 1, protecting it from being
// downgraded again — the unbiasedness mechanism.
type Priority struct {
	counts []float64
	norm   []float64
}

// NewPriority creates the structure "initialized … with zeros for all
// models … immediately after the system has started".
func NewPriority(nModels int) (*Priority, error) {
	if nModels <= 0 {
		return nil, fmt.Errorf("core: priority structure needs ≥1 model, got %d", nModels)
	}
	return &Priority{
		counts: make([]float64, nModels),
		norm:   make([]float64, nModels),
	}, nil
}

// Bump adds one downgrade to model m's count.
func (p *Priority) Bump(m int) error {
	if m < 0 || m >= len(p.counts) {
		return fmt.Errorf("core: priority bump of invalid model %d", m)
	}
	p.counts[m]++
	return nil
}

// Count returns model m's raw downgrade count.
func (p *Priority) Count(m int) float64 {
	if m < 0 || m >= len(p.counts) {
		return 0
	}
	return p.counts[m]
}

// Normalize recomputes and returns the normalized priorities (Equation 1)
// over all models. The returned slice is reused across calls.
func (p *Priority) Normalize() []float64 {
	copy(p.norm, p.counts)
	stats.MinMaxNormalizeInPlace(p.norm)
	return p.norm
}

// grow appends one zero-count slot (a freshly registered model).
func (p *Priority) grow() {
	p.counts = append(p.counts, 0)
	p.norm = append(p.norm, 0)
}

// retire resets a tombstoned slot's count to zero.
func (p *Priority) retire(m int) {
	if m >= 0 && m < len(p.counts) {
		p.counts[m] = 0
	}
}

// UtilityTerms breaks a utility value into its Algorithm 2 components for
// observability.
type UtilityTerms struct {
	Function int
	Variant  int
	Ai       float64 // accuracy improvement of current variant over next lower
	Pr       float64 // normalized downgrade priority
	Ip       float64 // invocation probability
}

// Uv returns the utility value Ai + Pr + Ip (Equation 2).
func (u UtilityTerms) Uv() float64 { return u.Ai + u.Pr + u.Ip }

// Downgrade records one applied downgrade with the utility breakdown that
// selected the victim, so audit logs can answer "why this model?".
type Downgrade struct {
	Function    int
	FromVariant int
	ToVariant   int // -1 when evicted entirely (cold start risk)
	Ai          float64
	Pr          float64
	Ip          float64
	Uv          float64
}

// GlobalOptimizer runs Algorithm 2's downgrade loop during peaks.
type GlobalOptimizer struct {
	catalog         *models.Catalog
	assignment      models.Assignment
	priority        *Priority
	step            DowngradeStep
	disablePriority bool       // ablation: Uv = Ai + Ip
	randomPick      *rand.Rand // non-nil: pick downgrade victims at random (strawman)
	terms           []UtilityTerms
}

// UseRandomSelection switches the optimizer to the strawman the paper
// argues against ("random functions/models are downgraded, which may
// result in models with higher-chance of invocation being downgraded"):
// during a peak the victim is drawn uniformly from the downgradable models
// instead of by lowest utility value. Seeded for reproducibility.
func (g *GlobalOptimizer) UseRandomSelection(seed int64) {
	g.randomPick = rand.New(rand.NewSource(seed))
}

// NewGlobalOptimizer builds the optimizer for a fixed catalog/assignment.
func NewGlobalOptimizer(cat *models.Catalog, asg models.Assignment, step DowngradeStep, disablePriority bool) (*GlobalOptimizer, error) {
	if cat == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if err := asg.Validate(cat, len(asg)); err != nil {
		return nil, err
	}
	if len(asg) == 0 {
		return nil, fmt.Errorf("core: empty assignment")
	}
	pr, err := NewPriority(len(asg))
	if err != nil {
		return nil, err
	}
	return &GlobalOptimizer{
		catalog:         cat,
		assignment:      asg,
		priority:        pr,
		step:            step,
		disablePriority: disablePriority,
	}, nil
}

// Priority exposes the priority structure (read-mostly; tests and reports).
func (g *GlobalOptimizer) Priority() *Priority { return g.priority }

// grow extends the optimizer with one freshly registered function slot.
func (g *GlobalOptimizer) grow(family int) {
	g.assignment = append(g.assignment, family)
	g.priority.grow()
}

// retire zeroes a tombstoned slot's downgrade count. The slot still
// participates in the min–max normalization, with the same weight as a
// never-downgraded live model; it can never be a downgrade candidate again
// because its decision is pinned to NoVariant.
func (g *GlobalOptimizer) retire(fn int) {
	g.priority.retire(fn)
}

// KeptAliveMemoryMB sums the memory of a decision vector (variant per
// function, -1 = none).
func (g *GlobalOptimizer) KeptAliveMemoryMB(decisions []int) (float64, error) {
	if len(decisions) != len(g.assignment) {
		return 0, fmt.Errorf("core: %d decisions for %d functions", len(decisions), len(g.assignment))
	}
	var total float64
	for fn, vi := range decisions {
		if vi < 0 {
			continue
		}
		fam := g.catalog.Families[g.assignment[fn]]
		if vi >= fam.NumVariants() {
			return 0, fmt.Errorf("core: function %d keeps invalid variant %d", fn, vi)
		}
		total += fam.Variants[vi].MemoryMB
	}
	return total, nil
}

// Flatten applies Algorithm 2 to the decision vector in place: while the
// kept-alive memory exceeds targetKaM, the kept-alive model with the
// lowest utility value Uv = Ai + Pr + Ip is downgraded by one variant (or
// evicted from its lowest variant) and its priority count incremented. The
// invocation probabilities ip (one per function, valid for the functions
// currently kept alive) supply the Ip term.
//
// It returns the applied downgrades in order. The loop terminates when the
// peak is flattened or nothing remains to downgrade.
func (g *GlobalOptimizer) Flatten(decisions []int, ip []float64, targetKaM float64) ([]Downgrade, error) {
	if len(decisions) != len(g.assignment) {
		return nil, fmt.Errorf("core: %d decisions for %d functions", len(decisions), len(g.assignment))
	}
	if len(ip) != len(g.assignment) {
		return nil, fmt.Errorf("core: %d probabilities for %d functions", len(ip), len(g.assignment))
	}
	kam, err := g.KeptAliveMemoryMB(decisions)
	if err != nil {
		return nil, err
	}
	var applied []Downgrade
	for kam > targetKaM {
		// Normalize the priority structure (Algorithm 2 line 4).
		norm := g.priority.Normalize()

		// Compute Uv for every model currently kept alive that can still
		// be downgraded (lines 5–8). Under StepByOne a model at its lowest
		// variant is no longer a candidate — the low-quality floor stays.
		g.terms = g.terms[:0]
		for fn, vi := range decisions {
			if vi < 0 {
				continue
			}
			if vi == 0 && g.step == StepByOne {
				continue
			}
			fam := g.catalog.Families[g.assignment[fn]]
			ai, err := fam.AccuracyImprovement(vi)
			if err != nil {
				return nil, err
			}
			pr := norm[fn]
			if g.disablePriority {
				pr = 0
			}
			g.terms = append(g.terms, UtilityTerms{
				Function: fn,
				Variant:  vi,
				Ai:       ai,
				Pr:       pr,
				Ip:       stats.Clamp01(ip[fn]),
			})
		}
		if len(g.terms) == 0 {
			break // nothing left to downgrade; peak cannot be flattened further
		}

		// Downgrade the model with the lowest Uv (line 9), breaking ties
		// toward the lowest function index for determinism — or, in the
		// strawman mode, a uniformly random victim.
		best := 0
		if g.randomPick != nil {
			best = g.randomPick.Intn(len(g.terms))
		} else {
			for i := 1; i < len(g.terms); i++ {
				if g.terms[i].Uv() < g.terms[best].Uv() {
					best = i
				}
			}
		}
		chosen := g.terms[best]
		fn := chosen.Function
		fam := g.catalog.Families[g.assignment[fn]]
		from := decisions[fn]
		to := from - 1
		if g.step == StepEvict || from == 0 {
			to = -1
		}
		decisions[fn] = to

		freed := fam.Variants[from].MemoryMB
		if to >= 0 {
			freed -= fam.Variants[to].MemoryMB
		}
		kam -= freed

		// Update the priority structure (line 10).
		if err := g.priority.Bump(fn); err != nil {
			return nil, err
		}
		applied = append(applied, Downgrade{
			Function:    fn,
			FromVariant: from,
			ToVariant:   to,
			Ai:          chosen.Ai,
			Pr:          chosen.Pr,
			Ip:          chosen.Ip,
			Uv:          chosen.Uv(),
		})
	}
	return applied, nil
}
