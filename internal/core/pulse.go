package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// Config parameterizes a PULSE instance. Zero values select the paper's
// defaults where they exist.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment

	// Names are the functions' stable identities, one per assignment entry
	// (nil selects fn-0 … fn-{n-1}). Names key snapshots and online
	// registration: RegisterFunction and DeregisterFunction refer to
	// functions by name, and Restore maps snapshot state back to slots by
	// name rather than by index.
	Names []string

	// Window is the keep-alive period in minutes (default 10).
	Window int
	// LocalWindow is the sliding local history length in minutes used by
	// both the function-centric probabilities and Algorithm 1's prior
	// keep-alive memory (default 60; Figure 12 sweeps 10/60/120).
	LocalWindow int
	// KaMThreshold is Algorithm 1's KM_T as a fraction (default 0.10;
	// Figure 11 sweeps 0.05/0.10/0.15).
	KaMThreshold float64
	// Technique is the probability-threshold rule (default TechniqueT1;
	// Figure 10 compares T1 and T2).
	Technique ThresholdTechnique
	// Shards is the number of parallel shards the controller partitions
	// its functions into. Each shard owns its functions' histories and
	// plan rings and is served by one persistent worker goroutine; the
	// global peak-detect/flatten step (Algorithms 1 and 2) always runs
	// single-threaded on the merged view, so decisions are identical for
	// every shard count. 0 selects runtime.NumCPU(); 1 runs fully serial
	// with no worker goroutines; the count is capped at the number of
	// functions. A controller with more than one shard owns goroutines:
	// call Close when done (a finalizer reclaims them otherwise).
	Shards int

	// DisableGlobalOpt turns off cross-function optimization, leaving only
	// the function-centric optimizer — the Figure 4(b) configuration.
	DisableGlobalOpt bool
	// DisablePriorityTerm drops Pr from Uv (ablation).
	DisablePriorityTerm bool
	// Blend selects the history mix feeding probabilities (ablation).
	Blend HistoryBlend
	// PriorMode selects Algorithm 1's prior derivation (ablation).
	PriorMode PriorMode
	// Step selects the downgrade granularity (ablation).
	Step DowngradeStep
	// RandomDowngradeSeed, when non-zero, replaces utility-based victim
	// selection with the paper's strawman of random downgrades during
	// peaks (ablation). The seed keeps runs reproducible.
	RandomDowngradeSeed int64

	// Observer, when non-nil, receives every controller decision: the
	// per-function keep-alive schedules, Algorithm 1 peak enter/exit
	// transitions, and each Algorithm 2 downgrade with its utility
	// breakdown. nil disables instrumentation at zero cost.
	Observer telemetry.Observer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Window <= 0 {
		out.Window = cluster.DefaultKeepAliveWindow
	}
	if out.LocalWindow <= 0 {
		out.LocalWindow = 60
	}
	if out.KaMThreshold <= 0 {
		out.KaMThreshold = 0.10
	}
	if out.Technique == nil {
		out.Technique = TechniqueT1{}
	}
	return out
}

// planRing stores one value per absolute minute over a sliding horizon of
// window+1 minutes — the furthest ahead a keep-alive plan can reach.
type planRing struct {
	minutes  []int
	variants []int
	probs    []float64
}

func newPlanRing(window int) planRing {
	r := planRing{
		minutes:  make([]int, window+1),
		variants: make([]int, window+1),
		probs:    make([]float64, window+1),
	}
	for i := range r.minutes {
		r.minutes[i] = -1
	}
	return r
}

func (r *planRing) set(minute, variant int, prob float64) {
	i := minute % len(r.minutes)
	r.minutes[i] = minute
	r.variants[i] = variant
	r.probs[i] = prob
}

func (r *planRing) get(minute int) (variant int, prob float64, ok bool) {
	i := minute % len(r.minutes)
	if r.minutes[i] != minute {
		return cluster.NoVariant, 0, false
	}
	return r.variants[i], r.probs[i], true
}

// reset forgets every in-flight commitment; gather then yields NoVariant
// for the slot at every minute.
func (r *planRing) reset() {
	for i := range r.minutes {
		r.minutes[i] = -1
	}
}

// Pulse is the full PULSE keep-alive policy (Figure 3): function-centric
// optimization plans a variant per minute of each function's keep-alive
// window; when Algorithm 1 detects a keep-alive memory peak, Algorithm 2's
// utility-driven downgrades flatten it. Pulse implements cluster.Policy.
type Pulse struct {
	cfg       Config
	reg       *identity.Registry
	histories []*History
	detector  *PeakDetector
	global    *GlobalOptimizer
	plans     []planRing
	out       []int
	ip        []float64

	// pool is the shard worker pool; nil when cfg.Shards resolves to 1,
	// in which case every path runs serially on the calling goroutine.
	pool *shardPool
	// selfWanted caches telemetry.WantsSelf(cfg.Observer): whether the
	// per-minute scans should read the clock and emit scan/flush duration
	// samples. False keeps the scan paths free of clock reads.
	selfWanted bool
	// reqShards is the configured (unresolved) shard count; the effective
	// count in cfg.Shards is re-resolved against the slot count whenever
	// registration grows the per-function state.
	reqShards int

	totalDowngrades int
	peakMinutes     int
	inPeak          bool // inside an Algorithm 1 peak episode (observability only)
}

// New builds a PULSE policy instance.
func New(cfg Config) (*Pulse, error) {
	cfg = cfg.withDefaults()
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("core: empty assignment")
	}
	n := len(cfg.Assignment)
	// Own the per-function config slices: registration appends to them, and
	// the caller's backing arrays must not be written through.
	cfg.Assignment = append(models.Assignment(nil), cfg.Assignment...)
	names := cfg.Names
	if names == nil {
		names = identity.DefaultNames(n)
	}
	if len(names) != n {
		return nil, fmt.Errorf("core: %d names for %d functions", len(names), n)
	}
	reg, err := identity.NewRegistry(names)
	if err != nil {
		return nil, err
	}
	cfg.Names = append([]string(nil), names...)
	p := &Pulse{
		cfg:       cfg,
		reg:       reg,
		histories: make([]*History, n),
		plans:     make([]planRing, n),
		out:       make([]int, n),
		ip:        make([]float64, n),
	}
	for i := range p.histories {
		if p.histories[i], err = NewHistory(cfg.LocalWindow); err != nil {
			return nil, err
		}
		p.plans[i] = newPlanRing(cfg.Window)
	}
	if p.detector, err = NewPeakDetector(cfg.KaMThreshold, cfg.LocalWindow, cfg.PriorMode); err != nil {
		return nil, err
	}
	if p.global, err = NewGlobalOptimizer(cfg.Catalog, cfg.Assignment, cfg.Step, cfg.DisablePriorityTerm); err != nil {
		return nil, err
	}
	if cfg.RandomDowngradeSeed != 0 {
		p.global.UseRandomSelection(cfg.RandomDowngradeSeed)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: negative shard count %d", cfg.Shards)
	}
	p.selfWanted = telemetry.WantsSelf(cfg.Observer)
	p.reqShards = cfg.Shards
	p.repartition()
	return p, nil
}

// repartition resolves the effective shard count against the current slot
// count and (re)builds the worker pool. Registration appends to the
// per-function slices, which reallocates the headers the shard workers
// alias, so the pool is torn down and rebuilt whenever a slot is added.
func (p *Pulse) repartition() {
	if p.pool != nil {
		runtime.SetFinalizer(p, nil)
		p.pool.close()
		p.pool = nil
	}
	shards := p.reqShards
	if shards == 0 {
		shards = runtime.NumCPU()
	}
	if n := len(p.out); shards > n {
		shards = n
	}
	p.cfg.Shards = shards
	if shards > 1 {
		p.pool = newShardPool(p.cfg, shards, p.histories, p.plans, p.out, p.ip, p.reg.ActiveSlice())
		// Safety net for callers that drop the controller without Close:
		// the workers reference only the shard state, never p, so an
		// unclosed controller still becomes unreachable and its pool is
		// reclaimed here.
		runtime.SetFinalizer(p, (*Pulse).Close)
	}
}

// Close stops the shard worker goroutines. It is idempotent, safe on a
// serial (single-shard) controller, and must not race with KeepAlive or
// RecordInvocations; the controller must not be driven afterwards.
func (p *Pulse) Close() error {
	if p.pool != nil {
		runtime.SetFinalizer(p, nil)
		p.pool.close()
	}
	return nil
}

// Shards returns the effective shard count (≥ 1).
func (p *Pulse) Shards() int { return p.cfg.Shards }

// Name implements cluster.Policy.
func (p *Pulse) Name() string {
	name := "pulse-" + p.cfg.Technique.Name()
	if p.cfg.DisableGlobalOpt {
		name += "-noglobal"
	}
	return name
}

// Config returns the effective (defaulted) configuration.
func (p *Pulse) Config() Config { return p.cfg }

// TotalDowngrades returns the number of Algorithm 2 downgrades applied so
// far.
func (p *Pulse) TotalDowngrades() int { return p.totalDowngrades }

// PeakMinutes returns the number of minutes in which a peak was detected
// and flattening ran.
func (p *Pulse) PeakMinutes() int { return p.peakMinutes }

// KeepAlive implements cluster.Policy: it assembles the minute's candidate
// keep-alive set from the per-function plans, runs the global optimizer if
// the minute is a peak, commits the final keep-alive memory to the peak
// detector, and returns the decisions.
func (p *Pulse) KeepAlive(t int) []int {
	if p.pool != nil {
		p.pool.dispatch(shardJob{op: opGather, t: t})
		if p.selfWanted {
			p.emitScans(t)
		}
	} else {
		var t0 time.Time
		if p.selfWanted {
			t0 = time.Now()
		}
		for fn := range p.out {
			v, prob, ok := p.plans[fn].get(t)
			if !ok {
				v, prob = cluster.NoVariant, 0
			}
			p.out[fn] = v
			p.ip[fn] = prob
		}
		if p.selfWanted {
			telemetry.ObserveScan(p.cfg.Observer, telemetry.ScanSample{
				Minute: t, Shard: -1, Functions: len(p.out), Seconds: time.Since(t0).Seconds(),
			})
		}
	}

	if !p.cfg.DisableGlobalOpt {
		kam, err := p.global.KeptAliveMemoryMB(p.out)
		if err != nil {
			// Plans only ever hold validated variant indices.
			panic("core: invalid internal plan: " + err.Error())
		}
		if p.detector.IsPeak(kam) {
			p.peakMinutes++
			target := p.detector.FlattenTarget()
			downs, err := p.global.Flatten(p.out, p.ip, target)
			if err != nil {
				panic("core: flatten failed on validated state: " + err.Error())
			}
			p.totalDowngrades += len(downs)
			if obs := p.cfg.Observer; obs != nil {
				if !p.inPeak {
					obs.ObservePeak(telemetry.PeakSample{
						Minute:      t,
						Enter:       true,
						KeepAliveMB: kam,
						PriorMB:     p.detector.PriorKaM(),
						TargetMB:    target,
						Downgrades:  len(downs),
					})
				}
				for _, d := range downs {
					obs.ObserveDowngrade(telemetry.DowngradeSample{
						Minute:      t,
						Function:    d.Function,
						FromVariant: d.FromVariant,
						ToVariant:   d.ToVariant,
						Ai:          d.Ai,
						Pr:          d.Pr,
						Ip:          d.Ip,
					})
				}
			}
			p.inPeak = true
		} else if p.inPeak {
			p.inPeak = false
			if obs := p.cfg.Observer; obs != nil {
				obs.ObservePeak(telemetry.PeakSample{
					Minute:      t,
					Enter:       false,
					KeepAliveMB: kam,
					PriorMB:     p.detector.PriorKaM(),
					TargetMB:    p.detector.FlattenTarget(),
				})
			}
		}
	}

	kam, err := p.global.KeptAliveMemoryMB(p.out)
	if err != nil {
		panic("core: invalid final decisions: " + err.Error())
	}
	if err := p.detector.Record(kam); err != nil {
		panic("core: detector record: " + err.Error())
	}
	return p.out
}

// ColdVariant implements cluster.Policy: invocations that arrive cold run
// the function's standard (highest-quality) model, matching the fixed
// policy's behaviour so accuracy differences come only from keep-alive
// decisions.
func (p *Pulse) ColdVariant(_, fn int) int {
	return p.cfg.Catalog.Families[p.cfg.Assignment[fn]].NumVariants() - 1
}

// RecordInvocations implements cluster.Policy: every function invoked this
// minute gets its history updated and a fresh keep-alive plan for the next
// window minutes, one variant per offset, from the threshold technique.
//
// With more than one shard the per-function work fans out to the worker
// pool; each shard stages its Observer events in a private buffer that is
// flushed here, in shard order, once the minute barrier is reached — so
// the audit log sees the exact event sequence a serial controller emits.
func (p *Pulse) RecordInvocations(t int, counts []int) {
	if p.pool != nil {
		p.pool.dispatch(shardJob{op: opRecord, t: t, counts: counts})
		if p.selfWanted {
			p.emitScans(t)
		}
		if obs := p.cfg.Observer; obs != nil {
			var t0 time.Time
			if p.selfWanted {
				t0 = time.Now()
			}
			p.pool.flush(obs)
			if p.selfWanted {
				telemetry.ObserveFlush(obs, telemetry.FlushSample{
					Minute: t, Seconds: time.Since(t0).Seconds(),
				})
			}
		}
		return
	}
	var t0 time.Time
	if p.selfWanted {
		t0 = time.Now()
	}
	active := p.reg.ActiveSlice()
	for fn, c := range counts {
		if c == 0 || !active[fn] {
			continue
		}
		h := p.histories[fn]
		if err := h.Record(t); err != nil {
			panic("core: history record: " + err.Error())
		}
		fam := p.cfg.Catalog.Families[p.cfg.Assignment[fn]]
		probs := h.Probabilities(p.cfg.Window, p.cfg.Blend)
		sched, err := Schedule(probs, p.cfg.Technique, fam.NumVariants())
		if err != nil {
			panic("core: schedule: " + err.Error())
		}
		for d := 1; d <= p.cfg.Window; d++ {
			p.plans[fn].set(t+d, sched[d], probs[d])
		}
		if obs := p.cfg.Observer; obs != nil {
			obs.ObserveSchedule(telemetry.ScheduleSample{
				Minute:   t,
				Function: fn,
				Plan:     sched[1:],
				Probs:    probs[1:],
			})
		}
	}
	if p.selfWanted {
		telemetry.ObserveScan(p.cfg.Observer, telemetry.ScanSample{
			Minute: t, Shard: -1, Functions: len(counts), Seconds: time.Since(t0).Seconds(),
		})
	}
}

// emitScans reports each shard's just-completed op duration, in shard
// order (the coordinator emits so samples stay barrier-serialized).
func (p *Pulse) emitScans(t int) {
	for i, s := range p.pool.shards {
		telemetry.ObserveScan(p.cfg.Observer, telemetry.ScanSample{
			Minute: t, Shard: i, Functions: s.scanFns, Seconds: s.scanSec,
		})
	}
}

// History exposes function fn's inter-arrival history (for reports/tests).
func (p *Pulse) History(fn int) *History {
	if fn < 0 || fn >= len(p.histories) {
		return nil
	}
	return p.histories[fn]
}

// Detector exposes the peak detector (for reports/tests).
func (p *Pulse) Detector() *PeakDetector { return p.detector }

// PriorityCount returns function fn's downgrade count from Algorithm 2's
// priority structure — how often its model has been downgraded during
// peaks.
func (p *Pulse) PriorityCount(fn int) float64 { return p.global.Priority().Count(fn) }
