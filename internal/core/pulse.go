package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// Config parameterizes a PULSE instance. Zero values select the paper's
// defaults where they exist.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment

	// Names are the functions' stable identities, one per assignment entry
	// (nil selects fn-0 … fn-{n-1}). Names key snapshots and online
	// registration: RegisterFunction and DeregisterFunction refer to
	// functions by name, and Restore maps snapshot state back to slots by
	// name rather than by index.
	Names []string

	// Window is the keep-alive period in minutes (default 10).
	Window int
	// LocalWindow is the sliding local history length in minutes used by
	// both the function-centric probabilities and Algorithm 1's prior
	// keep-alive memory (default 60; Figure 12 sweeps 10/60/120).
	LocalWindow int
	// KaMThreshold is Algorithm 1's KM_T as a fraction (default 0.10;
	// Figure 11 sweeps 0.05/0.10/0.15).
	KaMThreshold float64
	// Technique is the probability-threshold rule (default TechniqueT1;
	// Figure 10 compares T1 and T2).
	Technique ThresholdTechnique
	// Shards is the number of parallel shards the controller partitions
	// its functions into. Each shard owns its functions' histories and
	// plan rings and is served by one persistent worker goroutine; the
	// global peak-detect/flatten step (Algorithms 1 and 2) always runs
	// single-threaded on the merged view, so decisions are identical for
	// every shard count. 0 selects runtime.NumCPU(); 1 runs fully serial
	// with no worker goroutines; the count is capped at the number of
	// functions. A controller with more than one shard owns goroutines:
	// call Close when done (a finalizer reclaims them otherwise).
	Shards int

	// DisableGlobalOpt turns off cross-function optimization, leaving only
	// the function-centric optimizer — the Figure 4(b) configuration.
	DisableGlobalOpt bool
	// DisablePriorityTerm drops Pr from Uv (ablation).
	DisablePriorityTerm bool
	// Blend selects the history mix feeding probabilities (ablation).
	Blend HistoryBlend
	// PriorMode selects Algorithm 1's prior derivation (ablation).
	PriorMode PriorMode
	// Step selects the downgrade granularity (ablation).
	Step DowngradeStep
	// RandomDowngradeSeed, when non-zero, replaces utility-based victim
	// selection with the paper's strawman of random downgrades during
	// peaks (ablation). The seed keeps runs reproducible.
	RandomDowngradeSeed int64

	// DisableIdleSkip forces the per-minute paths back to full scans over
	// every registered slot instead of the incremental active-set index.
	// Decisions are bit-identical either way (the property the idle-skip
	// tests assert); this exists as the reference for those tests and as an
	// escape hatch. Attaching a telemetry.SelfObserver implies the same
	// full-scan behaviour, because scan samples report per-shard slot
	// counts that only the dense walk produces.
	DisableIdleSkip bool

	// Observer, when non-nil, receives every controller decision: the
	// per-function keep-alive schedules, Algorithm 1 peak enter/exit
	// transitions, and each Algorithm 2 downgrade with its utility
	// breakdown. nil disables instrumentation at zero cost.
	Observer telemetry.Observer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Window <= 0 {
		out.Window = cluster.DefaultKeepAliveWindow
	}
	if out.LocalWindow <= 0 {
		out.LocalWindow = 60
	}
	if out.KaMThreshold <= 0 {
		out.KaMThreshold = 0.10
	}
	if out.Technique == nil {
		out.Technique = TechniqueT1{}
	}
	return out
}

// Pulse is the full PULSE keep-alive policy (Figure 3): function-centric
// optimization plans a variant per minute of each function's keep-alive
// window; when Algorithm 1 detects a keep-alive memory peak, Algorithm 2's
// utility-driven downgrades flatten it. Pulse implements cluster.Policy.
//
// Per-function state lives in flat slot-indexed arenas (histArena,
// planStore) rather than per-function heap objects, and the per-minute
// paths iterate the incremental active set — the slots currently holding a
// plan row — instead of every registered slot, unless
// Config.DisableIdleSkip or an attached SelfObserver forces the dense
// reference scans. Both representations and both iteration strategies
// produce bit-identical decisions.
type Pulse struct {
	cfg      Config
	reg      *identity.Registry
	hist     *histArena
	detector *PeakDetector
	global   *GlobalOptimizer
	plans    *planStore
	active   *activeSet
	out      []int
	ip       []float64

	// invokedBuf is the reusable ascending list of slots invoked this
	// minute, rebuilt by RecordInvocations / RecordInvocationsSparse.
	invokedBuf []int32
	// idleSkip caches whether the sparse active-set paths are in effect.
	idleSkip bool

	// pool is the shard worker pool; nil when cfg.Shards resolves to 1,
	// in which case every path runs serially on the calling goroutine.
	pool *shardPool
	// selfWanted caches telemetry.WantsSelf(cfg.Observer): whether the
	// per-minute scans should read the clock and emit scan/flush duration
	// samples. False keeps the scan paths free of clock reads.
	selfWanted bool
	// reqShards is the configured (unresolved) shard count; the effective
	// count in cfg.Shards is re-resolved against the slot count whenever
	// registration grows the per-function state.
	reqShards int

	totalDowngrades int
	peakMinutes     int
	inPeak          bool // inside an Algorithm 1 peak episode (observability only)
}

// New builds a PULSE policy instance.
func New(cfg Config) (*Pulse, error) {
	cfg = cfg.withDefaults()
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("core: empty assignment")
	}
	n := len(cfg.Assignment)
	// Own the per-function config slices: registration appends to them, and
	// the caller's backing arrays must not be written through.
	cfg.Assignment = append(models.Assignment(nil), cfg.Assignment...)
	names := cfg.Names
	if names == nil {
		names = identity.DefaultNames(n)
	}
	if len(names) != n {
		return nil, fmt.Errorf("core: %d names for %d functions", len(names), n)
	}
	reg, err := identity.NewRegistry(names)
	if err != nil {
		return nil, err
	}
	cfg.Names = append([]string(nil), names...)
	p := &Pulse{
		cfg:    cfg,
		reg:    reg,
		plans:  newPlanStore(cfg.Window, n),
		active: newActiveSet(n),
		out:    make([]int, n),
		ip:     make([]float64, n),
	}
	if p.hist, err = newHistArena(cfg.LocalWindow, n); err != nil {
		return nil, err
	}
	// Slots outside the active set are never rewritten by the sparse
	// gather, so the decision vector's resting state must be NoVariant.
	for i := range p.out {
		p.out[i] = cluster.NoVariant
	}
	if p.detector, err = NewPeakDetector(cfg.KaMThreshold, cfg.LocalWindow, cfg.PriorMode); err != nil {
		return nil, err
	}
	if p.global, err = NewGlobalOptimizer(cfg.Catalog, cfg.Assignment, cfg.Step, cfg.DisablePriorityTerm); err != nil {
		return nil, err
	}
	if cfg.RandomDowngradeSeed != 0 {
		p.global.UseRandomSelection(cfg.RandomDowngradeSeed)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: negative shard count %d", cfg.Shards)
	}
	p.selfWanted = telemetry.WantsSelf(cfg.Observer)
	p.idleSkip = !cfg.DisableIdleSkip && !p.selfWanted
	p.reqShards = cfg.Shards
	p.repartition()
	return p, nil
}

// repartition resolves the effective shard count against the current slot
// count and (re)builds the worker pool. Registration appends to the
// per-function slices, which reallocates the headers the shard workers
// alias, so the pool is torn down and rebuilt whenever a slot is added.
func (p *Pulse) repartition() {
	if p.pool != nil {
		runtime.SetFinalizer(p, nil)
		p.pool.close()
		p.pool = nil
	}
	shards := p.reqShards
	if shards == 0 {
		shards = runtime.NumCPU()
	}
	if n := len(p.out); shards > n {
		shards = n
	}
	p.cfg.Shards = shards
	if shards > 1 {
		p.pool = newShardPool(p.cfg, shards, p.hist, p.plans, p.out, p.ip, p.reg.ActiveSlice())
		// Safety net for callers that drop the controller without Close:
		// the workers reference only the shard state, never p, so an
		// unclosed controller still becomes unreachable and its pool is
		// reclaimed here.
		runtime.SetFinalizer(p, (*Pulse).Close)
	}
}

// Close stops the shard worker goroutines. It is idempotent, safe on a
// serial (single-shard) controller, and must not race with KeepAlive or
// RecordInvocations; the controller must not be driven afterwards.
func (p *Pulse) Close() error {
	if p.pool != nil {
		runtime.SetFinalizer(p, nil)
		p.pool.close()
	}
	return nil
}

// Shards returns the effective shard count (≥ 1).
func (p *Pulse) Shards() int { return p.cfg.Shards }

// Name implements cluster.Policy.
func (p *Pulse) Name() string {
	name := "pulse-" + p.cfg.Technique.Name()
	if p.cfg.DisableGlobalOpt {
		name += "-noglobal"
	}
	return name
}

// Config returns the effective (defaulted) configuration.
func (p *Pulse) Config() Config { return p.cfg }

// TotalDowngrades returns the number of Algorithm 2 downgrades applied so
// far.
func (p *Pulse) TotalDowngrades() int { return p.totalDowngrades }

// PeakMinutes returns the number of minutes in which a peak was detected
// and flattening ran.
func (p *Pulse) PeakMinutes() int { return p.peakMinutes }

// KeepAlive implements cluster.Policy: it assembles the minute's candidate
// keep-alive set from the per-function plans, runs the global optimizer if
// the minute is a peak, commits the final keep-alive memory to the peak
// detector, and returns the decisions.
//
// The gather first compacts the active set — slots whose plan drained
// before this minute release their plan row and pin their decision to
// NoVariant — then evaluates only the remaining active slots; every other
// slot's decision rests at NoVariant. Under DisableIdleSkip (or a
// SelfObserver) the gather instead walks every slot, exactly as before the
// active-set index existed; both walks produce the same decision vector.
func (p *Pulse) KeepAlive(t int) []int {
	p.compactActive(t)
	switch {
	case p.idleSkip:
		for _, fn32 := range p.active.list {
			fn := int(fn32)
			v, prob, ok := p.plans.get(fn, t)
			if !ok {
				v, prob = cluster.NoVariant, 0
			}
			p.out[fn] = v
			p.ip[fn] = prob
		}
	case p.pool != nil:
		p.pool.dispatch(shardJob{op: opGather, t: t})
		if p.selfWanted {
			p.emitScans(t)
		}
	default:
		var t0 time.Time
		if p.selfWanted {
			t0 = time.Now()
		}
		for fn := range p.out {
			v, prob, ok := p.plans.get(fn, t)
			if !ok {
				v, prob = cluster.NoVariant, 0
			}
			p.out[fn] = v
			p.ip[fn] = prob
		}
		if p.selfWanted {
			telemetry.ObserveScan(p.cfg.Observer, telemetry.ScanSample{
				Minute: t, Shard: -1, Functions: len(p.out), Seconds: time.Since(t0).Seconds(),
			})
		}
	}

	if !p.cfg.DisableGlobalOpt {
		kam := p.keptAliveMB()
		if p.detector.IsPeak(kam) {
			p.peakMinutes++
			target := p.detector.FlattenTarget()
			var downs []Downgrade
			var err error
			if p.idleSkip {
				downs, err = p.global.flattenSparse(p.out, p.ip, target, p.active.list)
			} else {
				downs, err = p.global.Flatten(p.out, p.ip, target)
			}
			if err != nil {
				panic("core: flatten failed on validated state: " + err.Error())
			}
			p.totalDowngrades += len(downs)
			if obs := p.cfg.Observer; obs != nil {
				if !p.inPeak {
					obs.ObservePeak(telemetry.PeakSample{
						Minute:      t,
						Enter:       true,
						KeepAliveMB: kam,
						PriorMB:     p.detector.PriorKaM(),
						TargetMB:    target,
						Downgrades:  len(downs),
					})
				}
				for _, d := range downs {
					obs.ObserveDowngrade(telemetry.DowngradeSample{
						Minute:      t,
						Function:    d.Function,
						FromVariant: d.FromVariant,
						ToVariant:   d.ToVariant,
						Ai:          d.Ai,
						Pr:          d.Pr,
						Ip:          d.Ip,
					})
				}
			}
			p.inPeak = true
		} else if p.inPeak {
			p.inPeak = false
			if obs := p.cfg.Observer; obs != nil {
				obs.ObservePeak(telemetry.PeakSample{
					Minute:      t,
					Enter:       false,
					KeepAliveMB: kam,
					PriorMB:     p.detector.PriorKaM(),
					TargetMB:    p.detector.FlattenTarget(),
				})
			}
		}
	}

	if err := p.detector.Record(p.keptAliveMB()); err != nil {
		panic("core: detector record: " + err.Error())
	}
	return p.out
}

// keptAliveMB sums the current decision vector's memory, iterating the
// active set when idle-skip is on (bit-identical: unlisted slots are
// NoVariant, which the dense sum skips).
func (p *Pulse) keptAliveMB() float64 {
	if p.idleSkip {
		return p.global.keptAliveMBSparse(p.out, p.active.list)
	}
	kam, err := p.global.KeptAliveMemoryMB(p.out)
	if err != nil {
		// Plans only ever hold validated variant indices.
		panic("core: invalid internal plan: " + err.Error())
	}
	return kam
}

// compactActive releases the plan row of every active slot whose plan
// drained before minute t and pins its decision to NoVariant, filtering
// the sorted active list in place (order preserved). A released row yields
// exactly what its expired ring cells would have: NoVariant at every
// future minute.
func (p *Pulse) compactActive(t int) {
	kept := p.active.list[:0]
	for _, fn32 := range p.active.list {
		fn := int(fn32)
		if p.plans.expiry[fn] >= t {
			kept = append(kept, fn32)
			continue
		}
		p.plans.releaseRow(fn)
		p.active.member[fn] = false
		p.out[fn] = cluster.NoVariant
		p.ip[fn] = 0
	}
	p.active.list = kept
}

// ActiveSlots returns the sorted slot indices that may hold a non-NoVariant
// decision, valid from the return of KeepAlive(t) until the next call into
// the policy. Every slot not listed is guaranteed NoVariant. The slice
// aliases controller state: callers must not retain it across minutes. It
// implements cluster.ActiveSetPolicy.
func (p *Pulse) ActiveSlots() []int32 { return p.active.list }

// ColdVariant implements cluster.Policy: invocations that arrive cold run
// the function's standard (highest-quality) model, matching the fixed
// policy's behaviour so accuracy differences come only from keep-alive
// decisions.
func (p *Pulse) ColdVariant(_, fn int) int {
	return p.cfg.Catalog.Families[p.cfg.Assignment[fn]].NumVariants() - 1
}

// RecordInvocations implements cluster.Policy: every function invoked this
// minute gets its history updated and a fresh keep-alive plan for the next
// window minutes, one variant per offset, from the threshold technique.
//
// With more than one shard the per-function work fans out to the worker
// pool; each shard stages its Observer events in a private buffer that is
// flushed here, in shard order, once the minute barrier is reached — so
// the audit log sees the exact event sequence a serial controller emits.
func (p *Pulse) RecordInvocations(t int, counts []int) {
	p.invokedBuf = p.invokedBuf[:0]
	active := p.reg.ActiveSlice()
	for fn, c := range counts {
		if c == 0 || !active[fn] {
			continue
		}
		p.invokedBuf = append(p.invokedBuf, int32(fn))
	}
	p.recordInvoked(t, counts, len(counts))
}

// RecordInvocationsSparse is the active-set fast path of RecordInvocations:
// invoked lists, in strictly ascending slot order, the functions with a
// nonzero count, so the controller touches O(invoked) state instead of
// scanning the dense counts vector. Decisions and learned state are
// bit-identical to the dense entry point. It implements
// cluster.ActiveSetPolicy.
func (p *Pulse) RecordInvocationsSparse(t int, counts []int, invoked []int32) {
	p.invokedBuf = p.invokedBuf[:0]
	active := p.reg.ActiveSlice()
	prev := int32(-1)
	for _, fn := range invoked {
		if fn <= prev || int(fn) >= len(counts) {
			panic("core: invoked list not strictly ascending within the population")
		}
		prev = fn
		if counts[fn] == 0 || !active[fn] {
			continue
		}
		p.invokedBuf = append(p.invokedBuf, fn)
	}
	p.recordInvoked(t, counts, len(p.invokedBuf))
}

// recordInvoked runs the function-centric optimizer for the slots in
// p.invokedBuf (ascending): plan rows are acquired and the active set
// updated on the coordinator, then the history/schedule work runs either
// on the shard pool or serially. scanFns is the slot count a serial
// ScanSample reports (the dense population for the dense entry point).
func (p *Pulse) recordInvoked(t int, counts []int, scanFns int) {
	invoked := p.invokedBuf
	added := false
	for _, fn32 := range invoked {
		fn := int(fn32)
		p.plans.ensureRow(fn)
		p.plans.expiry[fn] = t + p.cfg.Window
		if p.active.add(fn) {
			added = true
		}
	}
	if added {
		p.active.sort()
	}

	if p.pool != nil {
		if p.idleSkip {
			p.pool.dispatch(shardJob{op: opRecordSparse, t: t, counts: counts, invoked: invoked})
		} else {
			p.pool.dispatch(shardJob{op: opRecord, t: t, counts: counts})
		}
		if p.selfWanted {
			p.emitScans(t)
		}
		if obs := p.cfg.Observer; obs != nil {
			var t0 time.Time
			if p.selfWanted {
				t0 = time.Now()
			}
			p.pool.flush(obs)
			if p.selfWanted {
				telemetry.ObserveFlush(obs, telemetry.FlushSample{
					Minute: t, Seconds: time.Since(t0).Seconds(),
				})
			}
		}
		return
	}
	var t0 time.Time
	if p.selfWanted {
		t0 = time.Now()
	}
	for _, fn32 := range invoked {
		fn := int(fn32)
		if err := p.hist.record(fn, t); err != nil {
			panic("core: history record: " + err.Error())
		}
		h := History{ar: p.hist, fn: fn}
		fam := p.cfg.Catalog.Families[p.cfg.Assignment[fn]]
		probs := h.Probabilities(p.cfg.Window, p.cfg.Blend)
		sched, err := Schedule(probs, p.cfg.Technique, fam.NumVariants())
		if err != nil {
			panic("core: schedule: " + err.Error())
		}
		for d := 1; d <= p.cfg.Window; d++ {
			p.plans.set(fn, t+d, sched[d], probs[d])
		}
		if obs := p.cfg.Observer; obs != nil {
			obs.ObserveSchedule(telemetry.ScheduleSample{
				Minute:   t,
				Function: fn,
				Plan:     sched[1:],
				Probs:    probs[1:],
			})
		}
	}
	if p.selfWanted {
		telemetry.ObserveScan(p.cfg.Observer, telemetry.ScanSample{
			Minute: t, Shard: -1, Functions: scanFns, Seconds: time.Since(t0).Seconds(),
		})
	}
}

// emitScans reports each shard's just-completed op duration, in shard
// order (the coordinator emits so samples stay barrier-serialized).
func (p *Pulse) emitScans(t int) {
	for i, s := range p.pool.shards {
		telemetry.ObserveScan(p.cfg.Observer, telemetry.ScanSample{
			Minute: t, Shard: i, Functions: s.scanFns, Seconds: s.scanSec,
		})
	}
}

// History exposes function fn's inter-arrival history (for reports/tests).
// The returned view reads the controller's history arena directly.
func (p *Pulse) History(fn int) *History {
	if fn < 0 || fn >= p.hist.n {
		return nil
	}
	return &History{ar: p.hist, fn: fn}
}

// Detector exposes the peak detector (for reports/tests).
func (p *Pulse) Detector() *PeakDetector { return p.detector }

// PriorityCount returns function fn's downgrade count from Algorithm 2's
// priority structure — how often its model has been downgraded during
// peaks.
func (p *Pulse) PriorityCount(fn int) float64 { return p.global.Priority().Count(fn) }

var _ cluster.ActiveSetPolicy = (*Pulse)(nil)
