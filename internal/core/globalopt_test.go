package core

import (
	"math"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
)

func TestNewPeakDetectorValidation(t *testing.T) {
	if _, err := NewPeakDetector(0, 60, PriorAlgorithm1); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewPeakDetector(0.1, 0, PriorAlgorithm1); err == nil {
		t.Error("zero local window accepted")
	}
}

func TestPeakDetectorStartup(t *testing.T) {
	d, err := NewPeakDetector(0.10, 10, PriorAlgorithm1)
	if err != nil {
		t.Fatal(err)
	}
	// Before any history nothing is a peak.
	if d.IsPeak(1e9) {
		t.Error("peak detected with no history")
	}
	if !math.IsInf(d.PriorKaM(), 1) {
		t.Errorf("startup prior = %v, want +Inf", d.PriorKaM())
	}
	if !math.IsInf(d.FlattenTarget(), 1) {
		t.Error("startup flatten target should be +Inf")
	}
}

func TestPeakDetectorContinuousActivity(t *testing.T) {
	d, _ := NewPeakDetector(0.10, 10, PriorAlgorithm1)
	if err := d.Record(1000); err != nil {
		t.Fatal(err)
	}
	// Prior is the previous minute (1000); threshold 10% → peak above 1100.
	if got := d.PriorKaM(); got != 1000 {
		t.Errorf("prior = %v, want 1000", got)
	}
	if d.IsPeak(1100) {
		t.Error("exactly at threshold should not be a peak (strict >)")
	}
	if !d.IsPeak(1101) {
		t.Error("1101 > 1100 should be a peak")
	}
	if got := d.FlattenTarget(); math.Abs(got-1100) > 1e-9 {
		t.Errorf("flatten target = %v, want 1100", got)
	}
}

func TestPeakDetectorInactivityFallbacks(t *testing.T) {
	d, _ := NewPeakDetector(0.10, 5, PriorAlgorithm1)
	// Not yet operational 2× the local window: after inactivity the prior
	// falls back to the last non-zero keep-alive memory.
	_ = d.Record(800)
	_ = d.Record(0)
	if got := d.PriorKaM(); got != 800 {
		t.Errorf("prior after short inactivity = %v, want last non-zero 800", got)
	}
	// Never-active system: prior is +Inf, nothing peaks.
	d2, _ := NewPeakDetector(0.10, 5, PriorAlgorithm1)
	for i := 0; i < 20; i++ {
		_ = d2.Record(0)
	}
	if !math.IsInf(d2.PriorKaM(), 1) {
		t.Errorf("never-active prior = %v, want +Inf", d2.PriorKaM())
	}
	if d2.IsPeak(5000) {
		t.Error("first activity ever must not be a peak")
	}
}

func TestPeakDetectorLocalWindowAverage(t *testing.T) {
	d, _ := NewPeakDetector(0.10, 3, PriorAlgorithm1)
	// Run ≥ 2× local window with activity, then a zero minute.
	for _, kam := range []float64{900, 900, 900, 300, 600, 900} {
		_ = d.Record(kam)
	}
	_ = d.Record(0)
	// Elapsed (7) ≥ 2×3 and the rolling 3-minute average covers the last
	// 3 samples (900, 0 … wait: window holds 600, 900, 0) → mean 500 > 0,
	// so the prior is that average.
	want := (600.0 + 900 + 0) / 3
	if got := d.PriorKaM(); math.Abs(got-want) > 1e-9 {
		t.Errorf("prior after long activity = %v, want window avg %v", got, want)
	}
	if d.Elapsed() != 7 {
		t.Errorf("elapsed = %d", d.Elapsed())
	}
}

func TestPeakDetectorNaiveMode(t *testing.T) {
	d, _ := NewPeakDetector(0.10, 5, PriorNaive)
	_ = d.Record(800)
	_ = d.Record(0)
	// Naive mode compares against the literal previous minute (0), so any
	// activity is a "peak" — the failure mode Algorithm 1 exists to avoid.
	if got := d.PriorKaM(); got != 0 {
		t.Errorf("naive prior = %v, want 0", got)
	}
	if !d.IsPeak(100) {
		t.Error("naive mode should flag activity after inactivity as a peak")
	}
}

func TestPeakDetectorRecordNegative(t *testing.T) {
	d, _ := NewPeakDetector(0.10, 5, PriorAlgorithm1)
	if err := d.Record(-1); err == nil {
		t.Error("negative keep-alive memory accepted")
	}
}

func TestPriorityStructure(t *testing.T) {
	if _, err := NewPriority(0); err == nil {
		t.Error("zero models accepted")
	}
	p, err := NewPriority(3)
	if err != nil {
		t.Fatal(err)
	}
	// All zeros: degenerate normalization (Equation 1) gives all zeros.
	for _, v := range p.Normalize() {
		if v != 0 {
			t.Error("fresh priority should normalize to zeros")
		}
	}
	_ = p.Bump(1)
	_ = p.Bump(1)
	_ = p.Bump(2)
	norm := p.Normalize()
	if norm[0] != 0 || norm[1] != 1 || math.Abs(norm[2]-0.5) > 1e-12 {
		t.Errorf("normalized = %v, want [0 1 0.5]", norm)
	}
	if p.Count(1) != 2 {
		t.Errorf("count = %v", p.Count(1))
	}
	if p.Count(-1) != 0 || p.Count(9) != 0 {
		t.Error("out-of-range counts should read 0")
	}
	if err := p.Bump(7); err == nil {
		t.Error("out-of-range bump accepted")
	}
}

func optCatalog() *models.Catalog {
	return &models.Catalog{Families: []models.Family{
		{
			Name: "big",
			Variants: []models.Variant{
				{Name: "b-lo", AccuracyPct: 70, ExecSec: 1, MemoryMB: 400},
				{Name: "b-hi", AccuracyPct: 90, ExecSec: 2, MemoryMB: 2000},
			},
		},
		{
			Name: "small",
			Variants: []models.Variant{
				{Name: "s-lo", AccuracyPct: 60, ExecSec: 1, MemoryMB: 200},
				{Name: "s-hi", AccuracyPct: 85, ExecSec: 2, MemoryMB: 800},
			},
		},
	}}
}

func TestGlobalOptimizerValidation(t *testing.T) {
	cat := optCatalog()
	if _, err := NewGlobalOptimizer(nil, models.Assignment{0}, StepByOne, false); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewGlobalOptimizer(cat, models.Assignment{}, StepByOne, false); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := NewGlobalOptimizer(cat, models.Assignment{5}, StepByOne, false); err == nil {
		t.Error("bad assignment accepted")
	}
}

func TestKeptAliveMemory(t *testing.T) {
	g, err := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepByOne, false)
	if err != nil {
		t.Fatal(err)
	}
	kam, err := g.KeptAliveMemoryMB([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if kam != 2200 { // 2000 + 200
		t.Errorf("KaM = %v, want 2200", kam)
	}
	kam, err = g.KeptAliveMemoryMB([]int{-1, -1})
	if err != nil || kam != 0 {
		t.Errorf("empty KaM = %v, %v", kam, err)
	}
	if _, err := g.KeptAliveMemoryMB([]int{0}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := g.KeptAliveMemoryMB([]int{5, 0}); err == nil {
		t.Error("bad variant accepted")
	}
}

func TestFlattenDowngradesLowestUtility(t *testing.T) {
	g, err := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepByOne, false)
	if err != nil {
		t.Fatal(err)
	}
	// Both at highest. fn0: Ai=0.20, Ip=0.9 → Uv=1.1. fn1: Ai=0.25,
	// Ip=0.1 → Uv=0.35. fn1 must be downgraded first.
	decisions := []int{1, 1}
	ip := []float64{0.9, 0.1}
	downs, err := g.Flatten(decisions, ip, 2500) // current 2800, free ≥300
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 {
		t.Fatalf("downgrades = %v", downs)
	}
	if downs[0].Function != 1 || downs[0].FromVariant != 1 || downs[0].ToVariant != 0 {
		t.Errorf("downgrade = %+v, want fn1 hi→lo", downs[0])
	}
	if decisions[0] != 1 || decisions[1] != 0 {
		t.Errorf("decisions = %v", decisions)
	}
	if g.Priority().Count(1) != 1 {
		t.Error("priority not bumped")
	}
}

func TestFlattenEvictsFromLowest(t *testing.T) {
	g, err := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepByOneEvict, false)
	if err != nil {
		t.Fatal(err)
	}
	// Everything at lowest (600 MB total); target forces eviction.
	decisions := []int{0, 0}
	downs, err := g.Flatten(decisions, []float64{0.5, 0.5}, 350)
	if err != nil {
		t.Fatal(err)
	}
	// fn1 (s-lo, Ai=0.60) has lower Uv than fn0 (b-lo, Ai=0.70): evicted
	// first; remaining 400 > 350, so fn0 goes too.
	if len(downs) != 2 {
		t.Fatalf("downgrades = %v", downs)
	}
	if downs[0].Function != 1 || downs[0].ToVariant != -1 {
		t.Errorf("first eviction = %+v", downs[0])
	}
	if decisions[0] != -1 || decisions[1] != -1 {
		t.Errorf("decisions = %v, want all evicted", decisions)
	}
}

func TestFlattenTerminatesWhenNothingLeft(t *testing.T) {
	g, _ := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepByOne, false)
	decisions := []int{-1, -1}
	downs, err := g.Flatten(decisions, []float64{0, 0}, -1) // impossible target
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 0 {
		t.Errorf("downgrades on empty set = %v", downs)
	}
}

func TestFlattenStepByOneFloorsAtLowest(t *testing.T) {
	g, _ := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepByOne, false)
	decisions := []int{1, 1} // 2800 MB
	// Target below even the all-lowest footprint (600 MB): the default
	// step downgrades everything to lowest and stops without evicting —
	// the warm-start guarantee survives unflattenable peaks.
	downs, err := g.Flatten(decisions, []float64{0.5, 0.5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 2 {
		t.Fatalf("downgrades = %v, want 2 (one per model)", downs)
	}
	if decisions[0] != 0 || decisions[1] != 0 {
		t.Errorf("decisions = %v, want all at lowest, never evicted", decisions)
	}
}

func TestFlattenNoopBelowTarget(t *testing.T) {
	g, _ := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepByOne, false)
	decisions := []int{1, 1}
	downs, err := g.Flatten(decisions, []float64{0.5, 0.5}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 0 || decisions[0] != 1 || decisions[1] != 1 {
		t.Error("flatten below target should be a no-op")
	}
}

func TestFlattenErrors(t *testing.T) {
	g, _ := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepByOne, false)
	if _, err := g.Flatten([]int{0}, []float64{0, 0}, 100); err == nil {
		t.Error("wrong decision length accepted")
	}
	if _, err := g.Flatten([]int{0, 0}, []float64{0}, 100); err == nil {
		t.Error("wrong probability length accepted")
	}
}

// Unbiasedness: with identical functions, repeated peaks spread downgrades
// across models instead of hammering one — the priority term at work.
func TestFlattenUnbiasedAcrossPeaks(t *testing.T) {
	cat := &models.Catalog{Families: []models.Family{{
		Name: "same",
		Variants: []models.Variant{
			{Name: "lo", AccuracyPct: 70, ExecSec: 1, MemoryMB: 400},
			{Name: "hi", AccuracyPct: 90, ExecSec: 2, MemoryMB: 1000},
		},
	}}}
	asg := models.Assignment{0, 0, 0}
	g, err := NewGlobalOptimizer(cat, asg, StepByOne, false)
	if err != nil {
		t.Fatal(err)
	}
	// Ten identical peaks, each requiring exactly one downgrade.
	for round := 0; round < 9; round++ {
		decisions := []int{1, 1, 1} // 3000 MB
		if _, err := g.Flatten(decisions, []float64{0.5, 0.5, 0.5}, 2500); err != nil {
			t.Fatal(err)
		}
	}
	// Downgrades must be spread evenly (3 each) across the three models.
	for fn := 0; fn < 3; fn++ {
		if got := g.Priority().Count(fn); got != 3 {
			t.Errorf("model %d downgraded %v times, want 3 (unbiased)", fn, got)
		}
	}
	// Ablation: with the priority term disabled, the tie-break hammers the
	// same model every time.
	gNo, err := NewGlobalOptimizer(cat, asg, StepByOne, true)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 9; round++ {
		decisions := []int{1, 1, 1}
		if _, err := gNo.Flatten(decisions, []float64{0.5, 0.5, 0.5}, 2500); err != nil {
			t.Fatal(err)
		}
	}
	if got := gNo.Priority().Count(0); got != 9 {
		t.Errorf("biased optimizer downgraded model 0 %v times, want all 9", got)
	}
}

func TestFlattenRandomSelection(t *testing.T) {
	// The strawman mode: with a random victim and skewed probabilities, the
	// high-probability model can be the one downgraded — exactly the bias
	// failure Algorithm 2's utility value exists to avoid.
	cat := optCatalog()
	asg := models.Assignment{0, 1}
	sawHighProbVictim := false
	for seed := int64(1); seed <= 20; seed++ {
		g, err := NewGlobalOptimizer(cat, asg, StepByOne, false)
		if err != nil {
			t.Fatal(err)
		}
		g.UseRandomSelection(seed)
		decisions := []int{1, 1}
		downs, err := g.Flatten(decisions, []float64{0.99, 0.01}, 2500)
		if err != nil {
			t.Fatal(err)
		}
		if len(downs) == 0 {
			t.Fatal("no downgrade applied")
		}
		if downs[0].Function == 0 { // the P=0.99 model
			sawHighProbVictim = true
		}
	}
	if !sawHighProbVictim {
		t.Error("random selection never hit the high-probability model across 20 seeds — not random")
	}
	// Utility-based selection never picks the high-probability model here.
	g, err := NewGlobalOptimizer(cat, asg, StepByOne, false)
	if err != nil {
		t.Fatal(err)
	}
	decisions := []int{1, 1}
	downs, err := g.Flatten(decisions, []float64{0.99, 0.01}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if downs[0].Function != 1 {
		t.Errorf("utility selection picked fn %d, want the low-probability fn 1", downs[0].Function)
	}
}

func TestFlattenStepEvict(t *testing.T) {
	g, err := NewGlobalOptimizer(optCatalog(), models.Assignment{0, 1}, StepEvict, false)
	if err != nil {
		t.Fatal(err)
	}
	decisions := []int{1, 1}
	downs, err := g.Flatten(decisions, []float64{0.9, 0.1}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 || downs[0].ToVariant != -1 {
		t.Errorf("evict-mode downgrade = %v, want direct eviction", downs)
	}
}

func TestUtilityTerms(t *testing.T) {
	u := UtilityTerms{Ai: 0.2, Pr: 0.3, Ip: 0.4}
	if math.Abs(u.Uv()-0.9) > 1e-12 {
		t.Errorf("Uv = %v, want 0.9", u.Uv())
	}
}
