package core

// Unit tests for the shard pool mechanics themselves: partitioning,
// lifecycle, defaulting, and the hot-path allocation guarantee. The
// semantic equivalence proofs live in differential_test.go.

import (
	"runtime"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

func newShardedPulse(t *testing.T, nFn, shards int, obs telemetry.Observer) *Pulse {
	t.Helper()
	cat := models.PaperCatalog()
	p, err := New(Config{
		Catalog:    cat,
		Assignment: uniformAssignment(cat, nFn),
		Shards:     shards,
		Observer:   obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestShardedPartitionCoversAllFunctions: the contiguous partition covers
// [0, n) exactly once, with shard sizes differing by at most one, for
// every (n, shards) shape including n not divisible by shards and more
// requested shards than functions.
func TestShardedPartitionCoversAllFunctions(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{12, 2}, {12, 5}, {12, 12}, {7, 3}, {100, 16}, {5, 64},
	} {
		p := newShardedPulse(t, tc.n, tc.shards, nil)
		if p.pool == nil {
			t.Fatalf("n=%d shards=%d: no pool", tc.n, tc.shards)
		}
		want := tc.shards
		if want > tc.n {
			want = tc.n
		}
		if got := p.Shards(); got != want {
			t.Errorf("n=%d shards=%d: effective %d, want %d", tc.n, tc.shards, got, want)
		}
		lo, minSize, maxSize := 0, tc.n, 0
		for _, s := range p.pool.shards {
			if s.lo != lo {
				t.Fatalf("n=%d shards=%d: shard starts at %d, want %d (gap or overlap)", tc.n, tc.shards, s.lo, lo)
			}
			size := s.hi - s.lo
			if size <= 0 {
				t.Fatalf("n=%d shards=%d: empty shard [%d,%d)", tc.n, tc.shards, s.lo, s.hi)
			}
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			lo = s.hi
		}
		if lo != tc.n {
			t.Fatalf("n=%d shards=%d: partition ends at %d, want %d", tc.n, tc.shards, lo, tc.n)
		}
		if maxSize-minSize > 1 {
			t.Errorf("n=%d shards=%d: shard sizes range %d..%d, want balanced", tc.n, tc.shards, minSize, maxSize)
		}
	}
}

// TestShardedDefaults: Shards 0 resolves to one shard per CPU (capped at
// the function count), 1 runs serial with no pool, and negative counts
// are rejected.
func TestShardedDefaults(t *testing.T) {
	cat := models.PaperCatalog()
	asg := uniformAssignment(cat, 4)

	p, err := New(Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := runtime.NumCPU()
	if want > 4 {
		want = 4
	}
	if p.Shards() != want {
		t.Errorf("default shards = %d, want min(NumCPU, n) = %d", p.Shards(), want)
	}

	serial, err := New(Config{Catalog: cat, Assignment: asg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.pool != nil {
		t.Error("shards=1 built a worker pool")
	}
	if serial.Shards() != 1 {
		t.Errorf("serial Shards() = %d, want 1", serial.Shards())
	}

	if _, err := New(Config{Catalog: cat, Assignment: asg, Shards: -2}); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestShardedCloseIdempotent: Close is safe to call repeatedly, on serial
// controllers, and actually stops the workers.
func TestShardedCloseIdempotent(t *testing.T) {
	cat := models.PaperCatalog()
	asg := uniformAssignment(cat, 8)
	p, err := New(Config{Catalog: cat, Assignment: asg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if err := p.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	// Workers exit when their job channels close; give the scheduler a
	// few chances to run them off.
	for i := 0; i < 100 && runtime.NumGoroutine() >= before; i++ {
		runtime.Gosched()
	}

	serial, err := New(Config{Catalog: cat, Assignment: asg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Close(); err != nil {
		t.Errorf("Close on serial controller: %v", err)
	}
}

// TestShardedNameStable: the policy name must not depend on the shard
// count — results are identical, so reports treat them as one policy.
func TestShardedNameStable(t *testing.T) {
	serial := newShardedPulse(t, 8, 1, nil)
	sharded := newShardedPulse(t, 8, 4, nil)
	if serial.Name() != sharded.Name() {
		t.Errorf("name depends on shard count: %q vs %q", serial.Name(), sharded.Name())
	}
}

// TestShardedIdleMinuteZeroAllocs extends the controller's hot-path
// allocation guarantee to the sharded path: once warmed up, a minute with
// no invocations must not allocate — for serial and sharded controllers,
// with and without a no-op observer attached. The worker pool is
// persistent precisely so minute ticks don't spawn goroutines.
func TestShardedIdleMinuteZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		obs    telemetry.Observer
	}{
		{"serial/no-observer", 1, nil},
		{"serial/nop-observer", 1, telemetry.Nop{}},
		{"sharded/no-observer", 4, nil},
		{"sharded/nop-observer", 4, telemetry.Nop{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := newShardedPulse(t, 16, tc.shards, tc.obs)
			counts := make([]int, 16)
			// Warm up: drive some invocations so plans and histories
			// exist, then let the window drain.
			for i := range counts {
				counts[i] = 1
			}
			minute := 0
			for ; minute < 30; minute++ {
				p.KeepAlive(minute)
				p.RecordInvocations(minute, counts)
			}
			for i := range counts {
				counts[i] = 0
			}
			allocs := testing.AllocsPerRun(200, func() {
				p.KeepAlive(minute)
				p.RecordInvocations(minute, counts)
				minute++
			})
			if allocs != 0 {
				t.Errorf("idle minute allocates %v per run, want 0", allocs)
			}
		})
	}
}

// TestShardedWorkerErrorPanics: a worker that hits an impossible internal
// state reports it through the barrier as a panic on the coordinating
// goroutine, matching the serial path's behaviour.
func TestShardedWorkerErrorPanics(t *testing.T) {
	p := newShardedPulse(t, 8, 4, nil)
	counts := make([]int, 8)
	for i := range counts {
		counts[i] = 1
	}
	p.KeepAlive(5)
	p.RecordInvocations(5, counts)
	defer func() {
		if recover() == nil {
			t.Error("time going backwards on a shard worker did not panic")
		}
	}()
	p.RecordInvocations(2, counts) // t < last invocation: History.Record fails
}
