package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// This file implements the sharded execution of the controller's
// embarrassingly parallel half. Per-function state — inter-arrival
// histories and keep-alive plan rings — is partitioned into contiguous
// shards, each owned by one persistent worker goroutine. The per-minute
// fan-out (RecordInvocations) and fan-in (the plan gather at the start of
// KeepAlive) run on the pool behind a WaitGroup barrier; the global view —
// Algorithm 1's peak detection and Algorithm 2's flattening — always runs
// single-threaded on the merged candidate set, so the paper's semantics
// are preserved bit for bit at every shard count.
//
// Determinism guarantees:
//
//   - Shard s exclusively owns functions [lo_s, hi_s); no per-function
//     state is ever touched by two goroutines.
//   - Shards are contiguous and flushed in shard order, so buffered
//     Observer events replay in ascending function order — exactly the
//     serial emission order.
//   - All floating-point accumulation happens on the coordinating
//     goroutine over the merged decision vector, in function order, so no
//     summation is ever re-associated.

// shardOp selects the work a shard worker performs behind one barrier.
type shardOp uint8

const (
	// opRecord runs the function-centric optimizer for the shard's
	// invoked functions: history update, probability estimation, and a
	// fresh keep-alive plan.
	opRecord shardOp = iota
	// opRecordSparse is opRecord driven by the coordinator's pre-filtered
	// invoked list instead of a dense scan of the counts vector; the
	// worker handles the list's intersection with its own range.
	opRecordSparse
	// opGather assembles the minute's candidate decisions from the
	// shard's plan rings into the merged output vector.
	opGather
)

// shardJob is one minute's unit of work for one shard.
type shardJob struct {
	op      shardOp
	t       int
	counts  []int   // engine-owned; read-only until the barrier (opRecord)
	invoked []int32 // coordinator-owned ascending invoked slots (opRecordSparse)
}

// shard owns the contiguous function range [lo, hi). The arenas and state
// slices alias the controller's own; the worker only ever touches slots
// inside its range (plan rows are pre-acquired by the coordinator, so a
// worker never grows or frees arena storage), and the coordinator only
// reads them after the barrier.
//
// A shard never references its *Pulse: workers must not keep the
// controller reachable, so an unclosed controller can still be finalized.
type shard struct {
	lo, hi int
	jobs   chan shardJob

	hist   *histArena
	plans  *planStore
	out    []int
	ip     []float64
	active []bool // aliases the identity registry's per-slot live flags

	catalog    *models.Catalog
	assignment models.Assignment
	window     int
	blend      HistoryBlend
	technique  ThresholdTechnique

	// observe mirrors Observer != nil; samples are staged in buf and
	// flushed by the coordinator at the barrier in shard order.
	observe bool
	buf     telemetry.Buffer

	// timing mirrors telemetry.WantsSelf(Observer): the worker times each
	// op into scanSec/scanFns, which the coordinator reads after the
	// barrier and emits as ScanSamples in shard order.
	timing  bool
	scanSec float64
	scanFns int

	// err records the first internal-invariant violation; the coordinator
	// re-panics with it at the barrier, matching the serial path.
	err error
}

// shardPool drives one persistent worker goroutine per shard.
type shardPool struct {
	shards    []*shard
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// newShardPool partitions n functions into nShards contiguous ranges
// (sizes differing by at most one) and starts one worker per shard.
func newShardPool(cfg Config, nShards int, hist *histArena, plans *planStore, out []int, ip []float64, active []bool) *shardPool {
	n := len(out)
	pool := &shardPool{shards: make([]*shard, nShards)}
	base, rem := n/nShards, n%nShards
	lo := 0
	for i := range pool.shards {
		size := base
		if i < rem {
			size++
		}
		s := &shard{
			lo:         lo,
			hi:         lo + size,
			jobs:       make(chan shardJob, 1),
			hist:       hist,
			plans:      plans,
			out:        out,
			ip:         ip,
			active:     active,
			catalog:    cfg.Catalog,
			assignment: cfg.Assignment,
			window:     cfg.Window,
			blend:      cfg.Blend,
			technique:  cfg.Technique,
			observe:    cfg.Observer != nil,
			timing:     telemetry.WantsSelf(cfg.Observer),
		}
		pool.shards[i] = s
		lo = s.hi
		go s.run(&pool.wg)
	}
	return pool
}

// dispatch fans job out to every shard and waits for the minute barrier.
// It re-panics any worker error, matching the serial path's panics on
// impossible internal states.
func (pl *shardPool) dispatch(job shardJob) {
	pl.wg.Add(len(pl.shards))
	for _, s := range pl.shards {
		s.jobs <- job
	}
	pl.wg.Wait()
	for _, s := range pl.shards {
		if s.err != nil {
			panic("core: " + s.err.Error())
		}
	}
}

// flush replays every shard's staged Observer events in shard order —
// ascending function order, the serial emission order.
func (pl *shardPool) flush(obs telemetry.Observer) {
	for _, s := range pl.shards {
		s.buf.FlushTo(obs)
	}
}

// close stops the workers. Idempotent.
func (pl *shardPool) close() {
	pl.closeOnce.Do(func() {
		for _, s := range pl.shards {
			close(s.jobs)
		}
	})
}

// run is the worker loop: one job per barrier, until the channel closes.
func (s *shard) run(wg *sync.WaitGroup) {
	for job := range s.jobs {
		if s.err == nil {
			var t0 time.Time
			if s.timing {
				t0 = time.Now()
			}
			switch job.op {
			case opRecord:
				s.record(job.t, job.counts)
			case opRecordSparse:
				s.recordSparse(job.t, job.counts, job.invoked)
			case opGather:
				s.gather(job.t)
			}
			if s.timing {
				s.scanSec = time.Since(t0).Seconds()
				s.scanFns = s.hi - s.lo
			}
		}
		wg.Done()
	}
}

// record is the shard-local half of RecordInvocations: identical to the
// serial loop, restricted to [lo, hi), with Observer events staged.
func (s *shard) record(t int, counts []int) {
	for fn := s.lo; fn < s.hi; fn++ {
		c := counts[fn]
		if c == 0 || !s.active[fn] {
			continue
		}
		if !s.recordOne(fn, t) {
			return
		}
	}
}

// recordSparse is record driven by the coordinator's pre-filtered ascending
// invoked list: the worker binary-searches for its range's start and walks
// the list's intersection with [lo, hi). The coordinator already dropped
// zero-count and inactive slots, so the per-slot work — and therefore every
// history update and plan write — is exactly record's.
func (s *shard) recordSparse(t int, _ []int, invoked []int32) {
	i := sort.Search(len(invoked), func(i int) bool { return int(invoked[i]) >= s.lo })
	for _, fn32 := range invoked[i:] {
		fn := int(fn32)
		if fn >= s.hi {
			break
		}
		if !s.recordOne(fn, t) {
			return
		}
	}
}

// recordOne runs the function-centric optimizer for one invoked slot; it
// reports false after staging an error, stopping the shard's minute.
func (s *shard) recordOne(fn, t int) bool {
	if err := s.hist.record(fn, t); err != nil {
		s.err = fmt.Errorf("history record: %w", err)
		return false
	}
	h := History{ar: s.hist, fn: fn}
	fam := s.catalog.Families[s.assignment[fn]]
	probs := h.Probabilities(s.window, s.blend)
	sched, err := Schedule(probs, s.technique, fam.NumVariants())
	if err != nil {
		s.err = fmt.Errorf("schedule: %w", err)
		return false
	}
	for d := 1; d <= s.window; d++ {
		s.plans.set(fn, t+d, sched[d], probs[d])
	}
	if s.observe {
		s.buf.ObserveSchedule(telemetry.ScheduleSample{
			Minute:   t,
			Function: fn,
			Plan:     sched[1:],
			Probs:    probs[1:],
		})
	}
	return true
}

// gather is the shard-local half of KeepAlive's candidate assembly: it
// copies the minute's planned variant and probability for every owned
// function into the merged vectors.
func (s *shard) gather(t int) {
	for fn := s.lo; fn < s.hi; fn++ {
		v, prob, ok := s.plans.get(fn, t)
		if !ok {
			v, prob = cluster.NoVariant, 0
		}
		s.out[fn] = v
		s.ip[fn] = prob
	}
}
