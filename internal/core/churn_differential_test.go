package core

// Churn differential harness: the dynamic-lifecycle analogue of
// differential_test.go. The engine path for churn traces is always serial,
// but the controller still shards internally, and online
// register/deregister triggers shard repartitions mid-run — so the proof
// obligation is that a serial controller and a sharded controller fed the
// same churn workload produce identical results, identical audit streams,
// and identical counterfactual attribution, sample for sample. CI runs
// this under -race alongside the static differential suite.

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// churnWorkloads builds the churn trace matrix: an Azure-like mix with
// moderate churn and a scaled bursty/sporadic mix with heavy churn.
func churnWorkloads(t testing.TB) []differentialWorkload {
	t.Helper()
	moderate, err := trace.Generate(trace.GeneratorConfig{Seed: 31, Horizon: trace.MinutesPerDay, Churn: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var scaled []trace.Archetype
	for i := 0; i < 4; i++ {
		scaled = append(scaled,
			trace.Bursty{BurstsPerDay: 12, BurstLen: 7, BurstRate: 4, QuietRate: 0.05},
			trace.Sporadic{MeanGap: 37},
			trace.Periodic{Period: 11, Jitter: 2},
			trace.Poisson{Rate: 0.4},
		)
	}
	heavy, err := trace.Generate(trace.GeneratorConfig{Seed: 43, Horizon: trace.MinutesPerDay, Archetypes: scaled, Churn: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	wls := []differentialWorkload{
		{name: "azure-like-churn", tr: moderate},
		{name: "bursty-16fn-heavy-churn", tr: heavy},
	}
	for _, wl := range wls {
		if !wl.tr.HasChurn() {
			t.Fatalf("workload %s generated no churn; pick a different seed", wl.name)
		}
	}
	return wls
}

// churnRun replays one churn workload with a PULSE controller at the given
// shard count and returns everything comparable: the engine result, the
// full recorder stream, and the attribution report.
func churnRun(t *testing.T, wl differentialWorkload, cfg Config, shards int) (*cluster.Result, *telemetry.Recorder, attribution.Report) {
	t.Helper()
	cat := models.PaperCatalog()
	asg := uniformAssignment(cat, len(wl.tr.Functions))
	names, initAsg, err := cluster.InitialPopulation(wl.tr, asg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &telemetry.Recorder{}
	acct, err := attribution.New(attribution.Config{
		Catalog: cat, Assignment: initAsg, Cost: cluster.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := telemetry.Multi(rec, acct)

	cfg.Catalog = cat
	cfg.Assignment = initAsg
	cfg.Names = names
	cfg.Shards = shards
	cfg.Observer = obs
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := cluster.Run(cluster.Config{
		Trace:              wl.tr,
		Catalog:            cat,
		Assignment:         asg,
		Cost:               cluster.DefaultCostModel(),
		RecordServiceTimes: true,
		Observer:           obs,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec, acct.Report()
}

// TestDifferentialChurnEngine drives serial and sharded PULSE controllers
// through the churn engine and requires the entire Result, every recorder
// stream (including the lifecycle samples), and the full attribution
// report to be deeply equal — shard repartitions on register/deregister
// must be invisible.
func TestDifferentialChurnEngine(t *testing.T) {
	for _, wl := range churnWorkloads(t) {
		for cfgName, cfg := range differentialConfigs() {
			t.Run(fmt.Sprintf("%s/%s", wl.name, cfgName), func(t *testing.T) {
				baseRes, baseRec, baseRep := churnRun(t, wl, cfg, 1)
				for _, shards := range differentialShardCounts() {
					res, rec, rep := churnRun(t, wl, cfg, shards)
					if !reflect.DeepEqual(res, baseRes) {
						t.Errorf("shards=%d: engine result diverges\nserial:  %+v\nsharded: %+v", shards, baseRes, res)
					}
					for _, s := range []struct {
						kind      string
						got, want any
					}{
						{"invocations", rec.Invocations, baseRec.Invocations},
						{"keep-alives", rec.KeepAlives, baseRec.KeepAlives},
						{"minutes", rec.Minutes, baseRec.Minutes},
						{"schedules", rec.Schedules, baseRec.Schedules},
						{"peaks", rec.Peaks, baseRec.Peaks},
						{"downgrades", rec.Downgrades, baseRec.Downgrades},
						{"registers", rec.Registers, baseRec.Registers},
						{"deregisters", rec.Deregisters, baseRec.Deregisters},
					} {
						if !reflect.DeepEqual(s.got, s.want) {
							t.Errorf("shards=%d: %s stream diverges from serial", shards, s.kind)
						}
					}
					if !reflect.DeepEqual(rep, baseRep) {
						t.Errorf("shards=%d: attribution report diverges\nserial total:  %+v\nsharded total: %+v",
							shards, baseRep.Total, rep.Total)
					}
				}
			})
		}
	}
}

// TestChurnColdHistoryByConstruction checks the registration contract: a
// function that registers mid-trace has no keep-alive plan until its first
// invocations are recorded, so its first served invocation is a cold start.
func TestChurnColdHistoryByConstruction(t *testing.T) {
	wl := churnWorkloads(t)[0]
	_, rec, _ := churnRun(t, wl, Config{}, 1)
	if len(rec.Registers) == 0 {
		t.Fatal("workload produced no mid-trace registrations")
	}
	firstInv := map[int]telemetry.InvocationSample{}
	for _, s := range rec.Invocations {
		if _, ok := firstInv[s.Function]; !ok {
			firstInv[s.Function] = s
		}
	}
	checked := 0
	for _, reg := range rec.Registers {
		s, ok := firstInv[reg.Function]
		if !ok {
			continue // registered but never invoked
		}
		checked++
		if !s.Cold {
			t.Errorf("function %d (%s) registered at minute %d: first invocation at minute %d was warm, want cold",
				reg.Function, reg.Name, reg.Minute, s.Minute)
		}
		if s.Minute < reg.Minute {
			t.Errorf("function %d invoked at minute %d before registering at minute %d", reg.Function, s.Minute, reg.Minute)
		}
	}
	if checked == 0 {
		t.Fatal("no mid-trace registrant was ever invoked; workload too small to prove cold-history")
	}
}

// TestChurnTombstoneDecisions checks the deregistration contract on the
// decision stream: from the minute after a function's last lived minute,
// every keep-alive sample for its slot is NoVariant and no invocation
// samples reference it.
func TestChurnTombstoneDecisions(t *testing.T) {
	wl := churnWorkloads(t)[1]
	_, rec, _ := churnRun(t, wl, Config{}, 1)
	if len(rec.Deregisters) == 0 {
		t.Fatal("workload produced no deregistrations")
	}
	deadFrom := map[int]int{}
	for _, d := range rec.Deregisters {
		deadFrom[d.Function] = d.Minute + 1
	}
	for _, s := range rec.KeepAlives {
		if from, dead := deadFrom[s.Function]; dead && s.Minute >= from && s.Variant != cluster.NoVariant {
			t.Fatalf("slot %d tombstoned from minute %d but kept variant %d at minute %d",
				s.Function, from, s.Variant, s.Minute)
		}
	}
	for _, s := range rec.Invocations {
		if from, dead := deadFrom[s.Function]; dead && s.Minute >= from {
			t.Fatalf("slot %d tombstoned from minute %d but served at minute %d", s.Function, from, s.Minute)
		}
	}
}
