package core

// Differential proofs for the active-set index: idle-skip must be a pure
// iteration-order optimization — every Schedule, KeepAlive decision,
// downgrade, and snapshot must be bit-identical to the dense full-scan
// reference for any interleaving of idle slots, active slots, and lifecycle
// churn. The property test drives both controllers with one random stream
// and compares everything; the alloc pin holds the idle-minute cost at zero
// for a million mostly-idle slots.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
)

// TestIdleSkipDifferential drives an idle-skip controller and a
// DisableIdleSkip reference with an identical random workload — mostly-idle
// slots, a few hot ones, and register/deregister churn — and requires
// bit-identical per-minute decisions, downgrade totals, peak counts, and
// final snapshots, for both the serial and the sharded controller.
func TestIdleSkipDifferential(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				testIdleSkipDifferential(t, shards, seed)
			})
		}
	}
}

func testIdleSkipDifferential(t *testing.T, shards int, seed int64) {
	cat := models.PaperCatalog()
	const n = 48
	newPulse := func(disable bool) *Pulse {
		p, err := New(Config{
			Catalog:         cat,
			Assignment:      uniformAssignment(cat, n),
			Shards:          shards,
			DisableIdleSkip: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	sparse, dense := newPulse(false), newPulse(true)
	if !sparse.idleSkip {
		t.Fatal("idle-skip not engaged on the controller under test")
	}
	if dense.idleSkip {
		t.Fatal("idle-skip engaged on the reference controller")
	}

	rng := rand.New(rand.NewSource(seed))
	live := []string{} // names eligible for deregistration
	nextDyn := 0
	counts := make([]int, n)
	var invoked []int32

	for minute := 0; minute < 150; minute++ {
		// Lifecycle churn: identical calls against both controllers.
		if rng.Float64() < 0.15 {
			name := fmt.Sprintf("dyn-%d", nextDyn)
			nextDyn++
			fam := rng.Intn(len(cat.Families))
			s1, err1 := sparse.RegisterFunction(name, fam)
			s2, err2 := dense.RegisterFunction(name, fam)
			if err1 != nil || err2 != nil {
				t.Fatalf("minute %d: register: %v / %v", minute, err1, err2)
			}
			if s1 != s2 {
				t.Fatalf("minute %d: slot disagreement %d vs %d", minute, s1, s2)
			}
			live = append(live, name)
			counts = append(counts, 0)
		}
		if len(live) > 0 && rng.Float64() < 0.1 {
			i := rng.Intn(len(live))
			name := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := sparse.DeregisterFunction(name); err != nil {
				t.Fatalf("minute %d: deregister sparse: %v", minute, err)
			}
			if err := dense.DeregisterFunction(name); err != nil {
				t.Fatalf("minute %d: deregister dense: %v", minute, err)
			}
		}

		d1 := sparse.KeepAlive(minute)
		d2 := dense.KeepAlive(minute)
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("minute %d: decisions diverge", minute)
		}

		// Mostly-idle workload: a few hot slots, a thin tail of rare ones.
		invoked = invoked[:0]
		for fn := range counts {
			counts[fn] = 0
			if !sparse.FunctionActive(fn) {
				continue
			}
			p := 0.02
			if fn%7 == 0 {
				p = 0.5
			}
			if rng.Float64() < p {
				counts[fn] = 1 + rng.Intn(3)
				invoked = append(invoked, int32(fn))
			}
		}
		sparse.RecordInvocationsSparse(minute, counts, invoked)
		dense.RecordInvocations(minute, counts)
	}

	if sparse.TotalDowngrades() != dense.TotalDowngrades() {
		t.Errorf("downgrades diverge: idle-skip %d, dense %d", sparse.TotalDowngrades(), dense.TotalDowngrades())
	}
	if sparse.PeakMinutes() != dense.PeakMinutes() {
		t.Errorf("peak minutes diverge: idle-skip %d, dense %d", sparse.PeakMinutes(), dense.PeakMinutes())
	}
	if !reflect.DeepEqual(sparse.Snapshot(), dense.Snapshot()) {
		t.Error("snapshots diverge after identical streams")
	}
}

// TestIdleSkipSparseDenseEntryPointsAgree: the two record entry points are
// interchangeable on one controller — feeding the sparse entry point the
// invoked list derived from the dense counts vector leaves every decision
// and the snapshot identical to a controller fed densely.
func TestIdleSkipSparseDenseEntryPointsAgree(t *testing.T) {
	cat := models.PaperCatalog()
	const n = 24
	mk := func() *Pulse {
		p, err := New(Config{Catalog: cat, Assignment: uniformAssignment(cat, n)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	var invoked []int32
	for minute := 0; minute < 80; minute++ {
		da := a.KeepAlive(minute)
		db := b.KeepAlive(minute)
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("minute %d: decisions diverge", minute)
		}
		invoked = invoked[:0]
		for fn := range counts {
			counts[fn] = 0
			if rng.Float64() < 0.2 {
				counts[fn] = 1
				invoked = append(invoked, int32(fn))
			}
		}
		a.RecordInvocationsSparse(minute, counts, invoked)
		b.RecordInvocations(minute, counts)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Error("snapshots diverge between sparse and dense entry points")
	}
}

// TestIdleSkipMinuteZeroAllocs pins the idle-minute cost of a
// million-function controller at zero heap allocations — first while a
// small active set still holds live plans (the minute touches only those
// slots), then after the plans drain and the active set empties (the minute
// touches nothing). This is the property that makes the minute barrier
// scale with active functions instead of registered ones.
func TestIdleSkipMinuteZeroAllocs(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	cat := models.PaperCatalog()
	p, err := New(Config{Catalog: cat, Assignment: uniformAssignment(cat, n), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.idleSkip {
		t.Fatal("idle-skip not engaged")
	}

	counts := make([]int, n)
	hot := []int32{0, int32(n / 2), int32(n - 1)}
	minute := 0
	// Warm up: a handful of hot slots invoked every minute, the rest idle,
	// long enough for row reuse and priority state to reach steady state.
	for ; minute < 30; minute++ {
		p.KeepAlive(minute)
		for _, fn := range hot {
			counts[fn] = 1
		}
		p.RecordInvocationsSparse(minute, counts, hot)
		for _, fn := range hot {
			counts[fn] = 0
		}
	}

	// Phase 1: idle minutes while the hot slots' plans are still live. All
	// runs stay inside the plan window so no row compaction (and no free-
	// list growth) can occur mid-measurement.
	window := p.Config().Window
	runs := window - 3
	if allocs := testing.AllocsPerRun(runs, func() {
		p.KeepAlive(minute)
		p.RecordInvocationsSparse(minute, counts, nil)
		minute++
	}); allocs != 0 {
		t.Errorf("idle minute with resident active set allocates %v per run, want 0 (n=%d)", allocs, n)
	}

	// Let the remaining plans drain and compact (the one-time free-list
	// growth lands here, outside any measurement).
	for i := 0; i < window+2; i++ {
		p.KeepAlive(minute)
		p.RecordInvocationsSparse(minute, counts, nil)
		minute++
	}
	if got := len(p.ActiveSlots()); got != 0 {
		t.Fatalf("active set holds %d slots after drain, want 0", got)
	}

	// Phase 2: fully-idle minutes over the drained population.
	if allocs := testing.AllocsPerRun(200, func() {
		p.KeepAlive(minute)
		p.RecordInvocationsSparse(minute, counts, nil)
		minute++
	}); allocs != 0 {
		t.Errorf("fully-idle minute allocates %v per run, want 0 (n=%d)", allocs, n)
	}
}
