package core

// Property-based tests for the function-centric optimizer's greedy
// threshold rule: randomized probabilities and variant counts, checked
// against the paper's invariants rather than hand-picked cases.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickProb draws probabilities covering the interesting structure of
// [0,1]: exact band boundaries and endpoints appear often, not almost
// never as with a uniform draw.
func quickProb(rng *rand.Rand, n int) float64 {
	switch rng.Intn(4) {
	case 0:
		return float64(rng.Intn(n+1)) / float64(n) // exactly on a threshold
	case 1:
		return 0
	case 2:
		return 1
	default:
		return rng.Float64()
	}
}

// TestScheduleT1ThresholdProperty: T1 divides [0,1] into n equal areas at
// thresholds i/n, so a selected variant v must satisfy v ≤ p·n < v+1
// (with the top area absorbing p = 1).
func TestScheduleT1ThresholdProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		p := quickProb(rng, n)
		v := TechniqueT1{}.Select(p, n)
		if v < 0 || v >= n {
			return false
		}
		if n == 1 {
			return v == 0
		}
		scaled := p * float64(n)
		if v < n-1 {
			return float64(v) <= scaled && scaled < float64(v+1)
		}
		return scaled >= float64(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestScheduleT2ThresholdProperty: T2 reserves the lowest variant for
// p == 0 and splits (0,1] over the n−1 higher variants.
func TestScheduleT2ThresholdProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		p := quickProb(rng, n)
		v := TechniqueT2{}.Select(p, n)
		if v < 0 || v >= n {
			return false
		}
		if n == 1 {
			return v == 0
		}
		if p == 0 {
			return v == 0
		}
		return v >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestScheduleMonotonicityProperty: for both techniques, a higher
// invocation probability never selects a lower-quality variant.
func TestScheduleMonotonicityProperty(t *testing.T) {
	for _, tech := range []ThresholdTechnique{TechniqueT1{}, TechniqueT2{}} {
		tech := tech
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(8)
			p1 := quickProb(rng, n)
			p2 := quickProb(rng, n)
			if p1 > p2 {
				p1, p2 = p2, p1
			}
			return tech.Select(p1, n) <= tech.Select(p2, n)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
			t.Errorf("%s: %v", tech.Name(), err)
		}
	}
}

// TestSchedulePlanBoundsProperty: a computed plan marks offset 0 unused
// and keeps some valid variant — never "nothing" — at every offset of the
// keep-alive window, for random probability vectors including
// out-of-range garbage (which Select clamps).
func TestSchedulePlanBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		window := 1 + rng.Intn(20)
		probs := make([]float64, window+1)
		for d := 1; d <= window; d++ {
			switch rng.Intn(5) {
			case 0:
				probs[d] = -rng.Float64() // below range: clamps to 0
			case 1:
				probs[d] = 1 + rng.Float64() // above range: clamps to 1
			default:
				probs[d] = quickProb(rng, n)
			}
		}
		for _, tech := range []ThresholdTechnique{TechniqueT1{}, TechniqueT2{}} {
			plan, err := Schedule(probs, tech, n)
			if err != nil {
				return false
			}
			if len(plan) != window+1 || plan[0] != -1 {
				return false
			}
			for d := 1; d <= window; d++ {
				if plan[d] < 0 || plan[d] >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSchedulePointwiseProperty: Schedule is exactly the pointwise
// application of the technique — no cross-offset coupling.
func TestSchedulePointwiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		window := 1 + rng.Intn(20)
		probs := make([]float64, window+1)
		for d := 1; d <= window; d++ {
			probs[d] = quickProb(rng, n)
		}
		plan, err := Schedule(probs, TechniqueT1{}, n)
		if err != nil {
			return false
		}
		want := make([]int, window+1)
		want[0] = -1
		for d := 1; d <= window; d++ {
			want[d] = TechniqueT1{}.Select(probs[d], n)
		}
		return reflect.DeepEqual(plan, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestScheduleExtremesProperty: probability 1 always keeps the highest
// variant; for T1 a probability strictly below 1/n keeps the lowest.
func TestScheduleExtremesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		for _, tech := range []ThresholdTechnique{TechniqueT1{}, TechniqueT2{}} {
			if tech.Select(1, n) != n-1 {
				return false
			}
		}
		p := rng.Float64() / float64(n)
		p = math.Nextafter(p, 0) // strictly below the first threshold
		return TechniqueT1{}.Select(p, n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
