package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"
)

// Sink receives alert notifications. Deliver is called from the engine's
// single delivery goroutine, one notification at a time, so sinks need no
// internal ordering; a sink that blocks delays later deliveries (and
// eventually overflows the engine queue) but never the serving path.
type Sink interface {
	Deliver(Notification)
}

// LogSink writes one line per notification to a standard logger.
type LogSink struct {
	// Logger receives the lines; nil selects log.Default().
	Logger *log.Logger
}

// Deliver implements Sink.
func (s *LogSink) Deliver(n Notification) {
	l := s.Logger
	if l == nil {
		l = log.Default()
	}
	l.Printf("alert %s: rule=%s minute=%d %s %s %g (value %.4f, since minute %d)",
		n.State, n.Rule, n.Minute, n.Metric, n.Op, n.Threshold, n.Value, n.SinceMinute)
}

// Webhook retry schedule: per-attempt timeout, attempt count, and the
// initial backoff (doubled between attempts).
const (
	webhookTimeout  = 5 * time.Second
	webhookAttempts = 3
	webhookBackoff  = 250 * time.Millisecond
)

// WebhookSink POSTs each notification as JSON to a fixed URL, retrying
// with doubling backoff on connection errors and non-2xx responses.
// Delivery is at-least-once: a receiver that times out after processing
// the POST will see the same notification again.
type WebhookSink struct {
	URL string
	// Client is the HTTP client to use; nil selects a private client with
	// a per-attempt timeout of webhookTimeout.
	Client *http.Client
	// Logger receives delivery failures; nil selects log.Default().
	Logger *log.Logger

	delivered, failed uint64 // delivery-goroutine only
}

// NewWebhookSink returns a sink POSTing to url with the default client.
func NewWebhookSink(url string) *WebhookSink {
	return &WebhookSink{URL: url}
}

// Deliver implements Sink.
func (s *WebhookSink) Deliver(n Notification) {
	body, err := json.Marshal(n)
	if err != nil {
		return
	}
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: webhookTimeout}
	}
	backoff := webhookBackoff
	var lastErr error
	for attempt := 0; attempt < webhookAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := client.Post(s.URL, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code >= 200 && code < 300 {
			s.delivered++
			return
		}
		lastErr = fmt.Errorf("status %d", code)
	}
	s.failed++
	l := s.Logger
	if l == nil {
		l = log.Default()
	}
	l.Printf("alert webhook: giving up on %s %s after %d attempts: %v", n.State, n.Rule, webhookAttempts, lastErr)
}

// CollectorSink records every notification in memory — the deterministic
// sink the replay harness and tests assert against.
type CollectorSink struct {
	mu sync.Mutex
	ns []Notification
}

// Deliver implements Sink.
func (s *CollectorSink) Deliver(n Notification) {
	s.mu.Lock()
	s.ns = append(s.ns, n)
	s.mu.Unlock()
}

// Notifications returns a copy of everything delivered so far, in order.
func (s *CollectorSink) Notifications() []Notification {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Notification(nil), s.ns...)
}
