package alert

import (
	"strings"
	"testing"
)

func TestParseRules(t *testing.T) {
	in := `
# comment, then a blank line

cold-spike   cold_rate_pct        >  50    for=3  cooldown=5
savings-reg  savings_vs_fixed_usd <  0     for=5
kam-peak     kam_mb               >  8192
`
	rules, err := ParseRules(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Name: "cold-spike", Metric: MetricColdRatePct, Op: OpAbove, Threshold: 50, For: 3, Cooldown: 5},
		{Name: "savings-reg", Metric: MetricSavingsVsFixedUSD, Op: OpBelow, Threshold: 0, For: 5},
		{Name: "kam-peak", Metric: MetricKaMMB, Op: OpAbove, Threshold: 8192, For: 1},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d: %+v, want %+v", i, rules[i], want[i])
		}
	}
}

func TestParseRulesRejects(t *testing.T) {
	for name, in := range map[string]string{
		"too few fields":   "r1 cold_rate_pct >",
		"unknown metric":   "r1 nope > 5",
		"bad operator":     "r1 cold_rate_pct >= 5",
		"bad threshold":    "r1 cold_rate_pct > zap",
		"bad option":       "r1 cold_rate_pct > 5 for",
		"unknown option":   "r1 cold_rate_pct > 5 window=3",
		"bad option value": "r1 cold_rate_pct > 5 for=x",
		"zero for":         "r1 cold_rate_pct > 5 for=0",
		"negative cool":    "r1 cold_rate_pct > 5 cooldown=-1",
		"duplicate name":   "r1 cold_rate_pct > 5\nr1 kam_mb > 1",
	} {
		if _, err := ParseRules(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// Every rule renders back into syntax its own parser accepts, with the
// same meaning — so a rule set can be logged and pasted into a rule file.
func TestRuleStringRoundTrips(t *testing.T) {
	for _, r := range DefaultRules(true) {
		back, err := ParseRules(strings.NewReader(r.String()))
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if len(back) != 1 || back[0] != r {
			t.Errorf("%s round-tripped to %+v", r, back)
		}
	}
}

func TestMetricNamesRoundTrip(t *testing.T) {
	for _, name := range MetricNames() {
		m, err := ParseMetric(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != name {
			t.Errorf("metric %q round-tripped to %q", name, m.String())
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Error("bogus metric accepted")
	}
}

func TestDefaultRulesValidate(t *testing.T) {
	for _, withSavings := range []bool{false, true} {
		rules := DefaultRules(withSavings)
		for _, r := range rules {
			if err := r.Validate(); err != nil {
				t.Errorf("default rule %s invalid: %v", r.Name, err)
			}
		}
		hasSavings := false
		for _, r := range rules {
			if r.Metric == MetricSavingsVsFixedUSD {
				hasSavings = true
			}
		}
		if hasSavings != withSavings {
			t.Errorf("withSavings=%v: savings rule present=%v", withSavings, hasSavings)
		}
	}
}
