package alert

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Rule is one threshold condition over a per-minute metric.
//
// Semantics (Prometheus-style "for", plus an anti-flap cooldown):
//
//   - the rule breaches at a closed minute when value Op Threshold holds;
//   - it fires after For consecutive breached minutes;
//   - once firing, the first non-breached minute resolves it;
//   - after resolving, the rule cannot fire again for Cooldown minutes —
//     the hysteresis that keeps a value oscillating around the threshold
//     from paging every minute.
type Rule struct {
	// Name identifies the rule in notifications; unique within an engine.
	Name      string
	Metric    Metric
	Op        Op
	Threshold float64
	// For is how many consecutive breached minutes arm the rule (≥ 1).
	For int
	// Cooldown is how many minutes after a resolve the rule stays quiet.
	Cooldown int
}

// String renders the rule in the rule-file syntax it parses from.
func (r Rule) String() string {
	return fmt.Sprintf("%s %s %s %g for=%d cooldown=%d",
		r.Name, r.Metric, r.Op, r.Threshold, r.For, r.Cooldown)
}

// Validate checks one rule in isolation.
func (r Rule) Validate() error {
	if r.Name == "" || strings.ContainsAny(r.Name, " \t\n") {
		return fmt.Errorf("alert: bad rule name %q (non-empty, no whitespace)", r.Name)
	}
	if r.Metric < 0 || r.Metric >= numMetrics {
		return fmt.Errorf("alert: rule %q: metric out of range", r.Name)
	}
	if r.Op != OpAbove && r.Op != OpBelow {
		return fmt.Errorf("alert: rule %q: bad operator", r.Name)
	}
	if !finite(r.Threshold) {
		return fmt.Errorf("alert: rule %q: threshold must be finite", r.Name)
	}
	if r.For < 1 {
		return fmt.Errorf("alert: rule %q: for=%d (must be ≥ 1)", r.Name, r.For)
	}
	if r.Cooldown < 0 {
		return fmt.Errorf("alert: rule %q: cooldown=%d (must be ≥ 0)", r.Name, r.Cooldown)
	}
	return nil
}

// ParseRules reads a rule file: one rule per line,
//
//	<name> <metric> <op> <threshold> [for=<minutes>] [cooldown=<minutes>]
//
// where <op> is > or <, for defaults to 1, and cooldown to 0. Blank lines
// and lines starting with # are ignored. Example:
//
//	# page when over half the minute's invocations start cold
//	cold-spike   cold_rate_pct        >  50  for=3  cooldown=5
//	savings-reg  savings_vs_fixed_usd <  0   for=5  cooldown=10
func ParseRules(r io.Reader) ([]Rule, error) {
	var rules []Rule
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	for lineno := 1; sc.Scan(); lineno++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("alert: line %d: want <name> <metric> <op> <threshold> [for=N] [cooldown=N], got %q", lineno, line)
		}
		rule := Rule{Name: fields[0], For: 1}
		var err error
		if rule.Metric, err = ParseMetric(fields[1]); err != nil {
			return nil, fmt.Errorf("alert: line %d: %w", lineno, err)
		}
		switch fields[2] {
		case ">":
			rule.Op = OpAbove
		case "<":
			rule.Op = OpBelow
		default:
			return nil, fmt.Errorf("alert: line %d: bad operator %q (want > or <)", lineno, fields[2])
		}
		if rule.Threshold, err = strconv.ParseFloat(fields[3], 64); err != nil {
			return nil, fmt.Errorf("alert: line %d: bad threshold %q", lineno, fields[3])
		}
		for _, opt := range fields[4:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("alert: line %d: bad option %q (want key=value)", lineno, opt)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("alert: line %d: bad %s value %q", lineno, k, v)
			}
			switch k {
			case "for":
				rule.For = n
			case "cooldown":
				rule.Cooldown = n
			default:
				return nil, fmt.Errorf("alert: line %d: unknown option %q (want for= or cooldown=)", lineno, k)
			}
		}
		if err := rule.Validate(); err != nil {
			return nil, fmt.Errorf("alert: line %d: %w", lineno, err)
		}
		if seen[rule.Name] {
			return nil, fmt.Errorf("alert: line %d: duplicate rule %q", lineno, rule.Name)
		}
		seen[rule.Name] = true
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rules, nil
}

// DefaultRules is the rule set pulsed -alerts installs when no rule file
// is given. withSavings adds the savings-regression rule, which requires
// the attribution accountant (-attribution).
func DefaultRules(withSavings bool) []Rule {
	rules := []Rule{
		{Name: "cold-spike", Metric: MetricColdRatePct, Op: OpAbove, Threshold: 50, For: 3, Cooldown: 5},
		{Name: "kam-peak", Metric: MetricKaMMB, Op: OpAbove, Threshold: 8192, For: 1, Cooldown: 10},
		{Name: "dereg-invokes", Metric: MetricDeregInvokes, Op: OpAbove, Threshold: 0, For: 1, Cooldown: 5},
	}
	if withSavings {
		rules = append(rules, Rule{
			Name: "savings-regression", Metric: MetricSavingsVsFixedUSD,
			Op: OpBelow, Threshold: 0, For: 5, Cooldown: 10,
		})
	}
	return rules
}
