package alert

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// DefaultQueueSize bounds the notification delivery queue when Config
// leaves it zero.
const DefaultQueueSize = 64

// Config assembles an Engine.
type Config struct {
	// Rules are the threshold conditions to evaluate each minute. Names
	// must be unique; rules over savings_vs_fixed_usd require Attribution.
	Rules []Rule
	// Sinks receive every notification, in order, from the engine's
	// delivery goroutine — a slow sink delays later notifications but
	// never the producer's minute barrier.
	Sinks []Sink
	// Attribution, when non-nil, supplies the savings_vs_fixed_usd rule
	// input from its per-minute ring. The accountant must observe the
	// same sample stream and precede the engine in the observer chain
	// (telemetry.Multi(tel, acct, engine)), so each minute is priced
	// before the engine evaluates it.
	Attribution *attribution.Accountant
	// Stream, when non-nil, receives a "minute" event per closed minute
	// and an "alert" event per transition.
	Stream *Broadcaster
	// QueueSize bounds the delivery queue (0 selects DefaultQueueSize).
	// When full, notifications are dropped and counted, never blocked on.
	QueueSize int
}

// ruleState is one rule's evaluation state.
type ruleState struct {
	rule      Rule
	run       int // consecutive breached minutes while not firing
	firing    bool
	since     int // first breached minute of the current episode
	canFireAt int // cooldown gate: first minute allowed to fire (again)
}

// MinutePoint is the engine's per-minute rollup, published on the stream
// as a "minute" event — the dashboard's live series feed.
type MinutePoint struct {
	Minute       int     `json:"minute"`
	KeepAliveMB  float64 `json:"keepAliveMB"`
	CostUSD      float64 `json:"costUSD"`
	Invocations  int     `json:"invocations"`
	ColdStarts   int     `json:"coldStarts"`
	ColdRatePct  float64 `json:"coldRatePct"`
	DeregInvokes int     `json:"deregInvokes"`
	// SavingsVsFixedUSD is present only with an attribution accountant.
	SavingsVsFixedUSD *float64 `json:"savingsVsFixedUSD,omitempty"`
}

// Engine evaluates threshold rules at the minute barrier. It implements
// telemetry.Observer: attach it after the metrics pipeline and the
// attribution accountant in the observer chain. A minute is evaluated
// when the next minute's rollup sample opens — the same close discipline
// the accountant uses — so firings are a pure function of the sample
// stream and replay deterministically at any shard count or locking mode.
//
// All methods are safe on a nil *Engine (no-ops / zero values), so callers
// can wire an optional engine without guarding every call site.
type Engine struct {
	acct   *attribution.Accountant
	stream *Broadcaster
	sinks  []Sink

	mu     sync.Mutex
	rules  []ruleState
	closed bool
	cur    int     // open minute, -1 before the first sample
	dirty  bool    // open minute has received samples (Flush closes only then)
	kamMB  float64 // open minute's keep-alive memory (from the rollup)
	cost   float64 // open minute's keep-alive cost
	inv    int     // open minute's invocations
	cold   int     // open minute's cold starts

	// dereg counts invocations of deregistered functions; bumped by HTTP
	// handlers concurrent with everything, swapped out at minute close.
	dereg atomic.Int64

	queue     chan Notification
	wg        sync.WaitGroup
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// NewEngine validates the rules and starts the delivery goroutine. Close
// the engine to flush and stop it.
func NewEngine(cfg Config) (*Engine, error) {
	seen := map[string]bool{}
	for _, r := range cfg.Rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("alert: duplicate rule %q", r.Name)
		}
		seen[r.Name] = true
		if r.Metric == MetricSavingsVsFixedUSD && cfg.Attribution == nil {
			return nil, fmt.Errorf("alert: rule %q needs the attribution accountant (metric %s)", r.Name, r.Metric)
		}
	}
	qs := cfg.QueueSize
	if qs <= 0 {
		qs = DefaultQueueSize
	}
	e := &Engine{
		acct:   cfg.Attribution,
		stream: cfg.Stream,
		sinks:  cfg.Sinks,
		rules:  make([]ruleState, len(cfg.Rules)),
		cur:    -1,
		queue:  make(chan Notification, qs),
	}
	for i, r := range cfg.Rules {
		e.rules[i] = ruleState{rule: r}
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for n := range e.queue {
			for _, s := range e.sinks {
				s.Deliver(n)
			}
			e.delivered.Add(1)
		}
	}()
	return e, nil
}

// Close stops the delivery goroutine after draining queued notifications.
// Idempotent; nil-safe. Producers must stop observing first.
func (e *Engine) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.queue)
	e.wg.Wait()
	return nil
}

// Rules returns a copy of the configured rules. nil-safe.
func (e *Engine) Rules() []Rule {
	if e == nil {
		return nil
	}
	out := make([]Rule, len(e.rules))
	for i := range e.rules {
		out[i] = e.rules[i].rule
	}
	return out
}

// RecordDeregisteredInvoke counts one invocation attempt against a
// deregistered function into the open minute's dereg_invokes metric.
// Safe from any goroutine; nil-safe.
func (e *Engine) RecordDeregisteredInvoke() {
	if e == nil {
		return
	}
	e.dereg.Add(1)
}

// Status reports the engine's health for /healthz. nil-safe: a nil engine
// reports Enabled false.
func (e *Engine) Status() Status {
	if e == nil {
		return Status{Firing: []string{}}
	}
	e.mu.Lock()
	st := Status{
		Enabled:   true,
		Rules:     len(e.rules),
		Firing:    []string{},
		Minute:    e.cur,
		Delivered: e.delivered.Load(),
		Dropped:   e.dropped.Load(),
	}
	for i := range e.rules {
		if e.rules[i].firing {
			st.Firing = append(st.Firing, e.rules[i].rule.Name)
		}
	}
	e.mu.Unlock()
	return st
}

// Flush closes the still-open minute and evaluates its rules. The cluster
// engine's feed ends with the final minute open (its rollup opens the
// minute and nothing ever closes it); replay harnesses call Flush after
// the run so the final minute is evaluated exactly once, matching a live
// runtime that stepped past it. A minute that has received no samples is
// left alone, so flushing twice — or flushing an idle engine — evaluates
// nothing and cannot spuriously resolve a firing rule with an empty
// minute. nil-safe.
func (e *Engine) Flush() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if !e.closed && e.cur >= 0 && e.dirty {
		e.closeMinuteLocked()
		e.cur++
	}
	e.mu.Unlock()
}

// ObserveMinute implements telemetry.Observer: the rollup opening minute m
// closes (and evaluates) every minute before it.
func (e *Engine) ObserveMinute(s telemetry.MinuteSample) {
	if e == nil {
		return
	}
	e.mu.Lock()
	if !e.closed {
		e.rollLocked(s.Minute)
		e.kamMB, e.cost = s.KeepAliveMB, s.CostUSD
		e.dirty = true
	}
	e.mu.Unlock()
}

// ObserveInvocation implements telemetry.Observer. Samples carrying an
// older minute (possible under live concurrency, where an invocation's
// sample can be emitted after the tick advanced) fold into the open
// minute, mirroring the accountant.
func (e *Engine) ObserveInvocation(s telemetry.InvocationSample) {
	if e == nil {
		return
	}
	n := s.Count
	if n <= 0 {
		n = 1
	}
	e.mu.Lock()
	if !e.closed {
		e.rollLocked(s.Minute)
		e.inv += n
		if s.Cold {
			e.cold += n
		}
		e.dirty = true
	}
	e.mu.Unlock()
}

// ObserveKeepAlive implements telemetry.Observer (ignored: the minute
// rollup already carries the total keep-alive memory).
func (e *Engine) ObserveKeepAlive(telemetry.KeepAliveSample) {}

// ObserveSchedule implements telemetry.Observer (ignored).
func (e *Engine) ObserveSchedule(telemetry.ScheduleSample) {}

// ObservePeak implements telemetry.Observer (ignored: peaks reach the
// stream through the decision-log tap).
func (e *Engine) ObservePeak(telemetry.PeakSample) {}

// ObserveDowngrade implements telemetry.Observer (ignored).
func (e *Engine) ObserveDowngrade(telemetry.DowngradeSample) {}

// rollLocked advances the open minute to m, closing (and evaluating)
// every minute in between. Minutes only move forward.
func (e *Engine) rollLocked(m int) {
	if e.cur < 0 {
		if m < 0 {
			m = 0
		}
		e.cur = m
		return
	}
	for e.cur < m {
		e.closeMinuteLocked()
		e.cur++
	}
}

// closeMinuteLocked finalizes the open minute: computes the rule inputs,
// evaluates every rule, publishes the minute rollup to the stream, and
// resets the per-minute accumulators.
func (e *Engine) closeMinuteLocked() {
	m := e.cur
	dereg := int(e.dereg.Swap(0))
	coldRate := 0.0
	if e.inv > 0 {
		coldRate = 100 * float64(e.cold) / float64(e.inv)
	}
	savings, haveSavings := 0.0, false
	if e.acct != nil {
		savings, haveSavings = e.acct.MetricAt(attribution.MetricSavingsVsFixedUSD, m)
	}

	for i := range e.rules {
		rs := &e.rules[i]
		var v float64
		switch rs.rule.Metric {
		case MetricColdRatePct:
			v = coldRate
		case MetricKaMMB:
			v = e.kamMB
		case MetricDeregInvokes:
			v = float64(dereg)
		case MetricSavingsVsFixedUSD:
			if !haveSavings {
				// No priced minute to judge (accountant missing the
				// slot): treat as no data, not as a breach.
				rs.run = 0
				continue
			}
			v = savings
		}
		e.evaluateLocked(rs, m, v)
	}

	if e.stream.Stats().Subscribers > 0 {
		pt := MinutePoint{
			Minute: m, KeepAliveMB: e.kamMB, CostUSD: e.cost,
			Invocations: e.inv, ColdStarts: e.cold, ColdRatePct: coldRate,
			DeregInvokes: dereg,
		}
		if haveSavings {
			s := savings
			pt.SavingsVsFixedUSD = &s
		}
		e.stream.Publish(StreamMinute, pt)
	}

	e.kamMB, e.cost = 0, 0
	e.inv, e.cold = 0, 0
	e.dirty = false
}

// evaluateLocked advances one rule's state machine for closed minute m.
func (e *Engine) evaluateLocked(rs *ruleState, m int, v float64) {
	breach := rs.rule.Op.breached(v, rs.rule.Threshold)
	if !rs.firing {
		if !breach {
			rs.run = 0
			return
		}
		rs.run++
		if rs.run >= rs.rule.For && m >= rs.canFireAt {
			rs.firing = true
			rs.since = m - rs.rule.For + 1
			rs.run = 0
			e.notifyLocked(rs, StateFiring, m, v)
		}
		return
	}
	if !breach {
		rs.firing = false
		rs.canFireAt = m + rs.rule.Cooldown + 1
		e.notifyLocked(rs, StateResolved, m, v)
		rs.run = 0
	}
}

// notifyLocked publishes one transition to the stream and enqueues it for
// sink delivery, dropping (and counting) when the queue is full so the
// minute barrier is never blocked by a slow sink.
func (e *Engine) notifyLocked(rs *ruleState, state string, m int, v float64) {
	n := Notification{
		Rule:        rs.rule.Name,
		Metric:      rs.rule.Metric.String(),
		State:       state,
		Minute:      m,
		Value:       v,
		Op:          rs.rule.Op.String(),
		Threshold:   rs.rule.Threshold,
		SinceMinute: rs.since,
	}
	e.stream.Publish(StreamAlert, n)
	select {
	case e.queue <- n:
	default:
		e.dropped.Add(1)
	}
}

var _ telemetry.Observer = (*Engine)(nil)
