package alert

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWebhookSinkDelivers(t *testing.T) {
	var got Notification
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type %q", ct)
		}
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &got); err != nil {
			t.Errorf("bad payload %q: %v", body, err)
		}
	}))
	defer srv.Close()

	s := NewWebhookSink(srv.URL)
	n := Notification{Rule: "r1", Metric: "kam_mb", State: StateFiring, Minute: 7, Value: 9000, Op: ">", Threshold: 8192, SinceMinute: 7}
	s.Deliver(n)
	if hits.Load() != 1 {
		t.Fatalf("%d requests, want 1", hits.Load())
	}
	if got != n {
		t.Errorf("payload %+v, want %+v", got, n)
	}
}

// A flapping receiver: the sink retries with backoff until a 2xx.
func TestWebhookSinkRetries(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
		}
	}))
	defer srv.Close()

	s := NewWebhookSink(srv.URL)
	s.Deliver(Notification{Rule: "r1"})
	if hits.Load() != 3 {
		t.Errorf("%d attempts, want 3 (two failures then success)", hits.Load())
	}
	if s.delivered != 1 || s.failed != 0 {
		t.Errorf("delivered %d failed %d", s.delivered, s.failed)
	}
}

// A dead receiver: the sink gives up after its attempt budget and logs,
// without hanging the delivery goroutine forever.
func TestWebhookSinkGivesUp(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	var buf bytes.Buffer
	s := NewWebhookSink(srv.URL)
	s.Logger = log.New(&buf, "", 0)
	s.Deliver(Notification{Rule: "r1", State: StateFiring})
	if hits.Load() != webhookAttempts {
		t.Errorf("%d attempts, want %d", hits.Load(), webhookAttempts)
	}
	if s.failed != 1 {
		t.Errorf("failed %d, want 1", s.failed)
	}
	if !strings.Contains(buf.String(), "giving up") {
		t.Errorf("no give-up log line: %q", buf.String())
	}
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	s := &LogSink{Logger: log.New(&buf, "", 0)}
	s.Deliver(Notification{Rule: "cold-spike", Metric: "cold_rate_pct", State: StateFiring, Minute: 12, Value: 75, Op: ">", Threshold: 50, SinceMinute: 10})
	line := buf.String()
	for _, want := range []string{"alert firing", "rule=cold-spike", "minute=12", "cold_rate_pct"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
}
