// Package alert is pulsed's live ops surface: a fan-out broadcaster that
// streams the decision log and per-minute series to any number of SSE
// subscribers, and a threshold rule engine evaluated at the minute barrier
// that turns regressions — cold-start spikes, savings falling behind the
// fixed baseline, keep-alive memory peaks, invocations of deregistered
// functions — into firing/resolved notifications delivered to pluggable
// sinks (log lines, webhook POSTs, the stream itself).
//
// The package sits entirely behind the telemetry Observer seam: the Engine
// implements telemetry.Observer and closes a minute when the next minute's
// rollup sample arrives, exactly the way the attribution Accountant does.
// Both the cluster engine and the live runtime emit minute rollups under
// their minute barriers, so rule evaluation is deterministic — the same
// trace produces the same firing minutes whether replayed through the
// serial runtime, the striped runtime, or the (sharded) cluster engine.
//
// Nothing here blocks a producer: the Broadcaster drops events on slow
// subscribers (counting every drop), and the Engine hands notifications to
// a bounded queue drained by its own delivery goroutine, so a stalled
// webhook endpoint can never stall the serving path's minute barrier.
package alert

import (
	"fmt"
	"math"
	"strings"
)

// Metric identifies one per-minute rule input.
type Metric int

// The rule inputs. All are cluster-wide per-minute values, computed when
// the minute closes.
const (
	// MetricColdRatePct is the minute's cold-start percentage:
	// 100 × cold starts / invocations (0 when the minute had no traffic).
	MetricColdRatePct Metric = iota
	// MetricSavingsVsFixedUSD is the minute's keep-alive savings versus
	// the fixed-high shadow baseline, from the attribution ring
	// (attribution.MetricSavingsVsFixedUSD). Rules over it require an
	// Accountant.
	MetricSavingsVsFixedUSD
	// MetricKaMMB is the keep-alive memory (MB) held during the minute.
	MetricKaMMB
	// MetricDeregInvokes counts invocation attempts against deregistered
	// functions during the minute (the API's 410 responses).
	MetricDeregInvokes
	numMetrics
)

var metricNames = [numMetrics]string{
	MetricColdRatePct:       "cold_rate_pct",
	MetricSavingsVsFixedUSD: "savings_vs_fixed_usd",
	MetricKaMMB:             "kam_mb",
	MetricDeregInvokes:      "dereg_invokes",
}

// String returns the metric's rule-file name.
func (m Metric) String() string {
	if m < 0 || m >= numMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// MetricNames lists every rule-input name, in declaration order.
func MetricNames() []string {
	out := make([]string, numMetrics)
	for i, n := range metricNames {
		out[i] = n
	}
	return out
}

// ParseMetric resolves a rule-file name back to its Metric.
func ParseMetric(name string) (Metric, error) {
	for i, n := range metricNames {
		if n == name {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("alert: unknown metric %q (one of %s)", name, strings.Join(MetricNames(), ", "))
}

// Op is a rule's comparison direction.
type Op int

const (
	// OpAbove breaches when the value exceeds the threshold.
	OpAbove Op = iota
	// OpBelow breaches when the value falls under the threshold.
	OpBelow
)

// String returns the rule-file operator.
func (o Op) String() string {
	if o == OpBelow {
		return "<"
	}
	return ">"
}

// breached reports whether v violates the rule direction.
func (o Op) breached(v, threshold float64) bool {
	if o == OpBelow {
		return v < threshold
	}
	return v > threshold
}

// Notification states.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Notification is one alert transition — the webhook payload, the log-sink
// line, and the SSE "alert" event all carry exactly this schema.
type Notification struct {
	// Rule is the rule's name.
	Rule string `json:"rule"`
	// Metric is the rule input's wire name (see MetricNames).
	Metric string `json:"metric"`
	// State is "firing" or "resolved".
	State string `json:"state"`
	// Minute is the closed simulated minute the transition happened at.
	Minute int `json:"minute"`
	// Value is the metric's value at that minute.
	Value float64 `json:"value"`
	// Op and Threshold restate the rule condition (value Op threshold).
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	// SinceMinute is the first breached minute of the episode (for firing,
	// Minute−For+1; for resolved, the minute the episode originally fired).
	SinceMinute int `json:"sinceMinute"`
}

// Status is the engine's health summary, served by GET /healthz. The zero
// value (Enabled false) is what a nil engine reports.
type Status struct {
	Enabled bool `json:"enabled"`
	// Rules is the number of configured rules.
	Rules int `json:"rules"`
	// Firing lists the names of currently firing rules (empty, not null,
	// when quiet).
	Firing []string `json:"firing"`
	// Minute is the open (still accumulating) minute, -1 before any sample.
	Minute int `json:"minute"`
	// Delivered counts notifications handed to every sink; Dropped counts
	// notifications discarded because the delivery queue was full.
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

// finite rejects NaN/Inf thresholds at rule validation.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
