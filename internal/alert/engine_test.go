package alert

import (
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// feedMinute pushes one synthetic minute into the engine: the rollup that
// opens minute m (closing m-1), then m's invocation samples.
func feedMinute(e *Engine, m int, kamMB float64, inv, cold int) {
	e.ObserveMinute(telemetry.MinuteSample{Minute: m, KeepAliveMB: kamMB})
	if inv > cold {
		e.ObserveInvocation(telemetry.InvocationSample{Minute: m, Count: inv - cold})
	}
	if cold > 0 {
		e.ObserveInvocation(telemetry.InvocationSample{Minute: m, Cold: true, Count: cold})
	}
}

// drain waits for the engine's delivery goroutine to hand everything
// queued so far to the sinks.
func drain(t *testing.T, e *Engine, c *CollectorSink, want int) []Notification {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ns := c.Notifications()
		if len(ns) >= want {
			return ns
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink has %d notifications, want %d: %+v", len(ns), want, ns)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEngineFireResolveCooldown(t *testing.T) {
	c := &CollectorSink{}
	e, err := NewEngine(Config{
		Rules: []Rule{{Name: "cold", Metric: MetricColdRatePct, Op: OpAbove, Threshold: 50, For: 2, Cooldown: 3}},
		Sinks: []Sink{c},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Minutes 0-1 breach (100% cold), 2 clears, 3-4 breach again but fall
	// inside the cooldown (resolve at 2 quiets 3..5), 6-7 breach and re-fire.
	traffic := []struct{ inv, cold int }{
		{4, 4}, {4, 4}, // 0,1: breach ×2 → fire at 1
		{4, 0},         // 2: clear → resolve
		{4, 4}, {4, 4}, // 3,4: breach ×2 but canFireAt=6
		{4, 0},         // 5: clear, run resets
		{4, 4}, {4, 4}, // 6,7: breach ×2 → fire at 7
	}
	for m, tr := range traffic {
		feedMinute(e, m, 0, tr.inv, tr.cold)
	}
	e.ObserveMinute(telemetry.MinuteSample{Minute: len(traffic)}) // close the last minute

	ns := drain(t, e, c, 3)
	want := []struct {
		state  string
		minute int
		since  int
	}{
		{StateFiring, 1, 0},
		{StateResolved, 2, 0},
		{StateFiring, 7, 6},
	}
	if len(ns) != len(want) {
		t.Fatalf("got %d notifications %+v, want %d", len(ns), ns, len(want))
	}
	for i, w := range want {
		n := ns[i]
		if n.State != w.state || n.Minute != w.minute || n.SinceMinute != w.since || n.Rule != "cold" {
			t.Errorf("notification %d: %+v, want %s at %d since %d", i, n, w.state, w.minute, w.since)
		}
	}
	st := e.Status()
	if !st.Enabled || st.Rules != 1 || len(st.Firing) != 1 || st.Firing[0] != "cold" {
		t.Errorf("status %+v", st)
	}
}

func TestEngineDeregInvokesMetric(t *testing.T) {
	c := &CollectorSink{}
	e, err := NewEngine(Config{
		Rules: []Rule{{Name: "dereg", Metric: MetricDeregInvokes, Op: OpAbove, Threshold: 0, For: 1}},
		Sinks: []Sink{c},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	feedMinute(e, 0, 0, 1, 0)
	e.RecordDeregisteredInvoke()
	e.RecordDeregisteredInvoke()
	feedMinute(e, 1, 0, 1, 0) // closes 0 → fires with value 2
	feedMinute(e, 2, 0, 1, 0) // closes 1 (no dereg) → resolves

	ns := drain(t, e, c, 2)
	if ns[0].State != StateFiring || ns[0].Minute != 0 || ns[0].Value != 2 {
		t.Errorf("firing %+v", ns[0])
	}
	if ns[1].State != StateResolved || ns[1].Minute != 1 {
		t.Errorf("resolved %+v", ns[1])
	}
}

func TestEngineKaMRuleAndFlush(t *testing.T) {
	c := &CollectorSink{}
	e, err := NewEngine(Config{
		Rules: []Rule{{Name: "kam", Metric: MetricKaMMB, Op: OpAbove, Threshold: 1000, For: 1}},
		Sinks: []Sink{c},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e.ObserveMinute(telemetry.MinuteSample{Minute: 0, KeepAliveMB: 2048})
	// The feed ends with minute 0 still open; Flush closes and evaluates it.
	e.Flush()
	ns := drain(t, e, c, 1)
	if ns[0].State != StateFiring || ns[0].Minute != 0 || ns[0].Value != 2048 {
		t.Errorf("flush firing %+v", ns[0])
	}
	// Flushing again must not re-evaluate anything.
	e.Flush()
	time.Sleep(10 * time.Millisecond)
	if got := c.Notifications(); len(got) != 1 {
		t.Errorf("double flush delivered %d notifications", len(got))
	}
}

func TestNewEngineRejects(t *testing.T) {
	if _, err := NewEngine(Config{Rules: []Rule{
		{Name: "savings", Metric: MetricSavingsVsFixedUSD, Op: OpBelow, Threshold: 0, For: 1},
	}}); err == nil {
		t.Error("savings rule without an accountant accepted")
	}
	if _, err := NewEngine(Config{Rules: []Rule{
		{Name: "dup", Metric: MetricKaMMB, Op: OpAbove, Threshold: 1, For: 1},
		{Name: "dup", Metric: MetricColdRatePct, Op: OpAbove, Threshold: 1, For: 1},
	}}); err == nil {
		t.Error("duplicate rule names accepted")
	}
	if _, err := NewEngine(Config{Rules: []Rule{{Name: "bad", For: 0}}}); err == nil {
		t.Error("invalid rule accepted")
	}
}

// A nil engine is valid everywhere — the disabled configuration.
func TestEngineNilSafe(t *testing.T) {
	var e *Engine
	e.ObserveMinute(telemetry.MinuteSample{Minute: 1})
	e.ObserveInvocation(telemetry.InvocationSample{Minute: 1})
	e.RecordDeregisteredInvoke()
	e.Flush()
	if err := e.Close(); err != nil {
		t.Error(err)
	}
	st := e.Status()
	if st.Enabled || st.Firing == nil {
		t.Errorf("nil engine status %+v", st)
	}
	if e.Rules() != nil {
		t.Error("nil engine has rules")
	}
}

// Steady state — rules configured but nothing transitioning, no stream
// subscribers — must not allocate on the observation hot path.
func TestEngineSteadyStateAllocations(t *testing.T) {
	e, err := NewEngine(Config{
		Rules:  DefaultRules(false),
		Stream: NewBroadcaster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	feedMinute(e, 0, 100, 10, 0)
	m := 1
	allocs := testing.AllocsPerRun(500, func() {
		feedMinute(e, m, 100, 10, 0)
		m++
	})
	if allocs != 0 {
		t.Errorf("steady-state minute costs %.1f allocs, want 0", allocs)
	}
}

func TestEngineCloseStopsEvaluation(t *testing.T) {
	c := &CollectorSink{}
	e, err := NewEngine(Config{
		Rules: []Rule{{Name: "kam", Metric: MetricKaMMB, Op: OpAbove, Threshold: 1, For: 1}},
		Sinks: []Sink{c},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Samples after Close are ignored, not a panic on a closed channel.
	e.ObserveMinute(telemetry.MinuteSample{Minute: 0, KeepAliveMB: 100})
	e.ObserveMinute(telemetry.MinuteSample{Minute: 1, KeepAliveMB: 100})
	e.Flush()
	if got := c.Notifications(); len(got) != 0 {
		t.Errorf("closed engine delivered %+v", got)
	}
}
