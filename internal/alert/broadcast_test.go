package alert

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/telemetry"
)

func TestBroadcastFanOut(t *testing.T) {
	b := NewBroadcaster()
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	defer s1.Close()
	defer s2.Close()
	b.Publish(StreamAlert, map[string]int{"x": 1})
	for i, s := range []*Subscription{s1, s2} {
		select {
		case ev := <-s.C():
			if ev.Type != StreamAlert || string(ev.Data) != `{"x":1}` {
				t.Errorf("sub %d: got %q %q", i, ev.Type, ev.Data)
			}
		default:
			t.Errorf("sub %d: no event", i)
		}
	}
	if st := b.Stats(); st.Subscribers != 2 || st.Published != 1 || st.Dropped != 0 {
		t.Errorf("stats %+v", st)
	}
}

// A subscriber that stops draining loses events — counted, never blocked
// on — while a healthy subscriber on the same broadcaster loses nothing.
func TestBroadcastSlowConsumerDrops(t *testing.T) {
	b := NewBroadcaster()
	stalled := b.Subscribe(2)
	healthy := b.Subscribe(64)
	defer stalled.Close()
	defer healthy.Close()

	const events = 10
	done := make(chan struct{})
	go func() { // Publish must complete regardless of the stalled queue.
		for i := 0; i < events; i++ {
			b.Publish(StreamMinute, MinutePoint{Minute: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}

	if got := stalled.Dropped(); got != events-2 {
		t.Errorf("stalled subscriber dropped %d, want %d", got, events-2)
	}
	if got := healthy.Dropped(); got != 0 {
		t.Errorf("healthy subscriber dropped %d", got)
	}
	if st := b.Stats(); st.Dropped != events-2 || st.Published != events {
		t.Errorf("stats %+v", st)
	}
	n := len(healthy.ch)
	for i := 0; i < n; i++ {
		<-healthy.C()
	}
	if n != events {
		t.Errorf("healthy subscriber received %d, want %d", n, events)
	}
}

// Subscribers coming and going while publishers hammer the broadcaster:
// the race detector is the assertion.
func TestBroadcastChurnConcurrent(t *testing.T) {
	b := NewBroadcaster()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					b.Publish(StreamDecision, telemetry.Event{Minute: i})
				}
			}
		}()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := b.Subscribe(1)
				select {
				case <-s.C():
				default:
				}
				s.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := b.Stats().Subscribers; n != 0 {
		t.Errorf("%d subscribers left after churn", n)
	}
}

func TestPublishNoSubscribersAllocatesNothing(t *testing.T) {
	b := NewBroadcaster()
	// Pre-boxed: the fast path under test is Publish's own (the engine and
	// the EventTap both check for subscribers before boxing a value).
	var v any = MinutePoint{Minute: 1, KeepAliveMB: 512}
	allocs := testing.AllocsPerRun(1000, func() { b.Publish(StreamMinute, v) })
	if allocs != 0 {
		t.Errorf("Publish with no subscribers allocates %.1f/op, want 0", allocs)
	}
	var nilB *Broadcaster
	nilB.Publish(StreamMinute, v) // must not panic
	if st := nilB.Stats(); st != (BroadcastStats{}) {
		t.Errorf("nil broadcaster stats %+v", st)
	}
}

// The idle event tap (no subscribers) must cost nothing per event: it is
// wired into every EventLog.Append a live daemon performs.
func TestEventTapIdleAllocatesNothing(t *testing.T) {
	tap := NewBroadcaster().EventTap()
	ev := telemetry.Event{Kind: telemetry.KindMinute, Minute: 1}
	allocs := testing.AllocsPerRun(1000, func() { tap(ev) })
	if allocs != 0 {
		t.Errorf("idle tap allocates %.1f/op, want 0", allocs)
	}
}

func TestServeHTTPStreamsSSE(t *testing.T) {
	b := NewBroadcaster()
	srv := httptest.NewServer(b)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	// The subscriber registers before the handler writes the retry line,
	// so once we've read it the publish below is guaranteed to fan out.
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "retry:") {
		t.Fatalf("first line %q, err %v", line, err)
	}
	for b.Stats().Subscribers == 0 {
		time.Sleep(time.Millisecond)
	}
	b.Publish(StreamAlert, Notification{Rule: "r1", State: StateFiring})

	var got []string
	for len(got) < 2 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		if line = strings.TrimSpace(line); line != "" {
			got = append(got, line)
		}
	}
	if got[0] != "event: alert" {
		t.Errorf("event line %q", got[0])
	}
	if !strings.HasPrefix(got[1], `data: {"rule":"r1"`) {
		t.Errorf("data line %q", got[1])
	}
	cancel() // disconnect; the handler must unsubscribe
	for i := 0; b.Stats().Subscribers != 0 && i < 500; i++ {
		time.Sleep(time.Millisecond)
	}
	if n := b.Stats().Subscribers; n != 0 {
		t.Errorf("%d subscribers after disconnect", n)
	}
}

func TestServeHTTPRejectsPost(t *testing.T) {
	b := NewBroadcaster()
	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest("POST", "/stream", nil))
	if rec.Code != 405 {
		t.Errorf("POST /stream: %d, want 405", rec.Code)
	}
}

func TestEventTapRepublishes(t *testing.T) {
	b := NewBroadcaster()
	log, err := telemetry.NewEventLog(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Tap(b.EventTap())
	s := b.Subscribe(4)
	defer s.Close()
	log.Append(telemetry.Event{Kind: telemetry.KindDowngrade, Minute: 3, Function: 1})
	select {
	case ev := <-s.C():
		if ev.Type != StreamDecision || !strings.Contains(string(ev.Data), `"kind":"downgrade"`) {
			t.Errorf("got %q %q", ev.Type, ev.Data)
		}
	default:
		t.Fatal("tap did not republish")
	}
}
