package alert

import (
	_ "embed"
	"net/http"
	"strconv"
)

// dashboardHTML is the single-page live ops dashboard. It is plain HTML +
// vanilla JS: an EventSource on /stream for the live feed, plus polls of
// /healthz, /timeseries, and /top?format=json for state the stream does
// not carry. Embedding keeps pulsed a single static binary.
//
//go:embed dashboard.html
var dashboardHTML []byte

// DashboardHandler serves the embedded dashboard page (GET /dashboard).
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/html; charset=utf-8")
		h.Set("Content-Length", strconv.Itoa(len(dashboardHTML)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(dashboardHTML)
	})
}
