package alert

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// Stream event types, carried in the SSE "event:" field.
const (
	// StreamDecision is one decision-log event (telemetry.Event JSON),
	// published by the EventTap.
	StreamDecision = "decision"
	// StreamMinute is the engine's per-minute rollup (MinutePoint JSON).
	StreamMinute = "minute"
	// StreamAlert is one alert transition (Notification JSON).
	StreamAlert = "alert"
	// StreamTrace is one sampled invocation span (provenance.Trace JSON),
	// published by the tracer tap when invocation tracing is enabled.
	StreamTrace = "trace"
	// StreamDropped is the broadcaster telling a subscriber how many
	// events its queue has discarded so far ({"dropped":N}).
	StreamDropped = "dropped"
)

// DefaultSubscriberBuffer is the per-subscriber queue depth when
// Subscribe is called with a non-positive buffer.
const DefaultSubscriberBuffer = 256

// heartbeatInterval paces the SSE comment lines that keep intermediaries
// from timing out an idle stream and let the server notice dead peers.
const heartbeatInterval = 15 * time.Second

// StreamEvent is one fanned-out event: a type tag and its pre-marshaled
// JSON payload (marshaled once per publish, shared by every subscriber).
type StreamEvent struct {
	Type string
	Data []byte
}

// Broadcaster fans events out to subscribers with bounded per-subscriber
// queues. Publishing never blocks: a subscriber whose queue is full has
// the event dropped and counted, so a stalled SSE consumer can never
// back-pressure the serving path. With no subscribers a publish is one
// atomic load — attaching the broadcaster to a hot path costs nothing
// until someone is actually listening.
type Broadcaster struct {
	mu        sync.Mutex
	subs      map[*Subscription]struct{}
	nsubs     atomic.Int32
	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[*Subscription]struct{})}
}

// Subscription is one subscriber's bounded event queue.
type Subscription struct {
	b       *Broadcaster
	ch      chan StreamEvent
	dropped atomic.Uint64
	once    sync.Once
}

// Subscribe registers a new subscriber with the given queue depth (≤ 0
// selects DefaultSubscriberBuffer). The caller must Close the
// subscription when done.
func (b *Broadcaster) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscription{b: b, ch: make(chan StreamEvent, buffer)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.nsubs.Add(1)
	b.mu.Unlock()
	return s
}

// C is the subscriber's event channel. It is closed by Close.
func (s *Subscription) C() <-chan StreamEvent { return s.ch }

// Dropped returns how many events this subscriber has lost to a full queue.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close removes the subscription and closes its channel. Idempotent.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.b.mu.Lock()
		delete(s.b.subs, s)
		s.b.nsubs.Add(-1)
		// Closing under the lock is safe: sends only happen under the
		// same lock, and the map no longer contains s.
		close(s.ch)
		s.b.mu.Unlock()
	})
}

// Publish marshals v once and fans it out to every subscriber,
// non-blocking. With no subscribers it returns before marshaling. nil-safe.
func (b *Broadcaster) Publish(typ string, v any) {
	if b == nil || b.nsubs.Load() == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := StreamEvent{Type: typ, Data: data}
	b.mu.Lock()
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
	b.published.Add(1)
}

// EventTap returns a telemetry.EventLog tap that republishes every
// decision-log event on the stream as a "decision" event. The tap is
// non-blocking by construction (Publish never blocks), as the EventLog
// contract requires, and with no subscribers it costs one atomic load —
// the subscriber check happens before the event is boxed into an
// interface, so an idle tap allocates nothing.
func (b *Broadcaster) EventTap() func(telemetry.Event) {
	return func(ev telemetry.Event) {
		if b.nsubs.Load() == 0 {
			return
		}
		b.Publish(StreamDecision, ev)
	}
}

// BroadcastStats is the broadcaster's health summary for /healthz.
type BroadcastStats struct {
	// Subscribers is the number of currently attached subscribers.
	Subscribers int `json:"subscribers"`
	// Published counts fan-outs performed (events published while at
	// least one subscriber was attached).
	Published uint64 `json:"published"`
	// Dropped counts subscriber-events discarded on full queues, summed
	// over all subscribers past and present.
	Dropped uint64 `json:"dropped"`
}

// Stats returns the broadcaster's counters. nil-safe (all zeros).
func (b *Broadcaster) Stats() BroadcastStats {
	if b == nil {
		return BroadcastStats{}
	}
	return BroadcastStats{
		Subscribers: int(b.nsubs.Load()),
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
	}
}

// ServeHTTP streams events to one subscriber as Server-Sent Events
// (GET /stream). Delivery is at-most-once: events dropped on this
// subscriber's full queue are gone, and the stream tells it so with a
// "dropped" event carrying the running total. The handler exits when the
// client disconnects.
func (b *Broadcaster) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := b.Subscribe(0)
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// Tell EventSource clients how fast to reconnect, and flush the
	// headers so the client sees the stream is live before any event.
	_, _ = io.WriteString(w, "retry: 2000\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(heartbeatInterval)
	defer heartbeat.Stop()
	var reportedDrops uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev := <-sub.ch:
			if d := sub.Dropped(); d > reportedDrops {
				fmt.Fprintf(w, "event: %s\ndata: {\"dropped\":%d}\n\n", StreamDropped, d)
				reportedDrops = d
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
