package experiments

import (
	"fmt"
	"sort"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// TournamentCell is one policy's position in one scenario of the tournament
// experiment: the live PULSE controller or one shadow entrant, ranked by
// total keep-alive cost within the scenario (rank 1 = cheapest).
type TournamentCell struct {
	Scenario      string
	Policy        string // "live" or an entrant name
	Live          bool
	Rank          int
	CostUSD       float64
	ColdStarts    int
	CostVsLiveUSD float64 // entrant cost − live cost; negative = shadow cheaper
}

// tournamentScenarios lists the workloads the entrants race on: one
// single-archetype trace per behaviour class from the Azure-like mix, plus
// the mixed trace under function churn (arrivals and departures mid-run).
func tournamentScenarios() []struct {
	Name       string
	Archetypes []trace.Archetype
	Churn      float64
} {
	single := func(a trace.Archetype) []trace.Archetype {
		out := make([]trace.Archetype, 6)
		for i := range out {
			out[i] = a
		}
		return out
	}
	return []struct {
		Name       string
		Archetypes []trace.Archetype
		Churn      float64
	}{
		{"periodic", single(trace.Periodic{Period: 8, Jitter: 2}), 0},
		{"poisson", single(trace.Poisson{Rate: 0.30}), 0},
		{"diurnal", single(trace.Diurnal{Base: 0.02, Amplitude: 0.6, PeakMinute: 13 * 60}), 0},
		{"bursty", single(trace.Bursty{BurstsPerDay: 3, BurstLen: 6, BurstRate: 4, QuietRate: 0.01}), 0},
		{"heavy-tailed", single(trace.HeavyTailed{Alpha: 1.3, Scale: 2}), 0},
		{"sporadic", single(trace.Sporadic{MeanGap: 180}), 0},
		{"drifting", single(trace.Drifting{Phases: []trace.Archetype{
			trace.Periodic{Period: 4, Jitter: 1},
			trace.Sporadic{MeanGap: 45},
			trace.Bursty{BurstsPerDay: 4, BurstLen: 5, BurstRate: 3, QuietRate: 0.01},
		}}), 0},
		{"mixed-churn", nil, 0.5}, // nil = the default Azure-like mix
	}
}

// ExtensionTournament races every packaged entrant (MPC, Hawkes,
// Q-learning) plus the built-in baselines against the live PULSE
// controller, once per trace archetype and once under function churn. Each
// scenario builds a fresh accountant carrying the full roster — the
// stateful learners must not carry knowledge across workloads — attaches
// it to cluster.Run as the Observer, and ranks live + entrants by total
// keep-alive cost from the arena snapshot. The rendered table is the
// README's entrant-ranking table.
func ExtensionTournament(opts Options) ([]TournamentCell, error) {
	opts = opts.withDefaults()
	cat := models.PaperCatalog()
	cost := cluster.DefaultCostModel()

	var cells []TournamentCell
	t := report.NewTable("Extension — policy tournament (entrants ranked by keep-alive cost per workload)",
		"workload", "rank", "policy", "cost ($)", "cold starts", "Δcost vs live ($)")
	for _, sc := range tournamentScenarios() {
		tr, err := trace.Generate(trace.GeneratorConfig{
			Seed:       opts.Seed,
			Horizon:    opts.HorizonMinutes,
			Archetypes: sc.Archetypes,
			Churn:      sc.Churn,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: tournament %s: %w", sc.Name, err)
		}
		asg := make(models.Assignment, len(tr.Functions))
		for i := range asg {
			asg[i] = i % len(cat.Families)
		}
		// The policy and the accountant see the initial population only;
		// churn arrivals reach both through the lifecycle sample stream.
		polAsg, names := asg, []string(nil)
		if tr.HasChurn() {
			if names, polAsg, err = cluster.InitialPopulation(tr, asg); err != nil {
				return nil, fmt.Errorf("experiments: tournament %s: %w", sc.Name, err)
			}
		}
		ents, err := roster.Build(roster.Names(), cat, cost)
		if err != nil {
			return nil, err
		}
		acct, err := attribution.New(attribution.Config{
			Catalog: cat, Assignment: polAsg, Cost: cost, Entrants: ents,
		})
		if err != nil {
			return nil, err
		}
		pol, err := core.New(core.Config{
			Catalog: cat, Assignment: polAsg, Names: names, Observer: acct, Shards: opts.Shards,
		})
		if err != nil {
			return nil, err
		}
		if _, err := cluster.Run(cluster.Config{
			Trace: tr, Catalog: cat, Assignment: asg, Cost: cost,
			Observer: acct, Shards: opts.Shards,
		}, pol); err != nil {
			return nil, fmt.Errorf("experiments: tournament %s: %w", sc.Name, err)
		}

		snap := acct.Arena().Snapshot()
		rows := []TournamentCell{{
			Scenario: sc.Name, Policy: "live", Live: true,
			CostUSD:    snap.Total.Actual.KeepAliveCostUSD,
			ColdStarts: snap.Total.Actual.ColdStarts,
		}}
		for i, name := range acct.EntrantNames() {
			sh := snap.Total.Shadows[i]
			rows = append(rows, TournamentCell{
				Scenario: sc.Name, Policy: name,
				CostUSD:       sh.KeepAliveCostUSD,
				ColdStarts:    sh.ColdStarts,
				CostVsLiveUSD: sh.KeepAliveCostUSD - snap.Total.Actual.KeepAliveCostUSD,
			})
		}
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].CostUSD != rows[j].CostUSD {
				return rows[i].CostUSD < rows[j].CostUSD
			}
			return rows[i].Policy < rows[j].Policy
		})
		for i := range rows {
			rows[i].Rank = i + 1
			label := rows[i].Policy
			if rows[i].Live {
				label += " *"
			}
			if err := t.AddRow(sc.Name, fmt.Sprintf("%d", rows[i].Rank), label,
				report.F4(rows[i].CostUSD), fmt.Sprintf("%d", rows[i].ColdStarts),
				report.F4(rows[i].CostVsLiveUSD)); err != nil {
				return nil, err
			}
		}
		cells = append(cells, rows...)
	}
	if err := t.Render(opts.Out); err != nil {
		return nil, err
	}
	return cells, nil
}
