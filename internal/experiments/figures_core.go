package experiments

import (
	"math"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/sim"
)

// MemoryFigureResult summarizes one policy's keep-alive memory timeline.
type MemoryFigureResult struct {
	Policy      string
	AvgKaMMB    float64
	PeakKaMMB   float64
	AccuracyPct float64
	Series      []float64
}

func memoryResult(res *cluster.Result) MemoryFigureResult {
	out := MemoryFigureResult{
		Policy:      res.Policy,
		AccuracyPct: res.MeanAccuracyPct(),
		Series:      res.PerMinuteKaMMB,
	}
	var sum float64
	for _, v := range res.PerMinuteKaMMB {
		sum += v
		if v > out.PeakKaMMB {
			out.PeakKaMMB = v
		}
	}
	if len(res.PerMinuteKaMMB) > 0 {
		out.AvgKaMMB = sum / float64(len(res.PerMinuteKaMMB))
	}
	return out
}

func renderMemoryFigure(opts Options, title string, rows []MemoryFigureResult) error {
	opts = opts.withDefaults()
	if err := fprintf(opts.Out, "%s\n", title); err != nil {
		return err
	}
	for _, r := range rows {
		if err := fprintf(opts.Out, "  %-28s avg %8.0f MB  peak %8.0f MB  accuracy %.2f%%\n  %s\n",
			r.Policy, r.AvgKaMMB, r.PeakKaMMB, r.AccuracyPct, report.Sparkline(r.Series, 72)); err != nil {
			return err
		}
	}
	return nil
}

// Figure4 compares keep-alive memory under the fixed policy and under
// PULSE with only the function-centric optimizer (global optimization
// disabled): individual optimization reduces memory but peaks persist.
func Figure4(opts Options) ([]MemoryFigureResult, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	ow, err := e.newOpenWhisk()
	if err != nil {
		return nil, err
	}
	rOW, err := e.run(ow, false)
	if err != nil {
		return nil, err
	}
	indiv, err := e.newPulse(core.Config{DisableGlobalOpt: true})
	if err != nil {
		return nil, err
	}
	rIndiv, err := e.run(indiv, false)
	if err != nil {
		return nil, err
	}
	rows := []MemoryFigureResult{memoryResult(rOW), memoryResult(rIndiv)}
	if err := renderMemoryFigure(opts, "Figure 4 — fixed policy vs individual-only optimization (keep-alive memory)", rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure7 compares keep-alive memory and accuracy under the fixed policy
// and full PULSE: lower memory, smoothed peaks, minimal accuracy drop.
func Figure7(opts Options) ([]MemoryFigureResult, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	ow, err := e.newOpenWhisk()
	if err != nil {
		return nil, err
	}
	rOW, err := e.run(ow, false)
	if err != nil {
		return nil, err
	}
	pulse, err := e.newPulse(core.Config{})
	if err != nil {
		return nil, err
	}
	rPulse, err := e.run(pulse, false)
	if err != nil {
		return nil, err
	}
	rows := []MemoryFigureResult{memoryResult(rOW), memoryResult(rPulse)}
	if err := renderMemoryFigure(opts, "Figure 7 — fixed policy vs full PULSE (keep-alive memory and accuracy)", rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// TradeoffPoint is one point of Figure 5's accuracy/cost scatter.
type TradeoffPoint struct {
	Policy       string
	KeepAliveUSD float64
	AccuracyPct  float64
}

// Figure5 places only-low-quality, only-high-quality, and PULSE on the
// accuracy vs keep-alive-cost plane: PULSE should sit near low-quality cost
// at near high-quality accuracy.
func Figure5(opts Options) ([]TradeoffPoint, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	var out []TradeoffPoint
	add := func(p cluster.Policy, err error) error {
		if err != nil {
			return err
		}
		res, err := e.run(p, false)
		if err != nil {
			return err
		}
		out = append(out, TradeoffPoint{Policy: res.Policy, KeepAliveUSD: res.KeepAliveCostUSD, AccuracyPct: res.MeanAccuracyPct()})
		return nil
	}
	lo, err := policy.NewFixed(e.catalog, e.asg, cluster.DefaultKeepAliveWindow, policy.QualityLowest)
	if err := add(lo, err); err != nil {
		return nil, err
	}
	hi, err := policy.NewFixed(e.catalog, e.asg, cluster.DefaultKeepAliveWindow, policy.QualityHighest)
	if err := add(hi, err); err != nil {
		return nil, err
	}
	pulse, err := e.newPulse(core.Config{})
	if err := add(pulse, err); err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 5 — accuracy vs keep-alive cost", "policy", "keep-alive ($)", "accuracy (%)")
	for _, p := range out {
		if err := t.AddRow(p.Policy, report.F4(p.KeepAliveUSD), report.F(p.AccuracyPct)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(opts.withDefaults().Out); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure6a runs the paper's headline multi-run comparison and returns
// PULSE's improvement over the OpenWhisk fixed policy (paper: 39.5% cost,
// 8.8% service time, −0.6% accuracy).
func Figure6a(opts Options) (sim.Improvement, error) {
	e, err := newEnv(opts)
	if err != nil {
		return sim.Improvement{}, err
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:    e.trace,
		Catalog:  e.catalog,
		Cost:     e.cost,
		Runs:     e.opts.Runs,
		Seed:     e.opts.Seed,
		Workers:  e.opts.Workers,
		Observer: e.opts.Observer,
	}, []sim.NamedFactory{
		{Name: "openwhisk", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return policy.NewFixed(e.catalog, asg, cluster.DefaultKeepAliveWindow, policy.QualityHighest)
		}},
		{Name: "pulse", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return core.New(core.Config{Catalog: e.catalog, Assignment: asg})
		}},
	})
	if err != nil {
		return sim.Improvement{}, err
	}
	imp, err := sim.ImprovementOver(aggs[0], aggs[1])
	if err != nil {
		return sim.Improvement{}, err
	}
	t := report.NewTable("Figure 6a — PULSE % improvement over OpenWhisk fixed 10-minute policy",
		"metric", "improvement", "paper")
	_ = t.AddRow("keep-alive cost", report.Pct(imp.CostPct), "+39.5%")
	_ = t.AddRow("service time", report.Pct(imp.ServiceTimePct), "+8.8%")
	_ = t.AddRow("accuracy", report.Pct(imp.AccuracyPct), "-0.6%")
	if err := t.Render(e.opts.Out); err != nil {
		return sim.Improvement{}, err
	}
	return imp, nil
}

// Figure6bResult carries the per-minute keep-alive-cost error series
// relative to the ideal (containers alive only during invocation minutes).
type Figure6bResult struct {
	PulseErrorPct     []float64
	OpenWhiskErrorPct []float64
	PulseMAE          float64 // mean absolute error, % of ideal
	OpenWhiskMAE      float64
}

// Figure6b computes each minute's deviation from the ideal keep-alive
// cost for PULSE and OpenWhisk. Minutes where the ideal is zero are
// normalized by the trace-wide mean ideal cost to avoid division by zero
// (the paper leaves the normalization implicit).
func Figure6b(opts Options) (*Figure6bResult, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	ideal, err := cluster.IdealCostSeries(e.trace, e.catalog, e.asg, e.cost)
	if err != nil {
		return nil, err
	}
	var idealMean float64
	for _, v := range ideal {
		idealMean += v
	}
	idealMean /= float64(len(ideal))
	if idealMean == 0 {
		idealMean = 1
	}
	ow, err := e.newOpenWhisk()
	if err != nil {
		return nil, err
	}
	rOW, err := e.run(ow, false)
	if err != nil {
		return nil, err
	}
	pulse, err := e.newPulse(core.Config{})
	if err != nil {
		return nil, err
	}
	rPulse, err := e.run(pulse, false)
	if err != nil {
		return nil, err
	}
	errSeries := func(r *cluster.Result) ([]float64, float64) {
		out := make([]float64, len(ideal))
		var mae float64
		for t := range ideal {
			denom := ideal[t]
			if denom == 0 {
				denom = idealMean
			}
			out[t] = (r.PerMinuteCostUSD[t] - ideal[t]) / denom * 100
			mae += math.Abs(out[t])
		}
		return out, mae / float64(len(ideal))
	}
	res := &Figure6bResult{}
	res.PulseErrorPct, res.PulseMAE = errSeries(rPulse)
	res.OpenWhiskErrorPct, res.OpenWhiskMAE = errSeries(rOW)

	o := opts.withDefaults()
	if err := fprintf(o.Out, "Figure 6b — per-minute keep-alive-cost error vs ideal\n"); err != nil {
		return nil, err
	}
	if err := fprintf(o.Out, "  %-12s mean |error| %7.1f%%\n", "openwhisk", res.OpenWhiskMAE); err != nil {
		return nil, err
	}
	if err := fprintf(o.Out, "  %-12s mean |error| %7.1f%%\n", "pulse", res.PulseMAE); err != nil {
		return nil, err
	}
	// Plot a downsampled slice of the two error series, mirroring the
	// paper's first ~300 minutes view.
	span := 300
	if span > len(ideal) {
		span = len(ideal)
	}
	plot := report.NewPlot("", 76, 12)
	plot.XLabel = "minute"
	plot.YLabel = "keep-alive cost error vs ideal (%)"
	if err := plot.AddLine("pulse", res.PulseErrorPct[:span]); err != nil {
		return nil, err
	}
	if err := plot.AddLine("openwhisk", res.OpenWhiskErrorPct[:span]); err != nil {
		return nil, err
	}
	if err := plot.Render(o.Out); err != nil {
		return nil, err
	}
	return res, nil
}
