package experiments

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/trace"
)

// TestFigure9OverheadProbe logs the measured overhead ratios so the
// MILP-vs-PULSE overhead relationship can be inspected.
func TestFigure9OverheadProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement probe")
	}
	res, err := Figure9(Options{Seed: 1, HorizonMinutes: 2 * trace.MinutesPerDay, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pulse mean ratio %.3e, milp mean ratio %.3e, milp/pulse = %.2fx",
		res.PulseMeanRatio, res.MILPMeanRatio, res.MILPMeanRatio/res.PulseMeanRatio)
}
