package experiments

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/milp"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/predict"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/sim"
	"github.com/pulse-serverless/pulse/internal/stats"
)

// Figure8Result holds the improvements from integrating PULSE into the two
// state-of-the-art warm-up strategies.
type Figure8Result struct {
	Wild       sim.Improvement // wild+pulse vs wild-standalone
	IceBreaker sim.Improvement // icebreaker+pulse vs icebreaker-standalone
}

// Figure8 integrates PULSE into Wild and IceBreaker and reports the
// improvement of each integrated configuration over its original technique.
func Figure8(opts Options) (*Figure8Result, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	factories := []sim.NamedFactory{
		{Name: "wild", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			w, err := predict.NewWild(len(asg), predict.DefaultWildConfig())
			if err != nil {
				return nil, err
			}
			return predict.NewStandalonePolicy(w, e.catalog, asg)
		}},
		{Name: "wild+pulse", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			w, err := predict.NewWild(len(asg), predict.DefaultWildConfig())
			if err != nil {
				return nil, err
			}
			return predict.NewIntegratedPolicy(w, e.catalog, asg, predict.IntegratedConfig{})
		}},
		{Name: "icebreaker", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			ib, err := predict.NewIceBreaker(len(asg), predict.DefaultIceBreakerConfig())
			if err != nil {
				return nil, err
			}
			return predict.NewStandalonePolicy(ib, e.catalog, asg)
		}},
		{Name: "icebreaker+pulse", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			ib, err := predict.NewIceBreaker(len(asg), predict.DefaultIceBreakerConfig())
			if err != nil {
				return nil, err
			}
			return predict.NewIntegratedPolicy(ib, e.catalog, asg, predict.IntegratedConfig{})
		}},
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:    e.trace,
		Catalog:  e.catalog,
		Cost:     e.cost,
		Runs:     e.opts.Runs,
		Seed:     e.opts.Seed,
		Workers:  e.opts.Workers,
		Observer: e.opts.Observer,
	}, factories)
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{}
	if res.Wild, err = sim.ImprovementOver(aggs[0], aggs[1]); err != nil {
		return nil, err
	}
	if res.IceBreaker, err = sim.ImprovementOver(aggs[2], aggs[3]); err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 8 — integrating PULSE into existing techniques (% improvement over the original)",
		"technique", "keep-alive cost", "service time", "accuracy", "paper (cost/service/acc)")
	_ = t.AddRow("Wild + PULSE", report.Pct(res.Wild.CostPct), report.Pct(res.Wild.ServiceTimePct),
		report.Pct(res.Wild.AccuracyPct), "+99% / -27.1% / -0.6%")
	_ = t.AddRow("IceBreaker + PULSE", report.Pct(res.IceBreaker.CostPct), report.Pct(res.IceBreaker.ServiceTimePct),
		report.Pct(res.IceBreaker.AccuracyPct), "+14% / +7% / -0.5%")
	if err := t.Render(e.opts.Out); err != nil {
		return nil, err
	}
	return res, nil
}

// ExtensionHoltWinters evaluates the repository's extension warm-up
// strategy (triple exponential smoothing) standalone and PULSE-integrated,
// the same protocol as Figure 8 — the "other predictors" direction the
// paper's discussion invites.
func ExtensionHoltWinters(opts Options) (sim.Improvement, error) {
	e, err := newEnv(opts)
	if err != nil {
		return sim.Improvement{}, err
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:    e.trace,
		Catalog:  e.catalog,
		Cost:     e.cost,
		Runs:     e.opts.Runs,
		Seed:     e.opts.Seed,
		Workers:  e.opts.Workers,
		Observer: e.opts.Observer,
	}, []sim.NamedFactory{
		{Name: "holtwinters", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			hw, err := predict.NewHoltWinters(len(asg), predict.DefaultHWConfig())
			if err != nil {
				return nil, err
			}
			return predict.NewStandalonePolicy(hw, e.catalog, asg)
		}},
		{Name: "holtwinters+pulse", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			hw, err := predict.NewHoltWinters(len(asg), predict.DefaultHWConfig())
			if err != nil {
				return nil, err
			}
			return predict.NewIntegratedPolicy(hw, e.catalog, asg, predict.IntegratedConfig{})
		}},
	})
	if err != nil {
		return sim.Improvement{}, err
	}
	imp, err := sim.ImprovementOver(aggs[0], aggs[1])
	if err != nil {
		return sim.Improvement{}, err
	}
	t := report.NewTable("Extension — integrating PULSE into a Holt-Winters warm-up strategy (% improvement)",
		"technique", "keep-alive cost", "service time", "accuracy")
	_ = t.AddRow("Holt-Winters + PULSE", report.Pct(imp.CostPct), report.Pct(imp.ServiceTimePct), report.Pct(imp.AccuracyPct))
	if err := t.Render(e.opts.Out); err != nil {
		return sim.Improvement{}, err
	}
	return imp, nil
}

// Figure9Result compares the MILP optimizer with PULSE on per-decision
// overhead and delivered accuracy.
type Figure9Result struct {
	// OverheadRatio histograms: decision overhead / total service time per
	// run (Figure 9a's x-axis), log-binned counts plus raw samples.
	PulseRatios []float64
	MILPRatios  []float64

	PulseAccuracyPct float64
	MILPAccuracyPct  float64
	PulseMeanRatio   float64
	MILPMeanRatio    float64
}

// Figure9 runs PULSE and the exact MILP policy over assignment-shuffled
// runs with overhead measurement enabled.
func Figure9(opts Options) (*Figure9Result, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:           e.trace,
		Catalog:         e.catalog,
		Cost:            e.cost,
		Runs:            e.opts.Runs,
		Seed:            e.opts.Seed,
		Workers:         e.opts.Workers,
		MeasureOverhead: true,
		Observer:        e.opts.Observer,
	}, []sim.NamedFactory{
		{Name: "pulse", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return core.New(core.Config{Catalog: e.catalog, Assignment: asg})
		}},
		{Name: "milp", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return milp.NewPolicy(milp.PolicyConfig{Catalog: e.catalog, Assignment: asg})
		}},
	})
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{
		PulseRatios:      aggs[0].OverheadRatios,
		MILPRatios:       aggs[1].OverheadRatios,
		PulseAccuracyPct: aggs[0].MeanAccuracyPct,
		MILPAccuracyPct:  aggs[1].MeanAccuracyPct,
		PulseMeanRatio:   stats.Mean(aggs[0].OverheadRatios),
		MILPMeanRatio:    stats.Mean(aggs[1].OverheadRatios),
	}
	t := report.NewTable("Figure 9 — MILP vs PULSE: decision overhead and accuracy",
		"technique", "mean overhead/service-time", "accuracy (%)")
	_ = t.AddRow("PULSE", fmt.Sprintf("%.2e", res.PulseMeanRatio), report.F(res.PulseAccuracyPct))
	_ = t.AddRow("MILP", fmt.Sprintf("%.2e", res.MILPMeanRatio), report.F(res.MILPAccuracyPct))
	if err := t.Render(e.opts.Out); err != nil {
		return nil, err
	}
	// Figure 9(a)'s histogram of overhead/service-time ratios across runs,
	// on a log-like binning shared by both techniques.
	if err := renderOverheadHistogram(e, res); err != nil {
		return nil, err
	}
	return res, nil
}

// renderOverheadHistogram renders the overhead-ratio distribution of both
// techniques into decade bins.
func renderOverheadHistogram(e *env, res *Figure9Result) error {
	decades := []struct {
		label  string
		lo, hi float64
	}{
		{"<1e-6", 0, 1e-6},
		{"1e-6..1e-5", 1e-6, 1e-5},
		{"1e-5..1e-4", 1e-5, 1e-4},
		{"1e-4..1e-3", 1e-4, 1e-3},
		{"1e-3..1e-2", 1e-3, 1e-2},
		{">=1e-2", 1e-2, 1e300},
	}
	bin := func(samples []float64) []int {
		out := make([]int, len(decades))
		for _, s := range samples {
			for i, d := range decades {
				if s >= d.lo && s < d.hi {
					out[i]++
					break
				}
			}
		}
		return out
	}
	labels := make([]string, len(decades))
	for i, d := range decades {
		labels[i] = d.label
	}
	if err := report.HistogramPlot(e.opts.Out, "PULSE overhead/service-time across runs", labels, bin(res.PulseRatios), 40); err != nil {
		return err
	}
	return report.HistogramPlot(e.opts.Out, "MILP overhead/service-time across runs", labels, bin(res.MILPRatios), 40)
}
