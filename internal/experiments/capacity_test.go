package experiments

import "testing"

func TestCapacityAnalysis(t *testing.T) {
	res, err := CapacityAnalysis(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityMB <= 0 {
		t.Fatal("no capacity derived")
	}
	// The capacity is 80% of the fixed policy's peak, so the fixed policy
	// must contend.
	if res.OpenWhisk.ContentionMinutes == 0 {
		t.Error("fixed policy never contends at 80% of its own peak")
	}
	// PULSE's whole point: lower demand and less contention on the same
	// capacity.
	if res.Pulse.MeanDemandMB >= res.OpenWhisk.MeanDemandMB {
		t.Errorf("PULSE mean demand %v not below fixed %v",
			res.Pulse.MeanDemandMB, res.OpenWhisk.MeanDemandMB)
	}
	if res.Pulse.ContentionMinutes >= res.OpenWhisk.ContentionMinutes {
		t.Errorf("PULSE contention %d not below fixed %d",
			res.Pulse.ContentionMinutes, res.OpenWhisk.ContentionMinutes)
	}
	if res.Pulse.OverflowMBMinutes >= res.OpenWhisk.OverflowMBMinutes {
		t.Errorf("PULSE overflow %v not below fixed %v",
			res.Pulse.OverflowMBMinutes, res.OpenWhisk.OverflowMBMinutes)
	}
}
