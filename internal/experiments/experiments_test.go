package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/trace"
)

// quickOpts keeps experiment tests fast: one simulated day, few runs.
func quickOpts() Options {
	return Options{Seed: 11, HorizonMinutes: trace.MinutesPerDay, Runs: 3}
}

func TestTableIShape(t *testing.T) {
	var sb strings.Builder
	opts := quickOpts()
	opts.Out = &sb
	rows, err := TableI(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // 3+2+3+3+3 variants across the 5 families
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	byName := map[string]TableIResult{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.MeanColdSec <= r.MeanWarmSec {
			t.Errorf("%s: cold %v not above warm %v", r.Variant, r.MeanColdSec, r.MeanWarmSec)
		}
	}
	// Table I anchor values (±5% with measurement noise).
	if r := byName["GPT-Small"]; math.Abs(r.MeanWarmSec-12.90) > 0.65 {
		t.Errorf("GPT-Small warm = %v, want ≈12.90 (Table I)", r.MeanWarmSec)
	}
	if r := byName["GPT-Large"]; math.Abs(r.KeepAliveCentsPerHour-41.71) > 0.1 {
		t.Errorf("GPT-Large cost = %v, want ≈41.71 ¢/h (Table I)", r.KeepAliveCentsPerHour)
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("rendition missing title")
	}
}

func TestTableIIAndIIIShape(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Options) ([]PeakApproachResult, error)
	}{
		{"Table II", TableII},
		{"Table III", TableIII},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			opts := quickOpts()
			opts.Out = &sb
			rows, err := tc.run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 4 {
				t.Fatalf("approaches = %d, want 4", len(rows))
			}
			hi, lo, mix, oracle := rows[0], rows[1], rows[2], rows[3]
			// Paper ordering: cost hi > mix > lo; accuracy hi > oracle ≥
			// mix > lo; equal warm starts across approaches.
			if !(hi.KeepAliveUSD > mix.KeepAliveUSD && mix.KeepAliveUSD > lo.KeepAliveUSD) {
				t.Errorf("cost ordering: hi=%v mix=%v lo=%v", hi.KeepAliveUSD, mix.KeepAliveUSD, lo.KeepAliveUSD)
			}
			if !(hi.AccuracyPct >= oracle.AccuracyPct && oracle.AccuracyPct > lo.AccuracyPct) {
				t.Errorf("accuracy ordering: hi=%v oracle=%v lo=%v", hi.AccuracyPct, oracle.AccuracyPct, lo.AccuracyPct)
			}
			if hi.WarmStarts != lo.WarmStarts || hi.WarmStarts != mix.WarmStarts || hi.WarmStarts != oracle.WarmStarts {
				t.Errorf("warm starts differ: %+v", rows)
			}
			// Service time: all-high slowest, all-low fastest (big models
			// execute slower).
			if !(hi.ServiceTimeSec > lo.ServiceTimeSec) {
				t.Errorf("service ordering: hi=%v lo=%v", hi.ServiceTimeSec, lo.ServiceTimeSec)
			}
		})
	}
}

func TestFigure1And2Shape(t *testing.T) {
	var sb strings.Builder
	opts := quickOpts()
	opts.Out = &sb
	rows, err := Figure1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("figure 1 series = %d, want 5", len(rows))
	}
	// Diversity: the five distributions must not all be identical.
	distinct := false
	var first []float64
	for _, pct := range rows {
		if first == nil {
			first = pct
			continue
		}
		for d := range pct {
			if math.Abs(pct[d]-first[d]) > 1 {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Error("figure 1 series all identical — no inter-arrival diversity")
	}

	opts.HorizonMinutes = 6 * trace.MinutesPerDay // drift needs room
	rows2, err := Figure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 3 {
		t.Fatalf("figure 2 periods = %d, want 3", len(rows2))
	}
	// Drift: first and middle periods of the drifting function differ.
	a := rows2["1 first period"]
	b := rows2["2 middle period"]
	diff := 0.0
	for d := range a {
		diff += math.Abs(a[d] - b[d])
	}
	if diff < 10 {
		t.Errorf("figure 2 shows no drift (Σ|Δ| = %v)", diff)
	}
}

func TestFigure4And7Shape(t *testing.T) {
	opts := quickOpts()
	rows4, err := Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows4) != 2 {
		t.Fatalf("figure 4 rows = %d", len(rows4))
	}
	ow, indiv := rows4[0], rows4[1]
	if indiv.AvgKaMMB >= ow.AvgKaMMB {
		t.Errorf("individual optimization avg KaM %v not below fixed %v", indiv.AvgKaMMB, ow.AvgKaMMB)
	}

	rows7, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	owFull, pulse := rows7[0], rows7[1]
	if pulse.AvgKaMMB >= owFull.AvgKaMMB {
		t.Errorf("PULSE avg KaM %v not below fixed %v", pulse.AvgKaMMB, owFull.AvgKaMMB)
	}
	if pulse.PeakKaMMB >= owFull.PeakKaMMB {
		t.Errorf("PULSE peak KaM %v not below fixed %v (peaks not smoothed)", pulse.PeakKaMMB, owFull.PeakKaMMB)
	}
	accDrop := owFull.AccuracyPct - pulse.AccuracyPct
	if accDrop < 0 || accDrop > 8 {
		t.Errorf("figure 7 accuracy drop = %v, want small and non-negative", accDrop)
	}
	// Full PULSE flattens at least as much as individual-only.
	if pulse.PeakKaMMB > indiv.PeakKaMMB+1e-9 {
		t.Errorf("global optimization raised the peak: %v > %v", pulse.PeakKaMMB, indiv.PeakKaMMB)
	}
}

func TestFigure5Shape(t *testing.T) {
	pts, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	lo, hi, pulse := pts[0], pts[1], pts[2]
	// PULSE sits between the extremes on both axes, nearer low-quality
	// cost and nearer high-quality accuracy.
	if !(pulse.KeepAliveUSD > lo.KeepAliveUSD && pulse.KeepAliveUSD < hi.KeepAliveUSD) {
		t.Errorf("PULSE cost %v outside (%v, %v)", pulse.KeepAliveUSD, lo.KeepAliveUSD, hi.KeepAliveUSD)
	}
	if !(pulse.AccuracyPct > lo.AccuracyPct && pulse.AccuracyPct <= hi.AccuracyPct) {
		t.Errorf("PULSE accuracy %v outside (%v, %v]", pulse.AccuracyPct, lo.AccuracyPct, hi.AccuracyPct)
	}
	costPosition := (pulse.KeepAliveUSD - lo.KeepAliveUSD) / (hi.KeepAliveUSD - lo.KeepAliveUSD)
	accPosition := (pulse.AccuracyPct - lo.AccuracyPct) / (hi.AccuracyPct - lo.AccuracyPct)
	if accPosition <= costPosition {
		t.Errorf("PULSE not on the favorable side of the trade-off: cost position %.2f, accuracy position %.2f",
			costPosition, accPosition)
	}
}

func TestFigure6aHeadline(t *testing.T) {
	imp, err := Figure6a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if imp.CostPct <= 10 {
		t.Errorf("cost improvement = %v%%, want substantial (paper: 39.5%%)", imp.CostPct)
	}
	if imp.AccuracyPct > 0 || imp.AccuracyPct < -8 {
		t.Errorf("accuracy change = %v%%, want small negative (paper: -0.6%%)", imp.AccuracyPct)
	}
}

func TestFigure6bShape(t *testing.T) {
	res, err := Figure6b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PulseErrorPct) != len(res.OpenWhiskErrorPct) || len(res.PulseErrorPct) == 0 {
		t.Fatal("error series empty or mismatched")
	}
	// PULSE tracks the ideal more closely than the fixed policy.
	if res.PulseMAE >= res.OpenWhiskMAE {
		t.Errorf("PULSE MAE %v not below OpenWhisk %v", res.PulseMAE, res.OpenWhiskMAE)
	}
}

func TestFigure10To12Sweeps(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Options) ([]SweepPoint, error)
		want int
	}{
		{"Figure10", Figure10, 2},
		{"Figure11", Figure11, 3},
		{"Figure12", Figure12, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pts, err := tc.run(quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != tc.want {
				t.Fatalf("points = %d, want %d", len(pts), tc.want)
			}
			for _, p := range pts {
				// Robustness claim: every configuration keeps a
				// substantial cost improvement with small accuracy cost.
				if p.CostPct <= 5 {
					t.Errorf("%s: cost improvement %v%% too small", p.Label, p.CostPct)
				}
				if p.AccuracyPct < -8 {
					t.Errorf("%s: accuracy drop %v%% too large", p.Label, p.AccuracyPct)
				}
			}
		})
	}
}
