package experiments

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/sim"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// SweepPoint is one configuration of a sensitivity sweep, reported as the
// improvement over the OpenWhisk fixed policy (the y-axes of Figures
// 10–12).
type SweepPoint struct {
	Label string
	sim.Improvement
}

// sweep runs a set of PULSE configurations against the OpenWhisk baseline
// on assignment-shuffled runs.
func sweep(opts Options, title string, configs []struct {
	Label string
	Cfg   core.Config
}) ([]SweepPoint, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	factories := []sim.NamedFactory{
		{Name: "openwhisk", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return policy.NewFixed(e.catalog, asg, cluster.DefaultKeepAliveWindow, policy.QualityHighest)
		}},
	}
	for _, c := range configs {
		cfg := c.Cfg // capture per iteration
		factories = append(factories, sim.NamedFactory{
			Name: c.Label,
			New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
				pc := cfg
				pc.Catalog = e.catalog
				pc.Assignment = asg
				return core.New(pc)
			},
		})
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:    e.trace,
		Catalog:  e.catalog,
		Cost:     e.cost,
		Runs:     e.opts.Runs,
		Seed:     e.opts.Seed,
		Workers:  e.opts.Workers,
		Observer: e.opts.Observer,
	}, factories)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	t := report.NewTable(title, "config", "keep-alive cost", "service time", "accuracy")
	for i, c := range configs {
		imp, err := sim.ImprovementOver(aggs[0], aggs[i+1])
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Label: c.Label, Improvement: imp})
		if err := t.AddRow(c.Label, report.Pct(imp.CostPct), report.Pct(imp.ServiceTimePct), report.Pct(imp.AccuracyPct)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(e.opts.Out); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure10 compares the two probability-threshold techniques T1 and T2
// (improvement over OpenWhisk; the paper finds them comparable).
func Figure10(opts Options) ([]SweepPoint, error) {
	return sweep(opts, "Figure 10 — probability threshold techniques (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "T1", Cfg: core.Config{Technique: core.TechniqueT1{}}},
			{Label: "T2", Cfg: core.Config{Technique: core.TechniqueT2{}}},
		})
}

// Figure11 sweeps the keep-alive memory threshold KM_T: M1=5%, M2=10%,
// M3=15%.
func Figure11(opts Options) ([]SweepPoint, error) {
	return sweep(opts, "Figure 11 — keep-alive memory thresholds (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "M1 (5%)", Cfg: core.Config{KaMThreshold: 0.05}},
			{Label: "M2 (10%)", Cfg: core.Config{KaMThreshold: 0.10}},
			{Label: "M3 (15%)", Cfg: core.Config{KaMThreshold: 0.15}},
		})
}

// Figure12 sweeps the local window size: 10, 60, and 120 minutes.
func Figure12(opts Options) ([]SweepPoint, error) {
	return sweep(opts, "Figure 12 — local window sizes (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "10 min", Cfg: core.Config{LocalWindow: 10}},
			{Label: "60 min", Cfg: core.Config{LocalWindow: 60}},
			{Label: "120 min", Cfg: core.Config{LocalWindow: 120}},
		})
}

// AblationHistoryBlend compares the paper's dual-history probability
// estimate against local-only and global-only variants.
func AblationHistoryBlend(opts Options) ([]SweepPoint, error) {
	return sweep(opts, "Ablation — inter-arrival history blending (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "both (paper)", Cfg: core.Config{Blend: core.BlendBoth}},
			{Label: "local only", Cfg: core.Config{Blend: core.BlendLocalOnly}},
			{Label: "global only", Cfg: core.Config{Blend: core.BlendGlobalOnly}},
		})
}

// AblationPriorityTerm compares Uv = Ai+Pr+Ip against Uv = Ai+Ip.
func AblationPriorityTerm(opts Options) ([]SweepPoint, error) {
	return sweep(opts, "Ablation — priority (fairness) term in Uv (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "with priority (paper)", Cfg: core.Config{}},
			{Label: "without priority", Cfg: core.Config{DisablePriorityTerm: true}},
		})
}

// AblationPriorKaM compares Algorithm 1's prior keep-alive-memory rule
// against the naive previous-minute prior. The two rules only differ after
// platform-wide inactivity (prior keep-alive memory zero), so unless the
// caller overrides the workload, this ablation runs on a sparse mix —
// sporadic and nocturnal functions with real quiet stretches.
//
// Measured finding: even there the aggregate metrics barely move. The
// naive prior mislabels each resumption minute as a peak (demonstrated
// directly by core's TestPeakDetectorNaiveMode), but the spurious flatten
// lasts one minute and resumptions overwhelmingly plan low-quality variants
// anyway, so almost no invocation lands on a mistakenly-downgraded minute.
// Algorithm 1's fallback is a correctness nicety, not a throughput lever —
// a sharper claim than the paper makes, and consistent with it.
func AblationPriorKaM(opts Options) ([]SweepPoint, error) {
	if opts.Archetypes == nil {
		opts.Archetypes = []trace.Archetype{
			trace.Sporadic{MeanGap: 240},
			trace.Sporadic{MeanGap: 360},
			trace.Diurnal{Base: 0, Amplitude: 0.4, PeakMinute: 2 * 60},
			trace.Diurnal{Base: 0, Amplitude: 0.4, PeakMinute: 14 * 60},
			trace.Bursty{BurstsPerDay: 2, BurstLen: 8, BurstRate: 3, QuietRate: 0},
			trace.Periodic{Period: 45, Jitter: 5},
		}
	}
	return sweep(opts, "Ablation — Algorithm 1 prior vs naive previous-minute prior (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "algorithm 1 (paper)", Cfg: core.Config{PriorMode: core.PriorAlgorithm1}},
			{Label: "naive prior", Cfg: core.Config{PriorMode: core.PriorNaive}},
		})
}

// AblationDowngradeSelection compares Algorithm 2's utility-value victim
// selection against the strawman the paper's §III-A names: "random
// functions/models are downgraded, which may result in models with
// higher-chance of invocation being downgraded while lower-chance models
// are kept alive".
func AblationDowngradeSelection(opts Options) ([]SweepPoint, error) {
	return sweep(opts, "Ablation — utility-value vs random downgrade selection (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "utility value (paper)", Cfg: core.Config{}},
			{Label: "random victims", Cfg: core.Config{RandomDowngradeSeed: 12345}},
		})
}

// AblationDowngradeStep compares downgrade-by-one (with and without the
// eviction tail) against direct eviction during peaks.
func AblationDowngradeStep(opts Options) ([]SweepPoint, error) {
	return sweep(opts, "Ablation — peak downgrade step (% improvement over OpenWhisk)",
		[]struct {
			Label string
			Cfg   core.Config
		}{
			{Label: "by one, floor at lowest (default)", Cfg: core.Config{Step: core.StepByOne}},
			{Label: "by one, then evict", Cfg: core.Config{Step: core.StepByOneEvict}},
			{Label: "evict directly", Cfg: core.Config{Step: core.StepEvict}},
		})
}

// RunAll executes every experiment in paper order, writing renditions to
// opts.Out. It returns the first error encountered.
func RunAll(opts Options) error {
	type step struct {
		name string
		run  func(Options) error
	}
	steps := []step{
		{"Table I", func(o Options) error { _, err := TableI(o); return err }},
		{"Table II", func(o Options) error { _, err := TableII(o); return err }},
		{"Table III", func(o Options) error { _, err := TableIII(o); return err }},
		{"Figure 1", func(o Options) error { _, err := Figure1(o); return err }},
		{"Figure 2", func(o Options) error { _, err := Figure2(o); return err }},
		{"Figure 4", func(o Options) error { _, err := Figure4(o); return err }},
		{"Figure 5", func(o Options) error { _, err := Figure5(o); return err }},
		{"Figure 6a", func(o Options) error { _, err := Figure6a(o); return err }},
		{"Figure 6b", func(o Options) error { _, err := Figure6b(o); return err }},
		{"Figure 7", func(o Options) error { _, err := Figure7(o); return err }},
		{"Figure 8", func(o Options) error { _, err := Figure8(o); return err }},
		{"Figure 9", func(o Options) error { _, err := Figure9(o); return err }},
		{"Figure 10", func(o Options) error { _, err := Figure10(o); return err }},
		{"Figure 11", func(o Options) error { _, err := Figure11(o); return err }},
		{"Figure 12", func(o Options) error { _, err := Figure12(o); return err }},
		{"Attribution", func(o Options) error { _, err := AttributionTable(o); return err }},
		{"Extension: Holt-Winters", func(o Options) error { _, err := ExtensionHoltWinters(o); return err }},
		{"Extension: capacity analysis", func(o Options) error { _, err := CapacityAnalysis(o); return err }},
		{"Extension: window sweep", func(o Options) error { _, err := ExtensionWindowSweep(o); return err }},
		{"Extension: tail latency", func(o Options) error { _, err := ExtensionTailLatency(o); return err }},
		{"Extension: function churn", func(o Options) error { _, err := ExtensionChurn(o); return err }},
		{"Extension: alert replay", func(o Options) error { _, err := ExtensionAlerts(o); return err }},
		{"Extension: policy tournament", func(o Options) error { _, err := ExtensionTournament(o); return err }},
		{"Ablation: history blend", func(o Options) error { _, err := AblationHistoryBlend(o); return err }},
		{"Ablation: priority term", func(o Options) error { _, err := AblationPriorityTerm(o); return err }},
		{"Ablation: prior KaM", func(o Options) error { _, err := AblationPriorKaM(o); return err }},
		{"Ablation: downgrade step", func(o Options) error { _, err := AblationDowngradeStep(o); return err }},
		{"Ablation: downgrade selection", func(o Options) error { _, err := AblationDowngradeSelection(o); return err }},
	}
	o := opts.withDefaults()
	for _, s := range steps {
		if err := fprintf(o.Out, "\n== %s ==\n", s.name); err != nil {
			return err
		}
		if err := s.run(opts); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
	}
	return nil
}
