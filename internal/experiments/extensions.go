package experiments

import (
	"fmt"
	"reflect"

	"github.com/pulse-serverless/pulse/internal/alert"
	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/sim"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// WindowSweepPoint compares PULSE to a fixed policy with the *same*
// keep-alive window, for one window length.
type WindowSweepPoint struct {
	WindowMinutes int
	sim.Improvement
}

// ExtensionWindowSweep evaluates the paper's closing claim that "the core
// idea and design behind PULSE are flexible and can be adapted to different
// keep-alive durations": for each window length, both the fixed baseline
// and PULSE use that window, so the improvement isolates the mixed-quality
// mechanism from the window choice itself.
func ExtensionWindowSweep(opts Options) ([]WindowSweepPoint, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	windows := []int{5, 10, 20}
	var factories []sim.NamedFactory
	for _, w := range windows {
		w := w
		factories = append(factories,
			sim.NamedFactory{
				Name: fmt.Sprintf("openwhisk-w%d", w),
				New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
					return policy.NewFixed(e.catalog, asg, w, policy.QualityHighest)
				},
			},
			sim.NamedFactory{
				Name: fmt.Sprintf("pulse-w%d", w),
				New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
					return core.New(core.Config{Catalog: e.catalog, Assignment: asg, Window: w})
				},
			},
		)
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:    e.trace,
		Catalog:  e.catalog,
		Cost:     e.cost,
		Runs:     e.opts.Runs,
		Seed:     e.opts.Seed,
		Workers:  e.opts.Workers,
		Observer: e.opts.Observer,
	}, factories)
	if err != nil {
		return nil, err
	}
	var out []WindowSweepPoint
	t := report.NewTable("Extension — PULSE vs fixed policy at matched keep-alive windows (% improvement)",
		"window", "keep-alive cost", "service time", "accuracy")
	for i, w := range windows {
		imp, err := sim.ImprovementOver(aggs[2*i], aggs[2*i+1])
		if err != nil {
			return nil, err
		}
		out = append(out, WindowSweepPoint{WindowMinutes: w, Improvement: imp})
		if err := t.AddRow(fmt.Sprintf("%d min", w),
			report.Pct(imp.CostPct), report.Pct(imp.ServiceTimePct), report.Pct(imp.AccuracyPct)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(e.opts.Out); err != nil {
		return nil, err
	}
	return out, nil
}

// TailLatencyRow holds one policy's service-time distribution.
type TailLatencyRow struct {
	Policy                 string
	P50Sec, P95Sec, P99Sec float64
	MaxSec                 float64
}

// ExtensionTailLatency reports per-invocation service-time percentiles for
// the fixed policy and PULSE — the tail view the paper's total-service-time
// metric hides: PULSE keeps tails in check because the low-quality floor
// converts would-be cold starts into fast warm starts.
func ExtensionTailLatency(opts Options) ([]TailLatencyRow, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	cfg := e.clusterConfig(false)
	cfg.RecordServiceTimes = true

	run := func(p cluster.Policy) (TailLatencyRow, error) {
		res, err := cluster.Run(cfg, p)
		if err != nil {
			return TailLatencyRow{}, err
		}
		row := TailLatencyRow{Policy: res.Policy}
		for _, q := range []struct {
			p   float64
			dst *float64
		}{{50, &row.P50Sec}, {95, &row.P95Sec}, {99, &row.P99Sec}, {100, &row.MaxSec}} {
			v, err := res.ServiceTimePercentile(q.p)
			if err != nil {
				return TailLatencyRow{}, err
			}
			*q.dst = v
		}
		return row, nil
	}

	ow, err := e.newOpenWhisk()
	if err != nil {
		return nil, err
	}
	rowOW, err := run(ow)
	if err != nil {
		return nil, err
	}
	pulse, err := e.newPulse(core.Config{})
	if err != nil {
		return nil, err
	}
	rowPulse, err := run(pulse)
	if err != nil {
		return nil, err
	}
	rows := []TailLatencyRow{rowOW, rowPulse}
	t := report.NewTable("Extension — per-invocation service-time percentiles (seconds)",
		"policy", "P50", "P95", "P99", "max")
	for _, r := range rows {
		if err := t.AddRow(r.Policy, report.F(r.P50Sec), report.F(r.P95Sec), report.F(r.P99Sec), report.F(r.MaxSec)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(e.opts.Out); err != nil {
		return nil, err
	}
	return rows, nil
}

// ChurnPoint summarizes the lifecycle extension: PULSE versus the fixed
// baseline on a trace where functions register and deregister while the
// replay is running.
type ChurnPoint struct {
	Functions   int // functions appearing anywhere in the trace
	InitialLive int // live at minute 0
	Arrivals    int // registrations after minute 0
	Departures  int // deregistrations before the horizon
	sim.Improvement
}

// ExtensionChurn evaluates PULSE beyond the paper's static-population
// setting: half the functions (those after the first) get a finite
// lifetime, so both policies must absorb online register/deregister calls
// mid-run. Each run constructs its policies from the minute-0 population
// only — later arrivals reach them exclusively through the lifecycle API,
// starting with cold histories by construction — and the engine replays
// the churn path (cluster.Run dispatches on trace.HasChurn). The headline
// is the same cost/service/accuracy improvement as Figure 6a: the
// mixed-quality win must not depend on knowing the population up front.
func ExtensionChurn(opts Options) (ChurnPoint, error) {
	opts = opts.withDefaults()
	tr, err := trace.Generate(trace.GeneratorConfig{
		Seed:       opts.Seed,
		Horizon:    opts.HorizonMinutes,
		Archetypes: opts.Archetypes,
		Churn:      0.5,
	})
	if err != nil {
		return ChurnPoint{}, err
	}
	if !tr.HasChurn() {
		return ChurnPoint{}, fmt.Errorf("experiments: churn trace (seed %d) has no lifecycle events", opts.Seed)
	}
	cat := models.PaperCatalog()
	factories := []sim.NamedFactory{
		{
			Name: "openwhisk-churn",
			New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
				names, init, err := cluster.InitialPopulation(tr, asg)
				if err != nil {
					return nil, err
				}
				return policy.NewFixedNamed(cat, init, cluster.DefaultKeepAliveWindow, policy.QualityHighest, names)
			},
		},
		{
			Name: "pulse-churn",
			New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
				names, init, err := cluster.InitialPopulation(tr, asg)
				if err != nil {
					return nil, err
				}
				return core.New(core.Config{Catalog: cat, Assignment: init, Names: names, Shards: opts.Shards})
			},
		},
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:    tr,
		Catalog:  cat,
		Cost:     cluster.DefaultCostModel(),
		Runs:     opts.Runs,
		Seed:     opts.Seed,
		Workers:  opts.Workers,
		Observer: opts.Observer,
	}, factories)
	if err != nil {
		return ChurnPoint{}, err
	}
	imp, err := sim.ImprovementOver(aggs[0], aggs[1])
	if err != nil {
		return ChurnPoint{}, err
	}
	pt := ChurnPoint{Functions: len(tr.Functions), Improvement: imp}
	for i := range tr.Functions {
		f := &tr.Functions[i]
		if f.Start == 0 {
			pt.InitialLive++
		} else {
			pt.Arrivals++
		}
		if f.EndMinute(tr.Horizon) != tr.Horizon {
			pt.Departures++
		}
	}
	t := report.NewTable("Extension — PULSE vs fixed policy under function churn (% improvement)",
		"initial live", "arrivals", "departures", "keep-alive cost", "service time", "accuracy")
	if err := t.AddRow(
		fmt.Sprintf("%d of %d", pt.InitialLive, pt.Functions),
		fmt.Sprintf("%d", pt.Arrivals),
		fmt.Sprintf("%d", pt.Departures),
		report.Pct(pt.CostPct), report.Pct(pt.ServiceTimePct), report.Pct(pt.AccuracyPct)); err != nil {
		return ChurnPoint{}, err
	}
	if err := t.Render(opts.Out); err != nil {
		return ChurnPoint{}, err
	}
	return pt, nil
}

// AlertReplayPoint summarizes the alert-determinism extension: the alert
// transitions produced by replaying one trace through the cluster engine,
// plus the proof that a 4-shard PULSE controller produces the identical
// sequence.
type AlertReplayPoint struct {
	Rules       int // rules evaluated
	Transitions int // firing + resolved transitions over the horizon
	Firing      int
	Resolved    int
	// Deterministic is true when the serial and 4-shard controllers
	// produced byte-for-byte identical notification sequences.
	Deterministic bool
	Notifications []alert.Notification
}

// ExtensionAlerts replays the default trace through the cluster engine
// with the live alert pipeline attached — attribution accountant feeding a
// rule engine, exactly as pulsed wires it — twice: once with a serial
// PULSE controller and once with a 4-shard controller. Alert firings are
// part of the platform's deterministic surface, so both replays must
// produce the identical transition sequence (same rules, same minutes,
// same values); any divergence fails the experiment. The table lists the
// transitions, i.e. the pages an operator would have received.
func ExtensionAlerts(opts Options) (AlertReplayPoint, error) {
	e, err := newEnv(opts)
	if err != nil {
		return AlertReplayPoint{}, err
	}
	rules := []alert.Rule{
		{Name: "kam-live", Metric: alert.MetricKaMMB, Op: alert.OpAbove, Threshold: 1, For: 1, Cooldown: 120},
		{Name: "cold-spike", Metric: alert.MetricColdRatePct, Op: alert.OpAbove, Threshold: 50, For: 3, Cooldown: 30},
		{Name: "savings-regression", Metric: alert.MetricSavingsVsFixedUSD, Op: alert.OpBelow, Threshold: 0, For: 5, Cooldown: 60},
	}

	replay := func(shards int) ([]alert.Notification, error) {
		acct, err := attribution.New(attribution.Config{Catalog: e.catalog, Assignment: e.asg, Cost: e.cost})
		if err != nil {
			return nil, err
		}
		sink := &alert.CollectorSink{}
		// Size the sink queue to the workload: a replay outpaces the
		// dispatcher, and a full queue drops notifications by design.
		engine, err := alert.NewEngine(alert.Config{
			Rules: rules, Sinks: []alert.Sink{sink}, Attribution: acct, QueueSize: 1 << 14,
		})
		if err != nil {
			return nil, err
		}
		p, err := core.New(core.Config{Catalog: e.catalog, Assignment: e.asg, Shards: shards})
		if err != nil {
			return nil, err
		}
		cfg := e.clusterConfig(false)
		cfg.Observer = telemetry.Multi(acct, engine)
		if _, err := cluster.Run(cfg, p); err != nil {
			return nil, err
		}
		engine.Flush() // the final minute never sees a successor rollup
		if err := engine.Close(); err != nil {
			return nil, err
		}
		return sink.Notifications(), nil
	}

	serial, err := replay(1)
	if err != nil {
		return AlertReplayPoint{}, err
	}
	sharded, err := replay(4)
	if err != nil {
		return AlertReplayPoint{}, err
	}

	pt := AlertReplayPoint{
		Rules:         len(rules),
		Transitions:   len(serial),
		Deterministic: reflect.DeepEqual(serial, sharded),
		Notifications: serial,
	}
	for _, n := range serial {
		if n.State == alert.StateFiring {
			pt.Firing++
		} else {
			pt.Resolved++
		}
	}
	if !pt.Deterministic {
		return pt, fmt.Errorf("experiments: alert replay diverged: serial produced %d transitions, 4-shard %d",
			len(serial), len(sharded))
	}
	if pt.Transitions == 0 {
		return pt, fmt.Errorf("experiments: alert replay produced no transitions; the rule set is vacuous on this trace")
	}

	const maxRows = 12
	t := report.NewTable("Extension — deterministic alert replay (serial == 4-shard controller)",
		"minute", "rule", "state", "value")
	for i, n := range pt.Notifications {
		if i >= maxRows {
			break
		}
		if err := t.AddRow(fmt.Sprintf("%d", n.Minute), n.Rule, n.State, report.F(n.Value)); err != nil {
			return pt, err
		}
	}
	if err := t.Render(e.opts.Out); err != nil {
		return pt, err
	}
	if pt.Transitions > maxRows {
		if err := fprintf(e.opts.Out, "(%d of %d transitions shown; %d firing, %d resolved over %d minutes)\n",
			maxRows, pt.Transitions, pt.Firing, pt.Resolved, e.opts.HorizonMinutes); err != nil {
			return pt, err
		}
	}
	return pt, nil
}
