// Package experiments reproduces every table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md §4). Each experiment is
// a function that runs the relevant policies on the shared synthetic trace,
// writes a textual rendition of the table/figure to the supplied writer,
// and returns the headline numbers so the benchmark suite and
// EXPERIMENTS.md generation can assert and record them.
package experiments

import (
	"fmt"
	"io"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// Options configures an experiment run. Zero values select defaults sized
// for quick runs; the cmd/experiments tool raises them to paper scale.
type Options struct {
	// Seed drives trace generation and assignment draws.
	Seed int64
	// HorizonMinutes is the trace length (default 3 days; the paper's
	// Azure slice is 14 days).
	HorizonMinutes int
	// Runs is the number of assignment-shuffled simulation runs for
	// multi-run experiments (default 30; the paper uses 1000).
	Runs int
	// Workers bounds experiment parallelism (0 = GOMAXPROCS).
	Workers int
	// Shards sets the shard counts used by the runs: the PULSE controller
	// shard count (core.Config.Shards, 0 = one per CPU) and the engine's
	// per-minute scan shards (cluster.Config.Shards, 0 = serial). Results
	// are identical at every setting; this only tunes parallelism.
	Shards int
	// Out receives the rendered table/figure. nil discards output.
	Out io.Writer
	// Archetypes overrides the default Azure-like function mix (advanced;
	// the prior-KaM ablation uses a sparse mix where platform-wide
	// inactivity actually occurs).
	Archetypes []trace.Archetype
	// Observer, when non-nil, audits experiment runs through the same
	// telemetry surface the live runtime uses (must be concurrency-safe;
	// multi-run experiments share it across workers).
	Observer telemetry.Observer
}

func (o Options) withDefaults() Options {
	if o.HorizonMinutes <= 0 {
		o.HorizonMinutes = 3 * trace.MinutesPerDay
	}
	if o.Runs <= 0 {
		o.Runs = 30
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// env bundles the shared experimental setup: the trace, catalog, and a
// fixed round-robin assignment (single-run experiments use it; multi-run
// experiments shuffle assignments per run).
type env struct {
	opts    Options
	trace   *trace.Trace
	catalog *models.Catalog
	asg     models.Assignment
	cost    cluster.CostModel
}

func newEnv(opts Options) (*env, error) {
	opts = opts.withDefaults()
	tr, err := trace.Generate(trace.GeneratorConfig{
		Seed:       opts.Seed,
		Horizon:    opts.HorizonMinutes,
		Archetypes: opts.Archetypes,
	})
	if err != nil {
		return nil, err
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	return &env{opts: opts, trace: tr, catalog: cat, asg: asg, cost: cluster.DefaultCostModel()}, nil
}

func (e *env) clusterConfig(measure bool) cluster.Config {
	return cluster.Config{
		Trace:           e.trace,
		Catalog:         e.catalog,
		Assignment:      e.asg,
		Cost:            e.cost,
		MeasureOverhead: measure,
		Observer:        e.opts.Observer,
		Shards:          e.opts.Shards,
	}
}

// run executes one policy over the whole environment trace.
func (e *env) run(p cluster.Policy, measure bool) (*cluster.Result, error) {
	return cluster.Run(e.clusterConfig(measure), p)
}

// newPulse builds a PULSE instance on the environment's assignment.
func (e *env) newPulse(cfg core.Config) (*core.Pulse, error) {
	cfg.Catalog = e.catalog
	cfg.Assignment = e.asg
	if cfg.Shards == 0 {
		cfg.Shards = e.opts.Shards
	}
	return core.New(cfg)
}

// newOpenWhisk builds the fixed all-high baseline.
func (e *env) newOpenWhisk() (cluster.Policy, error) {
	return policy.NewFixed(e.catalog, e.asg, cluster.DefaultKeepAliveWindow, policy.QualityHighest)
}

func fprintf(w io.Writer, format string, args ...any) error {
	_, err := fmt.Fprintf(w, format, args...)
	return err
}
