package experiments

import (
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
)

func TestExtensionTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario tournament experiment")
	}
	var sb strings.Builder
	opts := quickOpts()
	opts.Out = &sb
	cells, err := ExtensionTournament(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Every scenario ranks the full field: live + 3 baselines + the roster.
	field := 1 + attribution.NumBaselines + len(roster.Names())
	byScenario := map[string][]TournamentCell{}
	for _, c := range cells {
		byScenario[c.Scenario] = append(byScenario[c.Scenario], c)
	}
	if len(byScenario) < 8 {
		t.Fatalf("tournament covered %d scenarios, want the 7 archetypes plus churn", len(byScenario))
	}
	if _, ok := byScenario["mixed-churn"]; !ok {
		t.Error("tournament has no churn scenario")
	}
	for name, rows := range byScenario {
		if len(rows) != field {
			t.Errorf("%s ranked %d policies, want %d", name, len(rows), field)
		}
		lives := 0
		for i, c := range rows {
			if c.Rank != i+1 {
				t.Errorf("%s: rank %d at position %d", name, c.Rank, i)
			}
			if i > 0 && c.CostUSD < rows[i-1].CostUSD {
				t.Errorf("%s: ranking not sorted by cost: %v after %v", name, c.CostUSD, rows[i-1].CostUSD)
			}
			if c.Live {
				lives++
				if c.CostVsLiveUSD != 0 {
					t.Errorf("%s: live row has nonzero delta %v", name, c.CostVsLiveUSD)
				}
			} else if got := c.CostUSD - liveCostOf(rows); !approxEqual(got, c.CostVsLiveUSD) {
				t.Errorf("%s/%s: delta %v, want %v", name, c.Policy, c.CostVsLiveUSD, got)
			}
		}
		if lives != 1 {
			t.Errorf("%s has %d live rows, want 1", name, lives)
		}
		// The oracle folds hindsight in, so it never prices above the live
		// policy; never-keep-alive pays zero keep-alive cost by definition.
		for _, c := range rows {
			switch c.Policy {
			case attribution.BaselineOracle:
				if c.CostVsLiveUSD > 1e-9 {
					t.Errorf("%s: oracle costs %v more than live", name, c.CostVsLiveUSD)
				}
			case attribution.BaselineNever:
				if c.CostUSD != 0 {
					t.Errorf("%s: never-keep-alive has keep-alive cost %v", name, c.CostUSD)
				}
			}
		}
	}
	out := sb.String()
	for _, want := range append([]string{"policy tournament", "live *", "mixed-churn"}, roster.Names()...) {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table lacks %q", want)
		}
	}
}

func liveCostOf(rows []TournamentCell) float64 {
	for _, c := range rows {
		if c.Live {
			return c.CostUSD
		}
	}
	return 0
}

func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
