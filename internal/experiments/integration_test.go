package experiments

import (
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/trace"
)

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy multi-run experiment")
	}
	opts := quickOpts()
	opts.Runs = 2
	res, err := Figure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Both integrations must reduce keep-alive cost (the paper's central
	// Figure 8 claim) at a small accuracy cost.
	if res.Wild.CostPct <= 0 {
		t.Errorf("Wild+PULSE cost improvement = %v%%, want positive (paper: 99%%)", res.Wild.CostPct)
	}
	if res.IceBreaker.CostPct <= 0 {
		t.Errorf("IceBreaker+PULSE cost improvement = %v%%, want positive (paper: 14%%)", res.IceBreaker.CostPct)
	}
	for name, imp := range map[string]float64{
		"wild":       res.Wild.AccuracyPct,
		"icebreaker": res.IceBreaker.AccuracyPct,
	} {
		if imp > 0.5 || imp < -10 {
			t.Errorf("%s accuracy change = %v%%, want small non-positive", name, imp)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement experiment")
	}
	opts := quickOpts()
	opts.Runs = 3
	res, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PulseRatios) != 3 || len(res.MILPRatios) != 3 {
		t.Fatalf("ratio samples: %d/%d", len(res.PulseRatios), len(res.MILPRatios))
	}
	// Figure 9(b): MILP delivers lower accuracy than PULSE.
	if res.MILPAccuracyPct >= res.PulseAccuracyPct {
		t.Errorf("MILP accuracy %v not below PULSE %v", res.MILPAccuracyPct, res.PulseAccuracyPct)
	}
	// Figure 9(a): the generic MILP machinery costs more per decision than
	// PULSE's greedy pass.
	if res.MILPMeanRatio <= res.PulseMeanRatio {
		t.Errorf("MILP overhead ratio %v not above PULSE %v", res.MILPMeanRatio, res.PulseMeanRatio)
	}
	for _, r := range append(append([]float64{}, res.PulseRatios...), res.MILPRatios...) {
		if r < 0 {
			t.Error("negative overhead ratio")
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration sweeps")
	}
	opts := quickOpts()
	opts.Runs = 2
	for _, tc := range []struct {
		name string
		run  func(Options) ([]SweepPoint, error)
		want int
	}{
		{"history blend", AblationHistoryBlend, 3},
		{"priority term", AblationPriorityTerm, 2},
		{"prior KaM", AblationPriorKaM, 2},
		{"downgrade step", AblationDowngradeStep, 3},
		{"downgrade selection", AblationDowngradeSelection, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pts, err := tc.run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != tc.want {
				t.Fatalf("points = %d, want %d", len(pts), tc.want)
			}
			for _, p := range pts {
				if p.CostPct <= 0 {
					t.Errorf("%s: no cost improvement (%v%%)", p.Label, p.CostPct)
				}
			}
		})
	}
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	var sb strings.Builder
	opts := Options{Seed: 5, HorizonMinutes: trace.MinutesPerDay / 2, Runs: 2, Out: &sb}
	if err := RunAll(opts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"Figure 1", "Figure 2", "Figure 4", "Figure 5",
		"Figure 6a", "Figure 6b", "Figure 7", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11", "Figure 12",
		"Ablation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}
