package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/alert"
)

func TestExtensionWindowSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	opts := quickOpts()
	opts.Runs = 2
	pts, err := ExtensionWindowSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// The mixed-quality win must survive every window length.
		if p.CostPct <= 5 {
			t.Errorf("window %d: cost improvement %v%% too small", p.WindowMinutes, p.CostPct)
		}
		if p.AccuracyPct < -10 {
			t.Errorf("window %d: accuracy drop %v%% too large", p.WindowMinutes, p.AccuracyPct)
		}
	}
}

func TestExtensionTailLatency(t *testing.T) {
	rows, err := ExtensionTailLatency(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ow, pulse := rows[0], rows[1]
	for _, r := range rows {
		if !(r.P50Sec <= r.P95Sec && r.P95Sec <= r.P99Sec && r.P99Sec <= r.MaxSec) {
			t.Errorf("%s: percentiles not monotone: %+v", r.Policy, r)
		}
	}
	// The median drops under PULSE (cheap variants execute faster), and the
	// extreme tail must not blow up (warm-start parity).
	if pulse.P50Sec >= ow.P50Sec {
		t.Errorf("PULSE P50 %v not below fixed %v", pulse.P50Sec, ow.P50Sec)
	}
	if pulse.MaxSec > ow.MaxSec*1.5 {
		t.Errorf("PULSE max %v blew up vs fixed %v", pulse.MaxSec, ow.MaxSec)
	}
}

func TestExtensionChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run churn experiment")
	}
	opts := quickOpts()
	opts.Runs = 2
	pt, err := ExtensionChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The generator gives roughly half the functions finite lifetimes; the
	// experiment is vacuous unless both lifecycle directions actually occur.
	if pt.Arrivals == 0 || pt.Departures == 0 {
		t.Fatalf("degenerate churn trace: %+v", pt)
	}
	if pt.InitialLive+pt.Arrivals != pt.Functions {
		t.Errorf("population accounting: %d live + %d arrivals != %d functions",
			pt.InitialLive, pt.Arrivals, pt.Functions)
	}
	// The mixed-quality win must survive a population that changes mid-run.
	if pt.CostPct <= 5 {
		t.Errorf("cost improvement %v%% too small under churn", pt.CostPct)
	}
	if pt.AccuracyPct < -10 {
		t.Errorf("accuracy drop %v%% too large under churn", pt.AccuracyPct)
	}
}

func TestExtensionAlerts(t *testing.T) {
	var sb strings.Builder
	opts := quickOpts()
	opts.Out = &sb
	pt, err := ExtensionAlerts(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Deterministic {
		t.Error("serial and 4-shard replays diverged")
	}
	if pt.Transitions == 0 || pt.Firing == 0 {
		t.Errorf("transitions %d (firing %d): rule set never fired", pt.Transitions, pt.Firing)
	}
	if pt.Transitions != pt.Firing+pt.Resolved {
		t.Errorf("transitions %d != firing %d + resolved %d", pt.Transitions, pt.Firing, pt.Resolved)
	}
	if len(pt.Notifications) != pt.Transitions {
		t.Errorf("%d notifications for %d transitions", len(pt.Notifications), pt.Transitions)
	}
	// The first transition must be a firing (nothing can resolve first).
	if pt.Notifications[0].State != alert.StateFiring {
		t.Errorf("first transition is %q", pt.Notifications[0].State)
	}
	out := sb.String()
	if !strings.Contains(out, "deterministic alert replay") {
		t.Errorf("table missing from output:\n%s", out)
	}
	// Replaying the identical options must reproduce the identical pages.
	pt2, err := ExtensionAlerts(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pt.Notifications, pt2.Notifications) {
		t.Error("same options, different alert transitions")
	}
}
