package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/pulse-serverless/pulse/internal/attribution"
)

// WriteMarkdownReport runs the full experiment suite and writes the
// EXPERIMENTS.md content: for every table and figure of the paper, the
// paper-reported value, the value measured by this reproduction, and a
// programmatic verdict on whether the qualitative shape holds. The suite's
// textual renditions go to opts.Out as usual; the markdown goes to w.
func WriteMarkdownReport(opts Options, w io.Writer, wallClock func() time.Time) error {
	opts = opts.withDefaults()
	type row struct {
		exp, metric, paper, measured string
		holds                        bool
	}
	var rows []row
	add := func(exp, metric, paper, measured string, holds bool) {
		rows = append(rows, row{exp, metric, paper, measured, holds})
	}
	pct := func(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

	// Table I.
	t1, err := TableI(opts)
	if err != nil {
		return fmt.Errorf("table I: %w", err)
	}
	byName := map[string]TableIResult{}
	for _, r := range t1 {
		byName[r.Variant] = r
	}
	gptSmall, gptLarge := byName["GPT-Small"], byName["GPT-Large"]
	add("Table I", "GPT-Small warm service time",
		"12.90 s", fmt.Sprintf("%.2f s", gptSmall.MeanWarmSec),
		gptSmall.MeanWarmSec > 12 && gptSmall.MeanWarmSec < 14)
	add("Table I", "GPT-Large keep-alive cost",
		"41.71 ¢/h", fmt.Sprintf("%.2f ¢/h", gptLarge.KeepAliveCentsPerHour),
		gptLarge.KeepAliveCentsPerHour > 41 && gptLarge.KeepAliveCentsPerHour < 42.5)
	add("Table I", "cold > warm for every variant", "always", "checked across all 14 variants", func() bool {
		for _, r := range t1 {
			if r.MeanColdSec <= r.MeanWarmSec {
				return false
			}
		}
		return true
	}())

	// Tables II & III.
	for i, run := range []func(Options) ([]PeakApproachResult, error){TableII, TableIII} {
		name := fmt.Sprintf("Table %s", []string{"II", "III"}[i])
		rowsP, err := run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		hi, lo, mix, oracle := rowsP[0], rowsP[1], rowsP[2], rowsP[3]
		add(name, "cost ordering high > mix > low",
			"holds", fmt.Sprintf("$%.3f > $%.3f > $%.3f", hi.KeepAliveUSD, mix.KeepAliveUSD, lo.KeepAliveUSD),
			hi.KeepAliveUSD > mix.KeepAliveUSD && mix.KeepAliveUSD > lo.KeepAliveUSD)
		add(name, "accuracy: intelligent between mix and high",
			"holds", fmt.Sprintf("%.2f%% ≤ %.2f%% ≤ %.2f%%", mix.AccuracyPct, oracle.AccuracyPct, hi.AccuracyPct),
			oracle.AccuracyPct >= mix.AccuracyPct && oracle.AccuracyPct <= hi.AccuracyPct)
		add(name, "equal warm starts across approaches",
			"equal", fmt.Sprintf("%d/%d/%d/%d", hi.WarmStarts, lo.WarmStarts, mix.WarmStarts, oracle.WarmStarts),
			hi.WarmStarts == lo.WarmStarts && lo.WarmStarts == mix.WarmStarts && mix.WarmStarts == oracle.WarmStarts)
	}

	// Figures 1 & 2.
	f1, err := Figure1(opts)
	if err != nil {
		return fmt.Errorf("figure 1: %w", err)
	}
	add("Figure 1", "inter-arrival diversity across functions",
		"5 distinct patterns", fmt.Sprintf("%d series, pairwise distinct", len(f1)), func() bool {
			var first []float64
			for _, pct := range f1 {
				if first == nil {
					first = pct
					continue
				}
				for d := range pct {
					if pct[d]-first[d] > 1 || first[d]-pct[d] > 1 {
						return true
					}
				}
			}
			return false
		}())
	f2opts := opts
	if f2opts.HorizonMinutes < 6*24*60 {
		f2opts.HorizonMinutes = 6 * 24 * 60
	}
	f2, err := Figure2(f2opts)
	if err != nil {
		return fmt.Errorf("figure 2: %w", err)
	}
	add("Figure 2", "inter-arrival drift within one function",
		"patterns differ across periods", "first vs middle period distributions differ", func() bool {
			a, b := f2["1 first period"], f2["2 middle period"]
			var diff float64
			for d := range a {
				if a[d] > b[d] {
					diff += a[d] - b[d]
				} else {
					diff += b[d] - a[d]
				}
			}
			return diff > 10
		}())

	// Figure 4.
	f4, err := Figure4(opts)
	if err != nil {
		return fmt.Errorf("figure 4: %w", err)
	}
	add("Figure 4", "individual opt reduces memory, peaks persist",
		"reduced avg, visible peaks",
		fmt.Sprintf("avg %.0f→%.0f MB, peak %.0f→%.0f MB",
			f4[0].AvgKaMMB, f4[1].AvgKaMMB, f4[0].PeakKaMMB, f4[1].PeakKaMMB),
		f4[1].AvgKaMMB < f4[0].AvgKaMMB && f4[1].PeakKaMMB > f4[1].AvgKaMMB*1.2)

	// Figure 5.
	f5, err := Figure5(opts)
	if err != nil {
		return fmt.Errorf("figure 5: %w", err)
	}
	add("Figure 5", "PULSE near low-quality cost, above low-quality accuracy",
		"cost ≈ lowest, accuracy → highest",
		fmt.Sprintf("cost $%.2f (low $%.2f, high $%.2f), accuracy %.2f%% (low %.2f%%, high %.2f%%)",
			f5[2].KeepAliveUSD, f5[0].KeepAliveUSD, f5[1].KeepAliveUSD,
			f5[2].AccuracyPct, f5[0].AccuracyPct, f5[1].AccuracyPct),
		f5[2].KeepAliveUSD < (f5[0].KeepAliveUSD+f5[1].KeepAliveUSD)/2 && f5[2].AccuracyPct > f5[0].AccuracyPct)

	// Figure 6a.
	f6a, err := Figure6a(opts)
	if err != nil {
		return fmt.Errorf("figure 6a: %w", err)
	}
	add("Figure 6a", "keep-alive cost reduction vs OpenWhisk", "+39.5%", pct(f6a.CostPct), f6a.CostPct > 10)
	add("Figure 6a", "service-time improvement vs OpenWhisk", "+8.8%", pct(f6a.ServiceTimePct), f6a.ServiceTimePct > 0)
	add("Figure 6a", "accuracy change vs OpenWhisk", "-0.6%", pct(f6a.AccuracyPct), f6a.AccuracyPct <= 0 && f6a.AccuracyPct > -10)

	// Figure 6b.
	f6b, err := Figure6b(opts)
	if err != nil {
		return fmt.Errorf("figure 6b: %w", err)
	}
	add("Figure 6b", "PULSE tracks ideal cost more closely",
		"PULSE closer to ideal", fmt.Sprintf("mean |error| %.0f%% vs OpenWhisk %.0f%%", f6b.PulseMAE, f6b.OpenWhiskMAE),
		f6b.PulseMAE < f6b.OpenWhiskMAE)

	// Figure 7.
	f7, err := Figure7(opts)
	if err != nil {
		return fmt.Errorf("figure 7: %w", err)
	}
	add("Figure 7", "memory reduced and peaks smoothed, small accuracy cost",
		"lower avg & peak, ≈0.16% accuracy drop",
		fmt.Sprintf("avg %.0f→%.0f MB, peak %.0f→%.0f MB, accuracy %.2f%%→%.2f%%",
			f7[0].AvgKaMMB, f7[1].AvgKaMMB, f7[0].PeakKaMMB, f7[1].PeakKaMMB,
			f7[0].AccuracyPct, f7[1].AccuracyPct),
		f7[1].AvgKaMMB < f7[0].AvgKaMMB && f7[1].PeakKaMMB < f7[0].PeakKaMMB &&
			f7[0].AccuracyPct-f7[1].AccuracyPct < 8)

	// Figure 8.
	f8, err := Figure8(opts)
	if err != nil {
		return fmt.Errorf("figure 8: %w", err)
	}
	add("Figure 8", "Wild: keep-alive cost reduction from PULSE", "+99%", pct(f8.Wild.CostPct), f8.Wild.CostPct > 0)
	add("Figure 8", "Wild: accuracy change", "-0.6%", pct(f8.Wild.AccuracyPct), f8.Wild.AccuracyPct <= 0.5 && f8.Wild.AccuracyPct > -10)
	add("Figure 8", "IceBreaker: keep-alive cost reduction from PULSE", "+14%", pct(f8.IceBreaker.CostPct), f8.IceBreaker.CostPct > 0)
	add("Figure 8", "IceBreaker: accuracy change", "-0.5%", pct(f8.IceBreaker.AccuracyPct), f8.IceBreaker.AccuracyPct <= 0.5 && f8.IceBreaker.AccuracyPct > -10)

	// Figure 9.
	f9, err := Figure9(opts)
	if err != nil {
		return fmt.Errorf("figure 9: %w", err)
	}
	add("Figure 9a", "MILP overhead above PULSE",
		"≈10× higher", fmt.Sprintf("mean ratio %.2e vs %.2e", f9.MILPMeanRatio, f9.PulseMeanRatio),
		f9.MILPMeanRatio > f9.PulseMeanRatio)
	add("Figure 9b", "MILP accuracy below PULSE",
		"lower", fmt.Sprintf("%.2f%% vs %.2f%%", f9.MILPAccuracyPct, f9.PulseAccuracyPct),
		f9.MILPAccuracyPct < f9.PulseAccuracyPct)

	// Figures 10–12: robustness sweeps.
	sweeps := []struct {
		name  string
		paper string
		run   func(Options) ([]SweepPoint, error)
	}{
		{"Figure 10", "T1 ≈ T2, both effective", Figure10},
		{"Figure 11", "effective at KM_T 5/10/15%", Figure11},
		{"Figure 12", "effective at windows 10/60/120", Figure12},
	}
	for _, s := range sweeps {
		pts, err := s.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		allGood := true
		detail := ""
		for i, p := range pts {
			if i > 0 {
				detail += ", "
			}
			detail += fmt.Sprintf("%s: cost %s", p.Label, pct(p.CostPct))
			if p.CostPct <= 5 || p.AccuracyPct < -10 {
				allGood = false
			}
		}
		add(s.name, "cost improvement across configurations", s.paper, detail, allGood)
	}

	// Extensions.
	hw, err := ExtensionHoltWinters(opts)
	if err != nil {
		return fmt.Errorf("extension holt-winters: %w", err)
	}
	add("Extension", "Holt-Winters predictor + PULSE reduces cost",
		"(not in paper)", pct(hw.CostPct), hw.CostPct > 0)

	capRes, err := CapacityAnalysis(opts)
	if err != nil {
		return fmt.Errorf("extension capacity: %w", err)
	}
	add("Extension", "less capacity contention than fixed policy",
		"\"strain on memory resources\" (motivation)",
		fmt.Sprintf("%d vs %d contention minutes at %.0f MB",
			capRes.Pulse.ContentionMinutes, capRes.OpenWhisk.ContentionMinutes, capRes.CapacityMB),
		capRes.Pulse.ContentionMinutes < capRes.OpenWhisk.ContentionMinutes)

	winPts, err := ExtensionWindowSweep(opts)
	if err != nil {
		return fmt.Errorf("extension windows: %w", err)
	}
	winDetail := ""
	winHolds := true
	for i, p := range winPts {
		if i > 0 {
			winDetail += ", "
		}
		winDetail += fmt.Sprintf("w%d: %s", p.WindowMinutes, pct(p.CostPct))
		if p.CostPct <= 5 {
			winHolds = false
		}
	}
	add("Extension", "cost win survives 5/10/20-minute windows",
		"\"adapted to different keep-alive durations\"", winDetail, winHolds)

	tails, err := ExtensionTailLatency(opts)
	if err != nil {
		return fmt.Errorf("extension tails: %w", err)
	}
	add("Extension", "service-time tail does not blow up",
		"warm-start parity", fmt.Sprintf("P99 %.2fs vs fixed %.2fs", tails[1].P99Sec, tails[0].P99Sec),
		tails[1].MaxSec <= tails[0].MaxSec*1.5)

	churn, err := ExtensionChurn(opts)
	if err != nil {
		return fmt.Errorf("extension churn: %w", err)
	}
	add("Extension", "cost win survives online register/deregister",
		"\"flexible\" design (closing claim)",
		fmt.Sprintf("%s with %d arrivals, %d departures",
			pct(churn.CostPct), churn.Arrivals, churn.Departures),
		churn.CostPct > 5 && churn.Arrivals > 0 && churn.Departures > 0)

	tourney, err := ExtensionTournament(opts)
	if err != nil {
		return fmt.Errorf("extension tournament: %w", err)
	}
	// The oracle folds hindsight into its choices, so in every scenario it
	// must price at or below the live policy; and every scenario must have
	// ranked the full field (live + 3 baselines + 3 roster entrants).
	perScenario := map[string]int{}
	oracleBeatsLive := true
	var liveCost, oracleCost float64
	for _, c := range tourney {
		perScenario[c.Scenario]++
		if c.Policy == attribution.BaselineOracle {
			oracleCost += c.CostUSD
			if c.CostVsLiveUSD > 1e-9 {
				oracleBeatsLive = false
			}
		}
		if c.Live {
			liveCost += c.CostUSD
		}
	}
	fullField := len(perScenario) > 0
	for _, n := range perScenario {
		if n != 7 {
			fullField = false
		}
	}
	add("Extension", "tournament ranks 6 entrants on every workload",
		"(not in paper)",
		fmt.Sprintf("%d workloads × 7 policies, oracle $%.3f ≤ live $%.3f", len(perScenario), oracleCost, liveCost),
		fullField && oracleBeatsLive)

	alerts, err := ExtensionAlerts(opts)
	if err != nil {
		return fmt.Errorf("extension alerts: %w", err)
	}
	add("Extension", "alert firings deterministic across shard counts",
		"same trace ⇒ same pages",
		fmt.Sprintf("%d transitions (%d firing, %d resolved), serial == 4-shard",
			alerts.Transitions, alerts.Firing, alerts.Resolved),
		alerts.Deterministic && alerts.Transitions > 0)

	// Emit the markdown.
	now := ""
	if wallClock != nil {
		now = wallClock().UTC().Format("2006-01-02 15:04 UTC")
	}
	fmt.Fprintf(w, "# EXPERIMENTS — paper vs measured\n\n")
	fmt.Fprintf(w, "Generated by `cmd/experiments -report`%s.\n\n", optsSuffix(opts, now))
	fmt.Fprintf(w, "Absolute values are not expected to match the authors' AWS testbed — the\n")
	fmt.Fprintf(w, "substrate here is a simulator on a synthetic Azure-like trace (DESIGN.md §2).\n")
	fmt.Fprintf(w, "The **shape holds** column records the programmatic check that the paper's\n")
	fmt.Fprintf(w, "qualitative claim (who wins, in which direction, roughly how strongly)\n")
	fmt.Fprintf(w, "reproduces. See DESIGN.md §4 for the experiment ↔ module ↔ bench mapping.\n\n")
	fmt.Fprintf(w, "| experiment | metric | paper | measured | shape holds |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|\n")
	holds := 0
	for _, r := range rows {
		mark := "✅"
		if r.holds {
			holds++
		} else {
			mark = "❌"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n", r.exp, r.metric, r.paper, r.measured, mark)
	}
	fmt.Fprintf(w, "\n**%d / %d shape checks hold.**\n", holds, len(rows))
	fmt.Fprintf(w, "\n## Known divergences\n\n")
	fmt.Fprintf(w, "- The cost and service-time improvements measured here exceed the paper's\n")
	fmt.Fprintf(w, "  (e.g. Figure 6a cost: measured %s vs paper +39.5%%) and the accuracy drop\n", pct(f6a.CostPct))
	fmt.Fprintf(w, "  is larger (measured %s vs paper -0.6%%). Both stem from the workload\n", pct(f6a.AccuracyPct))
	fmt.Fprintf(w, "  substitution: the synthetic trace mixes in more hard-to-predict functions\n")
	fmt.Fprintf(w, "  (Poisson, heavy-tailed) than the paper's 12 Azure functions, which pushes\n")
	fmt.Fprintf(w, "  PULSE toward cheap low-quality variants more often — saving more money,\n")
	fmt.Fprintf(w, "  paying more accuracy. The trade-off frontier (Figure 5) and every ordering\n")
	fmt.Fprintf(w, "  claim are preserved.\n")
	fmt.Fprintf(w, "- Figure 6b's normalization is undefined in the paper for minutes with zero\n")
	fmt.Fprintf(w, "  ideal cost; we normalize those by the mean ideal cost (documented in code).\n")
	fmt.Fprintf(w, "- Figure 9's absolute overheads depend on the host; only the MILP-vs-PULSE\n")
	fmt.Fprintf(w, "  ordering is asserted.\n")
	return nil
}

func optsSuffix(opts Options, now string) string {
	s := fmt.Sprintf(" with a %d-day trace and %d runs (paper: 14 days, 1000 runs)",
		opts.HorizonMinutes/(24*60), opts.Runs)
	if now != "" {
		s += " on " + now
	}
	return s
}
