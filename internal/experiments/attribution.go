package experiments

import (
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/sim"
)

// AttributionRow is one policy's counterfactual position, averaged across
// runs: its keep-alive cost, its net savings versus the shadow fixed-high
// and never-keep-alive baselines, its gap to the hindsight oracle, and the
// cold starts it avoided relative to the fixed baseline.
type AttributionRow struct {
	Policy                 string
	MeanCostUSD            float64
	MeanSavingsVsFixedUSD  float64
	MeanSavingsVsNeverUSD  float64
	MeanOracleGapUSD       float64
	MeanColdAvoidedVsFixed float64
}

// AttributionTable runs the multi-run comparison with the counterfactual
// accountant attached — the same attribution.Accountant a live pulsed
// serves at /attribution — and reports each policy's savings versus the
// shadow baselines. The fixed-high policy's own savings-vs-fixed column is
// the accountant's self-check: it accounts the policy it shadows, so its
// savings are ~0 (exactly 0 on warm-started traces).
func AttributionTable(opts Options) ([]AttributionRow, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	aggs, err := sim.RunExperiment(sim.ExperimentConfig{
		Trace:       e.trace,
		Catalog:     e.catalog,
		Cost:        e.cost,
		Runs:        e.opts.Runs,
		Seed:        e.opts.Seed,
		Workers:     e.opts.Workers,
		Observer:    e.opts.Observer,
		Attribution: true,
	}, []sim.NamedFactory{
		{Name: "openwhisk", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return policy.NewFixed(e.catalog, asg, cluster.DefaultKeepAliveWindow, policy.QualityHighest)
		}},
		{Name: "all-low", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return policy.NewFixed(e.catalog, asg, cluster.DefaultKeepAliveWindow, policy.QualityLowest)
		}},
		{Name: "pulse", New: func(_ int, asg models.Assignment) (cluster.Policy, error) {
			return core.New(core.Config{Catalog: e.catalog, Assignment: asg})
		}},
	})
	if err != nil {
		return nil, err
	}
	out := make([]AttributionRow, len(aggs))
	t := report.NewTable("Attribution — mean savings vs shadow baselines (counterfactual accountant)",
		"policy", "cost ($)", "vs fixed ($)", "vs never ($)", "oracle gap ($)", "cold avoided")
	for i, a := range aggs {
		out[i] = AttributionRow{
			Policy:                 a.Policy,
			MeanCostUSD:            a.MeanCostUSD,
			MeanSavingsVsFixedUSD:  a.MeanSavingsVsFixedUSD,
			MeanSavingsVsNeverUSD:  a.MeanSavingsVsNeverUSD,
			MeanOracleGapUSD:       a.MeanOracleGapUSD,
			MeanColdAvoidedVsFixed: a.MeanColdAvoidedVsFixed,
		}
		if err := t.AddRow(a.Policy, report.F4(a.MeanCostUSD), report.F4(a.MeanSavingsVsFixedUSD),
			report.F4(a.MeanSavingsVsNeverUSD), report.F4(a.MeanOracleGapUSD),
			report.F(a.MeanColdAvoidedVsFixed)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(e.opts.Out); err != nil {
		return nil, err
	}
	return out, nil
}
