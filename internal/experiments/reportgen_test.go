package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/trace"
)

func TestWriteMarkdownReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	var md strings.Builder
	opts := Options{Seed: 3, HorizonMinutes: trace.MinutesPerDay / 2, Runs: 2}
	clock := func() time.Time { return time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC) }
	if err := WriteMarkdownReport(opts, &md, clock); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{
		"# EXPERIMENTS — paper vs measured",
		"| experiment | metric | paper | measured | shape holds |",
		"Table I", "Table II", "Table III",
		"Figure 1", "Figure 2", "Figure 4", "Figure 5",
		"Figure 6a", "Figure 6b", "Figure 7", "Figure 8",
		"Figure 9a", "Figure 9b", "Figure 10", "Figure 11", "Figure 12",
		"Extension",
		"+39.5%", // the paper's headline appears as the reference value
		"shape checks hold",
		"Known divergences",
		"2026-07-06 12:00 UTC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// At this tiny scale not every check is guaranteed, but the majority
	// must hold; count the verdict marks.
	pass := strings.Count(out, "✅")
	fail := strings.Count(out, "❌")
	if pass < fail*3 {
		t.Errorf("too many failing shape checks at test scale: %d pass, %d fail\n%s", pass, fail, out)
	}
	// A nil clock omits the timestamp without crashing.
	var md2 strings.Builder
	if err := WriteMarkdownReport(opts, &md2, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(md2.String(), "UTC") {
		t.Error("nil clock still produced a timestamp")
	}
}
