package experiments

import (
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/report"
)

// CapacityResult quantifies the paper's motivating claim that fixed
// keep-alive "can potentially strain the system's memory resources": total
// memory demand (keep-alive + executing invocations) against a provider
// capacity, under the fixed policy and under PULSE.
type CapacityResult struct {
	CapacityMB float64
	OpenWhisk  *cluster.CapacityReport
	Pulse      *cluster.CapacityReport
}

// CapacityAnalysis runs both policies over the trace and reports demand
// against a capacity provisioned at 80% of the fixed policy's peak — tight
// enough that the fixed policy's bursts contend, which is exactly the
// regime PULSE's global optimizer exists for.
func CapacityAnalysis(opts Options) (*CapacityResult, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	ow, err := e.newOpenWhisk()
	if err != nil {
		return nil, err
	}
	rOW, err := e.run(ow, false)
	if err != nil {
		return nil, err
	}
	pulse, err := e.newPulse(core.Config{})
	if err != nil {
		return nil, err
	}
	rPulse, err := e.run(pulse, false)
	if err != nil {
		return nil, err
	}

	// Provision at 80% of the fixed policy's peak demand.
	probe, err := cluster.AnalyzeCapacity(rOW, e.trace, e.catalog, e.asg, 1) // capacity irrelevant for peak
	if err != nil {
		return nil, err
	}
	capacity := 0.8 * probe.PeakDemandMB

	res := &CapacityResult{CapacityMB: capacity}
	if res.OpenWhisk, err = cluster.AnalyzeCapacity(rOW, e.trace, e.catalog, e.asg, capacity); err != nil {
		return nil, err
	}
	if res.Pulse, err = cluster.AnalyzeCapacity(rPulse, e.trace, e.catalog, e.asg, capacity); err != nil {
		return nil, err
	}

	t := report.NewTable("Capacity — memory demand vs provider capacity (keep-alive + executing invocations)",
		"policy", "mean demand (MB)", "peak demand (MB)", "mean utilization", "contention minutes", "overflow (MB·min)")
	for _, row := range []struct {
		name string
		rep  *cluster.CapacityReport
	}{
		{"openwhisk", res.OpenWhisk},
		{"pulse", res.Pulse},
	} {
		if err := t.AddRow(row.name,
			report.F(row.rep.MeanDemandMB), report.F(row.rep.PeakDemandMB),
			report.F(row.rep.MeanUtilization),
			report.F(float64(row.rep.ContentionMinutes)),
			report.F(row.rep.OverflowMBMinutes)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(e.opts.Out); err != nil {
		return nil, err
	}
	return res, nil
}
