package experiments

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// TableIResult is one regenerated row of Table I.
type TableIResult = models.Characterization

// TableI regenerates the model characterization table: per variant, warm
// service time, keep-alive cost, and accuracy, via the paper's measurement
// protocol (1000 warm runs, memory-toggle cold starts) against the Lambda
// simulator.
func TableI(opts Options) ([]TableIResult, error) {
	opts = opts.withDefaults()
	cat := models.PaperCatalog()
	// 1000 warm inputs as in the paper; 50 cold toggles; 3% latency noise.
	rows, err := models.CharacterizeCatalog(cat, opts.Seed, 0.03, 1000, 50, models.DefaultCentsPerMBHour)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table I — model variants: service time, keep-alive cost, accuracy",
		"variant", "warm (s)", "cold (s)", "keep-alive (¢/h)", "accuracy (%)", "memory (MB)")
	for _, r := range rows {
		if err := t.AddRow(r.Variant, report.F(r.MeanWarmSec), report.F(r.MeanColdSec),
			report.F(r.KeepAliveCentsPerHour), report.F(r.AccuracyPct), report.F(r.MemoryMB)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(opts.Out); err != nil {
		return nil, err
	}
	return rows, nil
}

// PeakApproachResult is one row of Table II/III: one keep-alive approach
// evaluated over the 10-minute window following a peak.
type PeakApproachResult struct {
	Approach       string
	ServiceTimeSec float64
	KeepAliveUSD   float64
	AccuracyPct    float64
	WarmStarts     int
}

// peakTable evaluates the motivation study's four approaches on the window
// following the rank-th highest invocation peak (rank 0 = Peak I).
func peakTable(opts Options, rank int, title string) ([]PeakApproachResult, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	peaks := e.trace.TopPeaks(rank+1, 2*cluster.DefaultKeepAliveWindow)
	if len(peaks) <= rank {
		return nil, fmt.Errorf("experiments: trace has no peak of rank %d", rank)
	}
	peak := peaks[rank]
	// Window: some lead-in before the peak (so histories exist), plus the
	// peak minute and the 10-minute keep-alive period after it.
	lead := 30
	from := peak.Minute - lead
	if from < 0 {
		from = 0
	}
	to := peak.Minute + cluster.DefaultKeepAliveWindow + 1
	if to > e.trace.Horizon {
		to = e.trace.Horizon
	}
	window, err := e.trace.Slice(from, to)
	if err != nil {
		return nil, err
	}
	cat2 := models.TwoVariantCatalog(e.catalog)
	cfg := cluster.Config{Trace: window, Catalog: cat2, Assignment: e.asg, Cost: e.cost}

	mk := func(name string, p cluster.Policy, err error) (PeakApproachResult, error) {
		if err != nil {
			return PeakApproachResult{}, err
		}
		res, err := cluster.Run(cfg, p)
		if err != nil {
			return PeakApproachResult{}, err
		}
		return PeakApproachResult{
			Approach:       name,
			ServiceTimeSec: res.TotalServiceSec,
			KeepAliveUSD:   res.KeepAliveCostUSD,
			AccuracyPct:    res.MeanAccuracyPct(),
			WarmStarts:     res.WarmStarts,
		}, nil
	}

	var out []PeakApproachResult
	hi, err := policy.NewFixed(cat2, e.asg, cluster.DefaultKeepAliveWindow, policy.QualityHighest)
	r, err := mk("All High Quality", hi, err)
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	lo, err := policy.NewFixed(cat2, e.asg, cluster.DefaultKeepAliveWindow, policy.QualityLowest)
	if r, err = mk("All Low Quality", lo, err); err != nil {
		return nil, err
	}
	out = append(out, r)
	mix, err := policy.NewRandomMix(cat2, e.asg, cluster.DefaultKeepAliveWindow, opts.Seed+99)
	if r, err = mk("Random High/Low", mix, err); err != nil {
		return nil, err
	}
	out = append(out, r)
	oracle, err := policy.NewOracle(cat2, e.asg, cluster.DefaultKeepAliveWindow, window, 1)
	if r, err = mk("Intelligent Solution", oracle, err); err != nil {
		return nil, err
	}
	out = append(out, r)

	t := report.NewTable(fmt.Sprintf("%s (peak at minute %d, %d invocations/min)", title, peak.Minute, peak.Count),
		"approach", "service time (s)", "keep-alive ($)", "accuracy (%)", "warm starts")
	for _, r := range out {
		if err := t.AddRow(r.Approach, report.F(r.ServiceTimeSec), report.F4(r.KeepAliveUSD),
			report.F(r.AccuracyPct), fmt.Sprintf("%d", r.WarmStarts)); err != nil {
			return nil, err
		}
	}
	if err := t.Render(opts.withDefaults().Out); err != nil {
		return nil, err
	}
	return out, nil
}

// TableII evaluates the four approaches over the highest invocation peak.
func TableII(opts Options) ([]PeakApproachResult, error) {
	return peakTable(opts, 0, "Table II — Peak I evaluation")
}

// TableIII evaluates the four approaches over the second-highest peak.
func TableIII(opts Options) ([]PeakApproachResult, error) {
	return peakTable(opts, 1, "Table III — Peak II evaluation")
}

// interArrivalFigure renders Figure 1/2-style distributions.
func interArrivalFigure(opts Options, title string, rows map[string][]int) (map[string][]float64, error) {
	opts = opts.withDefaults()
	out := make(map[string][]float64, len(rows))
	t := report.NewTable(title,
		"series", "≤1", "2", "3", "4", "5", "6", "7", "8", "9", "10")
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	// Deterministic order for rendering.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		pct, _, err := trace.InterArrivalDistribution(rows[name], cluster.DefaultKeepAliveWindow)
		if err != nil {
			return nil, err
		}
		out[name] = pct
		cells := []string{name}
		for d := 1; d <= cluster.DefaultKeepAliveWindow; d++ {
			cells = append(cells, report.F(pct[d]))
		}
		if err := t.AddRow(cells...); err != nil {
			return nil, err
		}
	}
	if err := t.Render(opts.Out); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure1 reproduces the inter-arrival diversity figure: for five functions
// with distinct archetypes, the percentage of within-window invocations at
// each inter-arrival offset 1..10.
func Figure1(opts Options) (map[string][]float64, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	// Five archetypally distinct functions (A–E as in the paper).
	picks := []int{0, 3, 5, 7, 9}
	rows := make(map[string][]int, len(picks))
	for i, fn := range picks {
		if fn >= len(e.trace.Functions) {
			continue
		}
		f := e.trace.Functions[fn]
		name := fmt.Sprintf("Function %c (%s)", 'A'+i, f.Archetype)
		rows[name] = f.InterArrivals()
	}
	return interArrivalFigure(opts, "Figure 1 — inter-arrival patterns across functions (% of invocations per offset)", rows)
}

// Figure2 reproduces the temporal-drift figure: the same (drifting)
// function's inter-arrival distribution over the first, middle, and last
// third of the trace.
func Figure2(opts Options) (map[string][]float64, error) {
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	// The drifting archetype is the last function in the default mix.
	fn := len(e.trace.Functions) - 1
	f := e.trace.Functions[fn]
	third := e.trace.Horizon / 3
	rows := map[string][]int{
		"1 first period":  f.InterArrivalsInRange(0, third),
		"2 middle period": f.InterArrivalsInRange(third, 2*third),
		"3 last period":   f.InterArrivalsInRange(2*third, e.trace.Horizon),
	}
	return interArrivalFigure(opts, "Figure 2 — inter-arrival drift within one function (% of invocations per offset)", rows)
}
