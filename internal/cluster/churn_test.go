package cluster

import (
	"fmt"
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// fakeDynamic is a minimal DynamicPolicy: it keeps variant 0 alive for every
// live slot, issues dense append-only slots, and tombstones on deregister.
type fakeDynamic struct {
	names    []string
	live     []bool
	recorded [][]int
	slotSkew int // added to issued slots, to provoke the engine's mismatch check
}

func newFakeDynamic(names []string) *fakeDynamic {
	f := &fakeDynamic{names: append([]string(nil), names...)}
	f.live = make([]bool, len(names))
	for i := range f.live {
		f.live[i] = true
	}
	return f
}

func (f *fakeDynamic) Name() string { return "fake-dynamic" }

func (f *fakeDynamic) KeepAlive(int) []int {
	out := make([]int, len(f.names))
	for i := range out {
		if f.live[i] {
			out[i] = 0
		} else {
			out[i] = NoVariant
		}
	}
	return out
}

func (f *fakeDynamic) ColdVariant(_, _ int) int { return 0 }

func (f *fakeDynamic) RecordInvocations(_ int, counts []int) {
	cp := make([]int, len(counts))
	copy(cp, counts)
	f.recorded = append(f.recorded, cp)
}

func (f *fakeDynamic) RegisterFunction(name string, _ int) (int, error) {
	f.names = append(f.names, name)
	f.live = append(f.live, true)
	return len(f.names) - 1 + f.slotSkew, nil
}

func (f *fakeDynamic) DeregisterFunction(name string) error {
	for i, n := range f.names {
		if n == name && f.live[i] {
			f.live[i] = false
			return nil
		}
	}
	return fmt.Errorf("no live function %q", name)
}

// churnTrace builds a small hand-written churn workload:
//
//	f0 lives the whole horizon, f1 departs at minute 3, f2 arrives at
//	minute 2, f3 lives the window [1, 4).
func churnTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{Horizon: 6, Functions: []trace.Function{
		{ID: 0, Name: "f0", Counts: []int{1, 0, 1, 0, 1, 0}},
		{ID: 1, Name: "f1", Counts: []int{0, 2, 1, 0, 0, 0}, End: 3},
		{ID: 2, Name: "f2", Counts: []int{0, 0, 1, 0, 0, 2}, Start: 2},
		{ID: 3, Name: "f3", Counts: []int{0, 1, 0, 1, 0, 0}, Start: 1, End: 4},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.HasChurn() {
		t.Fatal("hand-written churn trace reports no churn")
	}
	return tr
}

func churnConfig(tr *trace.Trace) Config {
	asg := make(models.Assignment, len(tr.Functions))
	return Config{
		Trace:      tr,
		Catalog:    testCatalog(),
		Assignment: asg,
		Cost:       DefaultCostModel(),
	}
}

func TestInitialPopulation(t *testing.T) {
	tr := churnTrace(t)
	asg := make(models.Assignment, len(tr.Functions))
	names, initAsg, err := InitialPopulation(tr, asg)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"f0", "f1"}; len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("initial names = %v, want %v", names, want)
	}
	if len(initAsg) != 2 {
		t.Errorf("initial assignment = %v, want 2 entries", initAsg)
	}
	if _, _, err := InitialPopulation(tr, asg[:1]); err == nil {
		t.Error("short assignment accepted")
	}
	late := &trace.Trace{Horizon: 4, Functions: []trace.Function{
		{ID: 0, Name: "late", Counts: []int{0, 1, 0, 0}, Start: 1},
	}}
	if _, _, err := InitialPopulation(late, models.Assignment{0}); err == nil {
		t.Error("trace with no minute-0 population accepted")
	}
}

func TestChurnRequiresDynamicPolicy(t *testing.T) {
	tr := churnTrace(t)
	p := &fakePolicy{name: "static", alive: []int{0, 0, 0, 0}}
	_, err := Run(churnConfig(tr), p)
	if err == nil || !strings.Contains(err.Error(), "does not support online registration") {
		t.Fatalf("static policy on churn trace: err = %v, want online-registration error", err)
	}
}

// TestChurnEngineLifecycleStream pins the engine's per-minute ordering
// contract: slots are issued in trace order, register samples carry the
// first live minute, deregister samples carry the last lived minute, every
// issued slot gets a keep-alive sample every minute (NoVariant once
// tombstoned), and RecordInvocations sees zero counts for dead slots.
func TestChurnEngineLifecycleStream(t *testing.T) {
	tr := churnTrace(t)
	p := newFakeDynamic([]string{"f0", "f1"})
	rec := &telemetry.Recorder{}
	cfg := churnConfig(tr)
	cfg.Observer = rec
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}

	// Slot issuance: f0,f1 are the initial population; f3 (start 1) gets
	// slot 2 before f2 (start 2) gets slot 3.
	if want := []string{"f0", "f1", "f3", "f2"}; len(p.names) != 4 ||
		p.names[2] != want[2] || p.names[3] != want[3] {
		t.Fatalf("issued slots %v, want %v", p.names, want)
	}

	wantRegs := []telemetry.RegisterSample{
		{Minute: 1, Function: 2, Name: "f3", Family: 0},
		{Minute: 2, Function: 3, Name: "f2", Family: 0},
	}
	if len(rec.Registers) != len(wantRegs) {
		t.Fatalf("register samples %+v, want %+v", rec.Registers, wantRegs)
	}
	for i, want := range wantRegs {
		if rec.Registers[i] != want {
			t.Errorf("register[%d] = %+v, want %+v", i, rec.Registers[i], want)
		}
	}
	// f1 departs at the start of minute 3 (last lived minute 2); f3 at the
	// start of minute 4 (last lived minute 3).
	wantDeregs := []telemetry.DeregisterSample{
		{Minute: 2, Function: 1, Name: "f1"},
		{Minute: 3, Function: 2, Name: "f3"},
	}
	if len(rec.Deregisters) != len(wantDeregs) {
		t.Fatalf("deregister samples %+v, want %+v", rec.Deregisters, wantDeregs)
	}
	for i, want := range wantDeregs {
		if rec.Deregisters[i] != want {
			t.Errorf("deregister[%d] = %+v, want %+v", i, rec.Deregisters[i], want)
		}
	}

	// One keep-alive sample per issued slot per minute from its
	// registration minute on, NoVariant after the tombstone.
	kaAt := func(minute, fn int) (telemetry.KeepAliveSample, bool) {
		for _, s := range rec.KeepAlives {
			if s.Minute == minute && s.Function == fn {
				return s, true
			}
		}
		return telemetry.KeepAliveSample{}, false
	}
	for _, check := range []struct {
		minute, fn, variant int
	}{
		{3, 1, NoVariant}, // f1 tombstoned from minute 3
		{5, 2, NoVariant}, // f3 tombstoned from minute 4
		{2, 1, 0},         // f1 still live at minute 2
		{5, 3, 0},         // f2 live to the end
	} {
		s, ok := kaAt(check.minute, check.fn)
		if !ok {
			t.Errorf("no keep-alive sample for slot %d at minute %d", check.fn, check.minute)
			continue
		}
		if s.Variant != check.variant {
			t.Errorf("minute %d slot %d keep-alive variant %d, want %d", check.minute, check.fn, s.Variant, check.variant)
		}
	}

	// RecordInvocations: dead slots report zero even if the trace row has
	// residual counts. f2's count at its arrival minute flows through.
	if got := p.recorded[3]; got[1] != 0 {
		t.Errorf("minute 3 counts %v: dead slot 1 got nonzero count", got)
	}
	if got := p.recorded[2]; got[3] != 1 {
		t.Errorf("minute 2 counts %v: fresh slot 3 missing its invocation", got)
	}

	wantInv := 0
	for _, f := range tr.Functions {
		for m, c := range f.Counts {
			if f.LiveAt(m, tr.Horizon) {
				wantInv += c
			}
		}
	}
	if res.Invocations != wantInv {
		t.Errorf("served %d invocations, want %d", res.Invocations, wantInv)
	}
}

func TestChurnEngineRejectsBadPolicies(t *testing.T) {
	tr := churnTrace(t)

	// Policy that issues the wrong slot for an arrival.
	skewed := newFakeDynamic([]string{"f0", "f1"})
	skewed.slotSkew = 7
	if _, err := Run(churnConfig(tr), skewed); err == nil || !strings.Contains(err.Error(), "issued slot") {
		t.Errorf("skewed slot issuance: err = %v, want slot mismatch", err)
	}

	// Policy that keeps a tombstoned slot alive.
	necro := &necromancerPolicy{fakeDynamic: newFakeDynamic([]string{"f0", "f1"})}
	if _, err := Run(churnConfig(tr), necro); err == nil || !strings.Contains(err.Error(), "deregistered function") {
		t.Errorf("keeping dead slot alive: err = %v, want deregistered-function error", err)
	}

	// Policy whose decision vector ignores new arrivals.
	stale := &staleLengthPolicy{fakeDynamic: newFakeDynamic([]string{"f0", "f1"})}
	if _, err := Run(churnConfig(tr), stale); err == nil || !strings.Contains(err.Error(), "decisions for") {
		t.Errorf("stale decision length: err = %v, want length mismatch", err)
	}
}

// necromancerPolicy keeps every issued slot alive, dead or not.
type necromancerPolicy struct{ *fakeDynamic }

func (n *necromancerPolicy) KeepAlive(int) []int {
	return make([]int, len(n.names)) // variant 0 for everyone
}

// staleLengthPolicy always answers for the initial population only.
type staleLengthPolicy struct{ *fakeDynamic }

func (s *staleLengthPolicy) KeepAlive(int) []int { return []int{0, 0} }
