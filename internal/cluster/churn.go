package cluster

import (
	"fmt"
	"time"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// This file is the lifecycle-aware engine path: when the trace carries
// function churn (trace.Trace.HasChurn), Run dispatches here. The churn
// engine is always serial — like an Observer-attached run, its value is a
// deterministic, auditable event stream, and the per-minute lifecycle step
// would race a sharded scan's function partition anyway.
//
// The slot model mirrors the identity registry everywhere else in the
// stack: the engine and the policy agree on dense, append-only function
// slots. Slots 0..k-1 are the trace functions live at minute 0, in trace
// order (InitialPopulation); each later arrival gets the next slot, in
// trace order within its minute; a departure tombstones its slot forever.
// Each minute proceeds lifecycle → KeepAlive → accounting → serve →
// RecordInvocations, the exact order the live runtime replays, so
// attribution reports from both paths are comparable sample for sample.

// DynamicPolicy is a Policy that supports online function registration and
// deregistration. RegisterFunction must issue dense append-only slots (the
// next unused index) and must give a fresh function cold-history behaviour:
// no keep-alive plan until its first invocations are recorded.
// DeregisterFunction tombstones the named function's slot; subsequent
// KeepAlive calls must return NoVariant for it.
type DynamicPolicy interface {
	Policy
	RegisterFunction(name string, family int) (int, error)
	DeregisterFunction(name string) error
}

// InitialPopulation returns the names and family assignment of the
// functions live at minute 0 of a churn trace, in trace order — the
// population a DynamicPolicy must be constructed with before Run replays
// the trace. asg is indexed by trace function, like Config.Assignment.
func InitialPopulation(tr *trace.Trace, asg models.Assignment) ([]string, models.Assignment, error) {
	if len(asg) != len(tr.Functions) {
		return nil, nil, fmt.Errorf("cluster: assignment covers %d functions, trace has %d", len(asg), len(tr.Functions))
	}
	var names []string
	var initial models.Assignment
	for i := range tr.Functions {
		if tr.Functions[i].Start == 0 {
			names = append(names, tr.Functions[i].Name)
			initial = append(initial, asg[i])
		}
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("cluster: no functions live at minute 0")
	}
	return names, initial, nil
}

// churnSlot is the engine's view of one issued function slot.
type churnSlot struct {
	traceIdx int  // index into cfg.Trace.Functions
	fam      int  // family index (frozen at registration)
	live     bool // false once tombstoned
}

// runChurn replays a churn trace against a DynamicPolicy.
func runChurn(cfg Config, p Policy) (*Result, error) {
	dp, ok := p.(DynamicPolicy)
	if !ok {
		return nil, fmt.Errorf("cluster: trace has function churn but policy %q does not support online registration", p.Name())
	}
	tr := cfg.Trace
	res := &Result{
		Policy:           p.Name(),
		Horizon:          tr.Horizon,
		PerMinuteKaMMB:   make([]float64, tr.Horizon),
		PerMinuteCostUSD: make([]float64, tr.Horizon),
	}

	var slots []churnSlot
	var counts []int

	// Idle-skip (see Run): with no observer attached, an ActiveSetPolicy's
	// accounting visits only the slots that can hold a decision, and the
	// record fan-in hands the policy the minute's ascending invoked list.
	// The tombstone cross-check still runs for every listed slot.
	asp, sparse := p.(ActiveSetPolicy)
	sparse = sparse && cfg.Observer == nil
	var invoked []int32
	register := func(t, ti int) error {
		name := tr.Functions[ti].Name
		fam := cfg.Assignment[ti]
		slot, err := dp.RegisterFunction(name, fam)
		if err != nil {
			return fmt.Errorf("cluster: registering %q at minute %d: %w", name, t, err)
		}
		if slot != len(slots) {
			return fmt.Errorf("cluster: policy %q issued slot %d for %q at minute %d, engine expected %d",
				p.Name(), slot, name, t, len(slots))
		}
		slots = append(slots, churnSlot{traceIdx: ti, fam: fam, live: true})
		counts = append(counts, 0)
		if cfg.Observer != nil {
			telemetry.ObserveLifecycle(cfg.Observer, telemetry.RegisterSample{
				Minute: t, Function: slot, Name: name, Family: fam,
			})
		}
		return nil
	}

	// The policy was constructed with the minute-0 population
	// (InitialPopulation): mirror those slots without re-registering.
	for ti := range tr.Functions {
		if tr.Functions[ti].Start == 0 {
			slots = append(slots, churnSlot{traceIdx: ti, fam: cfg.Assignment[ti], live: true})
			counts = append(counts, 0)
		}
	}

	for t := 0; t < tr.Horizon; t++ {
		// Lifecycle barrier: departures first, then arrivals, each in slot /
		// trace order — the order the runtime replay uses between minutes.
		for si := range slots {
			s := &slots[si]
			if !s.live || tr.Functions[s.traceIdx].EndMinute(tr.Horizon) != t {
				continue
			}
			name := tr.Functions[s.traceIdx].Name
			if err := dp.DeregisterFunction(name); err != nil {
				return nil, fmt.Errorf("cluster: deregistering %q at minute %d: %w", name, t, err)
			}
			s.live = false
			if cfg.Observer != nil {
				// The sample carries the function's last lived minute (t-1,
				// like the live runtime's Deregister does), so observers that
				// fold departures into their minute ledgers — the attribution
				// accountant — see both feeds identically even when several
				// functions depart in the same minute.
				telemetry.ObserveLifecycleEnd(cfg.Observer, telemetry.DeregisterSample{
					Minute: t - 1, Function: si, Name: name,
				})
			}
		}
		if t > 0 {
			for ti := range tr.Functions {
				if tr.Functions[ti].Start == t {
					if err := register(t, ti); err != nil {
						return nil, err
					}
				}
			}
		}

		var start time.Time
		if cfg.MeasureOverhead {
			start = time.Now()
		}
		alive := p.KeepAlive(t)
		if cfg.MeasureOverhead {
			res.PolicyOverheadSec += time.Since(start).Seconds()
			res.PolicyCalls++
		}
		if len(alive) != len(slots) {
			return nil, fmt.Errorf("cluster: policy %q returned %d decisions for %d slots at minute %d",
				p.Name(), len(alive), len(slots), t)
		}

		// Keep-alive accounting. Tombstoned slots must decide NoVariant;
		// their samples are still emitted (like the runtime's) so observers
		// see one keep-alive sample per issued slot per minute.
		var kamMB, costUSD float64
		if sparse {
			for _, fn32 := range asp.ActiveSlots() {
				fn := int(fn32)
				vi := alive[fn]
				if vi == NoVariant {
					continue
				}
				s := &slots[fn]
				if !s.live {
					return nil, fmt.Errorf("cluster: policy %q kept variant %d alive for deregistered function %d at minute %d",
						p.Name(), vi, fn, t)
				}
				fam := &cfg.Catalog.Families[s.fam]
				if vi < 0 || vi >= fam.NumVariants() {
					return nil, fmt.Errorf("cluster: policy %q kept invalid variant %d of family %q alive for function %d at minute %d",
						p.Name(), vi, fam.Name, fn, t)
				}
				mem := fam.Variants[vi].MemoryMB
				kamMB += mem
				costUSD += cfg.Cost.KeepAliveUSDPerMinute(mem)
			}
			res.PerMinuteKaMMB[t] = kamMB
			res.PerMinuteCostUSD[t] = costUSD
			res.KeepAliveCostUSD += costUSD

			invoked = invoked[:0]
			for fn := range slots {
				s := &slots[fn]
				c := 0
				if s.live {
					c = tr.Functions[s.traceIdx].Counts[t]
				}
				counts[fn] = c
				if c == 0 {
					continue
				}
				invoked = append(invoked, int32(fn))
				if err := serveFunction(&cfg, p, res, t, fn, c, alive[fn], s.fam); err != nil {
					return nil, err
				}
			}

			if cfg.MeasureOverhead {
				start = time.Now()
			}
			asp.RecordInvocationsSparse(t, counts, invoked)
			if cfg.MeasureOverhead {
				res.PolicyOverheadSec += time.Since(start).Seconds()
			}
			continue
		}
		for fn, vi := range alive {
			s := &slots[fn]
			if vi == NoVariant {
				if cfg.Observer != nil {
					cfg.Observer.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: t, Function: fn, Variant: NoVariant})
				}
				continue
			}
			if !s.live {
				return nil, fmt.Errorf("cluster: policy %q kept variant %d alive for deregistered function %d at minute %d",
					p.Name(), vi, fn, t)
			}
			fam := &cfg.Catalog.Families[s.fam]
			if vi < 0 || vi >= fam.NumVariants() {
				return nil, fmt.Errorf("cluster: policy %q kept invalid variant %d of family %q alive for function %d at minute %d",
					p.Name(), vi, fam.Name, fn, t)
			}
			mem := fam.Variants[vi].MemoryMB
			kamMB += mem
			costUSD += cfg.Cost.KeepAliveUSDPerMinute(mem)
			if cfg.Observer != nil {
				cfg.Observer.ObserveKeepAlive(telemetry.KeepAliveSample{
					Minute:      t,
					Function:    fn,
					Variant:     vi,
					VariantName: fam.Variants[vi].Name,
					MemMB:       mem,
				})
			}
		}
		res.PerMinuteKaMMB[t] = kamMB
		res.PerMinuteCostUSD[t] = costUSD
		res.KeepAliveCostUSD += costUSD
		if cfg.Observer != nil {
			cfg.Observer.ObserveMinute(telemetry.MinuteSample{Minute: t, KeepAliveMB: kamMB, CostUSD: costUSD})
		}

		// Serve this minute's invocations.
		for fn := range slots {
			s := &slots[fn]
			c := 0
			if s.live {
				c = tr.Functions[s.traceIdx].Counts[t]
			}
			counts[fn] = c
			if c == 0 {
				continue
			}
			if err := serveFunction(&cfg, p, res, t, fn, c, alive[fn], s.fam); err != nil {
				return nil, err
			}
		}

		if cfg.MeasureOverhead {
			start = time.Now()
		}
		p.RecordInvocations(t, counts)
		if cfg.MeasureOverhead {
			res.PolicyOverheadSec += time.Since(start).Seconds()
		}
	}
	return res, nil
}
