package cluster

import (
	"math"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// fakePolicy keeps a fixed decision vector alive every minute.
type fakePolicy struct {
	name     string
	alive    []int
	cold     int
	recorded [][]int
}

func (f *fakePolicy) Name() string             { return f.name }
func (f *fakePolicy) KeepAlive(int) []int      { return f.alive }
func (f *fakePolicy) ColdVariant(_, _ int) int { return f.cold }
func (f *fakePolicy) RecordInvocations(t int, counts []int) {
	cp := make([]int, len(counts))
	copy(cp, counts)
	f.recorded = append(f.recorded, cp)
}

func testCatalog() *models.Catalog {
	return &models.Catalog{Families: []models.Family{{
		Name: "F",
		Variants: []models.Variant{
			{Name: "lo", AccuracyPct: 70, ExecSec: 1, ColdStartSec: 4, MemoryMB: 256},
			{Name: "hi", AccuracyPct: 90, ExecSec: 2, ColdStartSec: 10, MemoryMB: 1024},
		},
	}}}
}

func testConfig(counts []int) Config {
	tr := &trace.Trace{Horizon: len(counts), Functions: []trace.Function{
		{ID: 0, Name: "f0", Counts: counts},
	}}
	return Config{
		Trace:      tr,
		Catalog:    testCatalog(),
		Assignment: models.Assignment{0},
		Cost:       DefaultCostModel(),
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig([]int{0, 1})
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.Trace = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil trace accepted")
	}
	bad = cfg
	bad.Catalog = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil catalog accepted")
	}
	bad = cfg
	bad.Assignment = models.Assignment{0, 0}
	if err := bad.Validate(); err == nil {
		t.Error("wrong-length assignment accepted")
	}
	bad = cfg
	bad.Cost = CostModel{}
	if err := bad.Validate(); err == nil {
		t.Error("zero cost rate accepted")
	}
}

func TestRunWarmAccounting(t *testing.T) {
	cfg := testConfig([]int{0, 2, 0})
	p := &fakePolicy{name: "always-hi", alive: []int{1}, cold: 1}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "always-hi" {
		t.Errorf("policy name = %q", res.Policy)
	}
	if res.Invocations != 2 || res.WarmStarts != 2 || res.ColdStarts != 0 {
		t.Errorf("inv=%d warm=%d cold=%d", res.Invocations, res.WarmStarts, res.ColdStarts)
	}
	// Two warm invocations of "hi": 2 × 2 s exec.
	if res.TotalServiceSec != 4 {
		t.Errorf("service = %v, want 4", res.TotalServiceSec)
	}
	if got := res.MeanAccuracyPct(); got != 90 {
		t.Errorf("accuracy = %v, want 90", got)
	}
	// Keep-alive: 1024 MB for 3 minutes.
	wantCost := cfg.Cost.KeepAliveUSDPerMinute(1024) * 3
	if math.Abs(res.KeepAliveCostUSD-wantCost) > 1e-12 {
		t.Errorf("cost = %v, want %v", res.KeepAliveCostUSD, wantCost)
	}
	for tt, kam := range res.PerMinuteKaMMB {
		if kam != 1024 {
			t.Errorf("KaM[%d] = %v, want 1024", tt, kam)
		}
	}
	if res.WarmStartRate() != 1 {
		t.Errorf("warm rate = %v", res.WarmStartRate())
	}
	// RecordInvocations must have been called each minute with the counts.
	if len(p.recorded) != 3 || p.recorded[1][0] != 2 {
		t.Errorf("recorded = %v", p.recorded)
	}
}

func TestRunColdAccounting(t *testing.T) {
	cfg := testConfig([]int{3})
	p := &fakePolicy{name: "never", alive: []int{NoVariant}, cold: 0}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// First invocation cold on "lo" (4+1 s), two follow-ups warm (1 s each).
	if res.ColdStarts != 1 || res.WarmStarts != 2 {
		t.Errorf("cold=%d warm=%d", res.ColdStarts, res.WarmStarts)
	}
	if res.TotalServiceSec != 7 {
		t.Errorf("service = %v, want 7", res.TotalServiceSec)
	}
	if got := res.MeanAccuracyPct(); got != 70 {
		t.Errorf("accuracy = %v, want 70", got)
	}
	if res.KeepAliveCostUSD != 0 {
		t.Errorf("cost = %v, want 0 (nothing kept alive)", res.KeepAliveCostUSD)
	}
}

func TestRunRejectsBadPolicies(t *testing.T) {
	cfg := testConfig([]int{1})
	if _, err := Run(cfg, nil); err == nil {
		t.Error("nil policy accepted")
	}
	// Wrong decision vector length.
	p := &fakePolicy{name: "bad", alive: []int{0, 0}, cold: 0}
	if _, err := Run(cfg, p); err == nil {
		t.Error("wrong-length decisions accepted")
	}
	// Invalid keep-alive variant index.
	p = &fakePolicy{name: "bad", alive: []int{7}, cold: 0}
	if _, err := Run(cfg, p); err == nil {
		t.Error("invalid keep-alive variant accepted")
	}
	// Invalid cold variant index.
	p = &fakePolicy{name: "bad", alive: []int{NoVariant}, cold: 9}
	if _, err := Run(cfg, p); err == nil {
		t.Error("invalid cold variant accepted")
	}
}

func TestRunMeasuresOverhead(t *testing.T) {
	cfg := testConfig(make([]int, 100))
	cfg.MeasureOverhead = true
	p := &fakePolicy{name: "x", alive: []int{NoVariant}, cold: 0}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyCalls != 100 {
		t.Errorf("policy calls = %d, want 100", res.PolicyCalls)
	}
	if res.PolicyOverheadSec < 0 {
		t.Errorf("negative overhead %v", res.PolicyOverheadSec)
	}
}

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	// 1 GB for one minute at $1.667e-5/GB-s = $1.0002e-3.
	got := cm.KeepAliveUSDPerMinute(1024)
	want := 1.667e-5 * 60
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("1 GiB-minute = %v, want %v", got, want)
	}
	if cm.KeepAliveUSDPerMinute(0) != 0 {
		t.Error("zero memory should cost zero")
	}
}

func TestIdealCostSeries(t *testing.T) {
	cfg := testConfig([]int{0, 1, 0, 2})
	ideal, err := IdealCostSeries(cfg.Trace, cfg.Catalog, cfg.Assignment, cfg.Cost)
	if err != nil {
		t.Fatal(err)
	}
	perMin := cfg.Cost.KeepAliveUSDPerMinute(1024) // highest variant
	want := []float64{0, perMin, 0, perMin}
	for tt := range want {
		if math.Abs(ideal[tt]-want[tt]) > 1e-15 {
			t.Errorf("ideal[%d] = %v, want %v", tt, ideal[tt], want[tt])
		}
	}
	if _, err := IdealCostSeries(cfg.Trace, cfg.Catalog, models.Assignment{9}, cfg.Cost); err == nil {
		t.Error("invalid assignment accepted")
	}
}

func TestServiceTimeRecording(t *testing.T) {
	cfg := testConfig([]int{3, 0, 1})
	cfg.RecordServiceTimes = true
	p := &fakePolicy{name: "never", alive: []int{NoVariant}, cold: 0}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// Minute 0: cold (5s) + 2 warm (1s); minute 2: cold (5s).
	want := []float64{5, 1, 1, 5}
	if len(res.ServiceTimesSec) != len(want) {
		t.Fatalf("samples = %v", res.ServiceTimesSec)
	}
	for i, w := range want {
		if res.ServiceTimesSec[i] != w {
			t.Errorf("sample %d = %v, want %v", i, res.ServiceTimesSec[i], w)
		}
	}
	p50, err := res.ServiceTimePercentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != 3 { // interpolated median of {1,1,5,5}
		t.Errorf("P50 = %v, want 3", p50)
	}
	if _, err := res.ServiceTimePercentile(101); err == nil {
		t.Error("out-of-range percentile accepted")
	}
	// Without recording, percentiles error.
	cfg.RecordServiceTimes = false
	res2, err := Run(cfg, &fakePolicy{name: "never", alive: []int{NoVariant}, cold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.ServiceTimesSec) != 0 {
		t.Error("samples recorded without the flag")
	}
	if _, err := res2.ServiceTimePercentile(50); err == nil {
		t.Error("percentile without recording accepted")
	}
}

func TestResultZeroInvocations(t *testing.T) {
	r := &Result{}
	if r.MeanAccuracyPct() != 0 || r.WarmStartRate() != 0 || r.OverheadPerServiceTime() != 0 {
		t.Error("zero-invocation result should return zeros, not NaN")
	}
}
