package cluster

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// The paper's motivation for cross-function optimization: "The memory, a
// finite resource for serverless providers, is shared between actual
// invocations and keep-alive." CapacityReport quantifies that sharing for a
// finished run: per-minute total demand (keep-alive memory plus the
// memory of containers actively executing invocations) against a fixed
// node capacity, with the contention minutes a provider would experience.

// CapacityReport summarizes memory demand against a capacity.
type CapacityReport struct {
	CapacityMB        float64
	PeakDemandMB      float64
	MeanDemandMB      float64
	MeanUtilization   float64 // mean demand / capacity
	ContentionMinutes int     // minutes where demand exceeded capacity
	OverflowMBMinutes float64 // Σ max(0, demand − capacity)
	DemandMB          []float64
}

// AnalyzeCapacity derives the demand profile of a run: the result's
// keep-alive memory plus, for every minute, the execution memory of the
// invocations the trace delivered that minute (each invocation occupies its
// function's serving-variant footprint while executing; at minute
// resolution that is its arrival minute). The serving variant is
// approximated by the function's highest variant — the upper envelope a
// provider must provision for.
func AnalyzeCapacity(res *Result, tr *trace.Trace, cat *models.Catalog, asg models.Assignment, capacityMB float64) (*CapacityReport, error) {
	if res == nil {
		return nil, fmt.Errorf("cluster: nil result")
	}
	if capacityMB <= 0 {
		return nil, fmt.Errorf("cluster: non-positive capacity %v", capacityMB)
	}
	if err := (&Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: DefaultCostModel()}).Validate(); err != nil {
		return nil, err
	}
	if len(res.PerMinuteKaMMB) != tr.Horizon {
		return nil, fmt.Errorf("cluster: result covers %d minutes, trace %d", len(res.PerMinuteKaMMB), tr.Horizon)
	}
	rep := &CapacityReport{
		CapacityMB: capacityMB,
		DemandMB:   make([]float64, tr.Horizon),
	}
	var sum float64
	for t := 0; t < tr.Horizon; t++ {
		demand := res.PerMinuteKaMMB[t]
		for fn := range tr.Functions {
			if c := tr.Functions[fn].Counts[t]; c > 0 {
				fam := cat.Families[asg[fn]]
				demand += float64(c) * fam.Highest().MemoryMB
			}
		}
		rep.DemandMB[t] = demand
		sum += demand
		if demand > rep.PeakDemandMB {
			rep.PeakDemandMB = demand
		}
		if demand > capacityMB {
			rep.ContentionMinutes++
			rep.OverflowMBMinutes += demand - capacityMB
		}
	}
	rep.MeanDemandMB = sum / float64(tr.Horizon)
	rep.MeanUtilization = rep.MeanDemandMB / capacityMB
	return rep, nil
}
