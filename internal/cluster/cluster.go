// Package cluster implements the serverless platform simulator PULSE and
// the baseline keep-alive policies run against: a discrete-time engine at
// minute resolution (the paper's time base) with container keep-alive
// accounting, warm/cold start service-time attribution, a keep-alive memory
// ledger, and a configurable cost model.
//
// The engine is policy-agnostic: a Policy decides, for every simulated
// minute, which model variant (if any) each function keeps alive, and which
// variant serves an invocation that arrives cold. Everything else — memory,
// cost, service time, accuracy accounting — is computed here so that every
// policy is measured identically.
package cluster

import (
	"fmt"
	"time"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/stats"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// NoVariant marks "no container kept alive" in a keep-alive decision.
const NoVariant = -1

// DefaultKeepAliveWindow is the fixed keep-alive period in minutes used by
// OpenWhisk, AWS, Azure, and Google Functions, and inherited by PULSE as
// the window it optimizes within.
const DefaultKeepAliveWindow = 10

// CostModel converts keep-alive memory into provider cost. The paper quotes
// AWS pricing; the printed "$16.67 per KB-second" is a unit typo (it would
// price one 1 GB container-minute at ~$10⁹), so the default uses AWS
// Lambda's published $1.667e-5 per GB-second. All policies are charged
// through the same model, so relative improvements — the paper's reported
// metric — are insensitive to the absolute rate.
type CostModel struct {
	USDPerGBSecond float64
}

// DefaultCostModel returns the AWS-Lambda-calibrated cost model.
func DefaultCostModel() CostModel {
	return CostModel{USDPerGBSecond: 1.667e-5}
}

// KeepAliveUSDPerMinute prices one minute of keep-alive for a container of
// the given memory footprint.
func (cm CostModel) KeepAliveUSDPerMinute(memMB float64) float64 {
	return cm.USDPerGBSecond * (memMB / 1024) * 60
}

// Policy is a keep-alive controller. The engine drives it minute by
// minute; implementations must be deterministic for reproducible runs.
// Policies that own background resources (such as the sharded PULSE
// controller's worker pool) additionally implement io.Closer; drivers
// that construct policies should close them when done.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// KeepAlive returns, for minute t, the variant index each function
	// keeps alive during minute t (NoVariant for none). The returned slice
	// is indexed by function and owned by the engine until the next call.
	// KeepAlive is called before the minute's invocations are served: a
	// container kept alive at t serves the invocations arriving at t warm.
	KeepAlive(t int) []int
	// ColdVariant returns the variant index that serves function fn's
	// invocations at minute t when no container is alive (a cold start).
	ColdVariant(t, fn int) int
	// RecordInvocations informs the policy of the invocation counts
	// observed at minute t (one entry per function), after they were
	// served. Policies update their histories and future plans here.
	RecordInvocations(t int, counts []int)
}

// ActiveSetPolicy is a Policy that maintains an incremental index of the
// slots whose decision can be anything but NoVariant — the "active set".
// It lets the engine's per-minute accounting and record paths skip idle
// slots instead of scanning the whole population; results must stay
// bit-identical because every slot outside the set is guaranteed NoVariant
// and the set is iterated in ascending slot order (the dense scan order).
type ActiveSetPolicy interface {
	Policy
	// RecordInvocationsSparse is RecordInvocations driven by a pre-built
	// strictly ascending list of the slots with counts[fn] > 0, so the
	// policy need not scan the dense counts vector. counts remains the
	// authoritative per-slot values; the decisions must be identical to a
	// RecordInvocations call with the same counts.
	RecordInvocationsSparse(t int, counts []int, invoked []int32)
	// ActiveSlots returns the current active set, strictly ascending. It is
	// valid after a KeepAlive call until the next policy call, aliases
	// policy-owned state, and must not be mutated. Every slot outside the
	// list decided NoVariant for the minute.
	ActiveSlots() []int32
}

// Config assembles a simulation run.
type Config struct {
	Trace      *trace.Trace
	Catalog    *models.Catalog
	Assignment models.Assignment // function index → family index
	Cost       CostModel
	// MeasureOverhead samples wall-clock time spent inside policy calls,
	// feeding the Figure 9 overhead comparison. It is the only wall-clock
	// use in the engine and does not affect simulated results.
	MeasureOverhead bool
	// RecordServiceTimes keeps every invocation's service time in the
	// result so tail latencies (P95/P99) can be reported, not just totals.
	RecordServiceTimes bool
	// Observer, when non-nil, receives per-minute keep-alive and
	// invocation samples — the same instrumentation surface the live
	// runtime uses, so simulation runs can be audited identically.
	Observer telemetry.Observer
	// Shards is the number of worker goroutines the engine fans the
	// per-minute function scans out to (keep-alive accounting and
	// invocation-count loading). 0 or 1 runs serially. Results are
	// bit-identical at every shard count: workers only precompute
	// per-function contributions; all floating-point accumulation,
	// service-time recording, and policy callbacks happen on the driving
	// goroutine in function order. When an Observer is attached the
	// engine always uses the serial scan so the audit event stream stays
	// byte-for-byte identical.
	Shards int
}

// Validate checks the configuration is runnable.
func (c *Config) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("cluster: nil trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.Catalog == nil {
		return fmt.Errorf("cluster: nil catalog")
	}
	if err := c.Catalog.Validate(); err != nil {
		return err
	}
	if err := c.Assignment.Validate(c.Catalog, len(c.Trace.Functions)); err != nil {
		return err
	}
	if c.Cost.USDPerGBSecond <= 0 {
		return fmt.Errorf("cluster: non-positive cost rate %v", c.Cost.USDPerGBSecond)
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: negative shard count %d", c.Shards)
	}
	return nil
}

// Result aggregates one simulated run of one policy.
type Result struct {
	Policy            string
	Horizon           int
	Invocations       int
	WarmStarts        int
	ColdStarts        int
	TotalServiceSec   float64
	KeepAliveCostUSD  float64
	AccuracySumPct    float64 // Σ accuracy delivered per invocation, in percent
	PerMinuteKaMMB    []float64
	PerMinuteCostUSD  []float64
	PolicyOverheadSec float64 // wall-clock inside policy calls (if measured)
	PolicyCalls       int
	// ServiceTimesSec holds one entry per invocation when
	// Config.RecordServiceTimes is set (order: minute, then function).
	ServiceTimesSec []float64
}

// ServiceTimePercentile returns the p-th percentile of per-invocation
// service times. It errors when service times were not recorded.
func (r *Result) ServiceTimePercentile(p float64) (float64, error) {
	if len(r.ServiceTimesSec) == 0 {
		return 0, fmt.Errorf("cluster: service times not recorded (set Config.RecordServiceTimes)")
	}
	return stats.Percentile(r.ServiceTimesSec, p)
}

// MeanAccuracyPct returns the paper's accuracy metric: the accuracy
// delivered per invocation, averaged over all invocations.
func (r *Result) MeanAccuracyPct() float64 {
	if r.Invocations == 0 {
		return 0
	}
	return r.AccuracySumPct / float64(r.Invocations)
}

// WarmStartRate returns the fraction of invocations served warm.
func (r *Result) WarmStartRate() float64 {
	if r.Invocations == 0 {
		return 0
	}
	return float64(r.WarmStarts) / float64(r.Invocations)
}

// OverheadPerServiceTime returns Figure 9's x-axis: policy decision
// overhead divided by total service time delivered.
func (r *Result) OverheadPerServiceTime() float64 {
	if r.TotalServiceSec == 0 {
		return 0
	}
	return r.PolicyOverheadSec / r.TotalServiceSec
}

// Run simulates the whole trace under the given policy.
func Run(cfg Config, p Policy) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	if cfg.Trace.HasChurn() {
		// Functions register and deregister mid-trace: the lifecycle-aware
		// serial engine (churn.go) drives the run.
		return runChurn(cfg, p)
	}
	tr := cfg.Trace
	nFn := len(tr.Functions)
	res := &Result{
		Policy:           p.Name(),
		Horizon:          tr.Horizon,
		PerMinuteKaMMB:   make([]float64, tr.Horizon),
		PerMinuteCostUSD: make([]float64, tr.Horizon),
	}
	counts := make([]int, nFn)

	// The per-minute function scans fan out to a persistent worker pool
	// when sharding is enabled; an attached Observer forces the serial
	// scan so the audit event stream keeps its exact serial order.
	shards := cfg.Shards
	if cfg.Observer != nil || shards > nFn {
		shards = 1
	}
	var eng *enginePool
	if shards > 1 {
		eng = newEnginePool(&cfg, p.Name(), shards, counts)
		defer eng.close()
	}
	// Self-observability: time the per-minute accounting scan when a
	// chained observer consumes self samples (only the serial scan can
	// carry an observer — see above).
	timing := telemetry.WantsSelf(cfg.Observer)

	// Idle-skip: when the policy tracks its active set and no observer
	// wants per-slot samples, the serial accounting loop visits only the
	// slots that can hold a decision, and the record fan-in hands the
	// policy a pre-built invoked list. Both iterate ascending, so every
	// float accumulates in dense-scan order — results are bit-identical.
	asp, sparse := p.(ActiveSetPolicy)
	sparse = sparse && cfg.Observer == nil && eng == nil
	var invoked []int32

	for t := 0; t < tr.Horizon; t++ {
		var start time.Time
		if cfg.MeasureOverhead {
			start = time.Now()
		}
		alive := p.KeepAlive(t)
		if cfg.MeasureOverhead {
			res.PolicyOverheadSec += time.Since(start).Seconds()
			res.PolicyCalls++
		}
		if len(alive) != nFn {
			return nil, fmt.Errorf("cluster: policy %q returned %d decisions for %d functions at minute %d",
				p.Name(), len(alive), nFn, t)
		}

		var kamMB, costUSD float64
		if eng != nil {
			// Sharded scan: workers validate decisions, load invocation
			// counts, and compact the minute's active functions; all
			// accumulation happens here, in function order, so sums are
			// bit-identical to the serial scan.
			eng.scan(t, alive)
			for _, s := range eng.shards {
				if s.err != nil {
					return nil, s.err
				}
			}
			for _, s := range eng.shards {
				for _, ev := range s.events {
					if ev.vi != NoVariant {
						kamMB += ev.mem
						costUSD += cfg.Cost.KeepAliveUSDPerMinute(ev.mem)
					}
				}
			}
		} else if sparse {
			// Idle-skip accounting: only listed slots can decide anything
			// but NoVariant, and the list is ascending, so the sums match
			// the dense loop's bit for bit.
			for _, fn32 := range asp.ActiveSlots() {
				fn := int(fn32)
				vi := alive[fn]
				if vi == NoVariant {
					continue
				}
				fam := &cfg.Catalog.Families[cfg.Assignment[fn]]
				if vi < 0 || vi >= fam.NumVariants() {
					return nil, fmt.Errorf("cluster: policy %q kept invalid variant %d of family %q alive for function %d at minute %d",
						p.Name(), vi, fam.Name, fn, t)
				}
				mem := fam.Variants[vi].MemoryMB
				kamMB += mem
				costUSD += cfg.Cost.KeepAliveUSDPerMinute(mem)
			}
		} else {
			// Keep-alive accounting for this minute.
			var scan0 time.Time
			if timing {
				scan0 = time.Now()
			}
			for fn, vi := range alive {
				if vi == NoVariant {
					if cfg.Observer != nil {
						cfg.Observer.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: t, Function: fn, Variant: NoVariant})
					}
					continue
				}
				fam := &cfg.Catalog.Families[cfg.Assignment[fn]]
				if vi < 0 || vi >= fam.NumVariants() {
					return nil, fmt.Errorf("cluster: policy %q kept invalid variant %d of family %q alive for function %d at minute %d",
						p.Name(), vi, fam.Name, fn, t)
				}
				mem := fam.Variants[vi].MemoryMB
				kamMB += mem
				costUSD += cfg.Cost.KeepAliveUSDPerMinute(mem)
				if cfg.Observer != nil {
					cfg.Observer.ObserveKeepAlive(telemetry.KeepAliveSample{
						Minute:      t,
						Function:    fn,
						Variant:     vi,
						VariantName: fam.Variants[vi].Name,
						MemMB:       mem,
					})
				}
			}
			if timing {
				telemetry.ObserveScan(cfg.Observer, telemetry.ScanSample{
					Minute: t, Shard: -1, Functions: nFn, Seconds: time.Since(scan0).Seconds(),
				})
			}
		}
		res.PerMinuteKaMMB[t] = kamMB
		res.PerMinuteCostUSD[t] = costUSD
		res.KeepAliveCostUSD += costUSD
		if cfg.Observer != nil {
			cfg.Observer.ObserveMinute(telemetry.MinuteSample{Minute: t, KeepAliveMB: kamMB, CostUSD: costUSD})
		}

		// Serve this minute's invocations.
		if eng != nil {
			for _, s := range eng.shards {
				for _, ev := range s.events {
					if ev.c == 0 {
						continue
					}
					if err := serveFunction(&cfg, p, res, t, ev.fn, ev.c, ev.vi, cfg.Assignment[ev.fn]); err != nil {
						return nil, err
					}
				}
			}
		} else {
			invoked = invoked[:0]
			for fn := 0; fn < nFn; fn++ {
				c := tr.Functions[fn].Counts[t]
				counts[fn] = c
				if c == 0 {
					continue
				}
				if sparse {
					invoked = append(invoked, int32(fn))
				}
				if err := serveFunction(&cfg, p, res, t, fn, c, alive[fn], cfg.Assignment[fn]); err != nil {
					return nil, err
				}
			}
		}

		if cfg.MeasureOverhead {
			start = time.Now()
		}
		if sparse {
			asp.RecordInvocationsSparse(t, counts, invoked)
		} else {
			p.RecordInvocations(t, counts)
		}
		if cfg.MeasureOverhead {
			res.PolicyOverheadSec += time.Since(start).Seconds()
		}
	}
	return res, nil
}

// serveFunction attributes one invoked function's minute: warm service on
// the kept-alive variant, or a cold start on the policy's cold variant
// with the remainder of the minute served warm. Shared by the serial,
// sharded, and churn scans so their accounting cannot drift. famIdx is
// passed explicitly because under churn the function slot is not an index
// into Config.Assignment.
func serveFunction(cfg *Config, p Policy, res *Result, t, fn, c, vi, famIdx int) error {
	fam := &cfg.Catalog.Families[famIdx]
	res.Invocations += c
	if vi != NoVariant {
		// Warm: the kept-alive variant serves every invocation.
		v := fam.Variants[vi]
		res.WarmStarts += c
		res.TotalServiceSec += float64(c) * v.ExecSec
		res.AccuracySumPct += float64(c) * v.AccuracyPct
		if cfg.RecordServiceTimes {
			for i := 0; i < c; i++ {
				res.ServiceTimesSec = append(res.ServiceTimesSec, v.ExecSec)
			}
		}
		if cfg.Observer != nil {
			cfg.Observer.ObserveInvocation(telemetry.InvocationSample{
				Minute: t, Function: fn, Variant: v.Name,
				Count: c, ServiceSec: v.ExecSec, AccuracyPct: v.AccuracyPct,
			})
		}
		return nil
	}
	// Cold: the first invocation pays the cold start and creates a
	// container that serves the rest of the minute warm.
	cvi := p.ColdVariant(t, fn)
	if cvi < 0 || cvi >= fam.NumVariants() {
		return fmt.Errorf("cluster: policy %q chose invalid cold variant %d of family %q for function %d at minute %d",
			p.Name(), cvi, fam.Name, fn, t)
	}
	v := fam.Variants[cvi]
	res.ColdStarts++
	res.TotalServiceSec += v.ColdServiceSec()
	res.AccuracySumPct += v.AccuracyPct
	if cfg.RecordServiceTimes {
		res.ServiceTimesSec = append(res.ServiceTimesSec, v.ColdServiceSec())
	}
	if cfg.Observer != nil {
		cfg.Observer.ObserveInvocation(telemetry.InvocationSample{
			Minute: t, Function: fn, Variant: v.Name, Cold: true,
			Count: 1, ServiceSec: v.ColdServiceSec(), AccuracyPct: v.AccuracyPct,
		})
	}
	if c > 1 {
		res.WarmStarts += c - 1
		res.TotalServiceSec += float64(c-1) * v.ExecSec
		res.AccuracySumPct += float64(c-1) * v.AccuracyPct
		if cfg.RecordServiceTimes {
			for i := 1; i < c; i++ {
				res.ServiceTimesSec = append(res.ServiceTimesSec, v.ExecSec)
			}
		}
		if cfg.Observer != nil {
			cfg.Observer.ObserveInvocation(telemetry.InvocationSample{
				Minute: t, Function: fn, Variant: v.Name,
				Count: c - 1, ServiceSec: v.ExecSec, AccuracyPct: v.AccuracyPct,
			})
		}
	}
	return nil
}

// IdealCostSeries returns, per minute, the keep-alive cost of the paper's
// "ideal" reference (Figure 6b): a container of the function's
// highest-quality variant is alive only during the minutes the function is
// actually invoked.
func IdealCostSeries(tr *trace.Trace, cat *models.Catalog, asg models.Assignment, cost CostModel) ([]float64, error) {
	if err := (&Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cost}).Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, tr.Horizon)
	for fn := range tr.Functions {
		fam := &cat.Families[asg[fn]]
		perMin := cost.KeepAliveUSDPerMinute(fam.Highest().MemoryMB)
		for t, c := range tr.Functions[fn].Counts {
			if c > 0 {
				out[t] += perMin
			}
		}
	}
	return out, nil
}
