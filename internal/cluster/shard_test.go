package cluster

// Differential test for the engine's sharded per-minute scan: the sharded
// path precomputes per-function events on workers and reduces them on the
// coordinator in function order, so every Result field must match the
// serial scan exactly.

import (
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// variedPolicy alternates keep-alive decisions per minute so the scan
// exercises warm, cold, and idle paths across functions.
type variedPolicy struct {
	alive []int
}

func (v *variedPolicy) Name() string { return "varied" }
func (v *variedPolicy) KeepAlive(t int) []int {
	for fn := range v.alive {
		switch (t + fn) % 3 {
		case 0:
			v.alive[fn] = NoVariant
		case 1:
			v.alive[fn] = 0
		default:
			v.alive[fn] = 1
		}
	}
	return v.alive
}
func (v *variedPolicy) ColdVariant(t, fn int) int    { return (t + fn) % 2 }
func (v *variedPolicy) RecordInvocations(int, []int) {}

func shardTestTrace(t *testing.T, nFn int) *trace.Trace {
	t.Helper()
	var arch []trace.Archetype
	for i := 0; i < nFn; i++ {
		switch i % 3 {
		case 0:
			arch = append(arch, trace.Poisson{Rate: 0.7})
		case 1:
			arch = append(arch, trace.Sporadic{MeanGap: 9})
		default:
			arch = append(arch, trace.Periodic{Period: 4, Jitter: 1})
		}
	}
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 3, Horizon: 6 * 60, Archetypes: arch})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestShardedEngineMatchesSerial runs the same policy over the same trace
// with the serial scan and several engine shard counts, requiring exact
// equality of the complete Result — including the order-sensitive
// ServiceTimesSec series.
func TestShardedEngineMatchesSerial(t *testing.T) {
	const nFn = 11
	tr := shardTestTrace(t, nFn)
	cat := testCatalog()
	asg := make(models.Assignment, nFn)
	run := func(shards int) *Result {
		res, err := Run(Config{
			Trace:              tr,
			Catalog:            cat,
			Assignment:         asg,
			Cost:               DefaultCostModel(),
			RecordServiceTimes: true,
			Shards:             shards,
		}, &variedPolicy{alive: make([]int, nFn)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, shards := range []int{0, 2, 3, 11, 64} {
		got := run(shards)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("shards=%d: Result diverges from serial scan", shards)
			if got.KeepAliveCostUSD != base.KeepAliveCostUSD {
				t.Errorf("  cost %v, want %v", got.KeepAliveCostUSD, base.KeepAliveCostUSD)
			}
			if got.WarmStarts != base.WarmStarts || got.ColdStarts != base.ColdStarts {
				t.Errorf("  starts %d/%d, want %d/%d", got.WarmStarts, got.ColdStarts, base.WarmStarts, base.ColdStarts)
			}
			if !reflect.DeepEqual(got.ServiceTimesSec, base.ServiceTimesSec) {
				t.Errorf("  service-time series diverges")
			}
		}
	}
}

// TestShardedEngineValidation: negative engine shard counts are rejected
// up front.
func TestShardedEngineValidation(t *testing.T) {
	cfg := testConfig([]int{0, 1})
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative engine shard count accepted")
	}
}

// TestShardedEngineReportsBadVariant: validation errors raised on shard
// workers surface as Run errors, like the serial scan's.
func TestShardedEngineReportsBadVariant(t *testing.T) {
	const nFn = 8
	tr := shardTestTrace(t, nFn)
	bad := &fakePolicy{name: "bad", alive: make([]int, nFn), cold: 99}
	for fn := range bad.alive {
		bad.alive[fn] = NoVariant // every invocation goes cold → invalid variant 99
	}
	_, err := Run(Config{
		Trace:      tr,
		Catalog:    testCatalog(),
		Assignment: make(models.Assignment, nFn),
		Cost:       DefaultCostModel(),
		Shards:     4,
	}, bad)
	if err == nil {
		t.Error("invalid cold variant not reported through the sharded scan")
	}
}
