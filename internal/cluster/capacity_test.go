package cluster

import (
	"math"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
)

func TestAnalyzeCapacity(t *testing.T) {
	cfg := testConfig([]int{0, 2, 0})
	p := &fakePolicy{name: "hi", alive: []int{1}, cold: 1}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// Keep-alive: 1024 MB every minute. Minute 1 adds 2 invocations of the
	// highest variant (1024 MB each) → demand 3072.
	rep, err := AnalyzeCapacity(res, cfg.Trace, cfg.Catalog, cfg.Assignment, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1024, 3072, 1024}
	for tt, w := range want {
		if rep.DemandMB[tt] != w {
			t.Errorf("demand[%d] = %v, want %v", tt, rep.DemandMB[tt], w)
		}
	}
	if rep.PeakDemandMB != 3072 {
		t.Errorf("peak = %v", rep.PeakDemandMB)
	}
	if rep.ContentionMinutes != 1 {
		t.Errorf("contention minutes = %d, want 1", rep.ContentionMinutes)
	}
	if rep.OverflowMBMinutes != 3072-2000 {
		t.Errorf("overflow = %v, want %v", rep.OverflowMBMinutes, 3072-2000)
	}
	wantMean := (1024.0 + 3072 + 1024) / 3
	if math.Abs(rep.MeanDemandMB-wantMean) > 1e-9 {
		t.Errorf("mean = %v, want %v", rep.MeanDemandMB, wantMean)
	}
	if math.Abs(rep.MeanUtilization-wantMean/2000) > 1e-9 {
		t.Errorf("utilization = %v", rep.MeanUtilization)
	}
}

func TestAnalyzeCapacityValidation(t *testing.T) {
	cfg := testConfig([]int{1})
	p := &fakePolicy{name: "x", alive: []int{NoVariant}, cold: 0}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeCapacity(nil, cfg.Trace, cfg.Catalog, cfg.Assignment, 100); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := AnalyzeCapacity(res, cfg.Trace, cfg.Catalog, cfg.Assignment, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := AnalyzeCapacity(res, cfg.Trace, cfg.Catalog, models.Assignment{9}, 100); err == nil {
		t.Error("bad assignment accepted")
	}
	short := &Result{PerMinuteKaMMB: []float64{1, 2}}
	if _, err := AnalyzeCapacity(short, cfg.Trace, cfg.Catalog, cfg.Assignment, 100); err == nil {
		t.Error("horizon mismatch accepted")
	}
}

// PULSE's peak smoothing must translate into less capacity contention than
// the fixed policy on the same tight capacity.
func TestCapacityContentionOrdering(t *testing.T) {
	cfg := testConfig([]int{0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 1, 0})
	hi := &fakePolicy{name: "always-hi", alive: []int{1}, cold: 1}
	lo := &fakePolicy{name: "always-lo", alive: []int{0}, cold: 0}
	rHi, err := Run(cfg, hi)
	if err != nil {
		t.Fatal(err)
	}
	rLo, err := Run(cfg, lo)
	if err != nil {
		t.Fatal(err)
	}
	// 1500 MB sits between the low policy's busiest minute (256 keep-alive
	// + 1024 executing = 1280) and the high policy's (1024 + 1024 = 2048).
	capn := 1500.0
	repHi, err := AnalyzeCapacity(rHi, cfg.Trace, cfg.Catalog, cfg.Assignment, capn)
	if err != nil {
		t.Fatal(err)
	}
	repLo, err := AnalyzeCapacity(rLo, cfg.Trace, cfg.Catalog, cfg.Assignment, capn)
	if err != nil {
		t.Fatal(err)
	}
	if repLo.ContentionMinutes >= repHi.ContentionMinutes {
		t.Errorf("low-quality keep-alive should contend less: %d vs %d",
			repLo.ContentionMinutes, repHi.ContentionMinutes)
	}
	if repLo.MeanUtilization >= repHi.MeanUtilization {
		t.Errorf("low-quality utilization %v not below %v", repLo.MeanUtilization, repHi.MeanUtilization)
	}
}
