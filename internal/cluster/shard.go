package cluster

import (
	"fmt"
	"sync"
)

// This file implements the engine's sharded per-minute function scan.
// Each simulated minute the engine must walk every function twice: once
// to account the kept-alive memory and once to serve the minute's
// invocations. At production scale (tens of thousands of functions) those
// serial O(nFunctions) walks dominate the engine's share of the minute,
// so they fan out to a persistent worker pool — one goroutine per shard
// of contiguous functions, alive for the whole Run, fed over channels
// with a WaitGroup barrier per minute.
//
// Workers only *precompute*: they validate the policy's decision, look up
// the kept-alive variant's memory, load the minute's invocation count,
// and compact the shard's active functions into an event list. Every
// accumulating operation — floating-point sums, service-time recording,
// ColdVariant policy callbacks — stays on the driving goroutine, which
// reduces the shard event lists in shard order (and therefore ascending
// function order). Results are bit-identical to the serial scan at every
// shard count because no summation is ever re-associated.

// fnMinuteEvent is one active function's precomputed minute: the policy's
// kept-alive decision with its memory, and the invocation count. Workers
// emit an event only for functions that are kept alive or invoked, so the
// reduce step touches active functions rather than all of them.
type fnMinuteEvent struct {
	fn  int
	vi  int     // variant kept alive this minute, NoVariant when none
	mem float64 // memory of the kept-alive variant (0 when none)
	c   int     // invocations arriving this minute
}

// engineShard owns the contiguous function range [lo, hi).
type engineShard struct {
	lo, hi int
	jobs   chan int // minute to scan; closed to stop the worker
	events []fnMinuteEvent
	err    error
}

// enginePool is the per-Run scan pool.
type enginePool struct {
	cfg    *Config
	policy string // policy name, for error messages
	alive  []int  // the minute's decisions; set by scan before dispatch
	counts []int  // invocation counts workers load for RecordInvocations
	shards []*engineShard
	wg     sync.WaitGroup
	once   sync.Once
}

// newEnginePool partitions nFn functions into nShards contiguous ranges
// (sizes differing by at most one) and starts one worker per shard.
func newEnginePool(cfg *Config, policy string, nShards int, counts []int) *enginePool {
	nFn := len(counts)
	pool := &enginePool{cfg: cfg, policy: policy, counts: counts, shards: make([]*engineShard, nShards)}
	base, rem := nFn/nShards, nFn%nShards
	lo := 0
	for i := range pool.shards {
		size := base
		if i < rem {
			size++
		}
		s := &engineShard{lo: lo, hi: lo + size, jobs: make(chan int, 1)}
		pool.shards[i] = s
		lo = s.hi
		go func() {
			for t := range s.jobs {
				s.scan(pool, t)
				pool.wg.Done()
			}
		}()
	}
	return pool
}

// scan fans minute t out to the workers and waits for the barrier. The
// caller owns alive until the next scan call.
func (pl *enginePool) scan(t int, alive []int) {
	pl.alive = alive
	pl.wg.Add(len(pl.shards))
	for _, s := range pl.shards {
		s.jobs <- t
	}
	pl.wg.Wait()
}

// close stops the workers. Idempotent.
func (pl *enginePool) close() {
	pl.once.Do(func() {
		for _, s := range pl.shards {
			close(s.jobs)
		}
	})
}

// scan precomputes the shard's minute: decision validation, kept-alive
// memory lookup, invocation-count load, and active-function compaction.
func (s *engineShard) scan(pl *enginePool, t int) {
	if s.err != nil {
		return
	}
	s.events = s.events[:0]
	cfg := pl.cfg
	for fn := s.lo; fn < s.hi; fn++ {
		c := cfg.Trace.Functions[fn].Counts[t]
		pl.counts[fn] = c
		vi := pl.alive[fn]
		var mem float64
		if vi != NoVariant {
			fam := &cfg.Catalog.Families[cfg.Assignment[fn]]
			if vi < 0 || vi >= fam.NumVariants() {
				s.err = fmt.Errorf("cluster: policy %q kept invalid variant %d of family %q alive for function %d at minute %d",
					pl.policy, vi, fam.Name, fn, t)
				return
			}
			mem = fam.Variants[vi].MemoryMB
		}
		if vi != NoVariant || c > 0 {
			s.events = append(s.events, fnMinuteEvent{fn: fn, vi: vi, mem: mem, c: c})
		}
	}
}
