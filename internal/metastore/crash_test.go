package metastore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrashRecoverySweepsTempFiles simulates a Save interrupted between
// temp-file write and rename: the orphaned temp file must be swept on the
// next Open, and the authoritative snapshot (previous complete version, per
// the atomic-rename protocol) must still load.
func TestCrashRecoverySweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, cfg := newController(t)
	if err := s.SaveController("c", p); err != nil {
		t.Fatal(err)
	}
	// A crash mid-Save leaves a half-written temp file behind.
	orphan := filepath.Join(dir, "c.tmp-123456")
	if err := os.WriteFile(orphan, []byte(`{"version":2,"checks`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned temp file survived reopen: stat err = %v", err)
	}
	back, err := s2.LoadController("c", cfg)
	if err != nil {
		t.Fatalf("snapshot unreadable after temp sweep: %v", err)
	}
	if back.ResumeMinute() != p.ResumeMinute() {
		t.Errorf("resume minute %d, want %d", back.ResumeMinute(), p.ResumeMinute())
	}
	// The sweep never touches real snapshots.
	names, err := s2.List()
	if err != nil || len(names) != 1 || names[0] != "c" {
		t.Errorf("List after sweep = %v, %v", names, err)
	}
}

// TestTruncatedEnvelope pins the failure mode of a snapshot cut short (disk
// full, torn write outside the atomic protocol): a descriptive corruption
// error, never a panic, and never os.IsNotExist (which would silently read
// as "no state saved").
func TestTruncatedEnvelope(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := newController(t)
	if err := s.SaveController("c", p); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "c.snapshot.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := s.Load("c")
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
		if os.IsNotExist(err) {
			t.Fatalf("truncation at %d reads as not-exist", cut)
		}
		if !strings.Contains(err.Error(), "metastore:") {
			t.Errorf("truncation at %d: undecorated error %v", cut, err)
		}
	}
}

// TestEnvelopeVersionMismatch: an envelope from another schema generation
// is rejected with a message naming both versions, so an operator reads
// "migrate", not "corrupted".
func TestEnvelopeVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := newController(t)
	if err := s.SaveController("c", p); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "c.snapshot.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The envelope is compact JSON with the version first.
	doctored := strings.Replace(string(blob), `{"version":2,`, `{"version":1,`, 1)
	if doctored == string(blob) {
		t.Fatal("could not doctor envelope version; envelope layout changed?")
	}
	if err := os.WriteFile(path, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Load("c")
	if err == nil {
		t.Fatal("version-1 envelope accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "schema version 1") || !strings.Contains(msg, "version 2") {
		t.Errorf("version mismatch error %q does not name both versions", msg)
	}
	if !strings.Contains(msg, "migrate") {
		t.Errorf("version mismatch error %q does not tell the operator to migrate", msg)
	}
}
