// Package metastore persists PULSE controller state — Figure 3's
// "Metadata Store". It journals versioned, checksummed JSON snapshots to
// disk with atomic replace, so a crashed or redeployed controller resumes
// with its inter-arrival histories, downgrade priorities, and peak-detector
// state intact instead of relearning from scratch.
package metastore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/identity"
)

// EnvelopeVersion identifies the on-disk envelope schema. Version 2 added
// the explicit version field itself and switched payloads to identity-keyed
// controller snapshots (core.SnapshotVersion 2). A mismatched version is
// reported as such — distinctly from corruption — so operators know to
// migrate rather than to restore a backup.
const EnvelopeVersion = 2

// envelope is the on-disk format: a schema version, the payload, and an
// integrity checksum over the payload bytes.
type envelope struct {
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"` // hex sha256 of Payload
	Payload  json.RawMessage `json:"payload"`
}

// Store reads and writes snapshots under a directory, one file per
// controller name.
type Store struct {
	dir string
}

// Open prepares a store rooted at dir, creating it if needed. Leftover
// temporary files from a Save interrupted by a crash (written but never
// renamed into place) are swept away: they were never the authoritative
// snapshot, and the atomic-rename protocol guarantees the named snapshot
// file is either the previous complete version or the new complete version.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("metastore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("metastore: %w", err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err == nil {
		for _, tmp := range leftovers {
			_ = os.Remove(tmp)
		}
	}
	return &Store{dir: dir}, nil
}

// path maps a controller name to its snapshot file. Names follow the same
// rune rules as function identities (identity.ValidateName) — they exclude
// path separators, so a name can never traverse out of the store directory.
// Sharing the validator keeps the two layers in agreement, which
// FuzzFunctionName asserts.
func (s *Store) path(name string) (string, error) {
	if err := identity.ValidateName(name); err != nil {
		return "", fmt.Errorf("metastore: invalid snapshot name: %w", err)
	}
	return filepath.Join(s.dir, name+".snapshot.json"), nil
}

// Save writes the snapshot atomically (write to temp file, fsync, rename).
func (s *Store) Save(name string, snap core.PulseSnapshot) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("metastore: marshal: %w", err)
	}
	sum := sha256.Sum256(payload)
	// Compact marshal: indentation would rewrite the raw payload bytes and
	// break the checksum on load.
	blob, err := json.Marshal(envelope{
		Version:  EnvelopeVersion,
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  payload,
	})
	if err != nil {
		return fmt.Errorf("metastore: marshal envelope: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("metastore: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("metastore: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("metastore: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("metastore: close: %w", err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		return fmt.Errorf("metastore: rename: %w", err)
	}
	return nil
}

// Load reads and verifies a snapshot. os.IsNotExist(err) distinguishes a
// missing snapshot from corruption.
func (s *Store) Load(name string) (core.PulseSnapshot, error) {
	var snap core.PulseSnapshot
	p, err := s.path(name)
	if err != nil {
		return snap, err
	}
	blob, err := os.ReadFile(p)
	if err != nil {
		return snap, err // preserves os.IsNotExist
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return snap, fmt.Errorf("metastore: corrupt envelope in %s: %w", p, err)
	}
	if env.Version != EnvelopeVersion {
		return snap, fmt.Errorf("metastore: %s has envelope schema version %d, this build reads version %d — migrate or delete the snapshot",
			p, env.Version, EnvelopeVersion)
	}
	// Hash the canonical (compact) form so cosmetic whitespace differences
	// in the payload do not read as corruption.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return snap, fmt.Errorf("metastore: corrupt payload in %s: %w", p, err)
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != env.Checksum {
		return snap, fmt.Errorf("metastore: checksum mismatch in %s", p)
	}
	if err := json.Unmarshal(env.Payload, &snap); err != nil {
		return snap, fmt.Errorf("metastore: corrupt payload in %s: %w", p, err)
	}
	return snap, nil
}

// Exists reports whether a snapshot with the name is stored.
func (s *Store) Exists(name string) (bool, error) {
	p, err := s.path(name)
	if err != nil {
		return false, err
	}
	if _, err := os.Stat(p); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// Delete removes a snapshot; deleting a missing snapshot is not an error.
func (s *Store) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("metastore: %w", err)
	}
	return nil
}

// List returns the stored snapshot names in lexical order.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("metastore: %w", err)
	}
	var names []string
	const suffix = ".snapshot.json"
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if len(n) > len(suffix) && n[len(n)-len(suffix):] == suffix {
			names = append(names, n[:len(n)-len(suffix)])
		}
	}
	return names, nil
}

// SaveController snapshots a live PULSE controller under the name.
func (s *Store) SaveController(name string, p *core.Pulse) error {
	if p == nil {
		return fmt.Errorf("metastore: nil controller")
	}
	return s.Save(name, p.Snapshot())
}

// LoadController restores a PULSE controller from the named snapshot with
// the supplied configuration (which must match the snapshot's fingerprint).
func (s *Store) LoadController(name string, cfg core.Config) (*core.Pulse, error) {
	snap, err := s.Load(name)
	if err != nil {
		return nil, err
	}
	return core.Restore(cfg, snap)
}
