package metastore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
)

func newController(t *testing.T) (*core.Pulse, core.Config) {
	t.Helper()
	cfg := core.Config{Catalog: models.PaperCatalog(), Assignment: models.Assignment{0, 1, 2}}
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Give it some state.
	counts := []int{1, 0, 1}
	for tt := 0; tt < 30; tt++ {
		p.KeepAlive(tt)
		p.RecordInvocations(tt, counts)
	}
	return p, cfg
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty directory accepted")
	}
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "nested", "store"))
	if err != nil {
		t.Fatalf("Open should create directories: %v", err)
	}
	if s == nil {
		t.Fatal("nil store")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, cfg := newController(t)
	if err := s.SaveController("prod-cluster", p); err != nil {
		t.Fatal(err)
	}
	back, err := s.LoadController("prod-cluster", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.ResumeMinute() != p.ResumeMinute() {
		t.Errorf("resume minute: %d vs %d", back.ResumeMinute(), p.ResumeMinute())
	}
	// Both controllers make identical decisions going forward. (Fix the
	// bounds before looping: every KeepAlive call advances ResumeMinute.)
	counts := []int{0, 1, 0}
	start := p.ResumeMinute()
	for tt := start; tt < start+20; tt++ {
		a := append([]int(nil), p.KeepAlive(tt)...)
		b := back.KeepAlive(tt)
		for fn := range a {
			if a[fn] != b[fn] {
				t.Fatalf("decisions diverge at minute %d", tt)
			}
		}
		p.RecordInvocations(tt, counts)
		back.RecordInvocations(tt, counts)
	}
}

func TestLoadMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("nope"); !os.IsNotExist(err) {
		t.Errorf("missing snapshot err = %v, want IsNotExist", err)
	}
	ok, err := s.Exists("nope")
	if err != nil || ok {
		t.Errorf("Exists(missing) = %v, %v", ok, err)
	}
}

func TestNameValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := newController(t)
	for _, bad := range []string{"", "../escape", "a/b", "sp ace", "semi;colon"} {
		if err := s.SaveController(bad, p); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	if err := s.SaveController("ok-Name_1.v2", p); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
	if err := s.SaveController("x", nil); err == nil {
		t.Error("nil controller accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := newController(t)
	if err := s.SaveController("c", p); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "c.snapshot.json")

	// Flip payload bytes: checksum must catch it.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Checksum string          `json:"checksum"`
		Payload  json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	tampered := []byte(env.Payload)
	for i, b := range tampered {
		if b == '1' {
			tampered[i] = '2'
			break
		}
	}
	env.Payload = tampered
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("c"); err == nil {
		t.Error("tampered snapshot accepted")
	}
	// Total garbage.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("c"); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestListAndDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := newController(t)
	for _, name := range []string{"b", "a"} {
		if err := s.SaveController(name, p); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("List = %v", names)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Errorf("double delete errored: %v", err)
	}
	names, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "b" {
		t.Errorf("after delete: %v", names)
	}
	ok, err := s.Exists("b")
	if err != nil || !ok {
		t.Errorf("Exists(b) = %v, %v", ok, err)
	}
}

func TestStoreIOErrorPaths(t *testing.T) {
	dir := t.TempDir()
	// Open where a file occupies the path.
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blocked); err == nil {
		t.Error("Open over a regular file accepted")
	}
	// List on a store whose directory disappeared.
	gone := filepath.Join(dir, "gone")
	s, err := Open(gone)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(gone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(); err == nil {
		t.Error("List on removed directory accepted")
	}
	// Save into the removed directory fails at temp-file creation.
	p, _ := newController(t)
	if err := s.SaveController("x", p); err == nil {
		t.Error("Save into removed directory accepted")
	}
	// Load/Exists/Delete with invalid names.
	if _, err := s.Load("../x"); err == nil {
		t.Error("Load with traversal name accepted")
	}
	if _, err := s.Exists("a b"); err == nil {
		t.Error("Exists with invalid name accepted")
	}
	if err := s.Delete("a/b"); err == nil {
		t.Error("Delete with invalid name accepted")
	}
}

func TestLoadControllerMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, cfg := newController(t)
	if _, err := s.LoadController("absent", cfg); !os.IsNotExist(err) {
		t.Errorf("LoadController(missing) err = %v, want IsNotExist", err)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, cfg := newController(t)
	if err := s.SaveController("x", p); err != nil {
		t.Fatal(err)
	}
	// Advance and save again over the same name.
	p.KeepAlive(100)
	p.RecordInvocations(100, []int{1, 1, 1})
	if err := s.SaveController("x", p); err != nil {
		t.Fatal(err)
	}
	back, err := s.LoadController("x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.ResumeMinute() != p.ResumeMinute() {
		t.Errorf("overwrite lost state: %d vs %d", back.ResumeMinute(), p.ResumeMinute())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1 (temp leak?)", len(entries))
	}
}
