package metastore

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/identity"
)

// FuzzFunctionName asserts the store and the identity layer agree on every
// name: a name the shared validator accepts must be usable as a snapshot
// name (and registrable in an identity registry), a name it rejects must be
// rejected by the store too, and no accepted name may produce a path outside
// the store directory. The metastore deliberately has no validator of its
// own — this fuzz target is the contract that keeps it that way.
func FuzzFunctionName(f *testing.F) {
	for _, seed := range []string{
		"", "prod-cluster", "fn-07", "a/b", "../escape", "..", ".", "名前",
		"UPPER_lower.0-9", "sp ace", "semi;colon", "nul\x00byte", "\xff\xfe",
		strings.Repeat("x", identity.MaxNameLen), strings.Repeat("x", identity.MaxNameLen+1),
	} {
		f.Add(seed)
	}
	dir := f.TempDir()
	s, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, name string) {
		vErr := identity.ValidateName(name)
		p, sErr := s.path(name)
		if (vErr == nil) != (sErr == nil) {
			t.Fatalf("validator and store disagree on %q: validator err %v, store err %v", name, vErr, sErr)
		}
		_, eErr := s.Exists(name)
		if vErr == nil && eErr != nil {
			t.Fatalf("valid name %q unusable by Exists: %v", name, eErr)
		}
		if vErr != nil && eErr == nil {
			t.Fatalf("invalid name %q accepted by Exists", name)
		}
		reg, err := identity.NewRegistry(nil)
		if err != nil {
			t.Fatal(err)
		}
		_, rErr := reg.Register(name)
		if (vErr == nil) != (rErr == nil) {
			t.Fatalf("validator and registry disagree on %q: validator err %v, registry err %v", name, vErr, rErr)
		}
		if vErr != nil {
			return
		}
		// Accepted names must never traverse out of the store directory.
		// Note a name like ".." is legal — the ".snapshot.json" suffix makes
		// it the in-directory file "...snapshot.json", not a parent path.
		rel, err := filepath.Rel(dir, p)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) ||
			strings.ContainsRune(rel, filepath.Separator) {
			t.Fatalf("accepted name %q maps to path %q outside the store (rel %q, err %v)", name, p, rel, err)
		}
	})
}
