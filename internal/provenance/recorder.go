package provenance

import (
	"fmt"
	"sync"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// noVariant mirrors cluster.NoVariant without importing the cluster
// package (keep-alive samples encode "left cold" as variant -1).
const noVariant = -1

// DefaultWindow is the per-function decision-ring capacity when
// RecorderConfig leaves Window zero.
const DefaultWindow = 64

// selfCap bounds the recorder's self-observability minute rings — one day
// of minutes, matching the attribution accountant's horizon.
const selfCap = 1440

// Self-series metric names served through /timeseries.
const (
	// MetricStepLatencyUs is the minute barrier's hold time, microseconds.
	MetricStepLatencyUs = "step_latency_us"
	// MetricSeqlockRetries is the number of invocation fast-path seqlock
	// retries accumulated during each minute.
	MetricSeqlockRetries = "seqlock_retries"
)

// SelfMetrics lists the self-series metric names in serving order.
func SelfMetrics() []string { return []string{MetricStepLatencyUs, MetricSeqlockRetries} }

// Decision is the provenance of one keep-alive choice: everything
// Algorithm 1 and Algorithm 2 saw and produced for one function in one
// minute.
type Decision struct {
	Minute int `json:"minute"`
	// Slot is the dense function slot that held the identity when the
	// decision was made (slots change when a name re-registers).
	Slot int `json:"slot"`

	// Chosen is the variant actually kept alive (-1 = left cold) and MemMB
	// its keep-alive memory.
	Chosen     int     `json:"chosen_variant"`
	ChosenName string  `json:"chosen_variant_name,omitempty"`
	MemMB      float64 `json:"mem_mb"`

	// Planned is the variant the function-centric schedule committed for
	// this minute — the choice the policy would have made unconstrained.
	// It equals Chosen except when a peak downgraded the function. Prob is
	// the history-derived invocation probability that selected it, and
	// PlannedAt the minute the plan was committed (-1 when no plan covered
	// this minute — e.g. the fixed baseline, or minute 0).
	Planned     int     `json:"planned_variant"`
	PlannedName string  `json:"planned_variant_name,omitempty"`
	Prob        float64 `json:"invocation_probability"`
	PlannedAt   int     `json:"planned_at_minute"`

	// Downgraded is set when Algorithm 2 moved the function off its
	// planned variant during a peak; Ai/Pr/Ip is the utility breakdown
	// (accuracy impact, priority rank, invocation probability) whose sum
	// Uv selected it as a victim.
	Downgraded bool    `json:"downgraded"`
	Ai         float64 `json:"ai,omitempty"`
	Pr         float64 `json:"pr,omitempty"`
	Ip         float64 `json:"ip,omitempty"`
	Uv         float64 `json:"uv,omitempty"`

	// Peak reports whether the minute sat inside an Algorithm 1 peak
	// episode; PriorMB/TargetMB are the episode's detector prior and
	// flatten target.
	Peak     bool    `json:"peak"`
	PriorMB  float64 `json:"peak_prior_mb,omitempty"`
	TargetMB float64 `json:"peak_target_mb,omitempty"`

	// BudgetBeforeMB and BudgetAfterMB are the cluster keep-alive memory
	// the minute would have consumed unconstrained and what it consumed
	// after downgrades (equal outside peaks).
	BudgetBeforeMB float64 `json:"budget_before_mb"`
	BudgetAfterMB  float64 `json:"budget_after_mb"`
}

// Explanation is the /why response: one function's recent decisions,
// newest last.
type Explanation struct {
	Function  string     `json:"function"`
	Slot      int        `json:"slot"`
	Family    string     `json:"family"`
	Active    bool       `json:"active"`
	Window    int        `json:"window"`
	Decisions []Decision `json:"decisions"`
}

// Point is one self-series sample.
type Point struct {
	Minute int     `json:"minute"`
	Value  float64 `json:"value"`
}

// fnProv is one identity's provenance state. It is keyed by name, not
// slot: when a name deregisters and later re-registers (getting a fresh
// slot), the same entry — and the same decision ring — carries on, so
// /why survives churn.
type fnProv struct {
	name   string
	slot   int // current (or last) slot
	family int
	active bool

	// ring is the fixed-capacity decision ring; n counts total pushes.
	ring []Decision
	n    uint64

	// pend assembles the in-flight minute's decision across the
	// barrier-serialized sample stream (downgrade → keep-alive → minute).
	pend    Decision
	pendSet bool
	dg      telemetry.DowngradeSample
	dgSet   bool

	// Plan mirror: the latest committed schedule entry per absolute
	// minute, planRing-style (index minute % len, stamp checked). Sized
	// lazily from the first schedule sample's plan length.
	planMin  []int
	planVar  []int
	planProb []float64
	planAt   []int
}

// RecorderConfig parameterizes a Recorder.
type RecorderConfig struct {
	// Catalog and Assignment describe the initial population (required —
	// variant names and memories come from the catalog).
	Catalog    *models.Catalog
	Assignment models.Assignment
	// Names gives the initial functions their identities, one per
	// Assignment entry (required; use the same list the runtime was built
	// with). Functions registered online are learned from lifecycle
	// samples.
	Names []string
	// Window bounds each function's decision ring (0 selects
	// DefaultWindow).
	Window int
}

// Recorder is the decision provenance recorder: an Observer that sits in
// the telemetry chain and reconstructs, per function per minute, the full
// Algorithm 1/2 picture from the barrier-serialized sample stream. Every
// input it consumes is emitted inside the producers' minute write windows,
// so its rings are deterministic — identical across the serial, striped,
// and epoch runtimes (the differential harness pins DeepEqual equality).
// Invocation samples, the only stream that interleaves, are deliberately
// ignored.
type Recorder struct {
	mu      sync.Mutex
	cat     *models.Catalog
	window  int
	byName  map[string]*fnProv
	bySlot  []*fnProv
	entries []*fnProv // unique entries, registration order

	// Algorithm 1 episode state, updated from peak transition samples.
	inPeak   bool
	priorMB  float64
	targetMB float64

	// freedMB accumulates the keep-alive memory the in-flight minute's
	// downgrades released — the before/after budget delta.
	freedMB float64

	// Self-observability minute rings fed by runtime step samples.
	selfMin     [selfCap]int
	selfStepUs  [selfCap]float64
	selfRetries [selfCap]float64
	selfN       int // minutes recorded
	selfLast    int // latest minute recorded
}

// NewRecorder builds a recorder seeded with the initial population.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("provenance: nil catalog")
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Names) != len(cfg.Assignment) {
		return nil, fmt.Errorf("provenance: %d names for %d functions", len(cfg.Names), len(cfg.Assignment))
	}
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	r := &Recorder{
		cat:      cfg.Catalog,
		window:   w,
		byName:   make(map[string]*fnProv, len(cfg.Names)),
		bySlot:   make([]*fnProv, len(cfg.Names)),
		selfLast: -1,
	}
	for i, name := range cfg.Names {
		if name == "" {
			return nil, fmt.Errorf("provenance: empty name for function %d", i)
		}
		if _, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("provenance: duplicate name %q", name)
		}
		e := &fnProv{name: name, slot: i, family: cfg.Assignment[i], active: true}
		r.byName[name] = e
		r.bySlot[i] = e
		r.entries = append(r.entries, e)
	}
	return r, nil
}

// Window returns the per-function decision-ring capacity.
func (r *Recorder) Window() int { return r.window }

// entryFor returns the entry currently owning slot fn, nil when the slot
// is unknown or the entry has moved to a newer slot (stale alias after a
// re-registration). Callers hold r.mu.
func (r *Recorder) entryFor(fn int) *fnProv {
	if fn < 0 || fn >= len(r.bySlot) {
		return nil
	}
	e := r.bySlot[fn]
	if e == nil || e.slot != fn {
		return nil
	}
	return e
}

// ObserveInvocation implements telemetry.Observer as a deliberate no-op:
// invocation samples arrive outside every runtime lock and interleave
// non-deterministically across modes, so consuming them would break the
// cross-mode DeepEqual guarantee (and put a mutex on the Invoke hot path).
func (r *Recorder) ObserveInvocation(telemetry.InvocationSample) {}

// ObserveSchedule implements telemetry.Observer: the plan mirror records,
// for each minute the schedule covers, which variant the optimizer
// committed from which invocation probability — the unconstrained choice
// /why reports alongside what actually ran.
func (r *Recorder) ObserveSchedule(s telemetry.ScheduleSample) {
	if len(s.Plan) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryFor(s.Function)
	if e == nil || !e.active {
		return
	}
	if e.planMin == nil {
		n := len(s.Plan) + 1
		e.planMin = make([]int, n)
		e.planVar = make([]int, n)
		e.planProb = make([]float64, n)
		e.planAt = make([]int, n)
		for i := range e.planMin {
			e.planMin[i] = -1
		}
	}
	n := len(e.planMin)
	for i, v := range s.Plan {
		m := s.Minute + 1 + i
		idx := m % n
		e.planMin[idx] = m
		e.planVar[idx] = v
		e.planAt[idx] = s.Minute
		if i < len(s.Probs) {
			e.planProb[idx] = s.Probs[i]
		} else {
			e.planProb[idx] = 0
		}
	}
}

// ObservePeak implements telemetry.Observer: episode transitions set the
// Algorithm 1 context stamped onto every decision inside the episode.
func (r *Recorder) ObservePeak(s telemetry.PeakSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.Enter {
		r.inPeak = true
		r.priorMB = s.PriorMB
		r.targetMB = s.TargetMB
	} else {
		r.inPeak = false
		r.priorMB = 0
		r.targetMB = 0
	}
}

// ObserveDowngrade implements telemetry.Observer: the utility breakdown is
// stashed for the keep-alive sample that follows in the same minute, and
// the freed memory feeds the minute's before/after budget delta.
func (r *Recorder) ObserveDowngrade(s telemetry.DowngradeSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryFor(s.Function)
	if e == nil || !e.active {
		return
	}
	e.dg = s
	e.dgSet = true
	fam := &r.cat.Families[e.family]
	var freed float64
	if s.FromVariant >= 0 && s.FromVariant < fam.NumVariants() {
		freed = fam.Variants[s.FromVariant].MemoryMB
	}
	if s.ToVariant >= 0 && s.ToVariant < fam.NumVariants() {
		freed -= fam.Variants[s.ToVariant].MemoryMB
	}
	r.freedMB += freed
}

// ObserveKeepAlive implements telemetry.Observer: the decision record is
// assembled — chosen variant from the sample, unconstrained variant and
// probability from the plan mirror (or the downgrade stash), peak context
// from episode state — and parked until the minute rollup closes it.
func (r *Recorder) ObserveKeepAlive(s telemetry.KeepAliveSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryFor(s.Function)
	if e == nil || !e.active {
		return
	}
	d := Decision{
		Minute:    s.Minute,
		Slot:      s.Function,
		Chosen:    s.Variant,
		MemMB:     s.MemMB,
		Planned:   noVariant,
		PlannedAt: -1,
	}
	fam := &r.cat.Families[e.family]
	if s.Variant >= 0 && s.Variant < fam.NumVariants() {
		d.ChosenName = fam.Variants[s.Variant].Name
	}
	if n := len(e.planMin); n > 0 {
		if idx := s.Minute % n; e.planMin[idx] == s.Minute {
			d.Prob = e.planProb[idx]
			d.PlannedAt = e.planAt[idx]
			d.Planned = e.planVar[idx]
		}
	}
	if e.dgSet && e.dg.Minute == s.Minute {
		d.Downgraded = true
		d.Planned = e.dg.FromVariant
		d.Ai = e.dg.Ai
		d.Pr = e.dg.Pr
		d.Ip = e.dg.Ip
		d.Uv = e.dg.Uv()
	}
	e.dgSet = false
	if d.Planned == noVariant && !d.Downgraded {
		// No plan covered this minute (minute 0, or a baseline policy
		// without schedules): unconstrained and chosen coincide.
		d.Planned = s.Variant
	}
	if d.Planned >= 0 && d.Planned < fam.NumVariants() {
		d.PlannedName = fam.Variants[d.Planned].Name
	}
	if r.inPeak {
		d.Peak = true
		d.PriorMB = r.priorMB
		d.TargetMB = r.targetMB
	}
	e.pend = d
	e.pendSet = true
}

// ObserveMinute implements telemetry.Observer: the rollup closes the
// minute — every parked decision gets the cluster-wide budget columns and
// is pushed into its function's ring.
func (r *Recorder) ObserveMinute(s telemetry.MinuteSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	before := s.KeepAliveMB + r.freedMB
	for _, e := range r.entries {
		if !e.pendSet || e.pend.Minute != s.Minute {
			continue
		}
		e.pend.BudgetBeforeMB = before
		e.pend.BudgetAfterMB = s.KeepAliveMB
		if e.ring == nil {
			e.ring = make([]Decision, r.window)
		}
		e.ring[e.n%uint64(r.window)] = e.pend
		e.n++
		e.pendSet = false
	}
	r.freedMB = 0
}

// ObserveRegister implements telemetry.LifecycleObserver: a brand-new name
// gets a fresh entry; a returning name reclaims its old entry (and its
// decision ring) at the new slot — the identity keying that makes /why
// survive churn.
func (r *Recorder) ObserveRegister(s telemetry.RegisterSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.bySlot) <= s.Function {
		r.bySlot = append(r.bySlot, nil)
	}
	e := r.byName[s.Name]
	if e == nil {
		e = &fnProv{name: s.Name}
		r.byName[s.Name] = e
		r.entries = append(r.entries, e)
	}
	e.slot = s.Function
	e.family = s.Family
	e.active = true
	e.pendSet = false
	e.dgSet = false
	// The plan mirror belongs to the previous incarnation's schedule
	// stream; drop it so stale plans cannot explain new decisions.
	e.planMin = nil
	e.planVar = nil
	e.planProb = nil
	e.planAt = nil
	r.bySlot[s.Function] = e
}

// ObserveDeregister implements telemetry.LifecycleObserver: the entry is
// deactivated (its ring is retained for /why) and later samples against
// the retired slot are ignored.
func (r *Recorder) ObserveDeregister(s telemetry.DeregisterSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryFor(s.Function)
	if e == nil {
		return
	}
	e.active = false
	e.pendSet = false
	e.dgSet = false
}

// ObserveStep implements telemetry.SelfObserver: runtime minute-barrier
// samples feed the step-latency and seqlock-retry self series. Values are
// wall-clock and mode-dependent, so they live outside the decision rings
// the differential harness compares.
func (r *Recorder) ObserveStep(s telemetry.StepSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := s.Minute % selfCap
	if idx < 0 {
		idx += selfCap
	}
	r.selfMin[idx] = s.Minute
	r.selfStepUs[idx] = s.Seconds * 1e6
	r.selfRetries[idx] = float64(s.SeqlockRetries)
	if r.selfN < selfCap {
		r.selfN++
	}
	if s.Minute > r.selfLast {
		r.selfLast = s.Minute
	}
}

// ObserveScan implements telemetry.SelfObserver (scan histograms are the
// metric registry's concern; the recorder keeps nothing).
func (r *Recorder) ObserveScan(telemetry.ScanSample) {}

// ObserveFlush implements telemetry.SelfObserver.
func (r *Recorder) ObserveFlush(telemetry.FlushSample) {}

// SelfSeries returns the last window minutes of a self metric
// (MetricStepLatencyUs or MetricSeqlockRetries), oldest first. Unknown
// metrics return ok=false.
func (r *Recorder) SelfSeries(metric string, window int) (pts []Point, ok bool) {
	switch metric {
	case MetricStepLatencyUs, MetricSeqlockRetries:
	default:
		return nil, false
	}
	if window <= 0 || window > selfCap {
		window = selfCap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.selfLast < 0 {
		return []Point{}, true
	}
	first := r.selfLast - window + 1
	if first < 0 {
		first = 0
	}
	pts = make([]Point, 0, r.selfLast-first+1)
	for m := first; m <= r.selfLast; m++ {
		idx := m % selfCap
		if r.selfMin[idx] != m {
			continue
		}
		v := r.selfStepUs[idx]
		if metric == MetricSeqlockRetries {
			v = r.selfRetries[idx]
		}
		pts = append(pts, Point{Minute: m, Value: v})
	}
	return pts, true
}

// lastDecisions appends up to n of e's most recent decisions, oldest
// first. Callers hold r.mu.
func (e *fnProv) lastDecisions(n int) []Decision {
	have := e.n
	if have > uint64(len(e.ring)) {
		have = uint64(len(e.ring))
	}
	if n > 0 && uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Decision, 0, have)
	for i := e.n - have; i < e.n; i++ {
		out = append(out, e.ring[i%uint64(len(e.ring))])
	}
	return out
}

// Explain returns the last n decisions for a function name (n <= 0 returns
// the whole ring). Deregistered functions remain explainable.
func (r *Recorder) Explain(name string, n int) (Explanation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.byName[name]
	if e == nil {
		return Explanation{}, fmt.Errorf("provenance: unknown function %q", name)
	}
	ex := Explanation{
		Function: e.name,
		Slot:     e.slot,
		Family:   r.cat.Families[e.family].Name,
		Active:   e.active,
		Window:   r.window,
	}
	if e.ring == nil {
		ex.Decisions = []Decision{}
		return ex, nil
	}
	ex.Decisions = e.lastDecisions(n)
	return ex, nil
}

// ExplainMinute returns a function's decision for one specific minute, if
// it is still inside the ring.
func (r *Recorder) ExplainMinute(name string, minute int) (Explanation, error) {
	ex, err := r.Explain(name, 0)
	if err != nil {
		return Explanation{}, err
	}
	for _, d := range ex.Decisions {
		if d.Minute == minute {
			ex.Decisions = []Decision{d}
			return ex, nil
		}
	}
	return Explanation{}, fmt.Errorf("provenance: no recorded decision for %q at minute %d (ring keeps the last %d)", name, minute, ex.Window)
}

// Names returns every identity the recorder knows, registration order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// Rings returns a deep copy of every function's decision ring, oldest
// first, keyed by name — the snapshot the differential harness DeepEquals
// across runtime modes.
func (r *Recorder) Rings() map[string][]Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]Decision, len(r.entries))
	for _, e := range r.entries {
		if e.ring == nil {
			out[e.name] = []Decision{}
			continue
		}
		out[e.name] = e.lastDecisions(0)
	}
	return out
}

var (
	_ telemetry.Observer          = (*Recorder)(nil)
	_ telemetry.LifecycleObserver = (*Recorder)(nil)
	_ telemetry.SelfObserver      = (*Recorder)(nil)
)
