// Package provenance explains the system's decisions and its own cost.
// It holds the per-minute decision provenance recorder (the "why" behind
// every keep-alive choice — Algorithm 1/2 inputs and outputs, kept in
// fixed-capacity identity-keyed rings served via GET /why) and the sampled
// per-invocation tracer (span-shaped records of 1-in-K invocations served
// via GET /traces). Both are observers in the telemetry chain; neither
// touches the invocation fast path when disabled.
package provenance

import (
	"sync"
	"sync/atomic"
)

// DefaultTraceCapacity bounds the trace ring when TracerConfig leaves
// Capacity zero.
const DefaultTraceCapacity = 256

// Trace is one sampled invocation span: where it landed (minute, function,
// stripe), what served it (variant, cold/warm), and what the serving path
// cost (seqlock retries, wall latency). Function and Stripe coincide today
// — the runtime stripes by function slot — but are recorded separately so
// a future stripe remapping keeps old traces readable.
type Trace struct {
	// Seq is the 1-based index of this trace among all recorded traces.
	Seq            uint64  `json:"seq"`
	Minute         int     `json:"minute"`
	Function       int     `json:"function"`
	Stripe         int     `json:"stripe"`
	Variant        string  `json:"variant,omitempty"`
	Cold           bool    `json:"cold"`
	SeqlockRetries int     `json:"seqlock_retries"`
	LatencyUs      float64 `json:"latency_us"`
	// Error carries the invocation error, if any — errored invocations are
	// sampled like served ones, so trace counts depend only on how many
	// Invoke calls arrived, never on their outcomes or interleaving.
	Error string `json:"error,omitempty"`
}

// TracerStats summarizes a tracer for the /traces endpoint.
type TracerStats struct {
	// Enabled reports whether sampling is on (Stride > 0).
	Enabled bool `json:"enabled"`
	// Stride is the sampling period K: one of every K Invoke calls is
	// recorded. 0 when disabled.
	Stride int64 `json:"stride"`
	// Attempts counts Invoke calls seen while sampling was enabled.
	Attempts uint64 `json:"attempts"`
	// Sampled counts traces recorded; Capacity bounds how many are
	// retained.
	Sampled  uint64 `json:"sampled"`
	Capacity int    `json:"capacity"`
}

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Stride enables 1-in-Stride sampling; <= 0 constructs the tracer
	// disabled (it can be enabled later with SetStride).
	Stride int64
	// Capacity bounds the retained-trace ring (0 selects
	// DefaultTraceCapacity).
	Capacity int
}

// Tracer is the sampled per-invocation tracer. The fast path is
// Sample(): with sampling disabled it is a single atomic load, allocates
// nothing, and takes no lock — the pinned cost of carrying a tracer on the
// runtime's Invoke path. When enabled, every Invoke increments one shared
// counter and every Stride-th call is recorded.
//
// Sampling by attempt counter (not by outcome, not by reservoir) keeps the
// recorded-trace *count* a pure function of how many Invoke calls arrived:
// floor(attempts / Stride) regardless of scheduling, mode, or errors —
// the property the cross-mode differential harness pins. Which attempts
// land on the stride boundary does vary with goroutine interleaving, so
// trace *contents* are compared only per-mode, never across modes.
type Tracer struct {
	stride atomic.Int64  // K; <= 0 disabled
	count  atomic.Uint64 // Invoke attempts while enabled

	mu      sync.Mutex
	ring    []Trace
	n       uint64 // total traces recorded (ring writes)
	tapSwap atomic.Pointer[func(Trace)]
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	c := cfg.Capacity
	if c <= 0 {
		c = DefaultTraceCapacity
	}
	t := &Tracer{ring: make([]Trace, c)}
	t.stride.Store(cfg.Stride)
	return t
}

// SetStride replaces the sampling period: stride <= 0 disables sampling.
// Safe to call concurrently with Sample.
func (t *Tracer) SetStride(stride int64) {
	if t == nil {
		return
	}
	t.stride.Store(stride)
}

// Stride returns the current sampling period (0 when disabled).
func (t *Tracer) Stride() int64 {
	if t == nil {
		return 0
	}
	if k := t.stride.Load(); k > 0 {
		return k
	}
	return 0
}

// Sample reports whether the caller should record this invocation. It is
// nil-safe (a nil tracer never samples) and, when sampling is disabled,
// costs exactly one atomic load with zero allocations — the fast-path
// contract pinned by the runtime's AllocsPerRun tests.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	k := t.stride.Load()
	if k <= 0 {
		return false
	}
	return t.count.Add(1)%uint64(k) == 0
}

// Tap installs fn to receive every recorded trace (nil uninstalls). The
// daemon uses it to feed the SSE broadcaster without provenance depending
// on the alert package. fn runs on the invoking goroutine and must be
// cheap and concurrency-safe.
func (t *Tracer) Tap(fn func(Trace)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.tapSwap.Store(nil)
		return
	}
	t.tapSwap.Store(&fn)
}

// Record retains one trace (overwriting the oldest once the ring is full)
// and forwards it to the tap, assigning its Seq. Callers invoke it only
// when Sample returned true.
func (t *Tracer) Record(tr Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.n++
	tr.Seq = t.n
	t.ring[(t.n-1)%uint64(len(t.ring))] = tr
	t.mu.Unlock()
	if fn := t.tapSwap.Load(); fn != nil {
		(*fn)(tr)
	}
}

// Snapshot returns up to limit retained traces, oldest first (limit <= 0
// returns everything retained).
func (t *Tracer) Snapshot(limit int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.n
	if have > uint64(len(t.ring)) {
		have = uint64(len(t.ring))
	}
	if limit > 0 && uint64(limit) < have {
		have = uint64(limit)
	}
	out := make([]Trace, 0, have)
	for i := t.n - have; i < t.n; i++ {
		out = append(out, t.ring[i%uint64(len(t.ring))])
	}
	return out
}

// Stats returns the tracer's sampling counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	sampled := t.n
	capacity := len(t.ring)
	t.mu.Unlock()
	stride := t.stride.Load()
	if stride < 0 {
		stride = 0
	}
	return TracerStats{
		Enabled:  stride > 0,
		Stride:   stride,
		Attempts: t.count.Load(),
		Sampled:  sampled,
		Capacity: capacity,
	}
}
