package provenance

import (
	"testing"
)

func TestTracerDisabledAndNil(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.Sample() {
		t.Error("nil tracer sampled")
	}
	nilTracer.SetStride(3) // must not panic
	nilTracer.Tap(nil)
	nilTracer.Record(Trace{})
	if got := nilTracer.Snapshot(0); got != nil {
		t.Errorf("nil Snapshot = %v", got)
	}
	if st := nilTracer.Stats(); st.Enabled || st.Stride != 0 {
		t.Errorf("nil Stats = %+v", st)
	}

	tr := NewTracer(TracerConfig{})
	if tr.Sample() {
		t.Error("disabled tracer sampled")
	}
	if st := tr.Stats(); st.Enabled || st.Attempts != 0 || st.Capacity != DefaultTraceCapacity {
		t.Errorf("disabled Stats = %+v", st)
	}
	if tr.Stride() != 0 {
		t.Errorf("disabled Stride = %d", tr.Stride())
	}
}

// Stride-K sampling is a pure function of the attempt count: exactly
// floor(attempts/K) of the first N attempts sample, regardless of outcome.
func TestTracerStrideSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{Stride: 3, Capacity: 8})
	sampled := 0
	for i := 1; i <= 10; i++ {
		if tr.Sample() {
			sampled++
			tr.Record(Trace{Minute: i})
		}
	}
	if sampled != 3 {
		t.Errorf("sampled %d of 10 at stride 3, want 3", sampled)
	}
	st := tr.Stats()
	if st.Attempts != 10 || st.Sampled != 3 || !st.Enabled || st.Stride != 3 {
		t.Errorf("Stats = %+v", st)
	}

	// SetStride(0) disables: further attempts neither count nor sample.
	tr.SetStride(0)
	if tr.Sample() {
		t.Error("sampled after disable")
	}
	if got := tr.Stats().Attempts; got != 10 {
		t.Errorf("attempts after disable = %d, want 10", got)
	}
}

// The ring retains the newest Capacity traces, oldest first, with 1-based
// monotonic sequence numbers; limit trims from the old end.
func TestTracerSnapshotRing(t *testing.T) {
	tr := NewTracer(TracerConfig{Stride: 1, Capacity: 4})
	for i := 0; i < 6; i++ {
		if !tr.Sample() {
			t.Fatalf("stride 1 skipped attempt %d", i)
		}
		tr.Record(Trace{Minute: i, Function: i})
	}
	got := tr.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("snapshot len %d, want 4", len(got))
	}
	for i, trc := range got {
		wantMinute := i + 2 // 0 and 1 were overwritten
		if trc.Minute != wantMinute || trc.Seq != uint64(wantMinute+1) {
			t.Errorf("snapshot[%d] = %+v, want minute %d seq %d", i, trc, wantMinute, wantMinute+1)
		}
	}
	if lim := tr.Snapshot(2); len(lim) != 2 || lim[0].Minute != 4 {
		t.Errorf("Snapshot(2) = %+v, want newest two", lim)
	}
}

// The tap receives every recorded trace with its sequence stamped, and
// uninstalls cleanly.
func TestTracerTap(t *testing.T) {
	tr := NewTracer(TracerConfig{Stride: 1})
	var tapped []Trace
	tr.Tap(func(trc Trace) { tapped = append(tapped, trc) })
	tr.Sample()
	tr.Record(Trace{Minute: 7})
	if len(tapped) != 1 || tapped[0].Seq != 1 || tapped[0].Minute != 7 {
		t.Fatalf("tapped %+v", tapped)
	}
	tr.Tap(nil)
	tr.Sample()
	tr.Record(Trace{Minute: 8})
	if len(tapped) != 1 {
		t.Errorf("tap fired after uninstall: %+v", tapped)
	}
}

// The disabled fast path is the pinned cost of carrying a tracer on the
// Invoke path: one atomic load, zero allocations. Run by the CI alloc job.
func TestTracerDisabledSampleZeroAllocs(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	if allocs := testing.AllocsPerRun(1000, func() {
		if tr.Sample() {
			t.Fatal("disabled tracer sampled")
		}
	}); allocs != 0 {
		t.Errorf("disabled Sample allocates %v/op, want 0", allocs)
	}
	var nilTracer *Tracer
	if allocs := testing.AllocsPerRun(1000, func() {
		if nilTracer.Sample() {
			t.Fatal("nil tracer sampled")
		}
	}); allocs != 0 {
		t.Errorf("nil Sample allocates %v/op, want 0", allocs)
	}
}
