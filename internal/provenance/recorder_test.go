package provenance

import (
	"reflect"
	"strings"
	"testing"

	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

func testRecorder(t *testing.T, window int) (*Recorder, *models.Catalog) {
	t.Helper()
	cat := models.PaperCatalog()
	rec, err := NewRecorder(RecorderConfig{
		Catalog:    cat,
		Assignment: models.Assignment{0, 1},
		Names:      []string{"fn-0", "fn-1"},
		Window:     window,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, cat
}

func TestNewRecorderValidation(t *testing.T) {
	cat := models.PaperCatalog()
	cases := []struct {
		name string
		cfg  RecorderConfig
	}{
		{"nil catalog", RecorderConfig{Assignment: models.Assignment{0}, Names: []string{"a"}}},
		{"bad assignment", RecorderConfig{Catalog: cat, Assignment: models.Assignment{99}, Names: []string{"a"}}},
		{"name count", RecorderConfig{Catalog: cat, Assignment: models.Assignment{0, 1}, Names: []string{"a"}}},
		{"empty name", RecorderConfig{Catalog: cat, Assignment: models.Assignment{0}, Names: []string{""}}},
		{"dup name", RecorderConfig{Catalog: cat, Assignment: models.Assignment{0, 1}, Names: []string{"a", "a"}}},
	}
	for _, tc := range cases {
		if _, err := NewRecorder(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	rec, err := NewRecorder(RecorderConfig{Catalog: cat, Assignment: models.Assignment{0}, Names: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Window() != DefaultWindow {
		t.Errorf("default window %d, want %d", rec.Window(), DefaultWindow)
	}
}

// The happy path: a schedule commits a plan, the keep-alive decision honors
// it, the minute rollup closes it — and /why shows the plan as the
// unconstrained choice with its invocation probability.
func TestRecorderAssemblesPlannedDecision(t *testing.T) {
	rec, cat := testRecorder(t, 8)
	fam := cat.Families[0]

	rec.ObserveSchedule(telemetry.ScheduleSample{
		Minute:   0,
		Function: 0,
		Plan:     []int{1, 0},
		Probs:    []float64{0.75, 0.25},
	})
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{
		Minute: 1, Function: 0, Variant: 1, MemMB: fam.Variants[1].MemoryMB,
	})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 1, KeepAliveMB: fam.Variants[1].MemoryMB})

	ex, err := rec.Explain("fn-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Function != "fn-0" || !ex.Active || ex.Family != fam.Name || len(ex.Decisions) != 1 {
		t.Fatalf("explanation %+v", ex)
	}
	d := ex.Decisions[0]
	if d.Minute != 1 || d.Chosen != 1 || d.ChosenName != fam.Variants[1].Name {
		t.Errorf("chosen: %+v", d)
	}
	if d.Planned != 1 || d.Prob != 0.75 || d.PlannedAt != 0 || d.Downgraded {
		t.Errorf("plan provenance: %+v", d)
	}
	if d.Peak || d.BudgetBeforeMB != d.BudgetAfterMB {
		t.Errorf("no-peak decision carries peak context: %+v", d)
	}

	// fn-1 made no decision this minute: its ring stays empty.
	ex1, err := rec.Explain("fn-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex1.Decisions) != 0 {
		t.Errorf("fn-1 decisions %v, want none", ex1.Decisions)
	}
}

// A peak-minute downgrade: the decision must carry the Algorithm 1 episode
// context, the Algorithm 2 utility breakdown, the planned (pre-downgrade)
// variant, and the cluster budget before/after the downgrade freed memory.
func TestRecorderAssemblesDowngradedDecision(t *testing.T) {
	rec, cat := testRecorder(t, 8)
	fam := cat.Families[0]
	from, to := 2, 0
	freed := fam.Variants[from].MemoryMB - fam.Variants[to].MemoryMB
	after := 512.0

	rec.ObserveSchedule(telemetry.ScheduleSample{
		Minute: 4, Function: 0, Plan: []int{from}, Probs: []float64{0.9},
	})
	rec.ObservePeak(telemetry.PeakSample{Minute: 5, Enter: true, PriorMB: 900, TargetMB: 700})
	rec.ObserveDowngrade(telemetry.DowngradeSample{
		Minute: 5, Function: 0, FromVariant: from, ToVariant: to, Ai: 0.1, Pr: 0.5, Ip: 0.9,
	})
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{
		Minute: 5, Function: 0, Variant: to, MemMB: fam.Variants[to].MemoryMB,
	})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 5, KeepAliveMB: after})

	ex, err := rec.ExplainMinute("fn-0", 5)
	if err != nil {
		t.Fatal(err)
	}
	d := ex.Decisions[0]
	if !d.Downgraded || d.Chosen != to || d.Planned != from {
		t.Errorf("downgrade provenance: %+v", d)
	}
	if d.Ai != 0.1 || d.Pr != 0.5 || d.Ip != 0.9 || d.Uv != 1.5 {
		t.Errorf("utility breakdown: %+v", d)
	}
	if !d.Peak || d.PriorMB != 900 || d.TargetMB != 700 {
		t.Errorf("peak context: %+v", d)
	}
	if d.BudgetAfterMB != after || d.BudgetBeforeMB != after+freed {
		t.Errorf("budgets: before %v after %v, want before %v after %v",
			d.BudgetBeforeMB, d.BudgetAfterMB, after+freed, after)
	}

	// Exiting the episode clears the context for later minutes.
	rec.ObservePeak(telemetry.PeakSample{Minute: 6, Enter: false})
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 6, Function: 0, Variant: to})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 6, KeepAliveMB: after})
	ex, err = rec.ExplainMinute("fn-0", 6)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Decisions[0].Peak {
		t.Errorf("minute after episode still marked peak: %+v", ex.Decisions[0])
	}
}

// A keep-alive with no covering plan and no downgrade (minute 0, baseline
// policies) reports the chosen variant as its own unconstrained choice.
func TestRecorderNoPlanFallback(t *testing.T) {
	rec, _ := testRecorder(t, 8)
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 0, Function: 1, Variant: 0})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 0})
	ex, err := rec.ExplainMinute("fn-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	d := ex.Decisions[0]
	if d.Planned != d.Chosen || d.PlannedAt != -1 || d.Prob != 0 {
		t.Errorf("fallback decision: %+v", d)
	}
}

// The ring holds exactly Window decisions: older minutes fall off, /why?n=
// trims further, and ExplainMinute misses evicted minutes with an error
// that names the window.
func TestRecorderRingWindow(t *testing.T) {
	const window = 4
	rec, _ := testRecorder(t, window)
	for m := 0; m < 7; m++ {
		rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: m, Function: 0, Variant: 0})
		rec.ObserveMinute(telemetry.MinuteSample{Minute: m})
	}
	ex, err := rec.Explain("fn-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	minutes := make([]int, len(ex.Decisions))
	for i, d := range ex.Decisions {
		minutes[i] = d.Minute
	}
	if !reflect.DeepEqual(minutes, []int{3, 4, 5, 6}) {
		t.Errorf("ring minutes %v, want [3 4 5 6]", minutes)
	}
	ex, err = rec.Explain("fn-0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Decisions) != 2 || ex.Decisions[1].Minute != 6 {
		t.Errorf("Explain n=2: %+v", ex.Decisions)
	}
	if _, err := rec.ExplainMinute("fn-0", 1); err == nil || !strings.Contains(err.Error(), "4") {
		t.Errorf("evicted minute: err %v, want window-naming error", err)
	}
	if _, err := rec.Explain("nobody", 0); err == nil {
		t.Error("unknown function accepted")
	}
}

// Identity keying across churn: a deregistered name keeps its ring, a
// re-registration under the same name continues it at the new slot, and
// samples against the retired slot (or a stale plan mirror) are ignored.
func TestRecorderChurnKeepsIdentity(t *testing.T) {
	rec, _ := testRecorder(t, 8)
	rec.ObserveSchedule(telemetry.ScheduleSample{Minute: 0, Function: 1, Plan: []int{1}, Probs: []float64{0.6}})
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 1, Function: 1, Variant: 1})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 1})

	rec.ObserveDeregister(telemetry.DeregisterSample{Minute: 1, Function: 1, Name: "fn-1"})
	ex, err := rec.Explain("fn-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Active || len(ex.Decisions) != 1 {
		t.Fatalf("after deregister: %+v", ex)
	}

	// Samples against the tombstoned slot must not resurrect anything.
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 2, Function: 1, Variant: 0})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 2})

	// Same name, new slot: the ring continues, the old plan mirror is gone.
	rec.ObserveRegister(telemetry.RegisterSample{Minute: 3, Function: 2, Name: "fn-1", Family: 1})
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 3, Function: 2, Variant: 0})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 3})

	ex, err = rec.Explain("fn-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Active || ex.Slot != 2 {
		t.Fatalf("after re-register: %+v", ex)
	}
	minutes := make([]int, len(ex.Decisions))
	for i, d := range ex.Decisions {
		minutes[i] = d.Minute
	}
	if !reflect.DeepEqual(minutes, []int{1, 3}) {
		t.Errorf("ring minutes across churn %v, want [1 3] (minute 2 hit a tombstone)", minutes)
	}
	if d := ex.Decisions[1]; d.PlannedAt != -1 || d.Slot != 2 {
		t.Errorf("new incarnation decision %+v, want cleared plan mirror and slot 2", d)
	}
	if got := rec.Names(); !reflect.DeepEqual(got, []string{"fn-0", "fn-1"}) {
		t.Errorf("Names() = %v", got)
	}
}

// A brand-new name registered online gets its own entry and ring.
func TestRecorderOnlineRegister(t *testing.T) {
	rec, _ := testRecorder(t, 8)
	rec.ObserveRegister(telemetry.RegisterSample{Minute: 1, Function: 2, Name: "late", Family: 0})
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 1, Function: 2, Variant: 0})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 1})
	ex, err := rec.Explain("late", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Decisions) != 1 || ex.Slot != 2 {
		t.Errorf("late arrival: %+v", ex)
	}
	rings := rec.Rings()
	if len(rings) != 3 || len(rings["late"]) != 1 {
		t.Errorf("Rings() = %v", rings)
	}
}

// The self series: step samples feed step_latency_us and seqlock_retries,
// SelfSeries windows them oldest-first, and unknown metrics are rejected.
func TestRecorderSelfSeries(t *testing.T) {
	rec, _ := testRecorder(t, 8)
	if pts, ok := rec.SelfSeries(MetricStepLatencyUs, 10); !ok || len(pts) != 0 {
		t.Fatalf("empty series: %v %v", pts, ok)
	}
	for m := 0; m < 5; m++ {
		rec.ObserveStep(telemetry.StepSample{
			Minute:         m,
			Seconds:        float64(m) * 1e-6,
			SeqlockRetries: uint64(10 * m),
		})
	}
	pts, ok := rec.SelfSeries(MetricStepLatencyUs, 3)
	if !ok || len(pts) != 3 {
		t.Fatalf("step series: %v %v", pts, ok)
	}
	if pts[0].Minute != 2 || pts[2].Minute != 4 || pts[2].Value != 4 {
		t.Errorf("step series %v, want minutes 2..4 with µs values", pts)
	}
	pts, ok = rec.SelfSeries(MetricSeqlockRetries, 0)
	if !ok || len(pts) != 5 || pts[4].Value != 40 {
		t.Errorf("retries series %v %v", pts, ok)
	}
	if _, ok := rec.SelfSeries("no_such_metric", 10); ok {
		t.Error("unknown self metric accepted")
	}
	if got := SelfMetrics(); !reflect.DeepEqual(got, []string{MetricStepLatencyUs, MetricSeqlockRetries}) {
		t.Errorf("SelfMetrics() = %v", got)
	}
}

// Recording a decision on an idle recorder path must not allocate: the
// rings are fixed-capacity and the pending slots live inline in the entry.
// (The first minute lazily allocates each touched function's ring; steady
// state is pinned at zero.) Run by the CI alloc job.
func TestRecorderSteadyStateZeroAllocs(t *testing.T) {
	rec, _ := testRecorder(t, 8)
	// Warm: first decision allocates fn-0's ring and plan mirror.
	rec.ObserveSchedule(telemetry.ScheduleSample{Minute: 0, Function: 0, Plan: []int{1, 0}, Probs: []float64{0.5, 0.1}})
	rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 1, Function: 0, Variant: 1})
	rec.ObserveMinute(telemetry.MinuteSample{Minute: 1})

	minute := 2
	sched := telemetry.ScheduleSample{Plan: []int{1, 0}, Probs: []float64{0.5, 0.1}}
	if allocs := testing.AllocsPerRun(500, func() {
		sched.Minute = minute - 1
		rec.ObserveSchedule(sched)
		rec.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: minute, Function: 0, Variant: 1})
		rec.ObserveStep(telemetry.StepSample{Minute: minute, Seconds: 1e-5})
		rec.ObserveMinute(telemetry.MinuteSample{Minute: minute})
		minute++
	}); allocs != 0 {
		t.Errorf("steady-state recording allocates %v/op, want 0", allocs)
	}
}
