package runtime

// Churn differential harness for the live runtime: replaying a churn trace
// through Register/Invoke/Deregister/Step must be equivalent across
// serving modes (serial vs striped, sequential vs per-function-goroutine
// invokes) and — at the attribution layer — equivalent to the cluster
// engine's churn path replaying the same trace. CI's 'Differential|Sharded'
// -race regex picks this suite up, so every comparison here is also a race
// check on the lifecycle path.

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// churnRuntimeWorkload generates the runtime churn trace: an Azure-like mix
// over six hours with half the functions given bounded lifetimes.
func churnRuntimeWorkload(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 31, Horizon: 6 * 60, Churn: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasChurn() {
		t.Fatal("churn workload generated no churn; pick a different seed")
	}
	return tr
}

// churnRuntimePolicies mirrors runtimePolicies but constructs each policy
// with the minute-0 population of a churn trace, the way a DynamicPolicy
// must start.
func churnRuntimePolicies(t testing.TB, cat *models.Catalog, tr *trace.Trace) (map[string]func(obs telemetry.Observer) cluster.Policy, []string, models.Assignment) {
	t.Helper()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	names, initAsg, err := cluster.InitialPopulation(tr, asg)
	if err != nil {
		t.Fatal(err)
	}
	mk := map[string]func(obs telemetry.Observer) cluster.Policy{
		"pulse": func(obs telemetry.Observer) cluster.Policy {
			p, err := core.New(core.Config{Catalog: cat, Assignment: initAsg, Names: names, Observer: obs})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"pulse-sharded": func(obs telemetry.Observer) cluster.Policy {
			p, err := core.New(core.Config{Catalog: cat, Assignment: initAsg, Names: names, Observer: obs, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"fixed": func(telemetry.Observer) cluster.Policy {
			p, err := policy.NewFixedNamed(cat, initAsg, cluster.DefaultKeepAliveWindow, policy.QualityHighest, names)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	return mk, names, initAsg
}

// replayChurn replays a churn trace against a live runtime, registering and
// deregistering functions at the same points the cluster engine's churn
// path does. Per minute t: invoke every live function's counts (in trace
// order, or one goroutine per function when parallel), then — unless t is
// the final minute — retire functions whose lifetime ends at t+1 (slot
// order), register functions starting at t+1 (trace order), and Step. The
// Horizon-1 Steps leave minute Horizon-1 open, exactly like the engine, so
// attribution from both paths is comparable. Returns the final Stats and
// the per-slot invocation streams.
func replayChurn(t *testing.T, r *Runtime, tr *trace.Trace, parallel bool) (Stats, [][]Invocation) {
	t.Helper()
	// slotOf maps trace function index → issued runtime slot. The minute-0
	// population occupies slots 0..k-1 in trace order.
	slotOf := make([]int, len(tr.Functions))
	for i := range slotOf {
		slotOf[i] = -1
	}
	next := 0
	for i := range tr.Functions {
		if tr.Functions[i].Start == 0 {
			slotOf[i] = next
			next++
		}
	}
	var streams [][]Invocation
	grow := func() {
		for len(streams) < next {
			streams = append(streams, nil)
		}
	}
	grow()

	for tm := 0; tm < tr.Horizon; tm++ {
		// Invoke in slot order — the order the engine's serve loop visits
		// functions, so sequential replays feed observers identically
		// (float accumulators sum in the same association order).
		type job struct{ ti, slot, n int }
		var jobs []job
		for ti := range tr.Functions {
			f := &tr.Functions[ti]
			if !f.LiveAt(tm, tr.Horizon) || f.Counts[tm] == 0 {
				continue
			}
			jobs = append(jobs, job{ti: ti, slot: slotOf[ti], n: f.Counts[tm]})
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].slot < jobs[j].slot })
		if parallel {
			var wg sync.WaitGroup
			for _, j := range jobs {
				wg.Add(1)
				go func(j job) {
					defer wg.Done()
					for i := 0; i < j.n; i++ {
						inv, err := r.Invoke(j.slot)
						if err != nil {
							t.Error(err)
							return
						}
						streams[j.slot] = append(streams[j.slot], inv)
					}
				}(j)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
		} else {
			for _, j := range jobs {
				for i := 0; i < j.n; i++ {
					inv, err := r.Invoke(j.slot)
					if err != nil {
						t.Fatal(err)
					}
					streams[j.slot] = append(streams[j.slot], inv)
				}
			}
		}

		if tm+1 >= tr.Horizon {
			break
		}
		// Lifecycle barrier for minute tm+1: departures in slot order, then
		// arrivals in trace order — the engine's ordering.
		type departure struct{ slot, ti int }
		var deps []departure
		for ti := range tr.Functions {
			if slotOf[ti] >= 0 && tr.Functions[ti].EndMinute(tr.Horizon) == tm+1 {
				deps = append(deps, departure{slot: slotOf[ti], ti: ti})
			}
		}
		sort.Slice(deps, func(i, j int) bool { return deps[i].slot < deps[j].slot })
		for _, d := range deps {
			if err := r.Deregister(tr.Functions[d.ti].Name); err != nil {
				t.Fatal(err)
			}
		}
		for ti := range tr.Functions {
			if tr.Functions[ti].Start == tm+1 {
				slot, err := r.Register(tr.Functions[ti].Name, assignFor(tr, ti, r))
				if err != nil {
					t.Fatal(err)
				}
				if slot != next {
					t.Fatalf("minute %d: runtime issued slot %d for %q, replay expected %d", tm+1, slot, tr.Functions[ti].Name, next)
				}
				slotOf[ti] = slot
				next++
				grow()
			}
		}
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return r.Stats(), streams
}

// assignFor reproduces the trace-indexed uniform assignment for a late
// arrival: family = trace index mod families.
func assignFor(tr *trace.Trace, ti int, r *Runtime) int {
	return ti % len(r.cfg.Catalog.Families)
}

// TestDifferentialChurnRuntime drives the churn workload through a serial
// runtime replayed sequentially and, for each of the striped and epoch
// modes, a sequential and a per-function-goroutine replay, for each
// policy. All five must land on identical Stats and identical per-slot
// invocation streams; the sequential replays must additionally produce
// identical observer streams (lifecycle samples included).
func TestDifferentialChurnRuntime(t *testing.T) {
	cat := models.PaperCatalog()
	tr := churnRuntimeWorkload(t)
	policies, names, initAsg := churnRuntimePolicies(t, cat, tr)
	for polName, mkPolicy := range policies {
		t.Run(polName, func(t *testing.T) {
			run := func(mode string, parallel bool) (Stats, [][]Invocation, *telemetry.Recorder) {
				rec := &telemetry.Recorder{}
				r, err := New(Config{
					Catalog:    cat,
					Assignment: initAsg,
					Names:      names,
					Policy:     mkPolicy(nil),
					Clock:      NewManualClock(time.Unix(0, 0)),
					Observer:   rec,
					Mode:       mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				stats, streams := replayChurn(t, r, tr, parallel)
				return stats, streams, rec
			}
			baseStats, baseStreams, baseRec := run(ModeSerial, false)

			for _, cmp := range []struct {
				name     string
				mode     string
				parallel bool
			}{
				{"striped-sequential", ModeStriped, false},
				{"striped-parallel", ModeStriped, true},
				{"epoch-sequential", ModeEpoch, false},
				{"epoch-parallel", ModeEpoch, true},
			} {
				stats, streams, rec := run(cmp.mode, cmp.parallel)
				if !reflect.DeepEqual(stats, baseStats) {
					t.Errorf("%s stats diverge:\nserial: %+v\n%s: %+v", cmp.name, baseStats, cmp.name, stats)
				}
				if len(streams) != len(baseStreams) {
					t.Fatalf("%s issued %d slots, serial issued %d", cmp.name, len(streams), len(baseStreams))
				}
				for slot := range baseStreams {
					if !reflect.DeepEqual(streams[slot], baseStreams[slot]) {
						t.Errorf("%s: slot %d invocation stream diverges (%d vs %d invocations)",
							cmp.name, slot, len(streams[slot]), len(baseStreams[slot]))
					}
				}
				if cmp.parallel {
					continue
				}
				// Sequential replays must agree on the entire observer stream.
				for _, s := range []struct {
					kind      string
					got, want any
				}{
					{"invocations", rec.Invocations, baseRec.Invocations},
					{"keep-alives", rec.KeepAlives, baseRec.KeepAlives},
					{"minutes", rec.Minutes, baseRec.Minutes},
					{"registers", rec.Registers, baseRec.Registers},
					{"deregisters", rec.Deregisters, baseRec.Deregisters},
				} {
					if !reflect.DeepEqual(s.got, s.want) {
						t.Errorf("%s %s stream diverges from serial", cmp.name, s.kind)
					}
				}
			}
		})
	}
}

// TestDifferentialChurnAttribution is the cross-layer proof: the cluster
// engine's churn path and the live runtime's lifecycle path, fed the same
// churn trace and policy, must produce deeply equal attribution reports and
// time series. The runtime side runs in every serving mode.
func TestDifferentialChurnAttribution(t *testing.T) {
	cat := models.PaperCatalog()
	tr := churnRuntimeWorkload(t)
	policies, names, initAsg := churnRuntimePolicies(t, cat, tr)
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	cost := cluster.DefaultCostModel()
	newAcct := func() *attribution.Accountant {
		a, err := attribution.New(attribution.Config{Catalog: cat, Assignment: initAsg, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for polName, mkPolicy := range policies {
		t.Run(polName, func(t *testing.T) {
			simAcct := newAcct()
			if _, err := cluster.Run(cluster.Config{
				Trace: tr, Catalog: cat, Assignment: asg, Cost: cost, Observer: simAcct,
			}, mkPolicy(simAcct)); err != nil {
				t.Fatal(err)
			}
			simRep := simAcct.Report()

			for _, mode := range []struct {
				name     string
				mode     string
				parallel bool
			}{
				{"serial", ModeSerial, false},
				{"striped", ModeStriped, false},
				{"striped-parallel", ModeStriped, true},
				{"epoch", ModeEpoch, false},
				{"epoch-parallel", ModeEpoch, true},
			} {
				liveAcct := newAcct()
				r, err := New(Config{
					Catalog:    cat,
					Assignment: initAsg,
					Names:      names,
					Policy:     mkPolicy(liveAcct),
					Clock:      NewManualClock(time.Unix(0, 0)),
					Cost:       cost,
					Observer:   liveAcct,
					Mode:       mode.mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				replayChurn(t, r, tr, mode.parallel)
				r.Close()
				liveRep := liveAcct.Report()
				if !reflect.DeepEqual(simRep, liveRep) {
					t.Errorf("%s: engine and runtime attribution diverged\nengine total:  %+v\nruntime total: %+v",
						mode.name, simRep.Total, liveRep.Total)
				}
				// The report is priced from integer counters in a fixed order,
				// so it is arrival-order independent and must match in every
				// mode. The per-minute series additionally depend on float
				// accumulation order across functions within a minute, which a
				// per-function-goroutine replay does not fix — exact series
				// equality is required of the sequential modes only.
				if mode.parallel {
					continue
				}
				for _, name := range attribution.MetricNames() {
					m, err := attribution.ParseMetric(name)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(simAcct.Series(m, tr.Horizon, false), liveAcct.Series(m, tr.Horizon, false)) {
						t.Errorf("%s: series %s diverged between engine and runtime", mode.name, name)
					}
				}
			}
		})
	}
}

// TestChurnInvokeDeregistered pins the failure mode of serving a retired
// function: a client error wrapping ErrDeregistered, never a panic, and
// re-registering the name issues a fresh cold slot.
func TestChurnInvokeDeregistered(t *testing.T) {
	cat := models.PaperCatalog()
	asg := models.Assignment{0, 1}
	p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Invoke(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("fn-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(0); !errors.Is(err, ErrDeregistered) {
		t.Fatalf("invoking deregistered slot: err = %v, want ErrDeregistered", err)
	}
	if err := r.Deregister("fn-0"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("double deregister: err = %v, want ErrUnknownFunction", err)
	}
	if _, err := r.Invoke(99); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("out-of-range invoke: err = %v, want ErrUnknownFunction", err)
	}
	slot, err := r.Register("fn-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if slot != len(asg) {
		t.Fatalf("re-registered fn-0 got slot %d, want fresh slot %d", slot, len(asg))
	}
	inv, err := r.Invoke(slot)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Cold {
		t.Error("first invocation of a re-registered function was warm, want cold by construction")
	}
	if got, want := r.NumActive(), 2; got != want {
		t.Errorf("NumActive = %d, want %d", got, want)
	}
	if n, ok := r.LookupFunction("fn-0"); !ok || n != slot {
		t.Errorf("LookupFunction(fn-0) = %d, %v; want %d, true", n, ok, slot)
	}
}

// TestChurnLifecycleRaceClean hammers the concurrent runtime modes with
// concurrent invokes, minute steps, and register/deregister churn. Run
// under -race it proves the lifecycle path takes the exclusive barrier and
// the epoch write window correctly; the only acceptable invoke failures
// are the lifecycle sentinels.
func TestChurnLifecycleRaceClean(t *testing.T) {
	for _, mode := range []string{ModeStriped, ModeEpoch} {
		t.Run(mode, func(t *testing.T) { churnLifecycleRace(t, mode) })
	}
}

func churnLifecycleRace(t *testing.T, mode string) {
	cat := models.PaperCatalog()
	asg := models.Assignment{0, 1, 0, 1}
	p, err := core.New(core.Config{Catalog: cat, Assignment: asg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0)), Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const rounds = 60
	var wg sync.WaitGroup
	// Invokers hit both the stable population and the churning tail.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds*4; i++ {
				fn := i % (len(asg) + 2)
				_, err := r.Invoke(fn)
				if err != nil && !errors.Is(err, ErrDeregistered) && !errors.Is(err, ErrUnknownFunction) && !errors.Is(err, ErrClosed) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Stepper advances minutes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := r.Step(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Churner registers and deregisters a rolling set of names.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("churner-%d", i)
			if _, err := r.Register(name, i%len(cat.Families)); err != nil {
				t.Error(err)
				return
			}
			if i >= 3 {
				if err := r.Deregister(fmt.Sprintf("churner-%d", i-3)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	st := r.Stats()
	if st.Invocations == 0 {
		t.Error("race harness served no invocations")
	}
	if got := r.NumFunctions() - r.NumActive(); got != rounds-3 {
		t.Errorf("tombstoned slots = %d, want %d", got, rounds-3)
	}
}
