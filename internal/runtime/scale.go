package runtime

import (
	"fmt"
	goruntime "runtime"
	"time"
)

// Population-scale benchmark: where the load matrix measures serving-path
// throughput at small populations, RunScale measures what a large mostly-idle
// population *costs* — resting heap bytes per registered function and the
// minute-step latency with nothing (and then a small fraction) of the fleet
// active. These are the two numbers the flat-arena + idle-skip design exists
// to hold down: memory must stay a few hundred bytes per slot and the minute
// barrier must scale with the active set, not the population.

// DefaultScalePopulations is the population sweep the scale benchmark runs
// unless configured otherwise.
var DefaultScalePopulations = []int{10_000, 100_000, 1_000_000}

// DefaultScaleActivePct is the fraction of the population (in percent)
// invoked each active minute.
const DefaultScaleActivePct = 1.0

// DefaultScaleMinutes is the number of timed minute steps per phase.
const DefaultScaleMinutes = 8

// ScaleConfig configures one scale sweep.
type ScaleConfig struct {
	// Populations to sweep. Defaults to DefaultScalePopulations.
	Populations []int
	// ActivePct is the percentage of slots invoked per active minute
	// (clamped to at least one slot). Defaults to DefaultScaleActivePct.
	ActivePct float64
	// Minutes is the number of timed Steps in each of the idle and active
	// phases. Defaults to DefaultScaleMinutes.
	Minutes int
	// Mode is the serving mode under test. Defaults to ModeEpoch.
	Mode string
	// NewRuntime constructs the runtime under test for one population.
	// Required.
	NewRuntime func(functions int, mode string) (*Runtime, error)
	// Progress, when set, is called with each population's result as it
	// lands.
	Progress func(ScaleResult)
}

// ScaleResult is one population cell of the scale benchmark.
type ScaleResult struct {
	Functions int    `json:"functions"`
	Mode      string `json:"mode"`
	// ActiveFunctions is how many distinct slots were invoked each active
	// minute (ActivePct of the population, at least one).
	ActivePct       float64 `json:"active_pct"`
	ActiveFunctions int     `json:"active_functions"`
	// BuildSeconds is the wall time to construct policy + runtime for the
	// population.
	BuildSeconds float64 `json:"build_seconds"`
	// HeapBytes is the resting live-heap delta attributable to the built
	// runtime (GC'd before and after construction), and BytesPerFunction
	// divides it by the population.
	HeapBytes        uint64  `json:"heap_bytes"`
	BytesPerFunction float64 `json:"bytes_per_function"`
	// IdleStepMicros is the mean Step latency over Minutes minutes with no
	// invocations at all; ActiveStepMicros the same with ActiveFunctions
	// slots invoked once each before every Step. Invoke time is excluded —
	// only the barrier itself is timed.
	IdleStepMicros   float64 `json:"idle_step_us"`
	ActiveStepMicros float64 `json:"active_step_us"`
	// MinutesStepped is the total Steps taken (both phases plus warmup).
	MinutesStepped int `json:"minutes_stepped"`
}

// RunScale executes the population sweep in ascending order and returns one
// result per population. Each cell builds a fresh runtime, measures its
// resting heap, times Minutes idle Steps, then Minutes active Steps with
// ActivePct of the slots invoked once per minute, and tears the runtime
// down before the next cell.
func RunScale(cfg ScaleConfig) ([]ScaleResult, error) {
	if cfg.NewRuntime == nil {
		return nil, fmt.Errorf("runtime: scale sweep needs a NewRuntime constructor")
	}
	if len(cfg.Populations) == 0 {
		cfg.Populations = DefaultScalePopulations
	}
	for _, n := range cfg.Populations {
		if n <= 0 {
			return nil, fmt.Errorf("runtime: non-positive population %d in scale sweep", n)
		}
	}
	if cfg.ActivePct == 0 {
		cfg.ActivePct = DefaultScaleActivePct
	}
	if cfg.ActivePct < 0 || cfg.ActivePct > 100 {
		return nil, fmt.Errorf("runtime: scale active percentage %.2f out of range (0, 100]", cfg.ActivePct)
	}
	if cfg.Minutes == 0 {
		cfg.Minutes = DefaultScaleMinutes
	}
	if cfg.Minutes < 0 {
		return nil, fmt.Errorf("runtime: negative scale minutes %d", cfg.Minutes)
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeEpoch
	}
	switch cfg.Mode {
	case ModeSerial, ModeStriped, ModeEpoch:
	default:
		return nil, fmt.Errorf("runtime: unknown mode %q in scale sweep", cfg.Mode)
	}

	results := make([]ScaleResult, 0, len(cfg.Populations))
	for _, n := range cfg.Populations {
		res, err := runScaleCell(cfg, n)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		if cfg.Progress != nil {
			cfg.Progress(res)
		}
	}
	return results, nil
}

// runScaleCell measures one population.
func runScaleCell(cfg ScaleConfig, n int) (ScaleResult, error) {
	res := ScaleResult{Functions: n, Mode: cfg.Mode, ActivePct: cfg.ActivePct}

	// Resting footprint: live heap before vs after construction, both
	// measured post-GC so the delta is retained bytes, not allocation
	// churn. A full GC at 1M slots is a few hundred ms — negligible next
	// to the build itself.
	var before, after goruntime.MemStats
	goruntime.GC()
	goruntime.ReadMemStats(&before)

	t0 := time.Now()
	rt, err := cfg.NewRuntime(n, cfg.Mode)
	if err != nil {
		return ScaleResult{}, fmt.Errorf("runtime: scale cell %d: %w", n, err)
	}
	defer rt.Close()
	res.BuildSeconds = time.Since(t0).Seconds()

	goruntime.GC()
	goruntime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		res.HeapBytes = after.HeapAlloc - before.HeapAlloc
	}
	res.BytesPerFunction = float64(res.HeapBytes) / float64(n)

	// Active set: ActivePct of the population, at least one slot, spread
	// evenly so the invocations land across stripes and (in the sharded
	// policy case) shards.
	active := int(float64(n) * cfg.ActivePct / 100)
	if active < 1 {
		active = 1
	}
	if active > n {
		active = n
	}
	res.ActiveFunctions = active

	step := func() (time.Duration, error) {
		s0 := time.Now()
		if err := rt.Step(); err != nil {
			return 0, fmt.Errorf("runtime: scale cell %d step: %w", n, err)
		}
		return time.Since(s0), nil
	}

	// One untimed warmup Step starts the runtime (first Step pays
	// one-time startLocked work) so the timed phases measure steady state.
	if _, err := step(); err != nil {
		return ScaleResult{}, err
	}
	res.MinutesStepped++

	var idle time.Duration
	for i := 0; i < cfg.Minutes; i++ {
		d, err := step()
		if err != nil {
			return ScaleResult{}, err
		}
		idle += d
		res.MinutesStepped++
	}
	if cfg.Minutes > 0 {
		res.IdleStepMicros = float64(idle) / float64(cfg.Minutes) / float64(time.Microsecond)
	}

	var activeDur time.Duration
	for i := 0; i < cfg.Minutes; i++ {
		for j := 0; j < active; j++ {
			fn := j * n / active
			if _, err := rt.Invoke(fn); err != nil {
				return ScaleResult{}, fmt.Errorf("runtime: scale cell %d invoke %d: %w", n, fn, err)
			}
		}
		d, err := step()
		if err != nil {
			return ScaleResult{}, err
		}
		activeDur += d
		res.MinutesStepped++
	}
	if cfg.Minutes > 0 {
		res.ActiveStepMicros = float64(activeDur) / float64(cfg.Minutes) / float64(time.Microsecond)
	}
	return res, nil
}
