package runtime

import (
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
)

// newScaleRuntime builds a PULSE-managed runtime of the given population —
// the constructor shape RunScale sweeps.
func newScaleRuntime(t *testing.T) func(fns int, mode string) (*Runtime, error) {
	t.Helper()
	cat := models.PaperCatalog()
	return func(fns int, mode string) (*Runtime, error) {
		asg := make(models.Assignment, fns)
		for i := range asg {
			asg[i] = i % len(cat.Families)
		}
		p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
		if err != nil {
			return nil, err
		}
		return New(Config{
			Catalog:    cat,
			Assignment: asg,
			Policy:     p,
			Clock:      NewManualClock(time.Unix(0, 0)),
			Mode:       mode,
		})
	}
}

func TestRunScaleValidation(t *testing.T) {
	mk := newScaleRuntime(t)
	if _, err := RunScale(ScaleConfig{}); err == nil {
		t.Error("scale sweep without a constructor accepted")
	}
	if _, err := RunScale(ScaleConfig{NewRuntime: mk, Populations: []int{0}}); err == nil {
		t.Error("non-positive population accepted")
	}
	if _, err := RunScale(ScaleConfig{NewRuntime: mk, Populations: []int{10}, ActivePct: -1}); err == nil {
		t.Error("negative active percentage accepted")
	}
	if _, err := RunScale(ScaleConfig{NewRuntime: mk, Populations: []int{10}, ActivePct: 120}); err == nil {
		t.Error("active percentage above 100 accepted")
	}
	if _, err := RunScale(ScaleConfig{NewRuntime: mk, Populations: []int{10}, Minutes: -3}); err == nil {
		t.Error("negative minutes accepted")
	}
	if _, err := RunScale(ScaleConfig{NewRuntime: mk, Populations: []int{10}, Mode: "nope"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestRunScaleSmoke sweeps two tiny populations and checks every published
// field is populated and internally consistent.
func TestRunScaleSmoke(t *testing.T) {
	var progress int
	results, err := RunScale(ScaleConfig{
		Populations: []int{100, 400},
		ActivePct:   2,
		Minutes:     2,
		NewRuntime:  newScaleRuntime(t),
		Progress:    func(ScaleResult) { progress++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || progress != 2 {
		t.Fatalf("sweep produced %d results (%d progress calls), want 2", len(results), progress)
	}
	for i, n := range []int{100, 400} {
		r := results[i]
		if r.Functions != n || r.Mode != ModeEpoch {
			t.Errorf("cell %d: shape %+v, want %d functions in epoch mode", i, r, n)
		}
		if want := n * 2 / 100; r.ActiveFunctions != want {
			t.Errorf("cell %d: %d active functions, want %d", i, r.ActiveFunctions, want)
		}
		if r.HeapBytes == 0 || r.BytesPerFunction <= 0 {
			t.Errorf("cell %d: no heap measurement: %+v", i, r)
		}
		// Warmup + idle phase + active phase.
		if want := 1 + 2 + 2; r.MinutesStepped != want {
			t.Errorf("cell %d: stepped %d minutes, want %d", i, r.MinutesStepped, want)
		}
		if r.ActiveStepMicros <= 0 {
			t.Errorf("cell %d: active step latency not measured: %+v", i, r)
		}
	}
}

// TestSparseIdleStepZeroAllocs pins the runtime's sparse minute barrier at
// zero heap allocations on idle minutes, in every serving mode — both while
// recently-invoked slots still hold live plans (the barrier touches only
// the active set) and after the plans drain (the barrier touches nothing).
// Run by the CI alloc job.
func TestSparseIdleStepZeroAllocs(t *testing.T) {
	cat := models.PaperCatalog()
	const n = 512
	asg := make(models.Assignment, n)
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	for _, mode := range []string{ModeSerial, ModeStriped, ModeEpoch} {
		t.Run(mode, func(t *testing.T) {
			p, err := core.New(core.Config{Catalog: cat, Assignment: asg, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(Config{
				Catalog:    cat,
				Assignment: asg,
				Policy:     p,
				Clock:      NewManualClock(time.Unix(0, 0)),
				Mode:       mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if !r.sparse {
				t.Fatal("sparse path not engaged")
			}
			window := p.Config().Window

			// Warm: a few slots invoked over two minutes so plan rows, the
			// dirty chain, and every staging buffer reach capacity.
			hot := []int{0, n / 2, n - 1}
			for m := 0; m < 2; m++ {
				for _, fn := range hot {
					if _, err := r.Invoke(fn); err != nil {
						t.Fatal(err)
					}
				}
				if err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}

			// Phase 1: idle minutes with the hot slots' plans still live.
			// All runs stay inside the plan window, so no row compaction
			// (and no free-list growth) can land mid-measurement.
			if allocs := testing.AllocsPerRun(window-4, func() {
				if err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%s idle Step with resident active set allocates %v/op, want 0", mode, allocs)
			}

			// Drain: the remaining plan minutes expire and compact (the
			// one-time free-list growth lands here, unmeasured).
			for i := 0; i < window+2; i++ {
				if err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}

			// Phase 2: fully-idle minutes over the drained population.
			if allocs := testing.AllocsPerRun(300, func() {
				if err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%s fully-idle Step allocates %v/op, want 0", mode, allocs)
			}
		})
	}
}
