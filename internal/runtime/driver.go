package runtime

import (
	"context"
	"fmt"
	"time"

	"github.com/pulse-serverless/pulse/internal/trace"
)

// ReplayTrace drives a recorded trace through a live runtime: for each
// simulated minute it issues the trace's invocations, then Steps. It is the
// bridge between the offline workload tooling and the live runtime, and a
// cross-check that both execution paths agree (see runtime tests).
//
// The context cancels a long replay early; the runtime is left at the
// minute boundary reached.
func ReplayTrace(ctx context.Context, r *Runtime, tr *trace.Trace) error {
	if r == nil {
		return fmt.Errorf("runtime: nil runtime")
	}
	if tr == nil {
		return fmt.Errorf("runtime: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	if len(tr.Functions) != r.NumFunctions() {
		return fmt.Errorf("runtime: trace has %d functions, runtime %d", len(tr.Functions), r.NumFunctions())
	}
	for t := 0; t < tr.Horizon; t++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		for fn := range tr.Functions {
			for n := 0; n < tr.Functions[fn].Counts[t]; n++ {
				if _, err := r.Invoke(fn); err != nil {
					return fmt.Errorf("runtime: replay minute %d fn %d: %w", t, fn, err)
				}
			}
		}
		r.Step()
	}
	return nil
}

// Ticker advances the runtime once per interval until the context is
// cancelled — the production driver cmd/pulsed uses, with the interval set
// to one (possibly compressed) minute.
func Ticker(ctx context.Context, r *Runtime, interval time.Duration) error {
	if r == nil {
		return fmt.Errorf("runtime: nil runtime")
	}
	if interval <= 0 {
		return fmt.Errorf("runtime: non-positive tick interval %v", interval)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			r.Step()
		}
	}
}
