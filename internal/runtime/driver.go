package runtime

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/pulse-serverless/pulse/internal/trace"
)

// validateReplay checks the preconditions shared by the replay drivers.
func validateReplay(r *Runtime, tr *trace.Trace) error {
	if r == nil {
		return fmt.Errorf("runtime: nil runtime")
	}
	if tr == nil {
		return fmt.Errorf("runtime: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	if len(tr.Functions) != r.NumFunctions() {
		return fmt.Errorf("runtime: trace has %d functions, runtime %d", len(tr.Functions), r.NumFunctions())
	}
	return nil
}

// ReplayTrace drives a recorded trace through a live runtime: for each
// simulated minute it issues the trace's invocations, then Steps. It is the
// bridge between the offline workload tooling and the live runtime, and a
// cross-check that both execution paths agree (see runtime tests).
//
// The context cancels a long replay early; the runtime is left at the
// minute boundary reached.
func ReplayTrace(ctx context.Context, r *Runtime, tr *trace.Trace) error {
	if err := validateReplay(r, tr); err != nil {
		return err
	}
	for t := 0; t < tr.Horizon; t++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		for fn := range tr.Functions {
			for n := 0; n < tr.Functions[fn].Counts[t]; n++ {
				if _, err := r.Invoke(fn); err != nil {
					return fmt.Errorf("runtime: replay minute %d fn %d: %w", t, fn, err)
				}
			}
		}
		if err := r.Step(); err != nil {
			return fmt.Errorf("runtime: replay minute %d: %w", t, err)
		}
	}
	return nil
}

// ReplayTraceParallel replays a trace like ReplayTrace but issues each
// minute's invocations from one goroutine per function, exercising the
// runtime's striped hot path with real concurrency. Outcomes stay
// deterministic: each function's invocations remain ordered (one goroutine
// owns each function) and the per-minute Step barrier keeps every
// invocation in its trace minute, so per-function invocation streams and
// final Stats are identical to a sequential ReplayTrace — the property the
// differential harness asserts.
func ReplayTraceParallel(ctx context.Context, r *Runtime, tr *trace.Trace) error {
	if err := validateReplay(r, tr); err != nil {
		return err
	}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for t := 0; t < tr.Horizon; t++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		var wg sync.WaitGroup
		for fn := range tr.Functions {
			n := tr.Functions[fn].Counts[t]
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(t, fn, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if _, err := r.Invoke(fn); err != nil {
						record(fmt.Errorf("runtime: replay minute %d fn %d: %w", t, fn, err))
						return
					}
				}
			}(t, fn, n)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		if err := r.Step(); err != nil {
			return fmt.Errorf("runtime: replay minute %d: %w", t, err)
		}
	}
	return nil
}

// Ticker advances the runtime once per interval until the context is
// cancelled — the production driver cmd/pulsed uses, with the interval set
// to one (possibly compressed) minute. It returns ErrClosed when the
// runtime is closed underneath it.
func Ticker(ctx context.Context, r *Runtime, interval time.Duration) error {
	if r == nil {
		return fmt.Errorf("runtime: nil runtime")
	}
	if interval <= 0 {
		return fmt.Errorf("runtime: non-positive tick interval %v", interval)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if err := r.Step(); err != nil {
				return err
			}
		}
	}
}
