package runtime

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

// API exposes a Runtime over HTTP — the integration surface an
// OpenWhisk/Knative operator would script against:
//
//	POST /invoke?fn=N      run one invocation, returns the Invocation JSON
//	GET  /stats            runtime counters
//	GET  /functions        registered functions, their models and warm state
//	GET  /healthz          liveness
type API struct {
	rt  *Runtime
	mux *http.ServeMux
}

// NewAPI wraps a runtime in an HTTP handler.
func NewAPI(rt *Runtime) (*API, error) {
	if rt == nil {
		return nil, fmt.Errorf("runtime: nil runtime")
	}
	a := &API{rt: rt, mux: http.NewServeMux()}
	a.mux.HandleFunc("/invoke", a.handleInvoke)
	a.mux.HandleFunc("/stats", a.handleStats)
	a.mux.HandleFunc("/functions", a.handleFunctions)
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return a, nil
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (a *API) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"POST required"})
		return
	}
	fnStr := r.URL.Query().Get("fn")
	fn, err := strconv.Atoi(fnStr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad fn %q", fnStr)})
		return
	}
	inv, err := a.rt.Invoke(fn)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, inv)
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	s := a.rt.Stats()
	writeJSON(w, http.StatusOK, struct {
		Stats
		MeanAccuracyPct float64 `json:"MeanAccuracyPct"`
	}{s, s.MeanAccuracyPct()})
}

// handleMetrics exposes the counters in the Prometheus text exposition
// format so standard scrapers can monitor a pulsed deployment.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	s := a.rt.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	write := func(name, help, typ string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	write("pulse_invocations_total", "Invocations served.", "counter", float64(s.Invocations))
	write("pulse_warm_starts_total", "Invocations served warm.", "counter", float64(s.WarmStarts))
	write("pulse_cold_starts_total", "Invocations served cold.", "counter", float64(s.ColdStarts))
	write("pulse_service_seconds_total", "Modeled service time delivered.", "counter", s.TotalServiceSec)
	write("pulse_keepalive_cost_usd_total", "Accumulated keep-alive cost.", "counter", s.KeepAliveCostUSD)
	write("pulse_keepalive_memory_mb", "Keep-alive memory this minute.", "gauge", s.CurrentKaMMB)
	write("pulse_simulated_minute", "Current simulated minute.", "gauge", float64(s.Minute))
	write("pulse_mean_accuracy_pct", "Mean accuracy delivered per invocation.", "gauge", s.MeanAccuracyPct())
}

// functionInfo is one row of GET /functions.
type functionInfo struct {
	Function     int     `json:"function"`
	Family       string  `json:"family"`
	Task         string  `json:"task"`
	Variants     int     `json:"variants"`
	AliveVariant string  `json:"aliveVariant"` // "" when cold
	AliveMemMB   float64 `json:"aliveMemMB"`
}

func (a *API) handleFunctions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	out := make([]functionInfo, a.rt.NumFunctions())
	for fn := range out {
		fam, err := a.rt.FamilyOf(fn)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
			return
		}
		info := functionInfo{Function: fn, Family: fam.Name, Task: fam.Task, Variants: fam.NumVariants()}
		vi, err := a.rt.AliveVariant(fn)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
			return
		}
		if vi != cluster.NoVariant {
			info.AliveVariant = fam.Variants[vi].Name
			info.AliveMemMB = fam.Variants[vi].MemoryMB
		}
		out[fn] = info
	}
	writeJSON(w, http.StatusOK, out)
}
