package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/pulse-serverless/pulse/internal/alert"
	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// API exposes a Runtime over HTTP — the integration surface an
// OpenWhisk/Knative operator would script against. Endpoints() is the
// authoritative list; in summary:
//
//	POST /invoke?fn=N           run one invocation, returns the Invocation JSON
//	GET  /stats                 runtime counters
//	GET  /functions             registered functions, their models and warm state
//	POST /functions             register a function online (JSON {"name","family"})
//	DELETE /functions/{name}    deregister the named function (slot tombstoned)
//	GET  /metrics          Prometheus text exposition (labeled series when instrumented)
//	GET  /events           decision event log (requires telemetry)
//	GET  /decisions        Algorithm 1/2 audit: downgrades with Uv = Ai+Pr+Ip, peak episodes
//	GET  /attribution      per-function counterfactual savings vs shadow baselines (requires attribution)
//	GET  /timeseries       per-minute attribution series for one metric, incl. savings_vs_<entrant>_usd (requires attribution)
//	GET  /top              function ranking, or ?by=policy tournament standings; text or ?format=json (requires attribution)
//	GET  /why              decision provenance: why a function's variant was chosen (requires provenance)
//	GET  /traces           sampled invocation spans with serving-path cost (requires tracing)
//	GET  /stream           live Server-Sent Events: decisions, minute rollups, alerts (requires streaming)
//	GET  /dashboard        embedded single-page live ops dashboard (requires streaming)
//	GET  /healthz          daemon health JSON: uptime, mode, population, minute, alert status
type API struct {
	rt         *Runtime
	tel        *telemetry.Telemetry
	acct       *attribution.Accountant
	stream     *alert.Broadcaster
	alerts     *alert.Engine
	prov       *provenance.Recorder
	tracer     *provenance.Tracer
	reg        *telemetry.Registry
	mux        *http.ServeMux
	registered map[string]bool // paths wired into the mux (multi-verb paths appear once)
	started    time.Time
}

// Endpoint describes one API route, for documentation surfaces and the
// tests that hold them in sync with the mux.
type Endpoint struct {
	Method string
	Path   string
	Doc    string
}

// Endpoints returns every route the API serves, in registration order.
// This is the single source of truth the mux is built from; cmd/pulsed's
// package comment is asserted against it.
func Endpoints() []Endpoint {
	return []Endpoint{
		{http.MethodPost, "/invoke", "run one invocation (?fn=N), returns the Invocation JSON"},
		{http.MethodGet, "/stats", "runtime counters"},
		{http.MethodGet, "/functions", "registered functions, their models and warm state"},
		{http.MethodPost, "/functions", "register a function online (JSON {\"name\",\"family\"}), returns its slot"},
		{http.MethodDelete, "/functions/{name}", "deregister the named function; its slot is tombstoned, later invokes return 410"},
		{http.MethodGet, "/metrics", "Prometheus text exposition (labeled series when instrumented)"},
		{http.MethodGet, "/events", "decision event log (requires telemetry)"},
		{http.MethodGet, "/decisions", "Algorithm 1/2 audit: downgrades with Uv = Ai+Pr+Ip, peak episodes"},
		{http.MethodGet, "/attribution", "per-function counterfactual savings vs shadow baselines (requires attribution)"},
		{http.MethodGet, "/timeseries", "attribution series for one metric, incl. savings_vs_<entrant>_usd (?metric=&window=&res=; requires attribution)"},
		{http.MethodGet, "/top", "ranking by savings, downgrades, cold-start risk — or ?by=policy entrant standings; text or ?format=json (requires attribution)"},
		{http.MethodGet, "/why", "decision provenance for one function (?fn=<name>&minute=M&n=N; requires provenance)"},
		{http.MethodGet, "/traces", "sampled invocation spans: minute, variant, stripe, seqlock retries, latency (requires tracing)"},
		{http.MethodGet, "/stream", "live Server-Sent Events: decision log, minute rollups, alert transitions (requires streaming)"},
		{http.MethodGet, "/dashboard", "embedded single-page live ops dashboard (requires streaming)"},
		{http.MethodGet, "/healthz", "daemon health JSON: uptime, go version, population, minute, alert-engine status"},
	}
}

// NewAPI wraps a runtime in an HTTP handler without telemetry: /metrics
// serves the global runtime counters only, and the decision endpoints
// report telemetry as disabled.
func NewAPI(rt *Runtime) (*API, error) {
	return NewInstrumentedAPI(rt, nil)
}

// NewInstrumentedAPI wraps a runtime and its telemetry pipeline in an HTTP
// handler. The telemetry instance should be the same one attached to the
// runtime (and controller) as Observer, so /metrics exposes the labeled
// per-function/per-variant series and /events and /decisions serve the
// decision log. tel may be nil.
func NewInstrumentedAPI(rt *Runtime, tel *telemetry.Telemetry) (*API, error) {
	if rt == nil {
		return nil, fmt.Errorf("runtime: nil runtime")
	}
	reg := telemetry.NewRegistry()
	if tel != nil {
		reg = tel.Registry()
	}
	if err := registerStatsMetrics(reg, rt); err != nil {
		return nil, err
	}
	a := &API{rt: rt, tel: tel, tracer: rt.Tracer(), reg: reg, mux: http.NewServeMux(), started: time.Now()}
	// One handler per path; a path serving several verbs (GET and POST
	// /functions) dispatches on the method inside its handler, so it appears
	// once here and once in the mux, but once per verb in Endpoints().
	handlers := map[string]http.HandlerFunc{
		"/invoke":           a.handleInvoke,
		"/stats":            a.handleStats,
		"/functions":        a.handleFunctions,
		"/functions/{name}": a.handleFunctionByName,
		"/metrics":          a.handleMetrics,
		"/events":           a.handleEvents,
		"/decisions":        a.handleDecisions,
		"/attribution":      a.handleAttribution,
		"/timeseries":       a.handleTimeseries,
		"/top":              a.handleTop,
		"/why":              a.handleWhy,
		"/traces":           a.handleTraces,
		"/stream":           a.handleStream,
		"/dashboard":        a.handleDashboard,
		"/healthz":          a.handleHealthz,
	}
	for _, ep := range Endpoints() {
		h, ok := handlers[ep.Path]
		if !ok {
			if _, registered := a.registered[ep.Path]; registered {
				continue // another verb of an already-wired path
			}
			return nil, fmt.Errorf("runtime: endpoint %s has no handler", ep.Path)
		}
		a.mux.HandleFunc(ep.Path, h)
		if a.registered == nil {
			a.registered = make(map[string]bool)
		}
		a.registered[ep.Path] = true
		delete(handlers, ep.Path)
	}
	if len(handlers) != 0 {
		return nil, fmt.Errorf("runtime: %d handlers missing from Endpoints()", len(handlers))
	}
	return a, nil
}

// registerStatsMetrics bridges the runtime's global counters into the
// registry as scrape-time funcs, replacing the former hand-rolled writer.
func registerStatsMetrics(reg *telemetry.Registry, rt *Runtime) error {
	type metric struct {
		name, help string
		counter    bool
		value      func(Stats) float64
	}
	for _, m := range []metric{
		{"pulse_invocations_total", "Invocations served.", true, func(s Stats) float64 { return float64(s.Invocations) }},
		{"pulse_warm_starts_total", "Invocations served warm.", true, func(s Stats) float64 { return float64(s.WarmStarts) }},
		{"pulse_cold_starts_total", "Invocations served cold.", true, func(s Stats) float64 { return float64(s.ColdStarts) }},
		{"pulse_service_seconds_total", "Modeled service time delivered.", true, func(s Stats) float64 { return s.TotalServiceSec }},
		{"pulse_keepalive_cost_usd_total", "Accumulated keep-alive cost.", true, func(s Stats) float64 { return s.KeepAliveCostUSD }},
		{"pulse_keepalive_memory_mb", "Keep-alive memory this minute.", false, func(s Stats) float64 { return s.CurrentKaMMB }},
		{"pulse_simulated_minute", "Current simulated minute.", false, func(s Stats) float64 { return float64(s.Minute) }},
		{"pulse_mean_accuracy_pct", "Mean accuracy delivered per invocation.", false, func(s Stats) float64 { return s.MeanAccuracyPct() }},
	} {
		value := m.value
		fn := func() float64 { return value(rt.Stats()) }
		var err error
		if m.counter {
			err = reg.NewCounterFunc(m.name, m.help, fn)
		} else {
			err = reg.NewGaugeFunc(m.name, m.help, fn)
		}
		if err != nil {
			return err
		}
	}
	// Hot-path self-observability counters live on the runtime as atomics
	// (they are bumped on the invocation path); expose them as scrape-time
	// funcs so /metrics carries them without double registration against a
	// shared Telemetry registry.
	if err := reg.NewCounterFunc("pulse_seqlock_retries_total",
		"Invoke fast-path seqlock retries (epoch mode only).",
		func() float64 { return float64(rt.SeqlockRetries()) }); err != nil {
		return err
	}
	if err := reg.NewCounterFunc("pulse_stripe_contention_total",
		"Invoke stripe-lock acquisitions that found the stripe held.",
		func() float64 { return float64(rt.StripeContention()) }); err != nil {
		return err
	}
	return nil
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (a *API) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"POST required"})
		return
	}
	fnStr := r.URL.Query().Get("fn")
	fn, err := strconv.Atoi(fnStr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad fn %q", fnStr)})
		return
	}
	inv, err := a.rt.Invoke(fn)
	if err != nil {
		// A closed runtime is a lifecycle condition (the daemon is
		// draining), not a bad request. A deregistered function is a client
		// error — the resource is gone, so 410, never a 5xx or a panic.
		status := http.StatusNotFound
		switch {
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrDeregistered):
			status = http.StatusGone
			// Feed the alert engine's dereg_invokes metric: clients still
			// hitting a deleted function is exactly the regression the rule
			// pages on. Nil-safe when alerting is off.
			a.alerts.RecordDeregisteredInvoke()
		}
		writeJSON(w, status, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, inv)
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	s := a.rt.Stats()
	writeJSON(w, http.StatusOK, struct {
		Stats
		MeanAccuracyPct float64 `json:"MeanAccuracyPct"`
	}{s, s.MeanAccuracyPct()})
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. Errors are plain text, matching the endpoint's content type.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = a.reg.WritePrometheus(w)
}

// eventsResponse is the GET /events payload.
type eventsResponse struct {
	// Total counts every event ever appended; events older than the ring
	// capacity have been evicted (use a JSONL sink for a full trail).
	Total  uint64            `json:"total"`
	Events []telemetry.Event `json:"events"`
}

// handleEvents serves the decision log. Query parameters: kind (schedule,
// peak_enter, peak_exit, downgrade, minute), fn (function index), since
// (minimum sequence number), limit (most recent N; default 256).
func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	if a.tel == nil {
		writeJSON(w, http.StatusNotFound, apiError{"telemetry not enabled"})
		return
	}
	f := telemetry.Filter{Kind: r.URL.Query().Get("kind"), Limit: 256}
	if s := r.URL.Query().Get("fn"); s != "" {
		fn, err := strconv.Atoi(s)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad fn %q", s)})
			return
		}
		f.HasFunction, f.Function = true, fn
	}
	if s := r.URL.Query().Get("since"); s != "" {
		seq, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad since %q", s)})
			return
		}
		f.SinceSeq = seq
	}
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad limit %q", s)})
			return
		}
		f.Limit = n
	}
	log := a.tel.Events()
	events := log.Select(f)
	if events == nil {
		events = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Total: log.Total(), Events: events})
}

// decisionsResponse is the GET /decisions payload: the controller-decision
// audit — every buffered Algorithm 2 downgrade with its full utility
// breakdown, and the Algorithm 1 peak episodes that triggered them.
type decisionsResponse struct {
	Downgrades []telemetry.Event `json:"downgrades"`
	Peaks      []telemetry.Event `json:"peaks"`
}

func (a *API) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	if a.tel == nil {
		writeJSON(w, http.StatusNotFound, apiError{"telemetry not enabled"})
		return
	}
	log := a.tel.Events()
	resp := decisionsResponse{
		Downgrades: log.Select(telemetry.Filter{Kind: telemetry.KindDowngrade}),
		Peaks:      log.Select(telemetry.Filter{Kind: telemetry.KindPeakEnter}),
	}
	resp.Peaks = append(resp.Peaks, log.Select(telemetry.Filter{Kind: telemetry.KindPeakExit})...)
	if resp.Downgrades == nil {
		resp.Downgrades = []telemetry.Event{}
	}
	if resp.Peaks == nil {
		resp.Peaks = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// functionInfo is one row of GET /functions.
type functionInfo struct {
	Function     int     `json:"function"`
	Name         string  `json:"name"`
	Active       bool    `json:"active"` // false: slot tombstoned by DELETE
	Family       string  `json:"family"`
	Task         string  `json:"task"`
	Variants     int     `json:"variants"`
	AliveVariant string  `json:"aliveVariant"` // "" when cold
	AliveMemMB   float64 `json:"aliveMemMB"`
}

// handleFunctions serves the collection: GET lists every slot ever issued
// (tombstones included, marked inactive), POST registers a new function.
func (a *API) handleFunctions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		a.handleFunctionsList(w)
	case http.MethodPost:
		a.handleFunctionsRegister(w, r)
	default:
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET or POST required"})
	}
}

func (a *API) handleFunctionsList(w http.ResponseWriter) {
	out := make([]functionInfo, a.rt.NumFunctions())
	for fn := range out {
		fam, err := a.rt.FamilyOf(fn)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
			return
		}
		info := functionInfo{
			Function: fn,
			Name:     a.rt.FunctionName(fn),
			Active:   a.rt.FunctionActive(fn),
			Family:   fam.Name,
			Task:     fam.Task,
			Variants: fam.NumVariants(),
		}
		vi, err := a.rt.AliveVariant(fn)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
			return
		}
		if vi != cluster.NoVariant {
			info.AliveVariant = fam.Variants[vi].Name
			info.AliveMemMB = fam.Variants[vi].MemoryMB
		}
		out[fn] = info
	}
	writeJSON(w, http.StatusOK, out)
}

// registerRequest is the POST /functions body.
type registerRequest struct {
	Name   string `json:"name"`
	Family int    `json:"family"`
}

// registerResponse is the POST /functions reply.
type registerResponse struct {
	Function int    `json:"function"`
	Name     string `json:"name"`
	Family   int    `json:"family"`
}

func (a *API) handleFunctionsRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad body: %v", err)})
		return
	}
	slot, err := a.rt.Register(req.Name, req.Family)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, registerResponse{Function: slot, Name: req.Name, Family: req.Family})
}

// handleFunctionByName serves DELETE /functions/{name}: online
// deregistration. The slot is tombstoned, never reused; invoking it
// afterwards returns 410 Gone.
func (a *API) handleFunctionByName(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"DELETE required"})
		return
	}
	name := r.PathValue("name")
	if err := a.rt.Deregister(name); err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrUnknownFunction):
			status = http.StatusNotFound
		}
		writeJSON(w, status, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deregistered": name})
}
