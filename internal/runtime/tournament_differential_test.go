package runtime

// Tournament differential: the arena's fixed entrant-then-function
// accounting order makes every entrant's ledger and savings series a pure
// function of the invocation trace — invariant to the serving mode
// (serial, striped, epoch), to the policy core's shard count, and to
// whether the stream came from the cluster engine or the live runtime's
// lifecycle path. CI's 'Differential|Sharded' -race regex picks this up,
// so the comparison doubles as a race check on the entrant feed.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/tournament"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
)

func TestDifferentialTournamentChurn(t *testing.T) {
	cat := models.PaperCatalog()
	tr := churnRuntimeWorkload(t)
	_, names, initAsg := churnRuntimePolicies(t, cat, tr)
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	cost := cluster.DefaultCostModel()

	newAcct := func() *attribution.Accountant {
		ents, err := roster.Build(roster.Names(), cat, cost)
		if err != nil {
			t.Fatal(err)
		}
		a, err := attribution.New(attribution.Config{
			Catalog: cat, Assignment: initAsg, Cost: cost, Entrants: ents,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	mkPolicy := func(shards int, obs telemetry.Observer) cluster.Policy {
		p, err := core.New(core.Config{
			Catalog: cat, Assignment: initAsg, Names: names, Observer: obs, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	savingsSeries := func(a *attribution.Accountant) map[string][]tournament.Point {
		out := make(map[string][]tournament.Point)
		for i, name := range a.EntrantNames() {
			sel := tournament.Selector{Entrant: i, Channel: tournament.ChanSavingsUSD}
			out[name] = a.Arena().Series(sel, tr.Horizon, false)
		}
		return out
	}

	var (
		baseLabel  string
		baseSnap   tournament.Snapshot
		baseSeries map[string][]tournament.Point
	)
	check := func(label string, a *attribution.Accountant) {
		snap := a.Arena().Snapshot()
		series := savingsSeries(a)
		if baseLabel == "" {
			baseLabel, baseSnap, baseSeries = label, snap, series
			if len(series) != attribution.NumBaselines+len(roster.Names()) {
				t.Fatalf("%s: %d entrant series, want %d", label, len(series), attribution.NumBaselines+len(roster.Names()))
			}
			return
		}
		if !reflect.DeepEqual(snap, baseSnap) {
			t.Errorf("%s: tournament snapshot diverges from %s\n%s total:  %+v\n%s total: %+v",
				label, baseLabel, baseLabel, baseSnap.Total, label, snap.Total)
		}
		for name, pts := range series {
			if !reflect.DeepEqual(pts, baseSeries[name]) {
				t.Errorf("%s: entrant %s savings series diverges from %s", label, name, baseLabel)
			}
		}
	}

	for _, shards := range []int{1, 4} {
		// The cluster engine replaying the churn trace is the reference
		// stream for this shard count.
		engAcct := newAcct()
		if _, err := cluster.Run(cluster.Config{
			Trace: tr, Catalog: cat, Assignment: asg, Cost: cost, Observer: engAcct,
		}, mkPolicy(shards, engAcct)); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("engine/shards=%d", shards), engAcct)

		for _, mode := range []string{ModeSerial, ModeStriped, ModeEpoch} {
			acct := newAcct()
			r, err := New(Config{
				Catalog:    cat,
				Assignment: initAsg,
				Names:      names,
				Policy:     mkPolicy(shards, acct),
				Clock:      NewManualClock(time.Unix(0, 0)),
				Cost:       cost,
				Observer:   acct,
				Mode:       mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			replayChurn(t, r, tr, false)
			r.Close()
			check(fmt.Sprintf("%s/shards=%d", mode, shards), acct)
		}
	}
}
