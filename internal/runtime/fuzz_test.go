package runtime

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
)

// fuzzOp is one decoded schedule entry. The decoder is deterministic in the
// input bytes alone, so both runtimes replay the exact same schedule.
type fuzzOp struct {
	kind int // 0 invoke, 1 step, 2 register, 3 deregister, 4 stats, 5 close
	fn   int // invoke target
	fam  int // register family
	name string
}

const maxFuzzOps = 512

// decodeSchedule turns fuzz bytes into an op schedule. Each byte's low
// three bits pick the op (invokes weighted 3/8 so schedules actually serve
// traffic) and the high five bits pick the operand. Invoke targets range
// over the current population plus two, so out-of-range and tombstoned
// slots are exercised; deregister draws from every name ever issued, so
// double-deregisters are too. Close is rare (one specific byte pattern) but
// present, pinning the ErrClosed surface.
func decodeSchedule(data []byte) []fuzzOp {
	ops := make([]fuzzOp, 0, len(data))
	slots := 3 // mirrors the initial assignment below
	names := []string{"fn-0", "fn-1", "fn-2"}
	issued := 0
	for _, b := range data {
		if len(ops) == maxFuzzOps {
			break
		}
		arg := int(b >> 3)
		switch b & 7 {
		case 0, 1, 2:
			ops = append(ops, fuzzOp{kind: 0, fn: arg % (slots + 2)})
		case 3:
			ops = append(ops, fuzzOp{kind: 1})
		case 4:
			name := fmt.Sprintf("fz-%d", issued)
			issued++
			ops = append(ops, fuzzOp{kind: 2, fam: arg % 3, name: name})
			names = append(names, name)
			slots++
		case 5:
			ops = append(ops, fuzzOp{kind: 3, name: names[arg%len(names)]})
		case 6:
			ops = append(ops, fuzzOp{kind: 4})
		case 7:
			if b == 255 {
				ops = append(ops, fuzzOp{kind: 5})
			} else {
				ops = append(ops, fuzzOp{kind: 1})
			}
		}
	}
	return ops
}

// replaySchedule applies the schedule to a fresh runtime in the given mode
// and returns a transcript: one line per op recording the full result —
// invocation value or error (with its errors.Is classification), stats
// snapshot, lifecycle outcome. Two modes are behaviorally identical iff
// their transcripts match byte for byte.
func replaySchedule(t *testing.T, ops []fuzzOp, mode string) string {
	t.Helper()
	cat := models.PaperCatalog()
	asg := models.Assignment{0, 1, 2}
	pol, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: pol, Clock: NewManualClock(time.Unix(0, 0)), Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var sb strings.Builder
	errClass := func(err error) string {
		if err == nil {
			return "nil"
		}
		return fmt.Sprintf("%v closed=%v dereg=%v unknown=%v",
			err, errors.Is(err, ErrClosed), errors.Is(err, ErrDeregistered), errors.Is(err, ErrUnknownFunction))
	}
	for i, op := range ops {
		switch op.kind {
		case 0:
			inv, err := r.Invoke(op.fn)
			fmt.Fprintf(&sb, "%d invoke(%d) -> %+v err=%s\n", i, op.fn, inv, errClass(err))
		case 1:
			fmt.Fprintf(&sb, "%d step -> err=%s\n", i, errClass(r.Step()))
		case 2:
			slot, err := r.Register(op.name, op.fam)
			fmt.Fprintf(&sb, "%d register(%s,%d) -> %d err=%s\n", i, op.name, op.fam, slot, errClass(err))
		case 3:
			fmt.Fprintf(&sb, "%d deregister(%s) -> err=%s\n", i, op.name, errClass(r.Deregister(op.name)))
		case 4:
			fmt.Fprintf(&sb, "%d stats -> %+v\n", i, r.Stats())
		case 5:
			fmt.Fprintf(&sb, "%d close -> err=%s\n", i, errClass(r.Close()))
		}
	}
	fmt.Fprintf(&sb, "final minute=%d stats=%+v active=%d/%d\n",
		r.Minute(), r.Stats(), r.NumActive(), r.NumFunctions())
	return sb.String()
}

// FuzzInvokeStepSchedule replays fuzz-generated interleavings of
// invoke/step/register/deregister/stats/close against the serial reference
// runtime and the lock-free epoch runtime and requires identical
// transcripts: every invocation value, every stats snapshot, every error —
// including the ErrClosed/ErrDeregistered/ErrUnknownFunction sentinels —
// must match. The schedules are sequential, so any divergence is a real
// semantic difference in the epoch path, not a concurrency artifact (the
// concurrency side is covered by the differential and torn-read tests).
func FuzzInvokeStepSchedule(f *testing.F) {
	f.Add([]byte{0, 8, 3, 16, 3, 6})                                // invoke, invoke, step, invoke, step, stats
	f.Add([]byte{4, 0, 3, 5, 0, 6})                                 // register, invoke, step, deregister, invoke, stats
	f.Add([]byte{0, 255, 0, 3, 4, 6})                               // close mid-schedule, then everything fails alike
	f.Add([]byte{13, 21, 5, 5, 4, 12, 3, 0, 1, 2, 3, 6, 255, 0})    // churn, double deregister, rollover, close
	f.Add([]byte{4, 4, 4, 3, 0, 8, 16, 24, 32, 40, 3, 5, 13, 3, 6}) // grow population, serve the tail, retire
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeSchedule(data)
		serial := replaySchedule(t, ops, ModeSerial)
		epoch := replaySchedule(t, ops, ModeEpoch)
		if serial != epoch {
			t.Errorf("serial and epoch transcripts diverge for schedule %v:\n--- serial ---\n%s--- epoch ---\n%s",
				ops, serial, epoch)
		}
	})
}
