package runtime

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	goruntime "runtime"
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/alert"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

func TestHealthzJSON(t *testing.T) {
	api, rt := newAttributedAPI(t)
	stream := alert.NewBroadcaster()
	engine, err := alert.NewEngine(alert.Config{Rules: alert.DefaultRules(false)})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	api.AttachStream(stream)
	api.AttachAlerts(engine)

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q, want application/json", ct)
	}
	var h healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if h.GoVersion != goruntime.Version() {
		t.Errorf("goVersion %q, want %q", h.GoVersion, goruntime.Version())
	}
	if h.UptimeSec < 0 {
		t.Errorf("uptimeSec %f negative", h.UptimeSec)
	}
	if h.Minute != rt.Stats().Minute {
		t.Errorf("minute %d, runtime at %d", h.Minute, rt.Stats().Minute)
	}
	if h.Functions != rt.NumFunctions() || h.Active != rt.NumActive() {
		t.Errorf("functions %d/%d, want %d/%d", h.Functions, h.Active, rt.NumFunctions(), rt.NumActive())
	}
	if !h.Attribution {
		t.Error("attribution false with an accountant attached")
	}
	if h.Telemetry {
		t.Error("telemetry true without a pipeline")
	}
	if !h.Alerts.Enabled {
		t.Error("alerts.enabled false with an engine attached")
	}
	if h.Alerts.Rules != len(alert.DefaultRules(false)) {
		t.Errorf("alerts.rules %d, want %d", h.Alerts.Rules, len(alert.DefaultRules(false)))
	}
	if h.Alerts.Firing == nil {
		t.Error("alerts.firing must be [] in JSON, not null")
	}
}

// Without an engine or broadcaster, /healthz still serves and says both
// surfaces are off — the zero-value path must be nil-safe end to end.
func TestHealthzJSONDisabledSurfaces(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", rec.Code)
	}
	var h healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Alerts.Enabled {
		t.Error("alerts.enabled true without an engine")
	}
	if h.Stream != (alert.BroadcastStats{}) {
		t.Errorf("stream stats %+v without a broadcaster", h.Stream)
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", rec.Code)
	}
}

func TestStreamAndDashboardRequireBroadcaster(t *testing.T) {
	api, _ := newTestAPI(t)
	for _, path := range []string{"/stream", "/dashboard"} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s unattached = %d, want 404", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "streaming not enabled") {
			t.Errorf("GET %s body %q lacks disabled notice", path, rec.Body.String())
		}
	}
}

func TestDashboardServes(t *testing.T) {
	api, _ := newTestAPI(t)
	api.AttachStream(alert.NewBroadcaster())
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dashboard", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /dashboard = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q, want text/html", ct)
	}
	if !strings.Contains(rec.Body.String(), "PULSE live ops") {
		t.Error("dashboard body lacks the page title")
	}
}

func TestTopJSONFormat(t *testing.T) {
	api, _ := newAttributedAPI(t)

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?format=json&n=3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /top?format=json = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q, want application/json", ct)
	}
	var resp topResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rankings) != 3 {
		t.Fatalf("%d rankings, want 3", len(resp.Rankings))
	}
	titles := []string{"savings vs fixed-high", "downgrades", "cold-start risk"}
	for i, rk := range resp.Rankings {
		if rk.Title != titles[i] {
			t.Errorf("ranking %d title %q, want %q", i, rk.Title, titles[i])
		}
		if len(rk.Entries) > 3 {
			t.Errorf("ranking %q has %d entries, n=3", rk.Title, len(rk.Entries))
		}
		for j := 1; j < len(rk.Entries); j++ {
			if rk.Entries[j].Value > rk.Entries[j-1].Value {
				t.Errorf("ranking %q not sorted descending at %d", rk.Title, j)
			}
		}
	}
	if resp.Total.Actual.Invocations == 0 {
		t.Error("total invocations zero after served traffic")
	}

	// The explicit text format is the default rendering.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?format=text", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "PULSE cost attribution") {
		t.Errorf("GET /top?format=text = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?format=yaml", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("GET /top?format=yaml = %d, want 400", rec.Code)
	}
}

// Invoking a deregistered function through the API must feed the alert
// engine's dereg_invokes metric, which then fires at the minute barrier.
func TestInvokeDeregisteredFeedsAlerts(t *testing.T) {
	api, rt := newTestAPI(t)
	sink := &alert.CollectorSink{}
	engine, err := alert.NewEngine(alert.Config{
		Rules: []alert.Rule{{Name: "dereg", Metric: alert.MetricDeregInvokes, Op: alert.OpAbove, Threshold: 0, For: 1, Cooldown: 0}},
		Sinks: []alert.Sink{sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	api.AttachAlerts(engine)

	if err := rt.Deregister(rt.FunctionName(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invoke?fn=0", nil))
		if rec.Code != http.StatusGone {
			t.Fatalf("invoke deregistered = %d, want 410", rec.Code)
		}
	}
	// Open minute 0, then close it by opening minute 1.
	engine.ObserveMinute(telemetry.MinuteSample{Minute: 0})
	engine.ObserveMinute(telemetry.MinuteSample{Minute: 1})
	deadline := newDeadline(t)
	var ns []alert.Notification
	for len(ns) == 0 && !deadline() {
		ns = sink.Notifications()
	}
	if len(ns) != 1 || ns[0].Rule != "dereg" || ns[0].State != alert.StateFiring || ns[0].Value != 2 {
		t.Fatalf("notifications %+v, want one dereg firing with value 2", ns)
	}
}

// newDeadline returns a poll-guard closure: false until ~2s have elapsed.
func newDeadline(t *testing.T) func() bool {
	t.Helper()
	n := 0
	return func() bool {
		n++
		if n > 2000 {
			t.Fatal("deadline waiting for notification delivery")
			return true
		}
		time.Sleep(time.Millisecond)
		return false
	}
}
