package runtime

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/tournament"
)

// AttachAttribution connects a counterfactual attribution accountant to
// the API, enabling /attribution, /timeseries, and /top. The accountant
// should be the same instance attached (via telemetry.Multi) as Observer
// to both the controller and the runtime, so it sees the full decision and
// invocation stream. Attach before serving; a nil accountant leaves the
// endpoints answering 404 "attribution not enabled".
func (a *API) AttachAttribution(acct *attribution.Accountant) {
	a.acct = acct
}

// attributionEnabled gates the attribution endpoints, mirroring the
// telemetry-nil behavior of /events and /decisions.
func (a *API) attributionEnabled(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return false
	}
	if a.acct == nil {
		writeJSON(w, http.StatusNotFound, apiError{"attribution not enabled"})
		return false
	}
	return true
}

// tournamentEntrant is one entrant's cluster-total standing in the
// /attribution tournament section. Savings is the live policy's savings
// vs this entrant (shadow cost minus actual cost: positive means live
// beat it).
type tournamentEntrant struct {
	Name    string              `json:"name"`
	Total   attribution.Tally   `json:"total"`
	Savings attribution.Savings `json:"savings"`
}

// tournamentSection extends the /attribution payload with per-entrant
// cluster totals once tournament extras are attached.
type tournamentSection struct {
	Entrants []tournamentEntrant `json:"entrants"`
}

// handleAttribution serves the full per-function counterfactual report.
// When tournament entrants beyond the three baselines are attached, the
// payload gains a "tournament" section with every entrant's cluster
// totals and the live policy's savings against each.
func (a *API) handleAttribution(w http.ResponseWriter, r *http.Request) {
	if !a.attributionEnabled(w, r) {
		return
	}
	resp := struct {
		attribution.Report
		Tournament *tournamentSection `json:"tournament,omitempty"`
	}{Report: a.acct.Report()}
	if names := a.acct.EntrantNames(); len(names) > attribution.NumBaselines {
		snap := a.acct.Arena().Snapshot()
		sec := &tournamentSection{Entrants: make([]tournamentEntrant, len(names))}
		for i, name := range names {
			sec.Entrants[i] = tournamentEntrant{
				Name:    name,
				Total:   snap.Total.Shadows[i],
				Savings: snap.Total.Savings[i],
			}
		}
		resp.Tournament = sec
	}
	writeJSON(w, http.StatusOK, resp)
}

// timeseriesResponse is the GET /timeseries payload.
type timeseriesResponse struct {
	Metric     string              `json:"metric"`
	Window     int                 `json:"window"`
	Resolution string              `json:"resolution"`
	Points     []attribution.Point `json:"points"`
}

// selfMetric reports whether name is one of the provenance recorder's
// runtime self-observability series (step_latency_us, seqlock_retries).
func selfMetric(name string) bool {
	for _, m := range provenance.SelfMetrics() {
		if m == name {
			return true
		}
	}
	return false
}

// handleTimeseries serves one metric's trailing series. Query parameters:
// metric (required; see attribution.MetricNames, savings_vs_<entrant>_usd
// for any attached tournament entrant, plus the provenance self-metrics
// step_latency_us and seqlock_retries), window (trailing minutes — or
// hours with res=hour — default 60), res (minute or hour; self-metrics
// are minute-only).
func (a *API) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	name := r.URL.Query().Get("metric")
	window := 60
	if s := r.URL.Query().Get("window"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad window %q", s)})
			return
		}
		window = n
	}
	res := r.URL.Query().Get("res")
	if res == "" {
		res = "minute"
	}
	var hourly bool
	switch res {
	case "minute":
	case "hour":
		hourly = true
	default:
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad res %q (minute or hour)", res)})
		return
	}
	// The runtime self-metrics come from the provenance recorder, not the
	// attribution accountant, so they are served before (and independently
	// of) the attribution gate.
	if selfMetric(name) {
		if a.prov == nil {
			writeJSON(w, http.StatusNotFound, apiError{"provenance not enabled"})
			return
		}
		if hourly {
			writeJSON(w, http.StatusBadRequest,
				apiError{fmt.Sprintf("metric %q is minute-only (res=minute)", name)})
			return
		}
		series, _ := a.prov.SelfSeries(name, window)
		points := make([]attribution.Point, 0, len(series))
		for _, p := range series {
			points = append(points, attribution.Point{Minute: p.Minute, Value: p.Value})
		}
		writeJSON(w, http.StatusOK, timeseriesResponse{
			Metric: name, Window: window, Resolution: res, Points: points,
		})
		return
	}
	if a.acct == nil {
		writeJSON(w, http.StatusNotFound, apiError{"attribution not enabled"})
		return
	}
	metric, err := attribution.ParseMetric(name)
	if err != nil {
		// Not a classic metric: try the tournament pattern
		// savings_vs_<entrant>_usd against the attached entrant names
		// (savings_vs_fixed_usd stays a classic metric above).
		if ename, ok := entrantSavingsMetric(name); ok {
			if i, ok := a.acct.Arena().EntrantIndex(ename); ok {
				points := a.acct.Arena().Series(
					tournament.Selector{Entrant: i, Channel: tournament.ChanSavingsUSD}, window, hourly)
				if points == nil {
					points = []attribution.Point{}
				}
				writeJSON(w, http.StatusOK, timeseriesResponse{
					Metric: name, Window: window, Resolution: res, Points: points,
				})
				return
			}
		}
		writeJSON(w, http.StatusBadRequest,
			// Brace delimiters, not angle brackets: the JSON encoder
			// HTML-escapes angle brackets into unicode escape
			// sequences, garbling the hint.
			apiError{fmt.Sprintf("unknown metric %q (one of %v, savings_vs_{entrant}_usd for entrants %v, plus %v)",
				name, attribution.MetricNames(), a.acct.EntrantNames(), provenance.SelfMetrics())})
		return
	}
	points := a.acct.Series(metric, window, hourly)
	if points == nil {
		points = []attribution.Point{}
	}
	writeJSON(w, http.StatusOK, timeseriesResponse{
		Metric: metric.String(), Window: window, Resolution: res, Points: points,
	})
}

// entrantSavingsMetric extracts the entrant name from a
// savings_vs_<entrant>_usd metric string, reporting whether the string
// has that shape.
func entrantSavingsMetric(metric string) (string, bool) {
	rest, ok := strings.CutPrefix(metric, "savings_vs_")
	if !ok {
		return "", false
	}
	name, ok := strings.CutSuffix(rest, "_usd")
	if !ok || name == "" {
		return "", false
	}
	return name, true
}

// topEntry is one ranked function in the /top JSON payload.
type topEntry struct {
	Function     int     `json:"function"`
	Family       string  `json:"family"`
	Value        float64 `json:"value"`
	Invocations  int     `json:"invocations"`
	ColdStartPct float64 `json:"coldStartPct"`
	Downgrades   int     `json:"downgrades"`
}

// topRanking is one of the three /top rankings.
type topRanking struct {
	Title   string     `json:"title"`
	Unit    string     `json:"unit"`
	Entries []topEntry `json:"entries"`
}

// topResponse is the GET /top?format=json payload.
type topResponse struct {
	Minute        int                        `json:"minute"`
	WindowMinutes int                        `json:"windowMinutes"`
	Total         attribution.FunctionReport `json:"total"`
	Rankings      []topRanking               `json:"rankings"`
}

// topRankings computes the three /top rankings — by savings vs the fixed
// baseline, by downgrades, and by cold-start risk — each capped at n
// entries and truncated at the first zero-valued row past the leader. Both
// the text and JSON renderings are built from this, so they can never rank
// differently.
func topRankings(rep attribution.Report, n int) []topRanking {
	rank := func(title, unit string, value func(attribution.FunctionReport) float64) topRanking {
		fns := make([]attribution.FunctionReport, len(rep.Functions))
		copy(fns, rep.Functions)
		sort.SliceStable(fns, func(i, j int) bool { return value(fns[i]) > value(fns[j]) })
		rk := topRanking{Title: title, Unit: unit, Entries: []topEntry{}}
		for _, fr := range fns {
			if len(rk.Entries) >= n {
				break
			}
			if value(fr) == 0 && len(rk.Entries) > 0 {
				break
			}
			rk.Entries = append(rk.Entries, topEntry{
				Function:     fr.Function,
				Family:       fr.Family,
				Value:        value(fr),
				Invocations:  fr.Actual.Invocations,
				ColdStartPct: fr.ColdStartPct,
				Downgrades:   fr.Downgrades,
			})
		}
		return rk
	}
	return []topRanking{
		rank("savings vs fixed-high", "$",
			func(fr attribution.FunctionReport) float64 { return fr.VsFixed.KeepAliveCostUSD }),
		rank("downgrades", "downgrades",
			func(fr attribution.FunctionReport) float64 { return float64(fr.Downgrades) }),
		rank("cold-start risk", "% cold",
			func(fr attribution.FunctionReport) float64 { return fr.ColdStartPct }),
	}
}

// policyRow is one policy — the live one or a shadow entrant — in the
// /top?by=policy standings. CostVsLiveUSD is the policy's keep-alive cost
// minus the live policy's (negative: the shadow would have been cheaper).
// Both the text and JSON renderings are built from the same rows.
type policyRow struct {
	Name               string  `json:"name"`
	Live               bool    `json:"live"`
	CostUSD            float64 `json:"costUSD"`
	KeepAliveGBMinutes float64 `json:"keepAliveGBMinutes"`
	ColdStarts         int     `json:"coldStarts"`
	CostVsLiveUSD      float64 `json:"costVsLiveUSD"`
}

// topPolicyResponse is the GET /top?by=policy&format=json payload.
type topPolicyResponse struct {
	Minute  int         `json:"minute"`
	Ranking []policyRow `json:"ranking"`
}

// policyRanking builds the tournament standings: the live policy plus
// every entrant, ranked by total keep-alive cost ascending (cheapest
// policy first) with the name as a deterministic tie-break.
func policyRanking(names []string, snap tournament.Snapshot) []policyRow {
	rows := make([]policyRow, 0, len(names)+1)
	rows = append(rows, policyRow{
		Name:               "live",
		Live:               true,
		CostUSD:            snap.Total.Actual.KeepAliveCostUSD,
		KeepAliveGBMinutes: snap.Total.Actual.KeepAliveMBMinutes / 1024,
		ColdStarts:         snap.Total.Actual.ColdStarts,
	})
	for i, name := range names {
		sh := snap.Total.Shadows[i]
		rows = append(rows, policyRow{
			Name:               name,
			CostUSD:            sh.KeepAliveCostUSD,
			KeepAliveGBMinutes: sh.KeepAliveMBMinutes / 1024,
			ColdStarts:         sh.ColdStarts,
			CostVsLiveUSD:      sh.KeepAliveCostUSD - snap.Total.Actual.KeepAliveCostUSD,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].CostUSD != rows[j].CostUSD {
			return rows[i].CostUSD < rows[j].CostUSD
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// handleTop renders the attribution summary. The default (by=functions)
// view shows cluster totals, then the functions ranked by savings vs the
// fixed baseline, by downgrades, and by cold-start risk; by=policy shows
// the tournament standings — live policy and every shadow entrant ranked
// by total keep-alive cost. Query parameters: by (functions or policy),
// n caps each function ranking (default 10); format=json selects the
// machine-readable payload the dashboard consumes (default is the
// human-readable text table).
func (a *API) handleTop(w http.ResponseWriter, r *http.Request) {
	if !a.attributionEnabled(w, r) {
		return
	}
	n := 10
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad n %q", s)})
			return
		}
		n = v
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "text":
	case "json":
	default:
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad format %q (text or json)", format)})
		return
	}
	by := r.URL.Query().Get("by")
	switch by {
	case "", "functions":
	case "policy":
		snap := a.acct.Arena().Snapshot()
		rows := policyRanking(a.acct.EntrantNames(), snap)
		if format == "json" {
			writeJSON(w, http.StatusOK, topPolicyResponse{Minute: snap.Minute, Ranking: rows})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTopPolicy(w, snap.Minute, rows)
		return
	default:
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad by %q (functions or policy)", by)})
		return
	}
	rep := a.acct.Report()
	if format == "json" {
		writeJSON(w, http.StatusOK, topResponse{
			Minute:        rep.Minute,
			WindowMinutes: rep.WindowMinutes,
			Total:         rep.Total,
			Rankings:      topRankings(rep, n),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	writeTop(w, rep, n)
}

// writeTopPolicy formats the /top?by=policy standings. Split out like
// writeTop so tests and pulsed can render without an HTTP round trip.
func writeTopPolicy(w interface{ Write([]byte) (int, error) }, minute int, rows []policyRow) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("PULSE policy tournament — minute %d, %d policies by keep-alive cost\n\n", minute, len(rows))
	p("  rank policy        cost $      GB-min      cold    Δcost vs live $\n")
	for i, row := range rows {
		marker := " "
		if row.Live {
			marker = "*"
		}
		p("  %-4d %s%-12s %10.4f %11.1f %9d %+18.4f\n",
			i+1, marker, row.Name, row.CostUSD, row.KeepAliveGBMinutes, row.ColdStarts, row.CostVsLiveUSD)
	}
	p("\n  (* = live policy; Δcost < 0 means the shadow would have been cheaper)\n")
}

// writeTop formats the /top view. Split out so tests (and pulsed's demo
// logging) can render a report without an HTTP round trip.
func writeTop(w interface{ Write([]byte) (int, error) }, rep attribution.Report, n int) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	t := rep.Total
	p("PULSE cost attribution — minute %d, fixed baseline window %d min\n\n", rep.Minute, rep.WindowMinutes)
	p("cluster totals (live policy vs shadows):\n")
	p("  invocations %d   cold %d (%.2f%%)   keep-alive %.1f GB-min   cost $%.4f   accuracy %.2f%%\n",
		t.Actual.Invocations, t.Actual.ColdStarts, t.ColdStartPct,
		t.Actual.KeepAliveMBMinutes/1024, t.Actual.KeepAliveCostUSD, t.Actual.MeanAccuracyPct)
	p("  vs fixed-high : saved $%.4f and %.1f GB-min, cold starts avoided %+d, accuracy %+.2f%%\n",
		t.VsFixed.KeepAliveCostUSD, t.VsFixed.KeepAliveGBMinutes, t.VsFixed.ColdStartsAvoided, t.VsFixed.AccuracyDeltaPct)
	p("  vs never      : saved $%.4f and %.1f GB-min, cold starts avoided %+d, accuracy %+.2f%%\n",
		t.VsNever.KeepAliveCostUSD, t.VsNever.KeepAliveGBMinutes, t.VsNever.ColdStartsAvoided, t.VsNever.AccuracyDeltaPct)
	p("  vs oracle     : saved $%.4f and %.1f GB-min, cold starts avoided %+d, accuracy %+.2f%%\n",
		t.VsOracle.KeepAliveCostUSD, t.VsOracle.KeepAliveGBMinutes, t.VsOracle.ColdStartsAvoided, t.VsOracle.AccuracyDeltaPct)

	for _, rk := range topRankings(rep, n) {
		p("\ntop %s:\n", rk.Title)
		for _, e := range rk.Entries {
			p("  fn %-5d %-12s %10.4f %s   (inv %d, cold %.2f%%, downgrades %d)\n",
				e.Function, e.Family, e.Value, rk.Unit,
				e.Invocations, e.ColdStartPct, e.Downgrades)
		}
	}
}
