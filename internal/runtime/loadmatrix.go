package runtime

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"time"

	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// MatrixConfig configures a serving-path benchmark matrix: the cross
// product of GOMAXPROCS × functions × mixes × workers × modes, each cell
// one RunLoad call. The matrix is what turns a single flattering sample
// into a scaling curve — BENCH_runtime.json is written from its output.
type MatrixConfig struct {
	// GOMAXPROCS values to sweep. Each cell sets the process-wide value
	// for its duration (restored when RunMatrix returns). Defaults to the
	// current setting only.
	GOMAXPROCS []int
	// Functions values to sweep: the number of registered functions (and
	// so stripes) per cell. Required via NewRuntime's domain; defaults to
	// {12}.
	Functions []int
	// Mixes to sweep (MixUniform/MixZipf/MixHotspot). Defaults to
	// {MixHotspot} — the stripe-contention worst case.
	Mixes []string
	// Workers values to sweep. A zero entry means 2× the cell's
	// GOMAXPROCS, keeping the runnable-goroutine pressure proportional to
	// the parallelism under test. Defaults to {0}.
	Workers []int
	// Modes to sweep. Defaults to all three serving modes.
	Modes []string
	// Duration, Seed, StepEvery are passed through to each cell's
	// LoadConfig. Duration is required.
	Duration  time.Duration
	Seed      int64
	StepEvery time.Duration
	// NewRuntime constructs the runtime under test for one cell. Required.
	NewRuntime func(functions int, mode string) (*Runtime, error)
	// Progress, when set, is called with each cell's result as it lands.
	Progress func(LoadResult)
}

// MatrixPoint is one comparison row of the summarized matrix: a fixed
// (gomaxprocs, functions, mix, workers) shape with per-mode throughput and
// the speedup ratios the README quotes.
type MatrixPoint struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Functions  int    `json:"functions"`
	Mix        string `json:"mix"`
	Workers    int    `json:"workers"`
	// Throughput maps mode → invocations/sec for this shape.
	Throughput map[string]float64 `json:"throughput_inv_per_sec"`
	// Speedups are ratios of the above (0 when a mode is missing).
	SpeedupStripedVsSerial float64 `json:"speedup_striped_vs_serial,omitempty"`
	SpeedupEpochVsSerial   float64 `json:"speedup_epoch_vs_serial,omitempty"`
	SpeedupEpochVsStriped  float64 `json:"speedup_epoch_vs_striped,omitempty"`
}

// RunMatrix executes every cell of the matrix in a deterministic order
// (GOMAXPROCS, then functions, mix, workers, mode) and returns the raw
// results. GOMAXPROCS is mutated per sweep value and restored before
// returning; cells within one GOMAXPROCS value run consecutively so the
// scheduler state is comparable across the modes being contrasted.
func RunMatrix(cfg MatrixConfig) ([]LoadResult, error) {
	if cfg.NewRuntime == nil {
		return nil, fmt.Errorf("runtime: matrix needs a NewRuntime constructor")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("runtime: non-positive matrix cell duration %v", cfg.Duration)
	}
	if len(cfg.GOMAXPROCS) == 0 {
		cfg.GOMAXPROCS = []int{goruntime.GOMAXPROCS(0)}
	}
	if len(cfg.Functions) == 0 {
		cfg.Functions = []int{12}
	}
	if len(cfg.Mixes) == 0 {
		cfg.Mixes = []string{MixHotspot}
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{0}
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []string{ModeSerial, ModeStriped, ModeEpoch}
	}
	for _, gmp := range cfg.GOMAXPROCS {
		if gmp <= 0 {
			return nil, fmt.Errorf("runtime: non-positive GOMAXPROCS %d in matrix", gmp)
		}
	}
	for _, w := range cfg.Workers {
		if w < 0 {
			return nil, fmt.Errorf("runtime: negative worker count %d in matrix (0 means 2×GOMAXPROCS)", w)
		}
	}
	for _, mode := range cfg.Modes {
		switch mode {
		case ModeSerial, ModeStriped, ModeEpoch:
		default:
			return nil, fmt.Errorf("runtime: unknown mode %q in matrix (want %s, %s, or %s)", mode, ModeSerial, ModeStriped, ModeEpoch)
		}
	}

	prev := goruntime.GOMAXPROCS(0)
	defer goruntime.GOMAXPROCS(prev)

	var results []LoadResult
	for _, gmp := range cfg.GOMAXPROCS {
		goruntime.GOMAXPROCS(gmp)
		for _, fns := range cfg.Functions {
			for _, mix := range cfg.Mixes {
				for _, workers := range cfg.Workers {
					w := workers
					if w == 0 {
						w = 2 * gmp
					}
					for _, mode := range cfg.Modes {
						rt, err := cfg.NewRuntime(fns, mode)
						if err != nil {
							return nil, fmt.Errorf("runtime: matrix cell (%d fns, %s): %w", fns, mode, err)
						}
						res, err := RunLoad(rt, LoadConfig{
							Workers:   w,
							Duration:  cfg.Duration,
							Mix:       mix,
							Seed:      cfg.Seed,
							StepEvery: cfg.StepEvery,
						})
						rt.Close()
						if err != nil {
							return nil, err
						}
						results = append(results, res)
						if cfg.Progress != nil {
							cfg.Progress(res)
						}
					}
				}
			}
		}
	}
	return results, nil
}

// TracerOverheadGuardPct is the published budget for sampled invocation
// tracing: at the default 1-in-1024 stride, the tracer may cost at most
// this percentage of epoch-mode throughput. The bench matrix reports the
// measured delta against it (advisory — single 2s cells are too noisy for
// a hard CI gate).
const TracerOverheadGuardPct = 2.0

// DefaultTracerDeltaStride is the sampling period the tracer-overhead
// measurement uses unless configured otherwise; it matches the stride the
// guard is quoted for.
const DefaultTracerDeltaStride = 1024

// TracerDeltaConfig configures the tracer-overhead measurement: one run
// shape, benchmarked twice back to back — once with a tracer attached but
// disabled (the pinned one-atomic-load carry cost) and once sampling at
// Stride — so the delta isolates what turning sampling on costs.
type TracerDeltaConfig struct {
	// Functions, Mode, Mix, Workers fix the single shape under test.
	// Defaults: 12 functions, ModeEpoch (the guard's mode), MixHotspot,
	// workers = 2×GOMAXPROCS.
	Functions int
	Mode      string
	Mix       string
	Workers   int
	// Duration, Seed, StepEvery are passed to both cells' LoadConfig.
	// Duration is required.
	Duration  time.Duration
	Seed      int64
	StepEvery time.Duration
	// Stride is the 1-in-K sampling period for the tracer-on cell.
	// Defaults to DefaultTracerDeltaStride.
	Stride int64
	// NewRuntime constructs the runtime under test with the given tracer
	// attached. Required.
	NewRuntime func(functions int, mode string, tracer *provenance.Tracer) (*Runtime, error)
}

// TracerDelta is the published tracer-on vs tracer-off comparison:
// throughput for both cells, the overhead percentage, the sampling volume
// that bought it, and whether the measurement landed inside
// TracerOverheadGuardPct.
type TracerDelta struct {
	Mode          string  `json:"mode"`
	Stride        int64   `json:"stride"`
	OffThroughput float64 `json:"throughput_off_inv_per_sec"`
	OnThroughput  float64 `json:"throughput_on_inv_per_sec"`
	OverheadPct   float64 `json:"overhead_pct"`
	Attempts      uint64  `json:"attempts"`
	Sampled       uint64  `json:"sampled"`
	GuardPct      float64 `json:"guard_pct"`
	WithinGuard   bool    `json:"within_guard"`
	// Off and On carry the two full cell results for drill-down.
	Off LoadResult `json:"off"`
	On  LoadResult `json:"on"`
}

// RunTracerDelta benchmarks the configured shape tracer-off then tracer-on
// and returns the throughput delta. A negative OverheadPct means the on
// cell measured faster — ordinary noise at short durations, and always
// within the guard.
func RunTracerDelta(cfg TracerDeltaConfig) (TracerDelta, error) {
	if cfg.NewRuntime == nil {
		return TracerDelta{}, fmt.Errorf("runtime: tracer delta needs a NewRuntime constructor")
	}
	if cfg.Duration <= 0 {
		return TracerDelta{}, fmt.Errorf("runtime: non-positive tracer-delta cell duration %v", cfg.Duration)
	}
	if cfg.Stride < 0 {
		return TracerDelta{}, fmt.Errorf("runtime: negative tracer-delta stride %d", cfg.Stride)
	}
	if cfg.Stride == 0 {
		cfg.Stride = DefaultTracerDeltaStride
	}
	if cfg.Functions <= 0 {
		cfg.Functions = 12
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeEpoch
	}
	switch cfg.Mode {
	case ModeSerial, ModeStriped, ModeEpoch:
	default:
		return TracerDelta{}, fmt.Errorf("runtime: unknown mode %q in tracer delta", cfg.Mode)
	}
	if cfg.Mix == "" {
		cfg.Mix = MixHotspot
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2 * goruntime.GOMAXPROCS(0)
	}

	cell := func(tracer *provenance.Tracer) (LoadResult, error) {
		rt, err := cfg.NewRuntime(cfg.Functions, cfg.Mode, tracer)
		if err != nil {
			return LoadResult{}, fmt.Errorf("runtime: tracer-delta cell (%d fns, %s): %w", cfg.Functions, cfg.Mode, err)
		}
		res, err := RunLoad(rt, LoadConfig{
			Workers:   cfg.Workers,
			Duration:  cfg.Duration,
			Mix:       cfg.Mix,
			Seed:      cfg.Seed,
			StepEvery: cfg.StepEvery,
		})
		rt.Close()
		return res, err
	}

	// Off is a tracer attached with sampling disabled, not a nil tracer:
	// the carry cost is part of every deployment and must not be billed to
	// sampling.
	off, err := cell(provenance.NewTracer(provenance.TracerConfig{}))
	if err != nil {
		return TracerDelta{}, err
	}
	onTracer := provenance.NewTracer(provenance.TracerConfig{Stride: cfg.Stride})
	on, err := cell(onTracer)
	if err != nil {
		return TracerDelta{}, err
	}

	d := TracerDelta{
		Mode:          cfg.Mode,
		Stride:        cfg.Stride,
		OffThroughput: off.Throughput,
		OnThroughput:  on.Throughput,
		GuardPct:      TracerOverheadGuardPct,
		Off:           off,
		On:            on,
	}
	st := onTracer.Stats()
	d.Attempts, d.Sampled = st.Attempts, st.Sampled
	if off.Throughput > 0 {
		d.OverheadPct = (off.Throughput - on.Throughput) / off.Throughput * 100
	}
	d.WithinGuard = d.OverheadPct < TracerOverheadGuardPct
	return d, nil
}

// TournamentOverheadGuardPctPerEntrant is the published budget for the
// shadow-policy tournament: each extra entrant riding the attribution
// Observer chain may cost at most this percentage of baseline throughput.
// The bench reports the measured per-entrant delta against it (advisory —
// single short cells are too noisy for a hard CI gate).
const TournamentOverheadGuardPctPerEntrant = 3.0

// TournamentDeltaConfig configures the tournament-overhead measurement:
// one run shape, benchmarked twice back to back — once with the baseline
// accountant (the three built-in shadows) and once with the full entrant
// roster attached — so the delta isolates what racing extra policies
// costs on the serving path.
type TournamentDeltaConfig struct {
	// Functions, Mode, Mix, Workers fix the single shape under test.
	// Defaults: 12 functions, ModeEpoch, MixHotspot, 2×GOMAXPROCS workers.
	Functions int
	Mode      string
	Mix       string
	Workers   int
	// Duration, Seed, StepEvery are passed to both cells' LoadConfig.
	// Duration is required.
	Duration  time.Duration
	Seed      int64
	StepEvery time.Duration
	// Entrants names the extra entrants the loaded cell races; used for
	// reporting and for the per-entrant overhead split. Required non-empty.
	Entrants []string
	// NewRuntime constructs the runtime under test with the given observer
	// attached. Required. The observer is built by NewObserver, keeping
	// this package free of policy/predict imports.
	NewRuntime func(functions int, mode string, obs telemetry.Observer) (*Runtime, error)
	// NewObserver builds one cell's observer: extras=false is the baseline
	// accountant, extras=true carries the entrant roster. Required.
	NewObserver func(functions int, extras bool) (telemetry.Observer, error)
}

// TournamentDelta is the published entrants-on vs baseline comparison:
// throughput for both cells, the total and per-entrant overhead
// percentages, and whether the per-entrant cost landed inside
// TournamentOverheadGuardPctPerEntrant.
type TournamentDelta struct {
	Mode                  string   `json:"mode"`
	Entrants              []string `json:"entrants"`
	BaselineThroughput    float64  `json:"throughput_baseline_inv_per_sec"`
	LoadedThroughput      float64  `json:"throughput_loaded_inv_per_sec"`
	OverheadPct           float64  `json:"overhead_pct"`
	OverheadPctPerEntrant float64  `json:"overhead_pct_per_entrant"`
	GuardPctPerEntrant    float64  `json:"guard_pct_per_entrant"`
	WithinGuard           bool     `json:"within_guard"`
	// Baseline and Loaded carry the two full cell results for drill-down.
	Baseline LoadResult `json:"baseline"`
	Loaded   LoadResult `json:"loaded"`
}

// RunTournamentDelta benchmarks the configured shape with the baseline
// accountant and again with the entrant roster attached, and returns the
// throughput delta per entrant. A negative OverheadPct means the loaded
// cell measured faster — ordinary noise at short durations, and always
// within the guard.
func RunTournamentDelta(cfg TournamentDeltaConfig) (TournamentDelta, error) {
	if cfg.NewRuntime == nil || cfg.NewObserver == nil {
		return TournamentDelta{}, fmt.Errorf("runtime: tournament delta needs NewRuntime and NewObserver constructors")
	}
	if cfg.Duration <= 0 {
		return TournamentDelta{}, fmt.Errorf("runtime: non-positive tournament-delta cell duration %v", cfg.Duration)
	}
	if len(cfg.Entrants) == 0 {
		return TournamentDelta{}, fmt.Errorf("runtime: tournament delta needs at least one entrant")
	}
	if cfg.Functions <= 0 {
		cfg.Functions = 12
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeEpoch
	}
	switch cfg.Mode {
	case ModeSerial, ModeStriped, ModeEpoch:
	default:
		return TournamentDelta{}, fmt.Errorf("runtime: unknown mode %q in tournament delta", cfg.Mode)
	}
	if cfg.Mix == "" {
		cfg.Mix = MixHotspot
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2 * goruntime.GOMAXPROCS(0)
	}

	cell := func(extras bool) (LoadResult, error) {
		obs, err := cfg.NewObserver(cfg.Functions, extras)
		if err != nil {
			return LoadResult{}, fmt.Errorf("runtime: tournament-delta observer (extras=%v): %w", extras, err)
		}
		rt, err := cfg.NewRuntime(cfg.Functions, cfg.Mode, obs)
		if err != nil {
			return LoadResult{}, fmt.Errorf("runtime: tournament-delta cell (%d fns, %s): %w", cfg.Functions, cfg.Mode, err)
		}
		res, err := RunLoad(rt, LoadConfig{
			Workers:   cfg.Workers,
			Duration:  cfg.Duration,
			Mix:       cfg.Mix,
			Seed:      cfg.Seed,
			StepEvery: cfg.StepEvery,
		})
		rt.Close()
		return res, err
	}

	base, err := cell(false)
	if err != nil {
		return TournamentDelta{}, err
	}
	loaded, err := cell(true)
	if err != nil {
		return TournamentDelta{}, err
	}

	d := TournamentDelta{
		Mode:               cfg.Mode,
		Entrants:           append([]string(nil), cfg.Entrants...),
		BaselineThroughput: base.Throughput,
		LoadedThroughput:   loaded.Throughput,
		GuardPctPerEntrant: TournamentOverheadGuardPctPerEntrant,
		Baseline:           base,
		Loaded:             loaded,
	}
	if base.Throughput > 0 {
		d.OverheadPct = (base.Throughput - loaded.Throughput) / base.Throughput * 100
		d.OverheadPctPerEntrant = d.OverheadPct / float64(len(cfg.Entrants))
	}
	d.WithinGuard = d.OverheadPctPerEntrant < TournamentOverheadGuardPctPerEntrant
	return d, nil
}

// SummarizeMatrix groups raw matrix results by run shape and computes the
// per-shape mode comparison. Rows come back in the matrix's own sweep order
// (GOMAXPROCS, functions, mix, workers).
func SummarizeMatrix(results []LoadResult) []MatrixPoint {
	type key struct {
		gmp, fns, workers int
		mix               string
	}
	order := make([]key, 0, len(results))
	points := make(map[key]*MatrixPoint)
	for _, r := range results {
		k := key{r.GOMAXPROCS, r.Functions, r.Workers, r.Mix}
		p, ok := points[k]
		if !ok {
			p = &MatrixPoint{
				GOMAXPROCS: r.GOMAXPROCS,
				Functions:  r.Functions,
				Mix:        r.Mix,
				Workers:    r.Workers,
				Throughput: map[string]float64{},
			}
			points[k] = p
			order = append(order, k)
		}
		p.Throughput[r.Mode] = r.Throughput
	}
	// Stable row order regardless of result interleaving.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.gmp != b.gmp {
			return a.gmp < b.gmp
		}
		if a.fns != b.fns {
			return a.fns < b.fns
		}
		if a.mix != b.mix {
			return a.mix < b.mix
		}
		return a.workers < b.workers
	})
	out := make([]MatrixPoint, 0, len(order))
	for _, k := range order {
		p := points[k]
		serial, striped, epoch := p.Throughput[ModeSerial], p.Throughput[ModeStriped], p.Throughput[ModeEpoch]
		if serial > 0 && striped > 0 {
			p.SpeedupStripedVsSerial = striped / serial
		}
		if serial > 0 && epoch > 0 {
			p.SpeedupEpochVsSerial = epoch / serial
		}
		if striped > 0 && epoch > 0 {
			p.SpeedupEpochVsStriped = epoch / striped
		}
		out = append(out, *p)
	}
	return out
}
