package runtime

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/alert"
	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// alertProbeRules is a rule set tuned to actually transition on the
// harness workloads: a cold-rate rule with hysteresis, a low-threshold
// keep-alive rule that flaps with load, and a savings rule exercising the
// attribution ring. Flapping rules are the sharpest determinism probe —
// one divergent minute anywhere in the feed shifts a transition.
func alertProbeRules() []alert.Rule {
	return []alert.Rule{
		{Name: "cold-spike", Metric: alert.MetricColdRatePct, Op: alert.OpAbove, Threshold: 20, For: 2, Cooldown: 3},
		{Name: "kam-any", Metric: alert.MetricKaMMB, Op: alert.OpAbove, Threshold: 1, For: 1, Cooldown: 0},
		{Name: "savings-reg", Metric: alert.MetricSavingsVsFixedUSD, Op: alert.OpBelow, Threshold: 0, For: 1, Cooldown: 0},
	}
}

// alertProbe is one feed's engine, accountant, and collector, attached as
// a single Observer.
type alertProbe struct {
	obs    telemetry.Observer
	engine *alert.Engine
	sink   *alert.CollectorSink
}

func newAlertProbe(t testing.TB, cat *models.Catalog, asg models.Assignment) *alertProbe {
	t.Helper()
	acct, err := attribution.New(attribution.Config{Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	sink := &alert.CollectorSink{}
	// The queue must hold every transition the replay can produce: a full
	// queue drops notifications (correct for a live daemon, fatal for a
	// sequence-equality assertion when the replay outpaces the dispatcher).
	engine, err := alert.NewEngine(alert.Config{
		Rules:       alertProbeRules(),
		Sinks:       []alert.Sink{sink},
		Attribution: acct,
		QueueSize:   1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The accountant precedes the engine, so a minute is priced before the
	// engine evaluates it — the same chain order pulsed wires.
	return &alertProbe{obs: telemetry.Multi(acct, engine), engine: engine, sink: sink}
}

// finish flushes the final open minute and drains the delivery queue.
func (p *alertProbe) finish(t testing.TB) []alert.Notification {
	t.Helper()
	p.engine.Flush()
	if err := p.engine.Close(); err != nil {
		t.Fatal(err)
	}
	return p.sink.Notifications()
}

// replayAlertRuntime feeds a trace through a live Runtime observing probe:
// every feed steps Horizon-1 times so minute H-1 ends open, matching the
// cluster engine's feed shape, and Flush closes it identically everywhere.
// Serial-mode feeds replay sequentially; striped and epoch feeds replay
// with one goroutine per function.
func replayAlertRuntime(t *testing.T, cat *models.Catalog, asg models.Assignment, tr *trace.Trace, mode string) []alert.Notification {
	t.Helper()
	probe := newAlertProbe(t, cat, asg)
	p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Catalog:    cat,
		Assignment: asg,
		Policy:     p,
		Clock:      NewManualClock(time.Unix(0, 0)),
		Cost:       cluster.DefaultCostModel(),
		Observer:   probe.obs,
		Mode:       mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for m := 0; m < tr.Horizon; m++ {
		if mode == ModeSerial {
			for fn := range tr.Functions {
				for i := 0; i < tr.Functions[fn].Counts[m]; i++ {
					if _, err := rt.Invoke(fn); err != nil {
						t.Fatal(err)
					}
				}
			}
		} else {
			var wg sync.WaitGroup
			for fn := range tr.Functions {
				n := tr.Functions[fn].Counts[m]
				if n == 0 {
					continue
				}
				wg.Add(1)
				go func(fn, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := rt.Invoke(fn); err != nil {
							t.Error(err)
							return
						}
					}
				}(fn, n)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
		}
		if m < tr.Horizon-1 {
			if err := rt.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return probe.finish(t)
}

// TestDifferentialAlertFirings replays the harness workloads through four
// feeds — the serial runtime, the lock-striped and lock-free epoch
// runtimes under per-function goroutines, and the cluster engine driven by
// a 4-shard PULSE controller — and requires the exact same alert
// transition sequence (rule, state, minute, value, everything) from each.
// Alert firings are part of the deterministic surface: same trace ⇒ same
// firing minutes, no matter how the platform is parallelized.
func TestDifferentialAlertFirings(t *testing.T) {
	cat := models.PaperCatalog()
	fired := false
	for _, wl := range runtimeWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			asg := make(models.Assignment, len(wl.tr.Functions))
			for i := range asg {
				asg[i] = i % len(cat.Families)
			}

			serial := replayAlertRuntime(t, cat, asg, wl.tr, ModeSerial)
			striped := replayAlertRuntime(t, cat, asg, wl.tr, ModeStriped)
			epoch := replayAlertRuntime(t, cat, asg, wl.tr, ModeEpoch)

			simProbe := newAlertProbe(t, cat, asg)
			p, err := core.New(core.Config{Catalog: cat, Assignment: asg, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cluster.Run(cluster.Config{
				Trace: wl.tr, Catalog: cat, Assignment: asg,
				Cost: cluster.DefaultCostModel(), Observer: simProbe.obs,
			}, p); err != nil {
				t.Fatal(err)
			}
			sim := simProbe.finish(t)

			if !reflect.DeepEqual(serial, striped) {
				t.Errorf("serial vs striped firings diverge:\nserial:  %s\nstriped: %s",
					describeNotifications(serial), describeNotifications(striped))
			}
			if !reflect.DeepEqual(serial, epoch) {
				t.Errorf("serial vs epoch firings diverge:\nserial: %s\nepoch:  %s",
					describeNotifications(serial), describeNotifications(epoch))
			}
			if !reflect.DeepEqual(serial, sim) {
				t.Errorf("runtime vs sharded-sim firings diverge:\nruntime: %s\nsim:     %s",
					describeNotifications(serial), describeNotifications(sim))
			}
			if len(serial) > 0 {
				fired = true
			}
		})
	}
	if !fired && !t.Failed() {
		t.Error("no workload produced a single alert transition: the probe rules are vacuous")
	}
}

func describeNotifications(ns []alert.Notification) string {
	out := ""
	for _, n := range ns {
		out += fmt.Sprintf("[%s %s @%d] ", n.Rule, n.State, n.Minute)
	}
	if out == "" {
		out = "(none)"
	}
	return out
}

// TestDifferentialAlertsWithStalledSubscriber attaches the full live ops
// surface — broadcaster with a stalled 1-slot subscriber, alert engine
// publishing to it — to the default (epoch) runtime and proves the serving
// path is unperturbed: stats and alert transitions still match a bare
// serial replay exactly, and the stalled subscriber's queue really did
// overflow (so the drop path, not a conveniently idle stream, is what's
// under test). Run under -race by the sharded CI job.
func TestDifferentialAlertsWithStalledSubscriber(t *testing.T) {
	cat := models.PaperCatalog()
	wl := runtimeWorkloads(t)[0]
	asg := make(models.Assignment, len(wl.tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}

	serialFirings := replayAlertRuntime(t, cat, asg, wl.tr, ModeSerial)
	serialStats := func() Stats {
		p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Config{
			Catalog: cat, Assignment: asg, Policy: p,
			Clock: NewManualClock(time.Unix(0, 0)), Cost: cluster.DefaultCostModel(), Mode: ModeSerial,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		for m := 0; m < wl.tr.Horizon; m++ {
			for fn := range wl.tr.Functions {
				for i := 0; i < wl.tr.Functions[fn].Counts[m]; i++ {
					if _, err := rt.Invoke(fn); err != nil {
						t.Fatal(err)
					}
				}
			}
			if m < wl.tr.Horizon-1 {
				rt.Step()
			}
		}
		return rt.Stats()
	}()

	// The instrumented striped runtime: broadcaster + stalled subscriber +
	// engine streaming minute points into it.
	stream := alert.NewBroadcaster()
	stalled := stream.Subscribe(1)
	defer stalled.Close()

	acct, err := attribution.New(attribution.Config{Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	sink := &alert.CollectorSink{}
	engine, err := alert.NewEngine(alert.Config{
		Rules:       alertProbeRules(),
		Sinks:       []alert.Sink{sink},
		Attribution: acct,
		Stream:      stream,
		QueueSize:   1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Catalog: cat, Assignment: asg, Policy: p,
		Clock: NewManualClock(time.Unix(0, 0)), Cost: cluster.DefaultCostModel(),
		Observer: telemetry.Multi(acct, engine),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for m := 0; m < wl.tr.Horizon; m++ {
		var wg sync.WaitGroup
		for fn := range wl.tr.Functions {
			n := wl.tr.Functions[fn].Counts[m]
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(fn, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if _, err := rt.Invoke(fn); err != nil {
						t.Error(err)
						return
					}
				}
			}(fn, n)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if m < wl.tr.Horizon-1 {
			if err := rt.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	engine.Flush()
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}

	if got := rt.Stats(); !reflect.DeepEqual(serialStats, got) {
		t.Errorf("stats diverge under stalled subscriber:\nserial:  %+v\nstriped: %+v", serialStats, got)
	}
	if got := sink.Notifications(); !reflect.DeepEqual(serialFirings, got) {
		t.Errorf("firings diverge under stalled subscriber:\nserial:  %s\nstriped: %s",
			describeNotifications(serialFirings), describeNotifications(got))
	}
	if stalled.Dropped() == 0 {
		t.Error("stalled subscriber dropped nothing: the slow-consumer path was not exercised")
	}
}
