package runtime

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/policy"
)

func newLoadRuntime(t *testing.T, mode string) *Runtime {
	t.Helper()
	cat, asg := testSetup(t)
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0)), Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(nil, LoadConfig{Duration: time.Millisecond}); err == nil {
		t.Error("nil runtime accepted")
	}
	r := newLoadRuntime(t, ModeEpoch)
	defer r.Close()
	if _, err := RunLoad(r, LoadConfig{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := RunLoad(r, LoadConfig{Duration: time.Millisecond, Mix: "nope"}); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestRunLoadSmoke runs the harness briefly in all three serving modes
// with a live stepper and checks the result's internal consistency:
// successful invocations counted, percentiles monotone, totals agreeing
// with the runtime's own counters.
func TestRunLoadSmoke(t *testing.T) {
	for _, mode := range []string{ModeSerial, ModeStriped, ModeEpoch} {
		t.Run(mode, func(t *testing.T) {
			r := newLoadRuntime(t, mode)
			defer r.Close()
			res, err := RunLoad(r, LoadConfig{
				Workers:   4,
				Duration:  50 * time.Millisecond,
				Mix:       MixZipf,
				Seed:      7,
				StepEvery: 5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Mode != mode {
				t.Errorf("mode = %q, want %q", res.Mode, mode)
			}
			if res.Invocations == 0 {
				t.Fatal("no invocations recorded")
			}
			if res.Errors != 0 {
				t.Errorf("%d errors", res.Errors)
			}
			if res.Throughput <= 0 || res.DurationSec <= 0 {
				t.Errorf("throughput %v over %vs", res.Throughput, res.DurationSec)
			}
			if res.MinutesStepped == 0 {
				t.Error("stepper never advanced the minute barrier")
			}
			if !(res.LatencyP50us <= res.LatencyP90us && res.LatencyP90us <= res.LatencyP99us && res.LatencyP99us <= res.LatencyMaxus) {
				t.Errorf("percentiles not monotone: p50 %v p90 %v p99 %v max %v",
					res.LatencyP50us, res.LatencyP90us, res.LatencyP99us, res.LatencyMaxus)
			}
			if got := int64(r.Stats().Invocations); got != res.Invocations {
				t.Errorf("runtime counted %d invocations, harness %d", got, res.Invocations)
			}
		})
	}
}

// TestRunLoadClosedRuntime: workers hitting a closed runtime must bail out
// immediately with errors counted, not spin or panic.
func TestRunLoadClosedRuntime(t *testing.T) {
	r := newLoadRuntime(t, ModeEpoch)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := RunLoad(r, LoadConfig{Workers: 3, Duration: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invocations != 0 {
		t.Errorf("%d invocations against a closed runtime", res.Invocations)
	}
	if res.Errors == 0 {
		t.Error("closed-runtime errors not counted")
	}
}

func TestLatencyHistPercentiles(t *testing.T) {
	var h latencyHist
	if h.percentile(0.5) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.observe(1000) // bucket upper bound 1024
	}
	for i := 0; i < 10; i++ {
		h.observe(1_000_000) // bucket upper bound 2^20, clamped to max
	}
	h.observe(-1) // clamped to 0, bucket 0
	if got := h.percentile(0.5); got != 1024 {
		t.Errorf("p50 = %v, want 1024", got)
	}
	if got := h.percentile(0.999); got != 1_000_000 {
		t.Errorf("p99.9 = %v, want exact max 1000000", got)
	}
	if h.max != 1_000_000 {
		t.Errorf("max = %d", h.max)
	}

	var other latencyHist
	other.observe(2_000_000)
	h.merge(&other)
	if h.count != 102 || h.max != 2_000_000 {
		t.Errorf("merge: count %d max %d", h.count, h.max)
	}
}

// TestPickerDeterminismAndBounds: every mix must stay within the function
// range and reproduce with the same seed.
func TestPickerDeterminism(t *testing.T) {
	for _, mix := range []string{MixUniform, MixZipf, MixHotspot} {
		draw := func() []int {
			rng := rand.New(rand.NewSource(42))
			pick, err := picker(mix, rng, 5)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int, 200)
			for i := range out {
				out[i] = pick()
				if out[i] < 0 || out[i] >= 5 {
					t.Fatalf("mix %s picked out-of-range function %d", mix, out[i])
				}
			}
			return out
		}
		a, b := draw(), draw()
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("mix %s not deterministic at draw %d", mix, i)
				break
			}
		}
	}
	// Single-function degenerate cases must not panic.
	for _, mix := range []string{MixUniform, MixZipf, MixHotspot} {
		pick, err := picker(mix, rand.New(rand.NewSource(1)), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := pick(); got != 0 {
			t.Errorf("mix %s with one function picked %d", mix, got)
		}
	}
}
