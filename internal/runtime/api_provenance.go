package runtime

import (
	"fmt"
	"net/http"
	"strconv"

	"github.com/pulse-serverless/pulse/internal/provenance"
)

// AttachProvenance connects the decision provenance recorder to the API,
// enabling GET /why and the step_latency_us / seqlock_retries /timeseries
// metrics. The recorder must be the same instance attached (via
// telemetry.Multi) as Observer to both the controller and the runtime, so
// it sees the full barrier-serialized decision stream. Attach before
// serving; nil leaves /why answering 404.
func (a *API) AttachProvenance(rec *provenance.Recorder) {
	a.prov = rec
}

// AttachTracer connects the sampled invocation tracer to the API, enabling
// GET /traces. Pass the same tracer the runtime was built with
// (Config.Tracer); rt.Tracer() is attached automatically when set, so this
// is only needed for a tracer created after the API. nil leaves /traces
// answering 404.
func (a *API) AttachTracer(tr *provenance.Tracer) {
	a.tracer = tr
}

// whyDefaultN bounds GET /why responses when no n parameter is given.
const whyDefaultN = 16

// handleWhy serves GET /why?fn=<name>: the JSON explanation of the named
// function's recent keep-alive decisions — the Algorithm 1/2 inputs
// (invocation probabilities, peak window, priority rank, memory budget)
// and outputs (chosen variant vs the unconstrained plan). Query
// parameters: fn (function name, or a slot number as a convenience),
// minute (explain one specific minute), n (last N decisions, default 16,
// capped at the ring window).
func (a *API) handleWhy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	if a.prov == nil {
		writeJSON(w, http.StatusNotFound, apiError{"provenance not enabled"})
		return
	}
	name := r.URL.Query().Get("fn")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, apiError{"fn required (function name)"})
		return
	}
	// Accept a slot number where a name is expected — operators copy slots
	// out of /functions and error messages.
	if _, ok := a.rt.LookupFunction(name); !ok {
		if slot, convErr := strconv.Atoi(name); convErr == nil {
			if n := a.rt.FunctionName(slot); n != "" {
				name = n
			}
		}
	}
	var (
		ex  provenance.Explanation
		err error
	)
	if s := r.URL.Query().Get("minute"); s != "" {
		minute, convErr := strconv.Atoi(s)
		if convErr != nil {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad minute %q", s)})
			return
		}
		ex, err = a.prov.ExplainMinute(name, minute)
	} else {
		n := whyDefaultN
		if s := r.URL.Query().Get("n"); s != "" {
			v, convErr := strconv.Atoi(s)
			if convErr != nil || v <= 0 {
				writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad n %q", s)})
				return
			}
			n = v
		}
		ex, err = a.prov.Explain(name, n)
	}
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

// tracesResponse is the GET /traces payload.
type tracesResponse struct {
	provenance.TracerStats
	Traces []provenance.Trace `json:"traces"`
}

// handleTraces serves GET /traces: the retained sampled-invocation spans,
// oldest first, with the sampler's counters. Query parameter: limit (most
// recent N; default everything retained).
func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	if a.tracer == nil {
		writeJSON(w, http.StatusNotFound, apiError{"tracing not enabled"})
		return
	}
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad limit %q", s)})
			return
		}
		limit = v
	}
	traces := a.tracer.Snapshot(limit)
	if traces == nil {
		traces = []provenance.Trace{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{TracerStats: a.tracer.Stats(), Traces: traces})
}
