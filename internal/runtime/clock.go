// Package runtime is a live, event-driven serverless runtime built around
// the same keep-alive Policy interface the offline simulator uses. Where
// internal/cluster replays a recorded trace minute by minute, this package
// accepts invocations as they arrive (e.g. over HTTP, see cmd/pulsed),
// executes them against warm or cold containers with realistic latencies,
// and advances the policy on a minute tick — the shape of an OpenWhisk- or
// Knative-style integration of PULSE.
//
// Time is abstracted behind Clock so tests drive the runtime
// deterministically with a manual clock while cmd/pulsed runs it against
// wall time (optionally time-compressed).
package runtime

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for the runtime: Now for latency stamps and Sleep
// for simulated execution delays.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// WallClock is the real-time clock, optionally scaled: a Compression of 60
// makes one simulated minute pass per wall-clock second, and a Compression
// of 0.5 runs simulated time at half speed (slow motion).
type WallClock struct {
	// Compression divides every Sleep: values > 1 compress time, values
	// in (0, 1) stretch it (slow motion), and 0 or 1 mean real time.
	// Negative values are treated as unset (real time).
	Compression float64
}

// Now implements Clock.
func (w WallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (w WallClock) Sleep(d time.Duration) {
	if w.Compression > 0 && w.Compression != 1 {
		d = time.Duration(float64(d) / w.Compression)
	}
	time.Sleep(d)
}

// ManualClock is a deterministic test clock: Sleep returns immediately and
// advances the clock; Advance moves time explicitly.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock starts a manual clock at the given instant.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (m *ManualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock by advancing the clock without blocking.
func (m *ManualClock) Sleep(d time.Duration) {
	m.Advance(d)
}

// Advance moves the clock forward. Negative advances are a programming
// error and panic.
func (m *ManualClock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("runtime: clock advanced by negative duration %v", d))
	}
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
}
