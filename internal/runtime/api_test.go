package runtime

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestAPI(t *testing.T) (*API, *Runtime) {
	t.Helper()
	cat, asg := testSetup(t)
	rt := newFixedRuntime(t, cat, asg)
	api, err := NewAPI(rt)
	if err != nil {
		t.Fatal(err)
	}
	return api, rt
}

func TestNewAPIValidation(t *testing.T) {
	if _, err := NewAPI(nil); err == nil {
		t.Error("nil runtime accepted")
	}
}

func TestHealthz(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestInvokeEndpoint(t *testing.T) {
	api, _ := newTestAPI(t)

	// Wrong method.
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/invoke?fn=0", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /invoke = %d", rec.Code)
	}
	// Bad fn.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invoke?fn=zap", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad fn = %d", rec.Code)
	}
	// Unknown fn.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invoke?fn=99", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown fn = %d", rec.Code)
	}
	// Valid invocation: first is cold.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invoke?fn=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("invoke = %d: %s", rec.Code, rec.Body.String())
	}
	var inv Invocation
	if err := json.Unmarshal(rec.Body.Bytes(), &inv); err != nil {
		t.Fatal(err)
	}
	if !inv.Cold || inv.Function != 0 || inv.Variant == "" {
		t.Errorf("invocation = %+v", inv)
	}
}

func TestStatsEndpoint(t *testing.T) {
	api, rt := newTestAPI(t)
	if _, err := rt.Invoke(1); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var got struct {
		Invocations     int
		ColdStarts      int
		MeanAccuracyPct float64
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Invocations != 1 || got.ColdStarts != 1 || got.MeanAccuracyPct <= 0 {
		t.Errorf("stats payload = %+v", got)
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/stats", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats = %d", rec.Code)
	}
}

func TestFunctionsEndpoint(t *testing.T) {
	api, rt := newTestAPI(t)
	// Warm function 0's container via an invocation + step.
	if _, err := rt.Invoke(0); err != nil {
		t.Fatal(err)
	}
	rt.Step()

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/functions", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("functions = %d", rec.Code)
	}
	var rows []functionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AliveVariant == "" || rows[0].AliveMemMB <= 0 {
		t.Errorf("function 0 should be warm: %+v", rows[0])
	}
	if rows[1].AliveVariant != "" {
		t.Errorf("function 1 should be cold: %+v", rows[1])
	}
	if rows[0].Family == "" || rows[0].Variants == 0 {
		t.Errorf("metadata missing: %+v", rows[0])
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/functions", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /functions = %d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	api, rt := newTestAPI(t)
	if _, err := rt.Invoke(0); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	out := rec.Body.String()
	for _, s := range []string{
		"pulse_invocations_total 1",
		"pulse_cold_starts_total 1",
		"pulse_warm_starts_total 0",
		"# TYPE pulse_keepalive_memory_mb gauge",
		"pulse_mean_accuracy_pct",
	} {
		if !strings.Contains(out, s) {
			t.Errorf("metrics missing %q:\n%s", s, out)
		}
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d", rec.Code)
	}
}

// End-to-end over a real listener: serve, invoke, read stats.
func TestAPIOverRealServer(t *testing.T) {
	api, _ := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(srv.URL+"/invoke?fn=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke over TCP = %d", resp.StatusCode)
	}
	resp2, err := client.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got struct{ Invocations int }
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Invocations != 1 {
		t.Errorf("invocations over TCP = %d", got.Invocations)
	}
}
