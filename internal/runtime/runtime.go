package runtime

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// Config assembles a live runtime.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment // one registered function per entry
	// Policy is the keep-alive controller (PULSE or any baseline). The
	// runtime owns it after construction; it must not be shared.
	Policy cluster.Policy
	// Clock defaults to an uncompressed WallClock.
	Clock Clock
	// ExecScale scales simulated execution latencies applied via
	// Clock.Sleep; 1.0 sleeps full model latencies, 0 disables sleeping
	// (latencies still reported). Default 0.
	ExecScale float64
	// Cost prices keep-alive memory; defaults to the AWS-calibrated model.
	Cost cluster.CostModel
	// Observer, when non-nil, receives invocation and keep-alive samples
	// (per-function and per-variant) — attach a *telemetry.Telemetry to
	// expose labeled metrics and the decision log over the HTTP API. nil
	// disables instrumentation at zero cost on the invocation hot path.
	Observer telemetry.Observer
}

// Invocation is the outcome of one function invocation.
type Invocation struct {
	Function    int
	Minute      int
	Variant     string
	AccuracyPct float64
	ServiceSec  float64 // modeled service time (cold start + execution if cold)
	Cold        bool
}

// Stats is a snapshot of runtime counters.
type Stats struct {
	Minute           int
	Invocations      int
	WarmStarts       int
	ColdStarts       int
	TotalServiceSec  float64
	AccuracySumPct   float64
	KeepAliveCostUSD float64
	CurrentKaMMB     float64
}

// MeanAccuracyPct returns delivered accuracy per invocation.
func (s Stats) MeanAccuracyPct() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return s.AccuracySumPct / float64(s.Invocations)
}

// Runtime executes invocations against policy-managed warm containers and
// advances the policy once per simulated minute.
type Runtime struct {
	cfg   Config
	clock Clock
	obs   telemetry.Observer // nil when uninstrumented

	mu      sync.Mutex
	minute  int
	alive   []int // variant kept alive this minute per function, NoVariant if none
	coldPod []int // variant of a container cold-started earlier this minute, NoVariant if none
	counts  []int // invocations observed this minute
	stats   Stats
	started bool
}

// New builds a runtime. The policy's decision vector length must match the
// assignment.
func New(cfg Config) (*Runtime, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("runtime: nil policy")
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("runtime: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("runtime: no functions registered")
	}
	if cfg.ExecScale < 0 {
		return nil, fmt.Errorf("runtime: negative exec scale %v", cfg.ExecScale)
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock{}
	}
	if cfg.Cost.USDPerGBSecond == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	r := &Runtime{
		cfg:     cfg,
		clock:   cfg.Clock,
		obs:     cfg.Observer,
		alive:   make([]int, len(cfg.Assignment)),
		coldPod: make([]int, len(cfg.Assignment)),
		counts:  make([]int, len(cfg.Assignment)),
	}
	for i := range r.alive {
		r.alive[i] = cluster.NoVariant
		r.coldPod[i] = cluster.NoVariant
	}
	return r, nil
}

// start pulls the first minute's keep-alive decisions. Lazily invoked so
// construction never calls into the policy.
func (r *Runtime) startLocked() {
	if r.started {
		return
	}
	r.applyDecisionsLocked(r.cfg.Policy.KeepAlive(r.minute))
	r.started = true
}

func (r *Runtime) applyDecisionsLocked(decisions []int) {
	if len(decisions) != len(r.alive) {
		panic(fmt.Sprintf("runtime: policy returned %d decisions for %d functions", len(decisions), len(r.alive)))
	}
	copy(r.alive, decisions)
	var kam float64
	for fn, vi := range r.alive {
		if vi == cluster.NoVariant {
			if r.obs != nil {
				r.obs.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: r.minute, Function: fn, Variant: cluster.NoVariant})
			}
			continue
		}
		fam := r.cfg.Catalog.Families[r.cfg.Assignment[fn]]
		if vi < 0 || vi >= fam.NumVariants() {
			panic(fmt.Sprintf("runtime: policy kept invalid variant %d for function %d", vi, fn))
		}
		mem := fam.Variants[vi].MemoryMB
		kam += mem
		if r.obs != nil {
			r.obs.ObserveKeepAlive(telemetry.KeepAliveSample{
				Minute:      r.minute,
				Function:    fn,
				Variant:     vi,
				VariantName: fam.Variants[vi].Name,
				MemMB:       mem,
			})
		}
	}
	cost := r.cfg.Cost.KeepAliveUSDPerMinute(kam)
	r.stats.CurrentKaMMB = kam
	r.stats.KeepAliveCostUSD += cost
	if r.obs != nil {
		r.obs.ObserveMinute(telemetry.MinuteSample{Minute: r.minute, KeepAliveMB: kam, CostUSD: cost})
	}
}

// Close releases resources owned by the runtime's policy: the runtime
// owns its Policy, so if the policy implements io.Closer (the sharded
// PULSE controller does — its worker goroutines stop here), it is closed.
// The runtime must not serve invocations or Step afterwards.
func (r *Runtime) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cfg.Policy.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// NumFunctions returns the number of registered functions.
func (r *Runtime) NumFunctions() int { return len(r.cfg.Assignment) }

// FamilyOf returns the model family serving function fn.
func (r *Runtime) FamilyOf(fn int) (models.Family, error) {
	if fn < 0 || fn >= len(r.cfg.Assignment) {
		return models.Family{}, fmt.Errorf("runtime: unknown function %d", fn)
	}
	return r.cfg.Catalog.Families[r.cfg.Assignment[fn]], nil
}

// Invoke executes one invocation of function fn during the current minute.
// Warm invocations run on the kept-alive variant; cold invocations create a
// container of the policy's cold variant, pay its cold-start latency, and
// leave it warm for the remainder of the minute.
func (r *Runtime) Invoke(fn int) (Invocation, error) {
	r.mu.Lock()
	if fn < 0 || fn >= len(r.alive) {
		r.mu.Unlock()
		return Invocation{}, fmt.Errorf("runtime: unknown function %d", fn)
	}
	r.startLocked()
	fam := r.cfg.Catalog.Families[r.cfg.Assignment[fn]]
	inv := Invocation{Function: fn, Minute: r.minute}
	vi := r.alive[fn]
	if vi == cluster.NoVariant {
		vi = r.coldPod[fn]
	}
	if vi != cluster.NoVariant {
		v := fam.Variants[vi]
		inv.Variant = v.Name
		inv.AccuracyPct = v.AccuracyPct
		inv.ServiceSec = v.ExecSec
		r.stats.WarmStarts++
	} else {
		cvi := r.cfg.Policy.ColdVariant(r.minute, fn)
		if cvi < 0 || cvi >= fam.NumVariants() {
			r.mu.Unlock()
			return Invocation{}, fmt.Errorf("runtime: policy chose invalid cold variant %d for function %d", cvi, fn)
		}
		v := fam.Variants[cvi]
		inv.Variant = v.Name
		inv.AccuracyPct = v.AccuracyPct
		inv.ServiceSec = v.ColdServiceSec()
		inv.Cold = true
		r.coldPod[fn] = cvi
		r.stats.ColdStarts++
	}
	r.counts[fn]++
	r.stats.Invocations++
	r.stats.TotalServiceSec += inv.ServiceSec
	r.stats.AccuracySumPct += inv.AccuracyPct
	scale := r.cfg.ExecScale
	r.mu.Unlock()

	// Instrument outside the lock: the observer serializes internally and
	// must not extend the runtime's critical section.
	if r.obs != nil {
		r.obs.ObserveInvocation(telemetry.InvocationSample{
			Minute:      inv.Minute,
			Function:    fn,
			Variant:     inv.Variant,
			Cold:        inv.Cold,
			Count:       1,
			ServiceSec:  inv.ServiceSec,
			AccuracyPct: inv.AccuracyPct,
		})
	}

	// Model the execution latency outside the lock so concurrent
	// invocations of other functions proceed.
	if scale > 0 {
		r.clock.Sleep(time.Duration(inv.ServiceSec * scale * float64(time.Second)))
	}
	return inv, nil
}

// Step closes the current minute — reporting its invocation counts to the
// policy — and opens the next one with fresh keep-alive decisions. A
// driver (ticker goroutine or test) calls it once per simulated minute.
func (r *Runtime) Step() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.startLocked()
	r.cfg.Policy.RecordInvocations(r.minute, r.counts)
	for i := range r.counts {
		r.counts[i] = 0
		r.coldPod[i] = cluster.NoVariant
	}
	r.minute++
	r.stats.Minute = r.minute
	r.applyDecisionsLocked(r.cfg.Policy.KeepAlive(r.minute))
}

// Minute returns the current simulated minute.
func (r *Runtime) Minute() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.minute
}

// Stats returns a snapshot of the runtime counters.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// AliveVariant reports which variant of fn is currently kept alive
// (cluster.NoVariant if none).
func (r *Runtime) AliveVariant(fn int) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn < 0 || fn >= len(r.alive) {
		return 0, fmt.Errorf("runtime: unknown function %d", fn)
	}
	r.startLocked()
	return r.alive[fn], nil
}
